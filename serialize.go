package splay

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/churn"
	"github.com/splaykit/splay/internal/faults"
)

// Scenario serialization: the explicit JSON wire format a Scenario
// travels in — to disk, over the hosting plane's HTTP API (POST /jobs),
// or between processes. The format is sim-neutral (invariant 7) and
// run-preserving (invariant 10): Unmarshal(Marshal(sc)) yields a
// Scenario whose runs are byte-identical to runs of sc itself, pinned
// by TestScenarioRoundTripByteIdentical.
//
// Two Scenario members cannot travel: inline application code (an
// AppSpec's App or New — the environment executing the scenario must
// register the implementation under the spec's Name instead) and
// Collect.Logs (an io.Writer). Marshal rejects both rather than
// silently dropping them. All durations are serialized as nanoseconds,
// so no precision is lost to a textual unit.

// wireScenario is the serialized Scenario document.
type wireScenario struct {
	Name            string             `json:"name,omitempty"`
	Seed            int64              `json:"seed,omitempty"`
	Testbed         *wireTestbed       `json:"testbed,omitempty"`
	Apps            []wireApp          `json:"apps,omitempty"`
	Churn           []wireChurnEvent   `json:"churn,omitempty"`
	Collect         *wireCollect       `json:"collect,omitempty"`
	Faults          *faults.Plan       `json:"faults,omitempty"`
	Assert          []faults.Assertion `json:"assert,omitempty"`
	SettleNS        time.Duration      `json:"settle_ns,omitempty"`
	DurationNS      time.Duration      `json:"duration_ns,omitempty"`
	RegisterTimeout time.Duration      `json:"register_timeout_ns,omitempty"`
	ControllerPort  int                `json:"controller_port,omitempty"`
	Workers         int                `json:"workers,omitempty"`
}

// wireTestbed is a kind-tagged testbed: the constructors' closures are
// rebuilt from the recorded kind and parameters.
type wireTestbed struct {
	Kind    string        `json:"kind"`
	Daemons int           `json:"daemons"`
	RTT     time.Duration `json:"rtt_ns,omitempty"` // uniform
	Bps     float64       `json:"bps,omitempty"`    // uniform
}

// wireApp is one AppSpec. Implementations travel by name only: the
// running side registers the factory (built-ins register themselves).
type wireApp struct {
	App      string          `json:"app"`
	Params   json.RawMessage `json:"params,omitempty"`
	Nodes    int             `json:"nodes,omitempty"`
	Superset float64         `json:"superset,omitempty"`
	FullList bool            `json:"full_list,omitempty"`
	Env      *wireEnv        `json:"env,omitempty"`
	Port     int             `json:"port,omitempty"`
}

// wireEnv is an AppSpec's capability grant and sandbox limits.
type wireEnv struct {
	Caps uint32     `json:"caps,omitempty"`
	Net  *NetLimits `json:"net,omitempty"`
	FS   *FSLimits  `json:"fs,omitempty"`
}

// wireChurnEvent is one churn trace entry, exact to the nanosecond
// (the text trace format rounds to milliseconds, which would break
// byte-identical replay).
type wireChurnEvent struct {
	At   time.Duration `json:"at"`
	Join bool          `json:"join"`
	Node int           `json:"node"`
}

// wireCollect is the observability-plane declaration, minus Logs.
type wireCollect struct {
	Metrics     bool          `json:"metrics,omitempty"`
	ReportEvery time.Duration `json:"report_every_ns,omitempty"`
	Key         string        `json:"key,omitempty"`
	MetricsPort int           `json:"metrics_port,omitempty"`
}

// Marshal serializes the scenario as JSON. It fails on members that
// cannot travel: inline App/New implementations (register the factory
// by name on the running side instead) and a Collect.Logs writer.
func (sc Scenario) Marshal() ([]byte, error) {
	w := wireScenario{
		Name:            sc.Name,
		Seed:            sc.Seed,
		SettleNS:        sc.Settle,
		DurationNS:      sc.Duration,
		RegisterTimeout: sc.RegisterTimeout,
		ControllerPort:  sc.ControllerPort,
		Workers:         sc.Workers,
	}
	if sc.Testbed != nil {
		wt, err := marshalTestbed(sc.Testbed)
		if err != nil {
			return nil, err
		}
		w.Testbed = wt
	}
	for _, spec := range sc.Apps {
		if spec.App != nil || spec.New != nil {
			return nil, fmt.Errorf("splay: app %q has an inline implementation; serialized scenarios reference applications by name", spec.Name)
		}
		if spec.Name == "" {
			return nil, errors.New("splay: app spec needs a name")
		}
		wa := wireApp{
			App:      spec.Name,
			Params:   append(json.RawMessage(nil), spec.Params...),
			Nodes:    spec.Nodes,
			Superset: spec.Superset,
			FullList: spec.FullList,
			Port:     spec.Port,
		}
		if e := spec.Env; envNonZero(e) {
			we := &wireEnv{Caps: uint32(e.Caps)}
			if netNonZero(e.Net) {
				n := e.Net
				we.Net = &n
			}
			if e.FS != (FSLimits{}) {
				f := e.FS
				we.FS = &f
			}
			wa.Env = we
		}
		w.Apps = append(w.Apps, wa)
	}
	for _, e := range sc.Churn.trace {
		w.Churn = append(w.Churn, wireChurnEvent{At: e.At, Join: e.Action == churn.Join, Node: e.Node})
	}
	if c := sc.Collect; c.Metrics || c.ReportEvery != 0 || c.Key != "" || c.MetricsPort != 0 || c.Logs != nil {
		if c.Logs != nil {
			return nil, errors.New("splay: Collect.Logs is a writer and cannot be serialized")
		}
		w.Collect = &wireCollect{Metrics: c.Metrics, ReportEvery: c.ReportEvery, Key: c.Key, MetricsPort: c.MetricsPort}
	}
	if !sc.Faults.Empty() || sc.Faults.EvalEvery != 0 {
		f := sc.Faults
		w.Faults = &f
	}
	w.Assert = sc.Assert
	return json.Marshal(w)
}

// envNonZero reports whether an EnvConfig carries anything worth
// serializing.
func envNonZero(e EnvConfig) bool {
	return e.Caps != 0 || netNonZero(e.Net) || e.FS != (FSLimits{})
}

// netNonZero reports whether net limits carry anything.
func netNonZero(n NetLimits) bool {
	return n.MaxSockets != 0 || n.MaxTxBytes != 0 || n.MaxRxBytes != 0 || len(n.Blacklist) > 0
}

func marshalTestbed(tb Testbed) (*wireTestbed, error) {
	switch t := tb.(type) {
	case *simTestbed:
		if t.kind == "" {
			return nil, errors.New("splay: testbed was not built by a splay constructor and cannot be serialized")
		}
		return &wireTestbed{Kind: t.kind, Daemons: t.daemons, RTT: t.rtt, Bps: t.bps}, nil
	case *liveTestbed:
		return &wireTestbed{Kind: "live", Daemons: t.daemons}, nil
	}
	return nil, fmt.Errorf("splay: unknown testbed %T", tb)
}

// UnmarshalScenario parses a document produced by Marshal (or written
// by hand against the same format) back into a runnable Scenario.
// Applications are referenced by name; built-ins resolve automatically
// and anything else needs its factory attached (AppSpec.New) before the
// scenario can Start.
func UnmarshalScenario(data []byte) (Scenario, error) {
	var w wireScenario
	if err := json.Unmarshal(data, &w); err != nil {
		return Scenario{}, fmt.Errorf("splay: scenario: %w", err)
	}
	sc := Scenario{
		Name:            w.Name,
		Seed:            w.Seed,
		Settle:          w.SettleNS,
		Duration:        w.DurationNS,
		RegisterTimeout: w.RegisterTimeout,
		ControllerPort:  w.ControllerPort,
		Workers:         w.Workers,
	}
	if w.Testbed != nil {
		tb, err := unmarshalTestbed(w.Testbed)
		if err != nil {
			return Scenario{}, err
		}
		sc.Testbed = tb
	}
	for _, wa := range w.Apps {
		if wa.App == "" {
			return Scenario{}, errors.New("splay: scenario: app entry needs a name")
		}
		spec := AppSpec{
			Name:     wa.App,
			Params:   append([]byte(nil), wa.Params...),
			Nodes:    wa.Nodes,
			Superset: wa.Superset,
			FullList: wa.FullList,
			Port:     wa.Port,
		}
		if wa.Env != nil {
			spec.Env.Caps = Cap(wa.Env.Caps)
			if wa.Env.Net != nil {
				spec.Env.Net = *wa.Env.Net
			}
			if wa.Env.FS != nil {
				spec.Env.FS = *wa.Env.FS
			}
		}
		sc.Apps = append(sc.Apps, spec)
	}
	if len(w.Churn) > 0 {
		tr := make(churn.Trace, len(w.Churn))
		for i, e := range w.Churn {
			act := churn.Leave
			if e.Join {
				act = churn.Join
			}
			tr[i] = churn.Event{At: e.At, Action: act, Node: e.Node}
		}
		sc.Churn = ChurnSpec{trace: tr}
	}
	if w.Collect != nil {
		sc.Collect = Collect{
			Metrics:     w.Collect.Metrics,
			ReportEvery: w.Collect.ReportEvery,
			Key:         w.Collect.Key,
			MetricsPort: w.Collect.MetricsPort,
		}
	}
	if w.Faults != nil {
		sc.Faults = *w.Faults
	}
	sc.Assert = w.Assert
	return sc, nil
}

func unmarshalTestbed(w *wireTestbed) (Testbed, error) {
	if w.Daemons < 0 {
		return nil, fmt.Errorf("splay: scenario: negative daemon count %d", w.Daemons)
	}
	switch w.Kind {
	case "planetlab":
		return PlanetLab(w.Daemons), nil
	case "modelnet":
		return ModelNet(w.Daemons), nil
	case "uniform":
		return Uniform(w.Daemons, w.RTT, w.Bps), nil
	case "live":
		return Live(w.Daemons), nil
	}
	return nil, fmt.Errorf("splay: scenario: unknown testbed kind %q", w.Kind)
}
