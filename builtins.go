package splay

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/apps"
	"github.com/splaykit/splay/internal/protocols/bittorrent"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/protocols/cyclon"
	"github.com/splaykit/splay/internal/protocols/epidemic"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/rpc"
)

// The built-in applications as SDK factories. These mirror the engine
// factories in internal/apps deployment-step for deployment-step — the
// same constructor calls, staggered joins, maintenance and workload
// periodics, in the same order — so a by-name spec schedules
// byte-identically whether it runs here or through the raw engine
// registry. On top of the mirror they honor the catalog's `report`
// parameter: when a job sets report=true, the instance attaches the
// protocol's metric instruments (pure memory operations,
// schedule-neutral) and streams them to the scenario's collect plane
// via Env.StartReporting. Both are strictly opt-in so that hosted jobs
// and goldens that never ask for telemetry keep their exact schedules
// and their exact per-instance footprint (the million-node experiments
// are footprint-gated).

// reportOpt is the shared `report` job parameter.
type reportOpt struct {
	Report bool `json:"report"`
}

// builtinFactory returns the SDK factory for a built-in application
// name, or nil when the name is not built in.
func builtinFactory(name string) Factory {
	switch name {
	case "chord":
		return chordBuiltin
	case "pastry":
		return pastryBuiltin
	case "cyclon":
		return cyclonBuiltin
	case "epidemic":
		return epidemicBuiltin
	case "bittorrent":
		return bittorrentBuiltin
	}
	return nil
}

// startReportingIf wires the instance's registry into the collect plane
// when the job asked for it. A missing collector is a configuration
// error the config compiler rejects up front; a handwritten scenario
// that slips through gets the typed ErrNoCollector here.
func startReportingIf(env *Env, r reportOpt) error {
	if !r.Report {
		return nil
	}
	return env.StartReporting()
}

func chordBuiltin(params []byte) (App, error) {
	var p apps.ChordParams
	var r reportOpt
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("chord app: %w", err)
		}
		if err := json.Unmarshal(params, &r); err != nil {
			return nil, fmt.Errorf("chord app: %w", err)
		}
	}
	return AppFunc(func(env *Env) error {
		ctx := env.AppContext()
		cfg := chord.DefaultConfig()
		if p.FaultTolerant {
			cfg = chord.FaultTolerantConfig()
		}
		if p.Bits > 0 {
			cfg.Bits = p.Bits
		}
		n, err := chord.New(ctx, cfg)
		if err != nil {
			return err
		}
		if r.Report {
			n.SetInstruments(chord.NewInstruments(env.Metrics()))
			n.SetRPCInstruments(rpc.NewInstruments(env.Metrics()))
		}
		if err := n.Start(); err != nil {
			return err
		}
		if err := startReportingIf(env, r); err != nil {
			return err
		}
		// Staggered joins, one second apart, as in §5.2's descriptor.
		ctx.Sleep(time.Duration(ctx.Job.Position) * time.Second)
		if ctx.Job.Position > 1 && len(ctx.Job.Nodes) > 0 {
			if err := n.Join(ctx.Job.Nodes[0]); err != nil {
				ctx.Log.Printf("chord join failed: %v", err)
			}
		}
		n.StartMaintenance()
		if p.LookupsPerMin > 0 {
			ctx.Periodic(time.Minute/time.Duration(p.LookupsPerMin), func() {
				key := ctx.Rand().Uint64()
				if res, err := n.Lookup(key); err == nil {
					ctx.Log.Printf("lookup %d -> %s in %d hops (%s)", key, res.Node, res.Hops, res.RTT)
				}
			})
		}
		env.RunUntilKilled()
		n.Stop()
		return nil
	}), nil
}

func pastryBuiltin(params []byte) (App, error) {
	var p apps.PastryParams
	var r reportOpt
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("pastry app: %w", err)
		}
		if err := json.Unmarshal(params, &r); err != nil {
			return nil, fmt.Errorf("pastry app: %w", err)
		}
	}
	return AppFunc(func(env *Env) error {
		ctx := env.AppContext()
		n := pastry.New(ctx, pastry.DefaultConfig())
		if r.Report {
			n.SetInstruments(pastry.NewInstruments(env.Metrics()))
		}
		if err := n.Start(); err != nil {
			return err
		}
		if err := startReportingIf(env, r); err != nil {
			return err
		}
		ctx.Sleep(time.Duration(ctx.Job.Position) * time.Second)
		if ctx.Job.Position > 1 && len(ctx.Job.Nodes) > 0 {
			if err := n.Join(ctx.Job.Nodes[0]); err != nil {
				ctx.Log.Printf("pastry join failed: %v", err)
			}
		}
		n.StartMaintenance()
		if p.LookupsPerMin > 0 {
			ctx.Periodic(time.Minute/time.Duration(p.LookupsPerMin), func() {
				key := pastry.ID(ctx.Rand().Uint64())
				if res, err := n.Route(key); err == nil {
					ctx.Log.Printf("route %s -> %s in %d hops (%s)", key, res.Root, res.Hops, res.RTT)
				}
			})
		}
		env.RunUntilKilled()
		n.Stop()
		return nil
	}), nil
}

func cyclonBuiltin(params []byte) (App, error) {
	var p apps.CyclonParams
	var r reportOpt
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("cyclon app: %w", err)
		}
		if err := json.Unmarshal(params, &r); err != nil {
			return nil, fmt.Errorf("cyclon app: %w", err)
		}
	}
	return AppFunc(func(env *Env) error {
		ctx := env.AppContext()
		n := cyclon.New(ctx, p.Config())
		if r.Report {
			n.SetInstruments(cyclon.NewInstruments(env.Metrics()))
		}
		if err := n.Start(ctx.Job.Nodes); err != nil {
			return err
		}
		if err := startReportingIf(env, r); err != nil {
			return err
		}
		env.RunUntilKilled()
		n.Stop()
		return nil
	}), nil
}

func epidemicBuiltin(params []byte) (App, error) {
	var p apps.EpidemicParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("epidemic app: %w", err)
		}
	}
	return AppFunc(func(env *Env) error {
		ctx := env.AppContext()
		cfg := epidemic.DefaultConfig()
		if p.Fanout > 0 {
			cfg.Fanout = p.Fanout
		}
		n := epidemic.New(ctx, cfg, ctx.Job.Nodes)
		if err := n.Start(); err != nil {
			return err
		}
		if p.Originate && ctx.Job.Position == 1 {
			ctx.After(10*time.Second, func() {
				n.Broadcast("rumor-1", []byte("hello from the rendez-vous"))
			})
		}
		env.RunUntilKilled()
		n.Stop()
		return nil
	}), nil
}

func bittorrentBuiltin(params []byte) (App, error) {
	var p apps.BitTorrentParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bittorrent app: %w", err)
		}
	}
	if p.Size <= 0 {
		p.Size = 4 << 20
	}
	if p.PieceSize <= 0 {
		p.PieceSize = 64 << 10
	}
	return AppFunc(func(env *Env) error {
		ctx := env.AppContext()
		torrent := bittorrent.Torrent{Name: ctx.Job.JobID, Size: p.Size, PieceSize: p.PieceSize}
		if ctx.Job.Position == 1 {
			tr := bittorrent.NewTracker(ctx)
			if err := tr.Start(); err != nil {
				return err
			}
			env.RunUntilKilled()
			return nil
		}
		if len(ctx.Job.Nodes) == 0 {
			return fmt.Errorf("bittorrent app: no tracker address")
		}
		peer := bittorrent.NewPeer(ctx, torrent, ctx.Job.Nodes[0], ctx.Job.Position == 2, bittorrent.DefaultConfig())
		if err := peer.Start(); err != nil {
			return err
		}
		for !ctx.Killed() {
			ctx.Sleep(5 * time.Second)
			if peer.Complete() {
				ctx.Log.Printf("download complete (%d pieces)", peer.Pieces())
				break
			}
		}
		for !ctx.Killed() { // keep seeding
			ctx.Sleep(10 * time.Second)
		}
		peer.Stop()
		return nil
	}), nil
}
