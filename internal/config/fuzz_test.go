package config

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzCompile drives the whole config plane — parser, unit converters,
// catalog validation, wire emission — with arbitrary documents. The
// invariants: never panic, and either return a typed *Error or emit
// valid JSON that compiles identically a second time (determinism) and
// passes wire re-validation (what Compile admits, ValidateWire admits).
// Seeds live in testdata/fuzz/FuzzCompile; `go test -fuzz=FuzzCompile`
// explores from there.
func FuzzCompile(f *testing.F) {
	f.Add("apps:\n  - app: chord\n")
	f.Add(fullDoc)
	f.Add("name: demo\napps:\n  - app: cyclon\n    params:\n      view_size: 16\n      shuffle_every: 5s\n")
	f.Add("apps:\n  - app: bittorrent\n    params:\n      size: 4MB\n      piece_size: 64KB\n")
	f.Add("seed: 3\napps:\n  - app: chord\nchurn:\n  script: at 30s join 10\n")
	f.Add("apps:\n  - app: chord\n    env:\n      caps: [net, fs]\n      net:\n        max_tx: 1MB\n")
	f.Add("apps:\n  - app: chord\nfaults:\n  events:\n    - at: 1s\n      kind: partition\n      fraction: 50%\n")
	f.Add("apps:\n  - app: chord\nassert:\n  - name: a\n    eventually: nodes() > 1\n")
	f.Add("a: [x, y, \"z\"]\nb: 'quoted'\n")
	f.Add("---\nbad: doc")
	f.Add("\tbad")
	f.Add("apps: {flow: map}")
	f.Fuzz(func(t *testing.T, doc string) {
		wire, perr := Compile([]byte(doc), Options{})
		if perr != nil {
			if perr.Code == "" || perr.Msg == "" {
				t.Fatalf("untyped error %+v for %q", perr, doc)
			}
			_ = perr.Error() // rendering must not panic either
			return
		}
		if !json.Valid(wire) {
			t.Fatalf("compiled invalid JSON %q from %q", wire, doc)
		}
		again, perr := Compile([]byte(doc), Options{})
		if perr != nil || !bytes.Equal(wire, again) {
			t.Fatalf("non-deterministic compile of %q: %v", doc, perr)
		}
		if verr := ValidateWire(wire, nil); verr != nil {
			t.Fatalf("compiled wire fails admission: %v (doc %q, wire %s)", verr, doc, wire)
		}
	})
}

// FuzzParseDoc fuzzes the parser layer alone: arbitrary bytes must
// produce a tree or a positioned syntax error, never a panic, and every
// error must carry a 1-based position.
func FuzzParseDoc(f *testing.F) {
	f.Add([]byte("a: 1\nb:\n  - x\n  - y\n"))
	f.Add([]byte("k: \"esc\\\"aped\"\n"))
	f.Add([]byte("k: 'it''s'\n"))
	f.Add([]byte("k: [a, b,c ]\n"))
	f.Add([]byte("# only\n\n# comments"))
	f.Add([]byte("a:\n  b:\n    c: deep\n"))
	f.Add([]byte{0xff, 0xfe, ':', ' ', 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		root, perr := parseDoc(data)
		if perr != nil {
			if perr.Line < 1 || perr.Col < 1 {
				t.Fatalf("unpositioned parse error %+v for %q", perr, data)
			}
			return
		}
		if root == nil || root.kind != mapNode {
			t.Fatalf("nil/odd root without error for %q", data)
		}
	})
}
