package config

import "fmt"

// ErrorCode classifies a config-plane failure. Codes are part of the
// wire surface: splayctl prints them, the hosting plane maps them into
// bad_scenario rejections, and the table tests in errors_test.go pin
// every code the parser and compiler can emit.
type ErrorCode string

// Config error codes.
const (
	// ErrSyntax is a document that does not parse: bad indentation,
	// missing values, unclosed quotes, duplicate keys.
	ErrSyntax ErrorCode = "syntax"
	// ErrUnsupported is a YAML construct the subset deliberately
	// declines (anchors, tags, flow maps, block scalars, multi-doc) or
	// a scenario feature that cannot travel through this entry point
	// (e.g. a churn trace reference without a file loader).
	ErrUnsupported ErrorCode = "unsupported"
	// ErrUnknownField is a mapping key the schema does not define.
	ErrUnknownField ErrorCode = "unknown_field"
	// ErrUnknownApp references an application the catalog does not know.
	ErrUnknownApp ErrorCode = "unknown_app"
	// ErrUnknownParam is an application parameter its schema does not
	// declare.
	ErrUnknownParam ErrorCode = "unknown_param"
	// ErrBadValue is a scalar that does not convert to the declared
	// kind ("true" where a duration belongs, "fast" as an integer).
	ErrBadValue ErrorCode = "bad_value"
	// ErrOutOfRange is a well-typed value outside its declared bounds.
	ErrOutOfRange ErrorCode = "out_of_range"
	// ErrMissing is a required field the document omits.
	ErrMissing ErrorCode = "missing"
)

// Error is the typed error every config operation returns: what went
// wrong (Code), where in the schema (Path, e.g. "apps[0].params.bits"),
// and where in the document (Line/Col, 1-based; 0 when the failure has
// no textual anchor, e.g. validating wire JSON). Documents never
// silently default: anything outside the schema surfaces here.
type Error struct {
	Code ErrorCode
	Path string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	pos := ""
	if e.Line > 0 {
		pos = fmt.Sprintf("%d:%d: ", e.Line, e.Col)
	}
	at := ""
	if e.Path != "" {
		at = " at " + e.Path
	}
	return fmt.Sprintf("config: %s%s%s: %s", pos, e.Code, at, e.Msg)
}

// errf builds an Error anchored at a node (nil node = no position).
func errf(code ErrorCode, path string, n *node, format string, args ...any) *Error {
	e := &Error{Code: code, Path: path, Msg: fmt.Sprintf(format, args...)}
	if n != nil {
		e.Line, e.Col = n.line, n.col
	}
	return e
}
