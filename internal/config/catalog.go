package config

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// The app catalog: every application a config document may reference
// declares a typed parameter schema — name, kind, default, bounds — so
// documents are validated at compile (and hosted submissions at
// admission) instead of failing opaquely at deploy time, and so
// "splayctl catalog" can show authors what is available without
// reading Go.

// ParamKind types one application parameter.
type ParamKind int

// Parameter kinds and the document syntax each accepts.
const (
	KindString   ParamKind = iota // any scalar
	KindBool                      // true / false
	KindInt                       // 42
	KindFloat                     // 2.5
	KindDuration                  // 30s, 100ms (wire: integer nanoseconds)
	KindSize                      // 64KB, 4MB (wire: integer bytes)
	KindRate                      // 512kbps, 10mbps (wire: bit/s number)
	KindFraction                  // 50% or 0.5 (wire: number in 0..1)
)

func (k ParamKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindDuration:
		return "duration"
	case KindSize:
		return "size"
	case KindRate:
		return "rate"
	case KindFraction:
		return "fraction"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Param is one declared application parameter. Min/Max bound numeric
// kinds when Bounded is set (durations in nanoseconds, sizes in bytes,
// rates in bit/s). Default is documentation — the app factory applies
// it; the compiler only ships keys the document sets, never defaults.
type Param struct {
	Name    string
	Kind    ParamKind
	Doc     string
	Default any
	Min     float64
	Max     float64
	Bounded bool
}

// AppSchema declares one catalog application.
type AppSchema struct {
	Name   string
	Doc    string
	Params []Param
}

// param looks a parameter up by name.
func (a AppSchema) param(name string) (Param, bool) {
	for _, p := range a.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Catalog is the set of applications a platform accepts by name.
type Catalog struct {
	order []string
	apps  map[string]AppSchema
}

// NewCatalog builds an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{apps: make(map[string]AppSchema)}
}

// Register adds an application schema; duplicates error.
func (c *Catalog) Register(a AppSchema) error {
	if a.Name == "" {
		return fmt.Errorf("config: app schema needs a name")
	}
	if _, dup := c.apps[a.Name]; dup {
		return fmt.Errorf("config: duplicate catalog app %q", a.Name)
	}
	c.order = append(c.order, a.Name)
	c.apps[a.Name] = a
	return nil
}

// Lookup returns an application's schema.
func (c *Catalog) Lookup(name string) (AppSchema, bool) {
	a, ok := c.apps[name]
	return a, ok
}

// Apps lists the registered schemas in registration order.
func (c *Catalog) Apps() []AppSchema {
	out := make([]AppSchema, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.apps[name])
	}
	return out
}

// Names lists the registered application names, sorted.
func (c *Catalog) Names() []string {
	out := append([]string(nil), c.order...)
	sort.Strings(out)
	return out
}

// compileParams turns a document's params mapping into the canonical
// wire JSON (sorted keys — json.Marshal of a map): only explicitly set
// keys travel; defaults belong to the app factory. Unknown parameters,
// wrong kinds and out-of-range values are typed errors.
func (c *Catalog) compileParams(app string, n *node, path string) ([]byte, *Error) {
	schema, ok := c.apps[app]
	if !ok {
		return nil, errf(ErrUnknownApp, path, n, "unknown application %q (catalog: %v)", app, c.Names())
	}
	if n == nil {
		return nil, nil
	}
	if n.kind != mapNode {
		return nil, errf(ErrBadValue, path, n, "params must be a mapping")
	}
	out := make(map[string]any, len(n.keys))
	for i := range n.keys {
		e := &n.keys[i]
		ppath := path + "." + e.key
		p, ok := schema.param(e.key)
		if !ok {
			return nil, &Error{Code: ErrUnknownParam, Path: ppath, Line: e.keyLine, Col: e.keyCol,
				Msg: fmt.Sprintf("app %q has no parameter %q (have %v)", app, e.key, schema.paramNames())}
		}
		v, perr := compileParamValue(p, e.val, ppath)
		if perr != nil {
			return nil, perr
		}
		out[e.key] = v
	}
	if len(out) == 0 {
		return nil, nil
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, errf(ErrBadValue, path, n, "params do not serialize: %v", err)
	}
	return data, nil
}

func (a AppSchema) paramNames() []string {
	out := make([]string, len(a.Params))
	for i, p := range a.Params {
		out[i] = p.Name
	}
	return out
}

// compileParamValue converts one scalar per its declared kind and
// checks bounds.
func compileParamValue(p Param, n *node, path string) (any, *Error) {
	var num float64
	var val any
	switch p.Kind {
	case KindString:
		s, perr := asString(n, path)
		if perr != nil {
			return nil, perr
		}
		return s, nil
	case KindBool:
		b, perr := asBool(n, path)
		if perr != nil {
			return nil, perr
		}
		return b, nil
	case KindInt:
		v, perr := asInt(n, path)
		if perr != nil {
			return nil, perr
		}
		num, val = float64(v), v
	case KindFloat:
		v, perr := asFloat(n, path)
		if perr != nil {
			return nil, perr
		}
		num, val = v, v
	case KindDuration:
		d, perr := asDuration(n, path)
		if perr != nil {
			return nil, perr
		}
		num, val = float64(d), int64(d)
	case KindSize:
		v, perr := asSize(n, path)
		if perr != nil {
			return nil, perr
		}
		num, val = float64(v), v
	case KindRate:
		v, perr := asRate(n, path)
		if perr != nil {
			return nil, perr
		}
		num, val = v, v
	case KindFraction:
		v, perr := asFraction(n, path)
		if perr != nil {
			return nil, perr
		}
		num, val = v, v
	default:
		return nil, errf(ErrBadValue, path, n, "unhandled parameter kind %v", p.Kind)
	}
	if p.Bounded && (num < p.Min || num > p.Max) {
		return nil, errf(ErrOutOfRange, path, n, "%s is outside %s..%s",
			formatParam(p.Kind, num), formatParam(p.Kind, p.Min), formatParam(p.Kind, p.Max))
	}
	return val, nil
}

// validateParamsJSON checks an already-serialized (wire JSON) parameter
// document against the schema — the hosting plane's admission path.
func (c *Catalog) validateParamsJSON(app string, raw []byte, path string) *Error {
	schema, ok := c.apps[app]
	if !ok {
		return &Error{Code: ErrUnknownApp, Path: path,
			Msg: fmt.Sprintf("unknown application %q (catalog: %v)", app, c.Names())}
	}
	if len(raw) == 0 || string(raw) == "null" {
		return nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return &Error{Code: ErrBadValue, Path: path + ".params", Msg: fmt.Sprintf("params do not parse: %v", err)}
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ppath := path + ".params." + k
		p, ok := schema.param(k)
		if !ok {
			return &Error{Code: ErrUnknownParam, Path: ppath,
				Msg: fmt.Sprintf("app %q has no parameter %q (have %v)", app, k, schema.paramNames())}
		}
		if perr := validateParamJSON(p, m[k], ppath); perr != nil {
			return perr
		}
	}
	return nil
}

func validateParamJSON(p Param, raw json.RawMessage, path string) *Error {
	var num float64
	switch p.Kind {
	case KindString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return &Error{Code: ErrBadValue, Path: path, Msg: fmt.Sprintf("want a string, got %s", raw)}
		}
		return nil
	case KindBool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return &Error{Code: ErrBadValue, Path: path, Msg: fmt.Sprintf("want a boolean, got %s", raw)}
		}
		return nil
	default:
		if err := json.Unmarshal(raw, &num); err != nil {
			return &Error{Code: ErrBadValue, Path: path, Msg: fmt.Sprintf("want a number, got %s", raw)}
		}
		if (p.Kind == KindInt || p.Kind == KindDuration || p.Kind == KindSize) && num != float64(int64(num)) {
			return &Error{Code: ErrBadValue, Path: path, Msg: fmt.Sprintf("want an integer, got %s", raw)}
		}
	}
	if p.Bounded && (num < p.Min || num > p.Max) {
		return &Error{Code: ErrOutOfRange, Path: path,
			Msg: fmt.Sprintf("%s is outside %s..%s",
				formatParam(p.Kind, num), formatParam(p.Kind, p.Min), formatParam(p.Kind, p.Max))}
	}
	return nil
}

// formatParam renders a wire value in the kind's human unit for error
// messages and the catalog listing.
func formatParam(k ParamKind, v float64) string {
	switch k {
	case KindDuration:
		return time.Duration(v).String()
	case KindSize:
		switch {
		case v >= 1<<30 && float64(int64(v))/(1<<30) == v/(1<<30):
			return fmt.Sprintf("%gGB", v/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%gMB", v/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%gKB", v/(1<<10))
		}
		return fmt.Sprintf("%gB", v)
	case KindRate:
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%ggbps", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%gmbps", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%gkbps", v/1e3)
		}
		return fmt.Sprintf("%gbps", v)
	case KindFraction:
		return fmt.Sprintf("%g%%", v*100)
	}
	return fmt.Sprintf("%g", v)
}

// FormatDefault renders a parameter's default for the catalog listing.
func (p Param) FormatDefault() string {
	switch v := p.Default.(type) {
	case nil:
		return "-"
	case time.Duration:
		return v.String()
	case bool:
		return fmt.Sprintf("%v", v)
	case string:
		return v
	case int:
		if p.Kind == KindSize {
			return formatParam(KindSize, float64(v))
		}
		return fmt.Sprintf("%d", v)
	case float64:
		return formatParam(p.Kind, v)
	}
	return fmt.Sprintf("%v", p.Default)
}

// FormatBounds renders a parameter's bounds for the catalog listing.
func (p Param) FormatBounds() string {
	if !p.Bounded {
		return "-"
	}
	return formatParam(p.Kind, p.Min) + ".." + formatParam(p.Kind, p.Max)
}

// Builtins catalogs the SDK's built-in applications (the registry
// apps.Register installs, as surfaced through the root package's
// Env-backed factories). This is the schema "splayctl catalog" prints
// and splayd -host validates against.
func Builtins() *Catalog {
	c := NewCatalog()
	for _, a := range []AppSchema{
		{
			Name: "chord",
			Doc:  "Chord DHT ring: staggered joins, periodic maintenance, optional lookup workload",
			Params: []Param{
				{Name: "bits", Kind: KindInt, Doc: "ring identifier bits (m)", Default: 24, Min: 1, Max: 52, Bounded: true},
				{Name: "fault_tolerant", Kind: KindBool, Doc: "successor lists + lookup retries", Default: false},
				{Name: "lookups_per_min", Kind: KindInt, Doc: "per-node random lookups per minute (0 = none)", Default: 0, Min: 0, Max: 600, Bounded: true},
				{Name: "report", Kind: KindBool, Doc: "stream chord.* and rpc.* instruments to the collect plane", Default: false},
			},
		},
		{
			Name: "pastry",
			Doc:  "Pastry prefix-routing overlay with an optional route workload",
			Params: []Param{
				{Name: "lookups_per_min", Kind: KindInt, Doc: "per-node random routes per minute (0 = none)", Default: 0, Min: 0, Max: 600, Bounded: true},
			},
		},
		{
			Name: "cyclon",
			Doc:  "Cyclon gossip membership: periodic view shuffles with the oldest peer",
			Params: []Param{
				{Name: "view_size", Kind: KindInt, Doc: "partial view size (c)", Default: 20, Min: 1, Max: 128, Bounded: true},
				{Name: "shuffle_len", Kind: KindInt, Doc: "entries exchanged per shuffle (l)", Default: 8, Min: 1, Max: 64, Bounded: true},
				{Name: "shuffle_every", Kind: KindDuration, Doc: "gossip period", Default: 5 * time.Second,
					Min: float64(100 * time.Millisecond), Max: float64(10 * time.Minute), Bounded: true},
				{Name: "report", Kind: KindBool, Doc: "stream cyclon.* instruments to the collect plane", Default: false},
			},
		},
		{
			Name: "epidemic",
			Doc:  "epidemic broadcast: position 1 may originate a rumor, everyone forwards",
			Params: []Param{
				{Name: "fanout", Kind: KindInt, Doc: "peers infected per round", Default: 8, Min: 1, Max: 64, Bounded: true},
				{Name: "originate", Kind: KindBool, Doc: "position-1 instance broadcasts a rumor", Default: false},
			},
		},
		{
			Name: "bittorrent",
			Doc:  "BitTorrent swarm: position 1 tracks, position 2 seeds, the rest leech",
			Params: []Param{
				{Name: "size", Kind: KindSize, Doc: "torrent payload size", Default: 4 << 20,
					Min: 1 << 10, Max: 1 << 30, Bounded: true},
				{Name: "piece_size", Kind: KindSize, Doc: "piece size", Default: 64 << 10,
					Min: 1 << 10, Max: 64 << 20, Bounded: true},
			},
		},
	} {
		if err := c.Register(a); err != nil {
			panic(err) // static table: duplicates are impossible
		}
	}
	return c
}
