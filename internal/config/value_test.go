package config

import (
	"testing"
	"time"
)

func scalar(s string) *node { return &node{kind: scalarNode, line: 1, col: 1, scalar: s} }
func qscalar(s string) *node {
	return &node{kind: scalarNode, line: 1, col: 1, scalar: s, quoted: true}
}

// TestValueConversions pins every human-unit converter: accepted forms,
// the wire value each produces, and the typed code each rejection
// carries. Quoted scalars are strings, never units.
func TestValueConversions(t *testing.T) {
	t.Parallel()

	t.Run("bool", func(t *testing.T) {
		t.Parallel()
		for s, want := range map[string]bool{"true": true, "false": false} {
			if got, perr := asBool(scalar(s), "p"); perr != nil || got != want {
				t.Errorf("asBool(%q) = %v, %v", s, got, perr)
			}
		}
		for _, s := range []string{"yes", "on", "True", "1"} {
			if _, perr := asBool(scalar(s), "p"); perr == nil || perr.Code != ErrBadValue {
				t.Errorf("asBool(%q) did not fail as bad_value: %v", s, perr)
			}
		}
	})

	t.Run("int", func(t *testing.T) {
		t.Parallel()
		if v, perr := asInt(scalar("-42"), "p"); perr != nil || v != -42 {
			t.Errorf("asInt(-42) = %d, %v", v, perr)
		}
		if _, perr := asInt(scalar("2.5"), "p"); perr == nil || perr.Code != ErrBadValue {
			t.Errorf("asInt(2.5) = %v, want bad_value", perr)
		}
		if _, perr := asInt(qscalar("42"), "p"); perr == nil || perr.Code != ErrBadValue {
			t.Errorf("asInt(quoted) = %v, want bad_value", perr)
		}
	})

	t.Run("duration", func(t *testing.T) {
		t.Parallel()
		for s, want := range map[string]time.Duration{
			"30s": 30 * time.Second, "100ms": 100 * time.Millisecond,
			"5m": 5 * time.Minute, "1h30m": 90 * time.Minute, "0": 0,
		} {
			if got, perr := asDuration(scalar(s), "p"); perr != nil || got != want {
				t.Errorf("asDuration(%q) = %v, %v; want %v", s, got, perr, want)
			}
		}
		if _, perr := asDuration(scalar("30"), "p"); perr == nil || perr.Code != ErrBadValue {
			t.Errorf("asDuration(30) = %v, want bad_value (unit required)", perr)
		}
		if _, perr := asDuration(scalar("-5s"), "p"); perr == nil || perr.Code != ErrOutOfRange {
			t.Errorf("asDuration(-5s) = %v, want out_of_range", perr)
		}
		if _, perr := asDuration(qscalar("30s"), "p"); perr == nil || perr.Code != ErrBadValue {
			t.Errorf("asDuration(quoted) = %v, want bad_value", perr)
		}
	})

	t.Run("size", func(t *testing.T) {
		t.Parallel()
		for s, want := range map[string]int64{
			"64KB": 64 << 10, "4MB": 4 << 20, "1GB": 1 << 30, "512B": 512, "1000": 1000,
		} {
			if got, perr := asSize(scalar(s), "p"); perr != nil || got != want {
				t.Errorf("asSize(%q) = %d, %v; want %d", s, got, perr, want)
			}
		}
		for _, s := range []string{"64kb", "-1KB", "fast"} {
			if _, perr := asSize(scalar(s), "p"); perr == nil || perr.Code != ErrBadValue {
				t.Errorf("asSize(%q) = %v, want bad_value", s, perr)
			}
		}
	})

	t.Run("rate", func(t *testing.T) {
		t.Parallel()
		for s, want := range map[string]float64{
			"512kbps": 512e3, "10mbps": 10e6, "1gbps": 1e9, "56bps": 56, "1000": 1000,
		} {
			if got, perr := asRate(scalar(s), "p"); perr != nil || got != want {
				t.Errorf("asRate(%q) = %g, %v; want %g", s, got, perr, want)
			}
		}
		if _, perr := asRate(scalar("-1kbps"), "p"); perr == nil || perr.Code != ErrBadValue {
			t.Errorf("asRate(-1kbps) = %v, want bad_value", perr)
		}
	})

	t.Run("fraction", func(t *testing.T) {
		t.Parallel()
		for s, want := range map[string]float64{
			"50%": 0.5, "0.25": 0.25, "100%": 1, "0": 0,
		} {
			if got, perr := asFraction(scalar(s), "p"); perr != nil || got != want {
				t.Errorf("asFraction(%q) = %g, %v; want %g", s, got, perr, want)
			}
		}
		if _, perr := asFraction(scalar("150%"), "p"); perr == nil || perr.Code != ErrOutOfRange {
			t.Errorf("asFraction(150%%) = %v, want out_of_range", perr)
		}
		if _, perr := asFraction(scalar("1.5"), "p"); perr == nil || perr.Code != ErrOutOfRange {
			t.Errorf("asFraction(1.5) = %v, want out_of_range", perr)
		}
		if _, perr := asFraction(scalar("half"), "p"); perr == nil || perr.Code != ErrBadValue {
			t.Errorf("asFraction(half) = %v, want bad_value", perr)
		}
	})

	t.Run("missing and non-scalar", func(t *testing.T) {
		t.Parallel()
		if _, perr := asString(nil, "p"); perr == nil || perr.Code != ErrMissing {
			t.Errorf("asString(nil) = %v, want missing", perr)
		}
		if _, perr := asInt(&node{kind: listNode}, "p"); perr == nil || perr.Code != ErrBadValue {
			t.Errorf("asInt(list) = %v, want bad_value", perr)
		}
	})
}

// TestErrorRendering pins the Error string format splayctl prints.
func TestErrorRendering(t *testing.T) {
	t.Parallel()
	e := &Error{Code: ErrOutOfRange, Path: "apps[0].params.bits", Line: 7, Col: 11, Msg: "99 is outside 1..52"}
	want := "config: 7:11: out_of_range at apps[0].params.bits: 99 is outside 1..52"
	if got := e.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	bare := &Error{Code: ErrSyntax, Msg: "empty document"}
	if got := bare.Error(); got != "config: syntax: empty document" {
		t.Errorf("bare Error() = %q", got)
	}
}
