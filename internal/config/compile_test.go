package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestCompileMinimal pins the exact wire bytes small documents compile
// to: the canonical Scenario.Marshal form, params as sorted-key compact
// JSON holding only what the document set.
func TestCompileMinimal(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"bare app",
			"apps:\n  - app: chord\n",
			`{"apps":[{"app":"chord"}]}`,
		},
		{
			"params sorted and sparse",
			"apps:\n  - app: chord\n    params:\n      lookups_per_min: 6\n      bits: 16\n",
			`{"apps":[{"app":"chord","params":{"bits":16,"lookups_per_min":6}}]}`,
		},
		{
			"human units",
			"name: demo\nseed: 7\napps:\n  - app: cyclon\n    params:\n      shuffle_every: 5s\n    nodes: 24\nduration: 60s\n",
			`{"name":"demo","seed":7,"apps":[{"app":"cyclon","params":{"shuffle_every":5000000000},"nodes":24}],"duration_ns":60000000000}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, perr := Compile([]byte(tc.doc), Options{})
			if perr != nil {
				t.Fatalf("compile: %v", perr)
			}
			if string(got) != tc.want {
				t.Errorf("wire bytes\n got  %s\n want %s", got, tc.want)
			}
		})
	}
}

// fullDoc exercises every schema section at once.
const fullDoc = `# kitchen sink
name: full
seed: 11
testbed:
  kind: uniform
  daemons: 40
  rtt: 10ms
  bps: 512kbps
apps:
  - app: chord
    params:
      bits: 40
      fault_tolerant: true
      lookups_per_min: 6
      report: true
    nodes: 32
    superset: 1.5
    full_list: true
    env:
      caps: [net, fs]
      net:
        max_sockets: 64
        max_tx: 1MB
        blacklist: [10.0.0.1]
      fs:
        max_bytes: 64KB
        max_open_files: 8
    port: 2001
collect:
  metrics: true
  report_every: 5s
  key: k
faults:
  eval_every: 5s
  events:
    - at: 60s
      kind: partition
      fraction: 50%
    - at: 90s
      kind: degrade
      extra_latency: 100ms
      loss: 10%
  rules:
    - name: heal-fast
      when: total(chord.failed_lookups) > 10
      for: 10s
      do: heal
      cooldown: 30s
      max_fires: 2
assert:
  - name: bites
    eventually: total(chord.failed_lookups) > 0
    within: 2m
  - name: recovers
    converges: rate(chord.failed_lookups) < 0.5
    after: 30s
settle: 1s
duration: 5m
register_timeout: 30s
controller_port: 5555
workers: 2
`

// TestCompileFull compiles the kitchen-sink document, checks the output
// is valid JSON carrying every section, and that compilation is
// deterministic byte for byte.
func TestCompileFull(t *testing.T) {
	t.Parallel()
	wire, perr := Compile([]byte(fullDoc), Options{})
	if perr != nil {
		t.Fatalf("compile: %v", perr)
	}
	if !json.Valid(wire) {
		t.Fatalf("compiled output is not valid JSON: %s", wire)
	}
	again, perr := Compile([]byte(fullDoc), Options{})
	if perr != nil || !bytes.Equal(wire, again) {
		t.Errorf("compile is not deterministic: %v", perr)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(wire, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "seed", "testbed", "apps", "collect", "faults",
		"assert", "settle_ns", "duration_ns", "register_timeout_ns", "controller_port", "workers"} {
		if _, ok := m[key]; !ok {
			t.Errorf("wire output lacks %q: %s", key, wire)
		}
	}
	if want := `{"bits":40,"fault_tolerant":true,"lookups_per_min":6,"report":true}`; !strings.Contains(string(wire), want) {
		t.Errorf("params not in canonical sorted form, want %s in %s", want, wire)
	}
	if !strings.Contains(string(wire), `"Fraction":0.5`) {
		t.Errorf("50%% did not compile to 0.5: %s", wire)
	}
	if !strings.Contains(string(wire), `"bps":512000`) {
		t.Errorf("512kbps did not compile to 512000: %s", wire)
	}
	if !strings.Contains(string(wire), `"caps":3`) {
		t.Errorf("[net, fs] did not compile to caps 3: %s", wire)
	}
}

// TestCompileChurnScript compiles a synthetic churn description into an
// explicit deterministic event timeline, seeded by the scenario unless
// churn.seed overrides.
func TestCompileChurnScript(t *testing.T) {
	t.Parallel()
	doc := "seed: 9\napps:\n  - app: chord\nchurn:\n  script: at 30s join 10\n"
	wire, perr := Compile([]byte(doc), Options{})
	if perr != nil {
		t.Fatalf("compile: %v", perr)
	}
	var w struct {
		Churn []struct {
			At   int64 `json:"at"`
			Join bool  `json:"join"`
			Node int   `json:"node"`
		} `json:"churn"`
	}
	if err := json.Unmarshal(wire, &w); err != nil {
		t.Fatal(err)
	}
	if len(w.Churn) != 10 {
		t.Fatalf("join 10 produced %d events", len(w.Churn))
	}
	for _, e := range w.Churn {
		if !e.Join || e.At != int64(30e9) {
			t.Errorf("event %+v, want join at 30s", e)
		}
	}

	// A different churn.seed must yield a different document only when
	// the script is stochastic; the override must at least be accepted.
	doc2 := strings.Replace(doc, "  script:", "  seed: 4\n  script:", 1)
	if _, perr := Compile([]byte(doc2), Options{}); perr != nil {
		t.Fatalf("churn.seed override: %v", perr)
	}

	// Multi-line scripts travel as a list of lines.
	doc3 := "apps:\n  - app: chord\nchurn:\n  script:\n    - at 30s join 10\n    - at 60s leave 5\n"
	if _, perr := Compile([]byte(doc3), Options{}); perr != nil {
		t.Fatalf("script list: %v", perr)
	}
}

// TestCompileTrace exercises the Open hook: references resolve through
// the caller's loader, and are declined with a typed error without one.
func TestCompileTrace(t *testing.T) {
	t.Parallel()
	doc := "apps:\n  - app: chord\nchurn:\n  trace: nodes.trace\n"
	trace := "0.5 join 1\n1.5 leave 1\n"
	wire, perr := Compile([]byte(doc), Options{Open: func(path string) ([]byte, error) {
		if path != "nodes.trace" {
			return nil, fmt.Errorf("unexpected ref %q", path)
		}
		return []byte(trace), nil
	}})
	if perr != nil {
		t.Fatalf("compile with loader: %v", perr)
	}
	if !strings.Contains(string(wire), `"churn"`) {
		t.Errorf("trace did not compile into churn events: %s", wire)
	}
	_, perr = Compile([]byte(doc), Options{})
	if perr == nil || perr.Code != ErrUnsupported || perr.Path != "churn.trace" {
		t.Errorf("trace without loader = %v, want unsupported at churn.trace", perr)
	}
	_, perr = Compile([]byte(doc), Options{Open: func(string) ([]byte, error) {
		return nil, fmt.Errorf("no such file")
	}})
	if perr == nil || perr.Code != ErrBadValue {
		t.Errorf("unreadable trace = %v, want bad_value", perr)
	}
}

// TestCompileErrors pins the typed code, schema path and document
// position of every compiler-level rejection.
func TestCompileErrors(t *testing.T) {
	t.Parallel()
	app := "apps:\n  - app: chord\n" // 2 lines of valid prefix
	cases := []struct {
		name      string
		doc       string
		code      ErrorCode
		path      string
		line, col int
	}{
		{"unknown top field", app + "bogus: 1\n", ErrUnknownField, "bogus", 3, 1},
		{"missing apps", "name: x\n", ErrMissing, "apps", 1, 1},
		{"apps not a list", "apps: 3\n", ErrBadValue, "apps", 1, 7},
		{"unknown app", "apps:\n  - app: quux\n", ErrUnknownApp, "apps[0].app", 2, 10},
		{"app entry not a mapping", "apps:\n  - chord\n", ErrBadValue, "apps[0]", 2, 5},
		{"app name missing", "apps:\n  - nodes: 3\n", ErrMissing, "apps[0].app", 2, 5},
		{"unknown app field", "apps:\n  - app: chord\n    size: 3\n", ErrUnknownField, "apps[0].size", 3, 5},
		{"unknown param", "apps:\n  - app: chord\n    params:\n      qux: 1\n", ErrUnknownParam, "apps[0].params.qux", 4, 7},
		{"param bad value", "apps:\n  - app: chord\n    params:\n      bits: fast\n", ErrBadValue, "apps[0].params.bits", 4, 13},
		{"param out of range", "apps:\n  - app: chord\n    params:\n      bits: 99\n", ErrOutOfRange, "apps[0].params.bits", 4, 13},
		{"param kind mismatch", "apps:\n  - app: chord\n    params:\n      fault_tolerant: 1\n", ErrBadValue, "apps[0].params.fault_tolerant", 4, 23},
		{"params not a mapping", "apps:\n  - app: chord\n    params: 3\n", ErrBadValue, "apps[0].params", 3, 13},
		{"report without collect", "apps:\n  - app: chord\n    params:\n      report: true\n", ErrBadValue, "", 4, 15},
		{"nodes out of range", app[:len(app)-1] + "\n    nodes: 0\n", ErrOutOfRange, "apps[0].nodes", 3, 12},
		{"superset out of range", app[:len(app)-1] + "\n    superset: 99\n", ErrOutOfRange, "apps[0].superset", 3, 15},
		{"port out of range", app[:len(app)-1] + "\n    port: 70000\n", ErrOutOfRange, "apps[0].port", 3, 11},
		{"testbed unknown kind", "testbed:\n  kind: mars\n  daemons: 5\n" + app, ErrBadValue, "testbed.kind", 2, 9},
		{"testbed missing kind", "testbed:\n  daemons: 5\n" + app, ErrMissing, "testbed.kind", 2, 3},
		{"testbed missing daemons", "testbed:\n  kind: live\n" + app, ErrMissing, "testbed.daemons", 2, 3},
		{"daemons out of range", "testbed:\n  kind: live\n  daemons: 0\n" + app, ErrOutOfRange, "testbed.daemons", 3, 12},
		{"rtt on non-uniform", "testbed:\n  kind: live\n  daemons: 5\n  rtt: 10ms\n" + app, ErrBadValue, "testbed.rtt", 4, 8},
		{"bps on non-uniform", "testbed:\n  kind: live\n  daemons: 5\n  bps: 1mbps\n" + app, ErrBadValue, "testbed.bps", 4, 8},
		{"env unknown cap", app[:len(app)-1] + "\n    env:\n      caps: [disk]\n", ErrBadValue, "apps[0].env.caps", 4, 14},
		{"env caps scalar not all", app[:len(app)-1] + "\n    env:\n      caps: some\n", ErrBadValue, "apps[0].env.caps", 4, 13},
		{"env empty caps list", app[:len(app)-1] + "\n    env:\n      caps: []\n", ErrBadValue, "apps[0].env.caps", 4, 13},
		{"collect bad port", app + "collect:\n  metrics_port: 0\n", ErrOutOfRange, "collect.metrics_port", 4, 17},
		{"churn needs one source", app + "churn:\n  seed: 3\n", ErrBadValue, "churn", 4, 3},
		{"churn bad script", app + "churn:\n  script: garbage here\n", ErrBadValue, "churn.script", 4, 11},
		{"faults declare nothing", app + "faults:\n  eval_every: 0\n", ErrMissing, "faults", 4, 3},
		{"event missing at", app + "faults:\n  events:\n    - kind: crash\n      count: 1\n", ErrMissing, "faults.events[0].at", 5, 7},
		{"event unknown kind", app + "faults:\n  events:\n    - at: 1s\n      kind: meteor\n", ErrBadValue, "faults.events[0].kind", 6, 13},
		{"crash needs a target", app + "faults:\n  events:\n    - at: 1s\n      kind: crash\n", ErrMissing, "faults.events[0]", 5, 7},
		{"partition fraction bounds", app + "faults:\n  events:\n    - at: 1s\n      kind: partition\n      fraction: 100%\n", ErrOutOfRange, "faults.events[0].fraction", 5, 7},
		{"rule missing when", app + "faults:\n  rules:\n    - name: r\n      do: heal\n", ErrMissing, "faults.rules[0].when", 5, 7},
		{"rule bad condition", app + "faults:\n  rules:\n    - name: r\n      when: whenever\n      do: heal\n", ErrBadValue, "faults.rules[0].when", 6, 13},
		{"rule unknown stat", app + "faults:\n  rules:\n    - name: r\n      when: median(x) > 1\n      do: heal\n", ErrBadValue, "faults.rules[0].when", 6, 13},
		{"nodes takes no metric", app + "faults:\n  rules:\n    - name: r\n      when: nodes(x) > 1\n      do: heal\n", ErrBadValue, "faults.rules[0].when", 6, 13},
		{"rule inject unsupported", app + "faults:\n  rules:\n    - name: r\n      when: nodes() < 5\n      do: inject crash\n", ErrUnsupported, "faults.rules[0].do", 7, 11},
		{"kill percent bounds", app + "faults:\n  rules:\n    - name: r\n      when: nodes() < 5\n      do: kill 150%\n", ErrBadValue, "faults.rules[0].do", 7, 11},
		{"assert needs a kind", app + "assert:\n  - name: a\n", ErrMissing, "assert[0]", 4, 5},
		{"assert exactly one kind", app + "assert:\n  - name: a\n    eventually: nodes() > 1\n    always: nodes() > 1\n", ErrBadValue, "assert[0]", 4, 5},
		{"controller_port out of range", app + "controller_port: -1\n", ErrOutOfRange, "controller_port", 3, 18},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, perr := Compile([]byte(tc.doc), Options{})
			if perr == nil {
				t.Fatalf("compiled without error")
			}
			if perr.Code != tc.code || perr.Path != tc.path {
				t.Errorf("error = %s at %q, want %s at %q (%v)", perr.Code, perr.Path, tc.code, tc.path, perr)
			}
			if perr.Line != tc.line || perr.Col != tc.col {
				t.Errorf("position = %d:%d, want %d:%d (%v)", perr.Line, perr.Col, tc.line, tc.col, perr)
			}
		})
	}
}

// TestIsDocument pins the wire-vs-document sniff.
func TestIsDocument(t *testing.T) {
	t.Parallel()
	for _, doc := range []string{"apps:\n", "  \n# c\nname: x", "", "name: x"} {
		if !IsDocument([]byte(doc)) {
			t.Errorf("IsDocument(%q) = false", doc)
		}
	}
	for _, wire := range []string{`{"apps":[]}`, "  {\n}", "\n\t{}"} {
		if IsDocument([]byte(wire)) {
			t.Errorf("IsDocument(%q) = true", wire)
		}
	}
}

// TestValidateWire covers the hosting plane's admission check over
// already-serialized scenarios.
func TestValidateWire(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		wire string
		code ErrorCode
		path string
	}{
		{"ok", `{"apps":[{"app":"chord","params":{"bits":16}}]}`, "", ""},
		{"no params ok", `{"apps":[{"app":"chord"}]}`, "", ""},
		{"not json", `{broken`, ErrSyntax, ""},
		{"missing app name", `{"apps":[{"nodes":3}]}`, ErrMissing, "apps[0].app"},
		{"unknown app", `{"apps":[{"app":"quux"}]}`, ErrUnknownApp, "apps[0]"},
		{"unknown param", `{"apps":[{"app":"chord","params":{"qux":1}}]}`, ErrUnknownParam, "apps[0].params.qux"},
		{"out of range", `{"apps":[{"app":"chord","params":{"bits":99}}]}`, ErrOutOfRange, "apps[0].params.bits"},
		{"kind mismatch", `{"apps":[{"app":"chord","params":{"bits":2.5}}]}`, ErrBadValue, "apps[0].params.bits"},
		{"bool mismatch", `{"apps":[{"app":"chord","params":{"fault_tolerant":"yes"}}]}`, ErrBadValue, "apps[0].params.fault_tolerant"},
		{"second app checked", `{"apps":[{"app":"chord"},{"app":"cyclon","params":{"view_size":0}}]}`, ErrOutOfRange, "apps[1].params.view_size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			perr := ValidateWire([]byte(tc.wire), nil)
			if tc.code == "" {
				if perr != nil {
					t.Fatalf("valid wire rejected: %v", perr)
				}
				return
			}
			if perr == nil {
				t.Fatalf("accepted, want %s", tc.code)
			}
			if perr.Code != tc.code || perr.Path != tc.path {
				t.Errorf("error = %s at %q, want %s at %q (%v)", perr.Code, perr.Path, tc.code, tc.path, perr)
			}
		})
	}
}

// TestCatalogListing covers the catalog's public listing surface, which
// "splayctl catalog" renders.
func TestCatalogListing(t *testing.T) {
	t.Parallel()
	c := Builtins()
	names := c.Names()
	for _, want := range []string{"bittorrent", "chord", "cyclon", "epidemic", "pastry"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("catalog lacks %q: %v", want, names)
		}
	}
	chord, ok := c.Lookup("chord")
	if !ok {
		t.Fatal("no chord schema")
	}
	bits, ok := chord.param("bits")
	if !ok || bits.Kind != KindInt || !bits.Bounded {
		t.Errorf("chord.bits schema = %+v", bits)
	}
	if got := bits.FormatBounds(); got != "1..52" {
		t.Errorf("bits bounds = %q", got)
	}
	if got := bits.FormatDefault(); got != "24" {
		t.Errorf("bits default = %q", got)
	}
	cyclon, _ := c.Lookup("cyclon")
	se, _ := cyclon.param("shuffle_every")
	if got := se.FormatDefault(); got != "5s" {
		t.Errorf("shuffle_every default = %q", got)
	}
	if got := se.FormatBounds(); got != "100ms..10m0s" {
		t.Errorf("shuffle_every bounds = %q", got)
	}
	// Registration rejects duplicates and anonymous schemas.
	fresh := NewCatalog()
	if err := fresh.Register(AppSchema{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Register(AppSchema{Name: "x"}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := fresh.Register(AppSchema{}); err == nil {
		t.Error("anonymous schema accepted")
	}
}
