// Package config is the config plane: a human-authorable scenario
// document format (a strict YAML subset with human units — "30s",
// "512kbps", "64KB", "50%") that compiles to the scenario SDK's
// canonical wire JSON, validated against the app catalog so unknown
// applications, unknown keys and out-of-range values fail with typed
// *Errors carrying line and field positions — never silently default.
//
// The compiler emits exactly the bytes Scenario.Marshal would produce
// for the equivalent handwritten-Go scenario (invariant 11, DESIGN.md):
// the wire mirror below must stay field-for-field identical to
// serialize.go's, pinned by the root package's differential tests and
// the golden-pinned configplane experiment. Emitting wire JSON (rather
// than a Scenario value) is what lets both the root SDK and the hosting
// plane's admission path share one compiler without an import cycle.
package config

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/splaykit/splay/internal/churn"
	"github.com/splaykit/splay/internal/faults"
	"github.com/splaykit/splay/internal/sandbox"
)

// Options parameterizes compilation.
type Options struct {
	// Catalog validates application references and parameters; nil uses
	// Builtins().
	Catalog *Catalog
	// Open loads a churn trace reference (churn: {trace: path}),
	// resolved by the caller (LoadScenarioFile resolves relative to the
	// document). Nil declines trace references with a typed
	// ErrUnsupported — in-memory and hosted documents cannot reach
	// files.
	Open func(path string) ([]byte, error)
}

// IsDocument reports whether data is a config document rather than
// wire JSON: wire scenarios are JSON objects, so anything whose first
// non-space byte is not '{' is treated as a document.
func IsDocument(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return false
		default:
			return true
		}
	}
	return true
}

// Validate compiles the document and discards the output: authoring
// feedback without a scenario.
func Validate(data []byte, opt Options) *Error {
	_, err := Compile(data, opt)
	return err
}

// Compile parses a scenario document and emits the canonical wire JSON
// (the Scenario.Marshal format). The result runs anywhere serialized
// scenarios do: splay.UnmarshalScenario, POST /jobs, splayctl submit.
func Compile(data []byte, opt Options) ([]byte, *Error) {
	cat := opt.Catalog
	if cat == nil {
		cat = Builtins()
	}
	doc, perr := parseDoc(data)
	if perr != nil {
		return nil, perr
	}
	c := &compiler{cat: cat, open: opt.Open}
	w, perr := c.scenario(doc)
	if perr != nil {
		return nil, perr
	}
	out, err := json.Marshal(w)
	if err != nil {
		return nil, &Error{Code: ErrBadValue, Msg: fmt.Sprintf("scenario does not serialize: %v", err)}
	}
	return out, nil
}

// The wire mirror: field-for-field identical to serialize.go's
// wireScenario so json.Marshal emits byte-identical documents.
type wireScenario struct {
	Name            string             `json:"name,omitempty"`
	Seed            int64              `json:"seed,omitempty"`
	Testbed         *wireTestbed       `json:"testbed,omitempty"`
	Apps            []wireApp          `json:"apps,omitempty"`
	Churn           []wireChurnEvent   `json:"churn,omitempty"`
	Collect         *wireCollect       `json:"collect,omitempty"`
	Faults          *faults.Plan       `json:"faults,omitempty"`
	Assert          []faults.Assertion `json:"assert,omitempty"`
	SettleNS        time.Duration      `json:"settle_ns,omitempty"`
	DurationNS      time.Duration      `json:"duration_ns,omitempty"`
	RegisterTimeout time.Duration      `json:"register_timeout_ns,omitempty"`
	ControllerPort  int                `json:"controller_port,omitempty"`
	Workers         int                `json:"workers,omitempty"`
}

type wireTestbed struct {
	Kind    string        `json:"kind"`
	Daemons int           `json:"daemons"`
	RTT     time.Duration `json:"rtt_ns,omitempty"`
	Bps     float64       `json:"bps,omitempty"`
}

type wireApp struct {
	App      string          `json:"app"`
	Params   json.RawMessage `json:"params,omitempty"`
	Nodes    int             `json:"nodes,omitempty"`
	Superset float64         `json:"superset,omitempty"`
	FullList bool            `json:"full_list,omitempty"`
	Env      *wireEnv        `json:"env,omitempty"`
	Port     int             `json:"port,omitempty"`
}

type wireEnv struct {
	Caps uint32             `json:"caps,omitempty"`
	Net  *sandbox.NetLimits `json:"net,omitempty"`
	FS   *sandbox.FSLimits  `json:"fs,omitempty"`
}

type wireChurnEvent struct {
	At   time.Duration `json:"at"`
	Join bool          `json:"join"`
	Node int           `json:"node"`
}

type wireCollect struct {
	Metrics     bool          `json:"metrics,omitempty"`
	ReportEvery time.Duration `json:"report_every_ns,omitempty"`
	Key         string        `json:"key,omitempty"`
	MetricsPort int           `json:"metrics_port,omitempty"`
}

// Capability bits, mirroring the root package's Cap constants (pinned
// by TestConfigCapBits in the root package — config cannot import it).
const (
	capNet uint32 = 1 << 0
	capFS  uint32 = 1 << 1
	capAll        = capNet | capFS
)

type compiler struct {
	cat  *Catalog
	open func(string) ([]byte, error)

	// reportAt anchors "report: true" params so a document that asks an
	// app to report without a collect plane fails with a position.
	reportAt *node
}

// requireKeys rejects mapping keys outside the allowed set, anchored at
// the offending key.
func requireKeys(n *node, path string, allowed ...string) *Error {
	for i := range n.keys {
		e := &n.keys[i]
		ok := false
		for _, a := range allowed {
			if e.key == a {
				ok = true
				break
			}
		}
		if !ok {
			return &Error{Code: ErrUnknownField, Path: joinPath(path, e.key), Line: e.keyLine, Col: e.keyCol,
				Msg: fmt.Sprintf("unknown field %q (want %s)", e.key, strings.Join(allowed, ", "))}
		}
	}
	return nil
}

func joinPath(base, key string) string {
	if base == "" {
		return key
	}
	return base + "." + key
}

func (c *compiler) scenario(doc *node) (*wireScenario, *Error) {
	if perr := requireKeys(doc, "", "name", "seed", "testbed", "apps", "churn", "collect",
		"faults", "assert", "settle", "duration", "register_timeout", "controller_port", "workers"); perr != nil {
		return nil, perr
	}
	w := &wireScenario{}
	var perr *Error
	if n := doc.get("name"); n != nil {
		if w.Name, perr = asString(n, "name"); perr != nil {
			return nil, perr
		}
	}
	if n := doc.get("seed"); n != nil {
		if w.Seed, perr = asInt(n, "seed"); perr != nil {
			return nil, perr
		}
	}
	if n := doc.get("testbed"); n != nil {
		if w.Testbed, perr = c.testbed(n); perr != nil {
			return nil, perr
		}
	}
	apps := doc.get("apps")
	if apps == nil {
		return nil, errf(ErrMissing, "apps", doc, "scenario deploys no applications")
	}
	if apps.kind != listNode {
		return nil, errf(ErrBadValue, "apps", apps, "apps must be a list")
	}
	for i, item := range apps.items {
		wa, perr := c.app(item, fmt.Sprintf("apps[%d]", i))
		if perr != nil {
			return nil, perr
		}
		w.Apps = append(w.Apps, wa)
	}
	if n := doc.get("collect"); n != nil {
		if w.Collect, perr = c.collect(n); perr != nil {
			return nil, perr
		}
	}
	if c.reportAt != nil && (w.Collect == nil || !w.Collect.Metrics) {
		return nil, errf(ErrBadValue, "", c.reportAt,
			"report: true needs collect.metrics: true — nothing collects the stream")
	}
	if n := doc.get("churn"); n != nil {
		if w.Churn, perr = c.churn(n, w.Seed); perr != nil {
			return nil, perr
		}
	}
	if n := doc.get("faults"); n != nil {
		if w.Faults, perr = c.faults(n); perr != nil {
			return nil, perr
		}
	}
	if n := doc.get("assert"); n != nil {
		if w.Assert, perr = c.asserts(n); perr != nil {
			return nil, perr
		}
	}
	for _, f := range []struct {
		key string
		dst *time.Duration
	}{{"settle", &w.SettleNS}, {"duration", &w.DurationNS}, {"register_timeout", &w.RegisterTimeout}} {
		if n := doc.get(f.key); n != nil {
			if *f.dst, perr = asDuration(n, f.key); perr != nil {
				return nil, perr
			}
		}
	}
	for _, f := range []struct {
		key string
		dst *int
	}{{"controller_port", &w.ControllerPort}, {"workers", &w.Workers}} {
		if n := doc.get(f.key); n != nil {
			v, perr := asInt(n, f.key)
			if perr != nil {
				return nil, perr
			}
			if v < 0 || v > 1<<31 {
				return nil, errf(ErrOutOfRange, f.key, n, "%d is out of range", v)
			}
			*f.dst = int(v)
		}
	}
	return w, nil
}

func (c *compiler) testbed(n *node) (*wireTestbed, *Error) {
	if n.kind != mapNode {
		return nil, errf(ErrBadValue, "testbed", n, "testbed must be a mapping")
	}
	if perr := requireKeys(n, "testbed", "kind", "daemons", "rtt", "bps"); perr != nil {
		return nil, perr
	}
	w := &wireTestbed{}
	kindN := n.get("kind")
	if kindN == nil {
		return nil, errf(ErrMissing, "testbed.kind", n, "want planetlab, modelnet, uniform or live")
	}
	kind, perr := asString(kindN, "testbed.kind")
	if perr != nil {
		return nil, perr
	}
	switch kind {
	case "planetlab", "modelnet", "uniform", "live":
		w.Kind = kind
	default:
		return nil, errf(ErrBadValue, "testbed.kind", kindN,
			"unknown testbed %q (want planetlab, modelnet, uniform or live)", kind)
	}
	dN := n.get("daemons")
	if dN == nil {
		return nil, errf(ErrMissing, "testbed.daemons", n, "daemon count required")
	}
	d, perr := asInt(dN, "testbed.daemons")
	if perr != nil {
		return nil, perr
	}
	if d < 1 || d > 2_000_000 {
		return nil, errf(ErrOutOfRange, "testbed.daemons", dN, "%d daemons is outside 1..2000000", d)
	}
	w.Daemons = int(d)
	if rttN := n.get("rtt"); rttN != nil {
		if kind != "uniform" {
			return nil, errf(ErrBadValue, "testbed.rtt", rttN, "rtt applies to uniform testbeds only")
		}
		if w.RTT, perr = asDuration(rttN, "testbed.rtt"); perr != nil {
			return nil, perr
		}
	}
	if bpsN := n.get("bps"); bpsN != nil {
		if kind != "uniform" {
			return nil, errf(ErrBadValue, "testbed.bps", bpsN, "bps applies to uniform testbeds only")
		}
		if w.Bps, perr = asRate(bpsN, "testbed.bps"); perr != nil {
			return nil, perr
		}
	}
	return w, nil
}

func (c *compiler) app(n *node, path string) (wireApp, *Error) {
	var w wireApp
	if n.kind != mapNode {
		return w, errf(ErrBadValue, path, n, "each apps entry must be a mapping")
	}
	if perr := requireKeys(n, path, "app", "params", "nodes", "superset", "full_list", "env", "port"); perr != nil {
		return w, perr
	}
	nameN := n.get("app")
	if nameN == nil {
		return w, errf(ErrMissing, path+".app", n, "application name required")
	}
	name, perr := asString(nameN, path+".app")
	if perr != nil {
		return w, perr
	}
	if _, ok := c.cat.Lookup(name); !ok {
		return w, errf(ErrUnknownApp, path+".app", nameN,
			"unknown application %q (catalog: %v)", name, c.cat.Names())
	}
	w.App = name
	paramsN := n.get("params")
	if w.Params, perr = c.cat.compileParams(name, paramsN, path+".params"); perr != nil {
		return w, perr
	}
	if paramsN != nil && c.reportAt == nil {
		if r := paramsN.get("report"); r != nil && r.scalar == "true" {
			c.reportAt = r
		}
	}
	if nodesN := n.get("nodes"); nodesN != nil {
		v, perr := asInt(nodesN, path+".nodes")
		if perr != nil {
			return w, perr
		}
		if v < 1 || v > 2_000_000 {
			return w, errf(ErrOutOfRange, path+".nodes", nodesN, "%d nodes is outside 1..2000000", v)
		}
		w.Nodes = int(v)
	}
	if sN := n.get("superset"); sN != nil {
		v, perr := asFloat(sN, path+".superset")
		if perr != nil {
			return w, perr
		}
		if v < 1 || v > 10 {
			return w, errf(ErrOutOfRange, path+".superset", sN, "superset %g is outside 1..10", v)
		}
		w.Superset = v
	}
	if fN := n.get("full_list"); fN != nil {
		if w.FullList, perr = asBool(fN, path+".full_list"); perr != nil {
			return w, perr
		}
	}
	if eN := n.get("env"); eN != nil {
		if w.Env, perr = c.env(eN, path+".env"); perr != nil {
			return w, perr
		}
	}
	if pN := n.get("port"); pN != nil {
		v, perr := asInt(pN, path+".port")
		if perr != nil {
			return w, perr
		}
		if v < 1 || v > 65535 {
			return w, errf(ErrOutOfRange, path+".port", pN, "port %d is outside 1..65535", v)
		}
		w.Port = int(v)
	}
	return w, nil
}

func (c *compiler) env(n *node, path string) (*wireEnv, *Error) {
	if n.kind != mapNode {
		return nil, errf(ErrBadValue, path, n, "env must be a mapping")
	}
	if perr := requireKeys(n, path, "caps", "net", "fs"); perr != nil {
		return nil, perr
	}
	w := &wireEnv{}
	if capsN := n.get("caps"); capsN != nil {
		switch capsN.kind {
		case scalarNode:
			if capsN.scalar != "all" {
				return nil, errf(ErrBadValue, path+".caps", capsN,
					"want \"all\" or a list like [net, fs], got %q", capsN.scalar)
			}
			w.Caps = capAll
		case listNode:
			for _, item := range capsN.items {
				switch item.scalar {
				case "net":
					w.Caps |= capNet
				case "fs":
					w.Caps |= capFS
				default:
					return nil, errf(ErrBadValue, path+".caps", item,
						"unknown capability %q (want net or fs)", item.scalar)
				}
			}
			if w.Caps == 0 {
				return nil, errf(ErrBadValue, path+".caps", capsN,
					"an empty capability list would grant everything; omit caps instead")
			}
		default:
			return nil, errf(ErrBadValue, path+".caps", capsN, "want \"all\" or a list like [net, fs]")
		}
	}
	if netN := n.get("net"); netN != nil {
		if netN.kind != mapNode {
			return nil, errf(ErrBadValue, path+".net", netN, "net must be a mapping")
		}
		if perr := requireKeys(netN, path+".net", "max_sockets", "max_tx", "max_rx", "blacklist"); perr != nil {
			return nil, perr
		}
		lim := &sandbox.NetLimits{}
		if v := netN.get("max_sockets"); v != nil {
			s, perr := asInt(v, path+".net.max_sockets")
			if perr != nil {
				return nil, perr
			}
			lim.MaxSockets = int(s)
		}
		if v := netN.get("max_tx"); v != nil {
			s, perr := asSize(v, path+".net.max_tx")
			if perr != nil {
				return nil, perr
			}
			lim.MaxTxBytes = s
		}
		if v := netN.get("max_rx"); v != nil {
			s, perr := asSize(v, path+".net.max_rx")
			if perr != nil {
				return nil, perr
			}
			lim.MaxRxBytes = s
		}
		if v := netN.get("blacklist"); v != nil {
			if v.kind != listNode {
				return nil, errf(ErrBadValue, path+".net.blacklist", v, "blacklist must be a list")
			}
			for _, item := range v.items {
				s, perr := asString(item, path+".net.blacklist")
				if perr != nil {
					return nil, perr
				}
				lim.Blacklist = append(lim.Blacklist, s)
			}
		}
		w.Net = lim
	}
	if fsN := n.get("fs"); fsN != nil {
		if fsN.kind != mapNode {
			return nil, errf(ErrBadValue, path+".fs", fsN, "fs must be a mapping")
		}
		if perr := requireKeys(fsN, path+".fs", "max_bytes", "max_open_files"); perr != nil {
			return nil, perr
		}
		lim := &sandbox.FSLimits{}
		if v := fsN.get("max_bytes"); v != nil {
			s, perr := asSize(v, path+".fs.max_bytes")
			if perr != nil {
				return nil, perr
			}
			lim.MaxBytes = s
		}
		if v := fsN.get("max_open_files"); v != nil {
			s, perr := asInt(v, path+".fs.max_open_files")
			if perr != nil {
				return nil, perr
			}
			lim.MaxOpenFiles = int(s)
		}
		w.FS = lim
	}
	if w.Caps == 0 && w.Net == nil && w.FS == nil {
		return nil, nil
	}
	return w, nil
}

func (c *compiler) collect(n *node) (*wireCollect, *Error) {
	if n.kind != mapNode {
		return nil, errf(ErrBadValue, "collect", n, "collect must be a mapping")
	}
	if perr := requireKeys(n, "collect", "metrics", "report_every", "key", "metrics_port"); perr != nil {
		return nil, perr
	}
	w := &wireCollect{}
	var perr *Error
	if v := n.get("metrics"); v != nil {
		if w.Metrics, perr = asBool(v, "collect.metrics"); perr != nil {
			return nil, perr
		}
	}
	if v := n.get("report_every"); v != nil {
		if w.ReportEvery, perr = asDuration(v, "collect.report_every"); perr != nil {
			return nil, perr
		}
	}
	if v := n.get("key"); v != nil {
		if w.Key, perr = asString(v, "collect.key"); perr != nil {
			return nil, perr
		}
	}
	if v := n.get("metrics_port"); v != nil {
		p, perr := asInt(v, "collect.metrics_port")
		if perr != nil {
			return nil, perr
		}
		if p < 1 || p > 65535 {
			return nil, errf(ErrOutOfRange, "collect.metrics_port", v, "port %d is outside 1..65535", p)
		}
		w.MetricsPort = int(p)
	}
	return w, nil
}

func (c *compiler) churn(n *node, seed int64) ([]wireChurnEvent, *Error) {
	if n.kind != mapNode {
		return nil, errf(ErrBadValue, "churn", n, "churn must be a mapping")
	}
	if perr := requireKeys(n, "churn", "script", "trace", "seed"); perr != nil {
		return nil, perr
	}
	scriptN, traceN := n.get("script"), n.get("trace")
	if (scriptN == nil) == (traceN == nil) {
		return nil, errf(ErrBadValue, "churn", n, "churn takes exactly one of script or trace")
	}
	if sN := n.get("seed"); sN != nil {
		v, perr := asInt(sN, "churn.seed")
		if perr != nil {
			return nil, perr
		}
		seed = v
	}
	var tr churn.Trace
	if scriptN != nil {
		var lines []string
		switch scriptN.kind {
		case scalarNode:
			lines = []string{scriptN.scalar}
		case listNode:
			for _, item := range scriptN.items {
				s, perr := asString(item, "churn.script")
				if perr != nil {
					return nil, perr
				}
				lines = append(lines, s)
			}
		default:
			return nil, errf(ErrBadValue, "churn.script", scriptN,
				"script must be a line or a list of lines")
		}
		s, err := churn.ParseScript(strings.Join(lines, "\n"))
		if err != nil {
			return nil, errf(ErrBadValue, "churn.script", scriptN, "%v", err)
		}
		tr = churn.FromScript(s, seed)
	} else {
		path, perr := asString(traceN, "churn.trace")
		if perr != nil {
			return nil, perr
		}
		if c.open == nil {
			return nil, errf(ErrUnsupported, "churn.trace", traceN,
				"trace references need a file-based loader (LoadScenarioFile or splayctl); inline documents cannot reach %q", path)
		}
		raw, err := c.open(path)
		if err != nil {
			return nil, errf(ErrBadValue, "churn.trace", traceN, "trace %q: %v", path, err)
		}
		tr, err = churn.ReadTrace(strings.NewReader(string(raw)))
		if err != nil {
			return nil, errf(ErrBadValue, "churn.trace", traceN, "trace %q: %v", path, err)
		}
	}
	out := make([]wireChurnEvent, len(tr))
	for i, e := range tr {
		out[i] = wireChurnEvent{At: e.At, Join: e.Action == churn.Join, Node: e.Node}
	}
	return out, nil
}

func (c *compiler) faults(n *node) (*faults.Plan, *Error) {
	if n.kind != mapNode {
		return nil, errf(ErrBadValue, "faults", n, "faults must be a mapping")
	}
	if perr := requireKeys(n, "faults", "events", "rules", "eval_every"); perr != nil {
		return nil, perr
	}
	plan := &faults.Plan{}
	if evN := n.get("events"); evN != nil {
		if evN.kind != listNode {
			return nil, errf(ErrBadValue, "faults.events", evN, "events must be a list")
		}
		for i, item := range evN.items {
			ev, perr := c.faultEvent(item, fmt.Sprintf("faults.events[%d]", i))
			if perr != nil {
				return nil, perr
			}
			plan.Events = append(plan.Events, ev)
		}
	}
	if rN := n.get("rules"); rN != nil {
		if rN.kind != listNode {
			return nil, errf(ErrBadValue, "faults.rules", rN, "rules must be a list")
		}
		for i, item := range rN.items {
			rule, perr := c.faultRule(item, fmt.Sprintf("faults.rules[%d]", i))
			if perr != nil {
				return nil, perr
			}
			plan.Rules = append(plan.Rules, rule)
		}
	}
	if eN := n.get("eval_every"); eN != nil {
		d, perr := asDuration(eN, "faults.eval_every")
		if perr != nil {
			return nil, perr
		}
		plan.EvalEvery = d
	}
	if plan.Empty() && plan.EvalEvery == 0 {
		return nil, errf(ErrMissing, "faults", n, "faults declares no events and no rules")
	}
	return plan, nil
}

var faultKinds = map[string]faults.EventKind{
	"crash":     faults.Crash,
	"restart":   faults.Restart,
	"partition": faults.Partition,
	"heal":      faults.Heal,
	"degrade":   faults.Degrade,
	"restore":   faults.Restore,
	"rpc-fault": faults.RPCFault,
	"rpc-clear": faults.RPCClear,
}

func (c *compiler) faultEvent(n *node, path string) (faults.Event, *Error) {
	var ev faults.Event
	if n.kind != mapNode {
		return ev, errf(ErrBadValue, path, n, "each event must be a mapping")
	}
	if perr := requireKeys(n, path, "at", "kind", "fraction", "count",
		"extra_latency", "loss", "method", "drop", "delay"); perr != nil {
		return ev, perr
	}
	atN := n.get("at")
	if atN == nil {
		return ev, errf(ErrMissing, path+".at", n, "event time required")
	}
	at, perr := asDuration(atN, path+".at")
	if perr != nil {
		return ev, perr
	}
	ev.At = at
	kindN := n.get("kind")
	if kindN == nil {
		return ev, errf(ErrMissing, path+".kind", n,
			"event kind required (crash, restart, partition, heal, degrade, restore, rpc-fault or rpc-clear)")
	}
	kindS, perr := asString(kindN, path+".kind")
	if perr != nil {
		return ev, perr
	}
	kind, ok := faultKinds[kindS]
	if !ok {
		return ev, errf(ErrBadValue, path+".kind", kindN,
			"unknown event kind %q (want crash, restart, partition, heal, degrade, restore, rpc-fault or rpc-clear)", kindS)
	}
	ev.Kind = kind
	if v := n.get("fraction"); v != nil {
		if ev.Fraction, perr = asFraction(v, path+".fraction"); perr != nil {
			return ev, perr
		}
	}
	if v := n.get("count"); v != nil {
		cnt, perr := asInt(v, path+".count")
		if perr != nil {
			return ev, perr
		}
		if cnt < 1 {
			return ev, errf(ErrOutOfRange, path+".count", v, "count must be positive")
		}
		ev.Count = int(cnt)
	}
	if v := n.get("extra_latency"); v != nil {
		if ev.ExtraLatency, perr = asDuration(v, path+".extra_latency"); perr != nil {
			return ev, perr
		}
	}
	if v := n.get("loss"); v != nil {
		if ev.Loss, perr = asFraction(v, path+".loss"); perr != nil {
			return ev, perr
		}
	}
	if v := n.get("method"); v != nil {
		if ev.Method, perr = asString(v, path+".method"); perr != nil {
			return ev, perr
		}
	}
	if v := n.get("drop"); v != nil {
		if ev.Drop, perr = asFraction(v, path+".drop"); perr != nil {
			return ev, perr
		}
	}
	if v := n.get("delay"); v != nil {
		if ev.Delay, perr = asDuration(v, path+".delay"); perr != nil {
			return ev, perr
		}
	}
	switch kind {
	case faults.Crash:
		if ev.Fraction == 0 && ev.Count == 0 {
			return ev, errf(ErrMissing, path, n, "crash needs a fraction or a count")
		}
	case faults.Partition:
		if ev.Fraction <= 0 || ev.Fraction >= 1 {
			return ev, errf(ErrOutOfRange, path+".fraction", n,
				"partition needs a fraction strictly between 0 and 1")
		}
	}
	return ev, nil
}

func (c *compiler) faultRule(n *node, path string) (faults.Rule, *Error) {
	var r faults.Rule
	if n.kind != mapNode {
		return r, errf(ErrBadValue, path, n, "each rule must be a mapping")
	}
	if perr := requireKeys(n, path, "name", "when", "for", "do", "cooldown", "max_fires"); perr != nil {
		return r, perr
	}
	nameN := n.get("name")
	if nameN == nil {
		return r, errf(ErrMissing, path+".name", n, "rule name required")
	}
	var perr *Error
	if r.Name, perr = asString(nameN, path+".name"); perr != nil {
		return r, perr
	}
	whenN := n.get("when")
	if whenN == nil {
		return r, errf(ErrMissing, path+".when", n, "rule condition required, e.g. \"total(chord.failed_lookups) > 10\"")
	}
	if r.When, perr = parseCondition(whenN, path+".when"); perr != nil {
		return r, perr
	}
	doN := n.get("do")
	if doN == nil {
		return r, errf(ErrMissing, path+".do", n, "rule action required (heal, \"kill n\", \"kill p%%\" or \"grow n\")")
	}
	if r.Do, perr = parseAction(doN, path+".do"); perr != nil {
		return r, perr
	}
	if v := n.get("for"); v != nil {
		if r.For, perr = asDuration(v, path+".for"); perr != nil {
			return r, perr
		}
	}
	if v := n.get("cooldown"); v != nil {
		if r.Cooldown, perr = asDuration(v, path+".cooldown"); perr != nil {
			return r, perr
		}
	}
	if v := n.get("max_fires"); v != nil {
		m, perr := asInt(v, path+".max_fires")
		if perr != nil {
			return r, perr
		}
		if m < 0 {
			return r, errf(ErrOutOfRange, path+".max_fires", v, "max_fires must be non-negative")
		}
		r.MaxFires = int(m)
	}
	return r, nil
}

func (c *compiler) asserts(n *node) ([]faults.Assertion, *Error) {
	if n.kind != listNode {
		return nil, errf(ErrBadValue, "assert", n, "assert must be a list")
	}
	var out []faults.Assertion
	for i, item := range n.items {
		a, perr := c.assertion(item, fmt.Sprintf("assert[%d]", i))
		if perr != nil {
			return nil, perr
		}
		out = append(out, a)
	}
	return out, nil
}

func (c *compiler) assertion(n *node, path string) (faults.Assertion, *Error) {
	var a faults.Assertion
	if n.kind != mapNode {
		return a, errf(ErrBadValue, path, n, "each assertion must be a mapping")
	}
	if perr := requireKeys(n, path, "name", "eventually", "always", "converges", "within", "after"); perr != nil {
		return a, perr
	}
	nameN := n.get("name")
	if nameN == nil {
		return a, errf(ErrMissing, path+".name", n, "assertion name required")
	}
	var perr *Error
	if a.Name, perr = asString(nameN, path+".name"); perr != nil {
		return a, perr
	}
	kinds := 0
	for _, k := range []struct {
		key  string
		kind faults.AssertKind
	}{{"eventually", faults.Eventually}, {"always", faults.Always}, {"converges", faults.Converges}} {
		if v := n.get(k.key); v != nil {
			kinds++
			a.Kind = k.kind
			if a.Cond, perr = parseCondition(v, path+"."+k.key); perr != nil {
				return a, perr
			}
		}
	}
	if kinds == 0 {
		return a, errf(ErrMissing, path, n, "want one of eventually, always or converges with a condition")
	}
	if kinds > 1 {
		return a, errf(ErrBadValue, path, n, "want exactly one of eventually, always or converges")
	}
	if v := n.get("within"); v != nil {
		if a.Within, perr = asDuration(v, path+".within"); perr != nil {
			return a, perr
		}
	}
	if v := n.get("after"); v != nil {
		if a.After, perr = asDuration(v, path+".after"); perr != nil {
			return a, perr
		}
	}
	return a, nil
}

// ValidateWire validates an already-serialized wire scenario's
// application references against the catalog — the hosting plane's
// admission check for plain JSON submissions. It reads only the apps
// array; structural validation of the rest belongs to the submission
// decoder.
func ValidateWire(data []byte, cat *Catalog) *Error {
	if cat == nil {
		cat = Builtins()
	}
	var w struct {
		Apps []struct {
			App    string          `json:"app"`
			Params json.RawMessage `json:"params"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return &Error{Code: ErrSyntax, Msg: fmt.Sprintf("scenario does not parse: %v", err)}
	}
	for i, a := range w.Apps {
		path := fmt.Sprintf("apps[%d]", i)
		if a.App == "" {
			return &Error{Code: ErrMissing, Path: path + ".app", Msg: "application name required"}
		}
		if perr := cat.validateParamsJSON(a.App, a.Params, path); perr != nil {
			return perr
		}
	}
	return nil
}
