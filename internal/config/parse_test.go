package config

import (
	"strings"
	"testing"
)

// TestParseStructure pins the parser's shape handling: mappings, block
// and flow lists, nesting, comments, quoting, and the positions nodes
// carry.
func TestParseStructure(t *testing.T) {
	t.Parallel()
	doc := strings.Join([]string{
		"# header comment",
		"name: demo  # trailing comment",
		"seed: 42",
		"testbed:",
		"  kind: uniform",
		"  daemons: 10",
		"apps:",
		"  - app: chord",
		"    nodes: 8",
		"  - app: cyclon",
		"caps: [net, fs]",
		"quoted: \"a: b # not a comment\"",
		"single: 'it''s'",
		"",
	}, "\n")
	root, perr := parseDoc([]byte(doc))
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	if root.kind != mapNode {
		t.Fatalf("root is %v, want mapping", root.kind)
	}
	if got := root.get("name"); got == nil || got.scalar != "demo" || got.quoted {
		t.Errorf("name = %+v, want plain scalar demo", got)
	}
	if got := root.get("name"); got.line != 2 || got.col != 7 {
		t.Errorf("name position = %d:%d, want 2:7", got.line, got.col)
	}
	tb := root.get("testbed")
	if tb == nil || tb.kind != mapNode || len(tb.keys) != 2 {
		t.Fatalf("testbed = %+v, want 2-entry mapping", tb)
	}
	if got := tb.get("daemons"); got.scalar != "10" || got.line != 6 {
		t.Errorf("testbed.daemons = %+v, want 10 at line 6", got)
	}
	apps := root.get("apps")
	if apps == nil || apps.kind != listNode || len(apps.items) != 2 {
		t.Fatalf("apps = %+v, want 2-item list", apps)
	}
	first := apps.items[0]
	if first.kind != mapNode || first.get("app").scalar != "chord" || first.get("nodes").scalar != "8" {
		t.Errorf("apps[0] = %+v, want {app: chord, nodes: 8}", first)
	}
	if second := apps.items[1]; second.get("app").scalar != "cyclon" {
		t.Errorf("apps[1] = %+v, want {app: cyclon}", second)
	}
	caps := root.get("caps")
	if caps == nil || caps.kind != listNode || len(caps.items) != 2 ||
		caps.items[0].scalar != "net" || caps.items[1].scalar != "fs" {
		t.Errorf("caps = %+v, want flow list [net, fs]", caps)
	}
	if got := root.get("quoted"); got == nil || !got.quoted || got.scalar != "a: b # not a comment" {
		t.Errorf("quoted = %+v, want quoted scalar with comment-ish content", got)
	}
	if got := root.get("single"); got == nil || !got.quoted || got.scalar != "it's" {
		t.Errorf("single = %+v, want it's", got)
	}
}

// TestParseErrors pins every parser-level failure: the typed code and
// the 1-based position each error is anchored at.
func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		doc       string
		code      ErrorCode
		line, col int
	}{
		{"empty", "", ErrSyntax, 1, 1},
		{"comments only", "# nothing\n\n# here\n", ErrSyntax, 1, 1},
		{"tab indent", "a: 1\n\tb: 2", ErrSyntax, 2, 1},
		{"top-level list", "- item", ErrSyntax, 1, 1},
		{"indented start", "  a: 1", ErrSyntax, 1, 3},
		{"duplicate key", "a: 1\na: 2", ErrSyntax, 2, 1},
		{"missing colon", "a: 1\njust words", ErrSyntax, 2, 1},
		{"invalid key", "a b: 1", ErrSyntax, 1, 1},
		{"key without value", "a:", ErrSyntax, 1, 1},
		{"empty value", "a: \"\"x", ErrSyntax, 1, 4},
		{"unexpected indent", "a: 1\n  b: 2", ErrSyntax, 2, 3},
		{"list then deeper", "a:\n  - x\n    - y", ErrSyntax, 3, 5},
		{"empty list item", "a:\n  - ", ErrSyntax, 2, 3},
		{"unclosed double quote", "a: \"abc", ErrSyntax, 1, 4},
		{"unclosed single quote", "a: 'abc", ErrSyntax, 1, 4},
		{"trailing after quote", "a: \"x\" y", ErrSyntax, 1, 4},
		{"unclosed flow list", "a: [x, y", ErrSyntax, 1, 4},
		{"empty flow element", "a: [x, , y]", ErrSyntax, 1, 4},
		{"trailing after flow list", "a: [x] y", ErrSyntax, 1, 4},
		{"multi-doc", "---\na: 1", ErrUnsupported, 1, 1},
		{"directive", "%YAML 1.2\na: 1", ErrUnsupported, 1, 1},
		{"flow mapping", "a: {b: 1}", ErrUnsupported, 1, 4},
		{"anchor", "a: &x 1", ErrUnsupported, 1, 4},
		{"alias", "a: *x", ErrUnsupported, 1, 4},
		{"tag", "a: !!str x", ErrUnsupported, 1, 4},
		{"block scalar", "a: |\n  text", ErrUnsupported, 1, 4},
		{"complex key", "a: ? x", ErrUnsupported, 1, 4},
		{"flow list holding non-scalar", "a: [x, {y}]", ErrUnsupported, 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, perr := parseDoc([]byte(tc.doc))
			if perr == nil {
				t.Fatalf("parsed without error")
			}
			if perr.Code != tc.code {
				t.Errorf("code = %s, want %s (%v)", perr.Code, tc.code, perr)
			}
			if perr.Line != tc.line || perr.Col != tc.col {
				t.Errorf("position = %d:%d, want %d:%d (%v)", perr.Line, perr.Col, tc.line, tc.col, perr)
			}
		})
	}
}

// TestParseCRLF accepts Windows line endings transparently.
func TestParseCRLF(t *testing.T) {
	t.Parallel()
	root, perr := parseDoc([]byte("a: 1\r\nb: two\r\n"))
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	if root.get("a").scalar != "1" || root.get("b").scalar != "two" {
		t.Errorf("CRLF document parsed to %+v", root)
	}
}
