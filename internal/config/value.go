package config

import (
	"strconv"
	"strings"
	"time"
)

// Human-unit scalar conversions. Every converter takes the node for
// positions and a schema path for the error; quoted scalars are always
// strings, so a quoted "30s" where a duration belongs is declined
// rather than coerced.

// asScalar asserts the node is a scalar.
func asScalar(n *node, path string) (string, *Error) {
	if n == nil {
		return "", &Error{Code: ErrMissing, Path: path, Msg: "value required"}
	}
	if n.kind != scalarNode {
		return "", errf(ErrBadValue, path, n, "want a scalar, got a %s", n.kind)
	}
	return n.scalar, nil
}

// asString accepts any scalar verbatim.
func asString(n *node, path string) (string, *Error) {
	return asScalar(n, path)
}

// asBool accepts true/false only (no yes/on coercions).
func asBool(n *node, path string) (bool, *Error) {
	s, perr := asScalar(n, path)
	if perr != nil {
		return false, perr
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, errf(ErrBadValue, path, n, "want true or false, got %q", s)
}

// asInt accepts a plain base-10 integer.
func asInt(n *node, path string) (int64, *Error) {
	s, perr := asScalar(n, path)
	if perr != nil {
		return 0, perr
	}
	if n.quoted {
		return 0, errf(ErrBadValue, path, n, "want an integer, got a quoted string")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, errf(ErrBadValue, path, n, "want an integer, got %q", s)
	}
	return v, nil
}

// asFloat accepts a plain decimal number.
func asFloat(n *node, path string) (float64, *Error) {
	s, perr := asScalar(n, path)
	if perr != nil {
		return 0, perr
	}
	if n.quoted {
		return 0, errf(ErrBadValue, path, n, "want a number, got a quoted string")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, errf(ErrBadValue, path, n, "want a number, got %q", s)
	}
	return v, nil
}

// asDuration accepts Go duration syntax ("30s", "100ms", "5m") or "0".
func asDuration(n *node, path string) (time.Duration, *Error) {
	s, perr := asScalar(n, path)
	if perr != nil {
		return 0, perr
	}
	if n.quoted {
		return 0, errf(ErrBadValue, path, n, "want a duration, got a quoted string")
	}
	if s == "0" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, errf(ErrBadValue, path, n, "want a duration like 30s or 100ms, got %q", s)
	}
	if d < 0 {
		return 0, errf(ErrOutOfRange, path, n, "duration %s is negative", d)
	}
	return d, nil
}

// asSize accepts byte sizes with binary units: "64KB" (= 64×1024),
// "4MB", "1GB", or a plain byte count.
func asSize(n *node, path string) (int64, *Error) {
	s, perr := asScalar(n, path)
	if perr != nil {
		return 0, perr
	}
	if n.quoted {
		return 0, errf(ErrBadValue, path, n, "want a size, got a quoted string")
	}
	mult := int64(1)
	num := s
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"B", 1}} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v < 0 {
		return 0, errf(ErrBadValue, path, n, "want a size like 64KB or 4MB, got %q", s)
	}
	return v * mult, nil
}

// asRate accepts network rates in decimal units: "512kbps" (= 512 000
// bit/s), "10mbps", "1gbps", "56kbps", or a plain bit/s number.
func asRate(n *node, path string) (float64, *Error) {
	s, perr := asScalar(n, path)
	if perr != nil {
		return 0, perr
	}
	if n.quoted {
		return 0, errf(ErrBadValue, path, n, "want a rate, got a quoted string")
	}
	mult := 1.0
	num := s
	for _, u := range []struct {
		suffix string
		mult   float64
	}{{"kbps", 1e3}, {"mbps", 1e6}, {"gbps", 1e9}, {"bps", 1}} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, errf(ErrBadValue, path, n, "want a rate like 512kbps or 10mbps, got %q", s)
	}
	return v * mult, nil
}

// asFraction accepts "50%" or a plain number in [0, 1].
func asFraction(n *node, path string) (float64, *Error) {
	s, perr := asScalar(n, path)
	if perr != nil {
		return 0, perr
	}
	if n.quoted {
		return 0, errf(ErrBadValue, path, n, "want a fraction, got a quoted string")
	}
	if strings.HasSuffix(s, "%") {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, errf(ErrBadValue, path, n, "want a percentage like 50%%, got %q", s)
		}
		if v < 0 || v > 100 {
			return 0, errf(ErrOutOfRange, path, n, "percentage %s is outside 0%%..100%%", s)
		}
		return v / 100, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, errf(ErrBadValue, path, n, "want a fraction like 0.5 or 50%%, got %q", s)
	}
	if v < 0 || v > 1 {
		return 0, errf(ErrOutOfRange, path, n, "fraction %g is outside 0..1", v)
	}
	return v, nil
}
