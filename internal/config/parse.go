package config

import (
	"fmt"
	"strconv"
	"strings"
)

// The scenario document format is a strict YAML subset, parsed by hand
// (the repo takes no dependencies): indentation-scoped mappings, "- "
// block lists, flow lists of scalars ("[net, fs]"), plain and quoted
// scalars, and "#" comments. Everything else YAML allows — anchors,
// aliases, tags, flow maps, block scalars, multiple documents, tab
// indentation — is declined with a typed error rather than guessed at
// (the llenc rule: a document either parses to exactly what it says or
// it does not parse). Positions survive into every node so schema
// errors point at the offending line and column.

// nodeKind discriminates parsed nodes.
type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	listNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	case listNode:
		return "list"
	}
	return fmt.Sprintf("node(%d)", int(k))
}

// node is one parsed value with its document position (1-based).
type node struct {
	kind   nodeKind
	line   int
	col    int
	scalar string // scalarNode: decoded text
	quoted bool   // scalarNode: was quoted (always a string, never a unit)
	keys   []mapEntry
	items  []*node
}

// mapEntry is one mapping key/value pair; the key's own position
// anchors unknown-field errors.
type mapEntry struct {
	key     string
	keyLine int
	keyCol  int
	val     *node
}

// get returns the value for key, nil when absent.
func (n *node) get(key string) *node {
	for i := range n.keys {
		if n.keys[i].key == key {
			return n.keys[i].val
		}
	}
	return nil
}

// entry returns the full mapping entry for key.
func (n *node) entry(key string) *mapEntry {
	for i := range n.keys {
		if n.keys[i].key == key {
			return &n.keys[i]
		}
	}
	return nil
}

// srcLine is one content-bearing document line, comments stripped.
type srcLine struct {
	indent int    // leading spaces
	text   string // content after the indent
	line   int    // 1-based source line
}

type parser struct {
	lines []srcLine
	pos   int
}

// parseDoc parses a whole document into its top-level mapping.
func parseDoc(data []byte) (*node, *Error) {
	lines, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, &Error{Code: ErrSyntax, Line: 1, Col: 1, Msg: "empty document"}
	}
	p := &parser{lines: lines}
	first := p.lines[0]
	if first.indent != 0 {
		return nil, &Error{Code: ErrSyntax, Line: first.line, Col: first.indent + 1,
			Msg: "top level must start at column 1"}
	}
	if strings.HasPrefix(first.text, "-") {
		return nil, &Error{Code: ErrSyntax, Line: first.line, Col: 1,
			Msg: "top level must be a mapping, not a list"}
	}
	root, perr := p.parseMap(0)
	if perr != nil {
		return nil, perr
	}
	if p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		return nil, &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
			Msg: fmt.Sprintf("unexpected content %q", ln.text)}
	}
	return root, nil
}

// splitLines strips comments and blanks, validates indentation, and
// declines multi-document and directive markers up front.
func splitLines(data []byte) ([]srcLine, *Error) {
	var out []srcLine
	for i, raw := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, &Error{Code: ErrSyntax, Line: lineNo, Col: indent + 1,
				Msg: "tab in indentation (use spaces)"}
		}
		text := line[indent:]
		if text == "" || text[0] == '#' {
			continue
		}
		if indent == 0 {
			switch {
			case text == "---" || strings.HasPrefix(text, "--- "):
				return nil, &Error{Code: ErrUnsupported, Line: lineNo, Col: 1,
					Msg: "multi-document streams are not supported"}
			case text[0] == '%':
				return nil, &Error{Code: ErrUnsupported, Line: lineNo, Col: 1,
					Msg: "YAML directives are not supported"}
			}
		}
		out = append(out, srcLine{indent: indent, text: text, line: lineNo})
	}
	return out, nil
}

// parseMap parses mapping entries at exactly indent.
func (p *parser) parseMap(indent int) (*node, *Error) {
	first := p.lines[p.pos]
	n := &node{kind: mapNode, line: first.line, col: first.indent + 1}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
				Msg: "unexpected indentation"}
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
				Msg: "list item where a mapping entry was expected"}
		}
		key, rest, perr := splitKey(ln)
		if perr != nil {
			return nil, perr
		}
		if n.get(key) != nil {
			return nil, &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
				Msg: fmt.Sprintf("duplicate key %q", key)}
		}
		entry := mapEntry{key: key, keyLine: ln.line, keyCol: ln.indent + 1}
		if rest == "" {
			// Block value on the following, deeper-indented lines.
			p.pos++
			val, perr := p.parseChild(indent, ln)
			if perr != nil {
				return nil, perr
			}
			entry.val = val
		} else {
			val, perr := parseInline(rest, ln.line, ln.indent+(len(ln.text)-len(rest))+1)
			if perr != nil {
				return nil, perr
			}
			entry.val = val
			p.pos++
		}
		n.keys = append(n.keys, entry)
	}
	return n, nil
}

// parseChild parses the block value of "key:" — the following lines
// indented deeper than the key.
func (p *parser) parseChild(parentIndent int, keyLine srcLine) (*node, *Error) {
	if p.pos >= len(p.lines) || p.lines[p.pos].indent <= parentIndent {
		return nil, &Error{Code: ErrSyntax, Line: keyLine.line, Col: keyLine.indent + 1,
			Msg: fmt.Sprintf("key %q has no value", strings.TrimSuffix(keyLine.text, ":"))}
	}
	child := p.lines[p.pos]
	if strings.HasPrefix(child.text, "- ") || child.text == "-" {
		return p.parseList(child.indent)
	}
	return p.parseMap(child.indent)
}

// parseList parses "- " items at exactly indent. The dash counts as
// indentation (as in YAML): an item's content re-enters the parser as a
// line indented past the dash, so "- key: value" starts a mapping whose
// further entries sit under the content column.
func (p *parser) parseList(indent int) (*node, *Error) {
	first := p.lines[p.pos]
	n := &node{kind: listNode, line: first.line, col: first.indent + 1}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
				Msg: "unexpected indentation"}
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			break // a sibling mapping key ends the list for the caller to reject
		}
		if ln.text == "-" {
			p.pos++
			item, perr := p.parseChild(indent, ln)
			if perr != nil {
				return nil, perr
			}
			n.items = append(n.items, item)
			continue
		}
		rest := ln.text[2:]
		extra := 0
		for extra < len(rest) && rest[extra] == ' ' {
			extra++
		}
		rest = rest[extra:]
		if rest == "" {
			return nil, &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
				Msg: "empty list item"}
		}
		contentIndent := ln.indent + 2 + extra
		if isMapStart(rest) {
			// Re-enter as a mapping whose first line is the item content.
			p.lines[p.pos] = srcLine{indent: contentIndent, text: rest, line: ln.line}
			item, perr := p.parseMap(contentIndent)
			if perr != nil {
				return nil, perr
			}
			n.items = append(n.items, item)
			continue
		}
		item, perr := parseInline(rest, ln.line, contentIndent+1)
		if perr != nil {
			return nil, perr
		}
		n.items = append(n.items, item)
		p.pos++
	}
	return n, nil
}

// splitKey splits "key: value" / "key:"; rest is "" for block values.
func splitKey(ln srcLine) (key, rest string, perr *Error) {
	idx := strings.IndexByte(ln.text, ':')
	if idx <= 0 || (idx+1 < len(ln.text) && ln.text[idx+1] != ' ') {
		return "", "", &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
			Msg: fmt.Sprintf("expected \"key: value\", got %q", ln.text)}
	}
	key = ln.text[:idx]
	if !validKey(key) {
		return "", "", &Error{Code: ErrSyntax, Line: ln.line, Col: ln.indent + 1,
			Msg: fmt.Sprintf("invalid key %q", key)}
	}
	rest = strings.TrimLeft(ln.text[idx+1:], " ")
	if rest != "" && rest[0] == '#' {
		rest = ""
	}
	return key, rest, nil
}

// isMapStart reports whether a list item's content begins a mapping.
func isMapStart(text string) bool {
	idx := strings.IndexByte(text, ':')
	if idx <= 0 {
		return false
	}
	if idx+1 < len(text) && text[idx+1] != ' ' {
		return false
	}
	return validKey(text[:idx])
}

// validKey admits the schema's key alphabet: letters, digits, '_', '-'.
func validKey(k string) bool {
	if k == "" {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// parseInline parses a scalar or flow list that sits on its key's (or
// dash's) line. col is the content's 1-based column.
func parseInline(text string, line, col int) (*node, *Error) {
	switch text[0] {
	case '[':
		return parseFlowList(text, line, col)
	case '"', '\'':
		s, rem, perr := parseQuoted(text, line, col)
		if perr != nil {
			return nil, perr
		}
		if rem = strings.TrimLeft(rem, " "); rem != "" && rem[0] != '#' {
			return nil, &Error{Code: ErrSyntax, Line: line, Col: col,
				Msg: fmt.Sprintf("unexpected trailing content %q after quoted scalar", rem)}
		}
		return &node{kind: scalarNode, line: line, col: col, scalar: s, quoted: true}, nil
	case '{':
		return nil, &Error{Code: ErrUnsupported, Line: line, Col: col,
			Msg: "flow mappings ({...}) are not supported"}
	case '&', '*':
		return nil, &Error{Code: ErrUnsupported, Line: line, Col: col,
			Msg: "anchors and aliases are not supported"}
	case '!':
		return nil, &Error{Code: ErrUnsupported, Line: line, Col: col,
			Msg: "tags are not supported"}
	case '|', '>':
		return nil, &Error{Code: ErrUnsupported, Line: line, Col: col,
			Msg: "block scalars are not supported (use a list of lines)"}
	case '?':
		return nil, &Error{Code: ErrUnsupported, Line: line, Col: col,
			Msg: "complex mapping keys are not supported"}
	}
	s := text
	if i := strings.Index(s, " #"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimRight(s, " ")
	if s == "" {
		return nil, &Error{Code: ErrSyntax, Line: line, Col: col, Msg: "empty value"}
	}
	return &node{kind: scalarNode, line: line, col: col, scalar: s}, nil
}

// parseFlowList parses "[a, b, c]" — scalars only, one line.
func parseFlowList(text string, line, col int) (*node, *Error) {
	end := strings.IndexByte(text, ']')
	if end < 0 {
		return nil, &Error{Code: ErrSyntax, Line: line, Col: col, Msg: "unclosed flow list"}
	}
	if rem := strings.TrimLeft(text[end+1:], " "); rem != "" && rem[0] != '#' {
		return nil, &Error{Code: ErrSyntax, Line: line, Col: col,
			Msg: fmt.Sprintf("unexpected trailing content %q after flow list", rem)}
	}
	n := &node{kind: listNode, line: line, col: col}
	inner := strings.TrimSpace(text[1:end])
	if inner == "" {
		return n, nil
	}
	offset := 1
	for _, part := range strings.Split(text[1:end], ",") {
		item := strings.TrimSpace(part)
		if item == "" {
			return nil, &Error{Code: ErrSyntax, Line: line, Col: col, Msg: "empty flow list element"}
		}
		itemCol := col + offset + (len(part) - len(strings.TrimLeft(part, " ")))
		if item[0] == '"' || item[0] == '\'' {
			s, rem, perr := parseQuoted(item, line, itemCol)
			if perr != nil {
				return nil, perr
			}
			if strings.TrimSpace(rem) != "" {
				return nil, &Error{Code: ErrSyntax, Line: line, Col: itemCol,
					Msg: "unexpected content after quoted flow element"}
			}
			n.items = append(n.items, &node{kind: scalarNode, line: line, col: itemCol, scalar: s, quoted: true})
		} else if strings.ContainsAny(item, "[]{}&*!|>?") {
			return nil, &Error{Code: ErrUnsupported, Line: line, Col: itemCol,
				Msg: "flow lists hold scalars only"}
		} else {
			n.items = append(n.items, &node{kind: scalarNode, line: line, col: itemCol, scalar: item})
		}
		offset += len(part) + 1
	}
	return n, nil
}

// parseQuoted decodes a leading quoted string, returning the remainder
// of the line after the closing quote.
func parseQuoted(text string, line, col int) (string, string, *Error) {
	quote := text[0]
	if quote == '\'' {
		// Single-quoted: '' escapes a literal quote, nothing else.
		var b strings.Builder
		i := 1
		for i < len(text) {
			if text[i] == '\'' {
				if i+1 < len(text) && text[i+1] == '\'' {
					b.WriteByte('\'')
					i += 2
					continue
				}
				return b.String(), text[i+1:], nil
			}
			b.WriteByte(text[i])
			i++
		}
		return "", "", &Error{Code: ErrSyntax, Line: line, Col: col, Msg: "unclosed single-quoted scalar"}
	}
	// Double-quoted: Go-style escapes via strconv.
	for i := 1; i < len(text); i++ {
		if text[i] == '\\' {
			i++
			continue
		}
		if text[i] == '"' {
			s, err := strconv.Unquote(text[:i+1])
			if err != nil {
				return "", "", &Error{Code: ErrSyntax, Line: line, Col: col,
					Msg: fmt.Sprintf("bad escape in quoted scalar: %v", err)}
			}
			return s, text[i+1:], nil
		}
	}
	return "", "", &Error{Code: ErrSyntax, Line: line, Col: col, Msg: "unclosed double-quoted scalar"}
}
