package config

import (
	"strconv"
	"strings"

	"github.com/splaykit/splay/internal/faults"
)

// Trigger and assertion conditions are one-line expressions:
//
//	total(chord.failed_lookups) > 10
//	rate(chord.failed_lookups) < 0.5
//	p99(chord.lookup_latency_ns) < 2000000000
//	nodes() > 100
//
// stat ∈ total|rate|gauge|mean|p50|p90|p99|nodes, operator ∈ < | >.
// Trigger actions are "heal", "kill 50%", "kill 3" or "grow 5".

var condStats = map[string]faults.Stat{
	"total": faults.StatTotal,
	"rate":  faults.StatRate,
	"gauge": faults.StatGauge,
	"mean":  faults.StatMean,
	"p50":   faults.StatP50,
	"p90":   faults.StatP90,
	"p99":   faults.StatP99,
	"nodes": faults.StatNodes,
}

// parseCondition parses a condition expression from a scalar node.
func parseCondition(n *node, path string) (faults.Condition, *Error) {
	var c faults.Condition
	s, perr := asString(n, path)
	if perr != nil {
		return c, perr
	}
	open := strings.IndexByte(s, '(')
	closing := strings.IndexByte(s, ')')
	if open <= 0 || closing < open {
		return c, errf(ErrBadValue, path, n, "want \"stat(metric) > value\", got %q", s)
	}
	statName := strings.TrimSpace(s[:open])
	stat, ok := condStats[statName]
	if !ok {
		return c, errf(ErrBadValue, path, n, "unknown statistic %q (want total, rate, gauge, mean, p50, p90, p99 or nodes)", statName)
	}
	metric := strings.TrimSpace(s[open+1 : closing])
	if metric == "" && stat != faults.StatNodes {
		return c, errf(ErrBadValue, path, n, "%s() needs a metric name", statName)
	}
	if metric != "" && stat == faults.StatNodes {
		return c, errf(ErrBadValue, path, n, "nodes() takes no metric")
	}
	rest := strings.TrimSpace(s[closing+1:])
	var op faults.Op
	switch {
	case strings.HasPrefix(rest, ">"):
		op = faults.Above
	case strings.HasPrefix(rest, "<"):
		op = faults.Below
	default:
		return c, errf(ErrBadValue, path, n, "want > or < after %s(%s), got %q", statName, metric, rest)
	}
	valText := strings.TrimSpace(rest[1:])
	val, err := strconv.ParseFloat(valText, 64)
	if err != nil {
		return c, errf(ErrBadValue, path, n, "want a numeric threshold, got %q", valText)
	}
	c.Metric = metric
	c.Stat = stat
	c.Op = op
	c.Value = val
	return c, nil
}

// parseAction parses a trigger's "do" effect.
func parseAction(n *node, path string) (faults.Action, *Error) {
	var a faults.Action
	s, perr := asString(n, path)
	if perr != nil {
		return a, perr
	}
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return a, errf(ErrBadValue, path, n, "want heal, \"kill n\", \"kill p%%\" or \"grow n\", got %q", s)
	}
	switch fields[0] {
	case "heal":
		if len(fields) != 1 {
			return a, errf(ErrBadValue, path, n, "heal takes no argument, got %q", s)
		}
		a.Kind = faults.ActHeal
		return a, nil
	case "kill":
		if len(fields) != 2 {
			return a, errf(ErrBadValue, path, n, "want \"kill <count>\" or \"kill <percent>%%\", got %q", s)
		}
		a.Kind = faults.ActKill
		if strings.HasSuffix(fields[1], "%") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "%"), 64)
			if err != nil || v <= 0 || v >= 100 {
				return a, errf(ErrBadValue, path, n, "kill percentage must be in (0%%, 100%%), got %q", fields[1])
			}
			a.Fraction = v / 100
			return a, nil
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v <= 0 {
			return a, errf(ErrBadValue, path, n, "kill count must be a positive integer, got %q", fields[1])
		}
		a.Count = v
		return a, nil
	case "grow":
		if len(fields) != 2 {
			return a, errf(ErrBadValue, path, n, "want \"grow <count>\", got %q", s)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v <= 0 {
			return a, errf(ErrBadValue, path, n, "grow count must be a positive integer, got %q", fields[1])
		}
		a.Kind = faults.ActGrow
		a.Count = v
		return a, nil
	case "inject":
		return a, errf(ErrUnsupported, path, n, "inject actions are not expressible in config documents yet")
	}
	return a, errf(ErrBadValue, path, n, "unknown action %q (want heal, \"kill n\", \"kill p%%\" or \"grow n\")", s)
}
