// Package daemon implements splayd, the lightweight process installed on
// every testbed host (§3.1): it connects to the controller over a secure
// link, accepts job reservations within its administrator-configured
// resource restrictions, instantiates applications in sandboxed contexts,
// and stops them on command. The controller may tighten — never weaken —
// the administrator's restrictions.
package daemon

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/ctlproto"
	"github.com/splaykit/splay/internal/faults"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/sandbox"
	"github.com/splaykit/splay/internal/transport"
)

// Instruments is the daemon's optional metric set for the observability
// plane. The zero value disables everything; increments are pure memory
// operations, so attaching instruments never perturbs schedules.
type Instruments struct {
	Commands    *metrics.Counter // controller commands handled
	Pings       *metrics.Counter // the PING subset
	JobsStarted *metrics.Counter
	JobsStopped *metrics.Counter
	Jobs        *metrics.Gauge // instances currently running
}

// NewInstruments registers the daemon's canonical series on reg
// ("daemon." prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		Commands:    reg.Counter("daemon.commands"),
		Pings:       reg.Counter("daemon.pings"),
		JobsStarted: reg.Counter("daemon.jobs_started"),
		JobsStopped: reg.Counter("daemon.jobs_stopped"),
		Jobs:        reg.Gauge("daemon.jobs"),
	}
}

// Config is the daemon's local configuration file equivalent.
type Config struct {
	// Name identifies the daemon (its advertised host name).
	Name string
	// Key authenticates the daemon to the controller.
	Key string
	// PortLow/PortHigh is the port range granted to applications.
	PortLow, PortHigh int
	// Net and FS are the administrator's resource restrictions.
	Net sandbox.NetLimits
	FS  sandbox.FSLimits
	// DialTimeout bounds the controller connection attempt.
	DialTimeout time.Duration
	// ProbePorts makes job registration verify a candidate port is
	// actually bindable before granting it, skipping busy ones. Several
	// daemons sharing one real machine (the loopback testbed) would
	// otherwise grant ports other processes already own.
	ProbePorts bool
	// Reconnect makes a daemon whose controller session drops redial it
	// with jittered exponential backoff until Close. Off by default: the
	// retry sleeps add events to simulation schedules, so the fault plane
	// turns it on only when a scenario declares a fault plan.
	Reconnect bool
	// ReconnectBackoff paces the redials (zero = faults.DefaultBackoff).
	ReconnectBackoff faults.Backoff
}

// DefaultConfig fills ports and timeouts.
func DefaultConfig(name string) Config {
	return Config{
		Name: name, Key: "k-" + name,
		PortLow: 20000, PortHigh: 29999,
		DialTimeout: time.Minute,
	}
}

// runningJob is one instantiated application.
type runningJob struct {
	job      *ctlproto.Job
	port     int
	inst     *core.Instance
	sb       *sandbox.Node
	starting bool // START in progress (instantiation happens outside the lock)
}

// Daemon is a running splayd.
type Daemon struct {
	rt       core.Runtime
	node     transport.Node
	cfg      Config
	registry *core.Registry
	log      core.Logger
	ins      Instruments

	// mu guards the session state: under LiveRuntime every controller
	// command is handled on its own goroutine, so jobs, the port
	// allocator, the blacklist and the connection flag are all shared.
	mu        sync.Mutex
	conn      transport.Conn
	blacklist []string
	nextPort  int
	jobs      map[string]*runningJob
	connected bool
	closed    bool // Close was called: no reconnects
}

// New creates a daemon that instantiates applications from the registry.
func New(rt core.Runtime, node transport.Node, registry *core.Registry, cfg Config, log core.Logger) *Daemon {
	if log == nil {
		log = core.NopLogger{}
	}
	if cfg.PortLow == 0 {
		cfg.PortLow, cfg.PortHigh = 20000, 29999
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Minute
	}
	return &Daemon{
		rt: rt, node: node, cfg: cfg, registry: registry, log: log,
		nextPort: cfg.PortLow,
		jobs:     make(map[string]*runningJob),
	}
}

// SetInstruments attaches instruments. Call it before Connect.
func (d *Daemon) SetInstruments(ins Instruments) { d.ins = ins }

// Connected reports whether the controller session is up.
func (d *Daemon) Connected() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.connected
}

// Running returns the number of application instances currently running.
func (d *Daemon) Running() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.jobs)
}

// Connect dials the controller, introduces itself, and serves commands
// until the connection drops.
func (d *Daemon) Connect(controller transport.Addr) error {
	conn, err := d.node.Dial(controller, d.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("daemon %s: connect: %w", d.cfg.Name, err)
	}
	d.mu.Lock()
	d.conn = conn
	d.mu.Unlock()
	enc := llenc.NewWriter(conn)
	dec := llenc.NewReader(conn)
	hello := &ctlproto.Msg{
		Type: ctlproto.THello, Name: d.cfg.Name, Key: d.cfg.Key,
		PortLow: d.cfg.PortLow, PortHigh: d.cfg.PortHigh,
	}
	if err := enc.Encode(hello); err != nil {
		return fmt.Errorf("daemon %s: hello: %w", d.cfg.Name, err)
	}
	var welcome ctlproto.Msg
	if err := dec.Decode(&welcome); err != nil || welcome.Type != ctlproto.TWelcome {
		return fmt.Errorf("daemon %s: no welcome (%v)", d.cfg.Name, err)
	}
	d.mu.Lock()
	d.blacklist = welcome.Hosts
	d.connected = true
	d.mu.Unlock()
	wlock := core.NewLock(d.rt)

	d.rt.Go(func() {
		defer func() {
			d.mu.Lock()
			d.connected = false
			closed := d.closed
			d.mu.Unlock()
			if d.cfg.Reconnect && !closed {
				d.log.Printf("daemon %s: controller session lost, reconnecting", d.cfg.Name)
				d.reconnectLoop(controller)
			}
		}()
		for {
			var m ctlproto.Msg
			if err := dec.Decode(&m); err != nil {
				return
			}
			msg := m // copy for the handler task
			d.rt.Go(func() {
				ans := d.handle(&msg)
				ans.Seq = msg.Seq
				wlock.Lock()
				enc.Encode(ans) //nolint:errcheck
				wlock.Unlock()
			})
		}
	})
	return nil
}

// reconnectLoop redials the controller until success or Close, pacing
// attempts with the configured backoff so a daemon population cut off by
// a controller restart or healed partition does not stampede it. It runs
// on the dead session's read-loop task, which the successful Connect
// replaces with a fresh one.
func (d *Daemon) reconnectLoop(controller transport.Addr) {
	b := d.cfg.ReconnectBackoff
	if !b.Enabled() {
		b = faults.DefaultBackoff()
	}
	for attempt := 0; ; attempt++ {
		d.rt.Sleep(b.Delay(attempt, d.rt.Rand()))
		d.mu.Lock()
		closed := d.closed
		d.mu.Unlock()
		if closed {
			return
		}
		if err := d.Connect(controller); err == nil {
			d.log.Printf("daemon %s: reconnected to controller (attempt %d)", d.cfg.Name, attempt+1)
			return
		}
	}
}

// Close drops the controller connection and kills all instances.
func (d *Daemon) Close() {
	d.mu.Lock()
	d.closed = true
	conn := d.conn
	ids := make([]string, 0, len(d.jobs))
	for id := range d.jobs {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, id := range ids {
		d.stopJob(id)
	}
}

func (d *Daemon) handle(m *ctlproto.Msg) *ctlproto.Msg {
	d.ins.Commands.Inc()
	switch m.Type {
	case ctlproto.TPing:
		d.ins.Pings.Inc()
		return &ctlproto.Msg{Type: ctlproto.TAck}
	case ctlproto.TBlacklist:
		d.mu.Lock()
		d.blacklist = m.Hosts
		d.mu.Unlock()
		return &ctlproto.Msg{Type: ctlproto.TAck}
	case ctlproto.TRegister:
		return d.register(m.Job)
	case ctlproto.TList:
		return d.list(m.Job)
	case ctlproto.TStart:
		return d.start(m.Job)
	case ctlproto.TFree, ctlproto.TStop:
		d.stopJob(m.Job.ID)
		return &ctlproto.Msg{Type: ctlproto.TAck}
	default:
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "unknown command " + m.Type}
	}
}

// register reserves a port for the job (the REGISTER answer carries the
// range available to the application; we grant one concrete port).
func (d *Daemon) register(job *ctlproto.Job) *ctlproto.Msg {
	if job == nil {
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "no job"}
	}
	// Validate the app outside the lock: constructors are caller code.
	if _, err := d.registry.New(job.App, nil); err != nil {
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: err.Error()}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.jobs[job.ID]; ok {
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "already registered"}
	}
	port, ok := d.grantPort()
	if !ok {
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "no free port in range"}
	}
	d.jobs[job.ID] = &runningJob{job: job, port: port}
	return &ctlproto.Msg{Type: ctlproto.TAck, Port: port}
}

// grantPort hands out the next port of the administrator's range,
// optionally probing each candidate for bindability (ProbePorts). Called
// under d.mu; the probe itself is a bind+close on the local stack.
func (d *Daemon) grantPort() (int, bool) {
	span := d.cfg.PortHigh - d.cfg.PortLow + 1
	for tries := 0; tries < span; tries++ {
		port := d.nextPort
		d.nextPort++
		if d.nextPort > d.cfg.PortHigh {
			d.nextPort = d.cfg.PortLow
		}
		if d.cfg.ProbePorts {
			ln, err := d.node.Listen(port)
			if err != nil {
				continue
			}
			ln.Close()
		}
		return port, true
	}
	return 0, false
}

// list installs the bootstrap information.
func (d *Daemon) list(job *ctlproto.Job) *ctlproto.Msg {
	d.mu.Lock()
	defer d.mu.Unlock()
	rj, ok := d.jobs[job.ID]
	if !ok {
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "not registered"}
	}
	rj.job = job
	return &ctlproto.Msg{Type: ctlproto.TAck}
}

// start instantiates the application in a sandboxed context.
func (d *Daemon) start(job *ctlproto.Job) *ctlproto.Msg {
	d.mu.Lock()
	rj, ok := d.jobs[job.ID]
	if !ok {
		d.mu.Unlock()
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "not registered"}
	}
	if rj.inst != nil || rj.starting {
		d.mu.Unlock()
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "already running"}
	}
	rj.starting = true
	spec, port := rj.job, rj.port
	blacklist := d.blacklist
	d.mu.Unlock()

	// Instantiation runs unlocked: the constructor is caller code.
	app, err := d.registry.New(spec.App, json.RawMessage(spec.Params))
	if err != nil {
		d.mu.Lock()
		rj.starting = false
		d.mu.Unlock()
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: err.Error()}
	}
	limits := d.cfg.Net.Tighten(sandbox.NetLimits{Blacklist: blacklist})
	sb := sandbox.Wrap(d.node, limits)
	info := core.JobInfo{
		JobID:    spec.ID,
		Me:       transport.Addr{Host: d.cfg.Name, Port: port},
		Nodes:    spec.Nodes,
		Position: spec.Position,
	}
	d.mu.Lock()
	if d.jobs[spec.ID] != rj {
		// A concurrent STOP/FREE removed the job while we instantiated.
		d.mu.Unlock()
		sb.CloseAll()
		return &ctlproto.Msg{Type: ctlproto.TErr, Err: "stopped during start"}
	}
	rj.sb = sb
	rj.inst = core.StartInstance(d.rt, sb, info, d.log, app)
	rj.starting = false
	// Gauge update stays under the lock: a Set applied after unlock
	// could race a concurrent stop and publish a stale count.
	d.ins.JobsStarted.Inc()
	d.ins.Jobs.Set(int64(len(d.jobs)))
	d.mu.Unlock()
	d.log.Printf("daemon %s: started %s (%s) on port %d", d.cfg.Name, spec.ID, spec.App, port)
	return &ctlproto.Msg{Type: ctlproto.TAck}
}

func (d *Daemon) stopJob(id string) {
	d.mu.Lock()
	rj, ok := d.jobs[id]
	if ok {
		delete(d.jobs, id)
		d.ins.JobsStopped.Inc()
		d.ins.Jobs.Set(int64(len(d.jobs)))
	}
	d.mu.Unlock()
	if !ok {
		return
	}
	if rj.inst != nil {
		rj.inst.Kill()
	}
	if rj.sb != nil {
		rj.sb.CloseAll()
	}
	d.log.Printf("daemon %s: stopped %s", d.cfg.Name, id)
}
