package arena

import (
	"testing"
	"unsafe"
)

type fat struct {
	a, b int64
	p    *fat
}

func TestPointersStableAndZeroed(t *testing.T) {
	a := New[fat](64)
	var ptrs []*fat
	for i := 0; i < 1000; i++ {
		p := a.Get()
		if p.a != 0 || p.b != 0 || p.p != nil {
			t.Fatalf("Get returned non-zero value at %d: %+v", i, *p)
		}
		p.a = int64(i)
		ptrs = append(ptrs, p)
	}
	if a.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", a.Len())
	}
	for i, p := range ptrs {
		if p.a != int64(i) {
			t.Fatalf("value at %d overwritten: got %d", i, p.a)
		}
	}
}

// TestAllocationAmortized pins the reason the arena exists: N Gets cost
// ~N/chunkSize heap allocations, not N.
func TestAllocationAmortized(t *testing.T) {
	a := New[fat](256)
	const n = 100_000
	avg := testing.AllocsPerRun(1, func() {
		for i := 0; i < n; i++ {
			a.Get()
		}
	})
	// n/256 chunk allocations ≈ 391, plus slice growth of a.chunks.
	if avg > n/256+32 {
		t.Fatalf("%d Gets performed %.0f allocations, want ~%d", n, avg, n/256)
	}
}

// TestFootprint bounds per-object overhead: chunked storage must stay within
// ~1.1× the raw struct size for large populations.
func TestFootprint(t *testing.T) {
	a := New[fat](256)
	const n = 100_000
	for i := 0; i < n; i++ {
		a.Get()
	}
	raw := uintptr(n) * unsafe.Sizeof(fat{})
	var got uintptr
	for _, c := range a.chunks {
		got += uintptr(cap(c)) * unsafe.Sizeof(fat{})
	}
	if got > raw+raw/10 {
		t.Fatalf("arena holds %d bytes for %d bytes of values", got, raw)
	}
}
