package arena

import "unsafe"

// Slab hands out fixed-length []T blocks from chunked backing storage,
// recycling freed blocks through a free list. It complements Arena for
// state that is uniform and *does* come back — finger tables of nodes
// that leave under churn — where never-free semantics would leak a block
// per departure. Blocks are zeroed on every Get, including reused ones,
// so a recycled block is indistinguishable from a fresh one and reuse
// can never leak routing state between owners.
//
// Like Arena, a Slab is single-threaded: in partitioned simulations each
// partition owns its own slabs.
type Slab[T any] struct {
	blockLen int
	perChunk int
	chunks   [][]T
	used     int // blocks handed out from the newest chunk
	free     [][]T
	handed   int // Get calls
	reused   int // Gets served from the free list
}

// NewSlab returns a slab of blockLen-length blocks, carving
// blocksPerChunk blocks (minimum 16) per backing allocation.
func NewSlab[T any](blockLen, blocksPerChunk int) *Slab[T] {
	if blockLen < 1 {
		blockLen = 1
	}
	if blocksPerChunk < 16 {
		blocksPerChunk = 16
	}
	return &Slab[T]{blockLen: blockLen, perChunk: blocksPerChunk}
}

// BlockLen returns the fixed length of every block.
func (s *Slab[T]) BlockLen() int { return s.blockLen }

// Get returns a zeroed block of BlockLen values, reusing a freed block
// when one is available.
func (s *Slab[T]) Get() []T {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		var zero T
		for i := range b {
			b[i] = zero
		}
		s.handed++
		s.reused++
		return b
	}
	if len(s.chunks) == 0 || s.used == s.perChunk {
		s.chunks = append(s.chunks, make([]T, s.blockLen*s.perChunk))
		s.used = 0
	}
	chunk := s.chunks[len(s.chunks)-1]
	b := chunk[s.used*s.blockLen : (s.used+1)*s.blockLen : (s.used+1)*s.blockLen]
	s.used++
	s.handed++
	return b
}

// Put returns a block to the free list. Only blocks obtained from this
// slab's Get may be returned, each at most once; blocks of the wrong
// length are dropped (defensively) rather than recycled.
func (s *Slab[T]) Put(b []T) {
	if len(b) != s.blockLen {
		return
	}
	s.free = append(s.free, b)
}

// Live returns the number of blocks currently handed out and not freed.
func (s *Slab[T]) Live() int {
	total := 0
	if n := len(s.chunks); n > 0 {
		total = (n-1)*s.perChunk + s.used
	}
	return total - len(s.free)
}

// Reused returns how many Gets were served from the free list.
func (s *Slab[T]) Reused() int { return s.reused }

// Bytes returns the heap bytes the slab's chunks occupy, counted whole
// like Arena.Bytes.
func (s *Slab[T]) Bytes() uint64 {
	var zero T
	return uint64(len(s.chunks)) * uint64(s.blockLen*s.perChunk) * uint64(unsafe.Sizeof(zero))
}
