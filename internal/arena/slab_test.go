package arena

import (
	"math/rand"
	"testing"
)

// TestSlabReuseUnderChurn drives free/realloc cycles — the finger-table
// lifecycle under churn — and checks that freed blocks are recycled
// rather than leaked, and that a recycled block is zeroed so no routing
// state survives its previous owner.
func TestSlabReuseUnderChurn(t *testing.T) {
	s := NewSlab[uint32](8, 16)
	rng := rand.New(rand.NewSource(42))
	live := make([][]uint32, 0, 64)
	for round := 0; round < 1000; round++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(live))
			s.Put(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		b := s.Get()
		if len(b) != 8 {
			t.Fatalf("block length %d, want 8", len(b))
		}
		for i, v := range b {
			if v != 0 {
				t.Fatalf("round %d: recycled block not zeroed at [%d]: %d", round, i, v)
			}
		}
		for i := range b {
			b[i] = rng.Uint32() | 1 // never zero: distinguishes stale state
		}
		live = append(live, b)
	}
	if s.Live() != len(live) {
		t.Errorf("Live() = %d, want %d", s.Live(), len(live))
	}
	if s.Reused() == 0 {
		t.Error("1000 churn rounds never reused a freed block")
	}
	// Steady-state churn must not grow the backing storage: the chunk
	// count is bounded by the peak population, not the allocation count.
	if got, bound := s.Bytes(), uint64(4*8*16*16); got > bound {
		t.Errorf("slab grew to %d backing bytes under churn (bound %d)", got, bound)
	}
}

// TestSlabPutWrongLength pins the defensive contract: a block of the
// wrong length is dropped, never recycled into callers expecting
// BlockLen values.
func TestSlabPutWrongLength(t *testing.T) {
	s := NewSlab[int](4, 16)
	s.Put(make([]int, 3))
	b := s.Get()
	if len(b) != 4 {
		t.Fatalf("got length-%d block after wrong-length Put", len(b))
	}
	if s.Reused() != 0 {
		t.Error("wrong-length block was recycled")
	}
}
