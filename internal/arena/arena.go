// Package arena provides chunked slab allocation for long-lived simulation
// state: hosts, connections, pipes. A 100k-host simulation creates hundreds
// of thousands of such objects; allocating each one individually costs a
// malloc plus permanent GC scan pressure, and scatters hot neighbours across
// the heap. An Arena hands out pointers into fixed-size chunks instead: one
// allocation per chunk, dense layout, stable addresses.
//
// Arenas never free individual objects — that is the point. The target
// state (a host's sockets, a cached RPC connection) lives as long as the
// simulation; pooling-with-reuse would buy aliasing bugs, not memory. Drop
// the whole arena (with its Network) to release everything at once.
package arena

import "unsafe"

// Arena allocates zeroed values of T from chunks of a fixed size. The zero
// Arena is not usable; create arenas with New. Get is single-threaded per
// arena: in partitioned simulations each partition owns its own arenas.
type Arena[T any] struct {
	chunks [][]T
	used   int // slots handed out from the newest chunk
	size   int // chunk capacity
	total  int
}

// New returns an arena handing out chunks of chunkSize values (minimum 16).
func New[T any](chunkSize int) *Arena[T] {
	if chunkSize < 16 {
		chunkSize = 16
	}
	return &Arena[T]{size: chunkSize}
}

// Get returns a pointer to a fresh zeroed T. The pointer is stable for the
// arena's lifetime.
func (a *Arena[T]) Get() *T {
	if len(a.chunks) == 0 || a.used == a.size {
		a.chunks = append(a.chunks, make([]T, a.size))
		a.used = 0
	}
	p := &a.chunks[len(a.chunks)-1][a.used]
	a.used++
	a.total++
	return p
}

// Len returns the number of values handed out.
func (a *Arena[T]) Len() int { return a.total }

// Bytes returns the heap bytes the arena's chunks occupy — the memory
// plane's accounting hook. Chunks are counted whole: slack at the tail
// of the newest chunk is committed memory like any other slot.
func (a *Arena[T]) Bytes() uint64 {
	var zero T
	return uint64(len(a.chunks)) * uint64(a.size) * uint64(unsafe.Sizeof(zero))
}
