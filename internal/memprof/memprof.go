// Package memprof implements the memory plane's footprint accountant:
// the bytes-per-instance counterpart of the BENCH_* latency gates. The
// paper's scalability story is bounded by memory per instance (fig8
// reports <1.5 MB per Pastry node and swap onset near the RAM limit), so
// a harness that wants to run millions of instances must know — not
// guess — where its bytes go, and must keep the measurement itself cheap
// enough not to perturb what it evaluates.
//
// An Accountant snapshots the live heap when created, lets long-lived
// layers (arenas, intern tables, client fabrics) register byte sources,
// and reports the precise live-heap growth with a per-layer breakdown.
// Observe is the in-run sampling hook: a throttled, GC-free HeapAlloc
// read cheap enough to call at every ParKernel barrier, tracking the
// peak footprint of a run without stopping the world for a full GC.
package memprof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
)

// Source reports the bytes one layer currently holds. Sources must be
// cheap and side-effect free: they are read under Report after a GC.
type Source struct {
	Label string
	Bytes func() uint64
}

// Accountant measures live-heap growth between its creation and Report.
type Accountant struct {
	baseline uint64
	peak     uint64
	ticks    uint64
	every    uint64
	sources  []Source
}

// New snapshots the current live heap (after a forced GC) as the
// baseline every later figure is relative to.
func New() *Accountant {
	return &Accountant{baseline: liveHeap(), every: 64}
}

// Track registers a labelled byte source for Report's breakdown.
func (a *Accountant) Track(label string, bytes func() uint64) {
	if a == nil || bytes == nil {
		return
	}
	a.sources = append(a.sources, Source{Label: label, Bytes: bytes})
}

// Observe samples the heap without forcing a GC, throttled to every
// 64th call so it can sit on a barrier or event hook. A nil Accountant
// discards, so the hook can be threaded unconditionally.
func (a *Accountant) Observe() {
	if a == nil {
		return
	}
	a.ticks++
	if a.ticks%a.every != 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > a.peak {
		a.peak = ms.HeapAlloc
	}
}

// Layer is one line of a Report's breakdown.
type Layer struct {
	Label string
	Bytes uint64
}

// Report is a footprint measurement: live-heap growth since New,
// divided over the instance population, with the tracked layers'
// shares. Other is growth no registered source claims (protocol
// structs, runtime pools, maps).
type Report struct {
	Instances int
	HeapBytes uint64 // live-heap growth since New (post-GC)
	PeakBytes uint64 // highest un-GC'd HeapAlloc Observe saw
	Layers    []Layer
	Other     uint64
}

// Report forces a GC and measures. instances scales the per-instance
// figures; pass the node population.
func (a *Accountant) Report(instances int) Report {
	live := liveHeap()
	r := Report{Instances: instances}
	if live > a.baseline {
		r.HeapBytes = live - a.baseline
	}
	if a.peak > a.baseline {
		r.PeakBytes = a.peak - a.baseline
	}
	var claimed uint64
	for _, s := range a.sources {
		b := s.Bytes()
		claimed += b
		r.Layers = append(r.Layers, Layer{Label: s.Label, Bytes: b})
	}
	sort.SliceStable(r.Layers, func(i, j int) bool { return r.Layers[i].Bytes > r.Layers[j].Bytes })
	if r.HeapBytes > claimed {
		r.Other = r.HeapBytes - claimed
	}
	dumpHeapProfile()
	return r
}

// dumpHeapProfile writes a heap profile at measurement time when
// MEMPLANE_PROFILE names a file. A test binary's -memprofile is written
// at exit, after the measured system is garbage; this hook captures the
// profile while everything the Report counted is still live.
func dumpHeapProfile() {
	path := os.Getenv("MEMPLANE_PROFILE")
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	pprof.Lookup("heap").WriteTo(f, 0) //nolint:errcheck
}

// PerInstance returns live bytes per instance.
func (r Report) PerInstance() float64 {
	if r.Instances <= 0 {
		return 0
	}
	return float64(r.HeapBytes) / float64(r.Instances)
}

// String renders the fig8-style table: total, per instance, layers.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "footprint: %s live over %d instances = %s/instance (peak %s)\n",
		human(r.HeapBytes), r.Instances, human(uint64(r.PerInstance())), human(r.PeakBytes))
	for _, l := range r.Layers {
		fmt.Fprintf(&b, "  %-24s %10s  %8s/instance\n", l.Label, human(l.Bytes),
			human(uint64(float64(l.Bytes)/float64(max(r.Instances, 1)))))
	}
	if r.Other > 0 {
		fmt.Fprintf(&b, "  %-24s %10s  %8s/instance\n", "(unattributed)", human(r.Other),
			human(uint64(float64(r.Other)/float64(max(r.Instances, 1)))))
	}
	return b.String()
}

func human(b uint64) string {
	switch {
	case b >= 10<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 10<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// liveHeap returns HeapAlloc after settling the GC. Two cycles make the
// figure stable: the first turns freshly unreachable objects into
// finalizable garbage, the second collects anything their finalizers
// released.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
