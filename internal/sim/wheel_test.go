package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The timer wheel must preserve the exact (time, seq) total order of the
// original single-heap design across every structural boundary: within a
// bucket, across buckets, across the ring/overflow horizon, and through
// cascades as the clock advances.

// TestWheelHorizonBoundary schedules events just inside, exactly at, and
// just beyond the ring horizon and checks global firing order.
func TestWheelHorizonBoundary(t *testing.T) {
	horizon := time.Duration(wheelSlots << slotBits) // ≈ 0.54 s
	delays := []time.Duration{
		horizon - time.Nanosecond,
		horizon,
		horizon + time.Nanosecond,
		horizon / 2,
		2 * horizon,
		time.Nanosecond,
		0,
	}
	k := NewKernel()
	var got []time.Duration
	for _, d := range delays {
		k.AfterFunc(d, func() { got = append(got, k.Since()) })
	}
	k.Run()
	if len(got) != len(delays) {
		t.Fatalf("fired %d of %d events", len(got), len(delays))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events fired out of order: %v", got)
		}
	}
	if got[len(got)-1] != 2*horizon {
		t.Fatalf("last event at %v, want %v", got[len(got)-1], 2*horizon)
	}
}

// TestWheelCascadeInterleaving parks a far event in the overflow heap, then
// schedules near events around its firing time from a callback that runs
// after the cascade window opens; order must still be exact.
func TestWheelCascadeInterleaving(t *testing.T) {
	k := NewKernel()
	var got []int
	k.AfterFunc(3*time.Second, func() { got = append(got, 2) }) // overflow at schedule time
	k.AfterFunc(2900*time.Millisecond, func() {
		// By now the 3 s event has cascaded into the ring. Surround it.
		k.AfterFunc(99*time.Millisecond, func() { got = append(got, 1) })  // 2999 ms
		k.AfterFunc(101*time.Millisecond, func() { got = append(got, 3) }) // 3001 ms
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("cascade interleaving broken: %v", got)
	}
}

// TestWheelSameInstantFIFO floods one instant that sits exactly on a bucket
// boundary; insertion order must be preserved.
func TestWheelSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	at := time.Duration(1) << slotBits // first nanosecond of bucket 1
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.AfterFunc(at, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO at %d: %v", i, got)
		}
	}
}

// TestWheelOrderingProperty fuzzes delays spanning nanoseconds to minutes
// (both sides of the horizon), with re-scheduling from callbacks, and
// verifies the global order against a reference: nondecreasing time, FIFO
// within an instant.
func TestWheelOrderingProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		k := NewKernel()
		type firing struct {
			at  time.Duration
			seq int
		}
		var got []firing
		seq := 0
		spans := []time.Duration{time.Microsecond, time.Millisecond, 100 * time.Millisecond, time.Minute}
		var add func(depth int)
		add = func(depth int) {
			n := 5 + rng.Intn(10)
			for i := 0; i < n; i++ {
				d := time.Duration(rng.Int63n(int64(spans[rng.Intn(len(spans))])))
				mySeq := seq
				seq++
				k.AfterFunc(d, func() {
					got = append(got, firing{k.Since(), mySeq})
					if depth < 2 && rng.Intn(4) == 0 {
						add(depth + 1)
					}
				})
			}
		}
		add(0)
		k.Run()
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				t.Fatalf("trial %d: time went backwards at %d: %v then %v",
					trial, i, got[i-1].at, got[i].at)
			}
		}
	}
}

// TestWheelRunUntilAcrossHorizon drives the clock in bounded steps across
// several horizons with overflow events pending.
func TestWheelRunUntilAcrossHorizon(t *testing.T) {
	k := NewKernel()
	var got []time.Duration
	for _, d := range []time.Duration{100 * time.Millisecond, time.Second, 3 * time.Second, 10 * time.Second} {
		d := d
		k.AfterFunc(d, func() { got = append(got, d) })
	}
	for i := 0; i < 100; i++ {
		k.RunFor(200 * time.Millisecond)
	}
	if len(got) != 4 {
		t.Fatalf("fired %d of 4 events: %v", len(got), got)
	}
	if k.Since() != 20*time.Second {
		t.Fatalf("clock at %v, want 20s", k.Since())
	}
}
