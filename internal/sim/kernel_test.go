package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.After(30*time.Millisecond, func() { got = append(got, 3) })
	k.After(10*time.Millisecond, func() { got = append(got, 1) })
	k.After(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if k.Since() != 30*time.Millisecond {
		t.Fatalf("clock = %s, want 30ms", k.Since())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	cancel := k.After(time.Second, func() { fired = true })
	cancel()
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Cancel after fire is a no-op.
	cancel2 := k.After(time.Second, func() { fired = true })
	k.Run()
	cancel2()
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var woke time.Duration
	k.Go(func() {
		k.Sleep(5 * time.Second)
		woke = k.Since()
	})
	k.Run()
	if woke != 5*time.Second {
		t.Fatalf("woke at %s, want 5s", woke)
	}
}

func TestTasksInterleaveDeterministically(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		var got []int
		for i := 0; i < 5; i++ {
			i := i
			k.Go(func() {
				for j := 0; j < 3; j++ {
					k.Sleep(time.Duration(i+1) * time.Millisecond)
					got = append(got, i*10+j)
				}
			})
		}
		k.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("wrong event counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic interleaving at %d: %v vs %v", i, a, b)
		}
	}
}

func TestWaiterWakeOnce(t *testing.T) {
	k := NewKernel()
	var got any
	w := k.NewWaiter()
	k.Go(func() { got = w.Wait() })
	k.After(time.Second, func() {
		if !w.Wake("first") {
			t.Error("first wake rejected")
		}
		if w.Wake("second") {
			t.Error("second wake accepted")
		}
	})
	k.Run()
	if got != "first" {
		t.Fatalf("got %v, want first", got)
	}
}

func TestWaiterTimeout(t *testing.T) {
	k := NewKernel()
	var got any
	var at time.Duration
	k.Go(func() {
		w := k.NewWaiter()
		w.WakeAfter(2*time.Second, "timeout")
		got = w.Wait()
		at = k.Since()
	})
	k.Run()
	if got != "timeout" || at != 2*time.Second {
		t.Fatalf("got %v at %s, want timeout at 2s", got, at)
	}
}

func TestWaiterWakeCancelsTimeout(t *testing.T) {
	k := NewKernel()
	var got []any
	w := k.NewWaiter()
	k.Go(func() { got = append(got, w.Wait()) })
	k.Go(func() {
		w.WakeAfter(time.Second, "timeout")
		k.Sleep(100 * time.Millisecond)
		w.Wake("value")
	})
	k.Run()
	if len(got) != 1 || got[0] != "value" {
		t.Fatalf("got %v, want [value]", got)
	}
	if k.Since() != time.Second {
		// The canceled timer is lazily discarded; clock still passes 1s only
		// if other events exist. Since the timer was canceled, final time is
		// 100ms... unless heap held it. Canceled events do not fire but do
		// not advance the clock either.
	}
}

func TestWakeBeforeWaitDoesNotDeadlock(t *testing.T) {
	// A timeout may fire while the owner task is blocked elsewhere (e.g.
	// a bandwidth-limited write); Wait must then return immediately with
	// the stashed value instead of wedging the kernel.
	k := NewKernel()
	var got any
	var at time.Duration
	k.Go(func() {
		w := k.NewWaiter()
		w.WakeAfter(time.Millisecond, "timeout")
		k.Sleep(time.Second) // blocked past the timeout
		got = w.Wait()
		at = k.Since()
	})
	k.Run()
	if got != "timeout" {
		t.Fatalf("got %v, want timeout", got)
	}
	if at != time.Second {
		t.Fatalf("resumed at %s, want 1s (no extra parking)", at)
	}
	// Direct Wake before Wait behaves the same.
	var got2 any
	k.Go(func() {
		w := k.NewWaiter()
		w.Wake("early")
		if w.Wake("second") {
			t.Error("second wake accepted")
		}
		got2 = w.Wait()
	})
	k.Run()
	if got2 != "early" {
		t.Fatalf("got2 = %v", got2)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []int
	k.After(time.Second, func() { fired = append(fired, 1) })
	k.After(3*time.Second, func() { fired = append(fired, 3) })
	k.RunUntil(Epoch.Add(2 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired %v, want [1]", fired)
	}
	if k.Since() != 2*time.Second {
		t.Fatalf("clock %s, want 2s", k.Since())
	}
	k.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %v, want [1 3]", fired)
	}
}

func TestRunFor(t *testing.T) {
	k := NewKernel()
	n := 0
	var cancel func()
	var tick func()
	tick = func() {
		n++
		cancel = k.After(time.Second, tick)
	}
	cancel = k.After(time.Second, tick)
	k.RunFor(10 * time.Second)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
	cancel()
	k.Run()
	if n != 10 {
		t.Fatalf("ticks after cancel = %d, want 10", n)
	}
}

func TestHalt(t *testing.T) {
	k := NewKernel()
	n := 0
	for i := 0; i < 100; i++ {
		k.After(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 10 {
				k.Halt()
			}
		})
	}
	k.Run()
	if n != 10 {
		t.Fatalf("executed %d events, want 10", n)
	}
	k.Run() // resumes after halt
	if n != 100 {
		t.Fatalf("executed %d events total, want 100", n)
	}
}

func TestGoAfter(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	k.GoAfter(7*time.Second, func() { at = k.Since() })
	k.Run()
	if at != 7*time.Second {
		t.Fatalf("task ran at %s, want 7s", at)
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel()
	depth := 0
	var spawn func(d int)
	spawn = func(d int) {
		if d > depth {
			depth = d
		}
		if d < 20 {
			k.Go(func() { spawn(d + 1) })
		}
	}
	k.Go(func() { spawn(0) })
	k.Run()
	if depth != 20 {
		t.Fatalf("depth = %d, want 20", depth)
	}
	if k.Tasks() != 0 {
		t.Fatalf("live tasks = %d, want 0", k.Tasks())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never goes backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var times []time.Duration
		for _, d := range delays {
			k.After(time.Duration(d)*time.Millisecond, func() {
				times = append(times, k.Since())
			})
		}
		k.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sleeping tasks always wake exactly delay later, regardless of
// how many other tasks run.
func TestQuickSleepAccuracy(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		tasks := int(n%32) + 1
		ok := true
		for i := 0; i < tasks; i++ {
			start := time.Duration(rng.Intn(1000)) * time.Millisecond
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			k.GoAfter(start, func() {
				before := k.Since()
				k.Sleep(d)
				if k.Since()-before != d {
					ok = false
				}
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelEvents(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.AfterFunc(time.Millisecond, tick)
		}
	}
	b.ResetTimer()
	k.AfterFunc(time.Millisecond, tick)
	k.Run()
}

// BenchmarkKernelEventsLegacyAfter tracks the closure-returning After wrapper
// so the cost of the compatibility path stays visible.
func BenchmarkKernelEventsLegacyAfter(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Millisecond, tick)
		}
	}
	b.ResetTimer()
	k.After(time.Millisecond, tick)
	k.Run()
}

// BenchmarkKernelFarTimers schedules past the wheel horizon so every event
// takes the overflow-heap path and cascades back into the ring.
func BenchmarkKernelFarTimers(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.AfterFunc(2*time.Second, tick)
		}
	}
	b.ResetTimer()
	k.AfterFunc(2*time.Second, tick)
	k.Run()
}

func BenchmarkKernelTaskSwitch(b *testing.B) {
	k := NewKernel()
	k.Go(func() {
		for i := 0; i < b.N; i++ {
			k.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}
