// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and an event queue. Application code runs
// in cooperative tasks: ordinary goroutines that only block through kernel
// primitives (Sleep, Waiter.Wait). At any instant exactly one goroutine is
// runnable — either the kernel's run loop or a single task — so simulations
// are deterministic: the same seed and inputs produce the same event order,
// bit for bit.
//
// This mirrors the SPLAY execution model: Lua coroutines scheduled by a
// single-threaded event loop, where the processor is yielded only at
// blocking points in the base libraries.
//
// The scheduling hot path is allocation-free in steady state: events, tasks
// (with their goroutines and parking channels) and Waiters are all pooled on
// free lists, and the event queue is a hierarchical timer wheel (see
// wheel.go and DESIGN.md).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Epoch is the virtual time at which every simulation starts. The concrete
// date is arbitrary; experiments only use durations relative to it.
var Epoch = time.Date(2009, 4, 22, 0, 0, 0, 0, time.UTC)

// maxFreeTasks bounds the task pool: a finished task's goroutine parks for
// reuse up to this limit and exits beyond it, so bursty spawns don't pin an
// unbounded number of idle goroutines to the kernel.
const maxFreeTasks = 512

// task is a pooled cooperative task: one goroutine plus one parking channel,
// reused across task spawns so GoAfter and Waiter.Wait never allocate a
// channel.
type task struct {
	k    *Kernel
	park chan any // kernel -> task: resume value (or spawn kick-off)
	fn   func()   // body to run, set by the kernel before the spawn resume
	next *task    // free-list link
}

// loop is the task goroutine's life: wait for a spawn, run the body, recycle.
// A closed park channel (drainTaskPool) retires the goroutine.
func (t *task) loop() {
	for {
		if _, ok := <-t.park; !ok {
			return
		}
		t.fn()
		t.fn = nil
		k := t.k
		k.tasks--
		recycled := k.freeTaskCount < maxFreeTasks
		if recycled {
			t.next = k.freeTasks
			k.freeTasks = t
			k.freeTaskCount++
		}
		k.yield <- struct{}{}
		if !recycled {
			return
		}
	}
}

// Kernel is a discrete-event scheduler. The zero value is not usable; create
// kernels with NewKernel.
//
// All Kernel methods must be called either from inside a task started with Go
// or from event callbacks, with two exceptions: Run/RunUntil/RunFor (the
// driver) and NewKernel. The kernel is deliberately not safe for concurrent
// use from foreign goroutines; tasks and events already execute one at a
// time.
type Kernel struct {
	nowNS   int64 // virtual ns since Epoch
	seq     uint64
	wq      wheel
	yield   chan struct{} // task -> kernel: parked or finished
	current *task         // the task executing right now, nil on the run loop
	tasks   int           // live (started, unfinished) tasks
	events  uint64        // total events executed, for stats
	halted  bool

	freeEvents      *event
	freeEventCount  int
	freeTasks       *task
	freeTaskCount   int
	freeWaiters     *Waiter
	freeWaiterCount int
}

// maxFreeEvents and maxFreeWaiters bound the recycling pools. Startup
// bursts (a whole population joining at once) push the in-flight event
// count far above steady state; an unbounded free list would pin that
// high-water mark for the rest of the run, which at memory-plane scale
// is megabytes per sub-kernel. Excess objects are simply dropped to the
// garbage collector — pool occupancy never affects event order, so
// schedules (and goldens) are unchanged.
const (
	maxFreeEvents  = 2048
	maxFreeWaiters = 1024
)

// NewKernel returns a kernel with its clock set to Epoch.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return Epoch.Add(time.Duration(k.nowNS)) }

// Since returns the virtual duration elapsed since the epoch.
func (k *Kernel) Since() time.Duration { return time.Duration(k.nowNS) }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// Tasks returns the number of live tasks.
func (k *Kernel) Tasks() int { return k.tasks }

// alloc takes an event from the free list, or makes one.
func (k *Kernel) alloc() *event {
	if e := k.freeEvents; e != nil {
		k.freeEvents = e.next
		k.freeEventCount--
		e.next = nil
		return e
	}
	return &event{}
}

// free recycles a fired or canceled event. Bumping gen invalidates every
// outstanding Timer handle to it, so cancel-after-fire is a safe no-op.
func (k *Kernel) free(e *event) {
	e.gen++
	e.kind = 0
	e.canceled = false
	e.fn = nil
	e.task = nil
	e.w = nil
	e.wgen = 0
	e.v = nil
	if k.freeEventCount >= maxFreeEvents {
		return // drop to the GC; see maxFreeEvents
	}
	e.next = k.freeEvents
	k.freeEvents = e
	k.freeEventCount++
}

// push enqueues e at virtual time atNS (clamped to now) and assigns its
// FIFO sequence number.
func (k *Kernel) push(e *event, atNS int64) {
	if atNS < k.nowNS {
		atNS = k.nowNS
	}
	e.atNS = atNS
	e.seq = k.seq
	k.seq++
	k.wq.push(e)
}

// Timer is a handle to a scheduled event, returned by the allocation-free
// scheduling entry points. The zero Timer is valid and Stop on it is a
// no-op. Timer values may be copied freely and outlive the event: a
// generation check makes Stop after firing (or after the event's pooled
// storage was reused) a safe no-op.
type Timer struct {
	e   *event
	gen uint64
}

// Stop cancels the pending event and reports whether it was still pending.
// Stopping a fired, already-stopped or zero Timer returns false.
func (t Timer) Stop() bool {
	if t.e == nil || t.e.gen != t.gen || t.e.canceled {
		return false
	}
	t.e.canceled = true
	return true
}

// AfterFunc schedules fn to run once after virtual duration d on the run
// loop. This is the allocation-free fast path: the event comes from the
// kernel's pool and the Timer handle is a plain value.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	e := k.alloc()
	e.kind = evFunc
	e.fn = fn
	k.push(e, k.nowNS+int64(d))
	return Timer{e: e, gen: e.gen}
}

// AtFunc schedules fn to run once at absolute virtual time at (clamped to
// now), like AfterFunc.
func (k *Kernel) AtFunc(at time.Time, fn func()) Timer {
	e := k.alloc()
	e.kind = evFunc
	e.fn = fn
	k.push(e, int64(at.Sub(Epoch)))
	return Timer{e: e, gen: e.gen}
}

// After schedules fn to run once after virtual duration d and returns a
// cancel function. Cancelling after the event has fired is a no-op. The
// callback runs on the kernel's run loop and must not block; to run blocking
// code, have the callback call Go.
//
// After allocates a closure for the cancel function; hot paths should use
// AfterFunc and keep the Timer instead.
func (k *Kernel) After(d time.Duration, fn func()) (cancel func()) {
	t := k.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// Go starts fn as a new cooperative task at the current virtual time.
// The task may block only through kernel primitives.
func (k *Kernel) Go(fn func()) {
	k.GoAfter(0, fn)
}

// GoAfter starts fn as a new task after virtual duration d. The task runs
// on a pooled goroutine; spawning is allocation-free in steady state.
func (k *Kernel) GoAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.tasks++
	e := k.alloc()
	e.kind = evSpawn
	e.fn = fn
	k.push(e, k.nowNS+int64(d))
}

// allocTask takes a parked task goroutine from the pool, or starts one.
func (k *Kernel) allocTask() *task {
	if t := k.freeTasks; t != nil {
		k.freeTasks = t.next
		k.freeTaskCount--
		t.next = nil
		return t
	}
	t := &task{k: k, park: make(chan any)}
	go t.loop()
	return t
}

// resume hands the processor to t, delivering v, and waits until t parks
// again or finishes. It must only be called from the kernel run loop.
func (k *Kernel) resume(t *task, v any) {
	k.current = t
	t.park <- v
	<-k.yield
	k.current = nil
}

// parkCurrent parks the calling task and returns the value the kernel
// delivers when it is resumed.
func (k *Kernel) parkCurrent() any {
	t := k.current
	if t == nil {
		panic("sim: blocking kernel primitive called outside a task")
	}
	k.yield <- struct{}{}
	return <-t.park
}

// Sleep parks the calling task for virtual duration d.
func (k *Kernel) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t := k.current
	if t == nil {
		panic("sim: Sleep called outside a task")
	}
	e := k.alloc()
	e.kind = evSleep
	e.task = t
	k.push(e, k.nowNS+int64(d))
	k.parkCurrent()
}

// Run executes events until the queue is empty or Halt is called. It returns
// the number of events executed during this call.
func (k *Kernel) Run() uint64 {
	return k.run(0, false)
}

// RunUntil executes events with firing times ≤ t, then sets the clock to t.
func (k *Kernel) RunUntil(t time.Time) uint64 {
	return k.run(int64(t.Sub(Epoch)), true)
}

// RunFor advances the simulation by virtual duration d.
func (k *Kernel) RunFor(d time.Duration) uint64 {
	return k.run(k.nowNS+int64(d), true)
}

// Halt stops the run loop after the current event completes. It may be
// called from tasks or event callbacks.
func (k *Kernel) Halt() { k.halted = true }

// setNow advances the clock and keeps the timer wheel's cursor in step.
func (k *Kernel) setNow(ns int64) {
	k.nowNS = ns
	k.wq.advanceTo(ns)
}

func (k *Kernel) run(limitNS int64, bounded bool) uint64 {
	k.halted = false
	var n uint64
	for !k.halted {
		e := k.wq.pop(limitNS, bounded)
		if e == nil {
			break
		}
		if e.canceled {
			k.free(e)
			continue
		}
		if e.atNS > k.nowNS {
			k.setNow(e.atNS)
		}
		k.fire(e)
		n++
		k.events++
	}
	if bounded && !k.halted && limitNS > k.nowNS {
		k.setNow(limitNS)
	}
	if k.wq.size() == 0 {
		// Nothing can fire until new work is scheduled from outside, so
		// retire the idle pooled goroutines: goroutines blocked on a
		// reachable channel are never collected, and without this every
		// finished simulation would pin its task pool (and kernel) for the
		// process lifetime. The pool re-grows on demand.
		k.drainTaskPool()
	}
	return n
}

// peekNS returns the firing time of the earliest queued event, or
// math.MaxInt64 when the queue is empty. ParKernel uses it to compute the
// global minimum that anchors each conservative lookahead window.
func (k *Kernel) peekNS() int64 {
	if e := k.wq.peek(); e != nil {
		return e.atNS
	}
	return math.MaxInt64
}

// runWindow executes queued events with firing times ≤ limitNS and returns
// the count. Unlike run it does not reset the halted flag, advance the clock
// to the limit, or drain the task pool: ParKernel calls it once per lookahead
// window and handles all three at the boundaries of the whole run.
func (k *Kernel) runWindow(limitNS int64) uint64 {
	var n uint64
	for !k.halted {
		e := k.wq.pop(limitNS, true)
		if e == nil {
			break
		}
		if e.canceled {
			k.free(e)
			continue
		}
		if e.atNS > k.nowNS {
			k.setNow(e.atNS)
		}
		k.fire(e)
		n++
		k.events++
	}
	return n
}

// drainTaskPool retires every idle pooled task goroutine. Only free tasks
// are touched; parked tasks (blocked in Wait) keep running when resumed.
func (k *Kernel) drainTaskPool() {
	for t := k.freeTasks; t != nil; {
		next := t.next
		t.next = nil
		close(t.park)
		t = next
	}
	k.freeTasks = nil
	k.freeTaskCount = 0
}

// fire executes one event. The event is recycled before its action runs, so
// the action is free to schedule (and the pool to reuse) immediately.
func (k *Kernel) fire(e *event) {
	switch e.kind {
	case evFunc:
		fn := e.fn
		k.free(e)
		fn()
	case evSpawn:
		fn := e.fn
		k.free(e)
		t := k.allocTask()
		t.fn = fn
		k.resume(t, nil)
	case evResume:
		t, v := e.task, e.v
		k.free(e)
		k.resume(t, v)
	case evSleep:
		// Two-step on purpose: the timer fires, then the resume is scheduled
		// at the same instant with a fresh sequence number — exactly the
		// event order of the original Waiter-based Sleep, preserving
		// bit-for-bit compatibility of simulation schedules.
		t := e.task
		k.free(e)
		r := k.alloc()
		r.kind = evResume
		r.task = t
		k.push(r, k.nowNS)
	case evWake:
		w, g, v := e.w, e.wgen, e.v
		k.free(e)
		if w.gen == g {
			w.timer = Timer{}
			w.Wake(v)
		}
	default:
		panic("sim: unknown event kind")
	}
}

// Waiter is a one-shot parking spot for a task. A task creates a Waiter,
// hands it to whoever will produce its wake-up value, and calls Wait. The
// first Wake (or armed timeout) wins; later wakes are no-ops and report
// false.
//
// Wake may legitimately fire before the owner reaches Wait — for example
// a call timeout expiring while the caller is still blocked writing the
// request. The value is then stashed and Wait returns it immediately
// without parking.
//
// Waiters are pooled: Wait recycles the waiter as it returns, so a *Waiter
// must not be used again after its Wait has returned. Code that may hold a
// reference past that point (for example a delayed network verdict racing a
// timeout) must go through Ref, whose generation check makes stale wakes
// safe no-ops.
type Waiter struct {
	k      *Kernel
	gen    uint64 // incremented on recycle; guards Refs and armed timers
	done   bool
	parked bool
	task   *task // owner, once parked
	value  any   // stashed wake value when woken before parking
	timer  Timer // armed timeout, if any
	next   *Waiter
}

// NewWaiter returns a fresh waiter bound to the kernel, taken from the
// kernel's pool when possible.
func (k *Kernel) NewWaiter() *Waiter {
	if w := k.freeWaiters; w != nil {
		k.freeWaiters = w.next
		k.freeWaiterCount--
		w.next = nil
		return w
	}
	return &Waiter{k: k}
}

// freeWaiter recycles w. Bumping gen invalidates outstanding Refs and any
// armed timer event.
func (k *Kernel) freeWaiter(w *Waiter) {
	w.gen++
	w.done = false
	w.parked = false
	w.task = nil
	w.value = nil
	w.timer = Timer{}
	if k.freeWaiterCount >= maxFreeWaiters {
		return // drop to the GC; see maxFreeWaiters
	}
	w.next = k.freeWaiters
	k.freeWaiters = w
	k.freeWaiterCount++
}

// WaiterRef is a generation-stamped reference to a Waiter. Wakes through a
// stale ref (the waiter's Wait returned and the waiter was recycled) are
// no-ops, which makes refs safe to stash in long-lived closures and queues.
type WaiterRef struct {
	w   *Waiter
	gen uint64
}

// Ref returns a generation-stamped reference to w.
func (w *Waiter) Ref() WaiterRef { return WaiterRef{w: w, gen: w.gen} }

// Wake wakes the referenced waiter if the reference is still current.
func (r WaiterRef) Wake(v any) bool {
	if r.w == nil || r.w.gen != r.gen {
		return false
	}
	return r.w.Wake(v)
}

// Wake delivers v to the waiting task. It returns false if the waiter was
// already woken (or timed out). Wake never blocks the caller beyond the
// deterministic handoff to the resumed task.
func (w *Waiter) Wake(v any) bool {
	if w.done {
		return false
	}
	w.done = true
	w.timer.Stop()
	w.timer = Timer{}
	if !w.parked {
		// Owner has not reached Wait yet: stash the value.
		w.value = v
		return true
	}
	e := w.k.alloc()
	e.kind = evResume
	e.task = w.task
	e.v = v
	w.k.push(e, w.k.nowNS)
	return true
}

// WakeAfter arms a timeout: if nothing wakes the waiter within d, it is woken
// with v. Arming twice replaces the previous timeout.
func (w *Waiter) WakeAfter(d time.Duration, v any) {
	if w.done {
		return
	}
	if d < 0 {
		d = 0
	}
	w.timer.Stop()
	e := w.k.alloc()
	e.kind = evWake
	e.w = w
	e.wgen = w.gen
	e.v = v
	w.k.push(e, w.k.nowNS+int64(d))
	w.timer = Timer{e: e, gen: e.gen}
}

// Wait parks the calling task until Wake is called and returns the value
// passed to Wake. If the waiter was already woken, Wait returns the
// stashed value without yielding. Wait recycles the waiter: the *Waiter
// must not be reused after Wait returns (see Ref).
func (w *Waiter) Wait() any {
	k := w.k
	if w.done {
		v := w.value
		k.freeWaiter(w)
		return v
	}
	w.parked = true
	w.task = k.current
	v := k.parkCurrent()
	k.freeWaiter(w)
	return v
}

// Woken reports whether the waiter has already been woken.
func (w *Waiter) Woken() bool { return w.done }

// String implements fmt.Stringer for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{t=%s queued=%d tasks=%d}", k.Since(), k.wq.size(), k.tasks)
}
