// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and an event queue. Application code runs
// in cooperative tasks: ordinary goroutines that only block through kernel
// primitives (Sleep, Waiter.Wait). At any instant exactly one goroutine is
// runnable — either the kernel's run loop or a single task — so simulations
// are deterministic: the same seed and inputs produce the same event order,
// bit for bit.
//
// This mirrors the SPLAY execution model: Lua coroutines scheduled by a
// single-threaded event loop, where the processor is yielded only at
// blocking points in the base libraries.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Epoch is the virtual time at which every simulation starts. The concrete
// date is arbitrary; experiments only use durations relative to it.
var Epoch = time.Date(2009, 4, 22, 0, 0, 0, 0, time.UTC)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq) so the run loop is fully deterministic.
type event struct {
	at       time.Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, maintained by eventHeap
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is not usable; create
// kernels with NewKernel.
//
// All Kernel methods must be called either from inside a task started with Go
// or from event callbacks, with two exceptions: Run/RunUntil/RunFor (the
// driver) and NewKernel. The kernel is deliberately not safe for concurrent
// use from foreign goroutines; tasks and events already execute one at a
// time.
type Kernel struct {
	now    time.Time
	queue  eventHeap
	seq    uint64
	yield  chan struct{} // task -> kernel: parked or finished
	tasks  int           // live (started, unfinished) tasks
	events uint64        // total events executed, for stats
	halted bool
}

// NewKernel returns a kernel with its clock set to Epoch.
func NewKernel() *Kernel {
	return &Kernel{
		now:   Epoch,
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// Since returns the virtual duration elapsed since the epoch.
func (k *Kernel) Since() time.Duration { return k.now.Sub(Epoch) }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// Tasks returns the number of live tasks.
func (k *Kernel) Tasks() int { return k.tasks }

// schedule enqueues fn to run at virtual time t (clamped to now).
func (k *Kernel) schedule(t time.Time, fn func()) *event {
	if t.Before(k.now) {
		t = k.now
	}
	e := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run once after virtual duration d and returns a
// cancel function. Cancelling after the event has fired is a no-op. The
// callback runs on the kernel's run loop and must not block; to run blocking
// code, have the callback call Go.
func (k *Kernel) After(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	e := k.schedule(k.now.Add(d), fn)
	return func() { e.canceled = true }
}

// Go starts fn as a new cooperative task at the current virtual time.
// The task may block only through kernel primitives.
func (k *Kernel) Go(fn func()) {
	k.GoAfter(0, fn)
}

// GoAfter starts fn as a new task after virtual duration d.
func (k *Kernel) GoAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.tasks++
	k.schedule(k.now.Add(d), func() {
		start := make(chan any)
		go func() {
			<-start
			defer func() {
				k.tasks--
				k.yield <- struct{}{}
			}()
			fn()
		}()
		k.handoff(start, nil)
	})
}

// handoff resumes a task goroutine blocked on ch and waits until it parks
// again or finishes. It must only be called from the kernel run loop (event
// callbacks).
func (k *Kernel) handoff(ch chan any, v any) {
	ch <- v
	<-k.yield
}

// Sleep parks the calling task for virtual duration d.
func (k *Kernel) Sleep(d time.Duration) {
	w := k.NewWaiter()
	k.After(d, func() { w.Wake(nil) })
	w.Wait()
}

// Run executes events until the queue is empty or Halt is called. It returns
// the number of events executed during this call.
func (k *Kernel) Run() uint64 {
	return k.run(time.Time{}, false)
}

// RunUntil executes events with firing times ≤ t, then sets the clock to t.
func (k *Kernel) RunUntil(t time.Time) uint64 {
	return k.run(t, true)
}

// RunFor advances the simulation by virtual duration d.
func (k *Kernel) RunFor(d time.Duration) uint64 {
	return k.RunUntil(k.now.Add(d))
}

// Halt stops the run loop after the current event completes. It may be
// called from tasks or event callbacks.
func (k *Kernel) Halt() { k.halted = true }

func (k *Kernel) run(limit time.Time, bounded bool) uint64 {
	k.halted = false
	var n uint64
	for len(k.queue) > 0 && !k.halted {
		next := k.queue[0]
		if bounded && next.at.After(limit) {
			break
		}
		heap.Pop(&k.queue)
		if next.canceled {
			continue
		}
		if next.at.After(k.now) {
			k.now = next.at
		}
		next.fn()
		n++
		k.events++
	}
	if bounded && !k.halted && limit.After(k.now) {
		k.now = limit
	}
	return n
}

// Waiter is a one-shot parking spot for a task. A task creates a Waiter,
// hands it to whoever will produce its wake-up value, and calls Wait. The
// first Wake (or armed timeout) wins; later wakes are no-ops and report
// false.
//
// Wake may legitimately fire before the owner reaches Wait — for example
// a call timeout expiring while the caller is still blocked writing the
// request. The value is then stashed and Wait returns it immediately
// without parking.
type Waiter struct {
	k      *Kernel
	ch     chan any
	done   bool
	parked bool
	value  any    // stashed wake value when woken before parking
	timer  func() // cancel for the armed timeout, if any
}

// NewWaiter returns a fresh waiter bound to the kernel.
func (k *Kernel) NewWaiter() *Waiter {
	return &Waiter{k: k, ch: make(chan any)}
}

// Wake delivers v to the waiting task. It returns false if the waiter was
// already woken (or timed out). Wake never blocks the caller beyond the
// deterministic handoff to the resumed task.
func (w *Waiter) Wake(v any) bool {
	if w.done {
		return false
	}
	w.done = true
	if w.timer != nil {
		w.timer()
		w.timer = nil
	}
	if !w.parked {
		// Owner has not reached Wait yet: stash the value.
		w.value = v
		return true
	}
	w.k.schedule(w.k.now, func() { w.k.handoff(w.ch, v) })
	return true
}

// WakeAfter arms a timeout: if nothing wakes the waiter within d, it is woken
// with v. Arming twice replaces the previous timeout.
func (w *Waiter) WakeAfter(d time.Duration, v any) {
	if w.done {
		return
	}
	if w.timer != nil {
		w.timer()
	}
	w.timer = w.k.After(d, func() {
		w.timer = nil
		w.Wake(v)
	})
}

// Wait parks the calling task until Wake is called and returns the value
// passed to Wake. If the waiter was already woken, Wait returns the
// stashed value without yielding.
func (w *Waiter) Wait() any {
	if w.done {
		v := w.value
		w.value = nil
		return v
	}
	w.parked = true
	w.k.yield <- struct{}{}
	return <-w.ch
}

// Woken reports whether the waiter has already been woken.
func (w *Waiter) Woken() bool { return w.done }

// String implements fmt.Stringer for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{t=%s queued=%d tasks=%d}", k.Since(), len(k.queue), k.tasks)
}
