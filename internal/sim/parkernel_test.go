package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestHaltResetAcrossRuns pins the Halt contract: halting one Run must not
// poison the next. A kernel that latches halted forever makes RunFor-based
// drivers (the scenario session loop) silently freeze after the first Halt.
func TestHaltResetAcrossRuns(t *testing.T) {
	k := NewKernel()
	ran := false
	k.After(10*time.Millisecond, k.Halt)
	k.After(20*time.Millisecond, func() { ran = true })
	k.Run()
	if ran {
		t.Fatal("event after Halt ran in the halted call")
	}
	if n := k.Run(); n != 1 || !ran {
		t.Fatalf("second Run after Halt executed %d events (ran=%v), want the remaining event", n, ran)
	}
}

// TestParKernelHaltResetAcrossRuns is the same contract for the partitioned
// kernel: a sub-kernel Halt stops the whole ParKernel at the next barrier,
// and a subsequent Run picks the remaining events back up.
func TestParKernelHaltResetAcrossRuns(t *testing.T) {
	pk := NewParKernel(2, 1, time.Millisecond)
	ran := false
	pk.Sub(0).AfterFunc(10*time.Millisecond, pk.Sub(0).Halt)
	pk.Sub(1).AfterFunc(20*time.Millisecond, func() { ran = true })
	pk.Run()
	if ran {
		t.Fatal("partition 1 event ran after partition 0 halted the kernel")
	}
	pk.Run()
	if !ran {
		t.Fatal("second Run after Halt did not execute the remaining event")
	}
}

// parTrace is a per-partition execution log. Each partition appends only
// from its own events, so recording is race-free under any worker count and
// the logs are directly comparable across runs.
type parTrace struct {
	lines [][]string
}

func newParTrace(parts int) *parTrace { return &parTrace{lines: make([][]string, parts)} }

func (tr *parTrace) add(part int, format string, args ...any) {
	tr.lines[part] = append(tr.lines[part], fmt.Sprintf(format, args...))
}

func (tr *parTrace) String() string {
	var b strings.Builder
	for p, ls := range tr.lines {
		fmt.Fprintf(&b, "partition %d:\n", p)
		for _, l := range ls {
			b.WriteString("  " + l + "\n")
		}
	}
	return b.String()
}

// runHopWorkload seeds a cross-partition hopping workload on pk and runs it
// to completion: four chains of deterministic AfterFunc delays, every third
// hop crossing to the next partition at exactly lookahead + jitter, plus a
// sleeping task per partition to exercise the task-switch path. Returns the
// trace and the event count.
func runHopWorkload(pk *ParKernel) (*parTrace, uint64) {
	const parts = 4
	tr := newParTrace(parts)
	var hop func(part, chain, step int)
	hop = func(part, chain, step int) {
		k := pk.Sub(part)
		tr.add(part, "chain %d step %d @%s", chain, step, k.Since())
		if step >= 60 {
			return
		}
		jitter := time.Duration((step*37+chain*11)%5) * 100 * time.Microsecond
		if step%3 == 2 {
			next := (part + 1) % parts
			at := int64(k.Since()) + int64(time.Millisecond+jitter)
			pk.Post(part, next, at, func() { hop(next, chain, step+1) })
		} else {
			k.AfterFunc(jitter, func() { hop(part, chain, step+1) })
		}
	}
	for c := 0; c < parts; c++ {
		c := c
		pk.Go(c, func() {
			for i := 0; i < 20; i++ {
				pk.Sub(c).Sleep(700 * time.Microsecond)
				tr.add(c, "sleeper %d tick %d @%s", c, i, pk.Sub(c).Since())
			}
		})
		pk.GoAfter(c, time.Duration(c)*50*time.Microsecond, func() { hop(c, c, 0) })
	}
	n := pk.Run()
	return tr, n
}

// TestParKernelDeterministicAcrossWorkers pins invariant 9 at the kernel
// level: the merged schedule is a pure function of the simulation, never of
// the worker count.
func TestParKernelDeterministicAcrossWorkers(t *testing.T) {
	var ref *parTrace
	var refEvents uint64
	var refSince time.Duration
	for _, workers := range []int{1, 2, 4} {
		pk := NewParKernel(4, workers, time.Millisecond)
		tr, n := runHopWorkload(pk)
		if ref == nil {
			ref, refEvents, refSince = tr, n, pk.Since()
			continue
		}
		if got, want := tr.String(), ref.String(); got != want {
			t.Fatalf("workers=%d diverged from workers=1:\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
		if n != refEvents {
			t.Fatalf("workers=%d executed %d events, workers=1 executed %d", workers, n, refEvents)
		}
		if pk.Since() != refSince {
			t.Fatalf("workers=%d finished at %s, workers=1 at %s", workers, pk.Since(), refSince)
		}
	}
}

// TestParKernelSinglePartitionMatchesKernel: with one partition the
// ParKernel must degenerate to exactly the plain Kernel schedule.
func TestParKernelSinglePartitionMatchesKernel(t *testing.T) {
	workload := func(k *Kernel) *[]string {
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			k.AfterFunc(time.Duration(i%3)*time.Millisecond, func() {
				log = append(log, fmt.Sprintf("timer %d @%s", i, k.Since()))
			})
			k.Go(func() {
				k.Sleep(time.Duration(i) * 500 * time.Microsecond)
				log = append(log, fmt.Sprintf("task %d @%s", i, k.Since()))
			})
		}
		return &log
	}

	plain := NewKernel()
	wantLog := workload(plain)
	wantN := plain.RunFor(10 * time.Millisecond)

	pk := NewParKernel(1, 1, 0)
	gotLog := workload(pk.Sub(0))
	gotN := pk.RunFor(10 * time.Millisecond)

	if fmt.Sprint(*gotLog) != fmt.Sprint(*wantLog) {
		t.Fatalf("single-partition ParKernel diverged:\n got %v\nwant %v", *gotLog, *wantLog)
	}
	if gotN != wantN || pk.Since() != plain.Since() {
		t.Fatalf("counts/clock diverged: got (%d, %s), want (%d, %s)", gotN, pk.Since(), wantN, plain.Since())
	}
}

// TestParKernelBarrierBoundary pins the wheel-boundary case: an event
// landing exactly on a lookahead barrier runs in the next window, after
// every event strictly inside the previous one, and orders against
// same-instant local events by sequence number — identically at every
// worker count.
func TestParKernelBarrierBoundary(t *testing.T) {
	run := func(workers int) string {
		pk := NewParKernel(2, workers, 10*time.Millisecond)
		tr := newParTrace(2)
		// Partition 1: local events below, at, and above the 10ms barrier,
		// all scheduled at setup (low sequence numbers).
		for _, d := range []time.Duration{10*time.Millisecond - time.Nanosecond, 10 * time.Millisecond, 10*time.Millisecond + time.Nanosecond} {
			d := d
			pk.Sub(1).AfterFunc(d, func() { tr.add(1, "local @%s", pk.Sub(1).Since()) })
		}
		// Partition 0 at t=0: cross post landing exactly on the barrier.
		pk.Sub(0).AfterFunc(0, func() {
			pk.Post(0, 1, int64(10*time.Millisecond), func() { tr.add(1, "cross @%s", pk.Sub(1).Since()) })
			tr.add(0, "origin @%s", pk.Sub(0).Since())
		})
		pk.Run()
		return tr.String()
	}
	got := run(1)
	want := "partition 0:\n" +
		"  origin @0s\n" +
		"partition 1:\n" +
		"  local @9.999999ms\n" +
		"  local @10ms\n" +
		"  cross @10ms\n" +
		"  local @10.000001ms\n"
	if got != want {
		t.Fatalf("barrier-boundary schedule wrong:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if w2 := run(2); w2 != got {
		t.Fatalf("barrier-boundary schedule differs at workers=2:\n--- w2 ---\n%s--- w1 ---\n%s", w2, got)
	}
}

// TestParKernelCrossMergeOrder pins the (timestamp, seq, partition) merge
// key: same-instant cross events order by per-source sequence first, then by
// source partition.
func TestParKernelCrossMergeOrder(t *testing.T) {
	pk := NewParKernel(3, 1, time.Millisecond)
	tr := newParTrace(3)
	at := int64(time.Millisecond)
	pk.Sub(0).AfterFunc(0, func() {
		pk.Post(0, 2, at, func() { tr.add(2, "src0 first") })
		pk.Post(0, 2, at, func() { tr.add(2, "src0 second") })
	})
	pk.Sub(1).AfterFunc(0, func() {
		pk.Post(1, 2, at, func() { tr.add(2, "src1 first") })
	})
	pk.Run()
	// seq ranks before partition: both seq-0 posts precede src0's seq-1 post.
	want := []string{"src0 first", "src1 first", "src0 second"}
	if fmt.Sprint(tr.lines[2]) != fmt.Sprint(want) {
		t.Fatalf("merge order = %v, want %v", tr.lines[2], want)
	}
}

// TestParKernelLookaheadViolationPanics: posting inside the current window
// means the configured lookahead exceeds the model's minimum delay — a
// configuration bug that must fail loudly, not corrupt the schedule.
func TestParKernelLookaheadViolationPanics(t *testing.T) {
	pk := NewParKernel(2, 1, 5*time.Millisecond)
	pk.Sub(0).AfterFunc(0, func() {
		pk.Post(0, 1, int64(time.Millisecond), func() {})
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("in-window cross post did not panic")
		}
	}()
	pk.Run()
}

// TestParKernelMergeAllocFree pins the satellite guarantee: the
// barrier/merge hot path — outbox append, sort, merge into the destination
// pool — performs zero heap allocations in steady state.
func TestParKernelMergeAllocFree(t *testing.T) {
	pk := NewParKernel(2, 1, time.Millisecond)
	k0, k1 := pk.Sub(0), pk.Sub(1)
	remaining := 0
	var ping, pong func()
	ping = func() {
		if remaining == 0 {
			return
		}
		remaining--
		pk.Post(0, 1, int64(k0.Since())+int64(time.Millisecond), pong)
	}
	pong = func() {
		if remaining == 0 {
			return
		}
		remaining--
		pk.Post(1, 0, int64(k1.Since())+int64(time.Millisecond), ping)
	}
	// Warm the pools — long enough that the ping-pong wraps both timer
	// wheels several times, so every ring bucket's slice has been touched.
	remaining = 4096
	k0.AfterFunc(0, ping)
	pk.Run()
	avg := testing.AllocsPerRun(50, func() {
		remaining = 64
		k0.AfterFunc(0, ping)
		pk.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state cross-partition merge allocates %.1f allocs/op, want 0", avg)
	}
}

// padCounter avoids false sharing between per-partition benchmark counters
// updated by different workers.
type padCounter struct {
	n uint64
	_ [56]byte
}

// benchmarkParKernel drives 4 partitions of self-perpetuating event chains:
// one event every 10µs per partition, every 64th hop crossing at the 1ms
// lookahead. Each event carries ~256 xorshift rounds (~200ns) of synthetic
// application payload — representative of real deliveries (RPC decode,
// protocol logic), without which barrier synchronization would dominate any
// workload at this event density.
func benchmarkParKernel(b *testing.B, workers int) {
	const parts = 4
	pk := NewParKernel(parts, workers, time.Millisecond)
	var left [parts]padCounter
	var sink [parts]padCounter
	var chains [parts]func()
	for p := 0; p < parts; p++ {
		p := p
		k := pk.Sub(p)
		chains[p] = func() {
			x := sink[p].n + uint64(p)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < 256; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			sink[p].n = x
			if left[p].n == 0 {
				return
			}
			left[p].n--
			if left[p].n%64 == 0 {
				next := (p + 1) % parts
				pk.Post(p, next, int64(k.Since())+int64(time.Millisecond), chains[next])
			} else {
				k.AfterFunc(10*time.Microsecond, chains[p])
			}
		}
	}
	quota := uint64(b.N / parts)
	if quota == 0 {
		quota = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for p := 0; p < parts; p++ {
		left[p].n = quota
		pk.Sub(p).AfterFunc(0, chains[p])
	}
	pk.Run()
}

// BenchmarkParKernelThroughput is the BENCH_parallel.json scaling curve:
// identical workload and schedule at every worker count (invariant 9), wall
// clock the only variable.
func BenchmarkParKernelThroughput(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { benchmarkParKernel(b, w) })
	}
}
