package sim

import "math/bits"

// Event scheduling is the kernel's hottest path: every message, timer and
// task switch in a simulation passes through it. Two structural choices keep
// it fast:
//
//   - events are pooled on a free list, so steady-state scheduling performs
//     no heap allocation at all, and
//   - the queue is a hierarchical timer wheel: a ring of 256 buckets of
//     ~2 ms of virtual time each (~0.5 s horizon) absorbs the dominant
//     near-future events (RTT-scale delays, task switches), while far events
//     (RPC timeouts, churn epochs) overflow to a single binary heap and
//     cascade into the ring as the clock approaches them.
//
// Each bucket is itself a tiny binary heap ordered by (time, seq), so the
// fully deterministic total order of the original single-heap design is
// preserved exactly: same events, same order, bit for bit. An occupancy
// bitmap (4 words) finds the next non-empty bucket in a handful of
// word operations.

const (
	// slotBits sets the bucket granularity: 1<<21 ns ≈ 2.1 ms of virtual
	// time per bucket. With 256 buckets the ring spans ≈ 0.54 s, which
	// covers RTT delays and protocol ticks; longer timers take the
	// overflow heap.
	slotBits   = 21
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	occWords   = wheelSlots / 64
)

// event is a scheduled kernel action. Events are pooled: gen increments on
// every recycle so stale Timer handles (cancel-after-fire) are no-ops.
type event struct {
	atNS     int64  // virtual time, ns since Epoch
	seq      uint64 // FIFO tiebreak for equal times
	gen      uint64 // incremented when the event is freed/reused
	kind     uint8
	canceled bool

	fn   func()  // evFunc, evSpawn
	task *task   // evResume, evSleep
	w    *Waiter // evWake
	wgen uint64  // waiter generation guard for evWake
	v    any     // wake/resume value

	next *event // free-list link
}

// Event kinds. Encoding the kernel's own actions as typed events (instead of
// closures) is what makes the hot paths allocation-free.
const (
	evFunc   uint8 = iota // call fn on the run loop
	evSpawn               // start fn as a new task
	evResume              // resume task with value v
	evSleep               // wake the sleeping task (two-step, see Sleep)
	evWake                // wake waiter w with v, if its generation matches
)

// evLess orders events by (time, seq): the deterministic total order.
func evLess(a, b *event) bool {
	return a.atNS < b.atNS || (a.atNS == b.atNS && a.seq < b.seq)
}

// evPush inserts e into the binary heap h.
func evPush(h *[]*event, e *event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

// evPop removes and returns the minimum event of heap h.
func evPop(h *[]*event) *event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evLess(s[r], s[l]) {
			m = r
		}
		if !evLess(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// wheel is the kernel's event queue: the near-future ring plus the overflow
// heap. The zero value is ready to use at virtual time zero.
type wheel struct {
	startSlot int64 // nowNS >> slotBits: the cursor bucket
	ringCount int   // events currently in the ring
	buckets   [wheelSlots][]*event
	occ       [occWords]uint64 // bitmap of non-empty buckets
	overflow  []*event         // events beyond the ring horizon
}

func (q *wheel) size() int { return q.ringCount + len(q.overflow) }

// push enqueues e (atNS and seq already set). Events within the horizon go
// to their ring bucket; the rest overflow.
func (q *wheel) push(e *event) {
	if (e.atNS>>slotBits)-q.startSlot < wheelSlots {
		i := int((e.atNS >> slotBits) & wheelMask)
		evPush(&q.buckets[i], e)
		q.occ[i>>6] |= 1 << uint(i&63)
		q.ringCount++
	} else {
		evPush(&q.overflow, e)
	}
}

// minSlot returns the bucket index holding the earliest ring event. It must
// only be called with ringCount > 0. Buckets are scanned in time order:
// from the cursor bucket forward, wrapping once (indices below the cursor
// are one horizon ahead).
func (q *wheel) minSlot() int {
	cur := int(q.startSlot) & wheelMask
	w := cur >> 6
	bits64 := q.occ[w] >> uint(cur&63) << uint(cur&63) // mask bits below cursor
	for i := 0; i <= occWords; i++ {
		if bits64 != 0 {
			return w<<6 + bits.TrailingZeros64(bits64)
		}
		w++
		if w == occWords {
			w = 0
		}
		bits64 = q.occ[w]
	}
	panic("sim: timer wheel occupancy bitmap out of sync")
}

// peek returns the earliest queued event without removing it, or nil when
// the queue is empty. Ring events are always earlier than overflow events
// (overflow lies beyond the ring horizon), so the ring is checked first.
func (q *wheel) peek() *event {
	if q.ringCount > 0 {
		return q.buckets[q.minSlot()][0]
	}
	if len(q.overflow) > 0 {
		return q.overflow[0]
	}
	return nil
}

// pop removes and returns the earliest event, or nil if the queue is empty
// or (when bounded) the earliest event fires after limitNS. Ring events are
// always earlier than overflow events, so the ring is checked first.
func (q *wheel) pop(limitNS int64, bounded bool) *event {
	if q.ringCount > 0 {
		slot := q.minSlot()
		b := &q.buckets[slot]
		e := (*b)[0]
		if bounded && e.atNS > limitNS {
			return nil
		}
		evPop(b)
		if len(*b) == 0 {
			q.occ[slot>>6] &^= 1 << uint(slot&63)
		}
		q.ringCount--
		return e
	}
	if len(q.overflow) > 0 {
		e := q.overflow[0]
		if bounded && e.atNS > limitNS {
			return nil
		}
		evPop(&q.overflow)
		return e
	}
	return nil
}

// advanceTo moves the cursor to the bucket containing virtual time ns and
// cascades overflow events that fall inside the new horizon into the ring.
// Every overflow event migrates at most once.
func (q *wheel) advanceTo(ns int64) {
	slot := ns >> slotBits
	if slot == q.startSlot {
		return
	}
	q.startSlot = slot
	for len(q.overflow) > 0 && (q.overflow[0].atNS>>slotBits)-slot < wheelSlots {
		e := evPop(&q.overflow)
		i := int((e.atNS >> slotBits) & wheelMask)
		evPush(&q.buckets[i], e)
		q.occ[i>>6] |= 1 << uint(i&63)
		q.ringCount++
	}
}
