package sim

import (
	"runtime"
	"testing"
	"time"
)

// Pooling invariants: recycled events must not be cancellable through stale
// handles, recycled waiters must not be wakeable through stale refs, and the
// steady-state hot paths must not allocate.

// TestCancelAfterFireIsIsolated fires an event, lets the pool reuse its
// storage for a second event, then invokes the first event's cancel: the
// second event must still fire.
func TestCancelAfterFireIsIsolated(t *testing.T) {
	k := NewKernel()
	fired := ""
	cancelA := k.After(time.Millisecond, func() { fired += "a" })
	k.Run()
	// Event A's pooled storage is free; B takes it.
	k.AfterFunc(time.Millisecond, func() { fired += "b" })
	cancelA() // must be a no-op, not cancel B
	k.Run()
	if fired != "ab" {
		t.Fatalf("fired %q, want \"ab\" (stale cancel leaked into a recycled event)", fired)
	}
}

// TestTimerStopSemantics pins Stop's report: true only when it prevented a
// pending event, false for fired, double-stopped, and zero timers.
func TestTimerStopSemantics(t *testing.T) {
	k := NewKernel()
	var zero Timer
	if zero.Stop() {
		t.Fatal("zero Timer reported an active stop")
	}
	fired := false
	tm := k.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop of a pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	k.Run()
	if fired {
		t.Fatal("stopped event fired")
	}
	tm2 := k.AfterFunc(time.Second, func() {})
	k.Run()
	if tm2.Stop() {
		t.Fatal("Stop after fire reported true")
	}
}

// TestWaiterReuseUnderTimeoutRace checks the race the RPC and dial paths
// hit constantly: a waiter times out, its owner resumes and the waiter is
// recycled, then a late producer tries to wake it through a stale Ref.
// The recycled waiter must be untouched.
func TestWaiterReuseUnderTimeoutRace(t *testing.T) {
	k := NewKernel()
	var stale WaiterRef
	var second any
	k.Go(func() {
		w := k.NewWaiter()
		stale = w.Ref()
		w.WakeAfter(time.Millisecond, "timeout")
		if v := w.Wait(); v != "timeout" {
			t.Errorf("first wait got %v", v)
		}
		// w is recycled now; grab it again for an unrelated rendezvous.
		w2 := k.NewWaiter()
		if stale.Wake("late verdict") {
			t.Error("stale ref woke a recycled waiter")
		}
		w2.WakeAfter(time.Second, "second timeout")
		second = w2.Wait()
	})
	k.Run()
	if second != "second timeout" {
		t.Fatalf("recycled waiter corrupted: got %v", second)
	}
	if k.Since() != time.Millisecond+time.Second {
		t.Fatalf("clock at %v", k.Since())
	}
}

// TestWakeAfterRearmReplacesTimeout arms a timeout twice; only the second
// may fire.
func TestWakeAfterRearmReplacesTimeout(t *testing.T) {
	k := NewKernel()
	var got any
	var at time.Duration
	k.Go(func() {
		w := k.NewWaiter()
		w.WakeAfter(time.Second, "first")
		w.WakeAfter(2*time.Second, "second")
		got = w.Wait()
		at = k.Since()
	})
	k.Run()
	if got != "second" || at != 2*time.Second {
		t.Fatalf("got %v at %v, want second at 2s", got, at)
	}
}

// TestWakeBeforeWaitThenTimeoutStash: a direct Wake races an armed timeout
// before the owner parks; the stash must carry the Wake value and the timer
// must be disarmed.
func TestWakeBeforeWaitThenTimeoutStash(t *testing.T) {
	k := NewKernel()
	var got any
	k.Go(func() {
		w := k.NewWaiter()
		w.WakeAfter(time.Millisecond, "timeout")
		w.Wake("direct")
		k.Sleep(10 * time.Millisecond) // let the (dead) timer window pass
		got = w.Wait()
	})
	k.Run()
	if got != "direct" {
		t.Fatalf("got %v, want direct", got)
	}
}

// TestTaskPoolBounded spawns many sequential tasks and checks the goroutine
// population stays bounded by the pool cap, not the spawn count.
func TestTaskPoolBounded(t *testing.T) {
	before := runtime.NumGoroutine()
	k := NewKernel()
	count := 0
	for i := 0; i < 5000; i++ {
		k.GoAfter(time.Duration(i)*time.Microsecond, func() { count++ })
	}
	k.Run()
	if count != 5000 {
		t.Fatalf("ran %d tasks, want 5000", count)
	}
	if k.Tasks() != 0 {
		t.Fatalf("%d live tasks after run", k.Tasks())
	}
	runtime.GC()
	if after := runtime.NumGoroutine(); after-before > maxFreeTasks+16 {
		t.Fatalf("goroutines grew from %d to %d; task pool not bounded", before, after)
	}
}

// TestSchedulingIsAllocationFree pins the headline property: steady-state
// AfterFunc scheduling and firing performs zero heap allocations.
func TestSchedulingIsAllocationFree(t *testing.T) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n%1000 != 0 {
			k.AfterFunc(time.Microsecond, tick)
		}
	}
	// Warm the pool.
	k.AfterFunc(0, tick)
	k.Run()
	avg := testing.AllocsPerRun(100, func() {
		k.AfterFunc(time.Microsecond, tick)
		k.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state scheduling allocates %.1f allocs/op, want 0", avg)
	}
}

// TestSleepIsAllocationFree pins the same property for the task-switch path:
// inside a running simulation, sleeping and task switching allocate nothing.
func TestSleepIsAllocationFree(t *testing.T) {
	k := NewKernel()
	var before, after runtime.MemStats
	k.Go(func() {
		for i := 0; i < 1000; i++ { // warm event pool
			k.Sleep(time.Microsecond)
		}
		runtime.ReadMemStats(&before)
		for i := 0; i < 10000; i++ {
			k.Sleep(time.Microsecond)
		}
		runtime.ReadMemStats(&after)
	})
	k.Run()
	// Allow a little slack for runtime-internal allocations; 10k sleeps at
	// even one alloc each would be ≥ 10000.
	if d := after.Mallocs - before.Mallocs; d > 100 {
		t.Fatalf("10k sleeps performed %d allocations, want ~0", d)
	}
}

// TestTaskPoolDrainedAtQuiesce: once a run ends with an empty queue, the
// idle pooled goroutines must retire so abandoned kernels don't pin them.
func TestTaskPoolDrainedAtQuiesce(t *testing.T) {
	before := runtime.NumGoroutine()
	k := NewKernel()
	for i := 0; i < 200; i++ {
		k.Go(func() { k.Sleep(time.Millisecond) })
	}
	k.Run()
	if k.freeTaskCount != 0 || k.freeTasks != nil {
		t.Fatalf("task pool not drained: %d pooled tasks", k.freeTaskCount)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines %d -> %d; pooled tasks did not retire", before, after)
	}
	// The kernel stays usable after a drain: the pool re-grows on demand.
	ran := false
	k.Go(func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("kernel unusable after task pool drain")
	}
}
