package sim

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// ParKernel is a conservatively synchronized parallel discrete-event kernel:
// P sub-kernels (one per partition), each with its own timer wheel, task
// pool, and clock, advancing in lockstep lookahead windows executed by up to
// W worker goroutines.
//
// Each round the coordinator takes the global minimum pending event time T
// and lets every partition execute its events in [T, T+L), where L is the
// lookahead — the minimum cross-partition link delay of the model above. Any
// event one partition schedules on another lands at or after the window's
// barrier (Post asserts this), so partitions cannot influence each other
// inside a window and may run concurrently. At the barrier the coordinator
// merges all cross-partition events in (timestamp, seq, partition) order —
// a total order that depends only on the simulation itself — and pushes them
// into the destination sub-kernels, so destination sequence numbers, and
// with them the entire schedule, are identical for every worker count,
// including 1. Worker count is a throughput knob, never a semantic one.
//
// With a single partition ParKernel degenerates to the plain Kernel run
// loop: no windows, no barriers, byte-identical behavior.
type ParKernel struct {
	subs    []*Kernel
	lookNS  int64
	workers int

	halted  bool
	running bool

	// windowEnd is the current round's barrier time. It is written by the
	// coordinator between rounds and read by Post during rounds (the worker
	// channel handoff publishes it); 0 between runs, so out-of-run posts are
	// never rejected.
	windowEnd int64

	out []outbox // per source partition, appended by that partition's worker
	in  [][]xev  // per destination partition, coordinator merge scratch

	// Worker pool: channels live for the ParKernel's lifetime, goroutines
	// only for the duration of one Run (parked goroutines would pin the
	// kernel forever, mirroring drainTaskPool's reasoning).
	wchans  []chan int64
	wcounts []uint64
	wg      sync.WaitGroup

	// barrierHook, when set, runs on the coordinator between lookahead
	// windows — after the barrier merge, before the next round starts. It
	// must not touch simulation state; the memory plane points it at a
	// footprint accountant's Observe. Nil (the default) costs nothing.
	barrierHook func()
}

// xev is a cross-partition event in flight: produced by one partition during
// a window, merged into the destination sub-kernel at the next barrier.
type xev struct {
	atNS int64
	seq  uint64 // per-source post counter: FIFO tiebreak for equal times
	src  int32
	dst  int32
	run  func()
}

// xevLess orders merged cross events by (timestamp, seq, partition): a total
// order independent of worker count and of barrier arrival interleaving.
func xevLess(a, b xev) bool {
	if a.atNS != b.atNS {
		return a.atNS < b.atNS
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.src < b.src
}

// outbox is one source partition's queue of cross events for the current
// window. Padded so outboxes of neighbouring partitions — appended by
// different workers concurrently — do not share a cache line.
type outbox struct {
	evs []xev
	seq uint64
	_   [32]byte
}

// NewParKernel returns a partitioned kernel with parts sub-kernels executed
// by up to workers goroutines (clamped to parts; values < 1 mean 1), with
// the given conservative lookahead. With more than one partition the
// lookahead must be positive and no larger than the minimum cross-partition
// link delay of the network model above — larger values panic at the first
// violating Post.
func NewParKernel(parts, workers int, lookahead time.Duration) *ParKernel {
	if parts < 1 {
		panic("sim: NewParKernel needs at least one partition")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > parts {
		workers = parts
	}
	if parts > 1 && lookahead <= 0 {
		panic("sim: NewParKernel needs a positive lookahead with more than one partition")
	}
	pk := &ParKernel{
		subs:    make([]*Kernel, parts),
		lookNS:  int64(lookahead),
		workers: workers,
		out:     make([]outbox, parts),
		in:      make([][]xev, parts),
	}
	for i := range pk.subs {
		pk.subs[i] = NewKernel()
	}
	if workers > 1 {
		pk.wchans = make([]chan int64, workers)
		for i := range pk.wchans {
			pk.wchans[i] = make(chan int64)
		}
		pk.wcounts = make([]uint64, workers)
	}
	return pk
}

// Sub returns partition i's sub-kernel. All scheduling entry points (Go,
// AfterFunc, NewWaiter, Sleep, ...) are taken on the sub-kernel owning the
// caller's partition; only cross-partition scheduling goes through Post.
func (pk *ParKernel) Sub(i int) *Kernel { return pk.subs[i] }

// Parts returns the number of partitions.
func (pk *ParKernel) Parts() int { return len(pk.subs) }

// Workers returns the effective worker count.
func (pk *ParKernel) Workers() int { return pk.workers }

// Lookahead returns the conservative lookahead window.
func (pk *ParKernel) Lookahead() time.Duration { return time.Duration(pk.lookNS) }

// SetBarrierHook installs fn to run between lookahead windows, on the
// coordinator, outside every partition's event execution. Hooks observe
// (memory statistics, wall-clock progress) — they must not schedule
// events or touch partition state, and they never run on single-partition
// kernels (which have no barriers). Nil clears the hook.
func (pk *ParKernel) SetBarrierHook(fn func()) { pk.barrierHook = fn }

// Go starts fn as a cooperative task on partition part at that partition's
// current virtual time.
func (pk *ParKernel) Go(part int, fn func()) { pk.subs[part].GoAfter(0, fn) }

// GoAfter starts fn as a task on partition part after virtual duration d,
// relative to that partition's clock. Call it during setup (between runs) or
// from code already executing on that partition; cross-partition scheduling
// from inside a run must go through Post.
func (pk *ParKernel) GoAfter(part int, d time.Duration, fn func()) {
	pk.subs[part].GoAfter(d, fn)
}

// Post schedules run to execute on partition dst at absolute virtual time
// atNS (ns since Epoch). It must be called from code executing on partition
// src — src's worker owns the outbox for the duration of the window — or
// from outside a run entirely. Conservative synchronization requires atNS to
// lie at or past the current window's barrier; a violation means the model's
// minimum cross-partition delay is smaller than the configured lookahead,
// which is a configuration bug, so it panics rather than corrupting the
// schedule.
func (pk *ParKernel) Post(src, dst int, atNS int64, run func()) {
	if we := pk.windowEnd; atNS < we {
		panic(fmt.Sprintf(
			"sim: cross-partition post from %d to %d at t=%dns violates the lookahead barrier at t=%dns (lookahead %s exceeds the model's minimum cross-partition delay)",
			src, dst, atNS, we, time.Duration(pk.lookNS)))
	}
	o := &pk.out[src]
	o.evs = append(o.evs, xev{atNS: atNS, seq: o.seq, src: int32(src), dst: int32(dst), run: run})
	o.seq++
}

// Since returns the virtual duration elapsed since Epoch at the slowest
// partition. After a bounded run all partitions sit exactly at the limit.
func (pk *ParKernel) Since() time.Duration {
	low := pk.subs[0].nowNS
	for _, s := range pk.subs[1:] {
		if s.nowNS < low {
			low = s.nowNS
		}
	}
	return time.Duration(low)
}

// Now returns the current virtual time (see Since).
func (pk *ParKernel) Now() time.Time { return Epoch.Add(pk.Since()) }

// Events returns the total number of events executed across all partitions.
func (pk *ParKernel) Events() uint64 {
	var n uint64
	for _, s := range pk.subs {
		n += s.events
	}
	return n
}

// Tasks returns the number of live cooperative tasks across all partitions.
func (pk *ParKernel) Tasks() int {
	n := 0
	for _, s := range pk.subs {
		n += s.tasks
	}
	return n
}

// Run executes events until every partition's queue drains or Halt is
// called. It returns the number of events executed during this call.
func (pk *ParKernel) Run() uint64 { return pk.run(0, false) }

// RunUntil executes events with firing times ≤ t, then sets every
// partition's clock to t.
func (pk *ParKernel) RunUntil(t time.Time) uint64 { return pk.run(int64(t.Sub(Epoch)), true) }

// RunFor advances the simulation by virtual duration d.
func (pk *ParKernel) RunFor(d time.Duration) uint64 {
	return pk.run(int64(pk.Since())+int64(d), true)
}

// Halt stops the run after the current lookahead window completes. Call it
// between runs or from the driving goroutine; a task inside the simulation
// halts deterministically by calling Halt on its own sub-kernel, which stops
// that partition immediately and the whole ParKernel at the next barrier.
func (pk *ParKernel) Halt() { pk.halted = true }

func (pk *ParKernel) run(limitNS int64, bounded bool) uint64 {
	if pk.running {
		panic("sim: ParKernel run loop re-entered")
	}
	pk.running = true
	defer func() { pk.running = false }()

	// Reset halt latches on entry, mirroring Kernel.run: Halt stops this
	// run, not every future one.
	pk.halted = false
	for _, s := range pk.subs {
		s.halted = false
	}

	if len(pk.subs) == 1 {
		// Single partition: no windows, no barriers — exactly the plain
		// Kernel run loop (merge first in case anything was posted from
		// outside a run).
		pk.mergeCross()
		return pk.subs[0].run(limitNS, bounded)
	}

	pk.startWorkers()
	var n uint64
	for !pk.halted {
		pk.mergeCross()
		low := int64(math.MaxInt64)
		for _, s := range pk.subs {
			if p := s.peekNS(); p < low {
				low = p
			}
		}
		if low == math.MaxInt64 || (bounded && low > limitNS) {
			break
		}
		we := low + pk.lookNS
		pk.windowEnd = we
		last := we - 1
		if bounded && last > limitNS {
			last = limitNS
		}
		n += pk.runRound(last)
		for _, s := range pk.subs {
			if s.halted {
				pk.halted = true
			}
		}
		if pk.barrierHook != nil {
			pk.barrierHook()
		}
	}
	// Posts from the final round are future events: queue them for the next
	// run before the outboxes go quiet.
	pk.mergeCross()
	pk.windowEnd = 0
	pk.stopWorkers()

	for _, s := range pk.subs {
		if bounded && !pk.halted && limitNS > s.nowNS {
			s.setNow(limitNS)
		}
		if s.wq.size() == 0 {
			s.drainTaskPool()
		}
	}
	return n
}

// runRound executes one lookahead window on every partition: inline when
// single-threaded, fanned out over the worker pool otherwise. Partition j is
// always executed by worker j mod W, so each outbox has exactly one writer.
func (pk *ParKernel) runRound(last int64) uint64 {
	if pk.wchans == nil {
		var n uint64
		for _, s := range pk.subs {
			n += s.runWindow(last)
		}
		return n
	}
	pk.wg.Add(len(pk.wchans))
	for _, c := range pk.wchans {
		c <- last
	}
	pk.wg.Wait()
	var n uint64
	for i := range pk.wcounts {
		n += pk.wcounts[i]
	}
	return n
}

// workerLoop is one pool worker: it owns partitions i, i+W, i+2W, ... for
// every round of the current run. A math.MinInt64 sentinel retires it.
func (pk *ParKernel) workerLoop(i int) {
	for {
		last := <-pk.wchans[i]
		if last == math.MinInt64 {
			pk.wg.Done()
			return
		}
		var n uint64
		for j := i; j < len(pk.subs); j += pk.workers {
			n += pk.subs[j].runWindow(last)
		}
		pk.wcounts[i] = n
		pk.wg.Done()
	}
}

// startWorkers spawns the pool goroutines for one run. They are retired at
// run exit so an abandoned ParKernel is collectable (parked goroutines on a
// reachable channel never are).
func (pk *ParKernel) startWorkers() {
	for i := range pk.wchans {
		go pk.workerLoop(i)
	}
}

// stopWorkers retires the pool goroutines and waits for them to exit, so the
// next run's pool never races this one's on the round channels.
func (pk *ParKernel) stopWorkers() {
	if pk.wchans == nil {
		return
	}
	pk.wg.Add(len(pk.wchans))
	for _, c := range pk.wchans {
		c <- math.MinInt64
	}
	pk.wg.Wait()
}

// mergeCross drains every outbox, sorts each destination's incoming events
// into (timestamp, seq, partition) order, and pushes them into the
// destination sub-kernels. Destination sequence numbers are assigned in
// sorted order, so the merged schedule is a pure function of the simulation,
// never of worker count or barrier arrival interleaving. The hot path reuses
// the outbox/inbox slices and the destination kernels' event pools: zero
// allocations in steady state.
func (pk *ParKernel) mergeCross() {
	for d := range pk.in {
		pk.in[d] = pk.in[d][:0]
	}
	for s := range pk.out {
		o := &pk.out[s]
		for i := range o.evs {
			e := o.evs[i]
			o.evs[i].run = nil // keep retained capacity from pinning closures
			pk.in[e.dst] = append(pk.in[e.dst], e)
		}
		o.evs = o.evs[:0]
	}
	for d := range pk.in {
		evs := pk.in[d]
		if len(evs) == 0 {
			continue
		}
		sortXevs(evs)
		sub := pk.subs[d]
		for i := range evs {
			e := sub.alloc()
			e.kind = evFunc
			e.fn = evs[i].run
			sub.push(e, evs[i].atNS)
			evs[i].run = nil
		}
	}
}

// sortXevs is an in-place heapsort by xevLess: sort.Slice would allocate its
// closure on every barrier, and the merge path is pinned at 0 allocs/op.
func sortXevs(s []xev) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftXev(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftXev(s, 0, i)
	}
}

func siftXev(s []xev, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && xevLess(s[c], s[c+1]) {
			c++
		}
		if !xevLess(s[i], s[c]) {
			return
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
}

// String implements fmt.Stringer for debugging.
func (pk *ParKernel) String() string {
	queued := 0
	for _, s := range pk.subs {
		queued += s.wq.size()
	}
	return fmt.Sprintf("sim.ParKernel{parts=%d workers=%d t=%s queued=%d tasks=%d}",
		len(pk.subs), pk.workers, pk.Since(), queued, pk.Tasks())
}
