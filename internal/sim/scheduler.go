package sim

import "time"

// Scheduler is the driving surface shared by the single-threaded Kernel and
// the partitioned ParKernel. Code that only needs to advance virtual time —
// the scenario session driver, experiment harnesses — programs against this
// interface and is indifferent to whether one event loop or N sub-kernels
// sit underneath.
//
// Everything scheduling-related (Go, AfterFunc, NewWaiter, ...) stays on the
// concrete kernels: in partitioned mode those calls are per-partition, so a
// flat interface for them would hide the partition argument that makes them
// correct.
type Scheduler interface {
	// Now returns the current virtual time. For a ParKernel this is the
	// low-water mark across partitions (they re-align at every bounded run).
	Now() time.Time
	// Since returns the virtual duration elapsed since the Epoch.
	Since() time.Duration
	// Events returns the total number of events executed.
	Events() uint64
	// Tasks returns the number of live cooperative tasks.
	Tasks() int
	// Run executes events until the queue drains or Halt is called.
	Run() uint64
	// RunFor advances the simulation by virtual duration d.
	RunFor(d time.Duration) uint64
	// RunUntil executes events with firing times ≤ t, then sets the clock
	// to t.
	RunUntil(t time.Time) uint64
	// Halt stops the run loop after the current event (Kernel) or the
	// current lookahead window (ParKernel) completes.
	Halt()
}

var (
	_ Scheduler = (*Kernel)(nil)
	_ Scheduler = (*ParKernel)(nil)
)
