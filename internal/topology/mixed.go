package topology

import "time"

// SubModel is a link model that can participate in a mixed deployment: it
// additionally reports each host's one-way delay to its testbed's edge.
type SubModel interface {
	Delay(a, b int) time.Duration
	Loss(a, b int) float64
	UplinkBps(host int) float64
	DownlinkBps(host int) float64
	EdgeDelay(host int) time.Duration
}

// Mixed composes two testbeds into one host space: hosts [0,SizeA) live in
// A, the rest in B (§5.4: a single experiment spanning PlanetLab and a
// ModelNet cluster at the same time). Cross-testbed traffic pays each
// host's edge delay plus a WAN hop.
type Mixed struct {
	A, B   SubModel
	SizeA  int
	WanRTT time.Duration // RTT of the inter-testbed WAN link
}

// NewMixed builds a mixed deployment with sizeA hosts in a and the
// remaining hosts mapped to b.
func NewMixed(a, b SubModel, sizeA int, wanRTT time.Duration) *Mixed {
	return &Mixed{A: a, B: b, SizeA: sizeA, WanRTT: wanRTT}
}

func (m *Mixed) side(host int) (SubModel, int) {
	if host < m.SizeA {
		return m.A, host
	}
	return m.B, host - m.SizeA
}

// Delay implements simnet.LinkModel.
func (m *Mixed) Delay(a, b int) time.Duration {
	ma, ia := m.side(a)
	mb, ib := m.side(b)
	if ma == mb {
		return ma.Delay(ia, ib)
	}
	return ma.EdgeDelay(ia) + m.WanRTT/2 + mb.EdgeDelay(ib)
}

// Loss implements simnet.LinkModel: cross-testbed loss is the max of the
// two sides' loss toward their edges.
func (m *Mixed) Loss(a, b int) float64 {
	ma, ia := m.side(a)
	mb, ib := m.side(b)
	if ma == mb {
		return ma.Loss(ia, ib)
	}
	la, lb := ma.Loss(ia, ia), mb.Loss(ib, ib)
	if la > lb {
		return la
	}
	return lb
}

// UplinkBps implements simnet.LinkModel.
func (m *Mixed) UplinkBps(host int) float64 {
	mm, i := m.side(host)
	return mm.UplinkBps(i)
}

// DownlinkBps implements simnet.LinkModel.
func (m *Mixed) DownlinkBps(host int) float64 {
	mm, i := m.side(host)
	return mm.DownlinkBps(i)
}

// MinDelay implements simnet.MinDelayModel when both sides do: the
// cross-testbed WAN path cannot be faster than either side's internal
// minimum, so the bound is the smaller of the two. Returns 0 (not
// partitionable) when either side lacks a bound.
func (m *Mixed) MinDelay() time.Duration {
	a, ok := m.A.(interface{ MinDelay() time.Duration })
	if !ok {
		return 0
	}
	b, ok := m.B.(interface{ MinDelay() time.Duration })
	if !ok {
		return 0
	}
	if a.MinDelay() < b.MinDelay() {
		return a.MinDelay()
	}
	return b.MinDelay()
}

// EdgeDelay lets mixed deployments nest.
func (m *Mixed) EdgeDelay(host int) time.Duration {
	mm, i := m.side(host)
	return mm.EdgeDelay(i) + m.WanRTT/4
}
