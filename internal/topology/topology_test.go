package topology

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestModelNetDelayClasses(t *testing.T) {
	m := NewModelNet(DefaultModelNet(1100))
	if m.NumHosts() != 1100 {
		t.Fatalf("hosts = %d", m.NumHosts())
	}
	// Find a same-stub pair and a different-stub pair.
	sameStub, diffStub := -1, -1
	for b := 1; b < m.NumHosts(); b++ {
		if m.hostStub[0] == m.hostStub[b] && sameStub < 0 {
			sameStub = b
		}
		if m.hostStub[0] != m.hostStub[b] && diffStub < 0 {
			diffStub = b
		}
	}
	if sameStub > 0 {
		if rtt := m.RTT(0, sameStub); rtt != 10*time.Millisecond {
			t.Errorf("same-domain RTT = %s, want 10ms", rtt)
		}
	}
	if diffStub > 0 {
		rtt := m.RTT(0, diffStub)
		// At least access + 2×(stub-transit) = 10+60 = 70ms.
		if rtt < 70*time.Millisecond {
			t.Errorf("cross-stub RTT = %s, want ≥ 70ms", rtt)
		}
	}
	if m.RTT(5, 5) != 0 {
		t.Errorf("self RTT nonzero")
	}
}

func TestModelNetSymmetryAndBounds(t *testing.T) {
	m := NewModelNet(DefaultModelNet(300))
	var max time.Duration
	for a := 0; a < 100; a++ {
		for b := a + 1; b < 100; b++ {
			ab, ba := m.RTT(a, b), m.RTT(b, a)
			if ab != ba {
				t.Fatalf("asymmetric RTT between %d and %d: %s vs %s", a, b, ab, ba)
			}
			if ab <= 0 {
				t.Fatalf("non-positive RTT between %d and %d", a, b)
			}
			if ab > max {
				max = ab
			}
		}
	}
	// The paper notes ModelNet delays are roughly twice PlanetLab's; the
	// diameter should stay well under a second.
	if max > time.Second {
		t.Fatalf("topology diameter %s too large", max)
	}
	if max < 100*time.Millisecond {
		t.Fatalf("topology diameter %s suspiciously small", max)
	}
}

func TestModelNetDeterministic(t *testing.T) {
	a := NewModelNet(DefaultModelNet(200))
	b := NewModelNet(DefaultModelNet(200))
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if a.RTT(i, j) != b.RTT(i, j) {
				t.Fatalf("non-deterministic generation at (%d,%d)", i, j)
			}
		}
	}
}

func TestModelNetTriangleish(t *testing.T) {
	// Delays derive from shortest paths, so the router part obeys the
	// triangle inequality; with access links the violation is bounded by
	// one access RTT.
	m := NewModelNet(DefaultModelNet(100))
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%100, int(b)%100, int(c)%100
		return m.RTT(x, z) <= m.RTT(x, y)+m.RTT(y, z)+m.accessRTT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanetLabFig3Calibration(t *testing.T) {
	p := NewPlanetLab(DefaultPlanetLab(450))
	const probes = 20000
	var delays []time.Duration
	for i := 0; i < probes; i++ {
		delays = append(delays, p.ProbeDelay(i%p.NumHosts(), 20<<10))
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	frac := func(limit time.Duration) float64 {
		n := sort.Search(len(delays), func(i int) bool { return delays[i] > limit })
		return float64(n) / float64(len(delays))
	}
	under250 := frac(250 * time.Millisecond)
	over1s := 1 - frac(time.Second)
	// Paper (Fig. 3): 17.10% within 250ms, over 45% need > 1 s.
	if math.Abs(under250-0.171) > 0.04 {
		t.Errorf("P(probe ≤ 250ms) = %.3f, want ≈ 0.171", under250)
	}
	if over1s < 0.40 || over1s > 0.52 {
		t.Errorf("P(probe > 1s) = %.3f, want ≈ 0.45", over1s)
	}
	if max := delays[len(delays)-1]; max > 12*time.Second {
		t.Errorf("max probe %s beyond Fig. 3 tail", max)
	}
}

func TestPlanetLabPairwiseRTT(t *testing.T) {
	p := NewPlanetLab(DefaultPlanetLab(400))
	var rtts []time.Duration
	for a := 0; a < 100; a++ {
		for b := a + 1; b < 100; b++ {
			oneway := p.Delay(a, b)
			if oneway != p.Delay(b, a) {
				t.Fatalf("asymmetric delay")
			}
			rtts = append(rtts, 2*oneway)
		}
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	median := rtts[len(rtts)/2]
	if median < 40*time.Millisecond || median > 200*time.Millisecond {
		t.Fatalf("median pairwise RTT %s outside plausible PlanetLab range", median)
	}
}

func TestSlownessQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return slownessQuantile(a) <= slownessQuantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if q := slownessQuantile(-1); q != slownessQuantile(0) {
		t.Error("negative percentile not clamped")
	}
	if q := slownessQuantile(2); q > 11*time.Second {
		t.Error("overflow percentile not clamped")
	}
}

func TestMixedDeployment(t *testing.T) {
	pl := NewPlanetLab(DefaultPlanetLab(100))
	mn := NewModelNet(DefaultModelNet(100))
	mx := NewMixed(pl, mn, 100, 60*time.Millisecond)

	// Intra-side delays match the underlying models.
	if mx.Delay(3, 7) != pl.Delay(3, 7) {
		t.Error("A-side delay mismatch")
	}
	if mx.Delay(103, 107) != mn.Delay(3, 7) {
		t.Error("B-side delay mismatch")
	}
	// Cross-side delay includes the WAN hop.
	cross := mx.Delay(3, 103)
	if cross < 30*time.Millisecond {
		t.Errorf("cross delay %s too small", cross)
	}
	if mx.Delay(3, 103) != mx.Delay(103, 3) {
		t.Error("cross delay asymmetric")
	}
	// Bandwidth routed to the right side.
	if mx.UplinkBps(103) != mn.UplinkBps(3) {
		t.Error("B-side bandwidth mismatch")
	}
	if mx.UplinkBps(3) != pl.UplinkBps(3) {
		t.Error("A-side bandwidth mismatch")
	}
}

func TestProcDelayScalesWithSlowness(t *testing.T) {
	p := NewPlanetLab(DefaultPlanetLab(450))
	// Identify the fastest and slowest host by percentile.
	fast, slow := 0, 0
	for i := range p.slow {
		if p.slow[i] < p.slow[fast] {
			fast = i
		}
		if p.slow[i] > p.slow[slow] {
			slow = i
		}
	}
	avg := func(h int) time.Duration {
		var sum time.Duration
		for i := 0; i < 2000; i++ {
			sum += p.ProcDelay(h, 1024)
		}
		return sum / 2000
	}
	if af, as := avg(fast), avg(slow); af >= as {
		t.Fatalf("fast host proc delay %s ≥ slow host %s", af, as)
	}
}
