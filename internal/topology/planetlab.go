package topology

import (
	"math"
	"math/rand"
	"time"
)

// PlanetLabConfig parameterizes the PlanetLab model.
type PlanetLabConfig struct {
	Hosts int
	Seed  int64
	// LossProb is the datagram loss probability between any pair.
	LossProb float64
}

// DefaultPlanetLab returns a model of the paper's PlanetLab slice
// (400–450 hosts were used; pass the desired count).
func DefaultPlanetLab(hosts int) PlanetLabConfig {
	if hosts <= 0 {
		hosts = 450
	}
	return PlanetLabConfig{Hosts: hosts, Seed: 1971, LossProb: 0.005}
}

// PlanetLab models the live testbed: wide-area delays plus per-host load.
// Host "slowness" is a persistent per-host percentile, matching the
// real-world observation that overloaded PlanetLab nodes stay overloaded,
// with small per-operation jitter. The slowness marginal distribution is
// calibrated against the paper's Fig. 3: for a 20 KB probe over an
// established TCP connection, 17.1% of hosts answer within 250 ms and
// about 45% need more than one second, with a tail out to ten seconds.
//
// PlanetLab implements simnet.LinkModel; its ProcDelay method plugs into
// simnet.Network.SetProcDelay to charge per-message load at receivers.
type PlanetLab struct {
	cfg  PlanetLabConfig
	base []time.Duration // per-host one-way delay contribution
	slow []float64       // per-host slowness percentile in [0,1)
	bps  []float64       // per-host access bandwidth
	rng  *rand.Rand      // jitter source; only used inside kernel events
}

// NewPlanetLab builds the model deterministically from its seed.
func NewPlanetLab(cfg PlanetLabConfig) *PlanetLab {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &PlanetLab{
		cfg:  cfg,
		base: make([]time.Duration, cfg.Hosts),
		slow: make([]float64, cfg.Hosts),
		bps:  make([]float64, cfg.Hosts),
		rng:  rng,
	}
	for i := 0; i < cfg.Hosts; i++ {
		// One-way contribution ~ lognormal, median 20 ms: pairwise RTTs
		// land mostly in 40–300 ms, median ≈ 80 ms.
		p.base[i] = time.Duration(20e3*math.Exp(rng.NormFloat64()*0.6)) * time.Microsecond
		p.slow[i] = rng.Float64()
		// Access bandwidth 0.5–4 MB/s.
		p.bps[i] = (0.5 + 3.5*rng.Float64()) * 1e6
	}
	return p
}

// NumHosts returns the modeled population size.
func (p *PlanetLab) NumHosts() int { return p.cfg.Hosts }

// Delay implements simnet.LinkModel.
func (p *PlanetLab) Delay(a, b int) time.Duration {
	if a == b {
		return 0
	}
	return p.base[a] + p.base[b]
}

// MinDelay implements simnet.MinDelayModel: the smallest delay between
// distinct hosts is the sum of the two smallest per-host contributions.
func (p *PlanetLab) MinDelay() time.Duration {
	if len(p.base) < 2 {
		return 0
	}
	lo1, lo2 := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	for _, d := range p.base {
		if d < lo1 {
			lo1, lo2 = d, lo1
		} else if d < lo2 {
			lo2 = d
		}
	}
	return lo1 + lo2
}

// Loss implements simnet.LinkModel.
func (p *PlanetLab) Loss(a, b int) float64 { return p.cfg.LossProb }

// UplinkBps implements simnet.LinkModel.
func (p *PlanetLab) UplinkBps(host int) float64 { return p.bps[host] }

// DownlinkBps implements simnet.LinkModel.
func (p *PlanetLab) DownlinkBps(host int) float64 { return p.bps[host] }

// EdgeDelay reports the host's one-way contribution, used for mixed
// deployments.
func (p *PlanetLab) EdgeDelay(host int) time.Duration { return p.base[host] }

// slownessQuantile maps a percentile to the Fig. 3 probe-delay
// distribution: the piecewise inverse CDF hits the paper's published
// quantiles exactly (17.1% ≤ 250 ms, 55% ≤ 1 s, tail to 10 s).
func slownessQuantile(u float64) time.Duration {
	switch {
	case u < 0:
		u = 0
	case u >= 1:
		u = 0.999999
	}
	const (
		q1 = 0.171 // fraction at or under 250ms
		q2 = 0.55  // fraction at or under 1s
	)
	var ms float64
	switch {
	case u < q1:
		ms = 60 + (250-60)*(u/q1)
	case u < q2:
		ms = 250 + (1000-250)*((u-q1)/(q2-q1))
	default:
		// Log-linear from 1 s to 10 s.
		ms = 1000 * math.Pow(10, (u-q2)/(1-q2))
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// ProbeDelay samples the controller→host round-trip for a payload of size
// bytes over an established TCP connection: the quantity Fig. 3 plots for
// 20 KB payloads. It includes pairwise RTT, transfer time at the host's
// bandwidth and the host's (jittered) load-induced delay.
func (p *PlanetLab) ProbeDelay(host int, size int) time.Duration {
	u := p.slow[host] + p.rng.NormFloat64()*0.02
	d := slownessQuantile(u)
	transfer := time.Duration(float64(size) / p.bps[host] * float64(time.Second))
	// The slowness quantile is the calibrated total; the physical floor
	// (round trip plus transfer) dominates only for fast, distant hosts.
	if floor := p.base[host]*2 + transfer; floor > d {
		return floor
	}
	return d
}

// ProcDelay charges per-message processing latency at a receiving host:
// light hosts add milliseconds, overloaded ones add hundreds. Plug into
// simnet.Network.SetProcDelay. The mean is the host's Fig. 3 slowness
// scaled down (a protocol message is far cheaper than a 20 KB probe
// round-trip), sampled exponentially per message.
func (p *PlanetLab) ProcDelay(host int, size int) time.Duration {
	mean := float64(slownessQuantile(p.slow[host])) / 14
	return time.Duration(p.rng.ExpFloat64() * mean)
}
