// Package topology provides the link models used by the paper's testbeds:
// a ModelNet-style transit-stub topology, a PlanetLab model calibrated
// against the paper's measurements, and mixed deployments spanning both.
// All models implement simnet.LinkModel.
package topology

import (
	"container/heap"
	"math/rand"
	"time"
)

// ModelNetConfig parameterizes the transit-stub generator. The zero value
// is not useful; DefaultModelNet reproduces the paper's setup.
type ModelNetConfig struct {
	Hosts          int           // emulated end hosts
	TransitDomains int           // number of transit domains
	TransitPerDom  int           // routers per transit domain
	StubRouters    int           // number of stub domains/routers
	SameDomainRTT  time.Duration // host↔host within one stub domain
	StubTransitRTT time.Duration // stub↔transit and stub↔stub links
	TransitRTT     time.Duration // transit↔transit (long range) links
	LinkBps        float64       // per-host access bandwidth, bytes/sec
	Seed           int64
}

// DefaultModelNet returns the paper's configuration: 1,100 hosts on a
// 500-node transit-stub topology, 10 Mbps links, 10/30/100 ms RTTs
// (§5, experimental setup).
func DefaultModelNet(hosts int) ModelNetConfig {
	if hosts <= 0 {
		hosts = 1100
	}
	return ModelNetConfig{
		Hosts:          hosts,
		TransitDomains: 10,
		TransitPerDom:  5,
		StubRouters:    450, // 450 stubs + 50 transit = 500-node topology
		SameDomainRTT:  10 * time.Millisecond,
		StubTransitRTT: 30 * time.Millisecond,
		TransitRTT:     100 * time.Millisecond,
		LinkBps:        10e6 / 8, // 10 Mbps
		Seed:           2009,
	}
}

// ModelNet is a generated transit-stub topology with an all-pairs delay
// table between stub routers. It implements simnet.LinkModel.
type ModelNet struct {
	cfg       ModelNetConfig
	hostStub  []int      // host -> stub router index
	stubDelay [][]uint32 // stub -> stub RTT in microseconds (router part)
	accessRTT time.Duration
}

// NewModelNet generates a topology. Generation is deterministic in
// cfg.Seed.
func NewModelNet(cfg ModelNetConfig) *ModelNet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nTransit := cfg.TransitDomains * cfg.TransitPerDom
	nRouters := nTransit + cfg.StubRouters

	adj := make([][]edge, nRouters)
	addLink := func(a, b int, rtt time.Duration) {
		w := uint32(rtt / time.Microsecond)
		adj[a] = append(adj[a], edge{b, w})
		adj[b] = append(adj[b], edge{a, w})
	}

	// Transit mesh: full mesh inside a domain at the same-domain RTT;
	// a ring plus random chords across domains at the long-range RTT.
	domainRouter := func(dom, i int) int { return dom*cfg.TransitPerDom + i }
	for dom := 0; dom < cfg.TransitDomains; dom++ {
		for i := 0; i < cfg.TransitPerDom; i++ {
			for j := i + 1; j < cfg.TransitPerDom; j++ {
				addLink(domainRouter(dom, i), domainRouter(dom, j), cfg.SameDomainRTT)
			}
		}
	}
	for dom := 0; dom < cfg.TransitDomains; dom++ {
		next := (dom + 1) % cfg.TransitDomains
		addLink(domainRouter(dom, rng.Intn(cfg.TransitPerDom)),
			domainRouter(next, rng.Intn(cfg.TransitPerDom)), cfg.TransitRTT)
		// One random chord per domain for path diversity.
		other := rng.Intn(cfg.TransitDomains)
		if other != dom {
			addLink(domainRouter(dom, rng.Intn(cfg.TransitPerDom)),
				domainRouter(other, rng.Intn(cfg.TransitPerDom)), cfg.TransitRTT)
		}
	}
	// Stub routers: each hangs off one transit router; a few stub-stub
	// shortcut links.
	for s := 0; s < cfg.StubRouters; s++ {
		stub := nTransit + s
		addLink(stub, rng.Intn(nTransit), cfg.StubTransitRTT)
		if rng.Float64() < 0.05 && s > 0 {
			addLink(stub, nTransit+rng.Intn(s), cfg.StubTransitRTT)
		}
	}

	// All-pairs stub↔stub delays via Dijkstra from every stub router.
	stubDelay := make([][]uint32, cfg.StubRouters)
	for s := 0; s < cfg.StubRouters; s++ {
		dist := dijkstra(adj, nTransit+s)
		row := make([]uint32, cfg.StubRouters)
		for q := 0; q < cfg.StubRouters; q++ {
			row[q] = dist[nTransit+q]
		}
		stubDelay[s] = row
	}

	hostStub := make([]int, cfg.Hosts)
	for h := range hostStub {
		hostStub[h] = rng.Intn(cfg.StubRouters)
	}
	return &ModelNet{
		cfg:       cfg,
		hostStub:  hostStub,
		stubDelay: stubDelay,
		accessRTT: cfg.SameDomainRTT,
	}
}

// edge is a router-graph link with an RTT weight in microseconds.
type edge struct {
	to int
	w  uint32
}

// dijkstra returns shortest-path RTTs (µs) from src over the router graph.
func dijkstra(adj [][]edge, src int) []uint32 {
	const inf = ^uint32(0)
	dist := make([]uint32, len(adj))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{e.to, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	node int
	d    uint32
}
type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() (it any) {
	old := *h
	n := len(old)
	it = old[n-1]
	*h = old[:n-1]
	return
}

// NumHosts returns the emulated host population.
func (m *ModelNet) NumHosts() int { return m.cfg.Hosts }

// Config returns the generator configuration.
func (m *ModelNet) Config() ModelNetConfig { return m.cfg }

// RTT returns the emulated round-trip time between two hosts.
func (m *ModelNet) RTT(a, b int) time.Duration {
	if a == b {
		return 0
	}
	sa, sb := m.hostStub[a], m.hostStub[b]
	if sa == sb {
		return m.accessRTT
	}
	router := time.Duration(m.stubDelay[sa][sb]) * time.Microsecond
	return m.accessRTT + router
}

// Delay implements simnet.LinkModel (one-way delay).
func (m *ModelNet) Delay(a, b int) time.Duration { return m.RTT(a, b) / 2 }

// MinDelay implements simnet.MinDelayModel: the smallest one-way delay
// between distinct hosts is half the intra-domain RTT (self-delay is zero,
// but a host never crosses a kernel partition to reach itself).
func (m *ModelNet) MinDelay() time.Duration { return m.accessRTT / 2 }

// Loss implements simnet.LinkModel; ModelNet links are lossless here.
func (m *ModelNet) Loss(a, b int) float64 { return 0 }

// UplinkBps implements simnet.LinkModel.
func (m *ModelNet) UplinkBps(host int) float64 { return m.cfg.LinkBps }

// DownlinkBps implements simnet.LinkModel.
func (m *ModelNet) DownlinkBps(host int) float64 { return m.cfg.LinkBps }

// EdgeDelay reports the typical one-way delay from a host to the transit
// core, used to compose mixed deployments.
func (m *ModelNet) EdgeDelay(host int) time.Duration {
	return (m.accessRTT + m.cfg.StubTransitRTT) / 2
}
