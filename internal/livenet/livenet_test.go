package livenet

import (
	"io"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

func TestLiveStreamRoundTrip(t *testing.T) {
	n := NewNode("127.0.0.1")
	ln, err := n.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan string, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(c)
		got <- string(data)
	}()
	c, err := n.Dial(transport.Addr{Host: "127.0.0.1", Port: ln.Addr().Port}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("live hello"))
	c.Close()
	select {
	case s := <-got:
		if s != "live hello" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestLiveTLS(t *testing.T) {
	cfg, err := SelfSignedTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	server := NewNode("127.0.0.1")
	server.TLS = cfg
	ln, err := server.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan string, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := c.Read(buf)
		got <- string(buf[:n])
	}()
	c2 := NewNode("127.0.0.1")
	c2.TLS = cfg // any non-nil enables TLS dialing (client uses its own config)
	conn, err := c2.Dial(transport.Addr{Host: "127.0.0.1", Port: ln.Addr().Port}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("secured"))
	select {
	case s := <-got:
		if s != "secured" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestLivePackets(t *testing.T) {
	n := NewNode("127.0.0.1")
	pc, err := n.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	sender, err := n.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	go sender.WriteTo([]byte("dgram"), transport.Addr{Host: "127.0.0.1", Port: pc.Addr().Port})
	pc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	m, _, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:m]) != "dgram" {
		t.Fatalf("got %q", buf[:m])
	}
}

func TestDialRefusedLive(t *testing.T) {
	n := NewNode("127.0.0.1")
	if _, err := n.Dial(transport.Addr{Host: "127.0.0.1", Port: 1}, 2*time.Second); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
