// Package livenet implements the transport abstraction over the real
// network (standard library net), used by the splayctl/splayd executables
// and the quickstart example. An optional TLS mode secures the
// daemon↔controller link with an in-memory self-signed certificate,
// standing in for the paper's SSL deployment.
package livenet

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"strconv"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// Node is a live network stack advertising the given host name.
type Node struct {
	host string
	// TLS, when non-nil, wraps stream connections (client side uses
	// InsecureSkipVerify against the self-signed controller cert, which
	// matches the paper's key-on-first-use deployment).
	TLS *tls.Config
}

var _ transport.Node = (*Node)(nil)

// NewNode returns a live node; host is the name peers use to reach it
// (e.g. "127.0.0.1").
func NewNode(host string) *Node { return &Node{host: host} }

// Host implements transport.Node.
func (n *Node) Host() string { return n.host }

// Listen implements transport.Node.
func (n *Node) Listen(port int) (transport.Listener, error) {
	ln, err := net.Listen("tcp", net.JoinHostPort("", strconv.Itoa(port)))
	if err != nil {
		return nil, err
	}
	if n.TLS != nil {
		ln = tls.NewListener(ln, n.TLS)
	}
	return &listener{ln: ln, host: n.host}, nil
}

// Dial implements transport.Node.
func (n *Node) Dial(to transport.Addr, timeout time.Duration) (transport.Conn, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	var c net.Conn
	var err error
	if n.TLS != nil {
		d := &net.Dialer{Timeout: timeout}
		c, err = tls.DialWithDialer(d, "tcp", to.String(), &tls.Config{InsecureSkipVerify: true})
	} else {
		c, err = net.DialTimeout("tcp", to.String(), timeout)
	}
	if err != nil {
		return nil, err
	}
	return &conn{c: c, local: transport.Addr{Host: n.host}, remote: to}, nil
}

// ListenPacket implements transport.Node.
func (n *Node) ListenPacket(port int) (transport.PacketConn, error) {
	pc, err := net.ListenPacket("udp", net.JoinHostPort("", strconv.Itoa(port)))
	if err != nil {
		return nil, err
	}
	return &packetConn{pc: pc, host: n.host}, nil
}

type conn struct {
	c      net.Conn
	local  transport.Addr
	remote transport.Addr
}

func (c *conn) Read(p []byte) (int, error)  { return c.c.Read(p) }
func (c *conn) Write(p []byte) (int, error) { return c.c.Write(p) }
func (c *conn) Close() error                { return c.c.Close() }
func (c *conn) LocalAddr() transport.Addr   { return fromNet(c.c.LocalAddr()) }
func (c *conn) RemoteAddr() transport.Addr {
	if !c.remote.IsZero() {
		return c.remote
	}
	return fromNet(c.c.RemoteAddr())
}
func (c *conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

type listener struct {
	ln   net.Listener
	host string
}

func (l *listener) Accept() (transport.Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return &conn{c: c}, nil
}

func (l *listener) Close() error { return l.ln.Close() }
func (l *listener) Addr() transport.Addr {
	a := fromNet(l.ln.Addr())
	a.Host = l.host
	return a
}

type packetConn struct {
	pc   net.PacketConn
	host string
}

func (p *packetConn) ReadFrom(b []byte) (int, transport.Addr, error) {
	n, from, err := p.pc.ReadFrom(b)
	if err != nil {
		return n, transport.Addr{}, err
	}
	return n, fromNet(from), nil
}

func (p *packetConn) WriteTo(b []byte, to transport.Addr) (int, error) {
	ua, err := net.ResolveUDPAddr("udp", to.String())
	if err != nil {
		return 0, err
	}
	return p.pc.WriteTo(b, ua)
}

func (p *packetConn) Close() error                      { return p.pc.Close() }
func (p *packetConn) SetReadDeadline(t time.Time) error { return p.pc.SetReadDeadline(t) }
func (p *packetConn) Addr() transport.Addr {
	a := fromNet(p.pc.LocalAddr())
	a.Host = p.host
	return a
}

func fromNet(a net.Addr) transport.Addr {
	if a == nil {
		return transport.Addr{}
	}
	out, err := transport.ParseAddr(a.String())
	if err != nil {
		return transport.Addr{Host: a.String()}
	}
	return out
}

// SelfSignedTLS generates an ephemeral server certificate for host,
// returning the server-side TLS configuration.
func SelfSignedTLS(host string) (*tls.Config, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("livenet: keygen: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject:      pkix.Name{CommonName: "splayctl"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		DNSNames:     []string{host},
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	if ip := net.ParseIP(host); ip != nil {
		tmpl.IPAddresses = []net.IP{ip}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("livenet: certificate: %w", err)
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	return &tls.Config{Certificates: []tls.Certificate{cert}}, nil
}
