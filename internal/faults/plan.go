// Package faults is the fault plane: declarative fault injection,
// closed-loop trigger rules over the aggregated metric view, and metric
// assertions that turn an experiment into a pass/fail gate.
//
// The package is deliberately mechanism-free: a Plan says *what* happens
// and *when*; the Actuators interface says *how*, and is implemented by
// the scenario layer twice — over simnet hooks for simulated testbeds and
// over daemon kill/restart plus transport filters live. Everything here
// is inert until an Engine is armed, and every hook the rest of the stack
// consults is nil-checked, so an empty Plan adds no kernel events and
// keeps every simulation golden byte-identical (the schedule-neutrality
// invariant, see DESIGN.md).
package faults

import (
	"fmt"
	"strings"
	"time"
)

// EventKind enumerates the injectable faults.
type EventKind int

// Event kinds.
const (
	// Crash kills a fraction (or count) of the daemon population:
	// instances die, the host drops off the network.
	Crash EventKind = iota
	// Restart revives every crashed daemon with a fresh process.
	Restart
	// Partition splits the population in two groups that cannot reach
	// each other; crossing connections reset, crossing dials blackhole.
	Partition
	// Heal removes the partition.
	Heal
	// Degrade adds latency and datagram loss to every link.
	Degrade
	// Restore removes the degradation.
	Restore
	// RPCFault installs a message filter: matching outgoing RPC requests
	// are dropped (fail by timeout) or delayed.
	RPCFault
	// RPCClear removes every RPC filter.
	RPCClear
)

func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case Degrade:
		return "degrade"
	case Restore:
		return "restore"
	case RPCFault:
		return "rpc-fault"
	case RPCClear:
		return "rpc-clear"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one timed fault injection. At is relative to the instant the
// plan is armed (after deployment), so the same plan replays identically
// at any absolute start time.
type Event struct {
	At   time.Duration
	Kind EventKind

	// Fraction selects how much of the population Crash kills or
	// Partition cuts away (0 < Fraction < 1); Count is the absolute
	// alternative for Crash.
	Fraction float64
	Count    int

	// ExtraLatency and Loss parameterize Degrade.
	ExtraLatency time.Duration
	Loss         float64

	// Method filters RPCFault ("" matches every method); Drop is the
	// drop probability, Delay the added latency of surviving requests.
	Method string
	Drop   float64
	Delay  time.Duration
}

// Stat selects how a Condition reads the aggregated telemetry.
type Stat int

// Condition statistics.
const (
	// StatTotal is a counter's population-wide total.
	StatTotal Stat = iota
	// StatRate is a counter total's growth per second since the previous
	// evaluation tick (0 on the first tick).
	StatRate
	// StatGauge is a gauge's population-wide sum.
	StatGauge
	// StatMean is a histogram's mean (sum/count; 0 when empty).
	StatMean
	// StatP50/P90/P99 are histogram percentiles (bucket upper edges).
	StatP50
	StatP90
	StatP99
	// StatNodes is the number of reporting streams; Metric is ignored.
	StatNodes
)

func (s Stat) String() string {
	switch s {
	case StatTotal:
		return "total"
	case StatRate:
		return "rate"
	case StatGauge:
		return "gauge"
	case StatMean:
		return "mean"
	case StatP50:
		return "p50"
	case StatP90:
		return "p90"
	case StatP99:
		return "p99"
	case StatNodes:
		return "nodes"
	}
	return fmt.Sprintf("stat(%d)", int(s))
}

// Op compares a condition's observed statistic against its threshold.
type Op int

// Comparison operators.
const (
	Above Op = iota
	Below
)

func (o Op) String() string {
	if o == Below {
		return "<"
	}
	return ">"
}

// Condition is one metric predicate: "Stat of Metric is Above/Below
// Value". Conditions are evaluated against a View on every engine tick.
type Condition struct {
	Metric string
	Stat   Stat
	Op     Op
	Value  float64
}

func (c Condition) String() string {
	return fmt.Sprintf("%s(%s) %s %g", c.Stat, c.Metric, c.Op, c.Value)
}

// View is the metric surface conditions read — implemented by
// metrics.Aggregator. All methods must be safe to call from engine ticks.
type View interface {
	CounterTotal(name string) uint64
	GaugeSum(name string) int64
	HistStats(name string) (count uint64, sum int64)
	HistQuantile(name string, p float64) int64
	Nodes() int
}

// ActionKind enumerates what a fired trigger does.
type ActionKind int

// Trigger actions.
const (
	// ActKill kills Fraction (or Count) of the population.
	ActKill ActionKind = iota
	// ActHeal heals the active partition and restores degraded links.
	ActHeal
	// ActGrow deploys Count additional instances of the scenario's
	// first application.
	ActGrow
	// ActInject applies an arbitrary Event.
	ActInject
)

func (k ActionKind) String() string {
	switch k {
	case ActKill:
		return "kill"
	case ActHeal:
		return "heal"
	case ActGrow:
		return "grow"
	case ActInject:
		return "inject"
	}
	return fmt.Sprintf("action(%d)", int(k))
}

// Action is a fired rule's effect.
type Action struct {
	Kind     ActionKind
	Fraction float64 // ActKill
	Count    int     // ActKill / ActGrow
	Event    *Event  // ActInject
}

func (a Action) String() string {
	switch a.Kind {
	case ActKill:
		if a.Count > 0 {
			return fmt.Sprintf("kill %d", a.Count)
		}
		return fmt.Sprintf("kill %g%%", a.Fraction*100)
	case ActGrow:
		return fmt.Sprintf("grow %d", a.Count)
	case ActInject:
		if a.Event != nil {
			return "inject " + a.Event.Kind.String()
		}
	}
	return a.Kind.String()
}

// Rule is one closed-loop trigger: when the condition holds For long
// enough, the action fires through the actuators (the ACME model — rules
// over sensors driving actuators through the deployment substrate).
type Rule struct {
	// Name labels the rule in firing records and logs.
	Name string
	// When is the condition to watch.
	When Condition
	// For is how long the condition must hold continuously before the
	// rule fires (0 = a single evaluation tick suffices).
	For time.Duration
	// Do is the fired effect.
	Do Action
	// Cooldown is the minimum spacing between consecutive fires.
	Cooldown time.Duration
	// MaxFires bounds how often the rule may fire (0 = once).
	MaxFires int
}

// Firing records one rule activation.
type Firing struct {
	Rule   string
	At     time.Time
	Action string
}

// AssertKind selects an assertion's temporal semantics.
type AssertKind int

// Assertion kinds.
const (
	// Eventually passes if the condition holds at any evaluation tick
	// (within Within of arming, when set).
	Eventually AssertKind = iota
	// Always fails on the first tick (after the After grace period)
	// where the condition does not hold — "stays-below" is Always with a
	// Below condition.
	Always
	// Converges passes if the condition starts holding within Within of
	// arming and then holds at every later tick — "converges-within".
	Converges
)

func (k AssertKind) String() string {
	switch k {
	case Eventually:
		return "eventually"
	case Always:
		return "always"
	case Converges:
		return "converges"
	}
	return fmt.Sprintf("assert(%d)", int(k))
}

// Assertion is one metric predicate a run must satisfy; violations turn
// into a typed *AssertionError from Scenario.Run (the Dfuntest model —
// distributed tests that fail like unit tests).
type Assertion struct {
	// Name labels the assertion in failure reports.
	Name string
	// Cond is the predicate.
	Cond Condition
	// Kind is the temporal semantics.
	Kind AssertKind
	// Within bounds Eventually/Converges (0 = the whole run).
	Within time.Duration
	// After is a grace period before Always starts checking.
	After time.Duration
}

// AssertionFailure is one violated assertion.
type AssertionFailure struct {
	Name   string
	Kind   AssertKind
	Detail string
}

func (f AssertionFailure) String() string {
	return fmt.Sprintf("%s (%s): %s", f.Name, f.Kind, f.Detail)
}

// AssertionError enumerates every assertion a run violated.
type AssertionError struct {
	Failures []AssertionFailure
}

func (e *AssertionError) Error() string {
	if len(e.Failures) == 0 {
		return "faults: assertions failed"
	}
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = f.String()
	}
	return fmt.Sprintf("faults: %d assertion(s) failed: %s", len(e.Failures), strings.Join(parts, "; "))
}

// Plan is a scenario's declarative fault schedule: timed events plus
// closed-loop rules. The zero Plan is empty and arms nothing.
type Plan struct {
	// Events are the timed injections, applied in At order.
	Events []Event
	// Rules are the closed-loop triggers.
	Rules []Rule
	// EvalEvery is the trigger/assertion evaluation cadence (default 5s).
	EvalEvery time.Duration
}

// Empty reports whether the plan injects nothing and watches nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 && len(p.Rules) == 0 }

// Actuators is how the engine touches the world. The scenario layer
// implements it over simnet (simulated testbeds) and over daemon
// kill/restart plus transport filters (live testbeds). Implementations
// report faults they cannot express (e.g. link degradation on a live
// testbed) as errors, which the engine surfaces through its log hook.
type Actuators interface {
	// Crash kills fraction (or count) of the alive population.
	Crash(fraction float64, count int) (killed int, err error)
	// Restart revives every crashed daemon.
	Restart() (revived int, err error)
	// Partition cuts fraction of the population away from the rest.
	Partition(fraction float64) error
	// Heal removes the partition.
	Heal() error
	// Degrade adds latency/loss to every link.
	Degrade(extraLatency time.Duration, loss float64) error
	// Restore removes the degradation.
	Restore() error
	// SetRPCFault installs a drop/delay filter on outgoing RPC requests.
	SetRPCFault(method string, drop float64, delay time.Duration) error
	// ClearRPCFault removes every RPC filter.
	ClearRPCFault() error
	// Grow deploys count additional instances.
	Grow(count int) error
}
