package faults

import (
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
)

// Engine executes a Plan: it schedules the timed events and, when the
// plan has rules or the caller registered assertions, runs a periodic
// evaluation tick over the metric View. The engine is created at session
// start but inert until Arm — arming is what pins the plan's time origin
// to "right after deployment", so a plan replays identically regardless
// of how long provisioning took.
//
// Everything the engine does rides the session's Runtime: in simulation
// events and ticks are kernel tasks in virtual time, so two runs of the
// same seeded plan are bit-identical; live they are goroutines.
type Engine struct {
	rt   core.Runtime
	view View
	act  Actuators
	plan Plan
	logf func(format string, args ...any)

	mu       sync.Mutex
	armed    bool
	stopped  bool
	start    time.Time
	rules    []*ruleState
	checks   []*assertState
	firings  []Firing
	cancels  []func()
	lastTick time.Time
}

// ruleState tracks one rule across ticks.
type ruleState struct {
	rule      Rule
	cond      condState
	heldSince time.Time
	holding   bool
	fires     int
	lastFire  time.Time
}

// assertState tracks one assertion across ticks.
type assertState struct {
	a         Assertion
	cond      condState
	everHeld  bool
	firstHeld time.Duration // offset of the first tick that ever held (-1 = never)
	heldAt    time.Duration // offset of the current holding streak's first tick
	holding   bool
	violated  bool // Always: condition failed after the grace period
	detail    string
	lastVal   float64
}

// condState carries the previous sample StatRate needs.
type condState struct {
	prev    float64
	prevAt  time.Time
	sampled bool
}

// NewEngine builds an engine over the session's runtime, metric view and
// actuators. view may be nil only when the plan has no rules and asserts
// is empty (enforced by the scenario layer); logf may be nil.
func NewEngine(rt core.Runtime, view View, act Actuators, plan Plan, asserts []Assertion, logf func(string, ...any)) *Engine {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e := &Engine{rt: rt, view: view, act: act, plan: plan, logf: logf}
	for _, r := range plan.Rules {
		e.rules = append(e.rules, &ruleState{rule: r})
	}
	for _, a := range asserts {
		e.checks = append(e.checks, &assertState{a: a, firstHeld: -1})
	}
	return e
}

// Arm starts the plan relative to now: timed events are scheduled and,
// when there is anything to evaluate, the tick loop begins. Idempotent.
func (e *Engine) Arm() {
	e.mu.Lock()
	if e.armed || e.stopped {
		e.mu.Unlock()
		return
	}
	e.armed = true
	e.start = e.rt.Now()
	e.lastTick = e.start
	e.mu.Unlock()

	for _, ev := range e.plan.Events {
		ev := ev
		// Timer callbacks fire on the dispatch path, where blocking
		// primitives are illegal in simulation; actuators may park
		// (restart dials, grow deploys), so application hops to a task.
		cancel := e.rt.After(ev.At, func() { e.rt.Go(func() { e.apply(ev) }) })
		e.mu.Lock()
		e.cancels = append(e.cancels, cancel)
		e.mu.Unlock()
	}
	if len(e.rules) > 0 || len(e.checks) > 0 {
		every := e.plan.EvalEvery
		if every <= 0 {
			every = 5 * time.Second
		}
		e.tickLoop(every)
	}
}

// tickLoop re-arms one evaluation timer at a time, stopping cleanly when
// the engine is stopped (the guarded re-arm pattern the controller's
// periodics use).
func (e *Engine) tickLoop(every time.Duration) {
	var arm func()
	arm = func() {
		e.mu.Lock()
		if e.stopped {
			e.mu.Unlock()
			return
		}
		cancel := e.rt.After(every, func() {
			// Hop to a task (see Arm): fired actions may block.
			e.rt.Go(func() {
				e.tick()
				arm()
			})
		})
		e.cancels = append(e.cancels, cancel)
		e.mu.Unlock()
	}
	arm()
}

// Stop cancels scheduled events and ticks. Finish implies it.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	cancels := e.cancels
	e.cancels = nil
	e.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Firings returns the rule activations so far, in firing order.
func (e *Engine) Firings() []Firing {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Firing(nil), e.firings...)
}

// eval reads one condition's statistic; holds reports the comparison.
func (e *Engine) eval(c Condition, cs *condState, now time.Time) (val float64, holds bool) {
	switch c.Stat {
	case StatTotal:
		val = float64(e.view.CounterTotal(c.Metric))
	case StatRate:
		cur := float64(e.view.CounterTotal(c.Metric))
		if cs.sampled {
			if dt := now.Sub(cs.prevAt).Seconds(); dt > 0 {
				val = (cur - cs.prev) / dt
			}
		}
		cs.prev, cs.prevAt, cs.sampled = cur, now, true
	case StatGauge:
		val = float64(e.view.GaugeSum(c.Metric))
	case StatMean:
		count, sum := e.view.HistStats(c.Metric)
		if count > 0 {
			val = float64(sum) / float64(count)
		}
	case StatP50:
		val = float64(e.view.HistQuantile(c.Metric, 50))
	case StatP90:
		val = float64(e.view.HistQuantile(c.Metric, 90))
	case StatP99:
		val = float64(e.view.HistQuantile(c.Metric, 99))
	case StatNodes:
		val = float64(e.view.Nodes())
	}
	if c.Op == Below {
		return val, val < c.Value
	}
	return val, val > c.Value
}

// tick evaluates every rule and assertion once. It runs as a runtime
// task; actions fire synchronously inside it (actuator calls may block —
// Grow deploys through the controller — which only delays later ticks,
// never drops them).
func (e *Engine) tick() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	now := e.rt.Now()
	e.lastTick = now
	type pendingAction struct {
		rule   string
		action Action
	}
	var fire []pendingAction
	for _, rs := range e.rules {
		val, holds := e.eval(rs.rule.When, &rs.cond, now)
		if !holds {
			rs.holding = false
			continue
		}
		if !rs.holding {
			rs.holding = true
			rs.heldSince = now
		}
		if now.Sub(rs.heldSince) < rs.rule.For {
			continue
		}
		max := rs.rule.MaxFires
		if max <= 0 {
			max = 1
		}
		if rs.fires >= max {
			continue
		}
		if rs.fires > 0 && rs.rule.Cooldown > 0 && now.Sub(rs.lastFire) < rs.rule.Cooldown {
			continue
		}
		rs.fires++
		rs.lastFire = now
		e.firings = append(e.firings, Firing{Rule: rs.rule.Name, At: now, Action: rs.rule.Do.String()})
		e.logf("faults: rule %q fired (%s, observed %g): %s", rs.rule.Name, rs.rule.When, val, rs.rule.Do)
		fire = append(fire, pendingAction{rule: rs.rule.Name, action: rs.rule.Do})
	}
	e.evalAsserts(now)
	e.mu.Unlock()

	for _, p := range fire {
		if err := e.doAction(p.action); err != nil {
			e.logf("faults: rule %q action %s: %v", p.rule, p.action, err)
		}
	}
}

// evalAsserts advances every assertion's state machine. Called under mu.
func (e *Engine) evalAsserts(now time.Time) {
	offset := now.Sub(e.start)
	for _, as := range e.checks {
		val, holds := e.eval(as.a.Cond, &as.cond, now)
		as.lastVal = val
		switch as.a.Kind {
		case Eventually, Converges:
			if holds {
				if !as.holding {
					as.holding = true
					as.heldAt = offset
				}
				if as.firstHeld < 0 {
					as.firstHeld = offset
				}
				as.everHeld = true
			} else {
				as.holding = false
			}
		case Always:
			if !holds && offset >= as.a.After && !as.violated {
				as.violated = true
				as.detail = fmt.Sprintf("violated at +%s (observed %g, want %s)", offset, val, as.a.Cond)
			}
		}
	}
}

// Finish runs one final evaluation, stops the engine, and returns the
// violated assertions as a typed error (nil when everything passed).
func (e *Engine) Finish() *AssertionError {
	e.mu.Lock()
	armed := e.armed
	e.mu.Unlock()
	if !armed {
		return nil
	}
	// A last evaluation so assertions observe the end state even if the
	// run window was not a multiple of the evaluation period.
	e.mu.Lock()
	if !e.stopped && (len(e.rules) > 0 || len(e.checks) > 0) {
		now := e.rt.Now()
		if now.After(e.lastTick) {
			e.lastTick = now
			e.evalAsserts(now)
		}
	}
	e.mu.Unlock()
	e.Stop()

	e.mu.Lock()
	defer e.mu.Unlock()
	var fails []AssertionFailure
	for _, as := range e.checks {
		if f, ok := as.verdict(); !ok {
			fails = append(fails, f)
		}
	}
	if len(fails) == 0 {
		return nil
	}
	return &AssertionError{Failures: fails}
}

// verdict resolves one assertion at the end of the run.
func (as *assertState) verdict() (AssertionFailure, bool) {
	a := as.a
	fail := func(detail string) (AssertionFailure, bool) {
		return AssertionFailure{Name: a.Name, Kind: a.Kind, Detail: detail}, false
	}
	switch a.Kind {
	case Eventually:
		if !as.everHeld {
			return fail(fmt.Sprintf("never held (%s, last observed %g)", a.Cond, as.lastVal))
		}
		if a.Within > 0 && as.firstHeld > a.Within {
			return fail(fmt.Sprintf("first held at +%s, after the %s deadline", as.firstHeld, a.Within))
		}
	case Always:
		if as.violated {
			return fail(as.detail)
		}
	case Converges:
		if !as.holding {
			return fail(fmt.Sprintf("did not hold at the end of the run (%s, last observed %g)", a.Cond, as.lastVal))
		}
		if a.Within > 0 && as.heldAt > a.Within {
			return fail(fmt.Sprintf("converged at +%s, after the %s deadline", as.heldAt, a.Within))
		}
	}
	return AssertionFailure{}, true
}

// apply executes one timed event through the actuators, logging the
// outcome either way (fault injection is experiment machinery: silent
// failure would invalidate results invisibly).
func (e *Engine) apply(ev Event) {
	if err := e.applyEvent(ev); err != nil {
		e.logf("faults: %s at +%s: %v", ev.Kind, ev.At, err)
		return
	}
	e.logf("faults: %s applied at +%s", ev.Kind, ev.At)
}

func (e *Engine) applyEvent(ev Event) error {
	switch ev.Kind {
	case Crash:
		_, err := e.act.Crash(ev.Fraction, ev.Count)
		return err
	case Restart:
		_, err := e.act.Restart()
		return err
	case Partition:
		return e.act.Partition(ev.Fraction)
	case Heal:
		return e.act.Heal()
	case Degrade:
		return e.act.Degrade(ev.ExtraLatency, ev.Loss)
	case Restore:
		return e.act.Restore()
	case RPCFault:
		return e.act.SetRPCFault(ev.Method, ev.Drop, ev.Delay)
	case RPCClear:
		return e.act.ClearRPCFault()
	}
	return fmt.Errorf("faults: unknown event kind %d", int(ev.Kind))
}

// doAction executes one fired rule's effect.
func (e *Engine) doAction(a Action) error {
	switch a.Kind {
	case ActKill:
		_, err := e.act.Crash(a.Fraction, a.Count)
		return err
	case ActHeal:
		if err := e.act.Heal(); err != nil {
			return err
		}
		return e.act.Restore()
	case ActGrow:
		return e.act.Grow(a.Count)
	case ActInject:
		if a.Event == nil {
			return fmt.Errorf("faults: inject action without an event")
		}
		return e.applyEvent(*a.Event)
	}
	return fmt.Errorf("faults: unknown action kind %d", int(a.Kind))
}
