package faults

import (
	"math/rand"
	"time"
)

// Backoff is a jittered exponential retry schedule: attempt n waits
// Base·Factorⁿ, capped at Max, with a Jitter fraction of the delay
// randomized away so synchronized retriers desynchronize (the classic
// thundering-herd fix for reconnect storms after a controller restart).
//
// The zero value is disabled (Enabled reports false): callers that gate
// behavior on a Backoff field add nothing to schedules when it is unset,
// which is what keeps the simulation goldens byte-identical.
type Backoff struct {
	// Base is the first delay. Zero disables the whole schedule.
	Base time.Duration
	// Max caps the grown delay (0 = uncapped).
	Max time.Duration
	// Factor is the per-attempt growth (values ≤ 1 mean the default, 2).
	Factor float64
	// Jitter in [0,1] is the fraction of each delay drawn uniformly at
	// random: delay·(1−Jitter) + U[0,1)·delay·Jitter. Zero is
	// deterministic.
	Jitter float64
}

// DefaultBackoff is the reconnect schedule used when a component enables
// backoff without tuning it: 200ms doubling to a 30s ceiling, half
// jittered.
func DefaultBackoff() Backoff {
	return Backoff{Base: 200 * time.Millisecond, Max: 30 * time.Second, Factor: 2, Jitter: 0.5}
}

// Enabled reports whether the schedule is active.
func (b Backoff) Enabled() bool { return b.Base > 0 }

// Delay returns the wait before retry number attempt (0-based). rng
// supplies the jitter draw and may be nil when Jitter is 0; a
// deterministic source yields a deterministic schedule.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if j := b.Jitter; j > 0 && rng != nil {
		if j > 1 {
			j = 1
		}
		d = d*(1-j) + rng.Float64()*d*j
	}
	return time.Duration(d)
}
