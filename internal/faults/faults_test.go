package faults

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// TestBackoffGrowthAndCap checks the deterministic schedule shape.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w {
			t.Errorf("attempt %d: delay = %s, want %s", i, got, w)
		}
	}
	if (Backoff{}).Enabled() {
		t.Error("zero Backoff reports enabled")
	}
}

// TestBackoffJitterBoundsAndDeterminism checks jitter stays in
// [d·(1−J), d) and that the same rng seed yields the same schedule.
func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5}
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		d1 := b.Delay(i, r1)
		d2 := b.Delay(i, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %s vs %s", i, d1, d2)
		}
		full := b.Delay(i, nil) // Jitter with nil rng is skipped
		if d1 < full/2 || d1 > full {
			t.Errorf("attempt %d: jittered %s outside [%s, %s]", i, d1, full/2, full)
		}
	}
}

// fakeView is a mutable metric view for engine tests.
type fakeView struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]int64
	nodes    int
}

func newFakeView() *fakeView {
	return &fakeView{counters: map[string]uint64{}, gauges: map[string]int64{}}
}

func (v *fakeView) set(name string, n uint64) {
	v.mu.Lock()
	v.counters[name] = n
	v.mu.Unlock()
}

func (v *fakeView) CounterTotal(name string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.counters[name]
}
func (v *fakeView) GaugeSum(name string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.gauges[name]
}
func (v *fakeView) HistStats(string) (uint64, int64)   { return 0, 0 }
func (v *fakeView) HistQuantile(string, float64) int64 { return 0 }
func (v *fakeView) Nodes() int                         { return v.nodes }

// fakeActuators records calls.
type fakeActuators struct {
	mu      sync.Mutex
	crashes int
	heals   int
	parts   int
	grows   int
	rpcSets int
}

func (a *fakeActuators) Crash(float64, int) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.crashes++
	return 1, nil
}
func (a *fakeActuators) Restart() (int, error) { return 0, nil }
func (a *fakeActuators) Partition(float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.parts++
	return nil
}
func (a *fakeActuators) Heal() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.heals++
	return nil
}
func (a *fakeActuators) Degrade(time.Duration, float64) error { return nil }
func (a *fakeActuators) Restore() error                       { return nil }
func (a *fakeActuators) SetRPCFault(string, float64, time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rpcSets++
	return nil
}
func (a *fakeActuators) ClearRPCFault() error { return nil }
func (a *fakeActuators) Grow(int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.grows++
	return nil
}

// TestEngineTimedEvents checks events apply at their offsets.
func TestEngineTimedEvents(t *testing.T) {
	k := sim.NewKernel()
	rt := core.NewSimRuntime(k, 1)
	act := &fakeActuators{}
	plan := Plan{Events: []Event{
		{At: 10 * time.Second, Kind: Partition, Fraction: 0.5},
		{At: 30 * time.Second, Kind: Heal},
	}}
	e := NewEngine(rt, newFakeView(), act, plan, nil, nil)
	e.Arm()
	k.RunFor(20 * time.Second)
	if act.parts != 1 || act.heals != 0 {
		t.Fatalf("after 20s: parts=%d heals=%d, want 1/0", act.parts, act.heals)
	}
	k.RunFor(20 * time.Second)
	if act.parts != 1 || act.heals != 1 {
		t.Fatalf("after 40s: parts=%d heals=%d, want 1/1", act.parts, act.heals)
	}
}

// TestEngineRuleFiresOnceAfterSustain checks the For window, the
// once-by-default fire budget, and the firing record.
func TestEngineRuleFiresOnceAfterSustain(t *testing.T) {
	k := sim.NewKernel()
	rt := core.NewSimRuntime(k, 1)
	view := newFakeView()
	act := &fakeActuators{}
	plan := Plan{
		EvalEvery: time.Second,
		Rules: []Rule{{
			Name: "heal-on-failures",
			When: Condition{Metric: "app.failed", Stat: StatTotal, Op: Above, Value: 10},
			For:  3 * time.Second,
			Do:   Action{Kind: ActHeal},
		}},
	}
	e := NewEngine(rt, view, act, plan, nil, nil)
	e.Arm()
	k.RunFor(10 * time.Second)
	if act.heals != 0 {
		t.Fatalf("rule fired with condition never holding")
	}
	view.set("app.failed", 50)
	k.RunFor(2 * time.Second)
	if act.heals != 0 {
		t.Fatalf("rule fired before the For window elapsed")
	}
	k.RunFor(10 * time.Second)
	if act.heals != 1 {
		t.Fatalf("heals = %d after sustained condition, want 1", act.heals)
	}
	k.RunFor(30 * time.Second)
	if act.heals != 1 {
		t.Fatalf("rule fired %d times, want once (MaxFires default)", act.heals)
	}
	fs := e.Firings()
	if len(fs) != 1 || fs[0].Rule != "heal-on-failures" {
		t.Fatalf("firings = %+v", fs)
	}
}

// TestEngineAssertions covers the three temporal kinds.
func TestEngineAssertions(t *testing.T) {
	k := sim.NewKernel()
	rt := core.NewSimRuntime(k, 1)
	view := newFakeView()
	asserts := []Assertion{
		{Name: "makes-progress", Kind: Eventually,
			Cond: Condition{Metric: "app.done", Stat: StatTotal, Op: Above, Value: 5}},
		{Name: "stays-calm", Kind: Always,
			Cond: Condition{Metric: "app.errors", Stat: StatTotal, Op: Below, Value: 3}},
		{Name: "reconverges", Kind: Converges, Within: time.Minute,
			Cond: Condition{Metric: "app.failed_rate", Stat: StatGauge, Op: Below, Value: 1}},
		{Name: "never-happens", Kind: Eventually,
			Cond: Condition{Metric: "app.done", Stat: StatTotal, Op: Above, Value: 1e9}},
	}
	e := NewEngine(rt, view, &fakeActuators{}, Plan{EvalEvery: time.Second}, asserts, nil)
	e.Arm()
	k.RunFor(5 * time.Second)
	view.set("app.done", 10)
	view.set("app.errors", 5) // violates stays-calm from here on
	k.RunFor(10 * time.Second)
	aerr := e.Finish()
	if aerr == nil {
		t.Fatal("Finish returned nil with violated assertions")
	}
	got := map[string]bool{}
	for _, f := range aerr.Failures {
		got[f.Name] = true
	}
	if !got["stays-calm"] || !got["never-happens"] {
		t.Errorf("missing expected failures in %v", aerr)
	}
	if got["makes-progress"] || got["reconverges"] {
		t.Errorf("passing assertions reported failed: %v", aerr)
	}
}

// TestEngineRateStat checks StatRate sees per-second counter growth.
func TestEngineRateStat(t *testing.T) {
	k := sim.NewKernel()
	rt := core.NewSimRuntime(k, 1)
	view := newFakeView()
	act := &fakeActuators{}
	plan := Plan{
		EvalEvery: time.Second,
		Rules: []Rule{{
			Name: "rate-kill",
			When: Condition{Metric: "app.reqs", Stat: StatRate, Op: Above, Value: 5},
			Do:   Action{Kind: ActKill, Fraction: 0.1},
		}},
	}
	e := NewEngine(rt, view, act, plan, nil, nil)
	e.Arm()
	// Grow the counter 2/s for a while: under the threshold.
	for i := 0; i < 5; i++ {
		view.set("app.reqs", uint64(2*i))
		k.RunFor(time.Second)
	}
	if act.crashes != 0 {
		t.Fatalf("rule fired at 2/s with a 5/s threshold")
	}
	// Jump 100 in one second: above it.
	view.set("app.reqs", 200)
	k.RunFor(2 * time.Second)
	if act.crashes != 1 {
		t.Fatalf("crashes = %d after rate spike, want 1", act.crashes)
	}
}

// TestRPCRules checks matching, composition and Clear.
func TestRPCRules(t *testing.T) {
	r := NewRPCRules(3)
	to := transport.Addr{Host: "n1", Port: 9000}
	if drop, delay := r.Check(to, "get"); drop || delay != 0 {
		t.Fatalf("empty rules produced a verdict: %v %s", drop, delay)
	}
	r.Add(RPCRule{Method: "get", Delay: 5 * time.Millisecond})
	r.Add(RPCRule{Delay: time.Millisecond}) // matches everything
	if _, delay := r.Check(to, "get"); delay != 6*time.Millisecond {
		t.Fatalf("delay = %s, want 6ms", delay)
	}
	if _, delay := r.Check(to, "put"); delay != time.Millisecond {
		t.Fatalf("delay = %s, want 1ms for non-matching method", delay)
	}
	r.Add(RPCRule{Method: "put", Drop: 1})
	if drop, _ := r.Check(to, "put"); !drop {
		t.Fatal("certain drop not applied")
	}
	r.Clear()
	if r.Active() {
		t.Fatal("Active after Clear")
	}
}
