package faults

import (
	"math/rand"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// RPCRule matches outgoing RPC requests by method name and either drops
// them (the call fails by timeout, like a lost request) or delays them.
type RPCRule struct {
	Method string // "" matches every method
	Drop   float64
	Delay  time.Duration
}

// RPCRules is the message-plane fault filter shared by every instance a
// scenario deploys: the live counterpart of simnet's link hooks, and an
// extra knob in simulation. A scenario wires each instance's RPC client
// to Check; with no rules installed Check is a mutex acquire and a nil
// slice scan, and clients without a filter never call it at all.
type RPCRules struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []RPCRule
}

// NewRPCRules returns an empty filter; seed fixes the drop sampling.
func NewRPCRules(seed int64) *RPCRules {
	return &RPCRules{rng: rand.New(rand.NewSource(seed))}
}

// Add installs one rule alongside the existing ones.
func (r *RPCRules) Add(rule RPCRule) {
	r.mu.Lock()
	r.rules = append(r.rules, rule)
	r.mu.Unlock()
}

// Clear removes every rule.
func (r *RPCRules) Clear() {
	r.mu.Lock()
	r.rules = nil
	r.mu.Unlock()
}

// Active reports whether any rule is installed.
func (r *RPCRules) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rules) > 0
}

// Check is the per-call verdict: whether to drop the request and how much
// extra latency to add before sending it. Matching rules compose — any
// drop verdict wins, delays accumulate.
func (r *RPCRules) Check(to transport.Addr, method string) (drop bool, delay time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rule := range r.rules {
		if rule.Method != "" && rule.Method != method {
			continue
		}
		if rule.Drop > 0 && r.rng.Float64() < rule.Drop {
			drop = true
		}
		delay += rule.Delay
	}
	return drop, delay
}
