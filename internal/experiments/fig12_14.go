package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/protocols/trees"
	"github.com/splaykit/splay/internal/protocols/webcache"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/transport"
	"github.com/splaykit/splay/internal/workload"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig14", fig14)
}

// fig12 reproduces Fig. 12: deployment time on PlanetLab as a function of
// the number of nodes requested and the superset of daemons probed. The
// controller registers with superset×n daemons, deploys on the n most
// responsive, then completes the LIST/START exchange with the selected
// set; a larger superset avoids waiting on stragglers (§5.6; the default
// superset is 125%).
func fig12(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig12")
	const daemons = 450
	trials := opt.n(30, 5)

	plCfg := topology.DefaultPlanetLab(daemons)
	plCfg.Seed = opt.Seed
	pl := topology.NewPlanetLab(plCfg)

	fmt.Fprintf(w, "# Fig. 12 — deployment time vs requested nodes (450 daemons)\n")
	fmt.Fprintf(w, "%-10s", "requested")
	supersets := []float64{1.10, 1.30, 1.50, 1.70, 2.00}
	for _, s := range supersets {
		fmt.Fprintf(w, " %8.0f%%", s*100)
	}
	fmt.Fprintln(w)

	for _, req := range []int{50, 100, 150, 200, 250, 300, 350, 400} {
		fmt.Fprintf(w, "%-10d", req)
		for _, s := range supersets {
			probed := int(float64(req) * s)
			if probed > daemons {
				probed = daemons
			}
			var total time.Duration
			for trial := 0; trial < trials; trial++ {
				// REGISTER round with every probed daemon (job payload).
				regs := make([]time.Duration, probed)
				for i := 0; i < probed; i++ {
					regs[i] = pl.ProbeDelay(i, 4<<10)
				}
				sort.Slice(regs, func(a, b int) bool { return regs[a] < regs[b] })
				tRegister := regs[req-1] // n-th fastest answers
				// LIST+START exchange with the selected (fast) daemons.
				var tStart time.Duration
				for i := 0; i < req; i++ {
					if d := pl.ProbeDelay(i, 1<<10) / 4; d > tStart {
						tStart = d
					}
				}
				total += tRegister + tStart
			}
			avg := total / time.Duration(trials)
			fmt.Fprintf(w, " %9s", avg.Round(100*time.Millisecond))
			res.Metrics[fmt.Sprintf("t_%d_%d", req, int(s*100))] = avg.Seconds()
		}
		fmt.Fprintln(w)
	}
	return res, nil
}

// fig13 reproduces Fig. 13: 24 MB disseminated to 63 nodes over two
// parallel binary trees on 1 Mbps links, SPLAY's parallel forwarding
// versus CRCP's sequential sends, at 16/128/512 KB block sizes.
func fig13(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig13")
	nodes := opt.n(64, 16)
	fileSize := opt.n(24<<20, 2<<20)

	fmt.Fprintf(w, "# Fig. 13 — tree dissemination, %d nodes, %s file, 1 Mbps\n",
		nodes-1, fmtBytes(int64(fileSize)))
	for _, policy := range []struct {
		name       string
		sequential bool
	}{{"splay", false}, {"crcp", true}} {
		for _, bs := range []int{16 << 10, 128 << 10, 512 << 10} {
			k := sim.NewKernel()
			nw := simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond, Bps: 1e6 / 8}, nodes, opt.Seed)
			rt := core.NewSimRuntime(k, opt.Seed)
			var ctxs []*core.AppContext
			for i := 0; i < nodes; i++ {
				addr := transport.Addr{Host: simnet.HostName(i), Port: 7000}
				ctxs = append(ctxs, core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil))
			}
			cfg := trees.Config{
				Nodes: nodes, Fanout: 2, Trees: 2,
				FileSize: fileSize, BlockSize: bs,
				Sequential: policy.sequential, Port: 7000,
			}
			var sess *trees.Session
			var serr error
			k.Go(func() {
				sess, serr = trees.NewSession(cfg, ctxs)
				if serr == nil {
					serr = sess.Start()
				}
			})
			k.RunFor(2 * time.Hour)
			if serr != nil {
				return nil, serr
			}
			var comps stats.Durations
			for i := 1; i < nodes; i++ {
				if !sess.Completions[i].IsZero() {
					comps = append(comps, sess.Completions[i].Sub(sim.Epoch))
				}
			}
			sortDur(comps)
			label := fmt.Sprintf("%s-%dKB", policy.name, bs>>10)
			if len(comps) == 0 {
				fmt.Fprintf(w, "%-16s no completions\n", label)
				continue
			}
			fmt.Fprintf(w, "%-16s completed=%d first=%s median=%s last=%s\n",
				label, len(comps), r(comps[0]),
				r(comps[len(comps)/2]), r(comps[len(comps)-1]))
			res.Metrics[label+"_completed"] = float64(len(comps))
			res.Metrics[label+"_last_s"] = comps[len(comps)-1].Seconds()
			res.Metrics[label+"_median_s"] = comps[len(comps)/2].Seconds()
		}
	}
	return res, nil
}

func sortDur(d stats.Durations) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

// fig14 reproduces Fig. 14: the cooperative web cache's request delays
// and hit ratio under a continuous 100 req/s stream. The paper runs for
// days; virtual time is compressed to a window long enough for the cache
// to reach steady state, with the same per-bucket reporting.
func fig14(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig14")
	nodes := opt.n(100, 16)
	duration := time.Duration(float64(2*time.Hour) * opt.Scale)
	if duration < 20*time.Minute {
		duration = 20 * time.Minute
	}

	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond, Bps: 12.5e6}, nodes, opt.Seed)
	rt := core.NewSimRuntime(k, opt.Seed)
	var pnodes []*pastry.Node
	var caches []*webcache.Cache
	for i := 0; i < nodes; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
		p := pastry.New(ctx, pastry.DefaultConfig())
		pnodes = append(pnodes, p)
		caches = append(caches, webcache.New(ctx, p, webcache.DefaultConfig()))
	}
	var startErr error
	k.Go(func() {
		for i := range pnodes {
			if err := pnodes[i].Start(); err != nil {
				startErr = err
				return
			}
			if err := caches[i].Start(); err != nil {
				startErr = err
				return
			}
		}
	})
	k.Run()
	if startErr != nil {
		return nil, startErr
	}
	if err := pastry.BuildNetwork(pnodes, pastry.BuildOptions{Seed: opt.Seed}); err != nil {
		return nil, err
	}

	wcfg := workload.DefaultWeb()
	wcfg.Seed = opt.Seed
	gen, err := workload.NewWebRequests(wcfg)
	if err != nil {
		return nil, err
	}
	bucket := 10 * time.Minute
	nBuckets := int(duration/bucket) + 1
	hit := make([]int, nBuckets)
	miss := make([]int, nBuckets)
	delays := make([]stats.Durations, nBuckets)

	k.Go(func() {
		prev := time.Duration(0)
		i := 0
		for {
			at, url := gen.Next()
			if at > duration {
				return
			}
			k.Sleep(at - prev)
			prev = at
			cache := caches[i%len(caches)]
			i++
			k.Go(func() {
				start := k.Since()
				resGet, err := cache.Get(url)
				if err != nil {
					return
				}
				b := int(start / bucket)
				if b >= nBuckets {
					b = nBuckets - 1
				}
				if resGet.Hit {
					hit[b]++
				} else {
					miss[b]++
				}
				delays[b] = append(delays[b], resGet.Delay)
			})
		}
	})
	k.RunFor(duration + time.Minute)

	fmt.Fprintf(w, "# Fig. 14 — cooperative web cache, %d nodes, 100 req/s (window %s)\n", nodes, duration)
	fmt.Fprintf(w, "%-10s %8s %10s %10s %10s\n", "t", "hit%", "p50", "p75", "p95")
	var steadyHits, steadyTotal int
	for b := 0; b < nBuckets; b++ {
		tot := hit[b] + miss[b]
		if tot == 0 {
			continue
		}
		hr := float64(hit[b]) / float64(tot) * 100
		sorted := delays[b].Sorted() // one sort serves all three percentiles
		fmt.Fprintf(w, "%-10s %7.1f%% %10s %10s %10s\n",
			time.Duration(b)*bucket, hr,
			r(sorted.Percentile(50)), r(sorted.Percentile(75)), r(sorted.Percentile(95)))
		if b >= 1 { // skip warm-up
			steadyHits += hit[b]
			steadyTotal += tot
		}
	}
	if steadyTotal > 0 {
		ratio := float64(steadyHits) / float64(steadyTotal) * 100
		fmt.Fprintf(w, "steady-state hit ratio: %.1f%% (paper: 77.6%%)\n", ratio)
		res.Metrics["steady_hit_pct"] = ratio
	}
	var all stats.Durations
	for b := 1; b < nBuckets; b++ {
		all = append(all, delays[b]...)
	}
	allSorted := all.Sorted()
	res.Metrics["p75_ms"] = float64(allSorted.Percentile(75).Milliseconds())
	res.Metrics["p95_ms"] = float64(allSorted.Percentile(95).Milliseconds())
	return res, nil
}
