// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a named, parameterized function that
// builds the required testbed model, runs the protocol under test in the
// simulation kernel, and prints the same rows/series the paper reports.
// The Scale option shrinks populations and workloads proportionally for
// quick runs and benchmarks; Scale 1 is the paper's setup.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-versus-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/splaykit/splay/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// Scale in (0,1] multiplies node populations, lookup counts and run
	// lengths. 1 reproduces the paper's sizes.
	Scale float64
	// Seed fixes all randomness.
	Seed int64
	// Out receives the experiment's rows; nil discards them.
	Out io.Writer
	// Workers sets the OS threads a sharded-kernel experiment (lookup100k)
	// may use; 0 or 1 runs single-threaded. Results are a pure function of
	// Scale and Seed — Workers changes wall-clock time only, never a metric
	// or an output byte. Single-kernel experiments ignore it.
	Workers int
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// n scales an integer quantity with a floor of min.
func (o Options) n(full, min int) int {
	v := int(float64(full) * o.Scale)
	if v < min {
		return min
	}
	return v
}

// Result carries an experiment's headline numbers so tests and
// EXPERIMENTS.md generation can assert the paper's shape.
type Result struct {
	ID      string
	Metrics map[string]float64
}

func newResult(id string) *Result {
	return &Result{ID: id, Metrics: make(map[string]float64)}
}

// Func runs one experiment.
type Func func(opt Options) (*Result, error)

// registry maps experiment ids to implementations.
var registry = map[string]Func{}

func register(id string, f Func) { registry[id] = f }

// Run executes the named experiment.
func Run(id string, opt Options) (*Result, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if opt.Scale <= 0 || opt.Scale > 1 {
		opt.Scale = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 2009
	}
	return f(opt)
}

// IDs lists registered experiments in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// printCDF emits a delay CDF as rows of "x cum%".
func printCDF(w io.Writer, label string, samples []time.Duration, points int) {
	if len(samples) == 0 {
		fmt.Fprintf(w, "%s: no samples\n", label)
		return
	}
	sorted := stats.Durations(samples).Sorted()
	fmt.Fprintf(w, "# %s — CDF over %d samples\n", label, len(sorted))
	for i := 1; i <= points; i++ {
		idx := len(sorted)*i/points - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Fprintf(w, "%-24s %8.1f%%  ≤ %v\n", label, float64(i)/float64(points)*100,
			sorted[idx].Round(time.Millisecond))
	}
}

// pctiles returns the 5/25/50/75/90th floor-index quantiles of samples,
// delegating to the stats package's single implementation of the
// convention (one sort, five lookups).
func pctiles(samples []time.Duration) [5]time.Duration {
	var out [5]time.Duration
	if len(samples) == 0 {
		return out
	}
	sorted := stats.Durations(samples).Sorted()
	for i, q := range [...]float64{0.05, 0.25, 0.50, 0.75, 0.90} {
		out[i] = sorted.Quantile(q)
	}
	return out
}
