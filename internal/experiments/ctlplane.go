package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/transport"
)

func init() {
	register("ctlplane", ctlplane)
}

// ctlplane measures the control plane itself, in the style of the
// paper's §5.2–5.3: a real controller and real daemons (not an analytic
// model like fig12) run on a PlanetLab-like simulated network, and a job
// is deployed onto 60% of populations growing from 100 to 5,000 daemons
// with the default 125% superset. Reported per population: percentiles
// of the per-instance deployment delay (REGISTER superset probing →
// LIST → START, measured from Submit to each instance's first
// instruction), the submitter-observed deployment time, and the
// controller's frame load per deployed node.
func ctlplane(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("ctlplane")
	fmt.Fprintf(w, "# ctlplane — deployment time vs daemon population (PlanetLab model, superset 125%%)\n")
	fmt.Fprintf(w, "%-8s %-6s %9s %9s %9s %9s %9s %10s %12s\n",
		"daemons", "nodes", "p5", "p25", "p50", "p75", "p90", "submit", "frames/node")
	for _, ps := range []struct{ full, min int }{
		{100, 10}, {500, 25}, {1000, 50}, {2000, 100}, {5000, 250},
	} {
		n := opt.n(ps.full, ps.min)
		nodes := n * 3 / 5
		run, err := runCtlplane(n, nodes, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("ctlplane %d daemons: %w", n, err)
		}
		p := pctiles(run.delays)
		framesPerNode := float64(run.frames) / float64(nodes)
		fmt.Fprintf(w, "%-8d %-6d %9s %9s %9s %9s %9s %10s %12.1f\n",
			n, nodes, r(p[0]), r(p[1]), r(p[2]), r(p[3]), r(p[4]),
			r(run.submit), framesPerNode)
		res.Metrics[fmt.Sprintf("p50_s_%d", ps.full)] = p[2].Seconds()
		res.Metrics[fmt.Sprintf("p90_s_%d", ps.full)] = p[4].Seconds()
		res.Metrics[fmt.Sprintf("submit_s_%d", ps.full)] = run.submit.Seconds()
		res.Metrics[fmt.Sprintf("frames_per_node_%d", ps.full)] = framesPerNode
	}
	return res, nil
}

// ctlplaneRun is one population's measurement.
type ctlplaneRun struct {
	delays []time.Duration // per-instance Submit→start delay
	submit time.Duration   // submitter-observed deployment time
	frames int64           // controller frames written during deployment
}

// runCtlplane deploys one job through a live controller onto n simulated
// daemons and reports the §5.2 deployment-time measures.
func runCtlplane(n, nodes int, seed int64) (*ctlplaneRun, error) {
	k := sim.NewKernel()
	plCfg := topology.DefaultPlanetLab(n + 1)
	plCfg.Seed = seed
	pl := topology.NewPlanetLab(plCfg)
	nw := simnet.New(k, pl, n+1, seed)
	nw.SetProcDelay(pl.ProcDelay)
	rt := core.NewSimRuntime(k, seed)

	// The deployed app records when its first instruction runs; the delay
	// from Submit is the §5.2 per-node deployment time.
	var submitAt time.Time
	run := &ctlplaneRun{}
	reg := core.NewRegistry()
	reg.Register("ctlapp", func(json.RawMessage) (core.App, error) {
		return core.AppFunc(func(ctx *core.AppContext) error {
			run.delays = append(run.delays, ctx.Now().Sub(submitAt))
			return nil
		}), nil
	})

	cfg := controller.DefaultConfig()
	// The PlanetLab slowness tail reaches ten seconds per probe; give the
	// superset machinery headroom at 5,000 daemons.
	cfg.RegisterTimeout = 60 * time.Second
	ctl := controller.New(rt, nw.Node(0), cfg)
	var startErr error
	k.Go(func() { startErr = ctl.Start() })
	ctlAddr := transport.Addr{Host: simnet.HostName(0), Port: cfg.Port}
	for i := 1; i <= n; i++ {
		d := daemon.New(rt, nw.Node(i), reg, daemon.DefaultConfig(simnet.HostName(i)), nil)
		k.GoAfter(time.Duration(i)*2*time.Millisecond, func() {
			d.Connect(ctlAddr) //nolint:errcheck
		})
	}
	// Connect window plus one full ping rotation, so selection has
	// measured responsiveness for every daemon.
	k.RunFor(45 * time.Second)
	if startErr != nil {
		return nil, startErr
	}
	if got := ctl.Daemons(); got != n {
		return nil, fmt.Errorf("only %d/%d daemons connected", got, n)
	}

	framesBefore := ctl.FramesSent()
	var job *controller.JobStatus
	var subErr error
	done := false
	k.Go(func() {
		submitAt = rt.Now()
		job, subErr = ctl.Submit(controller.JobSpec{App: "ctlapp", Nodes: nodes})
		// Snapshot the frame counter at completion so steady-state ping
		// traffic after the deployment does not pollute the load figure.
		run.frames = ctl.FramesSent() - framesBefore
		done = true
	})
	for i := 0; i < 30 && !done; i++ {
		k.RunFor(10 * time.Second)
	}
	if !done {
		return nil, fmt.Errorf("deployment did not finish within the run window")
	}
	if subErr != nil {
		return nil, subErr
	}
	if job.State != controller.JobRunning {
		return nil, fmt.Errorf("job did not reach running")
	}
	if len(run.delays) != nodes {
		return nil, fmt.Errorf("%d instances started, want %d", len(run.delays), nodes)
	}
	run.submit = job.StartedAt.Sub(submitAt)
	return run, nil
}
