package experiments

import (
	"context"
	"fmt"
	"time"

	splay "github.com/splaykit/splay"
)

func init() {
	register("ctlplane", ctlplane)
}

// ctlplane measures the control plane itself, in the style of the
// paper's §5.2–5.3: a real controller and real daemons (not an analytic
// model like fig12) run on a PlanetLab-like simulated network, and a job
// is deployed onto 60% of populations growing from 100 to 5,000 daemons
// with the default 125% superset. Reported per population: percentiles
// of the per-instance deployment delay (REGISTER superset probing →
// LIST → START, measured from Submit to each instance's first
// instruction), the submitter-observed deployment time, and the
// controller's frame load per deployed node.
func ctlplane(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("ctlplane")
	fmt.Fprintf(w, "# ctlplane — deployment time vs daemon population (PlanetLab model, superset 125%%)\n")
	fmt.Fprintf(w, "%-8s %-6s %9s %9s %9s %9s %9s %10s %12s\n",
		"daemons", "nodes", "p5", "p25", "p50", "p75", "p90", "submit", "frames/node")
	for _, ps := range []struct{ full, min int }{
		{100, 10}, {500, 25}, {1000, 50}, {2000, 100}, {5000, 250},
	} {
		n := opt.n(ps.full, ps.min)
		nodes := n * 3 / 5
		run, err := runCtlplane(n, nodes, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("ctlplane %d daemons: %w", n, err)
		}
		p := pctiles(run.delays)
		framesPerNode := float64(run.frames) / float64(nodes)
		fmt.Fprintf(w, "%-8d %-6d %9s %9s %9s %9s %9s %10s %12.1f\n",
			n, nodes, r(p[0]), r(p[1]), r(p[2]), r(p[3]), r(p[4]),
			r(run.submit), framesPerNode)
		res.Metrics[fmt.Sprintf("p50_s_%d", ps.full)] = p[2].Seconds()
		res.Metrics[fmt.Sprintf("p90_s_%d", ps.full)] = p[4].Seconds()
		res.Metrics[fmt.Sprintf("submit_s_%d", ps.full)] = run.submit.Seconds()
		res.Metrics[fmt.Sprintf("frames_per_node_%d", ps.full)] = framesPerNode
	}
	return res, nil
}

// ctlplaneRun is one population's measurement.
type ctlplaneRun struct {
	delays []time.Duration // per-instance Submit→start delay
	submit time.Duration   // submitter-observed deployment time
	frames int64           // controller frames written during deployment
}

// runCtlplane deploys one job through the scenario SDK onto n simulated
// daemons and reports the §5.2 deployment-time measures. The deployed
// app records when its first instruction runs; the delay from Submit is
// the per-node deployment time.
func runCtlplane(n, nodes int, seed int64) (*ctlplaneRun, error) {
	run := &ctlplaneRun{}
	var dep *splay.Deployment // set before any instance runs
	sc := splay.Scenario{
		Seed:    seed,
		Testbed: splay.PlanetLab(n),
		// The PlanetLab slowness tail reaches ten seconds per probe; give
		// the superset machinery headroom at 5,000 daemons.
		RegisterTimeout: 60 * time.Second,
		Apps: []splay.AppSpec{{
			Name:  "ctlapp",
			Nodes: nodes,
			App: splay.AppFunc(func(env *splay.Env) error {
				run.delays = append(run.delays, env.Now().Sub(dep.SubmittedAt()))
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		return nil, err
	}
	defer sess.Stop()

	dep = sess.Deploy(sc.Apps[0])
	job, err := dep.Wait()
	if err != nil {
		return nil, err
	}
	if job.State != splay.JobRunning {
		return nil, fmt.Errorf("job did not reach running")
	}
	if len(run.delays) != nodes {
		return nil, fmt.Errorf("%d instances started, want %d", len(run.delays), nodes)
	}
	run.frames = dep.Frames()
	run.submit = job.StartedAt.Sub(dep.SubmittedAt())
	return run, nil
}
