package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/hostmodel"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/transport"
)

func init() {
	register("fig7a", fig7a)
	register("fig7b", fig7b)
	register("fig7c", fig7c)
	register("fig8", fig8)
}

// clusterModel is the §5.3 experimental cluster: 11 machines on a
// switched gigabit network.
func clusterModel() simnet.LinkModel {
	return simnet.Symmetric{RTT: time.Millisecond, Bps: 125e6}
}

// pastryRun measures lookup delays over a converged Pastry network hosted
// on a modeled physical cluster.
func pastryRun(n int, kind hostmodel.Kind, physHosts, lookups int, seed int64) (stats.Durations, error) {
	k := sim.NewKernel()
	nw := simnet.New(k, clusterModel(), n, seed)
	cluster := hostmodel.NewCluster(hostmodel.DefaultConfig(physHosts))
	cluster.AssignInstances(n, kind)
	nw.SetProcDelay(cluster.Hook(k.Now))
	rt := core.NewSimRuntime(k, seed)
	rng := rand.New(rand.NewSource(seed))

	nodes := make([]*pastry.Node, 0, n)
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr, Position: i + 1}, nil)
		cfg := pastry.DefaultConfig()
		id := pastry.ID(rng.Uint64())
		cfg.ID = &id
		nodes = append(nodes, pastry.New(ctx, cfg))
	}
	var startErr error
	k.Go(func() {
		for _, node := range nodes {
			if err := node.Start(); err != nil {
				startErr = err
				return
			}
		}
	})
	k.Run()
	if startErr != nil {
		return nil, startErr
	}
	if err := pastry.BuildNetwork(nodes, pastry.BuildOptions{Seed: seed}); err != nil {
		return nil, err
	}

	var delays stats.Durations
	perNode := lookups/n + 1
	for i := range nodes {
		node := nodes[i]
		k.GoAfter(time.Duration(rng.Intn(60000))*time.Millisecond, func() {
			lrng := rand.New(rand.NewSource(seed + int64(node.Self().ID)))
			for j := 0; j < perNode; j++ {
				res, err := node.Route(pastry.ID(lrng.Uint64()))
				if err != nil {
					continue
				}
				delays = append(delays, res.RTT)
			}
		})
	}
	k.Run()
	return delays, nil
}

// fig7a reproduces Fig. 7(a): delay CDFs for FreePastry versus Pastry for
// SPLAY at 980 nodes on the 11-machine cluster.
func fig7a(opt Options) (*Result, error) {
	w := opt.out()
	n := opt.n(980, 100)
	lookups := opt.n(4000, 400)
	fp, err := pastryRun(n, hostmodel.JVM, 11, lookups, opt.Seed)
	if err != nil {
		return nil, err
	}
	sp, err := pastryRun(n, hostmodel.Splay, 11, lookups, opt.Seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "# Fig. 7(a) — Pastry delay CDF, %d nodes on 11 hosts\n", n)
	printCDF(w, "freepastry", fp, 10)
	printCDF(w, "splay-pastry", sp, 10)

	res := newResult("fig7a")
	res.Metrics["freepastry_median_ms"] = float64(fp.Percentile(50).Milliseconds())
	res.Metrics["splay_median_ms"] = float64(sp.Percentile(50).Milliseconds())
	return res, nil
}

// fig7b reproduces Fig. 7(b): FreePastry delay percentiles as the node
// count grows toward the 1,980-node swap wall.
func fig7b(opt Options) (*Result, error) {
	return pastryScaling(opt, "fig7b", hostmodel.JVM,
		[]int{220, 550, 1100, 1430, 1650, 1760, 1870, 1980})
}

// fig7c reproduces Fig. 7(c): SPLAY Pastry delay percentiles up to 5,500
// nodes (500 per host).
func fig7c(opt Options) (*Result, error) {
	return pastryScaling(opt, "fig7c", hostmodel.Splay,
		[]int{550, 1100, 2200, 3300, 4400, 5500})
}

func pastryScaling(opt Options, id string, kind hostmodel.Kind, sweep []int) (*Result, error) {
	w := opt.out()
	res := newResult(id)
	fmt.Fprintf(w, "# Fig. 7 sweep (%s) — delay percentiles vs population\n", kind)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %10s\n", "nodes", "p5", "p25", "p50", "p75", "p90")
	for _, full := range sweep {
		n := opt.n(full, 60)
		delays, err := pastryRun(n, kind, 11, opt.n(2000, 300), opt.Seed)
		if err != nil {
			return nil, err
		}
		p := pctiles(delays)
		fmt.Fprintf(w, "%-8d %10s %10s %10s %10s %10s\n", n,
			r(p[0]), r(p[1]), r(p[2]), r(p[3]), r(p[4]))
		res.Metrics[fmt.Sprintf("p50_ms_%d", full)] = float64(p[2].Milliseconds())
		res.Metrics[fmt.Sprintf("p90_ms_%d", full)] = float64(p[4].Milliseconds())
	}
	return res, nil
}

func r(d time.Duration) string { return d.Round(time.Millisecond).String() }

// fig8 reproduces Fig. 8: memory per instance and host load as Pastry
// instances accumulate on a single machine, with the swap onset at 1,263
// instances. (The companion benchmark BenchmarkFig8Footprint measures the
// real Go heap per instance.)
func fig8(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig8")
	cfg := hostmodel.DefaultConfig(1)
	fmt.Fprintf(w, "# Fig. 8 — one host filling with SPLAY Pastry instances\n")
	fmt.Fprintf(w, "%-10s %14s %10s %8s\n", "instances", "mem/instance", "load", "swap")
	onset := 0
	for n := 100; n <= 1400; n += 100 {
		cluster := hostmodel.NewCluster(cfg)
		cluster.AssignInstances(n, hostmodel.Splay)
		// One request per instance per minute (the paper's workload),
		// exercised through the processing model for one virtual minute.
		now := sim.Epoch
		for i := 0; i < n; i++ {
			at := now.Add(time.Duration(i) * time.Minute / time.Duration(n))
			cluster.ProcDelay(at, i, 1024)
		}
		cluster.ProcDelay(now.Add(time.Minute+time.Second), 0, 1024) // close the window
		swapping := cluster.Swapping(0)
		if swapping && onset == 0 {
			onset = n
		}
		fmt.Fprintf(w, "%-10d %14s %10.3f %8v\n", n,
			fmtBytes(cluster.MemPerInstance(0)), cluster.Load(0), swapping)
	}
	analytic := hostmodel.NewCluster(cfg).SwapOnset(hostmodel.Splay)
	fmt.Fprintf(w, "swap onset: analytic %d instances (paper: 1,263)\n", analytic)
	res.Metrics["swap_onset"] = float64(analytic)
	res.Metrics["first_swapping_sweep"] = float64(onset)
	per := hostmodel.NewCluster(cfg)
	per.AssignInstances(1000, hostmodel.Splay)
	res.Metrics["mem_per_instance_mb"] = float64(per.MemPerInstance(0)) / (1 << 20)
	return res, nil
}

func fmtBytes(b int64) string {
	return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
}
