package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// testdata/golden_small.txt pins every experiment's Result.Metrics at a
// fixed (scale, seed), recorded before the kernel fast-path rewrite (pooled
// events, timer wheel, pooled tasks/waiters). Determinism is a hard
// invariant: the same (id, scale, seed) must produce bit-identical metrics
// on every kernel revision. Values are hex floats, so the comparison is
// exact to the last bit.
//
// Regenerate (only when an experiment's logic intentionally changes) by
// running the experiments at the scales below and formatting each metric
// with strconv.FormatFloat(v, 'x', -1, 64).

func readGolden(t *testing.T) map[string][]string {
	t.Helper()
	f, err := os.Open("testdata/golden_small.txt")
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	defer f.Close()
	perID := make(map[string][]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		id := line[:strings.IndexByte(line, ' ')]
		perID[id] = append(perID[id], line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return perID
}

// TestGoldenBitForBit re-runs every registered experiment (sharded across
// the CPU via RunParallel) and compares every metric bit-for-bit against
// the pre-rewrite golden record. The sharded-kernel experiment runs at
// 1, 2 and 4 worker threads against one golden: the schedule may depend
// on its partition count, never on how many threads drive it.
func TestGoldenBitForBit(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	golden := readGolden(t)
	scales := map[string]float64{
		"fig3": 0.2, "fig4": 1, "tab1": 1,
		"fig6a": 0.1, "fig6b": 0.1, "fig6c": 0.12,
		"fig7a": 0.15, "fig7b": 0.08, "fig7c": 0.05,
		"fig8": 1, "fig9": 0.08, "fig10": 0.05, "fig11": 0.05,
		"fig12": 0.2, "fig13": 0.2, "fig14": 0.1,
		"ctlplane": 0.05, "lookup10k": 0.02, "obsplane": 0.05,
		"faultplane": 0.05, "lookup100k": 0.002, "lookup1m": 0.0002,
		"hostplane": 0.05, "configplane": 1, "gossip": 1,
	}
	specs := make([]Spec, 0, len(scales)+2)
	for _, id := range IDs() {
		scale, ok := scales[id]
		if !ok {
			t.Fatalf("experiment %s has no golden scale; extend the table and regenerate", id)
		}
		specs = append(specs, Spec{ID: id, Opt: Options{Scale: scale, Seed: 11, Out: io.Discard}})
		if id == "lookup100k" || id == "lookup1m" {
			// The sharded-kernel experiments must hit the same golden under
			// every worker count (invariant 9): one spec per thread count,
			// all compared against identical golden lines.
			for _, w := range []int{2, 4} {
				specs = append(specs, Spec{ID: id, Opt: Options{Scale: scale, Seed: 11, Out: io.Discard, Workers: w}})
			}
		}
	}
	for _, oc := range RunParallel(specs, 0) {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.ID, oc.Err)
		}
		keys := make([]string, 0, len(oc.Res.Metrics))
		for k := range oc.Res.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		got := make([]string, 0, len(keys))
		for _, k := range keys {
			got = append(got, fmt.Sprintf("%s %.2f 11 %s %s", oc.ID, scales[oc.ID], k,
				strconv.FormatFloat(oc.Res.Metrics[k], 'x', -1, 64)))
		}
		want := golden[oc.ID]
		if len(got) != len(want) {
			t.Errorf("%s: %d metrics, golden has %d", oc.ID, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: metric drifted:\n got  %s\n want %s", oc.ID, got[i], want[i])
			}
		}
	}
}

// TestRunParallelMatchesSerial checks that sharding changes neither metrics
// nor the bytes an experiment writes.
func TestRunParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	specs := []Spec{
		{ID: "fig4", Opt: Options{Scale: 1, Seed: 7}},
		{ID: "fig6b", Opt: Options{Scale: 0.1, Seed: 7}},
		{ID: "fig12", Opt: Options{Scale: 0.2, Seed: 7}},
	}
	serial := make([]Outcome, len(specs))
	for i, s := range specs {
		var buf bytes.Buffer
		opt := s.Opt
		opt.Out = &buf
		res, err := Run(s.ID, opt)
		serial[i] = Outcome{ID: s.ID, Res: res, Err: err, Output: buf.Bytes()}
	}
	parallel := RunParallel(specs, len(specs))
	for i := range specs {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: serial err %v, parallel err %v", specs[i].ID, s.Err, p.Err)
		}
		if !bytes.Equal(s.Output, p.Output) {
			t.Errorf("%s: output differs between serial and parallel runs", specs[i].ID)
		}
		if len(s.Res.Metrics) != len(p.Res.Metrics) {
			t.Fatalf("%s: metric counts differ", specs[i].ID)
		}
		for k, v := range s.Res.Metrics {
			if pv, ok := p.Res.Metrics[k]; !ok || pv != v {
				t.Errorf("%s: metric %s: serial %v, parallel %v", specs[i].ID, k, v, pv)
			}
		}
	}
}

// TestRunParallelEmptyAndErrors covers the edges: no specs, unknown ids.
func TestRunParallelEmptyAndErrors(t *testing.T) {
	t.Parallel()
	if got := RunParallel(nil, 4); len(got) != 0 {
		t.Fatalf("empty specs produced %d outcomes", len(got))
	}
	out := RunParallel([]Spec{{ID: "nope"}}, 4)
	if len(out) != 1 || out[0].Err == nil {
		t.Fatalf("unknown experiment did not error: %+v", out)
	}
}
