package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/transport"
)

func init() {
	register("obsplane", obsplane)
}

// Observability-plane experiment parameters.
const (
	obsKey         = "obs" // stream authentication key
	obsAggPort     = 7000
	obsReportEvery = 5 * time.Second  // per-node delta report period
	obsWatchEvery  = 15 * time.Second // in-flight view cadence
	obsSpread      = 45 * time.Second // lookup start stagger: spans the watch window
	obsLookups     = 2                // lookups per node
	obsBits        = 40               // ring bits: collision-safe at 5,000 ids
)

// obsplane measures the observability plane itself at control-plane
// scale, ACME-style: a real controller deploys an *instrumented* Chord
// onto 60% of a 5,000-daemon simulated PlanetLab testbed. Every
// deployed instance carries a metrics registry (chord route/latency
// instruments plus the RPC message-plane set), and streams batched
// delta reports to an aggregator on a dedicated monitoring host — the
// controller's own host is blacklisted for applications, so the plane
// gets a sibling service exactly like ACME's separation of control and
// sensing. The controller reports its own instruments (deploy latency,
// frame load, fleet-wide daemon accounting) over the same wire.
//
// While lookups run, the experiment prints the aggregator's merged
// view at a fixed cadence — the §3.4 "observe a live system" facility
// the log collector cannot provide — and closes with the monitoring
// bill: report frames and bytes per node per second, and monitoring's
// share of all application traffic on the network.
func obsplane(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("obsplane")
	n := opt.n(5000, 250)
	nodes := n * 3 / 5
	run, err := runObsplane(w, n, nodes, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("obsplane %d daemons: %w", n, err)
	}

	fmt.Fprintf(w, "# summary\n")
	fmt.Fprintf(w, "%-26s %12.0f\n", "lookups", run.lookups)
	fmt.Fprintf(w, "%-26s %12.2f\n", "mean hops", run.meanHops)
	fmt.Fprintf(w, "%-26s %12s\n", "lookup p50 (bucketed)", r(time.Duration(run.p50ns)))
	fmt.Fprintf(w, "%-26s %12s\n", "lookup p90 (bucketed)", r(time.Duration(run.p90ns)))
	fmt.Fprintf(w, "%-26s %12.0f\n", "rpc calls", run.rpcCalls)
	fmt.Fprintf(w, "%-26s %12.3f\n", "report frames/node/s", run.framesPerNodeSec)
	fmt.Fprintf(w, "%-26s %12.1f\n", "report bytes/node/s", run.bytesPerNodeSec)
	fmt.Fprintf(w, "%-26s %12.4f\n", "monitoring byte share", run.byteShare)

	res.Metrics["daemons"] = float64(n)
	res.Metrics["nodes"] = float64(nodes)
	res.Metrics["lookups"] = run.lookups
	res.Metrics["failed_lookups"] = run.failed
	res.Metrics["mean_hops"] = run.meanHops
	res.Metrics["hops_p99"] = run.hopsP99
	res.Metrics["lat_p50_ms"] = float64(run.p50ns) / 1e6
	res.Metrics["lat_p90_ms"] = float64(run.p90ns) / 1e6
	res.Metrics["rpc_calls"] = run.rpcCalls
	res.Metrics["frames_per_node_s"] = run.framesPerNodeSec
	res.Metrics["bytes_per_node_s"] = run.bytesPerNodeSec
	res.Metrics["monitor_byte_share"] = run.byteShare
	res.Metrics["jobs_started"] = run.jobsStarted
	res.Metrics["ctl_frames_per_daemon"] = run.ctlFramesPerDaemon
	return res, nil
}

// obsplaneRun carries one run's aggregated results.
type obsplaneRun struct {
	lookups            float64
	failed             float64
	meanHops           float64
	hopsP99            float64
	p50ns, p90ns       int64
	rpcCalls           float64
	framesPerNodeSec   float64
	bytesPerNodeSec    float64
	byteShare          float64
	jobsStarted        float64
	ctlFramesPerDaemon float64
}

// runObsplane deploys and monitors one population.
func runObsplane(w io.Writer, n, nodes int, seed int64) (*obsplaneRun, error) {
	k := sim.NewKernel()
	// Host 0: controller. Host 1: the monitoring host (aggregator).
	// Hosts 2..n+1: daemons.
	plCfg := topology.DefaultPlanetLab(n + 2)
	plCfg.Seed = seed
	pl := topology.NewPlanetLab(plCfg)
	nw := simnet.New(k, pl, n+2, seed)
	nw.SetProcDelay(pl.ProcDelay)
	rt := core.NewSimRuntime(k, seed)

	// Network-global instruments, read directly at the end: the ground
	// truth monitoring overhead is measured against.
	netReg := metrics.NewRegistry()
	netIns := simnet.NewInstruments(netReg)
	nw.SetInstruments(netIns)

	var agg *metrics.Aggregator
	k.Go(func() {
		var err error
		agg, err = metrics.NewAggregator(nw.Node(1), obsAggPort, k.Go)
		if err == nil {
			agg.Authorize(obsKey)
		}
	})
	k.Run()
	if agg == nil {
		return nil, fmt.Errorf("aggregator failed to start")
	}
	aggAddr := transport.Addr{Host: simnet.HostName(1), Port: obsAggPort}

	// Controller instruments plus fleet-wide daemon accounting share one
	// registry, reported over the wire like every application stream.
	ctlReg := metrics.NewRegistry()
	cfg := controller.DefaultConfig()
	cfg.RegisterTimeout = 60 * time.Second // PlanetLab tail headroom at 5,000
	ctl := controller.New(rt, nw.Node(0), cfg)
	ctl.SetInstruments(controller.NewInstruments(ctlReg))
	dmnIns := daemon.NewInstruments(ctlReg)
	// One instrument set is shared by the whole fleet, so the counters
	// sum correctly but the per-daemon jobs gauge would just be clobbered
	// by whichever daemon Set it last — disable it.
	dmnIns.Jobs = nil
	var startErr error
	k.Go(func() {
		startErr = ctl.Start()
		if startErr != nil {
			return
		}
		ctlRep, err := metrics.DialReporter(nw.Node(0), aggAddr, ctlReg,
			metrics.ReporterConfig{Key: obsKey, Node: "ctl"})
		if err != nil {
			startErr = err
			return
		}
		for {
			k.Sleep(obsReportEvery)
			ctlRep.Flush() //nolint:errcheck // monitoring is best effort
		}
	})

	// The deployed application: an instrumented Chord node that streams
	// its registry to the aggregator.
	var chordNodes []*chord.Node
	appReg := core.NewRegistry()
	appReg.Register("obschord", func(json.RawMessage) (core.App, error) {
		return core.AppFunc(func(ctx *core.AppContext) error {
			ccfg := chord.DefaultConfig()
			ccfg.Bits = obsBits
			node, err := chord.New(ctx, ccfg)
			if err != nil {
				return err
			}
			mreg := metrics.NewRegistry()
			node.SetInstruments(chord.NewInstruments(mreg))
			node.SetRPCInstruments(rpc.NewInstruments(mreg))
			if err := node.Start(); err != nil {
				return err
			}
			rep, err := metrics.DialReporter(ctx.Node(), aggAddr, mreg,
				metrics.ReporterConfig{Key: obsKey, Node: ctx.Job.Me.Host})
			if err != nil {
				return err
			}
			ctx.Track(rep)
			ctx.Periodic(obsReportEvery, func() { rep.Flush() }) //nolint:errcheck
			chordNodes = append(chordNodes, node)
			return nil
		}), nil
	})

	ctlAddr := transport.Addr{Host: simnet.HostName(0), Port: cfg.Port}
	for i := 2; i <= n+1; i++ {
		d := daemon.New(rt, nw.Node(i), appReg, daemon.DefaultConfig(simnet.HostName(i)), nil)
		d.SetInstruments(dmnIns)
		k.GoAfter(time.Duration(i)*2*time.Millisecond, func() {
			d.Connect(ctlAddr) //nolint:errcheck
		})
	}
	// Connect window plus one ping rotation so selection has RTTs.
	k.RunFor(45 * time.Second)
	if startErr != nil {
		return nil, startErr
	}
	if got := ctl.Daemons(); got != n {
		return nil, fmt.Errorf("only %d/%d daemons connected", got, n)
	}

	var job *controller.JobStatus
	var subErr error
	done := false
	k.Go(func() {
		job, subErr = ctl.Submit(controller.JobSpec{App: "obschord", Nodes: nodes})
		done = true
	})
	for i := 0; i < 30 && !done; i++ {
		k.RunFor(10 * time.Second)
	}
	if !done {
		return nil, fmt.Errorf("deployment did not finish within the run window")
	}
	if subErr != nil {
		return nil, subErr
	}
	if job.State != controller.JobRunning || len(chordNodes) != nodes {
		return nil, fmt.Errorf("deployed %d instances (state %s), want %d running",
			len(chordNodes), job.State, nodes)
	}

	// Converge the ring statically (§5.2's "let the overlay stabilize")
	// and issue lookups from every node, staggered like fig6.
	if err := chord.BuildRing(chordNodes, chord.BuildOptions{}); err != nil {
		return nil, err
	}
	watchStart := k.Now()
	f0, b0 := agg.Received()
	remaining := nodes
	rng := rand.New(rand.NewSource(seed))
	for i := range chordNodes {
		node := chordNodes[i]
		start := time.Duration(rng.Intn(int(obsSpread/time.Millisecond))) * time.Millisecond
		k.GoAfter(start, func() {
			lrng := rand.New(rand.NewSource(seed + int64(node.Self().ID)))
			for j := 0; j < obsLookups; j++ {
				key := lrng.Uint64() & (1<<obsBits - 1)
				node.Lookup(key) //nolint:errcheck // failures land in the instruments
			}
			remaining--
		})
	}

	// The live query surface: the aggregator's merged view while the
	// experiment converges in flight.
	fmt.Fprintf(w, "%-8s %8s %9s %10s %10s %10s %10s\n",
		"t", "nodes", "lookups", "mean-hops", "p50", "p90", "frames")
	watch := func() {
		count, sum := agg.HistStats("chord.hops")
		mean := 0.0
		if count > 0 {
			mean = float64(sum) / float64(count)
		}
		lat := agg.HistSorted("chord.lookup_latency_ns")
		frames, _ := agg.Received()
		fmt.Fprintf(w, "%-8s %8d %9d %10.2f %10s %10s %10d\n",
			k.Now().Sub(watchStart).Round(time.Second), agg.Nodes(),
			agg.CounterTotal("chord.lookups"), mean,
			r(lat.Percentile(50)), r(lat.Percentile(90)), frames-f0)
	}
	for t := obsWatchEvery; t <= 4*obsWatchEvery; t += obsWatchEvery {
		k.RunFor(obsWatchEvery)
		watch()
	}
	for i := 0; i < 30 && remaining > 0; i++ {
		k.RunFor(10 * time.Second)
	}
	if remaining > 0 {
		return nil, fmt.Errorf("%d lookup drivers still running", remaining)
	}
	// Drain: two report periods so every periodic flush ships its last
	// deltas, then close the books.
	k.RunFor(2*obsReportEvery + time.Second)
	watch()

	f1, b1 := agg.Received()
	window := k.Now().Sub(watchStart).Seconds()
	reporting := float64(agg.Nodes()) // chord instances + the controller

	run := &obsplaneRun{}
	run.lookups = float64(agg.CounterTotal("chord.lookups"))
	run.failed = float64(agg.CounterTotal("chord.failed_lookups"))
	count, sum := agg.HistStats("chord.hops")
	if count > 0 {
		run.meanHops = float64(sum) / float64(count)
	}
	run.hopsP99 = float64(agg.HistSorted("chord.hops").Percentile(99))
	lat := agg.HistSorted("chord.lookup_latency_ns")
	run.p50ns = int64(lat.Percentile(50))
	run.p90ns = int64(lat.Percentile(90))
	run.rpcCalls = float64(agg.CounterTotal("rpc.calls"))
	run.framesPerNodeSec = float64(f1-f0) / reporting / window
	run.bytesPerNodeSec = float64(b1-b0) / reporting / window
	if total := netIns.StreamBytes.Total(); total > 0 {
		run.byteShare = float64(b1) / float64(total)
	}
	run.jobsStarted = float64(agg.CounterTotal("daemon.jobs_started"))
	run.ctlFramesPerDaemon = float64(agg.CounterTotal("ctl.frames")) / float64(n)

	// The plane must have carried every stream and every instrument:
	// all deployed instances plus the controller reported, the fleet
	// accounting matches the deployment, and every lookup was observed.
	if agg.Nodes() != nodes+1 {
		return nil, fmt.Errorf("%d streams reported, want %d", agg.Nodes(), nodes+1)
	}
	if int(run.jobsStarted) != nodes {
		return nil, fmt.Errorf("fleet accounting saw %d jobs, want %d", int(run.jobsStarted), nodes)
	}
	if int(run.lookups) != nodes*obsLookups {
		return nil, fmt.Errorf("aggregated %d lookups, want %d", int(run.lookups), nodes*obsLookups)
	}
	return run, nil
}
