package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/rpc"
)

func init() {
	register("obsplane", obsplane)
}

// Observability-plane experiment parameters.
const (
	obsKey         = "obs" // stream authentication key
	obsAggPort     = 7000
	obsReportEvery = 5 * time.Second  // per-node delta report period
	obsWatchEvery  = 15 * time.Second // in-flight view cadence
	obsSpread      = 45 * time.Second // lookup start stagger: spans the watch window
	obsLookups     = 2                // lookups per node
	obsBits        = 40               // ring bits: collision-safe at 5,000 ids
)

// obsplane measures the observability plane itself at control-plane
// scale, ACME-style: a scenario deploys an *instrumented* Chord onto 60%
// of a 5,000-daemon simulated PlanetLab testbed. Every deployed instance
// carries a metrics registry (chord route/latency instruments plus the
// RPC message-plane set), and streams batched delta reports to the
// scenario's aggregator on a dedicated monitoring host — the
// controller's own host is blacklisted for applications, so the plane
// gets a sibling service exactly like ACME's separation of control and
// sensing. The controller reports its own instruments (deploy latency,
// frame load, fleet-wide daemon accounting) over the same wire.
//
// While lookups run, the experiment prints the aggregator's merged
// view at a fixed cadence — the §3.4 "observe a live system" facility
// the log collector cannot provide — and closes with the monitoring
// bill: report frames and bytes per node per second, and monitoring's
// share of all application traffic on the network.
func obsplane(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("obsplane")
	n := opt.n(5000, 250)
	nodes := n * 3 / 5
	run, err := runObsplane(w, n, nodes, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("obsplane %d daemons: %w", n, err)
	}

	fmt.Fprintf(w, "# summary\n")
	fmt.Fprintf(w, "%-26s %12.0f\n", "lookups", run.lookups)
	fmt.Fprintf(w, "%-26s %12.2f\n", "mean hops", run.meanHops)
	fmt.Fprintf(w, "%-26s %12s\n", "lookup p50 (bucketed)", r(time.Duration(run.p50ns)))
	fmt.Fprintf(w, "%-26s %12s\n", "lookup p90 (bucketed)", r(time.Duration(run.p90ns)))
	fmt.Fprintf(w, "%-26s %12.0f\n", "rpc calls", run.rpcCalls)
	fmt.Fprintf(w, "%-26s %12.3f\n", "report frames/node/s", run.framesPerNodeSec)
	fmt.Fprintf(w, "%-26s %12.1f\n", "report bytes/node/s", run.bytesPerNodeSec)
	fmt.Fprintf(w, "%-26s %12.4f\n", "monitoring byte share", run.byteShare)

	res.Metrics["daemons"] = float64(n)
	res.Metrics["nodes"] = float64(nodes)
	res.Metrics["lookups"] = run.lookups
	res.Metrics["failed_lookups"] = run.failed
	res.Metrics["mean_hops"] = run.meanHops
	res.Metrics["hops_p99"] = run.hopsP99
	res.Metrics["lat_p50_ms"] = float64(run.p50ns) / 1e6
	res.Metrics["lat_p90_ms"] = float64(run.p90ns) / 1e6
	res.Metrics["rpc_calls"] = run.rpcCalls
	res.Metrics["frames_per_node_s"] = run.framesPerNodeSec
	res.Metrics["bytes_per_node_s"] = run.bytesPerNodeSec
	res.Metrics["monitor_byte_share"] = run.byteShare
	res.Metrics["jobs_started"] = run.jobsStarted
	res.Metrics["ctl_frames_per_daemon"] = run.ctlFramesPerDaemon
	return res, nil
}

// obsplaneRun carries one run's aggregated results.
type obsplaneRun struct {
	lookups            float64
	failed             float64
	meanHops           float64
	hopsP99            float64
	p50ns, p90ns       int64
	rpcCalls           float64
	framesPerNodeSec   float64
	bytesPerNodeSec    float64
	byteShare          float64
	jobsStarted        float64
	ctlFramesPerDaemon float64
}

// runObsplane deploys and monitors one population through the scenario
// SDK: Collect.Metrics provisions the monitoring host, the aggregator
// and the controller's self-reporting stream; each instance wires its
// own registry and calls Env.StartReporting.
func runObsplane(w io.Writer, n, nodes int, seed int64) (*obsplaneRun, error) {
	var chordNodes []*chord.Node
	sc := splay.Scenario{
		Seed:            seed,
		Testbed:         splay.PlanetLab(n),
		RegisterTimeout: 60 * time.Second, // PlanetLab tail headroom at 5,000
		Collect: splay.Collect{
			Metrics:     true,
			ReportEvery: obsReportEvery,
			Key:         obsKey,
			MetricsPort: obsAggPort,
		},
		Apps: []splay.AppSpec{{
			Name:  "obschord",
			Nodes: nodes,
			App: splay.AppFunc(func(env *splay.Env) error {
				ccfg := chord.DefaultConfig()
				ccfg.Bits = obsBits
				node, err := chord.New(env.AppContext(), ccfg)
				if err != nil {
					return err
				}
				mreg := env.Metrics()
				node.SetInstruments(chord.NewInstruments(mreg))
				node.SetRPCInstruments(rpc.NewInstruments(mreg))
				if err := node.Start(); err != nil {
					return err
				}
				if err := env.StartReporting(); err != nil {
					return err
				}
				chordNodes = append(chordNodes, node)
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		return nil, err
	}
	defer sess.Stop()

	dep := sess.Deploy(sc.Apps[0])
	job, err := dep.Wait()
	if err != nil {
		return nil, err
	}
	if job.State != splay.JobRunning || len(chordNodes) != nodes {
		return nil, fmt.Errorf("deployed %d instances (state %s), want %d running",
			len(chordNodes), job.State, nodes)
	}
	tel := sess.Telemetry()

	// Converge the ring statically (§5.2's "let the overlay stabilize")
	// and issue lookups from every node, staggered like fig6.
	if err := chord.BuildRing(chordNodes, chord.BuildOptions{}); err != nil {
		return nil, err
	}
	watchStart := sess.Now()
	f0, b0 := tel.Received()
	remaining := nodes
	rng := rand.New(rand.NewSource(seed))
	for i := range chordNodes {
		node := chordNodes[i]
		start := time.Duration(rng.Intn(int(obsSpread/time.Millisecond))) * time.Millisecond
		sess.GoAfter(start, func() {
			lrng := rand.New(rand.NewSource(seed + int64(node.Self().ID)))
			for j := 0; j < obsLookups; j++ {
				key := lrng.Uint64() & (1<<obsBits - 1)
				node.Lookup(key) //nolint:errcheck // failures land in the instruments
			}
			remaining--
		})
	}

	// The live query surface: the aggregator's merged view while the
	// experiment converges in flight.
	fmt.Fprintf(w, "%-8s %8s %9s %10s %10s %10s %10s\n",
		"t", "nodes", "lookups", "mean-hops", "p50", "p90", "frames")
	watch := func() {
		count, sum := tel.HistStats("chord.hops")
		mean := 0.0
		if count > 0 {
			mean = float64(sum) / float64(count)
		}
		lat := tel.Series("chord.lookup_latency_ns")
		frames, _ := tel.Received()
		fmt.Fprintf(w, "%-8s %8d %9d %10.2f %10s %10s %10d\n",
			sess.Now().Sub(watchStart).Round(time.Second), tel.Nodes(),
			tel.Counter("chord.lookups"), mean,
			r(lat.Percentile(50)), r(lat.Percentile(90)), frames-f0)
	}
	for t := obsWatchEvery; t <= 4*obsWatchEvery; t += obsWatchEvery {
		sess.RunFor(obsWatchEvery)
		watch()
	}
	for i := 0; i < 30 && remaining > 0; i++ {
		sess.RunFor(10 * time.Second)
	}
	if remaining > 0 {
		return nil, fmt.Errorf("%d lookup drivers still running", remaining)
	}
	// Drain: two report periods so every periodic flush ships its last
	// deltas, then close the books.
	sess.RunFor(2*obsReportEvery + time.Second)
	watch()

	f1, b1 := tel.Received()
	window := sess.Now().Sub(watchStart).Seconds()
	reporting := float64(tel.Nodes()) // chord instances + the controller

	run := &obsplaneRun{}
	run.lookups = float64(tel.Counter("chord.lookups"))
	run.failed = float64(tel.Counter("chord.failed_lookups"))
	count, sum := tel.HistStats("chord.hops")
	if count > 0 {
		run.meanHops = float64(sum) / float64(count)
	}
	run.hopsP99 = float64(tel.Series("chord.hops").Percentile(99))
	lat := tel.Series("chord.lookup_latency_ns")
	run.p50ns = int64(lat.Percentile(50))
	run.p90ns = int64(lat.Percentile(90))
	run.rpcCalls = float64(tel.Counter("rpc.calls"))
	run.framesPerNodeSec = float64(f1-f0) / reporting / window
	run.bytesPerNodeSec = float64(b1-b0) / reporting / window
	if total := sess.NetBytes(); total > 0 {
		run.byteShare = float64(b1) / float64(total)
	}
	run.jobsStarted = float64(tel.Counter("daemon.jobs_started"))
	run.ctlFramesPerDaemon = float64(tel.Counter("ctl.frames")) / float64(n)

	// The plane must have carried every stream and every instrument:
	// all deployed instances plus the controller reported, the fleet
	// accounting matches the deployment, and every lookup was observed.
	if tel.Nodes() != nodes+1 {
		return nil, fmt.Errorf("%d streams reported, want %d", tel.Nodes(), nodes+1)
	}
	if int(run.jobsStarted) != nodes {
		return nil, fmt.Errorf("fleet accounting saw %d jobs, want %d", int(run.jobsStarted), nodes)
	}
	if int(run.lookups) != nodes*obsLookups {
		return nil, fmt.Errorf("aggregated %d lookups, want %d", int(run.lookups), nodes*obsLookups)
	}
	return run, nil
}
