package experiments

import (
	"bytes"
	"testing"
)

// TestFaultplaneReconverges runs the fault-plane experiment at golden
// scale and checks the closed loop's shape: the partition bit, the heal
// rule fired exactly once, and lookups reconverged with bounded lag. The
// experiment's own assertions (partition-bites, lookups-reconverge)
// already gate the run — an assertion failure surfaces as an error here.
func TestFaultplaneReconverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault-plane run")
	}
	t.Parallel()
	res, err := Run("faultplane", Options{Scale: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics["heal_fires"]; got != 1 {
		t.Errorf("heal rule fired %g times, want 1", got)
	}
	if res.Metrics["failed_lookups"] == 0 {
		t.Error("partition caused no observed failures")
	}
	if lag := res.Metrics["reconverge_s"]; lag < 0 || lag > 60 {
		t.Errorf("reconvergence lag %gs, want within [0, 60]", lag)
	}
	if res.Metrics["heal_s"] <= fpPartitionAt.Seconds() {
		t.Errorf("heal at %gs, before the partition at %s", res.Metrics["heal_s"], fpPartitionAt)
	}
	wantLookups := res.Metrics["nodes"] * fpRounds
	if res.Metrics["lookups"] != wantLookups {
		t.Errorf("lookups = %g, want %g (every node finished its rounds)",
			res.Metrics["lookups"], wantLookups)
	}
}

// TestFaultplaneDeterministic runs the same seeded fault plan at worker
// counts 1, 2 and 4 and requires bit-identical metrics AND byte-identical
// output: fault injection must not perturb the simulation's determinism,
// and the Workers knob must never leak into a single-kernel experiment.
func TestFaultplaneDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three full fault-plane runs")
	}
	t.Parallel()
	workers := []int{1, 2, 4}
	outs := make([]bytes.Buffer, len(workers))
	runs := make([]*Result, len(workers))
	for i, w := range workers {
		res, err := Run("faultplane", Options{Scale: 0.05, Seed: 23, Out: &outs[i], Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = res
	}
	for i := 1; i < len(workers); i++ {
		if !bytes.Equal(outs[0].Bytes(), outs[i].Bytes()) {
			t.Errorf("workers=%d: same seeded plan produced different output bytes than workers=1", workers[i])
		}
		if len(runs[0].Metrics) != len(runs[i].Metrics) {
			t.Fatalf("metric counts differ: %d vs %d", len(runs[0].Metrics), len(runs[i].Metrics))
		}
		for k, v := range runs[0].Metrics {
			if w, ok := runs[i].Metrics[k]; !ok || w != v {
				t.Errorf("metric %s drifted between identical runs: %v vs %v", k, v, w)
			}
		}
	}
}
