package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/protocols/chord"
)

func init() {
	register("hostplane", hostplane)
}

// Hosting-plane experiment parameters.
const (
	hpKey         = "hostplane"            // stream authentication key
	hpRTT         = 30 * time.Millisecond  // uniform testbed RTT
	hpReportEvery = 2 * time.Second        // per-node delta report period
	hpBits        = 40                     // ring bits: collision-safe
	hpStagger     = 200 * time.Millisecond // join spacing inside a job
	hpMargin      = 60 * time.Second       // stabilization window after the last join
	hpStabilize   = time.Second            // maintenance cadence (see hostChordApp)
	hpRounds      = 8                      // lookups per node
	hpLookupEvery = 2 * time.Second        // per-node lookup period
	hpSlack       = 8 * time.Second        // flush window after the workload
	hpStep        = time.Second            // driver poll granularity
)

// hostplane is the hosting plane's end-to-end demonstration: one
// resident controller hosts three tenants submitting serialized Chord
// scenarios concurrently onto a single shared simulated daemon fleet
// (5,000 at scale 1). The run exercises the whole multi-tenant story —
// per-tenant keys, quota rejection and bad-key rejection as typed
// errors, deterministic fair-share placement (carol's queued job starts
// before alice's earlier-queued third job because alice already holds
// more of the fleet), and no starvation (every admitted job finishes).
//
// The headline invariant (DESIGN.md #10) is checked directly: after the
// hosted runs finish, every submission's exact wire bytes are replayed
// on a local testbed and the result digest — instances placed, lookups
// issued, lookups failed — must match the hosted outcome bit for bit.
func hostplane(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("hostplane")
	daemons := opt.n(5000, 250)
	jobN := daemons / 10
	run, err := runHostplane(w, daemons, jobN, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("hostplane %d daemons: %w", daemons, err)
	}

	fmt.Fprintf(w, "# summary\n")
	fmt.Fprintf(w, "%-26s %12.0f\n", "jobs done", run.jobsDone)
	fmt.Fprintf(w, "%-26s %12.0f\n", "rejected submissions", run.rejects)
	fmt.Fprintf(w, "%-26s %12.0f\n", "lookups", run.lookups)
	fmt.Fprintf(w, "%-26s %12.0f\n", "failed lookups", run.failed)
	fmt.Fprintf(w, "%-26s %12.0f\n", "digests matching local", run.digestMatch)
	fmt.Fprintf(w, "%-26s %12.1fs\n", "carol queue wait", run.waitCarolS)
	fmt.Fprintf(w, "%-26s %12.1fs\n", "alice(3rd) queue wait", run.waitAlice3S)

	res.Metrics["daemons"] = float64(daemons)
	res.Metrics["job_nodes"] = float64(jobN)
	res.Metrics["jobs_done"] = run.jobsDone
	res.Metrics["rejects"] = run.rejects
	res.Metrics["lookups"] = run.lookups
	res.Metrics["failed_lookups"] = run.failed
	res.Metrics["digest_match"] = run.digestMatch
	res.Metrics["wait_first_s"] = run.waitFirstS
	res.Metrics["wait_carol_s"] = run.waitCarolS
	res.Metrics["wait_alice3_s"] = run.waitAlice3S
	return res, nil
}

// hostplaneRun carries one run's headline numbers.
type hostplaneRun struct {
	jobsDone    float64
	rejects     float64
	lookups     float64
	failed      float64
	digestMatch float64
	waitFirstS  float64
	waitCarolS  float64
	waitAlice3S float64
}

// hostChordParams travels in the submission's app params, so the hosted
// run and the local replay of the same bytes execute the identical
// workload.
type hostChordParams struct {
	Series    string `json:"series"`     // telemetry prefix, unique per job
	Seed      int64  `json:"seed"`       // pins ring ids and lookup keys
	StaggerMS int64  `json:"stagger_ms"` // join spacing
	StartMS   int64  `json:"start_ms"`   // workload start on the instance clock
	Rounds    int    `json:"rounds"`     // lookups per node
	EveryMS   int64  `json:"every_ms"`   // lookup period
}

// hostChordApp is the registry entry the resident platform is started
// with; submissions reference it by name. Ring identifiers and lookup
// keys derive from the params' seed and the instance position — never
// from placement — so a job builds the same ring whether its instances
// land on daemons 3..27 of a private testbed or 812..2201 of the shared
// fleet. That is what makes hosted results byte-comparable to local
// ones.
func hostChordApp(params []byte) (splay.App, error) {
	var p hostChordParams
	// Daemons validate registry entries with nil params at REGISTER
	// time; only a real START carries the submission's params.
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("hostchord app: %w", err)
		}
	}
	return splay.AppFunc(func(env *splay.Env) error {
		t0 := env.Now()
		job := env.Job()
		cfg := chord.DefaultConfig()
		cfg.Bits = hpBits
		// FixFingers repairs one finger per round, so a full pass over a
		// 40-bit table takes Bits rounds: the default 5 s cadence needs
		// 200 s to converge, while this cadence fits inside hpMargin even
		// for the job's last joiner (hpMargin/hpStabilize > hpBits).
		cfg.StabilizeEvery = hpStabilize
		id := rand.New(rand.NewSource(p.Seed*7919+int64(job.Position))).Uint64() & (1<<hpBits - 1)
		cfg.ID = &id
		n, err := chord.New(env.AppContext(), cfg)
		if err != nil {
			return err
		}
		mreg := env.Metrics()
		lookups := mreg.Counter(p.Series + ".lookups")
		failed := mreg.Counter(p.Series + ".failed")
		if err := n.Start(); err != nil {
			return err
		}
		if err := env.StartReporting(); err != nil {
			return err
		}
		env.Sleep(time.Duration(job.Position) * time.Duration(p.StaggerMS) * time.Millisecond)
		if job.Position > 1 && len(job.Nodes) > 0 {
			if err := n.Join(job.Nodes[0]); err != nil {
				return fmt.Errorf("hostchord join: %w", err)
			}
		}
		n.StartMaintenance()
		if d := time.Duration(p.StartMS)*time.Millisecond - env.Now().Sub(t0); d > 0 {
			env.Sleep(d)
		}
		krng := rand.New(rand.NewSource(p.Seed + int64(job.Position)))
		for j := 0; j < p.Rounds && !env.Killed(); j++ {
			key := krng.Uint64() & (1<<hpBits - 1)
			lookups.Inc()
			if _, err := n.Lookup(key); err != nil {
				failed.Inc()
			}
			env.Sleep(time.Duration(p.EveryMS) * time.Millisecond)
		}
		env.RunUntilKilled()
		n.Stop()
		return nil
	}), nil
}

// hostSubmission builds one tenant's scenario: hostchord by name, its
// own seed and telemetry series, on the testbed a local replay would
// use (the hosting plane ignores the testbed; the replay needs it).
func hostSubmission(name, series string, seed int64, nodes int) (splay.Scenario, error) {
	start := time.Duration(nodes)*hpStagger + hpMargin
	params, err := json.Marshal(hostChordParams{
		Series:    series,
		Seed:      seed,
		StaggerMS: hpStagger.Milliseconds(),
		StartMS:   start.Milliseconds(),
		Rounds:    hpRounds,
		EveryMS:   hpLookupEvery.Milliseconds(),
	})
	if err != nil {
		return splay.Scenario{}, err
	}
	return splay.Scenario{
		Name:     name,
		Seed:     seed,
		Testbed:  splay.Uniform(nodes+2, hpRTT, 0),
		Collect:  splay.Collect{Metrics: true, ReportEvery: hpReportEvery},
		Apps:     []splay.AppSpec{{Name: "hostchord", Nodes: nodes, Params: params}},
		Duration: start + hpRounds*hpLookupEvery + hpSlack,
	}, nil
}

// hostedSub tracks one submission through the hosted run.
type hostedSub struct {
	tenant, key, series string
	bytes               []byte
	view                splay.HostJob
}

// runHostplane provisions the resident platform, drives the tenants'
// submissions, and replays every submission locally for the byte-
// identity check.
func runHostplane(w io.Writer, daemons, jobN int, seed int64) (*hostplaneRun, error) {
	resident := splay.Scenario{
		Name:            "hostplane",
		Seed:            seed,
		Testbed:         splay.Uniform(daemons, hpRTT, 0),
		RegisterTimeout: 60 * time.Second,
		Collect: splay.Collect{
			Metrics:     true,
			ReportEvery: hpReportEvery,
			Key:         hpKey,
		},
		Apps: []splay.AppSpec{{Name: "hostchord", New: hostChordApp}},
	}
	sess, err := resident.Start(context.Background())
	if err != nil {
		return nil, err
	}
	defer sess.Stop()

	// Capacity holds exactly three jobs, so the fourth and fifth
	// submissions queue and the fair-share order becomes observable.
	host, err := sess.Host(splay.HostConfig{
		Capacity: 3 * jobN,
		Tenants: []splay.HostTenant{
			{Name: "alice", Key: "key-alice"},
			{Name: "bob", Key: "key-bob"},
			{Name: "carol", Key: "key-carol"},
			{Name: "dave", Key: "key-dave", Quota: splay.HostQuota{MaxNodes: jobN / 2}},
		},
	})
	if err != nil {
		return nil, err
	}

	// Five admitted submissions, one second apart: alice fills two
	// capacity slots, bob the third, then alice queues a third job one
	// second BEFORE carol queues her first. Fair share must start
	// carol's anyway — alice already holds two jobs' worth of nodes.
	base := seed * 1000
	subs := []*hostedSub{
		{tenant: "alice", key: "key-alice", series: "a1"},
		{tenant: "alice", key: "key-alice", series: "a2"},
		{tenant: "bob", key: "key-bob", series: "b1"},
		{tenant: "alice", key: "key-alice", series: "a3"},
		{tenant: "carol", key: "key-carol", series: "c1"},
	}
	for i, sub := range subs {
		sc, err := hostSubmission("host-"+sub.series, sub.series, base+int64(i+1), jobN)
		if err != nil {
			return nil, err
		}
		if sub.bytes, err = sc.Marshal(); err != nil {
			return nil, err
		}
		if sub.view, err = host.SubmitRaw(sub.key, sub.bytes); err != nil {
			return nil, fmt.Errorf("%s submit %s: %w", sub.tenant, sub.series, err)
		}
		sess.RunFor(time.Second)
	}
	for _, sub := range subs[3:] {
		if v, err := host.Job(sub.key, sub.view.ID); err != nil || v.State != splay.HostQueued {
			return nil, fmt.Errorf("job %s should be queued behind capacity, got %v (%v)",
				sub.series, v.State, err)
		}
	}

	// Rejections are typed errors, not hangs: dave's submission exceeds
	// his node quota, and an unknown key never reaches admission.
	over, err := hostSubmission("host-d1", "d1", base+9, jobN)
	if err != nil {
		return nil, err
	}
	overBytes, err := over.Marshal()
	if err != nil {
		return nil, err
	}
	var herr *splay.HostError
	if _, err := host.SubmitRaw("key-dave", overBytes); !errors.As(err, &herr) || string(herr.Code) != "quota" {
		return nil, fmt.Errorf("dave's over-quota submission: got %v, want typed quota error", err)
	}
	if _, err := host.SubmitRaw("key-mallory", overBytes); !errors.As(err, &herr) || string(herr.Code) != "auth" {
		return nil, fmt.Errorf("unknown key: got %v, want typed auth error", err)
	}

	// Drive the platform until every admitted job reaches a terminal
	// state, reporting progress on the virtual clock.
	jobDur := time.Duration(jobN)*hpStagger + hpMargin + hpRounds*hpLookupEvery + hpSlack
	deadline := 2*jobDur + 60*time.Second
	t0 := sess.Now()
	fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "t", "done", "running", "queued")
	for sess.Now().Sub(t0) < deadline {
		done, running, queued := 0, 0, 0
		for _, sub := range subs {
			v, err := host.Job(sub.key, sub.view.ID)
			if err != nil {
				return nil, err
			}
			sub.view = v
			switch {
			case v.State.Terminal():
				done++
			case v.State == splay.HostQueued:
				queued++
			default:
				running++
			}
		}
		if el := sess.Now().Sub(t0); el%(20*time.Second) < hpStep {
			fmt.Fprintf(w, "%-8s %8d %8d %8d\n", el.Round(time.Second), done, running, queued)
		}
		if done == len(subs) {
			break
		}
		sess.RunFor(hpStep)
	}
	// One more report period so the final workload deltas and the host's
	// own instrument stream reach the aggregator.
	sess.RunFor(2*hpReportEvery + time.Second)

	tel := sess.Telemetry()
	run := &hostplaneRun{}
	fmt.Fprintf(w, "# jobs\n")
	fmt.Fprintf(w, "%-4s %-6s %-7s %10s %9s %7s\n", "job", "tenant", "state", "wait", "lookups", "failed")
	hostedDigests := make([]string, len(subs))
	for i, sub := range subs {
		hres, err := host.Result(sub.key, sub.view.ID)
		if err != nil {
			return nil, fmt.Errorf("result %s: %w", sub.series, err)
		}
		if hres.State != splay.HostDone {
			return nil, fmt.Errorf("job %s (%s) finished %s: %s", sub.series, sub.tenant, hres.State, hres.Error)
		}
		if len(hres.Apps) != 1 || hres.Apps[0].Deployed != jobN {
			return nil, fmt.Errorf("job %s placement %+v, want %d instances", sub.series, hres.Apps, jobN)
		}
		lk := tel.Counter(sub.series + ".lookups")
		fl := tel.Counter(sub.series + ".failed")
		hostedDigests[i] = fmt.Sprintf("deployed=%d lookups=%d failed=%d", hres.Apps[0].Deployed, lk, fl)
		run.lookups += float64(lk)
		run.failed += float64(fl)
		run.jobsDone++
		wait := hres.QueueWaitNS.Seconds()
		switch sub.series {
		case "a1":
			run.waitFirstS = wait
		case "a3":
			run.waitAlice3S = wait
		case "c1":
			run.waitCarolS = wait
		}
		fmt.Fprintf(w, "%-4s %-6s %-7s %9.1fs %9d %7d\n", sub.series, sub.tenant, hres.State, wait, lk, fl)
	}
	run.rejects = float64(tel.Counter("host.rejects"))
	if run.rejects != 2 {
		return nil, fmt.Errorf("host.rejects = %.0f, want 2 (quota + auth)", run.rejects)
	}
	if want := float64(len(subs) * jobN * hpRounds); run.lookups != want {
		return nil, fmt.Errorf("aggregated %.0f lookups, want %.0f", run.lookups, want)
	}
	if run.failed != 0 {
		return nil, fmt.Errorf("%.0f lookups failed on converged hosted rings", run.failed)
	}
	// Fair share, concretely: alice's third job was queued before
	// carol's first, but carol — holding none of the fleet — starts
	// first. No starvation: both finished (checked above).
	a3, c1 := subs[3].view, subs[4].view
	if !c1.StartedAt.Before(a3.StartedAt) {
		return nil, fmt.Errorf("fair share violated: carol started %v, alice's third %v",
			c1.StartedAt, a3.StartedAt)
	}

	// The byte-identity check (DESIGN.md invariant 10): replay each
	// submission's exact wire bytes on a local testbed and compare
	// digests. Only the app factory — fixed platform-side by the
	// registry, never by the bytes — is re-attached.
	fmt.Fprintf(w, "# local replays\n")
	run.digestMatch = 1
	for i, sub := range subs {
		back, err := splay.UnmarshalScenario(sub.bytes)
		if err != nil {
			return nil, err
		}
		back.Apps[0].New = hostChordApp
		lres, err := back.Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("local replay %s: %w", sub.series, err)
		}
		local := fmt.Sprintf("deployed=%d lookups=%d failed=%d",
			len(lres.Jobs[0].Deployed),
			lres.Metrics.Counter(sub.series+".lookups"),
			lres.Metrics.Counter(sub.series+".failed"))
		match := local == hostedDigests[i]
		if !match {
			run.digestMatch = 0
		}
		fmt.Fprintf(w, "%-4s hosted{%s} local{%s} match=%v\n", sub.series, hostedDigests[i], local, match)
	}
	if run.digestMatch != 1 {
		return nil, errors.New("hosted results diverge from local replays of the same bytes")
	}
	return run, nil
}
