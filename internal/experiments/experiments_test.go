package experiments

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/topology"
)

// The experiment suite at small scale: every experiment must run and
// reproduce the paper's qualitative shape. Magnitude checks are loose —
// EXPERIMENTS.md records full-scale numbers.

func run(t *testing.T, id string, scale float64) *Result {
	t.Helper()
	var sb strings.Builder
	res, err := Run(id, Options{Scale: scale, Seed: 11, Out: &sb})
	if err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", id, err, sb.String())
	}
	if sb.Len() == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return res
}

func TestUnknownExperiment(t *testing.T) {
	t.Parallel()
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(IDs()) < 14 {
		t.Fatalf("registered experiments = %v", IDs())
	}
}

func TestFig3Shape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig3", 0.2)
	if p := res.Metrics["p_under_250ms"]; p < 0.12 || p > 0.22 {
		t.Errorf("P(≤250ms) = %.3f, paper: 0.171", p)
	}
	if p := res.Metrics["p_over_1s"]; p < 0.38 || p > 0.55 {
		t.Errorf("P(>1s) = %.3f, paper: ≈0.45", p)
	}
}

func TestFig4Shape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig4", 1)
	if res.Metrics["pop_after_join"] != 10 {
		t.Errorf("initial join population = %v", res.Metrics["pop_after_join"])
	}
	if res.Metrics["pop_final"] != 0 {
		t.Errorf("final population = %v", res.Metrics["pop_final"])
	}
	if res.Metrics["pop_peak"] < 18 || res.Metrics["pop_peak"] > 24 {
		t.Errorf("peak population = %v, want ≈20", res.Metrics["pop_peak"])
	}
}

func TestTab1Shape(t *testing.T) {
	t.Parallel()
	res := run(t, "tab1", 1)
	if res.Metrics["chord"] <= 0 || res.Metrics["pastry"] <= 0 {
		t.Fatal("missing protocol counts")
	}
	if res.Metrics["chord"] >= res.Metrics["pastry"] {
		t.Errorf("chord (%v) should be smaller than pastry (%v), as in the paper",
			res.Metrics["chord"], res.Metrics["pastry"])
	}
}

func TestFig6aShape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig6a", 0.12)
	for _, n := range []int{300, 500, 1000} {
		mean := res.Metrics[sprintf("mean_hops_%d", n)]
		bound := res.Metrics[sprintf("bound_%d", n)]
		if mean <= 0 || mean > bound+1.5 {
			t.Errorf("%d nodes: mean hops %.2f vs ½log2N %.2f", n, mean, bound)
		}
	}
}

func TestFig6cShape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig6c", 0.15)
	// MIT (latency-aware) must beat plain SPLAY Chord on delay.
	if res.Metrics["mit_median_ms"] >= res.Metrics["splay_median_ms"] {
		t.Errorf("mit median %.0fms not below splay %.0fms",
			res.Metrics["mit_median_ms"], res.Metrics["splay_median_ms"])
	}
}

func TestFig7aShape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig7a", 0.25)
	if res.Metrics["freepastry_median_ms"] <= res.Metrics["splay_median_ms"] {
		t.Errorf("freepastry median %.0fms not above splay %.0fms",
			res.Metrics["freepastry_median_ms"], res.Metrics["splay_median_ms"])
	}
}

func TestFig8Shape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig8", 1)
	if res.Metrics["swap_onset"] != 1263 {
		t.Errorf("swap onset = %v, paper: 1263", res.Metrics["swap_onset"])
	}
	if m := res.Metrics["mem_per_instance_mb"]; m < 1.0 || m > 2.0 {
		t.Errorf("mem/instance = %.2f MB, paper: <1.5 MB", m)
	}
}

func TestFig12Shape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig12", 0.3)
	// Larger supersets deploy faster (or equal), and deployment times sit
	// in the paper's 0–10 s band.
	for _, req := range []int{100, 300} {
		t110 := res.Metrics[sprintf("t_%d_110", req)]
		t200 := res.Metrics[sprintf("t_%d_200", req)]
		if t200 > t110+0.5 {
			t.Errorf("req=%d: 200%% superset (%.1fs) slower than 110%% (%.1fs)", req, t200, t110)
		}
		if t110 <= 0 || t110 > 12 {
			t.Errorf("req=%d: deployment time %.1fs outside Fig. 12 band", req, t110)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	t.Parallel()
	res := run(t, "fig13", 0.25)
	for _, label := range []string{"splay-16KB", "splay-128KB", "splay-512KB",
		"crcp-16KB", "crcp-128KB", "crcp-512KB"} {
		if res.Metrics[label+"_completed"] <= 0 {
			t.Errorf("%s: no completions", label)
		}
	}
	// SPLAY and CRCP finish in the same ballpark (paper: similar results).
	sp := res.Metrics["splay-128KB_last_s"]
	cr := res.Metrics["crcp-128KB_last_s"]
	if sp <= 0 || cr <= 0 || sp > cr*2 || cr > sp*2 {
		t.Errorf("last completions diverge: splay=%.0fs crcp=%.0fs", sp, cr)
	}
}

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

func TestFig10Shape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy churn experiment")
	}
	res := run(t, "fig10", 0.08)
	if res.Metrics["fail_pct_peak"] < 10 {
		t.Errorf("failure peak %.1f%% too low: massive failure must be visible", res.Metrics["fail_pct_peak"])
	}
	if res.Metrics["fail_pct_end"] > res.Metrics["fail_pct_peak"]/2 {
		t.Errorf("failures did not recover: peak %.1f%%, end %.1f%%",
			res.Metrics["fail_pct_peak"], res.Metrics["fail_pct_end"])
	}
}

func TestFig14Shape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy cache experiment")
	}
	res := run(t, "fig14", 0.16)
	// Small scale lowers the achievable ratio; full scale lands near the
	// paper's 77.6% (see EXPERIMENTS.md). Here: stable and substantial.
	if hr := res.Metrics["steady_hit_pct"]; hr < 40 || hr > 98 {
		t.Errorf("steady hit ratio %.1f%% implausible", hr)
	}
	if res.Metrics["p75_ms"] <= 0 {
		t.Error("no delay percentile recorded")
	}
}

func TestFig9Shape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy three-testbed experiment")
	}
	res := run(t, "fig9", 0.12)
	pl := res.Metrics["planetlab_median_ms"]
	mn := res.Metrics["modelnet_median_ms"]
	mx := res.Metrics["mixed_median_ms"]
	if pl <= 0 || mn <= 0 || mx <= 0 {
		t.Fatalf("missing medians: pl=%v mn=%v mixed=%v", pl, mn, mx)
	}
	// The mixed deployment's delays lie between the two pure testbeds'.
	lo, hi := pl, mn
	if lo > hi {
		lo, hi = hi, lo
	}
	if mx < lo*0.7 || mx > hi*1.3 {
		t.Errorf("mixed median %vms outside [%v, %v]ms band", mx, lo, hi)
	}
}

func TestCtlplaneShape(t *testing.T) {
	t.Parallel()
	res := run(t, "ctlplane", 0.05)
	for _, pop := range []int{100, 500, 1000, 2000, 5000} {
		p50 := res.Metrics[fmt.Sprintf("p50_s_%d", pop)]
		p90 := res.Metrics[fmt.Sprintf("p90_s_%d", pop)]
		sub := res.Metrics[fmt.Sprintf("submit_s_%d", pop)]
		if p50 <= 0 || p90 < p50 || sub < p90 {
			t.Errorf("pop %d: implausible percentiles p50=%v p90=%v submit=%v", pop, p50, p90, sub)
		}
		// REGISTER superset (1.25) + LIST + START per deployed node, plus
		// FREEs and a small ping share: well under 10 frames per node.
		fpn := res.Metrics[fmt.Sprintf("frames_per_node_%d", pop)]
		if fpn < 3 || fpn > 10 {
			t.Errorf("pop %d: frames/node = %v, want ≈3.5", pop, fpn)
		}
	}
}

func TestLookup10kShape(t *testing.T) {
	t.Parallel()
	res := run(t, "lookup10k", 0.02)
	for _, pop := range []int{2000, 5000, 10000} {
		hops := res.Metrics[fmt.Sprintf("mean_hops_%d", pop)]
		if hops <= 1 || hops > 8 {
			t.Errorf("pop %d: mean hops %.2f implausible for Chord", pop, hops)
		}
		if res.Metrics[fmt.Sprintf("p90_ms_%d", pop)] < res.Metrics[fmt.Sprintf("p50_ms_%d", pop)] {
			t.Errorf("pop %d: p90 below p50", pop)
		}
		if res.Metrics[fmt.Sprintf("fails_%d", pop)] != 0 {
			t.Errorf("pop %d: lookups failed on a converged ring", pop)
		}
	}
	// Route length grows with population (the log N law the paper checks).
	if res.Metrics["mean_hops_10000"] <= res.Metrics["mean_hops_2000"] {
		t.Errorf("hops did not grow with population: %v vs %v",
			res.Metrics["mean_hops_10000"], res.Metrics["mean_hops_2000"])
	}
}

// TestLookup10kFullPopulation pins the headline capability at paper-plus
// scale: a converged 10,000-node Chord ring resolves lookups with the
// expected ½·log₂N routes. Skipped in -short; the full run also anchors
// the EXPERIMENTS.md numbers.
func TestLookup10kFullPopulation(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("10,000-host simulation")
	}
	n := 10000
	mn := topology.NewModelNet(topology.DefaultModelNet(n))
	run, err := runChord(mn, n, chord.DefaultConfig(), n, 2009, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.fails != 0 {
		t.Fatalf("%d lookups failed on a converged ring", run.fails)
	}
	if got, bound := run.hops.Mean(), 0.5*log2(float64(n)); got <= 1 || got > bound+1.5 {
		t.Fatalf("mean hops %.2f outside the ½·log₂N envelope (%.2f)", got, bound)
	}
}

// TestCtlplaneDeploys5000Daemons pins the headline capability: the
// control plane deploys a job across a 5,000-daemon simulated testbed.
func TestCtlplaneDeploys5000Daemons(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full-population control-plane run")
	}
	run, err := runCtlplane(5000, 3000, 2009)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.delays) != 3000 {
		t.Fatalf("deployed %d instances, want 3000", len(run.delays))
	}
	p := pctiles(run.delays)
	if p[2] <= 0 || run.submit < p[4] {
		t.Fatalf("implausible deployment times: p50=%v p90=%v submit=%v", p[2], p[4], run.submit)
	}
}

// TestObsplaneShape checks the observability plane's small-scale run:
// every stream reports, the fleet accounting matches, and lookups
// resolve with Chord's expected route lengths — all read through the
// aggregator, not from in-process state.
func TestObsplaneShape(t *testing.T) {
	t.Parallel()
	res := run(t, "obsplane", 0.05)
	if res.Metrics["failed_lookups"] != 0 {
		t.Errorf("%v lookups failed on a converged ring", res.Metrics["failed_lookups"])
	}
	n := res.Metrics["nodes"]
	if res.Metrics["lookups"] != 2*n {
		t.Errorf("aggregated %v lookups, want %v", res.Metrics["lookups"], 2*n)
	}
	if res.Metrics["jobs_started"] != n {
		t.Errorf("fleet accounting %v, want %v", res.Metrics["jobs_started"], n)
	}
	hops := res.Metrics["mean_hops"]
	if hops <= 1 || hops > 0.5*log2(n)+1.5 {
		t.Errorf("mean hops %.2f outside the ½·log₂N envelope", hops)
	}
	// ACME-style overhead: the monitoring bill stays at a handful of
	// frames per node per second (the acceptance bound is "a few").
	if f := res.Metrics["frames_per_node_s"]; f <= 0 || f > 3 {
		t.Errorf("report load %.3f frames/node/s outside (0, 3]", f)
	}
}

// TestObsplane5000Daemons pins the headline capability: instrumented
// Chord deployed onto a 5,000-daemon simulated testbed with every
// instance streaming to the aggregator, monitoring overhead bounded.
func TestObsplane5000Daemons(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full-population observability run")
	}
	run, err := runObsplane(io.Discard, 5000, 3000, 2009)
	if err != nil {
		t.Fatal(err)
	}
	if run.lookups != 6000 || run.failed != 0 {
		t.Fatalf("lookups %v (failed %v), want 6000/0", run.lookups, run.failed)
	}
	if run.jobsStarted != 3000 {
		t.Fatalf("fleet accounting %v, want 3000", run.jobsStarted)
	}
	if run.meanHops <= 1 || run.meanHops > 0.5*log2(3000)+1.5 {
		t.Fatalf("mean hops %.2f outside the ½·log₂N envelope", run.meanHops)
	}
	if run.framesPerNodeSec <= 0 || run.framesPerNodeSec > 3 {
		t.Fatalf("report load %.3f frames/node/s outside (0, 3]", run.framesPerNodeSec)
	}
}
