package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/memprof"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/transport"
)

func init() {
	register("lookup100k", lookup100k)
}

// lookup100kParts is the partition count of the sharded kernel. It is part
// of the scenario definition — changing it changes host placement and hence
// the event schedule — while Workers (the thread count) never does.
const lookup100kParts = 8

// runChordPar is runChord over a sharded kernel: hosts land on partitions
// by ID, each partition runs its own sub-kernel, and cross-partition RPCs
// ride the lookahead barriers. Node construction and ID assignment are
// byte-compatible with runChord (same rng, same draw order); the schedule
// itself is a different — but equally deterministic — interleaving, fixed
// by the partition count and independent of the worker count.
func runChordPar(pk *sim.ParKernel, model simnet.LinkModel, n int, cfg chord.Config,
	lookups int, seed int64) (*chordRun, error) {
	run, _, err := runChordParProf(pk, model, n, cfg, lookups, seed, nil)
	return run, err
}

// runChordParProf is runChordPar with an optional footprint accountant:
// when acct is non-nil the network, protocol and RPC layers register
// their byte sources on it, the kernel samples the heap at every
// lookahead barrier, and the returned report measures the live system —
// taken while every node is still reachable. The accountant only reads
// memory statistics, so the schedule (and every golden) is identical
// with or without it.
func runChordParProf(pk *sim.ParKernel, model simnet.LinkModel, n int, cfg chord.Config,
	lookups int, seed int64, acct *memprof.Accountant) (*chordRun, memprof.Report, error) {

	var rep memprof.Report
	nw, err := simnet.NewPartitioned(pk, model, n, seed)
	if err != nil {
		return nil, rep, err
	}
	parts := pk.Parts()
	rts := make([]*core.SimRuntime, parts)
	for p := range rts {
		rts[p] = core.NewSimRuntime(pk.Sub(p), seed+int64(p))
	}
	rng := rand.New(rand.NewSource(seed))

	// Identifiers and addresses are drawn before any node exists — the
	// same rng, the same draw order — so the whole population is known
	// upfront and its intern base can be built once and shared read-only
	// by every partition's routing tables (see chord.Shared).
	seen := make(map[uint64]bool, n)
	addrs := make([]transport.Addr, n)
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		addrs[i] = transport.Addr{Host: simnet.HostName(i), Port: 8000}
		for {
			id := rng.Uint64() & ((1 << cfg.Bits) - 1)
			if !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	base := chord.Population(cfg, addrs, ids)
	shareds := make([]*chord.Shared, parts)
	for p := range shareds {
		shareds[p] = chord.NewShared(base)
	}
	nodes := make([]*chord.Node, 0, n)
	for i := 0; i < n; i++ {
		h := nw.Host(i)
		ctx := core.NewAppContext(rts[h.Part()], nw.Node(i), core.JobInfo{Me: addrs[i], Position: i + 1}, nil)
		c := cfg
		c.ID = &ids[i]
		c.Shared = shareds[h.Part()]
		node, err := chord.New(ctx, c)
		if err != nil {
			return nil, rep, err
		}
		nodes = append(nodes, node)
	}
	startErrs := make([]error, parts)
	for p := 0; p < parts; p++ {
		p := p
		pk.Go(p, func() {
			for i := p; i < n; i += parts {
				if err := nodes[i].Start(); err != nil {
					startErrs[p] = err
					return
				}
			}
		})
	}
	if acct != nil {
		acct.Track("simnet", nw.FootprintBytes)
		acct.Track("chord.ring", func() uint64 {
			b := base.Bytes()
			for _, s := range shareds {
				b += s.Bytes()
			}
			return b
		})
		pk.SetBarrierHook(acct.Observe)
	}
	pk.Run()
	for _, err := range startErrs {
		if err != nil {
			return nil, rep, err
		}
	}
	if err := chord.BuildRing(nodes, chord.BuildOptions{}); err != nil {
		return nil, rep, err
	}

	// Per-partition collectors: each is touched only by its partition's
	// tasks, then merged in partition order so the aggregate is identical
	// under any worker count.
	runs := make([]*chordRun, parts)
	for p := range runs {
		runs[p] = &chordRun{hops: &stats.IntHistogram{}}
	}
	perNode := lookups / n
	if perNode < 1 {
		perNode = 1
	}
	for i := range nodes {
		node := nodes[i]
		part := nw.Host(i).Part()
		start := time.Duration(rng.Intn(10000)) * time.Millisecond
		pk.GoAfter(part, start, func() {
			lrng := rand.New(rand.NewSource(seed + int64(node.Self().ID)))
			for j := 0; j < perNode; j++ {
				key := lrng.Uint64() & ((1 << cfg.Bits) - 1)
				res, err := node.Lookup(key)
				if err != nil {
					runs[part].fails++
					continue
				}
				runs[part].hops.Add(res.Hops)
				runs[part].delays = append(runs[part].delays, res.RTT)
			}
		})
	}
	pk.Run()

	merged := &chordRun{hops: &stats.IntHistogram{}}
	for _, r := range runs {
		merged.hops.Merge(r.hops)
		merged.delays = append(merged.delays, r.delays...)
		merged.fails += r.fails
		r.hops, r.delays = nil, nil
	}
	if acct != nil {
		// Measure while every node, connection and intern table is still
		// reachable; only the per-run result data has been dropped.
		runs = nil
		rep = acct.Report(n)
		runtime.KeepAlive(nodes)
		runtime.KeepAlive(nw)
	}
	return merged, rep, nil
}

// lookup100k pushes Chord another order of magnitude past lookup10k:
// converged rings of 25,000, 50,000 and 100,000 nodes on the ModelNet
// transit-stub model, one lookup per node, on an 8-way sharded kernel
// with conservative lookahead equal to the model's minimum link delay.
// The experiment exists to prove the sharded kernel at populations no
// single event loop should own — and to pin, via the golden suite, that
// its results never depend on how many OS threads drive it.
func lookup100k(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("lookup100k")
	fmt.Fprintf(w, "# lookup100k — Chord at 100k hosts (%d-way sharded kernel)\n", lookup100kParts)
	fmt.Fprintf(w, "%-8s %9s %9s %9s %9s %9s %7s\n",
		"nodes", "p5", "p50", "p90", "mean-hops", "bound", "fails")
	for _, full := range []int{25000, 50000, 100000} {
		n := opt.n(full, 96)
		mn := topology.NewModelNet(topology.DefaultModelNet(n))
		pk := sim.NewParKernel(lookup100kParts, opt.Workers, mn.MinDelay())
		run, err := runChordPar(pk, mn, n, chord.DefaultConfig(), opt.n(full, n), opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("lookup100k %d nodes: %w", n, err)
		}
		sorted := run.delays.Sorted()
		p5, p50, p90 := sorted.Percentile(5), sorted.Percentile(50), sorted.Percentile(90)
		fmt.Fprintf(w, "%-8d %9s %9s %9s %9.2f %9.2f %7d\n",
			n, r(p5), r(p50), r(p90), run.hops.Mean(), 0.5*log2(float64(n)), run.fails)
		res.Metrics[fmt.Sprintf("p50_ms_%d", full)] = float64(p50.Milliseconds())
		res.Metrics[fmt.Sprintf("p90_ms_%d", full)] = float64(p90.Milliseconds())
		res.Metrics[fmt.Sprintf("mean_hops_%d", full)] = run.hops.Mean()
		res.Metrics[fmt.Sprintf("fails_%d", full)] = float64(run.fails)
	}
	return res, nil
}
