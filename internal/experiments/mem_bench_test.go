package experiments

import (
	"testing"
)

// BenchmarkMemFootprint10k is the memory plane's CI smoke: a converged
// 10,000-node Chord ring on the 8-way sharded kernel, one lookup per
// node, measured live-heap-per-instance. The custom metrics feed
// BENCH_mem.json; the ci job gates B/inst against the pinned budget the
// same way the alloc gates pin the latency planes. Run with
// -benchtime 1x — the figure is a footprint, not a throughput.
func BenchmarkMemFootprint10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, run, err := chordFootprint(10000, lookup100kParts, 1, 2009)
		if err != nil {
			b.Fatal(err)
		}
		if run.fails > 0 {
			b.Fatalf("footprint smoke: %d failed lookups", run.fails)
		}
		b.ReportMetric(rep.PerInstance(), "B/inst")
		b.ReportMetric(float64(rep.HeapBytes)/(1<<20), "MB-live")
		b.ReportMetric(float64(rep.PeakBytes)/(1<<20), "MB-peak")
		b.Log("\n" + rep.String())
	}
}

// TestMemFootprintSmall keeps the footprint harness itself honest in the
// ordinary test run: a small ring must produce a coherent report (layers
// don't exceed the total, lookups succeed).
func TestMemFootprintSmall(t *testing.T) {
	rep, run, err := chordFootprint(256, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if run.fails > 0 {
		t.Fatalf("%d failed lookups", run.fails)
	}
	if rep.Instances != 256 {
		t.Fatalf("instances = %d, want 256", rep.Instances)
	}
	if rep.HeapBytes == 0 {
		t.Fatal("footprint report measured zero heap growth")
	}
	var layers uint64
	for _, l := range rep.Layers {
		layers += l.Bytes
	}
	if layers > rep.HeapBytes {
		t.Fatalf("layer sources claim %d bytes, more than the %d measured", layers, rep.HeapBytes)
	}
}
