package experiments

import (
	"fmt"

	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/topology"
)

func init() {
	register("lookup10k", lookup10k)
}

// lookup10k pushes the paper's headline Chord deployment (§5: 1,100
// hosts on ModelNet) an order of magnitude past testbed scale: converged
// rings of 2,000, 5,000 and 10,000 nodes on the ModelNet transit-stub
// model, two lookups per node from random sources. It exists to exercise
// the message plane at populations where the RPC envelope cost, not the
// kernel, bounds wall-clock time — the workload BENCH_rpc.json's fast
// path is accountable to. Reported per population: route-length mean
// against the ½·log₂N bound and lookup-delay percentiles.
func lookup10k(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("lookup10k")
	fmt.Fprintf(w, "# lookup10k — Chord beyond testbed scale (ModelNet model)\n")
	fmt.Fprintf(w, "%-8s %9s %9s %9s %9s %9s %7s\n",
		"nodes", "p5", "p50", "p90", "mean-hops", "bound", "fails")
	for _, full := range []int{2000, 5000, 10000} {
		n := opt.n(full, 60)
		mn := topology.NewModelNet(topology.DefaultModelNet(n))
		run, err := runChord(mn, n, chord.DefaultConfig(), opt.n(2*full, n), opt.Seed, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("lookup10k %d nodes: %w", n, err)
		}
		sorted := run.delays.Sorted()
		p5, p50, p90 := sorted.Percentile(5), sorted.Percentile(50), sorted.Percentile(90)
		fmt.Fprintf(w, "%-8d %9s %9s %9s %9.2f %9.2f %7d\n",
			n, r(p5), r(p50), r(p90), run.hops.Mean(), 0.5*log2(float64(n)), run.fails)
		res.Metrics[fmt.Sprintf("p50_ms_%d", full)] = float64(p50.Milliseconds())
		res.Metrics[fmt.Sprintf("p90_ms_%d", full)] = float64(p90.Milliseconds())
		res.Metrics[fmt.Sprintf("mean_hops_%d", full)] = run.hops.Mean()
		res.Metrics[fmt.Sprintf("fails_%d", full)] = float64(run.fails)
	}
	return res, nil
}
