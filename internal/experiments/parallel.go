package experiments

import (
	"bytes"
	"runtime"
	"sync"
	"time"
)

// Each simulation kernel is single-threaded and deterministic, and distinct
// experiment runs share no mutable state, so a sweep over (id, scale, seed)
// combinations is embarrassingly parallel: RunParallel shards runs across
// GOMAXPROCS workers while keeping outputs and results in submission order,
// byte-identical to a serial sweep.

// Spec names one experiment run for RunParallel.
type Spec struct {
	ID  string
	Opt Options
}

// Outcome is one completed run. Output holds the rows the experiment wrote
// (Spec.Opt.Out is ignored by RunParallel: every run gets a private buffer
// so concurrent runs cannot interleave their rows).
type Outcome struct {
	ID      string
	Res     *Result
	Err     error
	Output  []byte
	Elapsed time.Duration
}

// RunParallel executes specs across at most workers goroutines (workers <= 0
// means GOMAXPROCS) and returns outcomes in the order the specs were given.
// Each run is itself a fully serial, deterministic simulation; parallelism
// changes wall-clock time only, never results.
func RunParallel(specs []Spec, workers int) []Outcome {
	out := make([]Outcome, len(specs))
	RunParallelFunc(specs, workers, func(i int, oc Outcome) { out[i] = oc })
	return out
}

// RunParallelFunc is RunParallel with streaming delivery: onDone is invoked
// once per spec as that run completes — in completion order, possibly
// concurrently from several workers — with the spec's index. Callers that
// need submission order (progress output, fail-fast) reorder with a cursor.
func RunParallelFunc(specs []Spec, workers int, onDone func(i int, oc Outcome)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if len(specs) == 0 {
		return
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				spec := specs[i]
				var buf bytes.Buffer
				spec.Opt.Out = &buf
				start := time.Now()
				res, err := Run(spec.ID, spec.Opt)
				onDone(i, Outcome{
					ID:      spec.ID,
					Res:     res,
					Err:     err,
					Output:  buf.Bytes(),
					Elapsed: time.Since(start),
				})
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
}
