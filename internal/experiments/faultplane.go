package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/rpc"
)

func init() {
	register("faultplane", faultplane)
}

// Fault-plane experiment parameters.
const (
	fpKey         = "faults"          // stream authentication key
	fpReportEvery = 5 * time.Second   // per-node delta report period
	fpBits        = 40                // ring bits: collision-safe
	fpLookupEvery = 10 * time.Second  // per-node lookup period
	fpRounds      = 24                // lookups per node (240 s workload)
	fpPartitionAt = 60 * time.Second  // cut time on the plan's clock
	fpRPCTimeout  = 3 * time.Second   // fast suspicion under partition
	fpWatchEvery  = 15 * time.Second  // progress rows
	fpWindow      = 300 * time.Second // sampled run window after arming
)

// faultplane is the fault plane's end-to-end demonstration: a fault-
// tolerant Chord ring deployed on a simulated ModelNet testbed is cut in
// half by a declared partition while every node issues periodic lookups.
// A closed-loop trigger rule watches the aggregated failed-lookup rate
// and heals the partition once failures sustain — the control loop runs
// over the same REGISTER/LIST/START machinery and telemetry plane every
// other experiment uses. Assertions turn the run into a pass/fail gate:
// the partition must bite (failures observed) and lookups must
// reconverge (the failure rate must return under threshold and stay
// there through the end of the run).
//
// The experiment reports the closed-loop timeline: when the rule fired,
// when the last failure was observed, and the reconvergence lag between
// the two.
func faultplane(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("faultplane")
	daemons := opt.n(2500, 125)
	nodes := daemons * 4 / 5
	run, err := runFaultplane(w, daemons, nodes, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("faultplane %d daemons: %w", daemons, err)
	}

	fmt.Fprintf(w, "# summary\n")
	fmt.Fprintf(w, "%-26s %12.0f\n", "lookups", run.lookups)
	fmt.Fprintf(w, "%-26s %12.0f\n", "failed lookups", run.failed)
	fmt.Fprintf(w, "%-26s %12.1fs\n", "heal fired at", run.healS)
	fmt.Fprintf(w, "%-26s %12.1fs\n", "last failure seen at", run.lastFailS)
	fmt.Fprintf(w, "%-26s %12.1fs\n", "reconvergence lag", run.reconvergeS)

	res.Metrics["daemons"] = float64(daemons)
	res.Metrics["nodes"] = float64(nodes)
	res.Metrics["lookups"] = run.lookups
	res.Metrics["failed_lookups"] = run.failed
	res.Metrics["retries"] = run.retries
	res.Metrics["heal_fires"] = run.healFires
	res.Metrics["heal_s"] = run.healS
	res.Metrics["last_failure_s"] = run.lastFailS
	res.Metrics["reconverge_s"] = run.reconvergeS
	return res, nil
}

// faultplaneRun carries one run's closed-loop timeline.
type faultplaneRun struct {
	lookups     float64
	failed      float64
	retries     float64
	healFires   float64
	healS       float64
	lastFailS   float64
	reconvergeS float64
}

// runFaultplane provisions, deploys, arms the plan and drives the
// workload. Everything rides the scenario SDK: the plan and assertions
// are declared on the Scenario; the experiment only supplies the
// workload and reads the outcome.
func runFaultplane(w io.Writer, daemons, nodes int, seed int64) (*faultplaneRun, error) {
	var chordNodes []*chord.Node
	sc := splay.Scenario{
		Name:            "faultplane",
		Seed:            seed,
		Testbed:         splay.ModelNet(daemons),
		RegisterTimeout: 60 * time.Second,
		Collect: splay.Collect{
			Metrics:     true,
			ReportEvery: fpReportEvery,
			Key:         fpKey,
		},
		Faults: splay.FaultPlan{
			Events: []splay.FaultEvent{
				splay.PartitionAt(fpPartitionAt, 0.5),
			},
			// Heal once the partition has demonstrably bitten: ten
			// observed failures, sustained two ticks. The trigger watches
			// the monotonic total, not the instantaneous rate — fault-
			// tolerant Chord reroutes around the cut within seconds, so
			// the rate spikes and collapses while the total holds.
			Rules: []splay.TriggerRule{{
				Name: "heal-on-failures",
				When: splay.Metric("chord.failed_lookups", splay.StatTotal, splay.Above, 10),
				For:  10 * time.Second,
				Do:   splay.TriggerAction{Kind: splay.ActHeal},
			}},
			EvalEvery: 5 * time.Second,
		},
		Assert: []splay.Assertion{
			splay.EventuallyHolds("partition-bites",
				splay.Metric("chord.failed_lookups", splay.StatTotal, splay.Above, 0), 0),
			splay.ConvergesWithin("lookups-reconverge",
				splay.Metric("chord.failed_lookups", splay.StatRate, splay.Below, 0.5), 0),
		},
		Apps: []splay.AppSpec{{
			Name:  "ftchord",
			Nodes: nodes,
			App: splay.AppFunc(func(env *splay.Env) error {
				ccfg := chord.FaultTolerantConfig()
				ccfg.Bits = fpBits
				ccfg.RPCTimeout = fpRPCTimeout
				node, err := chord.New(env.AppContext(), ccfg)
				if err != nil {
					return err
				}
				mreg := env.Metrics()
				node.SetInstruments(chord.NewInstruments(mreg))
				node.SetRPCInstruments(rpc.NewInstruments(mreg))
				if err := node.Start(); err != nil {
					return err
				}
				if err := env.StartReporting(); err != nil {
					return err
				}
				chordNodes = append(chordNodes, node)
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		return nil, err
	}
	defer sess.Stop()

	dep := sess.Deploy(sc.Apps[0])
	job, err := dep.Wait()
	if err != nil {
		return nil, err
	}
	if job.State != splay.JobRunning || len(chordNodes) != nodes {
		return nil, fmt.Errorf("deployed %d instances (state %s), want %d running",
			len(chordNodes), job.State, nodes)
	}
	tel := sess.Telemetry()

	// Converge the ring statically, then start the periodic lookup
	// workload (staggered so the aggregated rate is continuous) and arm
	// the plan: +0 on the plan's clock is "ring up, workload running".
	if err := chord.BuildRing(chordNodes, chord.BuildOptions{}); err != nil {
		return nil, err
	}
	remaining := nodes
	rng := rand.New(rand.NewSource(seed))
	for i := range chordNodes {
		node := chordNodes[i]
		start := time.Duration(rng.Intn(int(fpLookupEvery/time.Millisecond))) * time.Millisecond
		sess.GoAfter(start, func() {
			lrng := rand.New(rand.NewSource(seed + int64(node.Self().ID)))
			for j := 0; j < fpRounds; j++ {
				key := lrng.Uint64() & (1<<fpBits - 1)
				node.Lookup(key) //nolint:errcheck // failures land in the instruments
				sess.Sleep(fpLookupEvery)
			}
			remaining--
		})
	}
	armAt := sess.Now()
	if err := sess.ArmFaults(); err != nil {
		return nil, err
	}

	// Sample the closed loop: the aggregated failure counter's last
	// increase is the observable end of the disruption (cut-side nodes
	// deliver their partition-era deltas only after the heal reopens
	// their report streams).
	fmt.Fprintf(w, "%-8s %8s %9s %9s %9s\n", "t", "nodes", "lookups", "failed", "healed")
	var lastFail, prevFailed uint64
	lastFailAt := time.Duration(0)
	for t := fpReportEvery; t <= fpWindow; t += fpReportEvery {
		sess.RunFor(fpReportEvery)
		if f := tel.Counter("chord.failed_lookups"); f > prevFailed {
			prevFailed = f
			lastFail = f
			lastFailAt = sess.Now().Sub(armAt)
		}
		if t%fpWatchEvery == 0 {
			healed := 0
			if len(sess.Firings()) > 0 {
				healed = 1
			}
			fmt.Fprintf(w, "%-8s %8d %9d %9d %9d\n",
				sess.Now().Sub(armAt).Round(time.Second), tel.Nodes(),
				tel.Counter("chord.lookups"), tel.Counter("chord.failed_lookups"), healed)
		}
	}
	for i := 0; i < 30 && remaining > 0; i++ {
		sess.RunFor(10 * time.Second)
	}
	if remaining > 0 {
		return nil, fmt.Errorf("%d lookup drivers still running", remaining)
	}
	// Drain the report pipeline, then close the books: the final
	// assertion evaluation happens inside CheckAssertions.
	sess.RunFor(2*fpReportEvery + time.Second)

	fires := sess.Firings()
	if len(fires) != 1 {
		return nil, fmt.Errorf("heal rule fired %d times, want exactly once", len(fires))
	}
	healAt := fires[0].At.Sub(armAt)
	if healAt <= fpPartitionAt {
		return nil, fmt.Errorf("heal fired at +%s, before the partition at +%s", healAt, fpPartitionAt)
	}
	if err := sess.CheckAssertions(); err != nil {
		return nil, err
	}
	if lastFail == 0 {
		return nil, fmt.Errorf("partition caused no observed lookup failures")
	}
	if tel.Nodes() != nodes+1 {
		return nil, fmt.Errorf("%d streams reporting after the heal, want %d", tel.Nodes(), nodes+1)
	}

	run := &faultplaneRun{}
	run.lookups = float64(tel.Counter("chord.lookups"))
	run.failed = float64(tel.Counter("chord.failed_lookups"))
	run.retries = float64(tel.Counter("chord.retries"))
	run.healFires = float64(len(fires))
	run.healS = healAt.Seconds()
	run.lastFailS = lastFailAt.Seconds()
	run.reconvergeS = (lastFailAt - healAt).Seconds()
	return run, nil
}
