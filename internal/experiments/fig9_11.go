package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/churn"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/transport"
	"github.com/splaykit/splay/internal/workload"
)

func init() {
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
}

// fig9 reproduces Fig. 9: Pastry delay CDFs on PlanetLab, ModelNet and a
// mixed deployment spanning both (500 nodes on each side).
func fig9(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig9")
	n := opt.n(1000, 100)
	lookups := opt.n(4000, 400)

	plCfg := topology.DefaultPlanetLab(n)
	plCfg.Seed = opt.Seed

	run := func(label string, model simnet.LinkModel, proc simnet.ProcDelayFunc) (time.Duration, error) {
		delays, err := pastryOver(model, n, lookups, opt.Seed, proc)
		if err != nil {
			return 0, err
		}
		printCDF(w, label, delays, 10)
		return delays.Percentile(50), nil
	}

	fmt.Fprintf(w, "# Fig. 9 — Pastry on PlanetLab, ModelNet and mixed (%d nodes)\n", n)
	pl := topology.NewPlanetLab(plCfg)
	plMed, err := run("planetlab", pl, pl.ProcDelay)
	if err != nil {
		return nil, err
	}
	mn := topology.NewModelNet(topology.DefaultModelNet(n))
	mnMed, err := run("modelnet", mn, nil)
	if err != nil {
		return nil, err
	}
	plHalf := topology.NewPlanetLab(topology.PlanetLabConfig{Hosts: n / 2, Seed: opt.Seed, LossProb: 0.005})
	mnHalf := topology.NewModelNet(topology.DefaultModelNet(n - n/2))
	mixed := topology.NewMixed(plHalf, mnHalf, n/2, 60*time.Millisecond)
	mixProc := func(host, size int) time.Duration {
		if host < n/2 {
			return plHalf.ProcDelay(host, size)
		}
		return 0
	}
	mixMed, err := run("mixed", mixed, mixProc)
	if err != nil {
		return nil, err
	}

	res.Metrics["planetlab_median_ms"] = float64(plMed.Milliseconds())
	res.Metrics["modelnet_median_ms"] = float64(mnMed.Milliseconds())
	res.Metrics["mixed_median_ms"] = float64(mixMed.Milliseconds())
	return res, nil
}

// pastryOver measures a converged Pastry network over an arbitrary link
// model (no host-resource model).
func pastryOver(model simnet.LinkModel, n, lookups int, seed int64, proc simnet.ProcDelayFunc) (stats.Durations, error) {
	k := sim.NewKernel()
	nw := simnet.New(k, model, n, seed)
	if proc != nil {
		nw.SetProcDelay(proc)
	}
	rt := core.NewSimRuntime(k, seed)
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*pastry.Node, 0, n)
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
		cfg := pastry.DefaultConfig()
		id := pastry.ID(rng.Uint64())
		cfg.ID = &id
		nodes = append(nodes, pastry.New(ctx, cfg))
	}
	var startErr error
	k.Go(func() {
		for _, node := range nodes {
			if err := node.Start(); err != nil {
				startErr = err
				return
			}
		}
	})
	k.Run()
	if startErr != nil {
		return nil, startErr
	}
	if err := pastry.BuildNetwork(nodes, pastry.BuildOptions{Seed: seed}); err != nil {
		return nil, err
	}
	var delays stats.Durations
	perNode := lookups/n + 1
	for i := range nodes {
		node := nodes[i]
		k.GoAfter(time.Duration(rng.Intn(30000))*time.Millisecond, func() {
			lrng := rand.New(rand.NewSource(seed + int64(node.Self().ID)))
			for j := 0; j < perNode; j++ {
				if res, err := node.Route(pastry.ID(lrng.Uint64())); err == nil {
					delays = append(delays, res.RTT)
				}
			}
		})
	}
	k.Run()
	return delays, nil
}

// churnedPastry hosts a Pastry deployment whose membership the churn
// manager drives: slots map to sim hosts; stopped slots take their host
// down, started slots join through the protocol.
type churnedPastry struct {
	k     *sim.Kernel
	nw    *simnet.Network
	rt    *core.SimRuntime
	cfg   pastry.Config
	seed  int64
	rng   *rand.Rand
	nodes []*pastry.Node
	ctxs  []*core.AppContext
	alive []int
}

func newChurnedPastry(model simnet.LinkModel, slots int, cfg pastry.Config,
	seed int64, proc simnet.ProcDelayFunc) *churnedPastry {
	k := sim.NewKernel()
	nw := simnet.New(k, model, slots, seed)
	if proc != nil {
		nw.SetProcDelay(proc)
	}
	return &churnedPastry{
		k: k, nw: nw,
		rt:    core.NewSimRuntime(k, seed),
		cfg:   cfg,
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make([]*pastry.Node, slots),
		ctxs:  make([]*core.AppContext, slots),
	}
}

func (cp *churnedPastry) newNode(slot int) *pastry.Node {
	addr := transport.Addr{Host: simnet.HostName(slot), Port: 9000}
	ctx := core.NewAppContext(cp.rt, cp.nw.Node(slot), core.JobInfo{Me: addr}, nil)
	cfg := cp.cfg
	id := pastry.ID(cp.rng.Uint64())
	cfg.ID = &id
	n := pastry.New(ctx, cfg)
	cp.nodes[slot] = n
	cp.ctxs[slot] = ctx
	return n
}

// bootstrap statically builds the initial population and starts
// maintenance everywhere.
func (cp *churnedPastry) bootstrap(initial []int) error {
	var ns []*pastry.Node
	for _, slot := range initial {
		ns = append(ns, cp.newNode(slot))
		cp.alive = append(cp.alive, slot)
	}
	var startErr error
	cp.k.Go(func() {
		for _, n := range ns {
			if err := n.Start(); err != nil {
				startErr = err
				return
			}
		}
	})
	cp.k.Run()
	if startErr != nil {
		return startErr
	}
	if err := pastry.BuildNetwork(ns, pastry.BuildOptions{Seed: cp.seed}); err != nil {
		return err
	}
	cp.k.Go(func() {
		for _, n := range ns {
			n.StartMaintenance()
		}
	})
	return nil
}

// StartNode implements churn.NodeControl: bring the slot up and join via
// a random live seed.
func (cp *churnedPastry) StartNode(slot int) {
	cp.nw.Host(slot).SetDown(false)
	n := cp.newNode(slot)
	if err := n.Start(); err != nil {
		return
	}
	if len(cp.alive) > 0 {
		seed := cp.nodes[cp.alive[cp.rng.Intn(len(cp.alive))]]
		n.Join(seed.Self().Addr) //nolint:errcheck // churned joins may race failures
	}
	n.StartMaintenance()
	cp.alive = append(cp.alive, slot)
}

// StopNode implements churn.NodeControl. The host goes down before the
// context is killed so that, in silent-failure mode, peers observe no
// clean shutdown (no EOFs) — only timeouts.
func (cp *churnedPastry) StopNode(slot int) {
	cp.nw.Host(slot).SetDown(true)
	if cp.ctxs[slot] != nil {
		cp.ctxs[slot].Kill()
	}
	for i, s := range cp.alive {
		if s == slot {
			cp.alive = append(cp.alive[:i], cp.alive[i+1:]...)
			break
		}
	}
}

// liveNodes snapshots the live node set.
func (cp *churnedPastry) liveNodes() []*pastry.Node {
	out := make([]*pastry.Node, 0, len(cp.alive))
	for _, slot := range cp.alive {
		out = append(out, cp.nodes[slot])
	}
	return out
}

// sample issues one lookup from a random live node and classifies it.
func (cp *churnedPastry) sample() (ok bool, delay time.Duration, idle bool) {
	if len(cp.alive) < 2 {
		return false, 0, true
	}
	src := cp.nodes[cp.alive[cp.rng.Intn(len(cp.alive))]]
	key := pastry.ID(cp.rng.Uint64())
	res, err := src.Route(key)
	if err != nil {
		return false, 0, false
	}
	want := pastry.OwnerOf(cp.liveNodes(), key)
	if res.Root.Addr != want.Addr {
		return false, res.RTT, false
	}
	return true, res.RTT, false
}

// churnSeries runs periodic lookup sampling and aggregates per-bucket
// delays and failure rates.
type churnSeries struct {
	bucket   time.Duration
	delays   []stats.Durations
	ok, fail []int
}

func sampleLoop(cp *churnedPastry, every, duration, bucket time.Duration, perTick int) *churnSeries {
	cs := &churnSeries{bucket: bucket}
	nBuckets := int(duration/bucket) + 1
	cs.delays = make([]stats.Durations, nBuckets)
	cs.ok = make([]int, nBuckets)
	cs.fail = make([]int, nBuckets)
	ticks := int(duration / every)
	for t := 0; t < ticks; t++ {
		at := time.Duration(t) * every
		cp.k.GoAfter(at, func() {
			for i := 0; i < perTick; i++ {
				start := cp.k.Since()
				ok, delay, idle := cp.sample()
				if idle {
					return
				}
				b := int(start / bucket)
				if b >= nBuckets {
					b = nBuckets - 1
				}
				if ok {
					cs.ok[b]++
					cs.delays[b] = append(cs.delays[b], delay)
				} else {
					cs.fail[b]++
				}
			}
		})
	}
	return cs
}

// fig10 reproduces Fig. 10: a 1,500-node Pastry overlay on the local
// cluster loses half its nodes at t = 5 min; route failures spike toward
// 50% and recover within about five minutes as repair converges.
func fig10(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig10")
	n := opt.n(1500, 120)

	cfg := pastry.DefaultConfig()
	cfg.RPCTimeout = 3 * time.Second
	cfg.MaintainEvery = 10 * time.Second
	cp := newChurnedPastry(simnet.Symmetric{RTT: 2 * time.Millisecond, Bps: 125e6}, n, cfg, opt.Seed, nil)
	// The massive failure models a severed inter-continental link: dead
	// nodes blackhole traffic, so detection costs full RPC timeouts.
	cp.nw.SetSilentFailures(true)
	initial := make([]int, n)
	for i := range initial {
		initial[i] = i
	}
	if err := cp.bootstrap(initial); err != nil {
		return nil, err
	}

	const duration = 10 * time.Minute
	series := sampleLoop(cp, time.Second, duration, 30*time.Second, opt.n(20, 4))

	// Massive failure at t = 5 min: half the network disappears.
	cp.k.GoAfter(5*time.Minute, func() {
		perm := cp.rng.Perm(len(cp.alive))
		var victims []int
		for _, i := range perm[:len(cp.alive)/2] {
			victims = append(victims, cp.alive[i])
		}
		for _, slot := range victims {
			cp.StopNode(slot)
		}
	})
	cp.k.RunFor(duration + time.Minute)

	fmt.Fprintf(w, "# Fig. 10 — massive failure: %d nodes, 50%% fail at 5m\n", n)
	fmt.Fprintf(w, "%-8s %8s %8s %10s %10s\n", "t", "ok", "fail", "fail%", "p50")
	var failBefore, failAfter, failEnd float64
	for b := range series.ok {
		tot := series.ok[b] + series.fail[b]
		if tot == 0 {
			continue
		}
		failPct := float64(series.fail[b]) / float64(tot) * 100
		med := series.delays[b].Percentile(50)
		fmt.Fprintf(w, "%-8s %8d %8d %9.1f%% %10s\n",
			time.Duration(b)*30*time.Second, series.ok[b], series.fail[b], failPct, r(med))
		switch {
		case b == 9: // just before the failure
			failBefore = failPct
		case b == 10 || b == 11: // right after
			if failPct > failAfter {
				failAfter = failPct
			}
		case b >= 19: // end of run
			failEnd = failPct
		}
	}
	res.Metrics["fail_pct_before"] = failBefore
	res.Metrics["fail_pct_peak"] = failAfter
	res.Metrics["fail_pct_end"] = failEnd
	return res, nil
}

// fig11 reproduces Fig. 11: Pastry on PlanetLab under the Overnet
// availability trace sped up 2×, 5× and 10×.
func fig11(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig11")
	target := opt.n(620, 80)

	ocfg := workload.DefaultOvernet()
	ocfg.Nodes = target
	ocfg.Seed = opt.Seed
	if opt.Scale < 1 {
		ocfg.Duration = time.Duration(float64(ocfg.Duration) * opt.Scale * 2)
		if ocfg.Duration < 10*time.Minute {
			ocfg.Duration = 10 * time.Minute
		}
	}
	base := workload.OvernetTrace(ocfg)

	for _, speed := range []float64{2, 5, 10} {
		tr := base.SpeedUp(speed)
		slots := tr.MaxSlot() + 1
		duration := tr.Duration() + time.Minute

		plCfg := topology.DefaultPlanetLab(slots)
		plCfg.Seed = opt.Seed
		pl := topology.NewPlanetLab(plCfg)

		cfg := pastry.DefaultConfig()
		cfg.RPCTimeout = 5 * time.Second
		cfg.MaintainEvery = 10 * time.Second
		cp := newChurnedPastry(pl, slots, cfg, opt.Seed, pl.ProcDelay)

		// Nodes already up at t≈0 bootstrap statically; later events are
		// replayed through the protocol.
		var initial []int
		var replay churn.Trace
		for _, e := range tr {
			if e.Action == churn.Join && e.At < time.Second {
				initial = append(initial, e.Node)
			} else {
				replay = append(replay, e)
			}
		}
		if err := cp.bootstrap(initial); err != nil {
			return nil, err
		}
		ex := churn.NewExecutor(cp.rt, replay, cp)
		cp.k.Go(ex.Run)

		series := sampleLoop(cp, 2*time.Second, duration, time.Minute, opt.n(10, 3))
		cp.k.RunFor(duration + time.Minute)

		pop, joins, leaves := tr.Population(time.Minute)
		fmt.Fprintf(w, "# Fig. 11 — Overnet churn ×%.0f (%d slots)\n", speed, slots)
		fmt.Fprintf(w, "%-8s %6s %6s %6s %8s %10s %10s\n",
			"minute", "pop", "join", "leave", "fail%", "p50", "p90")
		totOK, totFail := 0, 0
		for b := range series.ok {
			tot := series.ok[b] + series.fail[b]
			if tot == 0 {
				continue
			}
			totOK += series.ok[b]
			totFail += series.fail[b]
			p, j, l := 0, 0, 0
			if b < len(pop) {
				p, j, l = pop[b], joins[b], leaves[b]
			}
			sorted := series.delays[b].Sorted() // one sort, two percentiles
			fmt.Fprintf(w, "%-8d %6d %6d %6d %7.1f%% %10s %10s\n",
				b, p, j, l,
				float64(series.fail[b])/float64(tot)*100,
				r(sorted.Percentile(50)), r(sorted.Percentile(90)))
		}
		failRate := float64(totFail) / float64(totOK+totFail) * 100
		fmt.Fprintf(w, "overall failure rate ×%.0f: %.2f%%\n", speed, failRate)
		res.Metrics[fmt.Sprintf("fail_pct_x%.0f", speed)] = failRate
	}
	return res, nil
}
