package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

func init() {
	register("tab1", tab1)
}

// tab1 reproduces the §5.1 development-complexity table: lines of code
// for each protocol implemented on SPLAY. The paper counts Lua lines; we
// count non-blank, non-comment Go lines of each protocol package
// (excluding tests and static-build scaffolding, which exist only for
// experiment bootstrapping). Substrate reuse mirrors the paper: Scribe
// and the web cache sit on Pastry; SplitStream sits on Pastry and Scribe.
func tab1(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("tab1")
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return nil, fmt.Errorf("tab1: cannot locate source tree")
	}
	protoDir := filepath.Join(filepath.Dir(self), "..", "protocols")

	entries, err := os.ReadDir(protoDir)
	if err != nil {
		return nil, fmt.Errorf("tab1: %w (run from a source checkout)", err)
	}
	fmt.Fprintf(w, "# Table (§5.1) — protocol implementation sizes (Go NCLOC)\n")
	fmt.Fprintf(w, "%-16s %8s   %s\n", "protocol", "ncloc", "substrate")
	substrates := map[string]string{
		"scribe":      "pastry",
		"splitstream": "pastry, scribe",
		"webcache":    "pastry",
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n, err := countNCLOC(filepath.Join(protoDir, e.Name()))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-16s %8d   %s\n", e.Name(), n, substrates[e.Name()])
		res.Metrics[e.Name()] = float64(n)
	}
	return res, nil
}

// countNCLOC counts non-blank, non-comment lines across a package's
// non-test Go files.
func countNCLOC(dir string) (int, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, f := range files {
		name := f.Name()
		if f.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if name == "build.go" {
			continue // static-build scaffolding: experiment bootstrapping, not protocol
		}
		fh, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		sc := bufio.NewScanner(fh)
		inBlock := false
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			switch {
			case inBlock:
				if strings.Contains(line, "*/") {
					inBlock = false
				}
			case line == "" || strings.HasPrefix(line, "//"):
			case strings.HasPrefix(line, "/*"):
				if !strings.Contains(line, "*/") {
					inBlock = true
				}
			default:
				total++
			}
		}
		fh.Close()
		if err := sc.Err(); err != nil {
			return 0, err
		}
	}
	return total, nil
}
