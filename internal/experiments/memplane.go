package experiments

import (
	"github.com/splaykit/splay/internal/memprof"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/topology"
)

// chordFootprint is the memory plane's 10k-node smoke: build a converged
// Chord ring of n nodes on a parts-way sharded kernel (the lookup100k
// shape), run one lookup per node, and measure the live heap per
// instance while the whole system is still reachable. It is the
// denominator behind BENCH_mem.json and the ≥3× reduction gate; the
// lookup1m experiment is the same machinery at two more orders of
// magnitude.
func chordFootprint(n, parts, workers int, seed int64) (memprof.Report, *chordRun, error) {
	mn := topology.NewModelNet(topology.DefaultModelNet(n))
	pk := sim.NewParKernel(parts, workers, mn.MinDelay())
	acct := memprof.New()
	run, rep, err := runChordParProf(pk, mn, n, chord.DefaultConfig(), n, seed, acct)
	if err != nil {
		return memprof.Report{}, nil, err
	}
	return rep, run, nil
}
