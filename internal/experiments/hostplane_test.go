package experiments

import (
	"io"
	"testing"
)

// TestHostplaneShape checks the hosting plane's small-scale run: every
// admitted job finishes, both rejections are observed, every hosted
// digest matches its local replay, and the fair-share order is visible
// in the queue waits (carol's job, queued after alice's third, starts
// first because alice already holds more of the fleet).
func TestHostplaneShape(t *testing.T) {
	t.Parallel()
	res := run(t, "hostplane", 0.05)
	if res.Metrics["jobs_done"] != 5 {
		t.Errorf("jobs done = %v, want 5", res.Metrics["jobs_done"])
	}
	if res.Metrics["rejects"] != 2 {
		t.Errorf("rejects = %v, want 2 (quota + auth)", res.Metrics["rejects"])
	}
	if res.Metrics["digest_match"] != 1 {
		t.Error("hosted digests diverged from local replays")
	}
	if res.Metrics["failed_lookups"] != 0 {
		t.Errorf("%v lookups failed on converged hosted rings", res.Metrics["failed_lookups"])
	}
	want := res.Metrics["jobs_done"] * res.Metrics["job_nodes"] * hpRounds
	if res.Metrics["lookups"] != want {
		t.Errorf("lookups = %v, want %v", res.Metrics["lookups"], want)
	}
	if c, a := res.Metrics["wait_carol_s"], res.Metrics["wait_alice3_s"]; c <= 0 || a <= c {
		t.Errorf("fair share not visible: carol waited %.1fs, alice's third %.1fs", c, a)
	}
	// The first submission lands on an idle platform: its wait is pure
	// placement, well under a second.
	if w := res.Metrics["wait_first_s"]; w <= 0 || w > 1 {
		t.Errorf("first job's queue wait %.2fs, want sub-second placement", w)
	}
}

// TestHostplane5000Daemons pins the headline capability: the resident
// platform hosts three tenants' concurrent 500-node Chord scenarios on
// one shared 5,000-daemon simulated fleet, with quotas enforced and
// every job's result byte-identical to a local run of the same
// serialized scenario.
func TestHostplane5000Daemons(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full-population hosting run")
	}
	run, err := runHostplane(io.Discard, 5000, 500, 2009)
	if err != nil {
		t.Fatal(err)
	}
	if run.jobsDone != 5 || run.rejects != 2 {
		t.Fatalf("jobs done %v, rejects %v, want 5/2", run.jobsDone, run.rejects)
	}
	if run.digestMatch != 1 {
		t.Fatal("hosted digests diverged from local replays at full scale")
	}
	if run.lookups != 5*500*hpRounds || run.failed != 0 {
		t.Fatalf("lookups %v (failed %v), want %d/0", run.lookups, run.failed, 5*500*hpRounds)
	}
	if run.waitCarolS <= 0 || run.waitAlice3S <= run.waitCarolS {
		t.Fatalf("fair share not visible: carol %.1fs, alice's third %.1fs", run.waitCarolS, run.waitAlice3S)
	}
}
