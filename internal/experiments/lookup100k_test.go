package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/topology"
)

func TestLookup100kShape(t *testing.T) {
	t.Parallel()
	res := run(t, "lookup100k", 0.002)
	for _, pop := range []int{25000, 50000, 100000} {
		hops := res.Metrics[fmt.Sprintf("mean_hops_%d", pop)]
		if hops <= 1 || hops > 9 {
			t.Errorf("pop %d: mean hops %.2f implausible for Chord", pop, hops)
		}
		if res.Metrics[fmt.Sprintf("p90_ms_%d", pop)] < res.Metrics[fmt.Sprintf("p50_ms_%d", pop)] {
			t.Errorf("pop %d: p90 below p50", pop)
		}
		if res.Metrics[fmt.Sprintf("fails_%d", pop)] != 0 {
			t.Errorf("pop %d: lookups failed on a converged ring", pop)
		}
	}
}

// TestLookup100kWorkerNeutrality is invariant 9 at the experiment surface:
// the sharded-kernel experiment must produce byte-identical output and
// bit-identical metrics whether 1, 2 or 4 OS threads drive its partitions.
func TestLookup100kWorkerNeutrality(t *testing.T) {
	t.Parallel()
	var base bytes.Buffer
	ref, err := Run("lookup100k", Options{Scale: 0.002, Seed: 17, Out: &base, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		var out bytes.Buffer
		res, err := Run("lookup100k", Options{Scale: 0.002, Seed: 17, Out: &out, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base.Bytes(), out.Bytes()) {
			t.Errorf("workers=%d: output bytes differ from workers=1:\n--- w1 ---\n%s--- w%d ---\n%s",
				w, base.String(), w, out.String())
		}
		if len(res.Metrics) != len(ref.Metrics) {
			t.Fatalf("workers=%d: metric counts differ", w)
		}
		for k, v := range ref.Metrics {
			if res.Metrics[k] != v {
				t.Errorf("workers=%d: metric %s = %v, want %v", w, k, res.Metrics[k], v)
			}
		}
	}
}

// TestLookup100kFullPopulation is the headline capability this repo's
// sharded kernel exists for: a converged 100,000-node Chord ring — two
// orders of magnitude past the paper's 1,100-host testbed — resolving one
// lookup per node with the expected ½·log₂N routes. About three minutes
// single-threaded; extra cores shorten it without changing a single event
// (worker neutrality is pinned by the golden suite at small scale).
func TestLookup100kFullPopulation(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("100,000-host simulation")
	}
	n := 100000
	mn := topology.NewModelNet(topology.DefaultModelNet(n))
	pk := sim.NewParKernel(lookup100kParts, runtime.GOMAXPROCS(0), mn.MinDelay())
	run, err := runChordPar(pk, mn, n, chord.DefaultConfig(), n, 2009)
	if err != nil {
		t.Fatal(err)
	}
	if run.fails != 0 {
		t.Errorf("%d lookups failed on a converged ring", run.fails)
	}
	if got := run.hops.Total(); got != n {
		t.Errorf("completed %d lookups, want %d", got, n)
	}
	mean, bound := run.hops.Mean(), 0.5*log2(float64(n))
	if mean < bound*0.7 || mean > bound*1.3 {
		t.Errorf("mean route length %.2f outside ±30%% of ½·log2 N = %.2f", mean, bound)
	}
}
