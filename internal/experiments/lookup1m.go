package experiments

import (
	"fmt"

	"github.com/splaykit/splay/internal/memprof"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/topology"
)

func init() {
	register("lookup1m", lookup1m)
}

// lookup1mParts is the partition count of the sharded kernel. Like
// lookup100kParts it is part of the scenario definition — the schedule
// depends on it, never on the worker count.
const lookup1mParts = 16

// lookup1m is the memory plane's headline experiment: a converged Chord
// ring of one million nodes — two orders of magnitude past the paper's
// fig8 ceiling — on a 16-way sharded kernel, one lookup per node, with
// the footprint accountant measuring live bytes per instance while the
// whole ring is still reachable. The paper bounds a Pastry instance
// under 1.5 MB of splayd memory; the compact memory plane (interned
// routing refs, shared RPC fabric, lazy instruments) holds a Chord
// instance to a few KB, which is what makes the population fit one
// process. CI runs the 500k-node variant (TestLookup1mHalfMillion);
// EXPERIMENTS.md records the full-scale run.
//
// Footprint figures are printed to the output only: live-heap
// measurements depend on whatever else shares the process (the golden
// suite runs experiments concurrently), so the pinned Result.Metrics
// carry only schedule-determined numbers — lookup latency, hop counts
// and failures.
func lookup1m(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("lookup1m")
	const full = 1000000
	n := opt.n(full, 96)
	fmt.Fprintf(w, "# lookup1m — Chord at %d hosts (%d-way sharded kernel)\n", n, lookup1mParts)
	mn := topology.NewModelNet(topology.DefaultModelNet(n))
	pk := sim.NewParKernel(lookup1mParts, opt.Workers, mn.MinDelay())
	acct := memprof.New()
	run, rep, err := runChordParProf(pk, mn, n, chord.DefaultConfig(), n, opt.Seed, acct)
	if err != nil {
		return nil, fmt.Errorf("lookup1m %d nodes: %w", n, err)
	}
	sorted := run.delays.Sorted()
	p50, p90 := sorted.Percentile(50), sorted.Percentile(90)
	fmt.Fprintf(w, "%-8s %9s %9s %9s %9s %7s\n",
		"nodes", "p50", "p90", "mean-hops", "bound", "fails")
	fmt.Fprintf(w, "%-8d %9s %9s %9.2f %9.2f %7d\n",
		n, r(p50), r(p90), run.hops.Mean(), 0.5*log2(float64(n)), run.fails)
	fmt.Fprintf(w, "\n%s", rep.String())
	fmt.Fprintf(w, "paper fig8 bound: <1.5 MB/instance; measured %.0f B/instance (%.0fx headroom)\n",
		rep.PerInstance(), 1.5*(1<<20)/maxf(rep.PerInstance(), 1))
	res.Metrics["p50_ms"] = float64(p50.Milliseconds())
	res.Metrics["p90_ms"] = float64(p90.Milliseconds())
	res.Metrics["mean_hops"] = run.hops.Mean()
	res.Metrics["fails"] = float64(run.fails)
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
