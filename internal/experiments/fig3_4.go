package experiments

import (
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/churn"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/workload"
)

func init() {
	register("fig3", fig3)
	register("fig4", fig4)
}

// fig3 reproduces Fig. 3: the distribution of round-trip times for a
// 20 KB message over established TCP connections from the controller to
// PlanetLab hosts.
func fig3(opt Options) (*Result, error) {
	w := opt.out()
	hosts := opt.n(400, 40)
	cfg := topology.DefaultPlanetLab(hosts)
	cfg.Seed = opt.Seed
	pl := topology.NewPlanetLab(cfg)

	probes := opt.n(20000, 2000)
	samples := workload.ProbeSamples(probes, hosts, func(h int) time.Duration {
		return pl.ProbeDelay(h, 20<<10)
	})
	sorted := stats.Durations(samples).Sorted()
	frac := sorted.CDFAt
	fmt.Fprintf(w, "# Fig. 3 — controller→PlanetLab RTT, 20KB payload, %d hosts, %d probes\n", hosts, probes)
	for _, limit := range []time.Duration{
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
	} {
		fmt.Fprintf(w, "P(delay ≤ %8v) = %6.2f%%\n", limit, frac(limit)*100)
	}
	res := newResult("fig3")
	res.Metrics["p_under_250ms"] = frac(250 * time.Millisecond)
	res.Metrics["p_over_1s"] = 1 - frac(time.Second)
	res.Metrics["max_seconds"] = sorted[len(sorted)-1].Seconds()
	return res, nil
}

// fig4 reproduces Fig. 4: the example synthetic churn description, its
// per-minute joins/leaves and total node population.
func fig4(opt Options) (*Result, error) {
	w := opt.out()
	script, err := churn.ParseScript(churn.PaperScript)
	if err != nil {
		return nil, err
	}
	tr := churn.FromScript(script, opt.Seed)
	pop, joins, leaves := tr.Population(time.Minute)

	fmt.Fprintf(w, "# Fig. 4 — synthetic churn script (paper example)\n")
	fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "minute", "joins", "leaves", "total")
	for m := 0; m < len(pop); m++ {
		fmt.Fprintf(w, "%-8d %8d %8d %8d\n", m, joins[m], leaves[m], pop[m])
	}

	res := newResult("fig4")
	res.Metrics["pop_after_join"] = float64(pop[0])
	res.Metrics["pop_at_10m"] = float64(pop[10])
	res.Metrics["pop_after_massive"] = float64(pop[15])
	res.Metrics["pop_final"] = float64(pop[len(pop)-1])
	peak := 0
	for _, p := range pop {
		if p > peak {
			peak = p
		}
	}
	res.Metrics["pop_peak"] = float64(peak)
	return res, nil
}
