package experiments

import "testing"

// The config-plane experiments are CI's named targets for DESIGN.md
// invariant 11: a scenario document and its handwritten-Go twin are
// byte-identical on the wire and fingerprint-identical in the run.
// (TestGoldenBitForBit additionally pins both experiments' metrics.)

func TestConfigplaneEquivalence(t *testing.T) {
	t.Parallel()
	res := run(t, "configplane", 1)
	if res.Metrics["equal"] != 1 {
		t.Errorf("document/Go run equivalence = %v, want 1", res.Metrics["equal"])
	}
	if res.Metrics["failed_lookups"] <= 0 {
		t.Errorf("failed_lookups = %v; the documented partition should bite",
			res.Metrics["failed_lookups"])
	}
	if res.Metrics["lookups"] <= res.Metrics["failed_lookups"] {
		t.Errorf("lookups %v not above failures %v; the drill should mostly succeed",
			res.Metrics["lookups"], res.Metrics["failed_lookups"])
	}
}

func TestGossipShape(t *testing.T) {
	t.Parallel()
	res := run(t, "gossip", 1)
	if res.Metrics["shuffles"] <= 200 {
		t.Errorf("shuffles = %v, want > 200 (the document's assertion bar)", res.Metrics["shuffles"])
	}
	// 24 nodes × view 16: near-full views prove the overlay mixed.
	if res.Metrics["view_sum"] < 24*16*3/4 {
		t.Errorf("view_sum = %v, want ≥ %d", res.Metrics["view_sum"], 24*16*3/4)
	}
	if res.Metrics["streams"] < 24 {
		t.Errorf("streams = %v, want every one of the 24 nodes reporting", res.Metrics["streams"])
	}
}
