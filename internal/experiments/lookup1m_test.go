package experiments

import (
	"bytes"
	"os"
	"runtime"
	"testing"
)

// TestLookup1mHalfMillion is the CI-sized memory-plane run: lookup1m at
// half scale — a 500,000-node converged Chord ring on the 16-way sharded
// kernel, one lookup per node — must complete with zero failed lookups
// inside a standard CI runner's memory (≈3.5 GB live at the measured
// bytes/instance). Gated behind SPLAY_LOOKUP1M=1 because the run takes
// minutes; CI's memplane job sets it, local `go test` skips. Workers
// only changes wall-clock time (invariant 9), so the test uses every
// core.
func TestLookup1mHalfMillion(t *testing.T) {
	if os.Getenv("SPLAY_LOOKUP1M") == "" {
		t.Skip("set SPLAY_LOOKUP1M=1 to run the 500k-node memory-plane ring")
	}
	var buf bytes.Buffer
	res, err := Run("lookup1m", Options{Scale: 0.5, Seed: 2009, Out: &buf, Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
	if fails := res.Metrics["fails"]; fails != 0 {
		t.Fatalf("lookup1m at 500k nodes: %v failed lookups, want 0", fails)
	}
}
