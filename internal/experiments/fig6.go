package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/transport"
)

func init() {
	register("fig6a", fig6a)
	register("fig6b", fig6b)
	register("fig6c", fig6c)
}

// chordRun is the outcome of one Chord deployment measurement.
type chordRun struct {
	hops   *stats.IntHistogram
	delays stats.Durations
	fails  int
}

// runChord deploys n converged Chord nodes over the link model and issues
// lookups from random sources.
func runChord(model simnet.LinkModel, n int, cfg chord.Config, lookups int,
	seed int64, oracle chord.RTTOracle, proc simnet.ProcDelayFunc) (*chordRun, error) {

	k := sim.NewKernel()
	nw := simnet.New(k, model, n, seed)
	if proc != nil {
		nw.SetProcDelay(proc)
	}
	rt := core.NewSimRuntime(k, seed)
	rng := rand.New(rand.NewSource(seed))

	ids := make(map[uint64]bool, n)
	nodes := make([]*chord.Node, 0, n)
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 8000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr, Position: i + 1}, nil)
		c := cfg
		var id uint64
		for {
			id = rng.Uint64() & ((1 << cfg.Bits) - 1)
			if !ids[id] {
				ids[id] = true
				break
			}
		}
		c.ID = &id
		node, err := chord.New(ctx, c)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, node)
	}
	var startErr error
	k.Go(func() {
		for _, node := range nodes {
			if err := node.Start(); err != nil {
				startErr = err
				return
			}
		}
	})
	k.Run()
	if startErr != nil {
		return nil, startErr
	}
	if err := chord.BuildRing(nodes, chord.BuildOptions{Oracle: oracle}); err != nil {
		return nil, err
	}

	run := &chordRun{hops: &stats.IntHistogram{}}
	perNode := lookups / n
	if perNode < 1 {
		perNode = 1
	}
	for i := range nodes {
		node := nodes[i]
		start := time.Duration(rng.Intn(10000)) * time.Millisecond
		k.GoAfter(start, func() {
			lrng := rand.New(rand.NewSource(seed + int64(node.Self().ID)))
			for j := 0; j < perNode; j++ {
				key := lrng.Uint64() & ((1 << cfg.Bits) - 1)
				res, err := node.Lookup(key)
				if err != nil {
					run.fails++
					continue
				}
				run.hops.Add(res.Hops)
				run.delays = append(run.delays, res.RTT)
			}
		})
	}
	k.Run()
	return run, nil
}

// fig6a reproduces Fig. 6(a): Chord route-length PDFs on ModelNet for
// 300, 500 and 1,000 nodes (50 lookups per node).
func fig6a(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig6a")
	fmt.Fprintf(w, "# Fig. 6(a) — Chord on ModelNet: route length PDF\n")
	for _, full := range []int{300, 500, 1000} {
		n := opt.n(full, 30)
		mn := topology.NewModelNet(topology.DefaultModelNet(n))
		run, err := runChord(mn, n, chord.DefaultConfig(), opt.n(50*full, n), opt.Seed, nil, nil)
		if err != nil {
			return nil, err
		}
		pdf := run.hops.PDF()
		fmt.Fprintf(w, "## %d nodes (mean %.2f hops, ½·log2 N = %.2f)\n",
			n, run.hops.Mean(), 0.5*log2(float64(n)))
		for h, p := range pdf {
			fmt.Fprintf(w, "hops=%-2d %6.2f%%\n", h, p*100)
		}
		res.Metrics[fmt.Sprintf("mean_hops_%d", full)] = run.hops.Mean()
		res.Metrics[fmt.Sprintf("bound_%d", full)] = 0.5 * log2(float64(n))
	}
	return res, nil
}

// fig6b reproduces Fig. 6(b): Chord lookup-delay CDFs on ModelNet.
func fig6b(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig6b")
	fmt.Fprintf(w, "# Fig. 6(b) — Chord on ModelNet: lookup delay CDF\n")
	for _, full := range []int{300, 500, 1000} {
		n := opt.n(full, 30)
		mn := topology.NewModelNet(topology.DefaultModelNet(n))
		run, err := runChord(mn, n, chord.DefaultConfig(), opt.n(50*full, n), opt.Seed, nil, nil)
		if err != nil {
			return nil, err
		}
		printCDF(w, fmt.Sprintf("%d-nodes", n), run.delays, 10)
		sorted := run.delays.Sorted() // one sort serves both percentiles
		res.Metrics[fmt.Sprintf("median_ms_%d", full)] =
			float64(sorted.Percentile(50).Milliseconds())
		res.Metrics[fmt.Sprintf("p90_ms_%d", full)] =
			float64(sorted.Percentile(90).Milliseconds())
	}
	return res, nil
}

// fig6c reproduces Fig. 6(c): fault-tolerant Chord on PlanetLab versus
// the latency-aware MIT Chord baseline, 5,000 lookups on 380 nodes.
func fig6c(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("fig6c")
	n := opt.n(380, 40)
	lookups := opt.n(5000, 500)

	plCfg := topology.DefaultPlanetLab(n)
	plCfg.Seed = opt.Seed

	runVariant := func(oracle bool) (*chordRun, error) {
		pl := topology.NewPlanetLab(plCfg)
		var orc chord.RTTOracle
		if oracle {
			orc = func(a, b transport.Addr) time.Duration {
				ia, _ := simnet.HostID(a.Host)
				ib, _ := simnet.HostID(b.Host)
				return 2 * pl.Delay(ia, ib)
			}
		}
		return runChord(pl, n, chord.FaultTolerantConfig(), lookups, opt.Seed, orc, pl.ProcDelay)
	}
	splay, err := runVariant(false)
	if err != nil {
		return nil, err
	}
	mit, err := runVariant(true)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "# Fig. 6(c) — Chord on PlanetLab (%d nodes, %d lookups)\n", n, lookups)
	printCDF(w, "splay-chord", splay.delays, 10)
	printCDF(w, "mit-chord", mit.delays, 10)
	fmt.Fprintf(w, "mean route length: splay=%.2f mit=%.2f (paper: 4.1 both)\n",
		splay.hops.Mean(), mit.hops.Mean())

	res.Metrics["splay_median_ms"] = float64(splay.delays.Percentile(50).Milliseconds())
	res.Metrics["mit_median_ms"] = float64(mit.delays.Percentile(50).Milliseconds())
	res.Metrics["splay_mean_hops"] = splay.hops.Mean()
	res.Metrics["mit_mean_hops"] = mit.hops.Mean()
	return res, nil
}

func log2(x float64) float64 { return math.Log2(x) }
