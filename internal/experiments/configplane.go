package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	splay "github.com/splaykit/splay"
)

func init() {
	register("configplane", configplane)
	register("gossip", gossip)
}

// exampleDoc reads a checked-in scenario document, located relative to
// this source file so the experiment runs from any working directory.
func exampleDoc(rel string) ([]byte, error) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return nil, fmt.Errorf("cannot locate source tree")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self)))
	return os.ReadFile(filepath.Join(root, rel))
}

// faultdrillGo is the handwritten-Go twin of
// examples/faultdrill/scenario.yaml: the same experiment an author
// without Go expresses in the document, written against the SDK. The
// configplane experiment pins the two forms byte-identical — on the
// wire and in the run.
func faultdrillGo() splay.Scenario {
	return splay.Scenario{
		Name:            "faultdrill",
		Seed:            11,
		Testbed:         splay.ModelNet(60),
		RegisterTimeout: 60 * time.Second,
		Duration:        300 * time.Second,
		Collect: splay.Collect{
			Metrics:     true,
			ReportEvery: 5 * time.Second,
			Key:         "drill",
		},
		Apps: []splay.AppSpec{{
			Name:   "chord",
			Nodes:  48,
			Params: []byte(`{"bits":40,"fault_tolerant":true,"lookups_per_min":6,"report":true}`),
		}},
		Faults: splay.FaultPlan{
			Events: []splay.FaultEvent{
				splay.PartitionAt(60*time.Second, 0.5),
			},
			Rules: []splay.TriggerRule{{
				Name: "heal-on-failures",
				When: splay.Metric("chord.failed_lookups", splay.StatTotal, splay.Above, 10),
				For:  10 * time.Second,
				Do:   splay.TriggerAction{Kind: splay.ActHeal},
			}},
			EvalEvery: 5 * time.Second,
		},
		Assert: []splay.Assertion{
			splay.EventuallyHolds("partition-bites",
				splay.Metric("chord.failed_lookups", splay.StatTotal, splay.Above, 0), 0),
			splay.ConvergesWithin("lookups-reconverge",
				splay.Metric("chord.failed_lookups", splay.StatRate, splay.Below, 0.5), 0),
		},
	}
}

// runFingerprint flattens a run into one comparable string: job states
// and placements plus the aggregated telemetry the run produced.
func runFingerprint(res *splay.Result) string {
	var b bytes.Buffer
	for _, j := range res.Jobs {
		fmt.Fprintf(&b, "job state=%s deployed=%v\n", j.State, j.Deployed)
	}
	if res.Metrics != nil {
		frames, rx := res.Metrics.Received()
		fmt.Fprintf(&b, "nodes=%d frames=%d bytes=%d lookups=%d failed=%d\n",
			res.Metrics.Nodes(), frames, rx,
			res.Metrics.Counter("chord.lookups"), res.Metrics.Counter("chord.failed_lookups"))
	}
	return b.String()
}

// configplane pins DESIGN.md invariant 11 end to end: the checked-in
// faultdrill scenario document compiles to exactly the bytes its
// handwritten Go twin marshals to, and both forms run byte-identically
// — same schedules, same placements, same telemetry. The experiment
// then reports the closed-loop outcome of the documented drill.
//
// The document is a fixed artifact, so Scale is ignored; Seed overrides
// the document's pinned seed on both sides symmetrically.
func configplane(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("configplane")

	doc, err := exampleDoc("examples/faultdrill/scenario.yaml")
	if err != nil {
		return nil, fmt.Errorf("configplane: %w", err)
	}
	wire, err := splay.CompileConfig(doc)
	if err != nil {
		return nil, fmt.Errorf("configplane: %w", err)
	}
	twin := faultdrillGo()
	goWire, err := twin.Marshal()
	if err != nil {
		return nil, fmt.Errorf("configplane: %w", err)
	}
	if !bytes.Equal(wire, goWire) {
		return nil, fmt.Errorf("configplane: document and Go twin diverge on the wire:\n doc %s\n go  %s", wire, goWire)
	}
	fmt.Fprintf(w, "# wire: document == Go twin (%d bytes)\n", len(wire))

	fromDoc, err := splay.LoadScenario(doc)
	if err != nil {
		return nil, fmt.Errorf("configplane: %w", err)
	}
	fromDoc.Seed = opt.Seed
	twin.Seed = opt.Seed

	docRes, err := fromDoc.Run(context.Background())
	if err != nil {
		return nil, fmt.Errorf("configplane: document run: %w", err)
	}
	goRes, err := twin.Run(context.Background())
	if err != nil {
		return nil, fmt.Errorf("configplane: twin run: %w", err)
	}
	docFP, goFP := runFingerprint(docRes), runFingerprint(goRes)
	match := docFP == goFP
	fmt.Fprintf(w, "# run: document fingerprint == Go fingerprint: %v\n", match)
	fmt.Fprintf(w, "doc %s", docFP)
	if !match {
		return nil, fmt.Errorf("configplane: runs diverge:\n doc %q\n go  %q", docFP, goFP)
	}
	lookups := docRes.Metrics.Counter("chord.lookups")
	failed := docRes.Metrics.Counter("chord.failed_lookups")
	if failed == 0 {
		return nil, fmt.Errorf("configplane: partition caused no observed lookup failures")
	}

	res.Metrics["wire_bytes"] = float64(len(wire))
	res.Metrics["equal"] = b2f(match)
	res.Metrics["lookups"] = float64(lookups)
	res.Metrics["failed_lookups"] = float64(failed)
	res.Metrics["streams"] = float64(docRes.Metrics.Nodes())
	return res, nil
}

// cyclonGossipGo is the handwritten-Go twin of
// examples/cyclon-gossip/scenario.yaml.
func cyclonGossipGo() splay.Scenario {
	return splay.Scenario{
		Name:     "cyclon-gossip",
		Seed:     11,
		Testbed:  splay.Uniform(30, 10*time.Millisecond, 0),
		Duration: 120 * time.Second,
		Collect: splay.Collect{
			Metrics:     true,
			ReportEvery: 5 * time.Second,
		},
		Apps: []splay.AppSpec{{
			Name:     "cyclon",
			Nodes:    24,
			FullList: true,
			Params:   []byte(`{"report":true,"shuffle_every":5000000000,"shuffle_len":5,"view_size":16}`),
		}},
		Assert: []splay.Assertion{
			splay.EventuallyHolds("gossip-happens",
				splay.Metric("cyclon.shuffles", splay.StatTotal, splay.Above, 200), 0),
		},
	}
}

// gossip is the cyclon built-in's convergence smoke, driven from its
// scenario document: the document must match its Go twin on the wire,
// and the run must show every node gossiping — the aggregate shuffle
// counter past the assertion's bar and the summed view-size gauge near
// the configured capacity (views full ⇒ the overlay mixed).
func gossip(opt Options) (*Result, error) {
	w := opt.out()
	res := newResult("gossip")

	doc, err := exampleDoc("examples/cyclon-gossip/scenario.yaml")
	if err != nil {
		return nil, fmt.Errorf("gossip: %w", err)
	}
	wire, err := splay.CompileConfig(doc)
	if err != nil {
		return nil, fmt.Errorf("gossip: %w", err)
	}
	goWire, err := cyclonGossipGo().Marshal()
	if err != nil {
		return nil, fmt.Errorf("gossip: %w", err)
	}
	if !bytes.Equal(wire, goWire) {
		return nil, fmt.Errorf("gossip: document and Go twin diverge on the wire:\n doc %s\n go  %s", wire, goWire)
	}

	sc, err := splay.LoadScenario(doc)
	if err != nil {
		return nil, fmt.Errorf("gossip: %w", err)
	}
	sc.Seed = opt.Seed
	run, err := sc.Run(context.Background())
	if err != nil {
		return nil, fmt.Errorf("gossip: %w", err)
	}
	shuffles := run.Metrics.Counter("cyclon.shuffles")
	viewSum := run.Metrics.GaugeSum("cyclon.view")
	const nodes, viewSize = 24, 16
	fmt.Fprintf(w, "# %d nodes, view %d, 120s\n", nodes, viewSize)
	fmt.Fprintf(w, "%-16s %8d\n", "shuffles", shuffles)
	fmt.Fprintf(w, "%-16s %8d\n", "view-sum", viewSum)
	fmt.Fprintf(w, "%-16s %8d\n", "streams", run.Metrics.Nodes())
	if viewSum < nodes*viewSize*3/4 {
		return nil, fmt.Errorf("gossip: views did not fill: sum %d < %d", viewSum, nodes*viewSize*3/4)
	}

	res.Metrics["shuffles"] = float64(shuffles)
	res.Metrics["view_sum"] = float64(viewSum)
	res.Metrics["streams"] = float64(run.Metrics.Nodes())
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
