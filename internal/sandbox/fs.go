// Package sandbox implements SPLAY's isolation libraries: the restricted
// virtual filesystem (the paper's sb_fs) and the restricted socket layer
// (sb_socket). Applications get the standard interfaces; the sandbox
// transparently confines them — file data lives in a private store with
// disk and descriptor quotas, sockets are counted, bandwidth-capped and
// blacklist-filtered. Restrictions are set by the local administrator and
// may only be tightened (never weakened) by the controller at deployment
// time.
package sandbox

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// FS errors.
var (
	// ErrQuota is returned when a write would exceed the disk quota.
	ErrQuota = errors.New("sandbox: disk quota exceeded")
	// ErrTooManyFiles is returned when the descriptor limit is reached.
	ErrTooManyFiles = errors.New("sandbox: too many open files")
	// ErrNotExist is returned for missing files.
	ErrNotExist = errors.New("sandbox: file does not exist")
	// ErrClosedFile is returned for operations on closed files.
	ErrClosedFile = errors.New("sandbox: file already closed")
)

// FSLimits restricts a virtual filesystem.
type FSLimits struct {
	MaxBytes     int64 // total stored bytes (0 = unlimited)
	MaxOpenFiles int   // concurrently open descriptors (0 = unlimited)
}

// Tighten returns limits at least as strict as both (the controller can
// only restrict further, §3.1).
func (l FSLimits) Tighten(o FSLimits) FSLimits {
	out := l
	if o.MaxBytes > 0 && (out.MaxBytes == 0 || o.MaxBytes < out.MaxBytes) {
		out.MaxBytes = o.MaxBytes
	}
	if o.MaxOpenFiles > 0 && (out.MaxOpenFiles == 0 || o.MaxOpenFiles < out.MaxOpenFiles) {
		out.MaxOpenFiles = o.MaxOpenFiles
	}
	return out
}

// FS is a virtual filesystem confined to one private store. Path names
// are opaque keys: "/etc/passwd" and "data/chunk1" are just entries in
// the application's own namespace, exactly like the paper's
// single-directory mapping — the host filesystem is unreachable.
type FS struct {
	limits FSLimits

	mu    sync.Mutex
	files map[string]*fileData
	used  int64
	open  int
}

type fileData struct {
	data []byte
}

// NewFS returns an empty filesystem with the given limits.
func NewFS(limits FSLimits) *FS {
	return &FS{limits: limits, files: make(map[string]*fileData)}
}

// clean normalizes a path into the flat private namespace.
func clean(name string) string {
	name = strings.TrimPrefix(name, "/")
	// Path traversal is meaningless in a flat namespace, but normalize
	// anyway so "a/../b" and "b" are one file.
	parts := strings.Split(name, "/")
	var out []string
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}

// Used returns the stored byte count.
func (fs *FS) Used() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

// List returns all file names in sorted order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	key := clean(name)
	f, ok := fs.files[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	fs.used -= int64(len(f.data))
	delete(fs.files, key)
	return nil
}

// Open opens an existing file for reading and writing.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[clean(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return fs.newHandle(clean(name), f)
}

// Create opens a file, truncating or creating it.
func (fs *FS) Create(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	key := clean(name)
	if f, ok := fs.files[key]; ok {
		fs.used -= int64(len(f.data))
		f.data = nil
	} else {
		fs.files[key] = &fileData{}
	}
	return fs.newHandle(key, fs.files[key])
}

func (fs *FS) newHandle(name string, f *fileData) (*File, error) {
	if fs.limits.MaxOpenFiles > 0 && fs.open >= fs.limits.MaxOpenFiles {
		return nil, ErrTooManyFiles
	}
	fs.open++
	return &File{fs: fs, name: name, f: f}, nil
}

// File is an open handle with a seek position.
type File struct {
	fs     *FS
	name   string
	f      *fileData
	pos    int64
	closed bool
}

// Name returns the file's name within the sandbox.
func (h *File) Name() string { return h.name }

// Read implements io.Reader.
func (h *File) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, ErrClosedFile
	}
	if h.pos >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

// Write implements io.Writer, enforcing the disk quota.
func (h *File) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, ErrClosedFile
	}
	end := h.pos + int64(len(p))
	grow := end - int64(len(h.f.data))
	if grow > 0 && h.fs.limits.MaxBytes > 0 && h.fs.used+grow > h.fs.limits.MaxBytes {
		return 0, ErrQuota
	}
	if grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
		h.fs.used += grow
	}
	copy(h.f.data[h.pos:end], p)
	h.pos = end
	return len(p), nil
}

// Seek implements io.Seeker.
func (h *File) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, ErrClosedFile
	}
	var base int64
	switch whence {
	case io.SeekStart:
	case io.SeekCurrent:
		base = h.pos
	case io.SeekEnd:
		base = int64(len(h.f.data))
	default:
		return 0, fmt.Errorf("sandbox: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("sandbox: negative seek")
	}
	h.pos = base + offset
	return h.pos, nil
}

// Close releases the descriptor.
func (h *File) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return ErrClosedFile
	}
	h.closed = true
	h.fs.open--
	return nil
}
