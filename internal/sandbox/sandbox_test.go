package sandbox

import (
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func TestFSReadWriteSeek(t *testing.T) {
	fs := NewFS(FSLimits{})
	f, err := fs.Create("/chunks/0001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != "world" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosedFile) {
		t.Fatalf("double close: %v", err)
	}
	// Reopen and read back.
	g, err := fs.Open("chunks/0001") // same file, normalized path
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(g)
	if string(data) != "hello world" {
		t.Fatalf("persisted %q", data)
	}
}

func TestFSQuota(t *testing.T) {
	fs := NewFS(FSLimits{MaxBytes: 10})
	f, _ := fs.Create("a")
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 8)); !errors.Is(err, ErrQuota) {
		t.Fatalf("quota not enforced: %v", err)
	}
	// Overwriting in place needs no new quota.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatalf("in-place rewrite rejected: %v", err)
	}
	// Removing frees quota.
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if fs.Used() != 0 {
		t.Fatalf("used = %d after remove", fs.Used())
	}
}

func TestFSOpenFileLimit(t *testing.T) {
	fs := NewFS(FSLimits{MaxOpenFiles: 2})
	a, _ := fs.Create("a")
	if _, err := fs.Create("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("c"); !errors.Is(err, ErrTooManyFiles) {
		t.Fatalf("fd limit not enforced: %v", err)
	}
	a.Close()
	if _, err := fs.Create("c"); err != nil {
		t.Fatalf("fd not released: %v", err)
	}
}

func TestFSPathNormalization(t *testing.T) {
	fs := NewFS(FSLimits{})
	f, _ := fs.Create("/a/b/../c")
	f.Write([]byte("x"))
	f.Close()
	if _, err := fs.Open("a/c"); err != nil {
		t.Fatalf("normalized path not found: %v", err)
	}
	// Escaping attempts stay inside the sandbox namespace.
	g, _ := fs.Create("../../etc/passwd")
	g.Close()
	names := fs.List()
	for _, n := range names {
		if len(n) > 0 && n[0] == '.' {
			t.Fatalf("traversal survived normalization: %q", n)
		}
	}
}

// Property: quota accounting equals the sum of file sizes.
func TestQuickFSAccounting(t *testing.T) {
	f := func(writes []uint16) bool {
		fs := NewFS(FSLimits{})
		var want int64
		for i, w := range writes {
			name := string(rune('a' + i%8))
			h, err := fs.Create(name)
			if err != nil {
				return false
			}
			h.Write(make([]byte, int(w)%4096))
			h.Close()
		}
		// Recompute from scratch.
		for _, name := range fs.List() {
			h, _ := fs.Open(name)
			data, _ := io.ReadAll(h)
			h.Close()
			want += int64(len(data))
		}
		return fs.Used() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newSandboxNet(t *testing.T, limits NetLimits) (*sim.Kernel, *Node, transport.Node) {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, 2, 1)
	return k, Wrap(nw.Node(0), limits), nw.Node(1)
}

func TestBlacklistEnforced(t *testing.T) {
	k, sb, _ := newSandboxNet(t, NetLimits{Blacklist: []string{"n1"}})
	var err error
	k.Go(func() {
		_, err = sb.Dial(transport.Addr{Host: "n1", Port: 80}, 0)
	})
	k.Run()
	if !errors.Is(err, transport.ErrBlacklisted) {
		t.Fatalf("dial to blacklisted host: %v", err)
	}
}

func TestBlacklistWildcard(t *testing.T) {
	if !matches("n*", "n42") || matches("n1", "n12") || !matches("n12", "n12") {
		t.Fatal("pattern matching wrong")
	}
}

func TestSocketLimit(t *testing.T) {
	k, sb, peer := newSandboxNet(t, NetLimits{MaxSockets: 2})
	var third error
	k.Go(func() {
		l, err := peer.Listen(80)
		if err != nil {
			return
		}
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	})
	k.GoAfter(time.Second, func() {
		if _, err := sb.Dial(transport.Addr{Host: "n1", Port: 80}, 0); err != nil {
			t.Errorf("dial 1: %v", err)
		}
		if _, err := sb.Dial(transport.Addr{Host: "n1", Port: 80}, 0); err != nil {
			t.Errorf("dial 2: %v", err)
		}
		_, third = sb.Dial(transport.Addr{Host: "n1", Port: 80}, 0)
	})
	k.RunFor(time.Minute)
	if !errors.Is(third, transport.ErrLimit) {
		t.Fatalf("socket limit not enforced: %v", third)
	}
	if sb.OpenSockets() != 2 {
		t.Fatalf("open sockets = %d", sb.OpenSockets())
	}
}

func TestBandwidthQuota(t *testing.T) {
	k, sb, peer := newSandboxNet(t, NetLimits{MaxTxBytes: 1000})
	var err2 error
	k.Go(func() {
		l, _ := peer.Listen(80)
		c, aerr := l.Accept()
		if aerr != nil {
			return
		}
		io.Copy(io.Discard, c)
	})
	k.GoAfter(time.Second, func() {
		c, err := sb.Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if _, err := c.Write(make([]byte, 900)); err != nil {
			t.Errorf("first write: %v", err)
		}
		_, err2 = c.Write(make([]byte, 900))
	})
	k.RunFor(time.Minute)
	if !errors.Is(err2, transport.ErrLimit) {
		t.Fatalf("tx quota not enforced: %v", err2)
	}
	tx, _ := sb.Usage()
	if tx != 900 {
		t.Fatalf("tx counter = %d", tx)
	}
}

func TestCloseAll(t *testing.T) {
	k, sb, peer := newSandboxNet(t, NetLimits{})
	var readErr error
	k.Go(func() {
		l, _ := peer.Listen(80)
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	})
	k.GoAfter(time.Second, func() {
		c, err := sb.Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 8)
		_, readErr = c.Read(buf)
	})
	k.GoAfter(2*time.Second, func() { sb.CloseAll() })
	k.RunFor(time.Minute)
	if readErr == nil {
		t.Fatal("CloseAll did not interrupt blocked read")
	}
	if sb.OpenSockets() != 0 {
		t.Fatalf("sockets remain after CloseAll: %d", sb.OpenSockets())
	}
}

func TestTighten(t *testing.T) {
	l := NetLimits{MaxSockets: 10, MaxTxBytes: 1000}
	o := NetLimits{MaxSockets: 5, MaxTxBytes: 5000, Blacklist: []string{"ctl"}}
	m := l.Tighten(o)
	if m.MaxSockets != 5 || m.MaxTxBytes != 1000 || len(m.Blacklist) != 1 {
		t.Fatalf("tighten wrong: %+v", m)
	}
	fl := FSLimits{MaxBytes: 100}.Tighten(FSLimits{MaxBytes: 50, MaxOpenFiles: 3})
	if fl.MaxBytes != 50 || fl.MaxOpenFiles != 3 {
		t.Fatalf("fs tighten wrong: %+v", fl)
	}
}
