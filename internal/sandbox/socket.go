package sandbox

import (
	"strings"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// NetLimits restricts an application's network usage, mirroring the
// paper's sb_socket layer: (1) total bandwidth available to the
// application, (2) the maximum number of sockets, and (3) the addresses
// the application may or may not contact.
type NetLimits struct {
	MaxSockets int      // concurrently open sockets/listeners (0 = unlimited)
	MaxTxBytes int64    // lifetime bytes sent (0 = unlimited); writes fail beyond it
	MaxRxBytes int64    // lifetime bytes received (0 = unlimited); reads fail beyond it
	Blacklist  []string // host patterns the app must not contact ("n3", "10.0.*")
}

// Tighten merges limits keeping the stricter of each (controller rule).
func (l NetLimits) Tighten(o NetLimits) NetLimits {
	out := l
	min := func(a, b int64) int64 {
		if a == 0 {
			return b
		}
		if b == 0 || a < b {
			return a
		}
		return b
	}
	out.MaxTxBytes = min(l.MaxTxBytes, o.MaxTxBytes)
	out.MaxRxBytes = min(l.MaxRxBytes, o.MaxRxBytes)
	if o.MaxSockets > 0 && (out.MaxSockets == 0 || o.MaxSockets < out.MaxSockets) {
		out.MaxSockets = o.MaxSockets
	}
	out.Blacklist = append(append([]string(nil), l.Blacklist...), o.Blacklist...)
	return out
}

// matches reports whether host matches pattern (exact or '*' suffix
// wildcard).
func matches(pattern, host string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(host, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == host
}

// Node wraps a transport.Node with enforcement and accounting. It also
// tracks every socket so the daemon can close them all when killing the
// instance.
type Node struct {
	inner  transport.Node
	limits NetLimits

	mu      sync.Mutex
	sockets int
	tx, rx  int64
	open    map[interface{ Close() error }]struct{}
}

var _ transport.Node = (*Node)(nil)

// Wrap confines a node's network stack.
func Wrap(inner transport.Node, limits NetLimits) *Node {
	return &Node{inner: inner, limits: limits, open: make(map[interface{ Close() error }]struct{})}
}

// Usage reports transmitted/received byte counters.
func (n *Node) Usage() (tx, rx int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tx, n.rx
}

// OpenSockets reports the live socket count.
func (n *Node) OpenSockets() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sockets
}

// CloseAll force-closes every tracked socket (instance kill).
func (n *Node) CloseAll() {
	n.mu.Lock()
	socks := make([]interface{ Close() error }, 0, len(n.open))
	for s := range n.open {
		socks = append(socks, s)
	}
	n.mu.Unlock()
	for _, s := range socks {
		s.Close() //nolint:errcheck
	}
}

// Host implements transport.Node.
func (n *Node) Host() string { return n.inner.Host() }

func (n *Node) blocked(host string) bool {
	for _, p := range n.limits.Blacklist {
		if matches(p, host) {
			return true
		}
	}
	return false
}

func (n *Node) acquire() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.limits.MaxSockets > 0 && n.sockets >= n.limits.MaxSockets {
		return transport.ErrLimit
	}
	n.sockets++
	return nil
}

func (n *Node) track(c interface{ Close() error }) {
	n.mu.Lock()
	n.open[c] = struct{}{}
	n.mu.Unlock()
}

func (n *Node) release(c interface{ Close() error }) {
	n.mu.Lock()
	if _, ok := n.open[c]; ok {
		delete(n.open, c)
		n.sockets--
	}
	n.mu.Unlock()
}

// chargeTx accounts len bytes of egress, failing when over quota.
func (n *Node) chargeTx(len int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.limits.MaxTxBytes > 0 && n.tx+int64(len) > n.limits.MaxTxBytes {
		return transport.ErrLimit
	}
	n.tx += int64(len)
	return nil
}

func (n *Node) chargeRx(len int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.limits.MaxRxBytes > 0 && n.rx+int64(len) > n.limits.MaxRxBytes {
		return transport.ErrLimit
	}
	n.rx += int64(len)
	return nil
}

// Dial implements transport.Node with blacklist and socket limits.
func (n *Node) Dial(to transport.Addr, timeout time.Duration) (transport.Conn, error) {
	if n.blocked(to.Host) {
		return nil, transport.ErrBlacklisted
	}
	if err := n.acquire(); err != nil {
		return nil, err
	}
	c, err := n.inner.Dial(to, timeout)
	if err != nil {
		n.mu.Lock()
		n.sockets--
		n.mu.Unlock()
		return nil, err
	}
	sc := &sbConn{Conn: c, n: n}
	n.track(sc)
	return sc, nil
}

// Listen implements transport.Node.
func (n *Node) Listen(port int) (transport.Listener, error) {
	if err := n.acquire(); err != nil {
		return nil, err
	}
	l, err := n.inner.Listen(port)
	if err != nil {
		n.mu.Lock()
		n.sockets--
		n.mu.Unlock()
		return nil, err
	}
	sl := &sbListener{Listener: l, n: n}
	n.track(sl)
	return sl, nil
}

// ListenPacket implements transport.Node.
func (n *Node) ListenPacket(port int) (transport.PacketConn, error) {
	if err := n.acquire(); err != nil {
		return nil, err
	}
	p, err := n.inner.ListenPacket(port)
	if err != nil {
		n.mu.Lock()
		n.sockets--
		n.mu.Unlock()
		return nil, err
	}
	sp := &sbPacket{PacketConn: p, n: n}
	n.track(sp)
	return sp, nil
}

// sbConn wraps a stream with accounting.
type sbConn struct {
	transport.Conn
	n *Node
}

func (c *sbConn) Write(p []byte) (int, error) {
	if err := c.n.chargeTx(len(p)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *sbConn) Read(p []byte) (int, error) {
	m, err := c.Conn.Read(p)
	if m > 0 {
		if cerr := c.n.chargeRx(m); cerr != nil {
			return m, cerr
		}
	}
	return m, err
}

func (c *sbConn) Close() error {
	c.n.release(c)
	return c.Conn.Close()
}

// sbListener wraps a listener; accepted conns are sandboxed and counted.
type sbListener struct {
	transport.Listener
	n *Node
}

func (l *sbListener) Accept() (transport.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if err := l.n.acquire(); err != nil {
		c.Close()
		return nil, err
	}
	sc := &sbConn{Conn: c, n: l.n}
	l.n.track(sc)
	return sc, nil
}

func (l *sbListener) Close() error {
	l.n.release(l)
	return l.Listener.Close()
}

// sbPacket wraps a datagram socket.
type sbPacket struct {
	transport.PacketConn
	n *Node
}

func (p *sbPacket) WriteTo(b []byte, to transport.Addr) (int, error) {
	if p.n.blocked(to.Host) {
		return 0, transport.ErrBlacklisted
	}
	if err := p.n.chargeTx(len(b)); err != nil {
		return 0, err
	}
	return p.PacketConn.WriteTo(b, to)
}

func (p *sbPacket) ReadFrom(b []byte) (int, transport.Addr, error) {
	m, from, err := p.PacketConn.ReadFrom(b)
	if m > 0 {
		if cerr := p.n.chargeRx(m); cerr != nil {
			return m, from, cerr
		}
	}
	return m, from, err
}

func (p *sbPacket) Close() error {
	p.n.release(p)
	return p.PacketConn.Close()
}
