package core

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func newSim(t *testing.T) (*sim.Kernel, *SimRuntime) {
	t.Helper()
	k := sim.NewKernel()
	return k, NewSimRuntime(k, 7)
}

func TestLockMutualExclusion(t *testing.T) {
	k, rt := newSim(t)
	l := NewLock(rt)
	inside := 0
	maxInside := 0
	for i := 0; i < 10; i++ {
		k.Go(func() {
			l.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			rt.Sleep(10 * time.Millisecond) // yield while holding
			inside--
			l.Unlock()
		})
	}
	k.Run()
	if maxInside != 1 {
		t.Fatalf("critical section concurrency = %d, want 1", maxInside)
	}
}

func TestLockFIFO(t *testing.T) {
	k, rt := newSim(t)
	l := NewLock(rt)
	var order []int
	k.Go(func() {
		l.Lock()
		rt.Sleep(100 * time.Millisecond)
		l.Unlock()
	})
	for i := 0; i < 5; i++ {
		i := i
		k.GoAfter(time.Duration(i+1)*time.Millisecond, func() {
			l.Lock()
			order = append(order, i)
			l.Unlock()
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("lock grants out of FIFO order: %v", order)
		}
	}
}

func TestTryLockAndUnlockPanic(t *testing.T) {
	_, rt := newSim(t)
	l := NewLock(rt)
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked lock did not panic")
		}
	}()
	l.Unlock()
}

func TestPeriodicRunsAndStops(t *testing.T) {
	k, rt := newSim(t)
	ctx := NewAppContext(rt, nil, JobInfo{}, nil)
	n := 0
	var stop func()
	k.Go(func() {
		stop = ctx.Periodic(time.Second, func() { n++ })
	})
	k.RunFor(5500 * time.Millisecond)
	if n != 5 {
		t.Fatalf("periodic ran %d times in 5.5s, want 5", n)
	}
	stop()
	k.RunFor(10 * time.Second)
	if n != 5 {
		t.Fatalf("periodic ran after stop: %d", n)
	}
}

func TestPeriodicStopsOnKill(t *testing.T) {
	k, rt := newSim(t)
	ctx := NewAppContext(rt, nil, JobInfo{}, nil)
	n := 0
	k.Go(func() {
		ctx.Periodic(time.Second, func() { n++ })
	})
	k.RunFor(3500 * time.Millisecond)
	ctx.Kill()
	k.RunFor(10 * time.Second)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3 (killed at 3.5s)", n)
	}
	if !ctx.Killed() {
		t.Fatal("ctx not killed")
	}
}

func TestKillClosesTrackedSockets(t *testing.T) {
	k := sim.NewKernel()
	rt := NewSimRuntime(k, 1)
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, 2, 1)
	ctx := NewAppContext(rt, nw.Node(0), JobInfo{}, nil)
	var acceptErr error
	k.Go(func() {
		l, err := ctx.Node().Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		ctx.Track(l)
		_, acceptErr = l.Accept()
	})
	k.GoAfter(time.Second, func() { ctx.Kill() })
	k.Run()
	if !errors.Is(acceptErr, transport.ErrClosed) {
		t.Fatalf("accept err = %v, want ErrClosed", acceptErr)
	}
}

func TestGoAfterKillDropped(t *testing.T) {
	k, rt := newSim(t)
	ctx := NewAppContext(rt, nil, JobInfo{}, nil)
	ran := false
	ctx.Kill()
	k.Go(func() { ctx.Go(func() { ran = true }) })
	k.Run()
	if ran {
		t.Fatal("task ran after kill")
	}
}

func TestInstanceLifecycle(t *testing.T) {
	k, rt := newSim(t)
	var inst *Instance
	k.Go(func() {
		inst = StartInstance(rt, nil, JobInfo{Position: 1}, nil, AppFunc(func(ctx *AppContext) error {
			ctx.Sleep(time.Second)
			return errors.New("finished")
		}))
	})
	k.Run()
	done, err := inst.Done()
	if !done || err == nil || err.Error() != "finished" {
		t.Fatalf("done=%v err=%v", done, err)
	}
}

func TestInstanceKillStopsApp(t *testing.T) {
	k, rt := newSim(t)
	ticks := 0
	var inst *Instance
	k.Go(func() {
		inst = StartInstance(rt, nil, JobInfo{}, nil, AppFunc(func(ctx *AppContext) error {
			ctx.Periodic(time.Second, func() { ticks++ })
			for !ctx.Killed() {
				ctx.Sleep(500 * time.Millisecond)
			}
			return nil
		}))
	})
	k.RunFor(4200 * time.Millisecond)
	inst.Kill()
	k.Run()
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	if done, err := inst.Done(); !done || err != nil {
		t.Fatalf("instance did not exit cleanly: done=%v err=%v", done, err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("echo", func(params json.RawMessage) (App, error) {
		return AppFunc(func(*AppContext) error { return nil }), nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := r.New("echo", nil); err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.New("missing", nil); err == nil {
		t.Fatal("unknown app instantiated")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "echo" {
		t.Fatalf("Names = %v", names)
	}
	// A duplicate must be rejected, and must not clobber the original
	// factory: the first registration keeps working afterwards.
	if err := r.Register("echo", nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if app, err := r.New("echo", nil); err != nil || app == nil {
		t.Fatalf("original factory clobbered by rejected duplicate: app=%v err=%v", app, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister duplicate did not panic")
		}
	}()
	r.MustRegister("echo", nil)
}

func TestLiveWaiter(t *testing.T) {
	rt := NewLiveRuntime(1)
	w := rt.NewWaiter()
	go func() {
		time.Sleep(5 * time.Millisecond)
		if !w.Wake(42) {
			t.Error("wake rejected")
		}
		if w.Wake(43) {
			t.Error("second wake accepted")
		}
	}()
	if v := w.Wait(); v != 42 {
		t.Fatalf("got %v", v)
	}

	w2 := rt.NewWaiter()
	w2.WakeAfter(5*time.Millisecond, "timeout")
	if v := w2.Wait(); v != "timeout" {
		t.Fatalf("got %v, want timeout", v)
	}
}

func TestLiveRuntimeBasics(t *testing.T) {
	rt := NewLiveRuntime(1)
	if rt.Now().IsZero() {
		t.Fatal("zero now")
	}
	done := make(chan struct{})
	rt.Go(func() { close(done) })
	<-done
	fired := make(chan struct{})
	cancel := rt.After(time.Millisecond, func() { close(fired) })
	<-fired
	cancel() // after fire: no-op
	// Rand must be callable concurrently.
	for i := 0; i < 4; i++ {
		go rt.Rand().Intn(100)
	}
	rt.Rand().Intn(100)
}
