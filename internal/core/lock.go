package core

import "sync"

// Lock is SPLAY's cooperative lock library. With cooperative scheduling,
// races only occur across yield points (blocking calls); Lock protects
// multi-step critical sections that contain such calls — the pitfall the
// paper illustrates with Chord's check_predecessor. It is fair (FIFO) and
// works under both runtimes.
type Lock struct {
	rt      Runtime
	ctx     *AppContext // when instance-bound: yield the baton while parked
	mu      sync.Mutex  // protects state under LiveRuntime
	held    bool
	waiters []Waiter
}

// NewLock returns an unlocked lock bound to the runtime.
func NewLock(rt Runtime) *Lock { return &Lock{rt: rt} }

// Lock blocks the calling task until the lock is acquired. An
// instance-bound lock (AppContext.NewLock) yields the instance baton
// while parked, so the owner can run and release.
func (l *Lock) Lock() {
	l.mu.Lock()
	if !l.held {
		l.held = true
		l.mu.Unlock()
		return
	}
	w := l.rt.NewWaiter()
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()
	held := l.ctx != nil && l.ctx.yieldBaton()
	w.Wait()
	if held {
		l.ctx.acquireBaton()
	}
}

// TryLock acquires the lock if it is free and reports whether it did.
func (l *Lock) TryLock() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.held {
		return false
	}
	l.held = true
	return true
}

// Unlock releases the lock, handing it to the oldest waiter if any.
// Unlocking an unheld lock panics: it is always a bug.
func (l *Lock) Unlock() {
	l.mu.Lock()
	if !l.held {
		l.mu.Unlock()
		panic("core: Unlock of unlocked Lock")
	}
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		if w.Wake(nil) {
			// Ownership transfers to the woken task; held stays true.
			l.mu.Unlock()
			return
		}
	}
	l.held = false
	l.mu.Unlock()
}

// With runs fn while holding the lock.
func (l *Lock) With(fn func()) {
	l.Lock()
	defer l.Unlock()
	fn()
}
