// Package core implements the SPLAY application runtime: the paper's
// primary contribution. It defines the environment distributed applications
// are written against — an event-driven execution model with cooperative
// tasks, periodic activities, locks, per-job node information and sandboxed
// access to the network — plus the machinery the daemons use to instantiate,
// monitor and kill application instances.
//
// Applications written against this package run unmodified either inside
// the discrete-event simulation (SimRuntime over internal/sim) or as live
// processes on real networks (LiveRuntime over the standard library). This
// mirrors SPLAY's property that programs are debugged locally and deployed
// onto testbeds without code changes.
package core

import (
	"math/rand"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/sim"
)

// Waiter is a one-shot blocking point for a task: the runtime-independent
// version of the kernel's waiter. The first Wake (or the armed timeout)
// delivers a value to the task parked in Wait.
type Waiter interface {
	// Wake delivers v; it reports false if the waiter was already woken.
	Wake(v any) bool
	// WakeAfter arms (or re-arms) a timeout that wakes the waiter with v.
	WakeAfter(d time.Duration, v any)
	// Wait parks the calling task until woken and returns the wake value.
	Wait() any
}

// Runtime abstracts time and task scheduling. SimRuntime executes in
// virtual time on the simulation kernel; LiveRuntime uses real time and
// goroutines.
type Runtime interface {
	// Now returns the current (virtual or real) time.
	Now() time.Time
	// Sleep parks the calling task for d.
	Sleep(d time.Duration)
	// Go starts fn as a new task.
	Go(fn func())
	// After runs fn once after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
	// NewWaiter returns a fresh one-shot waiter.
	NewWaiter() Waiter
	// Rand returns the runtime's random source. In simulation it is
	// deterministic and must only be used from tasks; in live mode it is
	// safe for concurrent use.
	Rand() *rand.Rand
}

// SimRuntime adapts the simulation kernel to the Runtime interface.
type SimRuntime struct {
	kernel *sim.Kernel
	rng    *rand.Rand
}

var _ Runtime = (*SimRuntime)(nil)

// NewSimRuntime wraps a kernel; seed fixes the runtime's random source.
func NewSimRuntime(k *sim.Kernel, seed int64) *SimRuntime {
	return &SimRuntime{kernel: k, rng: rand.New(rand.NewSource(seed))}
}

// Kernel returns the underlying simulation kernel.
func (r *SimRuntime) Kernel() *sim.Kernel { return r.kernel }

// Now implements Runtime.
func (r *SimRuntime) Now() time.Time { return r.kernel.Now() }

// Sleep implements Runtime.
func (r *SimRuntime) Sleep(d time.Duration) { r.kernel.Sleep(d) }

// Go implements Runtime.
func (r *SimRuntime) Go(fn func()) { r.kernel.Go(fn) }

// After implements Runtime.
func (r *SimRuntime) After(d time.Duration, fn func()) (cancel func()) {
	return r.kernel.After(d, fn)
}

// NewWaiter implements Runtime.
func (r *SimRuntime) NewWaiter() Waiter { return r.kernel.NewWaiter() }

// Rand implements Runtime.
func (r *SimRuntime) Rand() *rand.Rand { return r.rng }

// LiveRuntime implements Runtime over real time and goroutines.
type LiveRuntime struct {
	rng *rand.Rand
}

var _ Runtime = (*LiveRuntime)(nil)

// NewLiveRuntime returns a live runtime with a concurrency-safe random
// source seeded from seed.
func NewLiveRuntime(seed int64) *LiveRuntime {
	return &LiveRuntime{rng: rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)})}
}

// Now implements Runtime.
func (r *LiveRuntime) Now() time.Time { return time.Now() }

// Sleep implements Runtime.
func (r *LiveRuntime) Sleep(d time.Duration) { time.Sleep(d) }

// Go implements Runtime.
func (r *LiveRuntime) Go(fn func()) { go fn() }

// After implements Runtime.
func (r *LiveRuntime) After(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// NewWaiter implements Runtime.
func (r *LiveRuntime) NewWaiter() Waiter { return newLiveWaiter() }

// Rand implements Runtime.
func (r *LiveRuntime) Rand() *rand.Rand { return r.rng }

// lockedSource makes a rand.Source64 safe for concurrent use.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// liveWaiter implements Waiter with channels and real timers.
type liveWaiter struct {
	mu    sync.Mutex
	done  bool
	ch    chan any
	timer *time.Timer
}

func newLiveWaiter() *liveWaiter {
	return &liveWaiter{ch: make(chan any, 1)}
}

func (w *liveWaiter) Wake(v any) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return false
	}
	w.done = true
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	w.ch <- v
	return true
}

func (w *liveWaiter) WakeAfter(d time.Duration, v any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return
	}
	if w.timer != nil {
		w.timer.Stop()
	}
	w.timer = time.AfterFunc(d, func() { w.Wake(v) })
}

func (w *liveWaiter) Wait() any { return <-w.ch }
