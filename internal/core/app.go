package core

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// Logger is the minimal logging surface applications see; the logging
// package provides implementations that print locally or stream to the
// controller's log collector.
type Logger interface {
	Printf(format string, args ...any)
}

// NopLogger discards everything.
type NopLogger struct{}

// Printf implements Logger.
func (NopLogger) Printf(format string, args ...any) {}

// JobInfo is the deployment information every instance receives, matching
// the paper's job table: the instance's own address (job.me), the
// bootstrap list chosen by the controller (job.nodes, e.g. a single
// rendez-vous node or a random subset) and the instance's 1-based rank in
// the deployment sequence (job.position).
type JobInfo struct {
	JobID    string           `json:"job_id"`
	Me       transport.Addr   `json:"me"`
	Nodes    []transport.Addr `json:"nodes"`
	Position int              `json:"position"`
}

// App is a deployable SPLAY application. Run executes the application's
// main logic and returns when the application terminates or is killed;
// long-running applications typically loop until ctx.Killed().
type App interface {
	Run(ctx *AppContext) error
}

// AppFunc adapts a function to the App interface.
type AppFunc func(ctx *AppContext) error

// Run implements App.
func (f AppFunc) Run(ctx *AppContext) error { return f(ctx) }

// AppContext is the sandboxed environment handed to a running instance:
// scheduling, randomness, job information, logging, and the node's
// network stack. It also owns the instance's lifecycle — killing the
// context cancels periodic tasks and closes tracked sockets, which is how
// the daemon (and the churn manager) stop instances.
type AppContext struct {
	rt   Runtime
	node transport.Node

	// Job describes this instance's deployment.
	Job JobInfo
	// Log receives the application's log output.
	Log Logger

	// baton serializes the instance's tasks under LiveRuntime,
	// reproducing the cooperative execution model applications are
	// written against (the paper's coroutine scheduler): at any moment
	// at most one task of the instance runs, and the baton is yielded
	// at every park point — Sleep, waiter Wait, contended Lock, and
	// Blocking I/O sections. Nil under the simulation runtime, which is
	// cooperative by construction. holder records the goroutine that
	// owns the baton, so park points reached from foreign goroutines
	// (a driver thread calling into an instance) neither steal nor
	// corrupt the token — they simply run unserialized, as before.
	baton  chan struct{}
	holder atomic.Uint64

	mu      sync.Mutex
	killed  bool
	cancels []func()
	closers []io.Closer
}

// NewAppContext builds a context for one instance. A nil log defaults to
// NopLogger.
func NewAppContext(rt Runtime, node transport.Node, job JobInfo, log Logger) *AppContext {
	if log == nil {
		log = NopLogger{}
	}
	c := &AppContext{rt: rt, node: node, Job: job, Log: log}
	if _, live := rt.(*LiveRuntime); live {
		c.baton = make(chan struct{}, 1)
	}
	return c
}

// gid returns the calling goroutine's id (live park points only; the
// runtime never reuses ids, so holder comparisons cannot alias).
func gid() uint64 {
	var buf [64]byte
	b := buf[:runtime.Stack(buf[:], false)]
	b = b[len("goroutine "):]
	var id uint64
	for _, ch := range b {
		if ch < '0' || ch > '9' {
			break
		}
		id = id*10 + uint64(ch-'0')
	}
	return id
}

// acquireBaton takes the instance's execution slot (no-op in simulation).
func (c *AppContext) acquireBaton() {
	if c.baton != nil {
		c.baton <- struct{}{}
		c.holder.Store(gid())
	}
}

// releaseBaton yields the execution slot (no-op in simulation). The
// caller must hold it (task wrappers do by construction).
func (c *AppContext) releaseBaton() {
	if c.baton != nil {
		c.holder.Store(0)
		<-c.baton
	}
}

// yieldBaton releases the execution slot if — and only if — the calling
// goroutine holds it, reporting whether it did. Park points reached from
// foreign goroutines (outside any instance task) are a no-op, preserving
// their pre-baton behavior.
func (c *AppContext) yieldBaton() bool {
	if c.baton == nil || c.holder.Load() != gid() {
		return false
	}
	c.holder.Store(0)
	<-c.baton
	return true
}

// Blocking runs fn with the instance baton released, so a task blocked
// in real I/O (a socket read, an accept) does not starve the instance's
// other tasks. Under the simulation runtime this is a plain call: sim
// blocking parks in virtual time instead.
func (c *AppContext) Blocking(fn func()) {
	held := c.yieldBaton()
	fn()
	if held {
		c.acquireBaton()
	}
}

// batonWaiter yields the instance baton while parked, so the instance's
// other tasks run during the wait.
type batonWaiter struct {
	Waiter
	c *AppContext
}

func (w batonWaiter) Wait() any {
	held := w.c.yieldBaton()
	v := w.Waiter.Wait()
	if held {
		w.c.acquireBaton()
	}
	return v
}

// Runtime returns the context's runtime.
func (c *AppContext) Runtime() Runtime { return c.rt }

// Node returns the instance's network stack.
func (c *AppContext) Node() transport.Node { return c.node }

// Now returns the current time.
func (c *AppContext) Now() time.Time { return c.rt.Now() }

// Sleep parks the calling task, yielding the instance baton.
func (c *AppContext) Sleep(d time.Duration) {
	held := c.yieldBaton()
	c.rt.Sleep(d)
	if held {
		c.acquireBaton()
	}
}

// Rand returns the runtime's random source.
func (c *AppContext) Rand() *rand.Rand { return c.rt.Rand() }

// NewWaiter returns a fresh waiter whose Wait yields the instance baton.
func (c *AppContext) NewWaiter() Waiter {
	w := c.rt.NewWaiter()
	if c.baton == nil {
		return w
	}
	return batonWaiter{Waiter: w, c: c}
}

// NewLock returns a cooperative lock bound to the instance: a task
// parked on it yields the instance baton to the lock's owner.
func (c *AppContext) NewLock() *Lock {
	l := NewLock(c.rt)
	l.ctx = c
	return l
}

// InitLock binds a zero-value lock embedded in caller-owned state to the
// instance — NewLock without the allocation, for population-scaled
// structs (one lock per pooled connection).
func (c *AppContext) InitLock(l *Lock) {
	*l = Lock{}
	l.rt = c.rt
	l.ctx = c
}

// Killed reports whether the instance has been stopped.
func (c *AppContext) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// goWrap is the pooled kill-check wrapper Go schedules: one closure per
// pooled object, ever, so spawning a task allocates nothing here. The
// object recycles itself after snapshotting its fields, before running
// fn, so a long-running task never holds it.
type goWrap struct {
	c   *AppContext
	fn  func()
	run func()
}

var goWrapPool sync.Pool

func init() {
	goWrapPool.New = func() any {
		w := &goWrap{}
		w.run = func() { w.exec() }
		return w
	}
}

func (w *goWrap) exec() {
	c, fn := w.c, w.fn
	w.c, w.fn = nil, nil
	goWrapPool.Put(w)
	if c.Killed() {
		return
	}
	c.acquireBaton()
	defer c.releaseBaton()
	fn()
}

// Go starts fn as a task of this instance (the paper's events.thread).
// After Kill, new tasks are silently dropped.
func (c *AppContext) Go(fn func()) {
	if c.Killed() {
		return
	}
	w := goWrapPool.Get().(*goWrap)
	w.c, w.fn = c, fn
	c.rt.Go(w.run)
}

// After schedules fn once after d; it is canceled automatically on Kill.
func (c *AppContext) After(d time.Duration, fn func()) (cancel func()) {
	cancel = c.rt.After(d, func() {
		if c.Killed() {
			return
		}
		c.acquireBaton()
		defer c.releaseBaton()
		fn()
	})
	c.mu.Lock()
	c.cancels = append(c.cancels, cancel)
	c.mu.Unlock()
	return cancel
}

// Periodic runs fn every interval until stopped or the instance is killed
// (the paper's events.periodic). fn runs as a task, so it may block.
// It is safe under LiveRuntime: the stop flag and the re-armed timer are
// guarded, so a stop() (or Kill) racing a tick can neither be missed by
// the next re-arm nor leave a live timer behind.
func (c *AppContext) Periodic(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("core: non-positive periodic interval %s", interval))
	}
	var mu sync.Mutex
	stopped := false
	var cancel func()
	var tick func()
	tick = func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped || c.Killed() {
			return
		}
		cancel = c.rt.After(interval, func() {
			mu.Lock()
			dead := stopped
			mu.Unlock()
			if dead || c.Killed() {
				return
			}
			c.Go(fn)
			tick()
		})
	}
	tick()
	stopFn := func() {
		mu.Lock()
		stopped = true
		cc := cancel
		mu.Unlock()
		if cc != nil {
			cc()
		}
	}
	c.mu.Lock()
	c.cancels = append(c.cancels, stopFn)
	c.mu.Unlock()
	return stopFn
}

// Track registers a socket or other closer to be closed when the instance
// is killed, and returns it for convenience.
func (c *AppContext) Track(cl io.Closer) io.Closer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		cl.Close()
		return cl
	}
	c.closers = append(c.closers, cl)
	return cl
}

// Kill stops the instance: periodic and delayed tasks are canceled and
// tracked sockets closed, waking any task blocked on them. Kill is
// idempotent.
func (c *AppContext) Kill() {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return
	}
	c.killed = true
	cancels, closers := c.cancels, c.closers
	c.cancels, c.closers = nil, nil
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	for _, cl := range closers {
		cl.Close()
	}
}

// Instance is a running (or finished) application instance.
type Instance struct {
	Ctx *AppContext

	mu   sync.Mutex
	done bool
	err  error
}

// StartInstance creates a context and runs app in a new task, mirroring a
// daemon forking a sandboxed process.
func StartInstance(rt Runtime, node transport.Node, job JobInfo, log Logger, app App) *Instance {
	ctx := NewAppContext(rt, node, job, log)
	inst := &Instance{Ctx: ctx}
	rt.Go(func() {
		ctx.acquireBaton()
		err := app.Run(ctx)
		ctx.releaseBaton()
		inst.mu.Lock()
		inst.done, inst.err = true, err
		inst.mu.Unlock()
	})
	return inst
}

// Kill stops the instance.
func (i *Instance) Kill() { i.Ctx.Kill() }

// Done reports whether Run has returned, and its error.
func (i *Instance) Done() (bool, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.done, i.err
}
