package core

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// Logger is the minimal logging surface applications see; the logging
// package provides implementations that print locally or stream to the
// controller's log collector.
type Logger interface {
	Printf(format string, args ...any)
}

// NopLogger discards everything.
type NopLogger struct{}

// Printf implements Logger.
func (NopLogger) Printf(format string, args ...any) {}

// JobInfo is the deployment information every instance receives, matching
// the paper's job table: the instance's own address (job.me), the
// bootstrap list chosen by the controller (job.nodes, e.g. a single
// rendez-vous node or a random subset) and the instance's 1-based rank in
// the deployment sequence (job.position).
type JobInfo struct {
	JobID    string           `json:"job_id"`
	Me       transport.Addr   `json:"me"`
	Nodes    []transport.Addr `json:"nodes"`
	Position int              `json:"position"`
}

// App is a deployable SPLAY application. Run executes the application's
// main logic and returns when the application terminates or is killed;
// long-running applications typically loop until ctx.Killed().
type App interface {
	Run(ctx *AppContext) error
}

// AppFunc adapts a function to the App interface.
type AppFunc func(ctx *AppContext) error

// Run implements App.
func (f AppFunc) Run(ctx *AppContext) error { return f(ctx) }

// AppContext is the sandboxed environment handed to a running instance:
// scheduling, randomness, job information, logging, and the node's
// network stack. It also owns the instance's lifecycle — killing the
// context cancels periodic tasks and closes tracked sockets, which is how
// the daemon (and the churn manager) stop instances.
type AppContext struct {
	rt   Runtime
	node transport.Node

	// Job describes this instance's deployment.
	Job JobInfo
	// Log receives the application's log output.
	Log Logger

	mu      sync.Mutex
	killed  bool
	cancels []func()
	closers []io.Closer
}

// NewAppContext builds a context for one instance. A nil log defaults to
// NopLogger.
func NewAppContext(rt Runtime, node transport.Node, job JobInfo, log Logger) *AppContext {
	if log == nil {
		log = NopLogger{}
	}
	return &AppContext{rt: rt, node: node, Job: job, Log: log}
}

// Runtime returns the context's runtime.
func (c *AppContext) Runtime() Runtime { return c.rt }

// Node returns the instance's network stack.
func (c *AppContext) Node() transport.Node { return c.node }

// Now returns the current time.
func (c *AppContext) Now() time.Time { return c.rt.Now() }

// Sleep parks the calling task.
func (c *AppContext) Sleep(d time.Duration) { c.rt.Sleep(d) }

// Rand returns the runtime's random source.
func (c *AppContext) Rand() *rand.Rand { return c.rt.Rand() }

// NewWaiter returns a fresh waiter.
func (c *AppContext) NewWaiter() Waiter { return c.rt.NewWaiter() }

// NewLock returns a cooperative lock bound to the runtime.
func (c *AppContext) NewLock() *Lock { return NewLock(c.rt) }

// Killed reports whether the instance has been stopped.
func (c *AppContext) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// goWrap is the pooled kill-check wrapper Go schedules: one closure per
// pooled object, ever, so spawning a task allocates nothing here. The
// object recycles itself after snapshotting its fields, before running
// fn, so a long-running task never holds it.
type goWrap struct {
	c   *AppContext
	fn  func()
	run func()
}

var goWrapPool sync.Pool

func init() {
	goWrapPool.New = func() any {
		w := &goWrap{}
		w.run = func() { w.exec() }
		return w
	}
}

func (w *goWrap) exec() {
	c, fn := w.c, w.fn
	w.c, w.fn = nil, nil
	goWrapPool.Put(w)
	if c.Killed() {
		return
	}
	fn()
}

// Go starts fn as a task of this instance (the paper's events.thread).
// After Kill, new tasks are silently dropped.
func (c *AppContext) Go(fn func()) {
	if c.Killed() {
		return
	}
	w := goWrapPool.Get().(*goWrap)
	w.c, w.fn = c, fn
	c.rt.Go(w.run)
}

// After schedules fn once after d; it is canceled automatically on Kill.
func (c *AppContext) After(d time.Duration, fn func()) (cancel func()) {
	cancel = c.rt.After(d, func() {
		if c.Killed() {
			return
		}
		fn()
	})
	c.mu.Lock()
	c.cancels = append(c.cancels, cancel)
	c.mu.Unlock()
	return cancel
}

// Periodic runs fn every interval until stopped or the instance is killed
// (the paper's events.periodic). fn runs as a task, so it may block.
func (c *AppContext) Periodic(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("core: non-positive periodic interval %s", interval))
	}
	stopped := false
	var cancel func()
	var tick func()
	tick = func() {
		if stopped || c.Killed() {
			return
		}
		cancel = c.rt.After(interval, func() {
			if stopped || c.Killed() {
				return
			}
			c.Go(fn)
			tick()
		})
	}
	tick()
	stopFn := func() {
		stopped = true
		if cancel != nil {
			cancel()
		}
	}
	c.mu.Lock()
	c.cancels = append(c.cancels, stopFn)
	c.mu.Unlock()
	return stopFn
}

// Track registers a socket or other closer to be closed when the instance
// is killed, and returns it for convenience.
func (c *AppContext) Track(cl io.Closer) io.Closer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		cl.Close()
		return cl
	}
	c.closers = append(c.closers, cl)
	return cl
}

// Kill stops the instance: periodic and delayed tasks are canceled and
// tracked sockets closed, waking any task blocked on them. Kill is
// idempotent.
func (c *AppContext) Kill() {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return
	}
	c.killed = true
	cancels, closers := c.cancels, c.closers
	c.cancels, c.closers = nil, nil
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	for _, cl := range closers {
		cl.Close()
	}
}

// Instance is a running (or finished) application instance.
type Instance struct {
	Ctx *AppContext

	mu   sync.Mutex
	done bool
	err  error
}

// StartInstance creates a context and runs app in a new task, mirroring a
// daemon forking a sandboxed process.
func StartInstance(rt Runtime, node transport.Node, job JobInfo, log Logger, app App) *Instance {
	ctx := NewAppContext(rt, node, job, log)
	inst := &Instance{Ctx: ctx}
	rt.Go(func() {
		err := app.Run(ctx)
		inst.mu.Lock()
		inst.done, inst.err = true, err
		inst.mu.Unlock()
	})
	return inst
}

// Kill stops the instance.
func (i *Instance) Kill() { i.Ctx.Kill() }

// Done reports whether Run has returned, and its error.
func (i *Instance) Done() (bool, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.done, i.err
}
