package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Factory builds an application instance from deployment parameters (a
// JSON document supplied with the job, analogous to the arguments a SPLAY
// job descriptor passes to the Lua script).
type Factory func(params json.RawMessage) (App, error)

// Registry maps application names to factories. The controller ships job
// descriptors naming a registered application; daemons instantiate it.
// This replaces SPLAY's deployment of Lua source code (see DESIGN.md,
// substitutions).
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under name. Registering a duplicate name is
// rejected with an error instead of silently replacing the existing
// factory: a daemon whose registry lost an application mid-flight would
// instantiate the wrong code under the old job descriptor.
func (r *Registry) Register(name string, f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("core: duplicate app registration %q", name)
	}
	r.factories[name] = f
	return nil
}

// MustRegister is Register for static registration tables, where a
// duplicate is a programming error: it panics instead of returning it.
func (r *Registry) MustRegister(name string, f Factory) {
	if err := r.Register(name, f); err != nil {
		panic(err)
	}
}

// New instantiates the named application.
func (r *Registry) New(name string, params json.RawMessage) (App, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown application %q", name)
	}
	return f(params)
}

// Names lists registered applications in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
