// Package logging implements SPLAY's log library and the controller-side
// log collector. Applications print locally or stream records over the
// network to a collector process; daemons hand each application the
// collector address plus a unique identification key, and the collector
// rejects connections that don't present a known key (§3.1, §3.4).
package logging

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// Level grades log records.
type Level int

// Levels, lowest to highest severity.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "DEBUG"
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	default:
		return "ERROR"
	}
}

// Record is one log entry on the wire.
type Record struct {
	Key   string    `json:"key"` // daemon-issued identification key
	Time  time.Time `json:"time"`
	Level Level     `json:"level"`
	Node  string    `json:"node"`
	Msg   string    `json:"msg"`
}

// Sink consumes records.
type Sink interface {
	Emit(r Record) error
}

// WriterSink formats records onto an io.Writer (the "local" mode).
type WriterSink struct {
	mu sync.Mutex
	W  io.Writer
}

// Emit implements Sink.
func (s *WriterSink) Emit(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := fmt.Fprintf(s.W, "%s %-5s %s %s\n", r.Time.Format(time.RFC3339), r.Level, r.Node, r.Msg)
	return err
}

// Logger is the application-facing API; it satisfies core.Logger.
type Logger struct {
	sink  Sink
	node  string
	key   string
	min   Level
	off   bool
	clock func() time.Time
}

// New builds a logger emitting to sink; clock supplies timestamps
// (virtual time under simulation).
func New(sink Sink, node, key string, clock func() time.Time) *Logger {
	if clock == nil {
		clock = time.Now
	}
	return &Logger{sink: sink, node: node, key: key, clock: clock}
}

// SetLevel drops records below min.
func (l *Logger) SetLevel(min Level) { l.min = min }

// SetEnabled toggles logging entirely (the paper's dynamic enable/disable).
func (l *Logger) SetEnabled(on bool) { l.off = !on }

// Enabled reports whether a record at level would be emitted — the
// paper's dynamic enable/disable check, factored out so the disabled
// and level-filtered paths cost one inlined branch and no allocations
// (no Sprintf, no Record, nothing boxed for the sink).
func (l *Logger) Enabled(level Level) bool {
	return !l.off && level >= l.min && l.sink != nil
}

// Log emits one record at the given level. The guard runs before any
// formatting work, so a filtered call is free (see TestDisabledLogAllocs).
func (l *Logger) Log(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.emit(level, format, args)
}

// emit is Log's slow path: format, stamp and hand to the sink.
func (l *Logger) emit(level Level, format string, args []any) {
	l.sink.Emit(Record{ //nolint:errcheck // logging is best effort
		Key: l.key, Time: l.clock(), Level: level,
		Node: l.node, Msg: fmt.Sprintf(format, args...),
	})
}

// Printf implements core.Logger at Info level.
func (l *Logger) Printf(format string, args ...any) { l.Log(Info, format, args...) }

// Debugf, Warnf and Errorf are level-specific helpers.
func (l *Logger) Debugf(format string, args ...any) { l.Log(Debug, format, args...) }
func (l *Logger) Warnf(format string, args ...any)  { l.Log(Warn, format, args...) }
func (l *Logger) Errorf(format string, args ...any) { l.Log(Error, format, args...) }

// NetSink streams records to a collector over a transport connection.
// Emits are batched per connection the way the RPC server batches its
// replies: emitters enqueue under a plain mutex and return, and the
// task that finds the writer idle becomes the flusher, draining
// everything queued behind it. The mutex is never held across Encode
// (which blocks in virtual time), so logging never parks the caller
// behind another task's network write.
type NetSink struct {
	enc *llenc.Writer
	c   transport.Conn

	mu       sync.Mutex
	queue    []Record
	spare    []Record // recycled batch backing
	flushing bool
	err      error // first write error; the stream is dead after one
}

// DialCollector connects to a collector.
func DialCollector(node transport.Node, addr transport.Addr, timeout time.Duration) (*NetSink, error) {
	c, err := node.Dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("logging: dial collector: %w", err)
	}
	return &NetSink{enc: llenc.NewWriter(c), c: c}, nil
}

// Emit implements Sink. A nil return means the record was queued; a
// failed stream reports its first error to every later Emit.
func (s *NetSink) Emit(r Record) error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.queue = append(s.queue, r)
	if s.flushing {
		s.mu.Unlock()
		return nil
	}
	s.flushing = true
	for len(s.queue) > 0 && s.err == nil {
		batch := s.queue
		s.queue = s.spare[:0]
		s.mu.Unlock()
		var err error
		for i := range batch {
			if err == nil {
				err = s.enc.Encode(&batch[i])
			}
			batch[i] = Record{} // drop string references
		}
		s.mu.Lock()
		if err != nil && s.err == nil {
			s.err = err
		}
		s.spare = batch[:0]
	}
	s.flushing = false
	err := s.err
	s.mu.Unlock()
	return err
}

// Close closes the collector connection.
func (s *NetSink) Close() error { return s.c.Close() }

// Collector is the controller-side log process: it accepts connections
// from daemons' applications and forwards authenticated records to a
// sink. Connections presenting an unknown key are dropped.
type Collector struct {
	ln    transport.Listener
	sink  Sink
	spawn func(fn func())

	mu   sync.Mutex
	keys map[string]bool
	recv uint64
}

// NewCollector listens on the node's port and forwards to sink; spawn
// runs connection handlers as tasks (core.Runtime.Go or `go`).
func NewCollector(node transport.Node, port int, sink Sink, spawn func(fn func())) (*Collector, error) {
	ln, err := node.Listen(port)
	if err != nil {
		return nil, err
	}
	c := &Collector{ln: ln, sink: sink, spawn: spawn, keys: make(map[string]bool)}
	spawn(c.acceptLoop)
	return c, nil
}

// Addr returns the collector's address.
func (c *Collector) Addr() transport.Addr { return c.ln.Addr() }

// Authorize registers an application key.
func (c *Collector) Authorize(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keys[key] = true
}

// Received reports accepted record count.
func (c *Collector) Received() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recv
}

// Close stops the collector.
func (c *Collector) Close() error { return c.ln.Close() }

func (c *Collector) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.spawn(func() { c.serve(conn) })
	}
}

func (c *Collector) serve(conn transport.Conn) {
	defer conn.Close()
	dec := llenc.NewReader(conn)
	for {
		var r Record
		if err := dec.Decode(&r); err != nil {
			return
		}
		c.mu.Lock()
		ok := c.keys[r.Key]
		if ok {
			c.recv++
		}
		c.mu.Unlock()
		if !ok {
			return // unauthenticated sender: drop the connection
		}
		c.sink.Emit(r) //nolint:errcheck
	}
}
