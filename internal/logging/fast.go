package logging

import (
	"time"

	"github.com/splaykit/splay/internal/llenc"
)

// Fast-path JSON codec for Record, the log plane's only frame type,
// under the same contract as the rpc/ctlproto/metrics codecs: encoded
// bytes identical to encoding/json's output for this struct, and a
// decline-don't-guess parser that either reproduces encoding/json's
// result exactly or reports false so the caller falls back. The one
// interesting field is Time: time.Time marshals through its own
// MarshalJSON (strict RFC 3339 with nanoseconds), so the fast paths
// bracket exactly the inputs whose formatting/parsing provably agrees
// with it and decline the rest (out-of-range years, exotic zone
// offsets, any non-strict timestamp text).

// timeSafe reports whether t formats through AppendFormat(RFC3339Nano)
// byte-identically to t.MarshalJSON: a four-digit year and a
// whole-minute zone offset below ±24h — precisely the cases
// MarshalJSON's strict serializer accepts rather than erroring.
func timeSafe(t time.Time) bool {
	if y := t.Year(); y < 0 || y > 9999 {
		return false
	}
	_, off := t.Zone()
	if off%60 != 0 {
		return false
	}
	if off < 0 {
		off = -off
	}
	return off < 24*3600
}

// AppendJSON implements llenc.FastMarshaler. On success the appended
// bytes equal json.Marshal(r); on false buf is returned with its
// original length.
func (r *Record) AppendJSON(buf []byte) ([]byte, bool) {
	if !llenc.JSONSafe(r.Key) || !llenc.JSONSafe(r.Node) || !llenc.JSONSafe(r.Msg) {
		return buf, false
	}
	if !timeSafe(r.Time) {
		return buf, false
	}
	b := append(buf, `{"key":`...)
	b = llenc.AppendJSONString(b, r.Key)
	b = append(b, `,"time":"`...)
	b = r.Time.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":`...)
	b = llenc.AppendInt(b, int64(r.Level))
	b = append(b, `,"node":`...)
	b = llenc.AppendJSONString(b, r.Node)
	b = append(b, `,"msg":`...)
	b = llenc.AppendJSONString(b, r.Msg)
	return append(b, '}'), true
}

// ParseJSON implements llenc.FastUnmarshaler: escapes, unknown keys
// and non-strict timestamps decline, leaving r untouched for the
// encoding/json fallback.
func (r *Record) ParseJSON(data []byte) bool {
	l := llenc.Lexer{Data: data}
	var out Record
	l.SkipWS()
	if !l.Consume('{') {
		return false
	}
	l.SkipWS()
	if l.Consume('}') {
		if !l.End() {
			return false
		}
		*r = out
		return true
	}
	for {
		l.SkipWS()
		key, ok := l.RawString()
		if !ok {
			return false
		}
		l.SkipWS()
		if !l.Consume(':') {
			return false
		}
		l.SkipWS()
		switch string(key) {
		case "key":
			out.Key, ok = l.String()
		case "time":
			var raw []byte
			raw, ok = l.RawString()
			if ok {
				out.Time, ok = parseStrictTime(raw)
			}
		case "level":
			var v int
			v, ok = l.Int()
			out.Level = Level(v)
		case "node":
			out.Node, ok = l.String()
		case "msg":
			out.Msg, ok = l.String()
		default:
			return false
		}
		if !ok {
			return false
		}
		l.SkipWS()
		if l.Consume(',') {
			continue
		}
		if !l.Consume('}') || !l.End() {
			return false
		}
		*r = out
		return true
	}
}

// parseStrictTime accepts exactly the strict RFC 3339 shape
// time.Time.UnmarshalJSON accepts — "2006-01-02T15:04:05[.frac]Z" or a
// "±hh:mm" offset, uppercase T and Z — and parses it with the RFC3339
// layout, which Go's Parse treats as strict, so the result cannot
// diverge from encoding/json's. Anything else declines.
func parseStrictTime(b []byte) (time.Time, bool) {
	// Minimal shape check; Parse validates digits and ranges.
	if len(b) < len("2006-01-02T15:04:05Z") || b[10] != 'T' {
		return time.Time{}, false
	}
	switch c := b[len(b)-1]; {
	case c == 'Z':
	case len(b) >= 6 && (b[len(b)-6] == '+' || b[len(b)-6] == '-') && b[len(b)-3] == ':':
	default:
		return time.Time{}, false
	}
	t, err := time.Parse(time.RFC3339, string(b))
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}
