package logging

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
)

// TestDisabledLogAllocs pins the satellite fix: a disabled or
// level-filtered Log call must not pay Sprintf, a Record copy or any
// allocation before the guard drops it.
func TestDisabledLogAllocs(t *testing.T) {
	lg := New(&WriterSink{W: io.Discard}, "n1:8000", "k", func() time.Time { return time.Time{} })

	lg.SetEnabled(false)
	if n := testing.AllocsPerRun(200, func() {
		lg.Errorf("dropped without formatting")
	}); n != 0 {
		t.Errorf("disabled no-arg Log allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		lg.Errorf("dropped %d %s", 7, "args")
	}); n != 0 {
		t.Errorf("disabled Log with args allocates %.1f/op", n)
	}

	lg.SetEnabled(true)
	lg.SetLevel(Warn)
	if n := testing.AllocsPerRun(200, func() {
		lg.Debugf("filtered %d %s", 7, "args")
	}); n != 0 {
		t.Errorf("level-filtered Log allocates %.1f/op", n)
	}

	// Sanity: the enabled path still emits.
	var sb strings.Builder
	lg2 := New(&WriterSink{W: &sb}, "n", "k", nil)
	lg2.Printf("emitted %d", 42)
	if !strings.Contains(sb.String(), "emitted 42") {
		t.Fatal("enabled path lost the record")
	}
}

// countingSink counts Emit calls behind a mutex.
type countingSink struct {
	mu sync.Mutex
	n  int
}

func (s *countingSink) Emit(Record) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return nil
}

func (s *countingSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// TestCollectorParallelEmitLive hammers one collector from many
// concurrent live-network streams; the race detector is the assertion,
// plus no authenticated record may be lost.
func TestCollectorParallelEmitLive(t *testing.T) {
	t.Parallel()
	node := livenet.NewNode("127.0.0.1")
	sink := &countingSink{}
	col, err := NewCollector(node, 0, sink, func(fn func()) { go fn() })
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	defer col.Close()

	const streams, perStream = 8, 48 // divisible by the 4 emitters per stream
	for i := 0; i < streams; i++ {
		col.Authorize(fmt.Sprintf("key-%d", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ns, err := DialCollector(livenet.NewNode("127.0.0.1"), col.Addr(), time.Minute)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer ns.Close()
			lg := New(ns, fmt.Sprintf("n%d", i), fmt.Sprintf("key-%d", i), nil)
			var inner sync.WaitGroup
			for g := 0; g < 4; g++ { // concurrent emitters on ONE NetSink
				inner.Add(1)
				go func(g int) {
					defer inner.Done()
					for j := 0; j < perStream/4; j++ {
						lg.Printf("node %d goroutine %d record %d", i, g, j)
					}
				}(g)
			}
			inner.Wait()
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for col.Received() != streams*perStream && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := col.Received(); got != streams*perStream {
		t.Fatalf("collector received %d records, want %d", got, streams*perStream)
	}
	if got := sink.count(); got != streams*perStream {
		t.Fatalf("sink saw %d records, want %d", got, streams*perStream)
	}
}

// TestCollectorRejectsKeySwitchMidStream pins mid-stream
// authentication: a connection that starts with a good key and then
// presents an unknown one is dropped at the switch, keeping the
// records already accepted.
func TestCollectorRejectsKeySwitchMidStream(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, 2, 1)
	sink := &countingSink{}
	var col *Collector
	k.Go(func() {
		var err error
		col, err = NewCollector(nw.Node(0), 7998, sink, k.Go)
		if err != nil {
			t.Errorf("collector: %v", err)
			return
		}
		col.Authorize("good")
	})
	k.GoAfter(time.Second, func() {
		ns, err := DialCollector(nw.Node(1), col.Addr(), time.Minute)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		good := New(ns, "n1", "good", k.Now)
		bad := New(ns, "n1", "forged", k.Now)
		good.Printf("one")
		good.Printf("two")
		bad.Printf("smuggled")  // connection dies here
		good.Printf("too late") // same conn: must never arrive
	})
	k.RunFor(time.Minute)
	if got := col.Received(); got != 2 {
		t.Fatalf("collector accepted %d records, want 2", got)
	}
}

// TestCollectorRestartWhileStreamsReconnect bounces the collector and
// checks daemons' streams reconnect and keep delivering — the paper's
// long-lived testbed sessions outliving a controller restart.
func TestCollectorRestartWhileStreamsReconnect(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, 4, 1)
	sink := &countingSink{}
	newCol := func() *Collector {
		col, err := NewCollector(nw.Node(0), 7998, sink, k.Go)
		if err != nil {
			t.Errorf("collector: %v", err)
			return nil
		}
		for i := 1; i <= 3; i++ {
			col.Authorize(fmt.Sprintf("k-n%d", i))
		}
		return col
	}
	var col *Collector
	k.Go(func() { col = newCol() })

	// Three nodes log continuously, redialing whenever their stream dies.
	emitted := make([]int, 4)
	for i := 1; i <= 3; i++ {
		host := i
		k.GoAfter(time.Second, func() {
			var ns *NetSink
			for tick := 0; tick < 60; tick++ {
				if ns == nil {
					s, err := DialCollector(nw.Node(host), col.Addr(), 5*time.Second)
					if err != nil {
						k.Sleep(time.Second)
						continue
					}
					ns = s
				}
				err := ns.Emit(Record{
					Key: fmt.Sprintf("k-n%d", host), Time: k.Now(),
					Node: simnet.HostName(host), Msg: fmt.Sprintf("tick %d", tick),
				})
				if err != nil {
					ns.Close()
					ns = nil
					continue // redial next round
				}
				emitted[host]++
				k.Sleep(time.Second)
			}
		})
	}

	// Let streams settle, then crash-restart the collector host: every
	// stream resets, the daemons redial, the fresh collector takes over.
	k.RunFor(15 * time.Second)
	nw.Host(0).SetDown(true)
	k.RunFor(5 * time.Second)
	nw.Host(0).SetDown(false)
	k.Go(func() { col = newCol() })
	k.RunFor(90 * time.Second)

	if col.Received() == 0 {
		t.Fatal("no records arrived at the restarted collector")
	}
	total := emitted[1] + emitted[2] + emitted[3]
	if sink.count() < 50 || total < 50 {
		t.Fatalf("streams stalled after restart: %d emits, sink saw %d", total, sink.count())
	}
}
