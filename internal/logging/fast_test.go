package logging

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// checkRecordParse is the differential oracle: whatever the fast
// parser accepts must match encoding/json's decode exactly; whatever
// it declines must leave the receiver untouched.
func checkRecordParse(t *testing.T, data []byte) {
	t.Helper()
	sentinel := Record{Key: "sentinel", Msg: "untouched"}
	fast := sentinel
	ok := fast.ParseJSON(data)
	var want Record
	jerr := json.Unmarshal(data, &want)
	if !ok {
		if !reflect.DeepEqual(fast, sentinel) {
			t.Fatalf("declined parse mutated receiver: %+v", fast)
		}
		return
	}
	if jerr != nil {
		t.Fatalf("fast parser accepted %q, encoding/json rejects: %v", data, jerr)
	}
	if !fast.Time.Equal(want.Time) || fast.Key != want.Key || fast.Level != want.Level ||
		fast.Node != want.Node || fast.Msg != want.Msg {
		t.Fatalf("parse diverges for %q:\n fast %+v\n json %+v", data, fast, want)
	}
}

func checkRecordEncode(t *testing.T, r *Record) {
	t.Helper()
	want, jerr := json.Marshal(r)
	got, ok := r.AppendJSON(nil)
	if !ok {
		return // declined: the fallback handles it (or errors identically)
	}
	if jerr != nil {
		t.Fatalf("fast encoder accepted a record encoding/json rejects (%v): %s", jerr, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fast encode diverges:\n got  %s\n want %s", got, want)
	}
	checkRecordParse(t, want)
}

func TestRecordCodecMatchesEncodingJSON(t *testing.T) {
	t.Parallel()
	zones := []*time.Location{
		time.UTC,
		time.FixedZone("CET", 3600),
		time.FixedZone("NPT", 5*3600+45*60), // +05:45, whole minutes
		time.FixedZone("odd", 3601),         // offset with seconds: declined
	}
	times := []time.Time{
		time.Unix(0, 0),
		time.Unix(1234567890, 123456789),
		time.Unix(1234567890, 120000000), // trailing zeros trimmed
		time.Date(9999, 12, 31, 23, 59, 59, 999999999, time.UTC),
		time.Date(10000, 1, 1, 0, 0, 0, 0, time.UTC), // 5-digit year: declined
		time.Date(-1, 1, 1, 0, 0, 0, 0, time.UTC),    // negative year: declined
		{}, // zero time, year 1
	}
	for _, loc := range zones {
		for _, tm := range times {
			rec := &Record{Key: "k-n3", Time: tm.In(loc), Level: Warn, Node: "n3:8000", Msg: "joined ring as 42"}
			checkRecordEncode(t, rec)
		}
	}
	for _, rec := range []*Record{
		{},
		{Key: "k", Time: time.Unix(5, 0).UTC(), Level: Level(-3), Node: "n", Msg: ""},
		{Msg: "üñsafe"},    // declined: non-ASCII
		{Msg: "tab\there"}, // declined: escape needed
		{Node: "html<&>"},  // declined: HTML escaping
	} {
		checkRecordEncode(t, rec)
	}
}

func TestRecordParserDeclines(t *testing.T) {
	t.Parallel()
	for _, s := range []string{
		`{"key":"k","time":"2009-02-13T23:31:30Z","level":1,"node":"n","msg":"m","x":1}`, // unknown key
		`{"key":"k","time":"2009-02-13t23:31:30Z","level":1,"node":"n","msg":"m"}`,       // lowercase t
		`{"key":"k","time":"2009-02-13T23:31:30z","level":1,"node":"n","msg":"m"}`,       // lowercase z
		`{"key":"k","time":"2009-02-13T23:31:30+0100","level":1,"node":"n","msg":"m"}`,   // bad offset
		`{"key":"k","time":"2009-02-13T23:31:30.5Z","level":1.5,"node":"n","msg":"m"}`,   // float level
		`{"key":"k\u0041","time":"2009-02-13T23:31:30Z","level":1,"node":"n","msg":"m"}`, // escape
		`{"key":"k","time":"not a time","level":1,"node":"n","msg":"m"}`,
		`trailing{}`,
	} {
		checkRecordParse(t, []byte(s))
	}
	// Strict-but-valid shapes the fast path must accept.
	for _, s := range []string{
		`{"key":"k","time":"2009-02-13T23:31:30.123456789Z","level":0,"node":"n","msg":"m"}`,
		`{"key":"k","time":"2009-02-13T23:31:30+05:45","level":3,"node":"n","msg":"m"}`,
		`{"key":"k","time":"2009-02-13T23:31:30-08:00","level":-2,"node":"n","msg":"m"}`,
		`{}`,
	} {
		sentinelFree := Record{}
		if !sentinelFree.ParseJSON([]byte(s)) {
			t.Errorf("fast parser declined strict record %s", s)
		}
		checkRecordParse(t, []byte(s))
	}
}

// TestRecordRoundTripOverWriter pins the llenc integration: a Record
// framed by the fast encoder decodes identically through the fast
// parser, and the wire bytes equal the reflection path's.
func TestRecordRoundTripOverWriter(t *testing.T) {
	t.Parallel()
	rec := Record{Key: "k-n7", Time: time.Unix(1234567890, 42).UTC(), Level: Info, Node: "n7:8000", Msg: "85 pieces done"}
	fast, ok := (&rec).AppendJSON(nil)
	if !ok {
		t.Fatal("fast encoder declined a plain record")
	}
	slow, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast, slow) {
		t.Fatalf("wire bytes differ:\n fast %s\n slow %s", fast, slow)
	}
	var back Record
	if !back.ParseJSON(fast) {
		t.Fatal("fast parser declined its own encoder's output")
	}
	if !back.Time.Equal(rec.Time) || back.Msg != rec.Msg || back.Key != rec.Key {
		t.Fatalf("round trip drifted: %+v", back)
	}
}
