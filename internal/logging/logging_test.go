package logging

import (
	"strings"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
)

func TestWriterSinkFormatting(t *testing.T) {
	var sb strings.Builder
	lg := New(&WriterSink{W: &sb}, "n3:8000", "k", func() time.Time { return time.Unix(0, 0).UTC() })
	lg.Printf("joined ring as %d", 42)
	lg.Debugf("hidden by default? no — debug is the floor")
	out := sb.String()
	if !strings.Contains(out, "joined ring as 42") || !strings.Contains(out, "n3:8000") {
		t.Fatalf("output %q", out)
	}
}

func TestLevelFilterAndDisable(t *testing.T) {
	var sb strings.Builder
	lg := New(&WriterSink{W: &sb}, "n", "k", nil)
	lg.SetLevel(Warn)
	lg.Printf("info hidden")
	lg.Warnf("warn shown")
	lg.Errorf("error shown")
	if strings.Contains(sb.String(), "hidden") {
		t.Fatal("level filter failed")
	}
	if !strings.Contains(sb.String(), "warn shown") || !strings.Contains(sb.String(), "error shown") {
		t.Fatal("warn/error dropped")
	}
	lg.SetEnabled(false)
	lg.Errorf("muted")
	if strings.Contains(sb.String(), "muted") {
		t.Fatal("disable failed")
	}
}

func TestCollectorOverNetwork(t *testing.T) {
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, 2, 1)
	var sb strings.Builder
	var col *Collector
	k.Go(func() {
		var err error
		col, err = NewCollector(nw.Node(0), 7998, &WriterSink{W: &sb}, k.Go)
		if err != nil {
			t.Errorf("collector: %v", err)
			return
		}
		col.Authorize("secret-key")
	})
	k.GoAfter(time.Second, func() {
		sink, err := DialCollector(nw.Node(1), col.Addr(), time.Minute)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		lg := New(sink, "n1:8000", "secret-key", k.Now)
		lg.Printf("hello collector")
		lg.Warnf("watch out")
	})
	k.RunFor(time.Minute)
	if col.Received() != 2 {
		t.Fatalf("collector received %d records", col.Received())
	}
	if !strings.Contains(sb.String(), "hello collector") {
		t.Fatalf("record lost: %q", sb.String())
	}
}

func TestCollectorRejectsUnknownKey(t *testing.T) {
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, 2, 1)
	var sb strings.Builder
	var col *Collector
	k.Go(func() {
		var err error
		col, err = NewCollector(nw.Node(0), 7998, &WriterSink{W: &sb}, k.Go)
		if err != nil {
			t.Errorf("collector: %v", err)
		}
	})
	k.GoAfter(time.Second, func() {
		sink, err := DialCollector(nw.Node(1), col.Addr(), time.Minute)
		if err != nil {
			return
		}
		lg := New(sink, "n1:8000", "forged-key", k.Now)
		lg.Printf("should not arrive")
		lg.Printf("second attempt")
	})
	k.RunFor(time.Minute)
	if col.Received() != 0 {
		t.Fatalf("unauthenticated records accepted: %d", col.Received())
	}
	if strings.Contains(sb.String(), "arrive") {
		t.Fatal("record leaked to sink")
	}
}
