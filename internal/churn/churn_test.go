package churn

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
)

func TestParsePaperScript(t *testing.T) {
	s, err := ParseScript(PaperScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 6 {
		t.Fatalf("phases = %d, want 6", len(s.Phases))
	}
	p := s.Phases[0]
	if p.From != 30*time.Second || p.JoinN != 10 {
		t.Fatalf("phase 1 wrong: %+v", p)
	}
	p = s.Phases[2]
	if !p.Const || p.ChurnPct != 0.5 || p.From != 10*time.Minute || p.To != 15*time.Minute {
		t.Fatalf("phase 3 wrong: %+v", p)
	}
	p = s.Phases[3]
	if p.LeavePct != 0.5 {
		t.Fatalf("phase 4 wrong: %+v", p)
	}
	p = s.Phases[4]
	if p.IncN != 10 || p.ChurnPct != 1.5 {
		t.Fatalf("phase 5 wrong: %+v", p)
	}
	if !s.Phases[5].Stop {
		t.Fatalf("phase 6 wrong: %+v", s.Phases[5])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"jump 5m",
		"at x join 3",
		"at 5m join -2",
		"at 5m explode 2",
		"from 10m to 5m inc 3",
		"from 5m to 10m wobble",
		"from 5m to 10m inc 5 churn 50", // missing %
	}
	for _, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("parsed invalid script %q", src)
		}
	}
	// Comments and blank lines are fine.
	if _, err := ParseScript("# comment\n\nat 10s join 3 # trailing\n"); err != nil {
		t.Errorf("comments rejected: %v", err)
	}
}

func TestFromScriptPopulationShape(t *testing.T) {
	// The Fig. 4 script: population 0→10 at 30s, →20 by 10m, constant
	// (churned) to 15m, halved at 15m, →20 by 20m, then 0.
	s, err := ParseScript(PaperScript)
	if err != nil {
		t.Fatal(err)
	}
	tr := FromScript(s, 1)
	pop, joins, leaves := tr.Population(time.Minute)

	at := func(min int) int { return pop[min] }
	if at(0) != 10 {
		t.Errorf("population after 30s join = %d, want 10", at(0))
	}
	if at(9) < 18 || at(9) > 20 {
		t.Errorf("population at 10m = %d, want ≈20", at(9))
	}
	if at(14) < 18 || at(14) > 22 {
		t.Errorf("population at 15m = %d, want ≈20 (const churn)", at(14))
	}
	if at(15) < 9 || at(15) > 13 {
		t.Errorf("population after massive leave = %d, want ≈10", at(15))
	}
	if final := pop[len(pop)-1]; final != 0 {
		t.Errorf("final population = %d, want 0", final)
	}
	// Phase 3 (minutes 10–14) must show both joins and leaves (churn).
	churnJoins, churnLeaves := 0, 0
	for m := 10; m < 15; m++ {
		churnJoins += joins[m]
		churnLeaves += leaves[m]
	}
	if churnJoins < 5 || churnLeaves < 5 {
		t.Errorf("const-churn phase: joins=%d leaves=%d, want ≈10 each", churnJoins, churnLeaves)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s, _ := ParseScript(PaperScript)
	tr := FromScript(s, 2)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("round trip length %d != %d", len(back), len(tr))
	}
	for i := range tr {
		if back[i].Action != tr[i].Action || back[i].Node != tr[i].Node {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, back[i], tr[i])
		}
		if d := back[i].At - tr[i].At; d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("event %d time drift %s", i, d)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	bad := []string{"x join 0", "1.0 explode 0", "1.0 join -1", "1.0 join"}
	for _, line := range bad {
		if _, err := ReadTrace(strings.NewReader(line)); err == nil {
			t.Errorf("parsed invalid trace line %q", line)
		}
	}
}

func TestSpeedUp(t *testing.T) {
	tr := Trace{{At: 10 * time.Minute, Action: Join, Node: 0}}
	fast := tr.SpeedUp(10)
	if fast[0].At != time.Minute {
		t.Fatalf("sped-up time = %s, want 1m", fast[0].At)
	}
}

func TestAmplifyPreservesTimelineAndAddsTurnover(t *testing.T) {
	s, _ := ParseScript(PaperScript)
	tr := FromScript(s, 3)
	amp := tr.Amplify(2, 3)
	if len(amp) <= len(tr) {
		t.Fatalf("amplified trace not larger: %d vs %d", len(amp), len(tr))
	}
	pop, _, _ := tr.Population(time.Minute)
	apop, _, _ := amp.Population(time.Minute)
	// Population shape is preserved within a small band.
	for i := 0; i < len(pop) && i < len(apop); i++ {
		diff := apop[i] - pop[i]
		if diff < -3 || diff > 3 {
			t.Fatalf("amplified population diverges at minute %d: %d vs %d", i, apop[i], pop[i])
		}
	}
}

// Property: traces generated from any valid script are balanced — a slot
// never leaves while down or joins while up, and population never goes
// negative.
func TestQuickTraceWellFormed(t *testing.T) {
	f := func(seed int64, joins uint8, churn uint8) bool {
		src := "at 10s join " + itoa(int(joins)%40+2) + "\n" +
			"from 1m to 3m const churn " + itoa(int(churn)%200) + "%\n" +
			"at 4m stop"
		s, err := ParseScript(src)
		if err != nil {
			return false
		}
		tr := FromScript(s, seed)
		up := map[int]bool{}
		for _, e := range tr {
			switch e.Action {
			case Join:
				if up[e.Node] {
					return false
				}
				up[e.Node] = true
			case Leave:
				if !up[e.Node] {
					return false
				}
				delete(up, e.Node)
			}
		}
		return len(up) == 0 // stop empties the system
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestAmplifyWellFormedHighFactor(t *testing.T) {
	s, _ := ParseScript(PaperScript)
	for _, factor := range []float64{1, 1.5, 3.5, 10} {
		tr := FromScript(s, 4).Amplify(factor, 4)
		up := map[int]bool{}
		for _, e := range tr {
			switch e.Action {
			case Join:
				if up[e.Node] {
					t.Fatalf("factor %.1f: double join of slot %d", factor, e.Node)
				}
				up[e.Node] = true
			case Leave:
				if !up[e.Node] {
					t.Fatalf("factor %.1f: leave of down slot %d", factor, e.Node)
				}
				delete(up, e.Node)
			}
		}
	}
}

func TestExecutorReplaysTrace(t *testing.T) {
	k := sim.NewKernel()
	rt := core.NewSimRuntime(k, 1)
	var log []string
	ctl := NodeControlFuncs{
		Start: func(slot int) { log = append(log, "start") },
		Stop:  func(slot int) { log = append(log, "stop") },
	}
	tr := Trace{
		{At: time.Second, Action: Join, Node: 0},
		{At: 2 * time.Second, Action: Join, Node: 1},
		{At: 3 * time.Second, Action: Leave, Node: 0},
		{At: 3 * time.Second, Action: Leave, Node: 0}, // duplicate ignored
	}
	ex := NewExecutor(rt, tr, ctl)
	ex.Run()
	k.Run()
	if len(log) != 3 {
		t.Fatalf("executor issued %d commands, want 3: %v", len(log), log)
	}
	if ex.Alive() != 1 {
		t.Fatalf("alive = %d, want 1", ex.Alive())
	}
	started, stopped := ex.Counts()
	if started != 2 || stopped != 1 {
		t.Fatalf("counts = %d/%d", started, stopped)
	}
}

func TestExecutorStopCancels(t *testing.T) {
	k := sim.NewKernel()
	rt := core.NewSimRuntime(k, 1)
	n := 0
	ctl := NodeControlFuncs{Start: func(int) { n++ }, Stop: func(int) {}}
	ex := NewExecutor(rt, Trace{{At: time.Minute, Action: Join, Node: 0}}, ctl)
	ex.Run()
	ex.Stop()
	k.Run()
	if n != 0 {
		t.Fatalf("canceled event fired")
	}
}

func TestMaintainPopulation(t *testing.T) {
	tr := MaintainPopulation(50, time.Hour, 10*time.Minute, 1)
	pop, joins, leaves := tr.Population(time.Minute)
	for m := 1; m < 59; m++ {
		if pop[m] < 45 || pop[m] > 50 {
			t.Fatalf("population at minute %d = %d, want ≈50", m, pop[m])
		}
	}
	totalJ, totalL := 0, 0
	for i := range joins {
		totalJ += joins[i]
		totalL += leaves[i]
	}
	if totalL < 100 {
		t.Fatalf("too little churn: %d leaves in an hour with 10m sessions", totalL)
	}
	if totalJ <= totalL {
		t.Fatalf("joins %d must exceed leaves %d (replacements)", totalJ, totalL)
	}
}
