package churn

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Action is a node state transition.
type Action int

const (
	// Join brings a node slot up.
	Join Action = iota
	// Leave takes a node slot down.
	Leave
)

func (a Action) String() string {
	if a == Join {
		return "join"
	}
	return "leave"
}

// Event is one trace entry: node slot `Node` joins or leaves at `At`.
type Event struct {
	At     time.Duration
	Action Action
	Node   int
}

// Trace is a time-ordered sequence of events. Node slots are small
// integers; the executor maps them onto hosts/instances.
type Trace []Event

// Sort orders the trace by time (stable on equal timestamps).
func (tr Trace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].At < tr[j].At })
}

// MaxSlot returns the highest node slot referenced (-1 for empty traces),
// which sizes the host pool an executor needs.
func (tr Trace) MaxSlot() int {
	max := -1
	for _, e := range tr {
		if e.Node > max {
			max = e.Node
		}
	}
	return max
}

// Duration returns the time of the last event.
func (tr Trace) Duration() time.Duration {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].At
}

// SpeedUp compresses the trace timeline by factor (2 maps one minute onto
// thirty seconds), the tooling §5.5 uses to raise churn rates beyond the
// original trace while preserving its structure.
func (tr Trace) SpeedUp(factor float64) Trace {
	if factor <= 0 {
		panic("churn: non-positive speed-up")
	}
	out := make(Trace, len(tr))
	for i, e := range tr {
		e.At = time.Duration(float64(e.At) / factor)
		out[i] = e
	}
	return out
}

// Amplify increases turnover while preserving the population timeline:
// with probability (factor-1) per whole unit, a session is split by a
// brief leave/rejoin at a random midpoint, so the node count is unchanged
// except for momentary dips but the join/leave rates scale with factor.
// Factor 1 returns an equivalent trace.
func (tr Trace) Amplify(factor float64, seed int64) Trace {
	if factor < 1 {
		panic("churn: amplify factor below 1")
	}
	rng := rand.New(rand.NewSource(seed))
	out := append(Trace(nil), tr...)
	opens := map[int]time.Duration{}
	sorted := append(Trace(nil), tr...)
	sorted.Sort()
	split := func(slot int, t1, t2 time.Duration) {
		extra := factor - 1
		for extra > 0 {
			if extra < 1 && rng.Float64() >= extra {
				break
			}
			if t2-t1 < 4*time.Second {
				break
			}
			// Midpoint well inside the session so the rejoin stays
			// strictly before the session's own departure.
			window := t2 - t1
			m := t1 + window/10 + time.Duration(rng.Int63n(int64(window*7/10)))
			gap := (t2 - m) / 10
			if gap > 30*time.Second {
				gap = 30 * time.Second
			}
			if gap < time.Second {
				gap = time.Second
			}
			if m+gap >= t2 {
				gap = (t2 - m) / 2
				if gap <= 0 {
					break
				}
			}
			out = append(out,
				Event{At: m, Action: Leave, Node: slot},
				Event{At: m + gap, Action: Join, Node: slot})
			t1 = m + gap // later splits stay after this rejoin
			extra--
		}
	}
	for _, e := range sorted {
		switch e.Action {
		case Join:
			opens[e.Node] = e.At
		case Leave:
			if t1, ok := opens[e.Node]; ok {
				delete(opens, e.Node)
				split(e.Node, t1, e.At)
			}
		}
	}
	// Sessions still open at trace end can be split up to the last event.
	end := sorted.Duration()
	for slot, t1 := range opens {
		split(slot, t1, end)
	}
	out.Sort()
	return out
}

// Population returns the number of nodes alive at each bucket boundary
// and the joins/leaves per bucket — the data behind Fig. 4's plot and the
// churn panels of Fig. 11.
func (tr Trace) Population(bucket time.Duration) (pop []int, joins, leaves []int) {
	if bucket <= 0 {
		panic("churn: non-positive bucket")
	}
	sorted := append(Trace(nil), tr...)
	sorted.Sort()
	n := int(sorted.Duration()/bucket) + 1
	pop = make([]int, n+1)
	joins = make([]int, n+1)
	leaves = make([]int, n+1)
	cur := 0
	idx := 0
	for b := 0; b <= n; b++ {
		limit := time.Duration(b+1) * bucket
		for idx < len(sorted) && sorted[idx].At < limit {
			if sorted[idx].Action == Join {
				cur++
				joins[b]++
			} else {
				cur--
				leaves[b]++
			}
			idx++
		}
		pop[b] = cur
	}
	return pop, joins, leaves
}

// FromScript compiles a synthetic description into a concrete trace.
// Which nodes leave is drawn deterministically from seed; node slots are
// reused after departures, so MaxSlot approximates the peak population.
func FromScript(s *Script, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	alive := []int{} // live slots
	free := []int{}  // reusable slots
	nextSlot := 0

	takeSlot := func() int {
		if len(free) > 0 {
			s := free[len(free)-1]
			free = free[:len(free)-1]
			return s
		}
		s := nextSlot
		nextSlot++
		return s
	}
	join := func(at time.Duration) {
		slot := takeSlot()
		alive = append(alive, slot)
		tr = append(tr, Event{At: at, Action: Join, Node: slot})
	}
	leave := func(at time.Duration) {
		if len(alive) == 0 {
			return
		}
		i := rng.Intn(len(alive))
		slot := alive[i]
		alive = append(alive[:i], alive[i+1:]...)
		free = append(free, slot)
		tr = append(tr, Event{At: at, Action: Leave, Node: slot})
	}

	for _, p := range s.Phases {
		switch {
		case p.To == p.From: // instantaneous
			switch {
			case p.Stop:
				for len(alive) > 0 {
					leave(p.From)
				}
			case p.JoinN > 0:
				for i := 0; i < p.JoinN; i++ {
					join(p.From)
				}
			case p.LeavePct > 0:
				n := int(float64(len(alive))*p.LeavePct + 0.5)
				for i := 0; i < n; i++ {
					leave(p.From)
				}
			default:
				for i := 0; i < p.LeaveN; i++ {
					leave(p.From)
				}
			}
		default: // interval
			dur := p.To - p.From
			// Build the interval's operations first, then apply them in
			// time order: a churn departure must never target a slot
			// whose (drift) join lies later in the timeline.
			type op struct {
				at   time.Duration
				join bool
			}
			var ops []op
			if p.IncN > 0 {
				step := dur / time.Duration(p.IncN)
				for i := 0; i < p.IncN; i++ {
					ops = append(ops, op{p.From + time.Duration(i)*step + step/2, true})
				}
			} else if p.IncN < 0 {
				step := dur / time.Duration(-p.IncN)
				for i := 0; i < -p.IncN; i++ {
					ops = append(ops, op{p.From + time.Duration(i)*step + step/2, false})
				}
			}
			if p.ChurnPct > 0 {
				turnover := int(float64(len(alive))*p.ChurnPct + 0.5)
				if turnover > 0 {
					step := dur / time.Duration(turnover)
					for i := 0; i < turnover; i++ {
						at := p.From + time.Duration(i)*step + step/4
						ops = append(ops, op{at, false}, op{at + step/4, true})
					}
				}
			}
			sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
			for _, o := range ops {
				if o.join {
					join(o.at)
				} else {
					leave(o.at)
				}
			}
		}
	}
	tr.Sort()
	return tr
}

// WriteTrace serializes a trace in the repository's text format: one
// "<seconds> <join|leave> <node>" triple per line, compatible in spirit
// with the availability-trace repositories the paper cites.
func WriteTrace(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	for _, e := range tr {
		if _, err := fmt.Fprintf(bw, "%.3f %s %d\n", e.At.Seconds(), e.Action, e.Node); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the text format produced by WriteTrace.
func ReadTrace(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("churn: trace line %d: want '<sec> <join|leave> <node>'", lineNo)
		}
		sec, err := strconv.ParseFloat(f[0], 64)
		if err != nil || sec < 0 {
			return nil, fmt.Errorf("churn: trace line %d: bad time %q", lineNo, f[0])
		}
		var act Action
		switch f[1] {
		case "join":
			act = Join
		case "leave":
			act = Leave
		default:
			return nil, fmt.Errorf("churn: trace line %d: bad action %q", lineNo, f[1])
		}
		node, err := strconv.Atoi(f[2])
		if err != nil || node < 0 {
			return nil, fmt.Errorf("churn: trace line %d: bad node %q", lineNo, f[2])
		}
		tr = append(tr, Event{At: time.Duration(sec * float64(time.Second)), Action: act, Node: node})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.Sort()
	return tr, nil
}
