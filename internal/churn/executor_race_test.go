package churn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
)

// TestExecutorLiveRuntimeRace replays a dense trace on the live runtime —
// where every event fires from its own time.AfterFunc goroutine — while
// hammering Alive/Counts from readers. Run with -race: the seed executor
// mutated alive/started/stopped from those goroutines with no lock.
func TestExecutorLiveRuntimeRace(t *testing.T) {
	t.Parallel()
	rt := core.NewLiveRuntime(1)
	var started, stopped atomic.Int64
	ctl := NodeControlFuncs{
		Start: func(int) { started.Add(1) },
		Stop:  func(int) { stopped.Add(1) },
	}
	// Joins burst in the first few milliseconds; leaves burst well after,
	// so per-slot ordering survives timer-goroutine scheduling jitter
	// while each burst still fires with full concurrency.
	var tr Trace
	const n = 64
	for i := 0; i < n; i++ {
		at := time.Duration(i%8) * time.Millisecond
		tr = append(tr, Event{At: at, Action: Join, Node: i})
		tr = append(tr, Event{At: at + 250*time.Millisecond, Action: Leave, Node: i})
	}
	ex := NewExecutor(rt, tr, ctl)

	stopRead := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
					ex.Alive()
					ex.Counts()
				}
			}
		}()
	}
	ex.Run()
	// Wait for the replay to drain: all joins and leaves issued.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s, p := ex.Counts()
		if s == n && p == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay incomplete: started=%d stopped=%d, want %d/%d", s, p, n, n)
		}
		time.Sleep(time.Millisecond)
	}
	close(stopRead)
	wg.Wait()
	if ex.Alive() != 0 {
		t.Fatalf("alive = %d after balanced trace", ex.Alive())
	}
	if started.Load() != n || stopped.Load() != n {
		t.Fatalf("node control saw %d/%d commands, want %d/%d", started.Load(), stopped.Load(), n, n)
	}
}

// TestExecutorStopRacesInFlightFires stops the executor while events are
// mid-flight; counts must freeze once Stop has returned and no callback
// may fire afterwards beyond those already past the halt check.
func TestExecutorStopRacesInFlightFires(t *testing.T) {
	t.Parallel()
	rt := core.NewLiveRuntime(2)
	var cmds atomic.Int64
	ctl := NodeControlFuncs{
		Start: func(int) { cmds.Add(1) },
		Stop:  func(int) { cmds.Add(1) },
	}
	var tr Trace
	for i := 0; i < 500; i++ {
		tr = append(tr, Event{At: time.Duration(i%20) * time.Millisecond, Action: Join, Node: i})
	}
	ex := NewExecutor(rt, tr, ctl)
	ex.Run()
	time.Sleep(5 * time.Millisecond)
	ex.Stop()
	// Let any in-flight AfterFunc goroutines drain, then verify the
	// replay state is frozen.
	time.Sleep(10 * time.Millisecond)
	s1, _ := ex.Counts()
	a1 := ex.Alive()
	time.Sleep(25 * time.Millisecond)
	s2, _ := ex.Counts()
	if s1 != s2 {
		t.Fatalf("starts kept accumulating after Stop: %d -> %d", s1, s2)
	}
	if a2 := ex.Alive(); a1 != a2 {
		t.Fatalf("alive changed after Stop: %d -> %d", a1, a2)
	}
}

// TestExecutorStopDuringRun races Stop against Run itself: scheduling
// must not leak cancels appended after the halt.
func TestExecutorStopDuringRun(t *testing.T) {
	t.Parallel()
	for i := 0; i < 20; i++ {
		rt := core.NewLiveRuntime(int64(i))
		ctl := NodeControlFuncs{Start: func(int) {}, Stop: func(int) {}}
		var tr Trace
		for j := 0; j < 200; j++ {
			tr = append(tr, Event{At: time.Duration(j) * time.Millisecond, Action: Join, Node: j})
		}
		ex := NewExecutor(rt, tr, ctl)
		done := make(chan struct{})
		go func() {
			ex.Run()
			close(done)
		}()
		ex.Stop()
		<-done
		ex.Stop()
	}
}
