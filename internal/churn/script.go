// Package churn implements SPLAY's churn manager (§3.2): reproducing the
// dynamics of a distributed system from real traces or synthetic
// descriptions, deterministically, so competing protocols face the very
// same arrival/departure sequence.
//
// A synthetic description is a small script (Fig. 4):
//
//	at 30s join 10
//	from 5m to 10m inc 10
//	from 10m to 15m const churn 50%
//	at 15m leave 50%
//	from 15m to 20m inc 10 churn 150%
//	at 20m stop
//
// Scripts compile to a Trace — an explicit timeline of join/leave events
// against numbered node slots — which the executor replays against any
// NodeControl (simulated hosts, daemons, …). Traces can also be loaded
// directly, sped up, or amplified (§5.5's tooling).
package churn

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Phase is one parsed script line.
type Phase struct {
	From, To time.Duration // To == From for instantaneous "at" lines

	// Instant actions ("at"):
	JoinN    int     // join N nodes
	LeaveN   int     // leave N nodes
	LeavePct float64 // leave a fraction of the population (0 disables)
	Stop     bool    // everyone leaves

	// Interval actions ("from … to …"):
	IncN     int     // population delta over the interval (may be negative)
	Const    bool    // population held constant
	ChurnPct float64 // extra turnover: this fraction of the average
	// population leaves and is replaced over the interval
}

// Script is a parsed churn description.
type Script struct {
	Phases []Phase
}

// ParseScript parses the synthetic description language. Durations accept
// Go-style suffixes (30s, 5m, 1h); bare numbers are seconds. Percentages
// carry a trailing '%'.
func ParseScript(src string) (*Script, error) {
	var s Script
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(strings.ToLower(line))
		p, err := parseLine(fields)
		if err != nil {
			return nil, fmt.Errorf("churn: line %d (%q): %w", lineNo+1, raw, err)
		}
		s.Phases = append(s.Phases, p)
	}
	if len(s.Phases) == 0 {
		return nil, fmt.Errorf("churn: empty script")
	}
	return &s, nil
}

func parseLine(f []string) (Phase, error) {
	var p Phase
	switch f[0] {
	case "at":
		if len(f) < 3 {
			return p, fmt.Errorf("want: at <time> <action>")
		}
		t, err := parseDur(f[1])
		if err != nil {
			return p, err
		}
		p.From, p.To = t, t
		switch f[2] {
		case "join":
			if len(f) != 4 {
				return p, fmt.Errorf("want: at <time> join <n>")
			}
			n, err := strconv.Atoi(f[3])
			if err != nil || n < 0 {
				return p, fmt.Errorf("bad join count %q", f[3])
			}
			p.JoinN = n
		case "leave":
			if len(f) != 4 {
				return p, fmt.Errorf("want: at <time> leave <n|p%%>")
			}
			if strings.HasSuffix(f[3], "%") {
				pct, err := parsePct(f[3])
				if err != nil {
					return p, err
				}
				p.LeavePct = pct
			} else {
				n, err := strconv.Atoi(f[3])
				if err != nil || n < 0 {
					return p, fmt.Errorf("bad leave count %q", f[3])
				}
				p.LeaveN = n
			}
		case "stop":
			p.Stop = true
		default:
			return p, fmt.Errorf("unknown action %q", f[2])
		}
		return p, nil

	case "from":
		if len(f) < 5 || f[2] != "to" {
			return p, fmt.Errorf("want: from <t1> to <t2> <spec…>")
		}
		t1, err := parseDur(f[1])
		if err != nil {
			return p, err
		}
		t2, err := parseDur(f[3])
		if err != nil {
			return p, err
		}
		if t2 <= t1 {
			return p, fmt.Errorf("interval end %s not after start %s", t2, t1)
		}
		p.From, p.To = t1, t2
		rest := f[4:]
		switch rest[0] {
		case "inc", "dec":
			if len(rest) < 2 {
				return p, fmt.Errorf("want: inc <n>")
			}
			n, err := strconv.Atoi(rest[1])
			if err != nil || n < 0 {
				return p, fmt.Errorf("bad delta %q", rest[1])
			}
			if rest[0] == "dec" {
				n = -n
			}
			p.IncN = n
			rest = rest[2:]
		case "const":
			p.Const = true
			rest = rest[1:]
		default:
			return p, fmt.Errorf("unknown interval spec %q", rest[0])
		}
		if len(rest) > 0 {
			if rest[0] != "churn" || len(rest) != 2 {
				return p, fmt.Errorf("trailing tokens %v", rest)
			}
			pct, err := parsePct(rest[1])
			if err != nil {
				return p, err
			}
			p.ChurnPct = pct
		}
		return p, nil
	}
	return p, fmt.Errorf("line must start with 'at' or 'from'")
}

func parseDur(s string) (time.Duration, error) {
	if n, err := strconv.Atoi(s); err == nil {
		return time.Duration(n) * time.Second, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return d, nil
}

func parsePct(s string) (float64, error) {
	if !strings.HasSuffix(s, "%") {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	return v / 100, nil
}

// PaperScript is the exact Fig. 4 example.
const PaperScript = `at 30s join 10
from 5m to 10m inc 10
from 10m to 15m const churn 50%
at 15m leave 50%
from 15m to 20m inc 10 churn 150%
at 20m stop`
