package churn

import (
	"math/rand"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
)

// NodeControl starts and stops node slots. The simulation experiments
// implement it by reviving/failing simnet hosts and instantiating
// applications; the live controller implements it with daemon commands.
type NodeControl interface {
	StartNode(slot int)
	StopNode(slot int)
}

// NodeControlFuncs adapts two functions to NodeControl.
type NodeControlFuncs struct {
	Start func(slot int)
	Stop  func(slot int)
}

// StartNode implements NodeControl.
func (f NodeControlFuncs) StartNode(slot int) { f.Start(slot) }

// StopNode implements NodeControl.
func (f NodeControlFuncs) StopNode(slot int) { f.Stop(slot) }

// Executor replays a trace against a NodeControl on a runtime: the churn
// manager component of Fig. 2, which "sends instructions to the daemons
// for stopping and starting processes on-the-fly".
type Executor struct {
	rt    core.Runtime
	ctl   NodeControl
	trace Trace

	// mu guards the replay state: under LiveRuntime the scheduled events
	// fire from time.AfterFunc goroutines, concurrently with each other
	// and with Alive/Counts/Stop callers.
	mu      sync.Mutex
	alive   map[int]bool
	started int
	stopped int
	cancels []func()
	halted  bool
}

// NewExecutor prepares (but does not start) a replay.
func NewExecutor(rt core.Runtime, trace Trace, ctl NodeControl) *Executor {
	sorted := append(Trace(nil), trace...)
	sorted.Sort()
	return &Executor{rt: rt, ctl: ctl, trace: sorted, alive: make(map[int]bool)}
}

// Run schedules every trace event relative to now. It returns immediately;
// events fire as tasks on the runtime.
func (e *Executor) Run() {
	for _, ev := range e.trace {
		ev := ev
		cancel := e.rt.After(ev.At, func() {
			e.mu.Lock()
			if e.halted {
				// Stop won the race with this in-flight fire.
				e.mu.Unlock()
				return
			}
			var run func()
			switch ev.Action {
			case Join:
				if !e.alive[ev.Node] {
					e.alive[ev.Node] = true
					e.started++
					run = func() { e.ctl.StartNode(ev.Node) }
				}
			case Leave:
				if e.alive[ev.Node] {
					delete(e.alive, ev.Node)
					e.stopped++
					run = func() { e.ctl.StopNode(ev.Node) }
				}
			}
			e.mu.Unlock()
			// Node control may block (protocol joins, socket teardown),
			// so it runs as a task, never on the event loop itself.
			if run != nil {
				e.rt.Go(run)
			}
		})
		e.mu.Lock()
		halted := e.halted
		if !halted {
			e.cancels = append(e.cancels, cancel)
		}
		e.mu.Unlock()
		if halted {
			cancel()
			return
		}
	}
}

// Stop cancels all pending events and suppresses in-flight fires
// (already-executed ones are unaffected). The executor cannot be reused
// after Stop.
func (e *Executor) Stop() {
	e.mu.Lock()
	e.halted = true
	cancels := e.cancels
	e.cancels = nil
	e.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Alive returns the currently live slot count.
func (e *Executor) Alive() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.alive)
}

// Counts reports how many starts/stops have been issued.
func (e *Executor) Counts() (started, stopped int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.started, e.stopped
}

// MaintainPopulation returns a trace that holds a fixed-size population of
// n nodes for the given duration while sessions last sessionMean on
// average (exponentially distributed) — the §3.2 long-running-DHT use
// case where the churn manager "maintains a fixed-size population and
// automatically bootstraps new nodes as faults occur".
func MaintainPopulation(n int, duration, sessionMean time.Duration, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	nextSlot := 0
	for i := 0; i < n; i++ {
		tr = append(tr, Event{At: 0, Action: Join, Node: nextSlot})
		nextSlot++
	}
	// For each of the n logical positions, generate end-of-session and
	// replacement times.
	for i := 0; i < n; i++ {
		at := time.Duration(0)
		slot := i
		for {
			session := time.Duration(rng.ExpFloat64() * float64(sessionMean))
			at += session
			if at >= duration {
				break
			}
			tr = append(tr, Event{At: at, Action: Leave, Node: slot})
			// Replacement joins promptly on a fresh slot.
			at += 2 * time.Second
			if at >= duration {
				break
			}
			slot = nextSlot
			nextSlot++
			tr = append(tr, Event{At: at, Action: Join, Node: slot})
		}
	}
	tr.Sort()
	return tr
}
