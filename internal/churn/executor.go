package churn

import (
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/core"
)

// NodeControl starts and stops node slots. The simulation experiments
// implement it by reviving/failing simnet hosts and instantiating
// applications; the live controller implements it with daemon commands.
type NodeControl interface {
	StartNode(slot int)
	StopNode(slot int)
}

// NodeControlFuncs adapts two functions to NodeControl.
type NodeControlFuncs struct {
	Start func(slot int)
	Stop  func(slot int)
}

// StartNode implements NodeControl.
func (f NodeControlFuncs) StartNode(slot int) { f.Start(slot) }

// StopNode implements NodeControl.
func (f NodeControlFuncs) StopNode(slot int) { f.Stop(slot) }

// Executor replays a trace against a NodeControl on a runtime: the churn
// manager component of Fig. 2, which "sends instructions to the daemons
// for stopping and starting processes on-the-fly".
type Executor struct {
	rt    core.Runtime
	ctl   NodeControl
	trace Trace

	alive   map[int]bool
	started int
	stopped int
	cancels []func()
}

// NewExecutor prepares (but does not start) a replay.
func NewExecutor(rt core.Runtime, trace Trace, ctl NodeControl) *Executor {
	sorted := append(Trace(nil), trace...)
	sorted.Sort()
	return &Executor{rt: rt, ctl: ctl, trace: sorted, alive: make(map[int]bool)}
}

// Run schedules every trace event relative to now. It returns immediately;
// events fire as tasks on the runtime.
func (e *Executor) Run() {
	for _, ev := range e.trace {
		ev := ev
		cancel := e.rt.After(ev.At, func() {
			// Node control may block (protocol joins, socket teardown),
			// so it runs as a task, never on the event loop itself.
			switch ev.Action {
			case Join:
				if !e.alive[ev.Node] {
					e.alive[ev.Node] = true
					e.started++
					e.rt.Go(func() { e.ctl.StartNode(ev.Node) })
				}
			case Leave:
				if e.alive[ev.Node] {
					delete(e.alive, ev.Node)
					e.stopped++
					e.rt.Go(func() { e.ctl.StopNode(ev.Node) })
				}
			}
		})
		e.cancels = append(e.cancels, cancel)
	}
}

// Stop cancels all pending events (already-fired ones are unaffected).
func (e *Executor) Stop() {
	for _, c := range e.cancels {
		c()
	}
	e.cancels = nil
}

// Alive returns the currently live slot count.
func (e *Executor) Alive() int { return len(e.alive) }

// Counts reports how many starts/stops have been issued.
func (e *Executor) Counts() (started, stopped int) { return e.started, e.stopped }

// MaintainPopulation returns a trace that holds a fixed-size population of
// n nodes for the given duration while sessions last sessionMean on
// average (exponentially distributed) — the §3.2 long-running-DHT use
// case where the churn manager "maintains a fixed-size population and
// automatically bootstraps new nodes as faults occur".
func MaintainPopulation(n int, duration, sessionMean time.Duration, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	nextSlot := 0
	for i := 0; i < n; i++ {
		tr = append(tr, Event{At: 0, Action: Join, Node: nextSlot})
		nextSlot++
	}
	// For each of the n logical positions, generate end-of-session and
	// replacement times.
	for i := 0; i < n; i++ {
		at := time.Duration(0)
		slot := i
		for {
			session := time.Duration(rng.ExpFloat64() * float64(sessionMean))
			at += session
			if at >= duration {
				break
			}
			tr = append(tr, Event{At: at, Action: Leave, Node: slot})
			// Replacement joins promptly on a fresh slot.
			at += 2 * time.Second
			if at >= duration {
				break
			}
			slot = nextSlot
			nextSlot++
			tr = append(tr, Event{At: at, Action: Join, Node: slot})
		}
	}
	tr.Sort()
	return tr
}
