package rpc

import (
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// BenchmarkRPCThroughput measures the steady-state cost of one complete
// call on a pooled connection in the simulator: client envelope encode,
// simnet delivery, server envelope decode, handler dispatch, result
// encode and client response decode. Virtual time is free, so ns/op and
// allocs/op are purely the message plane's CPU and garbage cost — the
// number that bounds every experiment's wall clock once the kernel
// itself is allocation-free. CI records it as BENCH_rpc.json.
func BenchmarkRPCThroughput(b *testing.B) {
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 2 * time.Millisecond}, 2, 1)
	rt := core.NewSimRuntime(k, 1)
	sctx := core.NewAppContext(rt, nw.Node(1), core.JobInfo{Me: transport.Addr{Host: "n1", Port: 8000}}, nil)
	addr := transport.Addr{Host: "n1", Port: 8000}

	k.Go(func() {
		s := NewServer(sctx)
		s.Register("echo", func(args Args) (any, error) { return args.String(0), nil })
		s.Register("sum", func(args Args) (any, error) { return args.Int(0) + args.Int(1), nil })
		s.Register("notify", func(args Args) (any, error) { return nil, nil })
		if err := s.Start(8000); err != nil {
			b.Errorf("server: %v", err)
		}
	})
	cctx := core.NewAppContext(rt, nw.Node(0), core.JobInfo{}, nil)
	c := NewClient(cctx)
	// Warm the pooled connection and every buffer pool outside the timer.
	k.Go(func() {
		if _, err := c.Call(addr, "echo", "warmup"); err != nil {
			b.Errorf("warmup: %v", err)
		}
	})
	k.Run()

	b.ResetTimer()
	k.Go(func() {
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(addr, "echo", "payload-string"); err != nil {
				b.Errorf("call: %v", err)
				return
			}
		}
	})
	k.Run()
}

// BenchmarkRPCCallShapes breaks the throughput number down by call
// shape: string echo, two-int sum, a struct arg with nil result (the
// Chord notify shape) and the same struct pre-encoded with rpc.Marshal.
func BenchmarkRPCCallShapes(b *testing.B) {
	type ref struct {
		ID   uint64         `json:"id"`
		Addr transport.Addr `json:"addr"`
	}
	preEncoded, err := Marshal(ref{ID: 12345, Addr: transport.Addr{Host: "n0", Port: 8000}})
	if err != nil {
		b.Fatal(err)
	}
	shapes := []struct {
		name string
		call func(c *Client, addr transport.Addr) error
	}{
		{"echo-string", func(c *Client, addr transport.Addr) error {
			_, err := c.Call(addr, "echo", "payload-string")
			return err
		}},
		{"sum-ints", func(c *Client, addr transport.Addr) error {
			_, err := c.Call(addr, "sum", 19, 23)
			return err
		}},
		{"notify-struct", func(c *Client, addr transport.Addr) error {
			_, err := c.Call(addr, "notify", ref{ID: 12345, Addr: transport.Addr{Host: "n0", Port: 8000}})
			return err
		}},
		{"notify-raw", func(c *Client, addr transport.Addr) error {
			_, err := c.Call(addr, "notify", preEncoded)
			return err
		}},
	}
	for _, shape := range shapes {
		b.Run(shape.name, func(b *testing.B) {
			k := sim.NewKernel()
			nw := simnet.New(k, simnet.Symmetric{RTT: 2 * time.Millisecond}, 2, 1)
			rt := core.NewSimRuntime(k, 1)
			sctx := core.NewAppContext(rt, nw.Node(1), core.JobInfo{Me: transport.Addr{Host: "n1", Port: 8000}}, nil)
			addr := transport.Addr{Host: "n1", Port: 8000}
			k.Go(func() {
				s := NewServer(sctx)
				s.Register("echo", func(args Args) (any, error) { return args.String(0), nil })
				s.Register("sum", func(args Args) (any, error) { return args.Int(0) + args.Int(1), nil })
				s.Register("notify", func(args Args) (any, error) { return nil, nil })
				if err := s.Start(8000); err != nil {
					b.Errorf("server: %v", err)
				}
			})
			cctx := core.NewAppContext(rt, nw.Node(0), core.JobInfo{}, nil)
			c := NewClient(cctx)
			k.Go(func() {
				if err := shape.call(c, addr); err != nil {
					b.Errorf("warmup: %v", err)
				}
			})
			k.Run()
			b.ResetTimer()
			k.Go(func() {
				for i := 0; i < b.N; i++ {
					if err := shape.call(c, addr); err != nil {
						b.Errorf("call: %v", err)
						return
					}
				}
			})
			k.Run()
		})
	}
}
