package rpc

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// Client issues calls to remote servers. It is owned by one application
// instance; its pooled connections are tracked by the instance context and
// die with it.
type Client struct {
	ctx *core.AppContext

	// Timeout applies to Call; CallTimeout overrides it per call.
	Timeout time.Duration
	// DropRate silently discards this fraction of outgoing requests,
	// the paper's mechanism for simulating lossy links at the library
	// level (the call then fails by timeout).
	DropRate float64

	pooling  bool
	peers    map[transport.Addr]*peerConn
	ins      Instruments
	redialed map[transport.Addr]bool // dial-once memory behind Redials
}

// NewClient returns a client with the paper's default two-minute timeout
// and pooling enabled.
func NewClient(ctx *core.AppContext) *Client {
	return &Client{ctx: ctx, Timeout: DefaultTimeout, pooling: true, peers: make(map[transport.Addr]*peerConn)}
}

// SetPooling toggles connection reuse (ablation: one connection per call
// versus multiplexing).
func (c *Client) SetPooling(on bool) { c.pooling = on }

// Call invokes method on the server at to and decodes nothing: use the
// returned Result. It fails with ErrTimeout after the client timeout, the
// paper's a_call status semantics.
func (c *Client) Call(to transport.Addr, method string, args ...any) (Result, error) {
	return c.CallTimeout(to, c.Timeout, method, args...)
}

// CallTimeout is Call with an explicit timeout.
func (c *Client) CallTimeout(to transport.Addr, timeout time.Duration, method string, args ...any) (Result, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c.ins.Calls.Inc()
	if c.DropRate > 0 && c.ctx.Rand().Float64() < c.DropRate {
		// Simulated loss: the request vanishes and the caller times out.
		c.ctx.Sleep(timeout)
		c.ins.Errors.Inc()
		c.ins.Timeouts.Inc()
		return nil, ErrTimeout
	}
	// The timeout budget covers the whole call, dialing included.
	start := c.ctx.Now()
	res, err := c.callInstrumented(to, timeout, start, method, args)
	if err != nil {
		c.ins.Errors.Inc()
		if err == ErrTimeout {
			c.ins.Timeouts.Inc()
		}
		return nil, err
	}
	c.ins.Latency.Observe(int64(c.ctx.Now().Sub(start)))
	return res, nil
}

// callInstrumented is CallTimeout's body behind the instrument hooks.
func (c *Client) callInstrumented(to transport.Addr, timeout time.Duration, start time.Time, method string, args []any) (Result, error) {
	pc, err := c.peer(to, timeout)
	if err != nil {
		return nil, err
	}
	remaining := timeout - c.ctx.Now().Sub(start)
	if remaining <= 0 {
		return nil, ErrTimeout
	}
	return pc.call(remaining, method, args)
}

// Ping checks liveness (the paper's rpc.ping) and returns the round-trip
// time.
func (c *Client) Ping(to transport.Addr, timeout time.Duration) (time.Duration, error) {
	start := c.ctx.Now()
	if _, err := c.CallTimeout(to, timeout, pingMethod); err != nil {
		return 0, err
	}
	return c.ctx.Now().Sub(start), nil
}

// peer returns a live pooled connection to the destination, dialing one if
// needed. Without pooling it always dials a fresh connection.
func (c *Client) peer(to transport.Addr, timeout time.Duration) (*peerConn, error) {
	if !c.pooling {
		pc := newPeerConn(c, to, false)
		pc.dial(timeout)
		return pc, pc.err
	}
	pc, ok := c.peers[to]
	if ok && !pc.broken {
		if pc.ready {
			return pc, nil
		}
		// Another task is dialing; wait for the verdict.
		w := c.ctx.NewWaiter()
		w.WakeAfter(timeout, error(ErrTimeout))
		pc.dialWaiters = append(pc.dialWaiters, w)
		if v := w.Wait(); v != nil {
			// Timed out before the dial verdict: drop our (now recycled,
			// pooled) waiter from the list so the verdict cannot touch it.
			for i, dw := range pc.dialWaiters {
				if dw == w {
					pc.dialWaiters = append(pc.dialWaiters[:i], pc.dialWaiters[i+1:]...)
					break
				}
			}
			return nil, v.(error)
		}
		return pc, nil
	}
	pc = newPeerConn(c, to, true)
	c.peers[to] = pc
	if c.ins.Redials != nil {
		// Retry accounting: a second dial to the same destination means
		// the pooled peer died since last use.
		if c.redialed == nil {
			c.redialed = make(map[transport.Addr]bool)
		}
		if c.redialed[to] {
			c.ins.Redials.Inc()
		}
		c.redialed[to] = true
	}
	pc.dial(timeout)
	if pc.err != nil {
		return nil, pc.err
	}
	return pc, nil
}

// peerConn multiplexes calls to one destination over one stream.
type peerConn struct {
	client *Client
	to     transport.Addr
	pooled bool

	conn    transport.Conn
	enc     *llenc.Writer
	wlock   *core.Lock
	scratch request // encode staging; guarded by wlock so &scratch never escapes a call

	ready       bool
	broken      bool
	err         error
	dialWaiters []core.Waiter

	nextID  uint64
	pending map[uint64]core.Waiter
}

func newPeerConn(c *Client, to transport.Addr, pooled bool) *peerConn {
	return &peerConn{
		client:  c,
		to:      to,
		pooled:  pooled,
		wlock:   core.NewLock(c.ctx.Runtime()),
		pending: make(map[uint64]core.Waiter),
	}
}

func (p *peerConn) dial(timeout time.Duration) {
	conn, err := p.client.ctx.Node().Dial(p.to, timeout)
	if err != nil {
		p.fail(fmt.Errorf("rpc: dial %s: %w", p.to, err))
		return
	}
	conn = p.client.ins.meter(conn)
	p.conn = conn
	p.client.ctx.Track(conn)
	p.enc = llenc.NewWriter(conn)
	p.ready = true
	for _, w := range p.dialWaiters {
		w.Wake(nil)
	}
	p.dialWaiters = nil
	p.client.ctx.Go(p.readLoop)
}

// fail marks the connection dead and propagates the error to every waiter.
func (p *peerConn) fail(err error) {
	if p.broken {
		return
	}
	p.broken = true
	p.err = err
	if p.pooled {
		delete(p.client.peers, p.to)
	}
	if p.conn != nil {
		p.conn.Close()
	}
	for _, w := range p.dialWaiters {
		w.Wake(err)
	}
	p.dialWaiters = nil
	for id, w := range p.pending {
		delete(p.pending, id)
		w.Wake(err)
	}
}

// respPool recycles decoded response envelopes between the read loop and
// the callers it wakes. Result bytes are always freshly allocated (they
// are handed to the application), so only the struct is reused.
var respPool = sync.Pool{New: func() any { return new(response) }}

func putResp(r *response) {
	*r = response{}
	respPool.Put(r)
}

func (p *peerConn) readLoop() {
	dec := llenc.NewReader(p.conn)
	for {
		payload, err := dec.ReadMessage()
		if err != nil {
			p.fail(fmt.Errorf("rpc: connection to %s lost: %w", p.to, err))
			return
		}
		resp := respPool.Get().(*response)
		if !resp.parseJSON(payload) {
			*resp = response{}
			if err := json.Unmarshal(payload, resp); err != nil {
				putResp(resp)
				p.fail(fmt.Errorf("rpc: connection to %s lost: %w", p.to, err))
				return
			}
		}
		w, ok := p.pending[resp.ID]
		if !ok {
			putResp(resp) // response after the caller timed out
			continue
		}
		delete(p.pending, resp.ID)
		if !w.Wake(resp) {
			putResp(resp)
		}
	}
}

// send writes the request under the connection's write lock and reports
// whether it succeeded; on failure the connection is dead and p.err
// holds the verdict. Requests are not batched the way server replies
// are: the exact park/wake sequence of callers contending for the lock
// is part of the pinned deterministic event order (TestGoldenBitForBit),
// and a client frame is written by the task that owns the call anyway.
func (p *peerConn) send(req request) bool {
	p.wlock.Lock()
	p.scratch = req
	err := p.enc.Encode(&p.scratch)
	p.scratch.Args = nil // drop argument references
	p.wlock.Unlock()
	if err != nil {
		delete(p.pending, req.ID)
		p.fail(fmt.Errorf("rpc: send to %s: %w", p.to, err))
		return false
	}
	return true
}

func (p *peerConn) call(timeout time.Duration, method string, args []any) (Result, error) {
	if p.broken {
		return nil, p.err
	}
	p.nextID++
	id := p.nextID
	w := p.client.ctx.NewWaiter()
	w.WakeAfter(timeout, error(ErrTimeout))
	p.pending[id] = w

	if !p.send(request{ID: id, Method: method, Args: args}) {
		return nil, p.err
	}

	switch v := w.Wait().(type) {
	case *response:
		if !p.pooled {
			p.conn.Close()
		}
		errMsg, result := v.Err, v.Result
		putResp(v)
		if errMsg != "" {
			return nil, &RemoteError{Msg: errMsg}
		}
		return Result(result), nil
	case error:
		delete(p.pending, id)
		if !p.pooled {
			p.conn.Close()
		}
		return nil, v
	default:
		return nil, fmt.Errorf("rpc: internal: unexpected wake %T", v)
	}
}

// Marshal is a helper for handlers that want to return a raw JSON payload.
func Marshal(v any) (json.RawMessage, error) { return json.Marshal(v) }

// PreEncode canonically encodes a value once for reuse as a call
// argument, the zero-rework path for arguments that never change (a
// node's own reference in Chord's notify, Pastry's join). The returned
// value marshals to exactly the same bytes as v itself, so the wire
// format is unchanged; if v cannot be encoded it is returned as-is and
// the call reports the error as before.
func PreEncode(v any) any {
	raw, err := json.Marshal(v)
	if err != nil {
		return v
	}
	return json.RawMessage(raw)
}
