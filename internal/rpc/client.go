package rpc

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/faults"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// Client issues calls to remote servers. It is owned by one application
// instance; its pooled connections are tracked by the instance context and
// die with it.
type Client struct {
	ctx *core.AppContext

	// Timeout applies to Call; CallTimeout overrides it per call.
	Timeout time.Duration
	// DropRate silently discards this fraction of outgoing requests,
	// the paper's mechanism for simulating lossy links at the library
	// level (the call then fails by timeout).
	DropRate float64

	// Fault, when set, is consulted per call with the destination and
	// method: a drop verdict makes the request vanish (the call fails by
	// timeout, like DropRate); a delay stalls it before sending. The
	// fault plane points this at a shared faults.RPCRules filter; nil —
	// the default — adds nothing to any schedule.
	Fault func(to transport.Addr, method string) (drop bool, delay time.Duration)

	// mu guards the pool and every peerConn's mutable state under
	// LiveRuntime, where caller tasks and read loops are real
	// goroutines. It is held only across memory operations — never a
	// dial, an encode, or a waiter Wait — so the cooperative event
	// order in simulation is untouched.
	// peers is the connection pool as a short slice scanned by address:
	// a protocol instance talks to a handful of neighbours, and at
	// memory-plane scale a per-client map costs more than its entries.
	mu      sync.Mutex
	pooling bool
	peers   []*peerConn
	ins     *Instruments                    // shared noInstruments when disabled; never nil
	backoff faults.Backoff                  // redial pacing; zero = disabled
	redials map[transport.Addr]*redialState // destinations under backoff only

	// deadPeers marks destinations whose pooled connection failed, so
	// the next dial there counts as a redial. Entries are removed by
	// that dial — unlike the dial-history map it replaces, which kept
	// one record per destination ever dialed for the client's lifetime.
	// Allocated only when redials are instrumented.
	deadPeers map[transport.Addr]struct{}
}

// redialState is one destination's backoff clock. An entry exists only
// while the destination is failing: it is created on a failed dial and
// evicted by the next successful one, so a healthy steady state holds
// no per-destination records (the fabric's no-leak invariant).
type redialState struct {
	fails     int       // consecutive dial failures
	notBefore time.Time // earliest next dial under backoff
}

// NewClient returns a client with the paper's default two-minute timeout
// and pooling enabled.
func NewClient(ctx *core.AppContext) *Client {
	return &Client{ctx: ctx, Timeout: DefaultTimeout, pooling: true, ins: &noInstruments}
}

// findPeer returns the pooled connection to the destination, or nil.
// Caller holds c.mu.
func (c *Client) findPeer(to transport.Addr) *peerConn {
	for _, p := range c.peers {
		if p.to == to {
			return p
		}
	}
	return nil
}

// addPeer pools pc, replacing any previous connection to the same
// destination (the exact semantics of the map assignment it replaces).
// Caller holds c.mu.
func (c *Client) addPeer(pc *peerConn) {
	for i := range c.peers {
		if c.peers[i].to == pc.to {
			c.peers[i] = pc
			return
		}
	}
	c.peers = append(c.peers, pc)
}

// removePeer drops p from the pool if it is still pooled there. Matching
// by connection (not address) means a failed connection can never evict
// its own replacement. Caller holds c.mu.
func (c *Client) removePeer(p *peerConn) {
	for i := range c.peers {
		if c.peers[i] == p {
			last := len(c.peers) - 1
			copy(c.peers[i:], c.peers[i+1:])
			c.peers[last] = nil
			c.peers = c.peers[:last]
			return
		}
	}
}

// SetPooling toggles connection reuse (ablation: one connection per call
// versus multiplexing).
func (c *Client) SetPooling(on bool) { c.pooling = on }

// SetRedialBackoff paces repeat dials to a destination that keeps
// failing: after each failed dial the next one to the same address waits
// the schedule's (jittered) delay; a successful dial resets it. Off by
// default — enabling it is a fault-plane hardening decision, because the
// added sleeps change event schedules in simulation.
func (c *Client) SetRedialBackoff(b faults.Backoff) {
	c.mu.Lock()
	c.backoff = b
	c.mu.Unlock()
}

// Call invokes method on the server at to and decodes nothing: use the
// returned Result. It fails with ErrTimeout after the client timeout, the
// paper's a_call status semantics.
func (c *Client) Call(to transport.Addr, method string, args ...any) (Result, error) {
	return c.CallTimeout(to, c.Timeout, method, args...)
}

// CallTimeout is Call with an explicit timeout.
func (c *Client) CallTimeout(to transport.Addr, timeout time.Duration, method string, args ...any) (Result, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c.ins.Calls.Inc()
	if c.DropRate > 0 && c.ctx.Rand().Float64() < c.DropRate {
		// Simulated loss: the request vanishes and the caller times out.
		c.ctx.Sleep(timeout)
		c.ins.Errors.Inc()
		c.ins.Timeouts.Inc()
		return nil, ErrTimeout
	}
	if c.Fault != nil {
		drop, delay := c.Fault(to, method)
		if drop {
			// Injected loss: same fate as DropRate.
			c.ctx.Sleep(timeout)
			c.ins.Errors.Inc()
			c.ins.Timeouts.Inc()
			return nil, ErrTimeout
		}
		if delay > 0 {
			c.ctx.Sleep(delay)
		}
	}
	// The timeout budget covers the whole call, dialing included.
	start := c.ctx.Now()
	res, err := c.callInstrumented(to, timeout, start, method, args)
	if err != nil {
		c.ins.Errors.Inc()
		if err == ErrTimeout {
			c.ins.Timeouts.Inc()
		}
		return nil, err
	}
	c.ins.Latency.Observe(int64(c.ctx.Now().Sub(start)))
	return res, nil
}

// callInstrumented is CallTimeout's body behind the instrument hooks.
func (c *Client) callInstrumented(to transport.Addr, timeout time.Duration, start time.Time, method string, args []any) (Result, error) {
	pc, err := c.peer(to, timeout)
	if err != nil {
		return nil, err
	}
	remaining := timeout - c.ctx.Now().Sub(start)
	if remaining <= 0 {
		return nil, ErrTimeout
	}
	return pc.call(remaining, method, args)
}

// Ping checks liveness (the paper's rpc.ping) and returns the round-trip
// time.
func (c *Client) Ping(to transport.Addr, timeout time.Duration) (time.Duration, error) {
	start := c.ctx.Now()
	if _, err := c.CallTimeout(to, timeout, pingMethod); err != nil {
		return 0, err
	}
	return c.ctx.Now().Sub(start), nil
}

// peer returns a live pooled connection to the destination, dialing one if
// needed. Without pooling it always dials a fresh connection.
func (c *Client) peer(to transport.Addr, timeout time.Duration) (*peerConn, error) {
	if !c.pooling {
		pc := newPeerConn(c, to, false)
		pc.dial(timeout)
		return pc, pc.lastErr()
	}
	c.mu.Lock()
	pc := c.findPeer(to)
	if pc != nil && !pc.broken {
		if pc.ready {
			c.mu.Unlock()
			return pc, nil
		}
		c.mu.Unlock()
		// Another task is dialing; wait for the verdict.
		w := c.ctx.NewWaiter()
		w.WakeAfter(timeout, error(ErrTimeout))
		c.mu.Lock()
		switch {
		case pc.broken:
			// The dial failed while we armed: consume our waiter
			// deterministically (it must reach Wait before recycling)
			// and report the verdict.
			err := pc.err
			c.mu.Unlock()
			w.Wake(err)
			w.Wait() //nolint:errcheck
			return nil, err
		case pc.ready:
			c.mu.Unlock()
			w.Wake(nil)
			w.Wait() //nolint:errcheck
			return pc, nil
		}
		pc.pending = append(pc.pending, pendingCall{w: w})
		c.mu.Unlock()
		if v := w.Wait(); v != nil {
			// Timed out before the dial verdict: drop our (now recycled,
			// pooled) waiter from the list so the verdict cannot touch it.
			c.mu.Lock()
			for i := range pc.pending {
				if pc.pending[i].w == w {
					pc.pending = append(pc.pending[:i], pc.pending[i+1:]...)
					break
				}
			}
			c.mu.Unlock()
			return nil, v.(error)
		}
		return pc, nil
	}
	pc = newPeerConn(c, to, true)
	c.addPeer(pc)
	var wait time.Duration
	if c.ins.Redials != nil {
		// A pooled peer to this destination died since last use: this
		// dial replaces it, which is what Redials counts. Consuming the
		// mark here keeps the set bounded by currently-dead peers.
		if _, dead := c.deadPeers[to]; dead {
			delete(c.deadPeers, to)
			c.ins.Redials.Inc()
		}
	}
	if rs := c.redials[to]; rs != nil {
		if now := c.ctx.Now(); now.Before(rs.notBefore) {
			wait = rs.notBefore.Sub(now)
		}
	}
	c.mu.Unlock()
	if wait > 0 {
		// Backoff: this destination failed recently; later callers park
		// as dial waiters on pc and share the verdict, so the whole
		// instance dials at the schedule's pace, not per caller.
		c.ctx.Sleep(wait)
	}
	pc.dial(timeout)
	err := pc.lastErr()
	if c.backoff.Enabled() {
		c.mu.Lock()
		if err != nil {
			rs := c.redials[to]
			if rs == nil {
				if c.redials == nil {
					c.redials = make(map[transport.Addr]*redialState)
				}
				rs = &redialState{}
				c.redials[to] = rs
			}
			rs.fails++
			rs.notBefore = c.ctx.Now().Add(c.backoff.Delay(rs.fails-1, c.ctx.Rand()))
		} else {
			// Healthy again: evict the backoff record rather than zero
			// it, so repeatedly cycling destinations cannot grow the map.
			delete(c.redials, to)
		}
		c.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	return pc, nil
}

// peerConn multiplexes calls to one destination over one stream. It is
// the client fabric's unit of consolidation: the framing writer and the
// event frame reader embed by value, and in-flight calls ride a short
// ordered slice instead of a per-connection map — an idle pooled peer is
// one allocation (plus its write lock and encode thunk), not a
// constellation of maps, readers and closures.
type peerConn struct {
	client *Client
	to     transport.Addr
	pooled bool

	conn  transport.Conn
	enc   llenc.Writer // framing writer, embedded
	wlock core.Lock    // write lock, embedded; encode staging rides pooled encJobs

	ready  bool
	broken bool
	err    error

	// pending holds every caller parked on this connection, in arrival
	// order. Before ready it holds dial waiters (id 0); once ready it
	// holds in-flight calls (ids ascend from 1). The phases are disjoint
	// — calls are only issued against a ready connection — so one slice
	// serves both, and a linear scan beats a map on both bytes and
	// lookup time at the couple of entries a connection ever carries.
	nextID  uint64
	pending []pendingCall

	fr frameReader // event-driven read state, embedded
}

// pendingCall pairs a parked caller's waiter with its request id — 0 for
// a dial waiter, the call's id once the connection is ready.
type pendingCall struct {
	id uint64
	w  core.Waiter
}

func newPeerConn(c *Client, to transport.Addr, pooled bool) *peerConn {
	// The write lock is instance-bound: a task parked on it yields the
	// instance baton, so the current writer (who holds the baton inside
	// its Blocking section) can finish.
	p := &peerConn{
		client: c,
		to:     to,
		pooled: pooled,
	}
	c.ctx.InitLock(&p.wlock)
	return p
}

// encJob stages one request encode so it can run under ctx.Blocking with
// a closure allocated once per pooled object, not once per connection —
// per-connection staging fields would be dead weight on every idle peer.
// A job is borrowed under the connection's wlock for the duration of one
// send.
type encJob struct {
	w   *llenc.Writer
	req request
	err error
	run func()
}

var encJobPool = sync.Pool{New: func() any {
	j := &encJob{}
	j.run = func() { j.err = j.w.Encode(&j.req) }
	return j
}}

// takePending removes and returns the waiter for id. The caller holds
// client.mu.
func (p *peerConn) takePending(id uint64) (core.Waiter, bool) {
	for i, pcall := range p.pending {
		if pcall.id == id {
			copy(p.pending[i:], p.pending[i+1:])
			p.pending[len(p.pending)-1] = pendingCall{}
			p.pending = p.pending[:len(p.pending)-1]
			return pcall.w, true
		}
	}
	return nil, false
}

func (p *peerConn) dial(timeout time.Duration) {
	var conn transport.Conn
	var err error
	// The dial may block for the whole timeout live: yield the baton.
	p.client.ctx.Blocking(func() {
		conn, err = p.client.ctx.Node().Dial(p.to, timeout)
	})
	if err != nil {
		p.fail(fmt.Errorf("rpc: dial %s: %w", p.to, err))
		return
	}
	conn = p.client.ins.meter(conn)
	p.client.mu.Lock()
	p.conn = conn
	p.enc.Reset(conn)
	p.ready = true
	ws := p.pending // all dial waiters: no calls exist before ready
	p.pending = nil
	p.client.mu.Unlock()
	p.client.ctx.Track(conn)
	for _, pcall := range ws {
		pcall.w.Wake(nil)
	}
	if ec, ok := conn.(transport.EventConn); ok {
		// Event-driven responses: the same spawn installs the embedded
		// frame reader instead of parking readLoop, so an idle pooled
		// peer holds no goroutine (see eventloop.go).
		p.fr.init(ec, p)
		p.client.ctx.Go(p.fr.run)
		return
	}
	p.client.ctx.Go(p.readLoop)
}

// lastErr reads the connection's verdict under the client lock.
func (p *peerConn) lastErr() error {
	p.client.mu.Lock()
	defer p.client.mu.Unlock()
	return p.err
}

// fail marks the connection dead and propagates the error to every waiter.
func (p *peerConn) fail(err error) {
	c := p.client
	c.mu.Lock()
	if p.broken {
		c.mu.Unlock()
		return
	}
	p.broken = true
	p.err = err
	if p.pooled {
		c.removePeer(p)
		if c.ins.Redials != nil {
			// Mark the destination so the dial that replaces this
			// connection counts as a redial (see Client.deadPeers).
			if c.deadPeers == nil {
				c.deadPeers = make(map[transport.Addr]struct{})
			}
			c.deadPeers[p.to] = struct{}{}
		}
	}
	conn := p.conn
	pend := p.pending
	p.pending = nil
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	// Arrival order: dial waiters or in-flight calls, oldest first.
	for _, pcall := range pend {
		pcall.w.Wake(err)
	}
}

// respPool recycles decoded response envelopes between the read loop and
// the callers it wakes. Result bytes are always freshly allocated (they
// are handed to the application), so only the struct is reused.
var respPool = sync.Pool{New: func() any { return new(response) }}

func putResp(r *response) {
	*r = response{}
	respPool.Put(r)
}

func (p *peerConn) readLoop() {
	dec := llenc.NewReader(p.conn)
	var payload []byte
	var err error
	read := func() { payload, err = dec.ReadMessage() }
	for {
		// Yield the instance baton across the blocking read (one
		// closure per connection, so the loop stays allocation-free).
		p.client.ctx.Blocking(read)
		if err != nil {
			p.fail(fmt.Errorf("rpc: connection to %s lost: %w", p.to, err))
			return
		}
		if !p.handleResponse(payload) {
			return
		}
	}
}

// onFrame and onEnd make peerConn the sink of its embedded frame
// reader; frame processing is shared with readLoop (handleResponse),
// keeping both forms schedule-identical.
func (p *peerConn) onFrame(payload []byte) bool { return p.handleResponse(payload) }

func (p *peerConn) onEnd(err error) {
	if err != nil {
		p.fail(fmt.Errorf("rpc: connection to %s lost: %w", p.to, err))
	}
}

// handleResponse processes one response frame, waking the pending
// caller; false means the connection is dead (and already failed).
func (p *peerConn) handleResponse(payload []byte) bool {
	resp := respPool.Get().(*response)
	if !resp.parseJSON(payload) {
		*resp = response{}
		if err := json.Unmarshal(payload, resp); err != nil {
			putResp(resp)
			p.fail(fmt.Errorf("rpc: connection to %s lost: %w", p.to, err))
			return false
		}
	}
	p.client.mu.Lock()
	w, ok := p.takePending(resp.ID)
	p.client.mu.Unlock()
	if !ok {
		putResp(resp) // response after the caller timed out
		return true
	}
	if !w.Wake(resp) {
		putResp(resp)
	}
	return true
}

// send writes the request under the connection's write lock and reports
// whether it succeeded; on failure the connection is dead and p.err
// holds the verdict. Requests are not batched the way server replies
// are: the exact park/wake sequence of callers contending for the lock
// is part of the pinned deterministic event order (TestGoldenBitForBit),
// and a client frame is written by the task that owns the call anyway.
func (p *peerConn) send(req request) bool {
	p.wlock.Lock()
	j := encJobPool.Get().(*encJob)
	j.w, j.req = &p.enc, req
	// Yield the instance baton across the (live-)blocking socket write:
	// holding it would stall every other task of the instance — and
	// deadlock outright if both ends of a connection filled their TCP
	// buffers, since the read loops could never drain them.
	p.client.ctx.Blocking(j.run)
	err := j.err
	j.w, j.err, j.req = nil, nil, request{}
	encJobPool.Put(j)
	p.wlock.Unlock()
	if err != nil {
		p.client.mu.Lock()
		p.takePending(req.ID)
		p.client.mu.Unlock()
		p.fail(fmt.Errorf("rpc: send to %s: %w", p.to, err))
		return false
	}
	return true
}

func (p *peerConn) call(timeout time.Duration, method string, args []any) (Result, error) {
	c := p.client
	c.mu.Lock()
	if p.broken {
		err := p.err
		c.mu.Unlock()
		return nil, err
	}
	p.nextID++
	id := p.nextID
	c.mu.Unlock()
	w := c.ctx.NewWaiter()
	w.WakeAfter(timeout, error(ErrTimeout))
	c.mu.Lock()
	if p.broken {
		// The connection died while we armed (live): fail fast instead
		// of inserting into a map fail() has already drained and dying
		// by timeout. The waiter is consumed deterministically.
		err := p.err
		c.mu.Unlock()
		w.Wake(err)
		w.Wait() //nolint:errcheck
		return nil, err
	}
	p.pending = append(p.pending, pendingCall{id: id, w: w})
	c.mu.Unlock()

	if !p.send(request{ID: id, Method: method, Args: args}) {
		return nil, p.lastErr()
	}

	switch v := w.Wait().(type) {
	case *response:
		if !p.pooled {
			p.conn.Close()
		}
		errMsg, result := v.Err, v.Result
		putResp(v)
		if errMsg != "" {
			return nil, &RemoteError{Msg: errMsg}
		}
		return Result(result), nil
	case error:
		c.mu.Lock()
		p.takePending(id)
		c.mu.Unlock()
		if !p.pooled {
			p.conn.Close()
		}
		return nil, v
	default:
		return nil, fmt.Errorf("rpc: internal: unexpected wake %T", v)
	}
}

// Marshal is a helper for handlers that want to return a raw JSON payload.
func Marshal(v any) (json.RawMessage, error) { return json.Marshal(v) }

// PreEncode canonically encodes a value once for reuse as a call
// argument, the zero-rework path for arguments that never change (a
// node's own reference in Chord's notify, Pastry's join). The returned
// value marshals to exactly the same bytes as v itself, so the wire
// format is unchanged; if v cannot be encoded it is returned as-is and
// the call reports the error as before.
func PreEncode(v any) any {
	raw, err := json.Marshal(v)
	if err != nil {
		return v
	}
	return json.RawMessage(raw)
}
