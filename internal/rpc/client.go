package rpc

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/faults"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// Client issues calls to remote servers. It is owned by one application
// instance; its pooled connections are tracked by the instance context and
// die with it.
type Client struct {
	ctx *core.AppContext

	// Timeout applies to Call; CallTimeout overrides it per call.
	Timeout time.Duration
	// DropRate silently discards this fraction of outgoing requests,
	// the paper's mechanism for simulating lossy links at the library
	// level (the call then fails by timeout).
	DropRate float64

	// Fault, when set, is consulted per call with the destination and
	// method: a drop verdict makes the request vanish (the call fails by
	// timeout, like DropRate); a delay stalls it before sending. The
	// fault plane points this at a shared faults.RPCRules filter; nil —
	// the default — adds nothing to any schedule.
	Fault func(to transport.Addr, method string) (drop bool, delay time.Duration)

	// mu guards the pool and every peerConn's mutable state under
	// LiveRuntime, where caller tasks and read loops are real
	// goroutines. It is held only across memory operations — never a
	// dial, an encode, or a waiter Wait — so the cooperative event
	// order in simulation is untouched.
	mu      sync.Mutex
	pooling bool
	peers   map[transport.Addr]*peerConn
	ins     Instruments
	backoff faults.Backoff                   // redial pacing; zero = disabled
	redials map[transport.Addr]*redialState  // per-destination dial history
}

// redialState is one destination's dial history: Redials accounting plus
// the backoff clock. Allocated only when either feature is on, so the
// default client's allocation profile is unchanged.
type redialState struct {
	dialed    bool      // a dial to this destination happened before
	fails     int       // consecutive dial failures
	notBefore time.Time // earliest next dial under backoff
}

// NewClient returns a client with the paper's default two-minute timeout
// and pooling enabled.
func NewClient(ctx *core.AppContext) *Client {
	return &Client{ctx: ctx, Timeout: DefaultTimeout, pooling: true, peers: make(map[transport.Addr]*peerConn)}
}

// SetPooling toggles connection reuse (ablation: one connection per call
// versus multiplexing).
func (c *Client) SetPooling(on bool) { c.pooling = on }

// SetRedialBackoff paces repeat dials to a destination that keeps
// failing: after each failed dial the next one to the same address waits
// the schedule's (jittered) delay; a successful dial resets it. Off by
// default — enabling it is a fault-plane hardening decision, because the
// added sleeps change event schedules in simulation.
func (c *Client) SetRedialBackoff(b faults.Backoff) {
	c.mu.Lock()
	c.backoff = b
	c.mu.Unlock()
}

// Call invokes method on the server at to and decodes nothing: use the
// returned Result. It fails with ErrTimeout after the client timeout, the
// paper's a_call status semantics.
func (c *Client) Call(to transport.Addr, method string, args ...any) (Result, error) {
	return c.CallTimeout(to, c.Timeout, method, args...)
}

// CallTimeout is Call with an explicit timeout.
func (c *Client) CallTimeout(to transport.Addr, timeout time.Duration, method string, args ...any) (Result, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c.ins.Calls.Inc()
	if c.DropRate > 0 && c.ctx.Rand().Float64() < c.DropRate {
		// Simulated loss: the request vanishes and the caller times out.
		c.ctx.Sleep(timeout)
		c.ins.Errors.Inc()
		c.ins.Timeouts.Inc()
		return nil, ErrTimeout
	}
	if c.Fault != nil {
		drop, delay := c.Fault(to, method)
		if drop {
			// Injected loss: same fate as DropRate.
			c.ctx.Sleep(timeout)
			c.ins.Errors.Inc()
			c.ins.Timeouts.Inc()
			return nil, ErrTimeout
		}
		if delay > 0 {
			c.ctx.Sleep(delay)
		}
	}
	// The timeout budget covers the whole call, dialing included.
	start := c.ctx.Now()
	res, err := c.callInstrumented(to, timeout, start, method, args)
	if err != nil {
		c.ins.Errors.Inc()
		if err == ErrTimeout {
			c.ins.Timeouts.Inc()
		}
		return nil, err
	}
	c.ins.Latency.Observe(int64(c.ctx.Now().Sub(start)))
	return res, nil
}

// callInstrumented is CallTimeout's body behind the instrument hooks.
func (c *Client) callInstrumented(to transport.Addr, timeout time.Duration, start time.Time, method string, args []any) (Result, error) {
	pc, err := c.peer(to, timeout)
	if err != nil {
		return nil, err
	}
	remaining := timeout - c.ctx.Now().Sub(start)
	if remaining <= 0 {
		return nil, ErrTimeout
	}
	return pc.call(remaining, method, args)
}

// Ping checks liveness (the paper's rpc.ping) and returns the round-trip
// time.
func (c *Client) Ping(to transport.Addr, timeout time.Duration) (time.Duration, error) {
	start := c.ctx.Now()
	if _, err := c.CallTimeout(to, timeout, pingMethod); err != nil {
		return 0, err
	}
	return c.ctx.Now().Sub(start), nil
}

// peer returns a live pooled connection to the destination, dialing one if
// needed. Without pooling it always dials a fresh connection.
func (c *Client) peer(to transport.Addr, timeout time.Duration) (*peerConn, error) {
	if !c.pooling {
		pc := newPeerConn(c, to, false)
		pc.dial(timeout)
		return pc, pc.lastErr()
	}
	c.mu.Lock()
	pc, ok := c.peers[to]
	if ok && !pc.broken {
		if pc.ready {
			c.mu.Unlock()
			return pc, nil
		}
		c.mu.Unlock()
		// Another task is dialing; wait for the verdict.
		w := c.ctx.NewWaiter()
		w.WakeAfter(timeout, error(ErrTimeout))
		c.mu.Lock()
		switch {
		case pc.broken:
			// The dial failed while we armed: consume our waiter
			// deterministically (it must reach Wait before recycling)
			// and report the verdict.
			err := pc.err
			c.mu.Unlock()
			w.Wake(err)
			w.Wait() //nolint:errcheck
			return nil, err
		case pc.ready:
			c.mu.Unlock()
			w.Wake(nil)
			w.Wait() //nolint:errcheck
			return pc, nil
		}
		pc.dialWaiters = append(pc.dialWaiters, w)
		c.mu.Unlock()
		if v := w.Wait(); v != nil {
			// Timed out before the dial verdict: drop our (now recycled,
			// pooled) waiter from the list so the verdict cannot touch it.
			c.mu.Lock()
			for i, dw := range pc.dialWaiters {
				if dw == w {
					pc.dialWaiters = append(pc.dialWaiters[:i], pc.dialWaiters[i+1:]...)
					break
				}
			}
			c.mu.Unlock()
			return nil, v.(error)
		}
		return pc, nil
	}
	pc = newPeerConn(c, to, true)
	c.peers[to] = pc
	var wait time.Duration
	if c.ins.Redials != nil || c.backoff.Enabled() {
		// Retry accounting and backoff pacing share the per-destination
		// dial history: a second dial to the same destination means the
		// pooled peer died since last use.
		if c.redials == nil {
			c.redials = make(map[transport.Addr]*redialState)
		}
		rs := c.redials[to]
		if rs == nil {
			rs = &redialState{}
			c.redials[to] = rs
		}
		if rs.dialed && c.ins.Redials != nil {
			c.ins.Redials.Inc()
		}
		rs.dialed = true
		if now := c.ctx.Now(); now.Before(rs.notBefore) {
			wait = rs.notBefore.Sub(now)
		}
	}
	c.mu.Unlock()
	if wait > 0 {
		// Backoff: this destination failed recently; later callers park
		// as dial waiters on pc and share the verdict, so the whole
		// instance dials at the schedule's pace, not per caller.
		c.ctx.Sleep(wait)
	}
	pc.dial(timeout)
	err := pc.lastErr()
	if c.backoff.Enabled() {
		c.mu.Lock()
		if rs := c.redials[to]; rs != nil {
			if err != nil {
				rs.fails++
				rs.notBefore = c.ctx.Now().Add(c.backoff.Delay(rs.fails-1, c.ctx.Rand()))
			} else {
				rs.fails = 0
				rs.notBefore = time.Time{}
			}
		}
		c.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	return pc, nil
}

// peerConn multiplexes calls to one destination over one stream.
type peerConn struct {
	client *Client
	to     transport.Addr
	pooled bool

	conn    transport.Conn
	enc     *llenc.Writer
	wlock   *core.Lock
	scratch request // encode staging; guarded by wlock so &scratch never escapes a call
	encFn   func()  // encodes scratch into encErr; run under wlock + ctx.Blocking
	encErr  error   // guarded by wlock

	ready       bool
	broken      bool
	err         error
	dialWaiters []core.Waiter

	nextID  uint64
	pending map[uint64]core.Waiter
}

func newPeerConn(c *Client, to transport.Addr, pooled bool) *peerConn {
	// The write lock is instance-bound: a task parked on it yields the
	// instance baton, so the current writer (who holds the baton inside
	// its Blocking section) can finish.
	p := &peerConn{
		client:  c,
		to:      to,
		pooled:  pooled,
		wlock:   c.ctx.NewLock(),
		pending: make(map[uint64]core.Waiter),
	}
	p.encFn = func() { p.encErr = p.enc.Encode(&p.scratch) }
	return p
}

func (p *peerConn) dial(timeout time.Duration) {
	var conn transport.Conn
	var err error
	// The dial may block for the whole timeout live: yield the baton.
	p.client.ctx.Blocking(func() {
		conn, err = p.client.ctx.Node().Dial(p.to, timeout)
	})
	if err != nil {
		p.fail(fmt.Errorf("rpc: dial %s: %w", p.to, err))
		return
	}
	conn = p.client.ins.meter(conn)
	p.client.mu.Lock()
	p.conn = conn
	p.enc = llenc.NewWriter(conn)
	p.ready = true
	ws := p.dialWaiters
	p.dialWaiters = nil
	p.client.mu.Unlock()
	p.client.ctx.Track(conn)
	for _, w := range ws {
		w.Wake(nil)
	}
	p.client.ctx.Go(p.readLoop)
}

// lastErr reads the connection's verdict under the client lock.
func (p *peerConn) lastErr() error {
	p.client.mu.Lock()
	defer p.client.mu.Unlock()
	return p.err
}

// fail marks the connection dead and propagates the error to every waiter.
func (p *peerConn) fail(err error) {
	c := p.client
	c.mu.Lock()
	if p.broken {
		c.mu.Unlock()
		return
	}
	p.broken = true
	p.err = err
	if p.pooled {
		delete(c.peers, p.to)
	}
	conn := p.conn
	dws := p.dialWaiters
	p.dialWaiters = nil
	type idWaiter struct {
		id uint64
		w  core.Waiter
	}
	var pend []idWaiter
	for id, w := range p.pending {
		pend = append(pend, idWaiter{id, w})
	}
	for _, iw := range pend {
		delete(p.pending, iw.id)
	}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, w := range dws {
		w.Wake(err)
	}
	for _, iw := range pend {
		iw.w.Wake(err)
	}
}

// respPool recycles decoded response envelopes between the read loop and
// the callers it wakes. Result bytes are always freshly allocated (they
// are handed to the application), so only the struct is reused.
var respPool = sync.Pool{New: func() any { return new(response) }}

func putResp(r *response) {
	*r = response{}
	respPool.Put(r)
}

func (p *peerConn) readLoop() {
	dec := llenc.NewReader(p.conn)
	var payload []byte
	var err error
	read := func() { payload, err = dec.ReadMessage() }
	for {
		// Yield the instance baton across the blocking read (one
		// closure per connection, so the loop stays allocation-free).
		p.client.ctx.Blocking(read)
		if err != nil {
			p.fail(fmt.Errorf("rpc: connection to %s lost: %w", p.to, err))
			return
		}
		resp := respPool.Get().(*response)
		if !resp.parseJSON(payload) {
			*resp = response{}
			if err := json.Unmarshal(payload, resp); err != nil {
				putResp(resp)
				p.fail(fmt.Errorf("rpc: connection to %s lost: %w", p.to, err))
				return
			}
		}
		p.client.mu.Lock()
		w, ok := p.pending[resp.ID]
		if ok {
			delete(p.pending, resp.ID)
		}
		p.client.mu.Unlock()
		if !ok {
			putResp(resp) // response after the caller timed out
			continue
		}
		if !w.Wake(resp) {
			putResp(resp)
		}
	}
}

// send writes the request under the connection's write lock and reports
// whether it succeeded; on failure the connection is dead and p.err
// holds the verdict. Requests are not batched the way server replies
// are: the exact park/wake sequence of callers contending for the lock
// is part of the pinned deterministic event order (TestGoldenBitForBit),
// and a client frame is written by the task that owns the call anyway.
func (p *peerConn) send(req request) bool {
	p.wlock.Lock()
	p.scratch = req
	// Yield the instance baton across the (live-)blocking socket write:
	// holding it would stall every other task of the instance — and
	// deadlock outright if both ends of a connection filled their TCP
	// buffers, since the read loops could never drain them.
	p.client.ctx.Blocking(p.encFn)
	err := p.encErr
	p.scratch.Args = nil // drop argument references
	p.wlock.Unlock()
	if err != nil {
		p.client.mu.Lock()
		delete(p.pending, req.ID)
		p.client.mu.Unlock()
		p.fail(fmt.Errorf("rpc: send to %s: %w", p.to, err))
		return false
	}
	return true
}

func (p *peerConn) call(timeout time.Duration, method string, args []any) (Result, error) {
	c := p.client
	c.mu.Lock()
	if p.broken {
		err := p.err
		c.mu.Unlock()
		return nil, err
	}
	p.nextID++
	id := p.nextID
	c.mu.Unlock()
	w := c.ctx.NewWaiter()
	w.WakeAfter(timeout, error(ErrTimeout))
	c.mu.Lock()
	if p.broken {
		// The connection died while we armed (live): fail fast instead
		// of inserting into a map fail() has already drained and dying
		// by timeout. The waiter is consumed deterministically.
		err := p.err
		c.mu.Unlock()
		w.Wake(err)
		w.Wait() //nolint:errcheck
		return nil, err
	}
	p.pending[id] = w
	c.mu.Unlock()

	if !p.send(request{ID: id, Method: method, Args: args}) {
		return nil, p.lastErr()
	}

	switch v := w.Wait().(type) {
	case *response:
		if !p.pooled {
			p.conn.Close()
		}
		errMsg, result := v.Err, v.Result
		putResp(v)
		if errMsg != "" {
			return nil, &RemoteError{Msg: errMsg}
		}
		return Result(result), nil
	case error:
		c.mu.Lock()
		delete(p.pending, id)
		c.mu.Unlock()
		if !p.pooled {
			p.conn.Close()
		}
		return nil, v
	default:
		return nil, fmt.Errorf("rpc: internal: unexpected wake %T", v)
	}
}

// Marshal is a helper for handlers that want to return a raw JSON payload.
func Marshal(v any) (json.RawMessage, error) { return json.Marshal(v) }

// PreEncode canonically encodes a value once for reuse as a call
// argument, the zero-rework path for arguments that never change (a
// node's own reference in Chord's notify, Pastry's join). The returned
// value marshals to exactly the same bytes as v itself, so the wire
// format is unchanged; if v cannot be encoded it is returned as-is and
// the call reports the error as before.
func PreEncode(v any) any {
	raw, err := json.Marshal(v)
	if err != nil {
		return v
	}
	return json.RawMessage(raw)
}
