package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/transport"
)

// TestRegisterWhileServingUnderLiveRuntime pins the handlers-map guard:
// an application may install handlers after Start under LiveRuntime
// (the paper's apps register lazily as subsystems come up), which races
// the serve loop's method lookups without the RWMutex. Several clients
// hammer the server over real loopback TCP while new methods register
// concurrently; the race detector is the assertion, plus every call to
// a just-registered method must succeed. Part of the PR 2-style race
// suite (go test -race -short).
func TestRegisterWhileServingUnderLiveRuntime(t *testing.T) {
	t.Parallel()
	rt := core.NewLiveRuntime(1)
	node := livenet.NewNode("127.0.0.1")
	sctx := core.NewAppContext(rt, node, core.JobInfo{}, nil)
	defer sctx.Kill()

	srv := NewServer(sctx)
	srv.Register("echo", func(args Args) (any, error) { return args.String(0), nil })
	if err := srv.Start(0); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()
	addr := transport.Addr{Host: "127.0.0.1", Port: srv.Addr().Port}

	stop := make(chan struct{})
	var regWg sync.WaitGroup
	regWg.Add(1)
	go func() {
		defer regWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("late%d", i%32)
			srv.Register(name, func(args Args) (any, error) { return args.Int(0) + 1, nil })
		}
	}()

	// Four clients (one per goroutine: a Client is owned by one
	// instance/task) issue calls against both the stable and the
	// just-registered methods.
	errs := make(chan error, 4)
	var clientWg sync.WaitGroup
	for g := 0; g < 4; g++ {
		clientWg.Add(1)
		go func(g int) {
			defer clientWg.Done()
			cctx := core.NewAppContext(rt, livenet.NewNode("127.0.0.1"), core.JobInfo{}, nil)
			defer cctx.Kill()
			c := NewClient(cctx)
			for i := 0; i < 60; i++ {
				if _, err := c.CallTimeout(addr, 10*time.Second, "echo", "x"); err != nil {
					errs <- fmt.Errorf("client %d echo: %w", g, err)
					return
				}
				name := fmt.Sprintf("late%d", i%32)
				res, err := c.CallTimeout(addr, 10*time.Second, name, i)
				if err != nil {
					// Not yet registered is fine; a transport error is not.
					var re *RemoteError
					if !errors.As(err, &re) {
						errs <- fmt.Errorf("client %d %s: %w", g, name, err)
						return
					}
					continue
				}
				var got int
				if res.Decode(&got); got != i+1 {
					errs <- fmt.Errorf("client %d %s = %d, want %d", g, name, got, i+1)
					return
				}
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { clientWg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-errs:
		close(stop)
		regWg.Wait()
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		close(stop)
		regWg.Wait()
		t.Fatal("race test timed out")
	}
	close(stop)
	regWg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
