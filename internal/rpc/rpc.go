// Package rpc implements SPLAY's RPC library: named remote procedures with
// transparent JSON serialization over stream transports, framed by llenc.
//
// The API mirrors the paper's usage. A server registers handlers by name;
// clients invoke them with positional arguments. Call is the paper's
// rpc.call; errors (including timeouts, the paper's rpc.a_call status
// return) come back as Go errors. Ping is the paper's rpc.ping.
//
// Clients keep a small pool of connections, multiplexing concurrent calls
// to one destination over a single stream; SetPooling(false) disables the
// pool for ablation experiments.
package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// DefaultTimeout matches the paper's standard RPC timeout of two minutes.
const DefaultTimeout = 2 * time.Minute

// ErrTimeout is returned when a call's timeout expires before a response.
var ErrTimeout = transport.ErrTimeout

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// pingMethod is the reserved method Ping uses.
const pingMethod = "__ping"

type request struct {
	ID     uint64 `json:"id"`
	Method string `json:"m"`
	Args   []any  `json:"a,omitempty"`
}

type response struct {
	ID     uint64          `json:"id"`
	Err    string          `json:"e,omitempty"`
	Result json.RawMessage `json:"r,omitempty"`
}

// Args gives handlers typed access to positional call arguments.
type Args []json.RawMessage

// Len returns the number of arguments.
func (a Args) Len() int { return len(a) }

// Decode unmarshals argument i into v.
func (a Args) Decode(i int, v any) error {
	if i < 0 || i >= len(a) {
		return fmt.Errorf("rpc: argument %d out of range (%d args)", i, len(a))
	}
	return json.Unmarshal(a[i], v)
}

// String returns argument i as a string (empty on mismatch).
func (a Args) String(i int) string {
	var s string
	a.Decode(i, &s) //nolint:errcheck // zero value on mismatch is the contract
	return s
}

// Int returns argument i as an int (zero on mismatch).
func (a Args) Int(i int) int {
	var n int
	a.Decode(i, &n) //nolint:errcheck
	return n
}

// Result is a call's decoded return payload.
type Result json.RawMessage

// Decode unmarshals the result into v.
func (r Result) Decode(v any) error {
	if len(r) == 0 {
		return errors.New("rpc: empty result")
	}
	return json.Unmarshal([]byte(r), v)
}

// Handler executes one remote procedure. Handlers run as tasks and may
// block (issue nested RPCs, sleep, perform I/O).
type Handler func(args Args) (any, error)

// Server dispatches incoming calls to registered handlers.
type Server struct {
	ctx      *core.AppContext
	handlers map[string]Handler
	ln       transport.Listener
	closed   bool
}

// NewServer returns a server bound to the instance context. The reserved
// ping method is pre-registered.
func NewServer(ctx *core.AppContext) *Server {
	s := &Server{ctx: ctx, handlers: make(map[string]Handler)}
	s.handlers[pingMethod] = func(Args) (any, error) { return "pong", nil }
	return s
}

// Register installs a handler under name, replacing any previous one.
func (s *Server) Register(name string, h Handler) { s.handlers[name] = h }

// Start listens on port (the paper's rpc.server(n.port)) and serves calls
// until the server or instance is closed.
func (s *Server) Start(port int) error {
	ln, err := s.ctx.Node().Listen(port)
	if err != nil {
		return fmt.Errorf("rpc: listen: %w", err)
	}
	s.ln = ln
	s.ctx.Track(ln)
	s.ctx.Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.ctx.Track(conn)
			s.ctx.Go(func() { s.serveConn(conn) })
		}
	})
	return nil
}

// Addr returns the bound address (zero before Start).
func (s *Server) Addr() transport.Addr {
	if s.ln == nil {
		return transport.Addr{}
	}
	return s.ln.Addr()
}

// Close stops accepting calls.
func (s *Server) Close() error {
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) serveConn(conn transport.Conn) {
	defer conn.Close()
	dec := llenc.NewReader(conn)
	enc := llenc.NewWriter(conn)
	wlock := core.NewLock(s.ctx.Runtime())
	for {
		payload, err := dec.ReadMessage()
		if err != nil {
			return
		}
		var req struct {
			ID     uint64          `json:"id"`
			Method string          `json:"m"`
			Args   json.RawMessage `json:"a"`
		}
		if err := json.Unmarshal(payload, &req); err != nil {
			return // framing is broken; drop the connection
		}
		var args Args
		if len(req.Args) > 0 {
			if err := json.Unmarshal(req.Args, &args); err != nil {
				s.reply(enc, wlock, response{ID: req.ID, Err: "rpc: malformed arguments"})
				continue
			}
		}
		h, ok := s.handlers[req.Method]
		if !ok {
			s.reply(enc, wlock, response{ID: req.ID, Err: fmt.Sprintf("rpc: unknown method %q", req.Method)})
			continue
		}
		id := req.ID
		// Handlers run as their own task so they may block; the connection
		// keeps serving other requests meanwhile.
		s.ctx.Go(func() {
			resp := response{ID: id}
			result, err := h(args)
			if err != nil {
				resp.Err = err.Error()
			} else if result != nil {
				raw, merr := json.Marshal(result)
				if merr != nil {
					resp.Err = "rpc: unserializable result: " + merr.Error()
				} else {
					resp.Result = raw
				}
			}
			s.reply(enc, wlock, resp)
		})
	}
}

func (s *Server) reply(enc *llenc.Writer, wlock *core.Lock, resp response) {
	wlock.Lock()
	defer wlock.Unlock()
	enc.Encode(resp) //nolint:errcheck // a dead conn is detected by the read loop
}
