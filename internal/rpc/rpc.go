// Package rpc implements SPLAY's RPC library: named remote procedures with
// transparent JSON serialization over stream transports, framed by llenc.
//
// The API mirrors the paper's usage. A server registers handlers by name;
// clients invoke them with positional arguments. Call is the paper's
// rpc.call; errors (including timeouts, the paper's rpc.a_call status
// return) come back as Go errors. Ping is the paper's rpc.ping.
//
// Clients keep a small pool of connections, multiplexing concurrent calls
// to one destination over a single stream; SetPooling(false) disables the
// pool for ablation experiments.
//
// The message plane is built for throughput: envelopes ride the
// hand-rolled fast codec in fast.go (byte-identical to encoding/json),
// argument arrays decode lazily from pooled buffers, and replies queued
// behind one connection writer are drained in a batch by whichever task
// got there first. See DESIGN.md ("The message plane").
package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// DefaultTimeout matches the paper's standard RPC timeout of two minutes.
const DefaultTimeout = 2 * time.Minute

// ErrTimeout is returned when a call's timeout expires before a response.
var ErrTimeout = transport.ErrTimeout

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// pingMethod is the reserved method Ping uses.
const pingMethod = "__ping"

type request struct {
	ID     uint64 `json:"id"`
	Method string `json:"m"`
	Args   []any  `json:"a,omitempty"`
}

type response struct {
	ID     uint64          `json:"id"`
	Err    string          `json:"e,omitempty"`
	Result json.RawMessage `json:"r,omitempty"`
}

// Args gives handlers typed access to positional call arguments. The
// argument array is decoded lazily: elements are split on first access
// and unmarshaled only when asked for, so a handler that reads two of
// five arguments never parses the other three.
//
// Args and any raw bytes reached through it are owned by the server and
// valid only until the handler returns (the backing buffer is pooled).
// Decode, String and Int all copy, so ordinary use is safe; a handler
// that wants to retain an argument past its return must decode it.
type Args struct {
	l *argList
}

// NewArgs builds an Args from pre-encoded elements, for invoking a
// Handler directly (bypassing the network for local shortcuts and
// tests). The caller keeps ownership of the elements.
func NewArgs(elems ...json.RawMessage) Args {
	if len(elems) == 0 {
		return Args{}
	}
	return Args{l: &argList{elems: elems, split: true}}
}

// Len returns the number of arguments.
func (a Args) Len() int {
	if a.l == nil {
		return 0
	}
	a.l.ensureSplit()
	return len(a.l.elems)
}

// Decode unmarshals argument i into v.
func (a Args) Decode(i int, v any) error {
	if a.l != nil {
		a.l.ensureSplit()
	}
	if a.l == nil || i < 0 || i >= len(a.l.elems) {
		return fmt.Errorf("rpc: argument %d out of range (%d args)", i, a.Len())
	}
	return json.Unmarshal(a.l.elems[i], v)
}

// String returns argument i as a string (empty on mismatch). Plain
// ASCII strings with no escapes are sliced straight out of the element;
// anything else (escapes, non-ASCII that json would re-validate) takes
// the encoding/json path so the semantics cannot diverge.
func (a Args) String(i int) string {
	if a.l != nil {
		a.l.ensureSplit()
		if i >= 0 && i < len(a.l.elems) {
			e := a.l.elems[i]
			if len(e) >= 2 && e[0] == '"' && asciiPlain(e[1:len(e)-1]) && e[len(e)-1] == '"' {
				return string(e[1 : len(e)-1])
			}
		}
	}
	var s string
	a.Decode(i, &s) //nolint:errcheck // zero value on mismatch is the contract
	return s
}

// asciiPlain reports printable ASCII with no quotes or escapes — bytes
// encoding/json's unquote returns verbatim.
func asciiPlain(b []byte) bool {
	for _, c := range b {
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// Int returns argument i as an int (zero on mismatch). Integer literals
// parse without encoding/json.
func (a Args) Int(i int) int {
	if a.l != nil {
		a.l.ensureSplit()
		if i >= 0 && i < len(a.l.elems) {
			lex := llenc.Lexer{Data: a.l.elems[i]}
			if v, ok := lex.Int(); ok && lex.End() {
				return v
			}
		}
	}
	var n int
	a.Decode(i, &n) //nolint:errcheck
	return n
}

// Result is a call's decoded return payload.
type Result json.RawMessage

// Decode unmarshals the result into v.
func (r Result) Decode(v any) error {
	if len(r) == 0 {
		return errors.New("rpc: empty result")
	}
	return json.Unmarshal([]byte(r), v)
}

// Handler executes one remote procedure. Handlers run as tasks and may
// block (issue nested RPCs, sleep, perform I/O). The Args value is only
// valid until the handler returns; see Args.
type Handler func(args Args) (any, error)

// Server dispatches incoming calls to registered handlers.
type Server struct {
	ctx *core.AppContext

	// handlers is a short ordered list, not a map: a server registers a
	// handful of methods, and at memory-plane scale a per-instance map's
	// header and buckets outweigh the entries. Linear scan with a
	// non-allocating bytes==string compare is also at least as fast at
	// these sizes. The RWMutex stays: Register may race serving under
	// LiveRuntime.
	mu       sync.RWMutex
	handlers []namedHandler

	ln     transport.Listener
	closed bool
	ins    *Instruments // shared noInstruments when disabled; never nil
}

// namedHandler is one registered method.
type namedHandler struct {
	name string
	h    Handler
}

// pingHandler serves the reserved ping method; shared by every server.
func pingHandler(Args) (any, error) { return "pong", nil }

// NewServer returns a server bound to the instance context. The reserved
// ping method is pre-registered.
func NewServer(ctx *core.AppContext) *Server {
	// Capacity 6 covers ping plus the handful of methods the bundled
	// protocols register (pastry's five is the widest); an outlier grows.
	return &Server{ctx: ctx, ins: &noInstruments, handlers: append(make([]namedHandler, 0, 6), namedHandler{pingMethod, pingHandler})}
}

// Register installs a handler under name, replacing any previous one. It
// is safe to call while the server is serving.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	for i := range s.handlers {
		if s.handlers[i].name == name {
			s.handlers[i].h = h
			s.mu.Unlock()
			return
		}
	}
	s.handlers = append(s.handlers, namedHandler{name, h})
	s.mu.Unlock()
}

// handler looks up a method under the read lock.
func (s *Server) handler(name string) (Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.handlers {
		if s.handlers[i].name == name {
			return s.handlers[i].h, true
		}
	}
	return nil, false
}

// Start listens on port (the paper's rpc.server(n.port)) and serves calls
// until the server or instance is closed.
func (s *Server) Start(port int) error {
	ln, err := s.ctx.Node().Listen(port)
	if err != nil {
		return fmt.Errorf("rpc: listen: %w", err)
	}
	s.ln = ln
	s.ctx.Track(ln)
	if el, ok := ln.(transport.EventListener); ok {
		// Event-driven accept: same spawn here, same one-event wake per
		// arrival, but no goroutine parked per idle listener. See
		// eventloop.go for why this cannot move a schedule.
		var drain func()
		drain = func() {
			for {
				c, err := el.TryAccept()
				if err != nil {
					return
				}
				if c == nil {
					el.OnAcceptable(drain)
					return
				}
				s.ctx.Track(c)
				s.serveConnEvent(c)
			}
		}
		s.ctx.Go(drain)
		return nil
	}
	s.ctx.Go(func() {
		var conn transport.Conn
		var aerr error
		accept := func() { conn, aerr = ln.Accept() }
		for {
			// The baton is yielded across the blocking accept so the
			// instance's other tasks run meanwhile (live; a plain park
			// in simulation).
			s.ctx.Blocking(accept)
			if aerr != nil {
				return
			}
			c := conn
			s.ctx.Track(c)
			s.ctx.Go(func() { s.serveConn(c) })
		}
	})
	return nil
}

// Addr returns the bound address (zero before Start).
func (s *Server) Addr() transport.Addr {
	if s.ln == nil {
		return transport.Addr{}
	}
	return s.ln.Addr()
}

// Close stops accepting calls.
func (s *Server) Close() error {
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) serveConn(conn transport.Conn) {
	defer conn.Close()
	conn = s.ins.meter(conn)
	dec := llenc.NewReader(conn)
	cw := new(replyWriter)
	cw.init(conn)
	var payload []byte
	var err error
	read := func() { payload, err = dec.ReadMessage() }
	for {
		// Yield the instance baton across the blocking read (one
		// closure per connection, so the loop stays allocation-free).
		s.ctx.Blocking(read)
		if err != nil {
			return
		}
		if !s.dispatch(payload, cw, true) {
			return
		}
	}
}

// serverConn is the whole per-connection state of an event-served
// connection: frame reader, reply writer and framing encoder embedded
// by value, so an idle served connection costs one allocation instead
// of one per layer. It is the server side's frameSink.
type serverConn struct {
	s    *Server
	conn transport.Conn
	cw   replyWriter
	fr   frameReader
}

// serveConnEvent is serveConn for EventConn transports: the same spawn
// event installs a frame reader instead of parking a loop task, so an
// idle served connection holds no goroutine. Frame processing is shared
// with serveConn (dispatch), keeping both forms schedule-identical.
func (s *Server) serveConnEvent(raw transport.Conn) {
	sc := &serverConn{s: s, conn: raw}
	s.ctx.Go(sc.start)
}

func (sc *serverConn) start() {
	conn := sc.s.ins.meter(sc.conn)
	sc.conn = conn
	sc.cw.init(conn)
	sc.fr.init(conn.(transport.EventConn), sc) // meter preserves EventConn
	sc.fr.drain()
}

func (sc *serverConn) onFrame(payload []byte) bool {
	return sc.s.dispatch(payload, &sc.cw, false)
}

func (sc *serverConn) onEnd(error) { sc.conn.Close() }

// dispatch processes one request frame and reports whether the
// connection should keep serving. inline marks a task-based caller that
// may write error replies itself; event callbacks cannot block, so they
// spawn a task for those rare frames (unknown method, malformed
// arguments — paths no healthy protocol traffic takes).
func (s *Server) dispatch(payload []byte, cw *replyWriter, inline bool) bool {
	s.ins.Served.Inc()
	var id uint64
	var h Handler
	var hok bool
	var method string
	var args Args
	if req, ok := parseRequest(payload); ok {
		id = req.ID
		s.mu.RLock()
		for i := range s.handlers {
			if s.handlers[i].name == string(req.RawMethod) { // non-allocating compare
				h, hok = s.handlers[i].h, true
				break
			}
		}
		s.mu.RUnlock()
		if !hok {
			method = string(req.RawMethod)
		}
		args = newArgsRaw(req.RawArgs)
	} else {
		// encoding/json fallback: frames the fast parser declined
		// (escaped method names, odd whitespace, hostile input).
		var req struct {
			ID     uint64          `json:"id"`
			Method string          `json:"m"`
			Args   json.RawMessage `json:"a"`
		}
		if err := json.Unmarshal(payload, &req); err != nil {
			return false // framing is broken; drop the connection
		}
		if len(req.Args) > 0 {
			var elems []json.RawMessage
			if err := json.Unmarshal(req.Args, &elems); err != nil {
				s.errReply(cw, response{ID: req.ID, Err: "rpc: malformed arguments"}, inline)
				return true
			}
			args = newArgsSplit(elems)
		}
		id, method = req.ID, req.Method
		h, hok = s.handler(method)
	}
	if !hok {
		args.release()
		s.errReply(cw, response{ID: id, Err: fmt.Sprintf("rpc: unknown method %q", method)}, inline)
		return true
	}
	// Handlers run as their own task so they may block; the connection
	// keeps serving other requests meanwhile. The dispatch rides a
	// pooled job (one closure per pooled object, ever) so steady-state
	// serving allocates no per-request bookkeeping.
	j := jobPool.Get().(*reqJob)
	j.s, j.cw, j.id, j.h, j.args = s, cw, id, h, args
	s.ctx.Go(j.run)
	return true
}

// errReply writes a server-side error response: inline on a task-based
// caller, via a spawned task from an event callback (which must not
// block in the reply writer).
func (s *Server) errReply(cw *replyWriter, resp response, inline bool) {
	if inline {
		s.reply(cw, resp)
		return
	}
	s.ctx.Go(func() { s.reply(cw, resp) })
}

// reqJob carries one dispatched request into its handler task.
type reqJob struct {
	s    *Server
	cw   *replyWriter
	id   uint64
	h    Handler
	args Args
	run  func()
}

var jobPool sync.Pool

func init() {
	jobPool.New = func() any {
		j := &reqJob{}
		j.run = func() { j.exec() }
		return j
	}
}

func (j *reqJob) exec() {
	s, cw, id, h, args := j.s, j.cw, j.id, j.h, j.args
	j.s, j.cw, j.h, j.args = nil, nil, nil, Args{}
	jobPool.Put(j)

	resp := response{ID: id}
	result, err := h(args)
	if err != nil {
		resp.Err = err.Error()
	} else if result != nil {
		raw, merr := json.Marshal(result)
		if merr != nil {
			resp.Err = "rpc: unserializable result: " + merr.Error()
		} else {
			resp.Result = raw
		}
	}
	// The result is marshaled (copied) above, so the pooled argument
	// buffer can be recycled even if the handler returned bytes
	// aliasing it.
	args.release()
	s.reply(cw, resp)
}

// replyWriter batches responses onto one connection. Finishing handlers
// enqueue under a plain mutex and return; the task that finds the writer
// idle becomes the flusher and drains everything queued behind it — the
// same coalescing the controller's pipelined Submit uses. The mutex is
// never held across Encode (which blocks in virtual time), so enqueuing
// never parks a task; live, the flusher yields the instance baton across
// the batch write (writeBatch is built once per connection), so a slow
// receiver cannot stall the instance's other tasks or deadlock against
// its read loop.
type replyWriter struct {
	enc        llenc.Writer
	writeBatch func() // flushBatch, bound once; run under ctx.Blocking

	mu       sync.Mutex
	queue    []response
	wbatch   []response // the flusher's current batch (flusher-only)
	flushing bool
}

// init points the writer at conn; the zero replyWriter embeds by value
// in per-connection state (serverConn) with no allocation of its own.
func (cw *replyWriter) init(conn transport.Conn) {
	cw.enc.Reset(conn)
	cw.writeBatch = cw.flushBatch
}

func (cw *replyWriter) flushBatch() {
	for i := range cw.wbatch {
		// A dead conn is detected by the read loop; later frames
		// just fail the same way.
		cw.enc.Encode(&cw.wbatch[i]) //nolint:errcheck
		cw.wbatch[i] = response{}    // drop Result references
	}
}

func (s *Server) reply(cw *replyWriter, resp response) {
	cw.mu.Lock()
	cw.queue = append(cw.queue, resp)
	if cw.flushing {
		cw.mu.Unlock()
		return
	}
	cw.flushing = true
	var spare []response // recycled batch backing, scoped to this busy period
	for len(cw.queue) > 0 {
		cw.wbatch = cw.queue
		cw.queue = spare[:0]
		cw.mu.Unlock()
		s.ctx.Blocking(cw.writeBatch)
		cw.mu.Lock()
		spare = cw.wbatch[:0]
		cw.wbatch = nil
	}
	cw.flushing = false
	// Drop the backing between busy periods: at memory-plane scale the
	// per-connection high-water batch capacity dwarfs the occasional
	// re-allocation when the next burst arrives.
	cw.queue = nil
	cw.mu.Unlock()
}
