// Package rpc implements SPLAY's RPC library: named remote procedures with
// transparent JSON serialization over stream transports, framed by llenc.
//
// The API mirrors the paper's usage. A server registers handlers by name;
// clients invoke them with positional arguments. Call is the paper's
// rpc.call; errors (including timeouts, the paper's rpc.a_call status
// return) come back as Go errors. Ping is the paper's rpc.ping.
//
// Clients keep a small pool of connections, multiplexing concurrent calls
// to one destination over a single stream; SetPooling(false) disables the
// pool for ablation experiments.
//
// The message plane is built for throughput: envelopes ride the
// hand-rolled fast codec in fast.go (byte-identical to encoding/json),
// argument arrays decode lazily from pooled buffers, and replies queued
// behind one connection writer are drained in a batch by whichever task
// got there first. See DESIGN.md ("The message plane").
package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// DefaultTimeout matches the paper's standard RPC timeout of two minutes.
const DefaultTimeout = 2 * time.Minute

// ErrTimeout is returned when a call's timeout expires before a response.
var ErrTimeout = transport.ErrTimeout

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// pingMethod is the reserved method Ping uses.
const pingMethod = "__ping"

type request struct {
	ID     uint64 `json:"id"`
	Method string `json:"m"`
	Args   []any  `json:"a,omitempty"`
}

type response struct {
	ID     uint64          `json:"id"`
	Err    string          `json:"e,omitempty"`
	Result json.RawMessage `json:"r,omitempty"`
}

// Args gives handlers typed access to positional call arguments. The
// argument array is decoded lazily: elements are split on first access
// and unmarshaled only when asked for, so a handler that reads two of
// five arguments never parses the other three.
//
// Args and any raw bytes reached through it are owned by the server and
// valid only until the handler returns (the backing buffer is pooled).
// Decode, String and Int all copy, so ordinary use is safe; a handler
// that wants to retain an argument past its return must decode it.
type Args struct {
	l *argList
}

// NewArgs builds an Args from pre-encoded elements, for invoking a
// Handler directly (bypassing the network for local shortcuts and
// tests). The caller keeps ownership of the elements.
func NewArgs(elems ...json.RawMessage) Args {
	if len(elems) == 0 {
		return Args{}
	}
	return Args{l: &argList{elems: elems, split: true}}
}

// Len returns the number of arguments.
func (a Args) Len() int {
	if a.l == nil {
		return 0
	}
	a.l.ensureSplit()
	return len(a.l.elems)
}

// Decode unmarshals argument i into v.
func (a Args) Decode(i int, v any) error {
	if a.l != nil {
		a.l.ensureSplit()
	}
	if a.l == nil || i < 0 || i >= len(a.l.elems) {
		return fmt.Errorf("rpc: argument %d out of range (%d args)", i, a.Len())
	}
	return json.Unmarshal(a.l.elems[i], v)
}

// String returns argument i as a string (empty on mismatch). Plain
// ASCII strings with no escapes are sliced straight out of the element;
// anything else (escapes, non-ASCII that json would re-validate) takes
// the encoding/json path so the semantics cannot diverge.
func (a Args) String(i int) string {
	if a.l != nil {
		a.l.ensureSplit()
		if i >= 0 && i < len(a.l.elems) {
			e := a.l.elems[i]
			if len(e) >= 2 && e[0] == '"' && asciiPlain(e[1:len(e)-1]) && e[len(e)-1] == '"' {
				return string(e[1 : len(e)-1])
			}
		}
	}
	var s string
	a.Decode(i, &s) //nolint:errcheck // zero value on mismatch is the contract
	return s
}

// asciiPlain reports printable ASCII with no quotes or escapes — bytes
// encoding/json's unquote returns verbatim.
func asciiPlain(b []byte) bool {
	for _, c := range b {
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// Int returns argument i as an int (zero on mismatch). Integer literals
// parse without encoding/json.
func (a Args) Int(i int) int {
	if a.l != nil {
		a.l.ensureSplit()
		if i >= 0 && i < len(a.l.elems) {
			lex := llenc.Lexer{Data: a.l.elems[i]}
			if v, ok := lex.Int(); ok && lex.End() {
				return v
			}
		}
	}
	var n int
	a.Decode(i, &n) //nolint:errcheck
	return n
}

// Result is a call's decoded return payload.
type Result json.RawMessage

// Decode unmarshals the result into v.
func (r Result) Decode(v any) error {
	if len(r) == 0 {
		return errors.New("rpc: empty result")
	}
	return json.Unmarshal([]byte(r), v)
}

// Handler executes one remote procedure. Handlers run as tasks and may
// block (issue nested RPCs, sleep, perform I/O). The Args value is only
// valid until the handler returns; see Args.
type Handler func(args Args) (any, error)

// Server dispatches incoming calls to registered handlers.
type Server struct {
	ctx *core.AppContext

	mu       sync.RWMutex // guards handlers: Register may race serving under LiveRuntime
	handlers map[string]Handler

	ln     transport.Listener
	closed bool
	ins    Instruments
}

// NewServer returns a server bound to the instance context. The reserved
// ping method is pre-registered.
func NewServer(ctx *core.AppContext) *Server {
	s := &Server{ctx: ctx, handlers: make(map[string]Handler)}
	s.handlers[pingMethod] = func(Args) (any, error) { return "pong", nil }
	return s
}

// Register installs a handler under name, replacing any previous one. It
// is safe to call while the server is serving.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	s.handlers[name] = h
	s.mu.Unlock()
}

// handler looks up a method under the read lock.
func (s *Server) handler(name string) (Handler, bool) {
	s.mu.RLock()
	h, ok := s.handlers[name]
	s.mu.RUnlock()
	return h, ok
}

// Start listens on port (the paper's rpc.server(n.port)) and serves calls
// until the server or instance is closed.
func (s *Server) Start(port int) error {
	ln, err := s.ctx.Node().Listen(port)
	if err != nil {
		return fmt.Errorf("rpc: listen: %w", err)
	}
	s.ln = ln
	s.ctx.Track(ln)
	s.ctx.Go(func() {
		var conn transport.Conn
		var aerr error
		accept := func() { conn, aerr = ln.Accept() }
		for {
			// The baton is yielded across the blocking accept so the
			// instance's other tasks run meanwhile (live; a plain park
			// in simulation).
			s.ctx.Blocking(accept)
			if aerr != nil {
				return
			}
			c := conn
			s.ctx.Track(c)
			s.ctx.Go(func() { s.serveConn(c) })
		}
	})
	return nil
}

// Addr returns the bound address (zero before Start).
func (s *Server) Addr() transport.Addr {
	if s.ln == nil {
		return transport.Addr{}
	}
	return s.ln.Addr()
}

// Close stops accepting calls.
func (s *Server) Close() error {
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) serveConn(conn transport.Conn) {
	defer conn.Close()
	conn = s.ins.meter(conn)
	dec := llenc.NewReader(conn)
	cw := newReplyWriter(llenc.NewWriter(conn))
	var payload []byte
	var err error
	read := func() { payload, err = dec.ReadMessage() }
	for {
		// Yield the instance baton across the blocking read (one
		// closure per connection, so the loop stays allocation-free).
		s.ctx.Blocking(read)
		if err != nil {
			return
		}
		s.ins.Served.Inc()
		var id uint64
		var h Handler
		var hok bool
		var method string
		var args Args
		if req, ok := parseRequest(payload); ok {
			id = req.ID
			s.mu.RLock()
			h, hok = s.handlers[string(req.RawMethod)] // non-allocating lookup
			s.mu.RUnlock()
			if !hok {
				method = string(req.RawMethod)
			}
			args = newArgsRaw(req.RawArgs)
		} else {
			// encoding/json fallback: frames the fast parser declined
			// (escaped method names, odd whitespace, hostile input).
			var req struct {
				ID     uint64          `json:"id"`
				Method string          `json:"m"`
				Args   json.RawMessage `json:"a"`
			}
			if err := json.Unmarshal(payload, &req); err != nil {
				return // framing is broken; drop the connection
			}
			if len(req.Args) > 0 {
				var elems []json.RawMessage
				if err := json.Unmarshal(req.Args, &elems); err != nil {
					s.reply(cw, response{ID: req.ID, Err: "rpc: malformed arguments"})
					continue
				}
				args = newArgsSplit(elems)
			}
			id, method = req.ID, req.Method
			h, hok = s.handler(method)
		}
		if !hok {
			args.release()
			s.reply(cw, response{ID: id, Err: fmt.Sprintf("rpc: unknown method %q", method)})
			continue
		}
		// Handlers run as their own task so they may block; the connection
		// keeps serving other requests meanwhile. The dispatch rides a
		// pooled job (one closure per pooled object, ever) so steady-state
		// serving allocates no per-request bookkeeping.
		j := jobPool.Get().(*reqJob)
		j.s, j.cw, j.id, j.h, j.args = s, cw, id, h, args
		s.ctx.Go(j.run)
	}
}

// reqJob carries one dispatched request into its handler task.
type reqJob struct {
	s    *Server
	cw   *replyWriter
	id   uint64
	h    Handler
	args Args
	run  func()
}

var jobPool sync.Pool

func init() {
	jobPool.New = func() any {
		j := &reqJob{}
		j.run = func() { j.exec() }
		return j
	}
}

func (j *reqJob) exec() {
	s, cw, id, h, args := j.s, j.cw, j.id, j.h, j.args
	j.s, j.cw, j.h, j.args = nil, nil, nil, Args{}
	jobPool.Put(j)

	resp := response{ID: id}
	result, err := h(args)
	if err != nil {
		resp.Err = err.Error()
	} else if result != nil {
		raw, merr := json.Marshal(result)
		if merr != nil {
			resp.Err = "rpc: unserializable result: " + merr.Error()
		} else {
			resp.Result = raw
		}
	}
	// The result is marshaled (copied) above, so the pooled argument
	// buffer can be recycled even if the handler returned bytes
	// aliasing it.
	args.release()
	s.reply(cw, resp)
}

// replyWriter batches responses onto one connection. Finishing handlers
// enqueue under a plain mutex and return; the task that finds the writer
// idle becomes the flusher and drains everything queued behind it — the
// same coalescing the controller's pipelined Submit uses. The mutex is
// never held across Encode (which blocks in virtual time), so enqueuing
// never parks a task; live, the flusher yields the instance baton across
// the batch write (writeBatch is built once per connection), so a slow
// receiver cannot stall the instance's other tasks or deadlock against
// its read loop.
type replyWriter struct {
	enc        *llenc.Writer
	writeBatch func() // encodes wbatch; run under ctx.Blocking

	mu       sync.Mutex
	queue    []response
	spare    []response // recycled batch backing
	wbatch   []response // the flusher's current batch (flusher-only)
	flushing bool
}

func newReplyWriter(enc *llenc.Writer) *replyWriter {
	cw := &replyWriter{enc: enc}
	cw.writeBatch = func() {
		for i := range cw.wbatch {
			// A dead conn is detected by the read loop; later frames
			// just fail the same way.
			cw.enc.Encode(&cw.wbatch[i]) //nolint:errcheck
			cw.wbatch[i] = response{}    // drop Result references
		}
	}
	return cw
}

func (s *Server) reply(cw *replyWriter, resp response) {
	cw.mu.Lock()
	cw.queue = append(cw.queue, resp)
	if cw.flushing {
		cw.mu.Unlock()
		return
	}
	cw.flushing = true
	for len(cw.queue) > 0 {
		cw.wbatch = cw.queue
		cw.queue = cw.spare[:0]
		cw.mu.Unlock()
		s.ctx.Blocking(cw.writeBatch)
		cw.mu.Lock()
		cw.spare = cw.wbatch[:0]
		cw.wbatch = nil
	}
	cw.flushing = false
	cw.mu.Unlock()
}
