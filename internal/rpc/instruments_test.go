package rpc

import (
	"testing"
	"time"

	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/transport"
)

// TestInstrumentedCallCounts wires live instruments into a client and
// server and checks every hook fires: calls, errors, timeouts,
// latency observations and byte meters on both sides.
func TestInstrumentedCallCounts(t *testing.T) {
	e := newEnv(t, 2)
	reg := metrics.NewRegistry()
	ins := NewInstruments(reg)
	addr := transport.Addr{Host: "n1", Port: 8000}
	e.k.Go(func() {
		s := startEchoServer(t, e.ctx(1), 8000)
		s.SetInstruments(ins)
	})
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		c.SetInstruments(ins)
		if _, err := c.Call(addr, "echo", "hello"); err != nil {
			t.Errorf("echo: %v", err)
		}
		if _, err := c.Call(addr, "fail"); err == nil {
			t.Error("fail did not fail")
		}
		if _, err := c.CallTimeout(addr, 2*time.Second, "slow"); err != ErrTimeout {
			t.Errorf("slow returned %v, want timeout", err)
		}
	})
	e.k.Run()

	if got := ins.Calls.Total(); got != 3 {
		t.Errorf("calls %d, want 3", got)
	}
	if got := ins.Errors.Total(); got != 2 {
		t.Errorf("errors %d, want 2", got)
	}
	if got := ins.Timeouts.Total(); got != 1 {
		t.Errorf("timeouts %d, want 1", got)
	}
	if got := ins.Latency.Count(); got != 1 {
		t.Errorf("latency observations %d, want 1 (only successes)", got)
	}
	if ins.Latency.Sum() < int64(20*time.Millisecond) {
		t.Errorf("latency sum %d below one RTT", ins.Latency.Sum())
	}
	// The server saw all three requests; bytes flowed both ways and the
	// client/server meters agree (same frames, mirrored directions).
	if got := ins.Served.Total(); got != 3 {
		t.Errorf("served %d, want 3", got)
	}
	if ins.BytesOut.Total() == 0 || ins.BytesIn.Total() == 0 {
		t.Error("byte meters did not move")
	}
}

// TestInstrumentedRedial breaks a pooled peer and checks the retry
// counter observes the re-dial.
func TestInstrumentedRedial(t *testing.T) {
	e := newEnv(t, 2)
	reg := metrics.NewRegistry()
	ins := NewInstruments(reg)
	addr := transport.Addr{Host: "n1", Port: 8000}
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		c.SetInstruments(ins)
		if _, err := c.Call(addr, "echo", "a"); err != nil {
			t.Errorf("first call: %v", err)
		}
		// Bounce the server host: the pooled conn resets, the read loop
		// buries the peer, and the next call re-dials the same address.
		e.nw.Host(1).SetDown(true)
		e.k.Sleep(time.Second) // let the read loop observe the reset
		e.nw.Host(1).SetDown(false)
		// The host is back but its listener died with it, so the call is
		// refused — after re-dialing, which is what Redials meters.
		c.Call(addr, "echo", "b") //nolint:errcheck
	})
	e.k.Run()
	if got := ins.Redials.Total(); got != 1 {
		t.Errorf("redials %d, want 1", got)
	}
}
