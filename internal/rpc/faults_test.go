package rpc

import (
	"errors"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/faults"
	"github.com/splaykit/splay/internal/transport"
)

// TestFaultHookDropsAndDelays checks the fault-plane filter: drop
// verdicts fail by timeout, delay verdicts stall the call, and clearing
// the filter restores normal service.
func TestFaultHookDropsAndDelays(t *testing.T) {
	e := newEnv(t, 2)
	addr := transport.Addr{Host: "n1", Port: 8000}
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	e.k.GoAfter(time.Second, func() {
		rules := faults.NewRPCRules(7)
		c := NewClient(e.ctx(0))
		c.Fault = rules.Check

		// No rules: a plain call.
		if _, err := c.Call(addr, "echo", "a"); err != nil {
			t.Errorf("clean call: %v", err)
		}

		rules.Add(faults.RPCRule{Method: "echo", Drop: 1})
		start := e.k.Now()
		_, err := c.CallTimeout(addr, 2*time.Second, "echo", "b")
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("dropped call: err = %v, want timeout", err)
		}
		if took := e.k.Now().Sub(start); took != 2*time.Second {
			t.Errorf("dropped call returned after %s, want the full 2s", took)
		}
		// Other methods are untouched.
		if _, err := c.Call(addr, "add", 1, 2); err != nil {
			t.Errorf("unmatched method: %v", err)
		}

		rules.Clear()
		rules.Add(faults.RPCRule{Method: "echo", Delay: 300 * time.Millisecond})
		start = e.k.Now()
		if _, err := c.Call(addr, "echo", "c"); err != nil {
			t.Errorf("delayed call: %v", err)
		}
		if took := e.k.Now().Sub(start); took < 300*time.Millisecond {
			t.Errorf("delayed call returned in %s, want ≥ 300ms", took)
		}

		rules.Clear()
		if _, err := c.Call(addr, "echo", "d"); err != nil {
			t.Errorf("call after clear: %v", err)
		}
	})
	e.k.Run()
}

// TestRedialBackoffPacesDials checks that with backoff enabled, repeat
// dials to a dead destination wait the schedule's delays, and a
// successful dial resets the clock.
func TestRedialBackoffPacesDials(t *testing.T) {
	e := newEnv(t, 2)
	addr := transport.Addr{Host: "n1", Port: 8000}
	var gaps []time.Duration
	e.k.Go(func() {
		c := NewClient(e.ctx(0))
		c.SetRedialBackoff(faults.Backoff{Base: time.Second, Max: 8 * time.Second, Factor: 2})

		// Three failed dials: refusal is instant (one RTT), so the gap
		// between consecutive attempts is the backoff delay.
		prev := e.k.Now()
		for i := 0; i < 3; i++ {
			if _, err := c.Call(addr, "echo", "x"); err == nil {
				t.Error("call to a dead port succeeded")
			}
			now := e.k.Now()
			gaps = append(gaps, now.Sub(prev))
			prev = now
		}

		// Server comes up; the next (paced) dial succeeds and resets.
		startEchoServer(t, e.ctx(1), 8000)
		if _, err := c.Call(addr, "echo", "y"); err != nil {
			t.Errorf("call after server start: %v", err)
		}
		c.mu.Lock()
		rs := c.redials[addr]
		c.mu.Unlock()
		if rs != nil {
			t.Errorf("redial state not evicted after success: %+v", rs)
		}
	})
	e.k.Run()
	// gap[0] has no backoff (first dial); gap[1] ≥ 1s; gap[2] ≥ 2s.
	if len(gaps) != 3 {
		t.Fatalf("gaps = %v", gaps)
	}
	if gaps[1] < time.Second || gaps[2] < 2*time.Second {
		t.Fatalf("backoff pacing not applied: gaps = %v", gaps)
	}
}

// TestBackoffDisabledAddsNothing checks the default client never touches
// the redial map (the allocation profile BenchmarkRPCThroughput gates).
func TestBackoffDisabledAddsNothing(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		if _, err := c.Call(transport.Addr{Host: "n1", Port: 8000}, "echo", "x"); err != nil {
			t.Errorf("call: %v", err)
		}
		if c.redials != nil {
			t.Error("redial map allocated without Redials instrument or backoff")
		}
	})
	e.k.Run()
}
