package rpc

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// jsonEnvelope is the reference decode of a request frame via
// encoding/json, mirroring the serve loop's fallback path.
type jsonEnvelope struct {
	ID     uint64          `json:"id"`
	Method string          `json:"m"`
	Args   json.RawMessage `json:"a"`
}

// sampleRequests covers every call shape the protocols issue plus the
// edge cases the codec must decline into the fallback: escape-heavy
// method names, non-ASCII, large raw args, overflow-boundary ids.
func sampleRequests() []request {
	big := json.RawMessage(`{"blob":"` + strings.Repeat("x", 4096) + `"}`)
	return []request{
		{},
		{ID: 1, Method: "echo", Args: []any{"hello"}},
		{ID: 2, Method: "add", Args: []any{19, 23}},
		{ID: 3, Method: "__ping"},
		{ID: 18446744073709551615, Method: "find_successor", Args: []any{uint64(1) << 52, 0}},
		{ID: 5, Method: "notify", Args: []any{json.RawMessage(`{"id":12345,"addr":{"host":"n0","port":8000}}`)}},
		{ID: 6, Method: "rumor", Args: []any{nil, true, false}},
		{ID: 7, Method: "neg", Args: []any{-42, int64(-1 << 60)}},
		{ID: 8, Method: "floaty", Args: []any{3.25, float64(1e300)}},
		{ID: 9, Method: "structs", Args: []any{struct {
			A string `json:"a"`
			B int    `json:"b"`
		}{"x", 2}}},
		{ID: 10, Method: `esc"ape`, Args: []any{"x"}},
		{ID: 11, Method: "ünïcode"},
		{ID: 12, Method: "html<&>"},
		{ID: 13, Method: "strs", Args: []any{`needs "quotes"`, "html <&>", "ünïcode", "ctrl\x01"}},
		{ID: 14, Method: "big", Args: []any{big}},
		{ID: 15, Method: "raw-ws", Args: []any{json.RawMessage(`{ "spaced" : 1 }`)}},
		{ID: 16, Method: "spaces", Args: []any{"a string with spaces"}},
	}
}

func sampleResponses() []response {
	return []response{
		{},
		{ID: 1, Result: json.RawMessage(`"pong"`)},
		{ID: 2, Result: json.RawMessage(`{"node":{"id":7,"addr":{"host":"n1","port":8000}},"hops":3}`)},
		{ID: 18446744073709551615, Result: json.RawMessage(`42`)},
		{ID: 4, Err: "rpc: unknown method \"x\""},
		{ID: 5, Err: "plain error"},
		{ID: 6, Err: "html <&> error"},
		{ID: 7, Err: "ünïcode error"},
		{ID: 8, Result: json.RawMessage(`[1,2,3]`)},
		{ID: 9, Result: json.RawMessage(`"needs \"escapes\""`)},
	}
}

// TestRPCFastEncodeMatchesEncodingJSON is the byte-compatibility
// contract for the encoders: whenever AppendJSON claims an envelope its
// bytes equal json.Marshal's.
func TestRPCFastEncodeMatchesEncodingJSON(t *testing.T) {
	for i, req := range sampleRequests() {
		req := req
		want, err := json.Marshal(&req)
		if err != nil {
			t.Fatalf("req %d: marshal: %v", i, err)
		}
		if got, ok := req.AppendJSON(nil); ok && !bytes.Equal(got, want) {
			t.Errorf("req %d: fast encode diverges:\n got  %s\n want %s", i, got, want)
		}
	}
	for i, resp := range sampleResponses() {
		resp := resp
		want, err := json.Marshal(&resp)
		if err != nil {
			t.Fatalf("resp %d: marshal: %v", i, err)
		}
		if got, ok := resp.AppendJSON(nil); ok && !bytes.Equal(got, want) {
			t.Errorf("resp %d: fast encode diverges:\n got  %s\n want %s", i, got, want)
		}
	}
}

// checkRequestParse cross-checks parseRequest against encoding/json on
// one frame: acceptance must imply an identical decode.
func checkRequestParse(t *testing.T, frame []byte) {
	t.Helper()
	fast, ok := parseRequest(frame)
	var ref jsonEnvelope
	refErr := json.Unmarshal(frame, &ref)
	if !ok {
		return // declined: the fallback's behavior is authoritative
	}
	if refErr != nil {
		t.Fatalf("fast parser accepted %q which encoding/json rejects: %v", frame, refErr)
	}
	if fast.ID != ref.ID || string(fast.RawMethod) != ref.Method {
		t.Fatalf("fast parse diverges on %q: got (%d, %q), want (%d, %q)",
			frame, fast.ID, fast.RawMethod, ref.ID, ref.Method)
	}
	if !bytes.Equal(fast.RawArgs, ref.Args) && !(len(fast.RawArgs) == 0 && len(ref.Args) == 0) {
		// encoding/json accepts "a":null as a nil RawMessage; the fast
		// parser declines null, so spans must match exactly otherwise.
		t.Fatalf("fast args span diverges on %q: got %q, want %q", frame, fast.RawArgs, ref.Args)
	}
	// The lazy split must agree element-for-element with eager decoding.
	if len(ref.Args) > 0 {
		var want []json.RawMessage
		if err := json.Unmarshal(ref.Args, &want); err != nil {
			t.Fatalf("reference split failed on %q: %v", frame, err)
		}
		args := newArgsRaw(fast.RawArgs)
		defer args.release()
		if args.Len() != len(want) {
			t.Fatalf("lazy split length %d, want %d on %q", args.Len(), len(want), frame)
		}
		for i := range want {
			var a, b any
			errA := args.Decode(i, &a)
			errB := json.Unmarshal(want[i], &b)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("lazy element %d decode disagreement on %q: %v vs %v", i, frame, errA, errB)
			}
			if errA == nil && !reflect.DeepEqual(a, b) {
				t.Fatalf("lazy element %d diverges on %q: %v vs %v", i, frame, a, b)
			}
		}
	}
}

// checkResponseParse cross-checks response.parseJSON the same way.
func checkResponseParse(t *testing.T, frame []byte) {
	t.Helper()
	var fast response
	ok := fast.parseJSON(frame)
	var ref response
	refErr := json.Unmarshal(frame, &ref)
	if !ok {
		return
	}
	if refErr != nil {
		t.Fatalf("fast parser accepted %q which encoding/json rejects: %v", frame, refErr)
	}
	if fast.ID != ref.ID || fast.Err != ref.Err || !bytes.Equal(fast.Result, ref.Result) {
		t.Fatalf("fast response parse diverges on %q:\n got  %+v\n want %+v", frame, fast, ref)
	}
}

// TestRPCFastParseMatchesEncodingJSON round-trips every sample through
// json.Marshal and cross-checks both parsers, then pins a set of
// malformed and boundary frames.
func TestRPCFastParseMatchesEncodingJSON(t *testing.T) {
	for _, req := range sampleRequests() {
		req := req
		frame, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		checkRequestParse(t, frame)
	}
	for _, resp := range sampleResponses() {
		resp := resp
		frame, err := json.Marshal(&resp)
		if err != nil {
			t.Fatal(err)
		}
		checkResponseParse(t, frame)
	}
	for _, src := range []string{
		``, `{`, `[]`, `null`, `{"id":}`, `{"id":1.5,"m":"x"}`,
		`{"id":1,"m":"x"}y`, `{"id":01,"m":"x"}`,
		`{"id":18446744073709551615,"m":"x"}`, // uint64 max is valid
		`{"id":18446744073709551616,"m":"x"}`, // overflow must not wrap
		`{"id":1,"m":"x","a":[1,]}`,           // trailing comma is invalid
		`{"id":1,"m":"x","a":[01]}`,           // invalid number inside args
		`{"id":1,"m":"x","a":["\u00zz"]}`,     // broken escape inside args
		`{"id":1,"m":"x","a":{"k":1}}`,        // args must be an array
		`{"id":1,"m":"x","a":null}`,
		`{"id":1,"m":"x","unknown":1}`,
		`{ "id" : 1 , "m" : "x" , "a" : [ 1 , "two" ] }`, // whitespace everywhere
		`{"id":1,"e":"boom"}`, `{"id":1,"r":{"x":[1,2]}}`, `{"id":1,"r":}`,
	} {
		checkRequestParse(t, []byte(src))
		checkResponseParse(t, []byte(src))
	}
}

// TestRPCFastCodecRandomized fuzzes the contract over random envelopes
// built from a mixed alphabet, the same shape as ctlproto's randomized
// differential test.
func TestRPCFastCodecRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2009))
	alphabet := []string{"a", "Z", "0", "_", ".", " ", `"`, `\`, "<", "&", "é", "\x7f", "\n", "{", "["}
	randStr := func() string {
		var b []byte
		for n := rng.Intn(8); n > 0; n-- {
			b = append(b, alphabet[rng.Intn(len(alphabet))]...)
		}
		return string(b)
	}
	randArg := func() any {
		switch rng.Intn(7) {
		case 0:
			return randStr()
		case 1:
			return rng.Intn(1000) - 500
		case 2:
			return rng.Uint64()
		case 3:
			return rng.Float64() * 1e6
		case 4:
			return nil
		case 5:
			return rng.Intn(2) == 0
		default:
			return map[string]any{"k": randStr(), "n": rng.Intn(10)}
		}
	}
	for i := 0; i < 2000; i++ {
		req := request{ID: rng.Uint64() >> uint(rng.Intn(64)), Method: randStr()}
		for n := rng.Intn(4); n > 0; n-- {
			req.Args = append(req.Args, randArg())
		}
		want, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := req.AppendJSON(nil); ok && !bytes.Equal(got, want) {
			t.Fatalf("case %d: fast encode diverges:\n got  %s\n want %s", i, got, want)
		}
		checkRequestParse(t, want)

		resp := response{ID: rng.Uint64() >> uint(rng.Intn(64)), Err: randStr()}
		if rng.Intn(2) == 0 {
			raw, _ := json.Marshal(randArg())
			resp.Result = raw
			resp.Err = ""
		}
		want, err = json.Marshal(&resp)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := resp.AppendJSON(nil); ok && !bytes.Equal(got, want) {
			t.Fatalf("case %d: fast response encode diverges:\n got  %s\n want %s", i, got, want)
		}
		checkResponseParse(t, want)
	}
}

// FuzzRPCRequestParse feeds arbitrary bytes to the request parser; any
// accepted frame must decode identically via encoding/json.
func FuzzRPCRequestParse(f *testing.F) {
	f.Add([]byte(`{"id":1,"m":"echo","a":["x",3]}`))
	f.Add([]byte(`{"id":18446744073709551615,"m":"__ping"}`))
	f.Add([]byte(`{"id":18446744073709551616,"m":"overflow"}`))
	f.Add([]byte(`{"id":2,"m":"esc\u0041pe","a":[1]}`))
	f.Add([]byte(`{"id":3,"m":"deep","a":[[[[[[{"k":[1,2,{"x":null}]}]]]]]]}`))
	f.Add([]byte(`{"id":4,"m":"big","a":["` + strings.Repeat("y", 2048) + `"]}`))
	f.Add([]byte(`{ "id" : 7 , "m" : "ws" , "a" : [ true , false , null ] }`))
	f.Add([]byte(`{"id":5,"m":"x","a":[1e309]}`))
	f.Add([]byte(`{"a":[,]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		checkRequestParse(t, data)
	})
}

// FuzzRPCResponseParse is the response-side twin.
func FuzzRPCResponseParse(f *testing.F) {
	f.Add([]byte(`{"id":1,"r":"pong"}`))
	f.Add([]byte(`{"id":1,"e":"boom"}`))
	f.Add([]byte(`{"id":18446744073709551615,"r":{"hops":4}}`))
	f.Add([]byte(`{"id":1,"r":["nested",["deep",{"k":1.5e-3}]]}`))
	f.Add([]byte(`{"id":1,"e":"\u00e9scaped"}`))
	f.Add([]byte(`{"id":0}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		checkResponseParse(t, data)
	})
}

// FuzzRPCRequestEncode fuzzes the encoder differentially over the
// scalar argument space.
func FuzzRPCRequestEncode(f *testing.F) {
	f.Add(uint64(1), "echo", "payload", int64(42), []byte(`{"k":1}`), true)
	f.Add(uint64(1<<63), `we"ird`, "sp ace", int64(-1), []byte(` [1, 2] `), false)
	f.Add(uint64(0), "html<&>", "ünïcode", int64(1<<62), []byte(`not json`), true)
	f.Fuzz(func(t *testing.T, id uint64, method, sArg string, iArg int64, raw []byte, withRaw bool) {
		req := request{ID: id, Method: method, Args: []any{sArg, iArg}}
		if withRaw {
			req.Args = append(req.Args, json.RawMessage(raw))
		}
		want, err := json.Marshal(&req)
		if err != nil {
			// encoding/json rejects it (e.g. invalid raw); the fast
			// encoder must decline too, not emit garbage.
			if got, ok := req.AppendJSON(nil); ok {
				t.Fatalf("fast encoder accepted an unmarshalable request: %s", got)
			}
			return
		}
		if got, ok := req.AppendJSON(nil); ok && !bytes.Equal(got, want) {
			t.Fatalf("fast encode diverges:\n got  %s\n want %s", got, want)
		}
	})
}
