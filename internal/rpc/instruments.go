package rpc

import (
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/transport"
)

// Instruments is the RPC library's optional metric set for the
// observability plane. The zero value (all nil) is the disabled
// configuration: every hook below degrades to a nil-receiver no-op, so
// uninstrumented clients and servers pay only dead branches.
// Instrument increments touch only memory — never the scheduler or any
// seeded randomness — so attaching instruments leaves simulation
// schedules bit-identical.
type Instruments struct {
	Calls    *metrics.Counter   // calls issued (pings included)
	Errors   *metrics.Counter   // calls that returned any error
	Timeouts *metrics.Counter   // the subset that timed out
	Redials  *metrics.Counter   // retries: dials replacing a broken pooled peer
	Latency  *metrics.Histogram // per-call wall time, pow2 ns buckets
	BytesOut *metrics.Counter   // bytes written, llenc headers included
	BytesIn  *metrics.Counter   // bytes read
	Served   *metrics.Counter   // server-side requests dispatched
}

// NewInstruments registers the library's canonical series on reg ("rpc."
// prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		Calls:    reg.Counter("rpc.calls"),
		Errors:   reg.Counter("rpc.errors"),
		Timeouts: reg.Counter("rpc.timeouts"),
		Redials:  reg.Counter("rpc.redials"),
		Latency:  reg.Histogram("rpc.latency_ns", metrics.KindHistPow2),
		BytesOut: reg.Counter("rpc.bytes_out"),
		BytesIn:  reg.Counter("rpc.bytes_in"),
		Served:   reg.Counter("rpc.served"),
	}
}

// noInstruments is the shared disabled set. Clients and servers point at
// it until SetInstruments is called, so the uninstrumented common case
// costs one pointer per endpoint instead of an inline 64-byte struct and
// no access needs a nil guard. It is never written to.
var noInstruments Instruments

// SetInstruments attaches instruments to the client. Call it before
// issuing calls; connections dialed earlier stay uncounted.
func (c *Client) SetInstruments(ins Instruments) { c.ins = &ins }

// SetInstruments attaches instruments to the server. Call it before
// Start.
func (s *Server) SetInstruments(ins Instruments) { s.ins = &ins }

// countedConn meters a connection's bytes in both directions. It is
// pure delegation — no buffering, no scheduling — so wrapping changes
// nothing but the counters.
type countedConn struct {
	transport.Conn
	in, out *metrics.Counter
}

func (cc countedConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.in.Add(uint64(n))
	return n, err
}

func (cc countedConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.out.Add(uint64(n))
	return n, err
}

// countedEventConn is countedConn for EventConn transports, preserving
// the event-read capability through the metering wrapper. TryRead
// counts exactly the bytes a metered Read would.
type countedEventConn struct {
	countedConn
	ec transport.EventConn
}

func (cc countedEventConn) TryRead(p []byte) (int, error) {
	n, err := cc.ec.TryRead(p)
	cc.in.Add(uint64(n))
	return n, err
}

func (cc countedEventConn) OnReadable(cb func()) { cc.ec.OnReadable(cb) }

// meter wraps conn when byte counting is on.
func (ins *Instruments) meter(conn transport.Conn) transport.Conn {
	if ins.BytesIn == nil && ins.BytesOut == nil {
		return conn
	}
	cc := countedConn{Conn: conn, in: ins.BytesIn, out: ins.BytesOut}
	if ec, ok := conn.(transport.EventConn); ok {
		return countedEventConn{countedConn: cc, ec: ec}
	}
	return cc
}
