package rpc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

type env struct {
	k  *sim.Kernel
	nw *simnet.Network
	rt *core.SimRuntime
}

func newEnv(t *testing.T, hosts int) *env {
	t.Helper()
	k := sim.NewKernel()
	return &env{
		k:  k,
		nw: simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, hosts, 1),
		rt: core.NewSimRuntime(k, 1),
	}
}

func (e *env) ctx(host int) *core.AppContext {
	return core.NewAppContext(e.rt, e.nw.Node(host), core.JobInfo{}, nil)
}

func startEchoServer(t *testing.T, ctx *core.AppContext, port int) *Server {
	t.Helper()
	s := NewServer(ctx)
	s.Register("echo", func(args Args) (any, error) {
		return args.String(0), nil
	})
	s.Register("add", func(args Args) (any, error) {
		return args.Int(0) + args.Int(1), nil
	})
	s.Register("fail", func(args Args) (any, error) {
		return nil, errors.New("boom")
	})
	s.Register("slow", func(args Args) (any, error) {
		ctx.Sleep(10 * time.Second)
		return "late", nil
	})
	if err := s.Start(port); err != nil {
		t.Fatalf("start: %v", err)
	}
	return s
}

func TestCallBasics(t *testing.T) {
	e := newEnv(t, 2)
	addr := transport.Addr{Host: "n1", Port: 8000}
	e.k.Go(func() {
		startEchoServer(t, e.ctx(1), 8000)
	})
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		res, err := c.Call(addr, "echo", "hello")
		if err != nil {
			t.Errorf("echo: %v", err)
			return
		}
		var s string
		if res.Decode(&s); s != "hello" {
			t.Errorf("echo = %q", s)
		}
		res, err = c.Call(addr, "add", 19, 23)
		if err != nil {
			t.Errorf("add: %v", err)
			return
		}
		var n int
		if res.Decode(&n); n != 42 {
			t.Errorf("add = %d", n)
		}
	})
	e.k.Run()
}

func TestRemoteError(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		_, err := c.Call(transport.Addr{Host: "n1", Port: 8000}, "fail")
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "boom" {
			t.Errorf("err = %v, want RemoteError(boom)", err)
		}
		_, err = c.Call(transport.Addr{Host: "n1", Port: 8000}, "nosuch")
		if !errors.As(err, &re) {
			t.Errorf("unknown method err = %v", err)
		}
	})
	e.k.Run()
}

func TestCallTimeout(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	var took time.Duration
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		start := e.k.Now()
		_, err := c.CallTimeout(transport.Addr{Host: "n1", Port: 8000}, 2*time.Second, "slow")
		took = e.k.Now().Sub(start)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want timeout", err)
		}
	})
	e.k.Run()
	if took != 2*time.Second {
		t.Fatalf("timed out after %s, want 2s", took)
	}
}

func TestDialRefusedPropagates(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() {
		c := NewClient(e.ctx(0))
		_, err := c.Call(transport.Addr{Host: "n1", Port: 9}, "echo", "x")
		if !errors.Is(err, transport.ErrRefused) {
			t.Errorf("err = %v, want refused", err)
		}
	})
	e.k.Run()
}

func TestPing(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		rtt, err := c.Ping(transport.Addr{Host: "n1", Port: 8000}, time.Minute)
		if err != nil {
			t.Errorf("ping: %v", err)
			return
		}
		// Dial handshake (1 RTT) + request/response (1 RTT) = 40ms.
		if rtt != 40*time.Millisecond {
			t.Errorf("ping rtt = %s, want 40ms", rtt)
		}
		// Second ping reuses the pooled connection: just 1 RTT.
		rtt, _ = c.Ping(transport.Addr{Host: "n1", Port: 8000}, time.Minute)
		if rtt != 20*time.Millisecond {
			t.Errorf("pooled ping rtt = %s, want 20ms", rtt)
		}
	})
	e.k.Run()
}

func TestPoolingReusesConnections(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		for i := 0; i < 10; i++ {
			if _, err := c.Call(transport.Addr{Host: "n1", Port: 8000}, "echo", "x"); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}
	})
	e.k.Run()
	if dials := e.nw.Stats().Dials; dials != 1 {
		t.Fatalf("pooled client dialed %d times, want 1", dials)
	}
}

func TestNoPoolingDialsPerCall(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		c.SetPooling(false)
		for i := 0; i < 5; i++ {
			if _, err := c.Call(transport.Addr{Host: "n1", Port: 8000}, "echo", "x"); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}
	})
	e.k.Run()
	if dials := e.nw.Stats().Dials; dials != 5 {
		t.Fatalf("unpooled client dialed %d times, want 5", dials)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	e := newEnv(t, 2)
	sctx := e.ctx(1)
	e.k.Go(func() {
		s := NewServer(sctx)
		s.Register("wait", func(args Args) (any, error) {
			sctx.Sleep(time.Duration(args.Int(0)) * time.Millisecond)
			return args.Int(0), nil
		})
		s.Start(8000)
	})
	done := 0
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		cctx := e.ctx(0)
		for _, d := range []int{500, 300, 100} {
			d := d
			cctx.Go(func() {
				res, err := c.Call(transport.Addr{Host: "n1", Port: 8000}, "wait", d)
				if err != nil {
					t.Errorf("wait(%d): %v", d, err)
					return
				}
				var got int
				res.Decode(&got)
				if got != d {
					t.Errorf("wait(%d) = %d", d, got)
				}
				done++
			})
		}
	})
	e.k.Run()
	if done != 3 {
		t.Fatalf("completed %d calls, want 3", done)
	}
	// All three calls multiplex over one connection and overlap: the
	// slowest is 500ms, so everything ends well before 1s after start.
	if e.k.Since() > 2*time.Second {
		t.Fatalf("calls did not overlap: finished at %s", e.k.Since())
	}
}

func TestServerDeathFailsPendingCalls(t *testing.T) {
	e := newEnv(t, 2)
	sctx := e.ctx(1)
	e.k.Go(func() {
		s := NewServer(sctx)
		s.Register("hang", func(Args) (any, error) {
			sctx.Sleep(time.Hour)
			return nil, nil
		})
		s.Start(8000)
	})
	var err error
	var at time.Duration
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		_, err = c.Call(transport.Addr{Host: "n1", Port: 8000}, "hang")
		at = e.k.Since()
	})
	e.k.GoAfter(2*time.Second, func() {
		e.nw.Host(1).SetDown(true)
	})
	e.k.Run()
	if err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want connection failure", err)
	}
	if at > 3*time.Second {
		t.Fatalf("failure detected at %s, want ≈2s", at)
	}
}

func TestDropRateCausesTimeouts(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Go(func() { startEchoServer(t, e.ctx(1), 8000) })
	timeouts := 0
	e.k.GoAfter(time.Second, func() {
		c := NewClient(e.ctx(0))
		c.DropRate = 1.0
		for i := 0; i < 3; i++ {
			if _, err := c.CallTimeout(transport.Addr{Host: "n1", Port: 8000}, time.Second, "echo", "x"); errors.Is(err, ErrTimeout) {
				timeouts++
			}
		}
	})
	e.k.Run()
	if timeouts != 3 {
		t.Fatalf("timeouts = %d, want 3", timeouts)
	}
}

func TestManyClientsOneServer(t *testing.T) {
	const clients = 20
	e := newEnv(t, clients+1)
	sctx := e.ctx(clients)
	e.k.Go(func() {
		s := NewServer(sctx)
		n := 0
		s.Register("inc", func(Args) (any, error) { n++; return n, nil })
		s.Start(8000)
	})
	results := map[int]bool{}
	e.k.GoAfter(time.Second, func() {
		for i := 0; i < clients; i++ {
			i := i
			cctx := e.ctx(i)
			cctx.Go(func() {
				c := NewClient(cctx)
				res, err := c.Call(transport.Addr{Host: fmt.Sprintf("n%d", clients), Port: 8000}, "inc")
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				var v int
				res.Decode(&v)
				results[v] = true
			})
		}
	})
	e.k.Run()
	if len(results) != clients {
		t.Fatalf("distinct results = %d, want %d (handler must run per request)", len(results), clients)
	}
}
