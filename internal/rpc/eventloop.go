package rpc

// Event-driven read loops: the memory plane's replacement for the two
// parked tasks every pooled connection used to pin (the server's
// serveConn and the client's readLoop). On transports that implement
// transport.EventConn — the simulated network — an idle connection now
// holds a ~100-byte frame reader instead of a goroutine, its parking
// channel and a kernel waiter; at 100k+ nodes those goroutines (g
// structs plus stacks) were the single largest memory consumer.
//
// Schedule neutrality is load-bearing: simnet delivers a readability
// callback with exactly one kernel event (one alloc + one push at the
// current instant), the same cost as waking a parked reader's waiter,
// and the drain loop consumes buffered data with the same greed as a
// task looping on blocking reads. Swapping loop styles therefore
// reproduces pinned golden event orders bit for bit. Both loops only
// ever blocked inside Read — handlers already run as their own tasks
// and replies are written by the finishing handler — which is what
// makes the event form possible at all.

import (
	"encoding/binary"
	"io"
	"sync"

	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// frameBufPool recycles payload buffers across all event-driven readers.
// A reader borrows a buffer only while a frame is in flight and returns
// it after dispatch, so idle connections retain nothing — unlike the
// per-connection llenc.Reader buffer, which held the high-water frame
// size for the connection's lifetime.
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getFrameBuf(n int) *[]byte {
	bp := frameBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return bp
}

func putFrameBuf(bp *[]byte) {
	frameBufPool.Put(bp)
}

// frameSink receives a frameReader's output: one call per complete
// frame (false drops the connection) and one teardown verdict (nil when
// onFrame declined). Both connection ends implement it directly, so a
// reader embeds in its owner with no dispatch closures.
type frameSink interface {
	onFrame(payload []byte) bool
	onEnd(err error)
}

// frameReader is an incremental llenc frame decoder over an EventConn:
// llenc.Reader.ReadMessage restated as a state machine so that running
// dry suspends by arming a callback instead of parking a task. Framing,
// size limits and error verdicts match llenc exactly. The zero value is
// initialized with init; it embeds by value in the connection state it
// feeds (peerConn, serverConn), costing one allocation for the whole
// connection rather than one per layer.
type frameReader struct {
	conn transport.EventConn
	sink frameSink
	run  func() // the armed wake callback, allocated once

	header [4]byte
	hfill  int32
	buf    *[]byte // pooled payload storage, held only mid-frame
	need   int32   // expected payload length; -1 while reading the header
	pfill  int32
}

func (fr *frameReader) init(conn transport.EventConn, sink frameSink) {
	fr.conn = conn
	fr.sink = sink
	fr.need = -1
	fr.run = fr.drain
}

// drain consumes everything buffered on the connection — exactly as
// greedily as a task looping on blocking reads — dispatching each
// complete frame, and either re-arms for the next wake or tears down.
// It runs on the spawning task once at installation and as a kernel
// event callback afterwards, so it must never block.
func (fr *frameReader) drain() {
	for {
		if fr.need < 0 {
			if int(fr.hfill) < len(fr.header) {
				n, err := fr.conn.TryRead(fr.header[fr.hfill:])
				if err != nil {
					if err == io.EOF && fr.hfill > 0 {
						// Mid-header EOF is a truncated frame, as
						// io.ReadFull would report it.
						err = io.ErrUnexpectedEOF
					}
					fr.stop(err)
					return
				}
				if n == 0 {
					fr.conn.OnReadable(fr.run)
					return
				}
				fr.hfill += int32(n)
				continue
			}
			need := binary.BigEndian.Uint32(fr.header[:])
			if need > llenc.MaxMessage {
				fr.stop(llenc.ErrTooLarge)
				return
			}
			fr.need = int32(need)
			fr.pfill = 0
			fr.buf = getFrameBuf(int(fr.need))
		}
		if fr.pfill < fr.need {
			n, err := fr.conn.TryRead((*fr.buf)[fr.pfill:fr.need])
			if err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				fr.stop(err)
				return
			}
			if n == 0 {
				fr.conn.OnReadable(fr.run)
				return
			}
			fr.pfill += int32(n)
			continue
		}
		payload := (*fr.buf)[:fr.need]
		ok := fr.sink.onFrame(payload)
		putFrameBuf(fr.buf)
		fr.buf = nil
		fr.need = -1
		fr.hfill = 0
		if !ok {
			fr.stop(nil)
			return
		}
	}
}

// stop releases mid-frame state and reports the verdict exactly once.
func (fr *frameReader) stop(err error) {
	if fr.buf != nil {
		putFrameBuf(fr.buf)
		fr.buf = nil
	}
	fr.sink.onEnd(err)
}
