package rpc

import (
	"encoding/json"
	"sync"

	"github.com/splaykit/splay/internal/llenc"
)

// Fast-path JSON codec for the RPC envelopes, mirroring ctlproto's: the
// request ({"id","m","a"}) and response ({"id","e","r"}) frames implement
// llenc.FastMarshaler/FastUnmarshaler with hand-rolled encoders and
// decline-don't-guess parsers. The bytes are identical to encoding/json's
// for these structs — field order, omitempty, HTML escaping — which
// TestRPCFastCodecMatchesEncodingJSON and the fuzz targets check
// differentially, so the wire format (and with it every golden-pinned
// experiment) cannot diverge. Anything the fast path cannot reproduce
// exactly falls back to encoding/json.
//
// The decode side is lazy: the server's fast parser captures the
// argument array as one raw byte span without touching its elements;
// Args splits the span only when a handler actually reads an argument,
// and decodes only the elements it is asked for. Raw spans live in
// pooled buffers owned by the server — see the ownership rules on
// Handler and in DESIGN.md ("The message plane").

// appendArg appends one call argument exactly as encoding/json would
// encode it inside the args array. Common scalar types are hand-rolled;
// pre-encoded json.RawMessage arguments are appended verbatim when
// provably canonical; everything else takes a per-element
// encoding/json round trip (still byte-identical: element encoding does
// not depend on position). It reports false only when the element
// cannot be marshaled at all, so the caller's fallback surfaces the
// same error encoding/json would.
func appendArg(b []byte, v any) ([]byte, bool) {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...), true
	case bool:
		if x {
			return append(b, "true"...), true
		}
		return append(b, "false"...), true
	case string:
		if llenc.JSONSafe(x) {
			return llenc.AppendJSONString(b, x), true
		}
	case int:
		return llenc.AppendInt(b, int64(x)), true
	case int64:
		return llenc.AppendInt(b, x), true
	case int32:
		return llenc.AppendInt(b, int64(x)), true
	case uint64:
		return llenc.AppendUint(b, x), true
	case uint:
		return llenc.AppendUint(b, uint64(x)), true
	case json.RawMessage:
		if len(x) > 0 && llenc.JSONVerbatim(x) && llenc.ValidJSON(x) {
			return append(b, x...), true
		}
	}
	enc, err := json.Marshal(v)
	if err != nil {
		return b, false
	}
	return append(b, enc...), true
}

// AppendJSON implements llenc.FastMarshaler for the request envelope.
// On success the appended bytes equal json.Marshal(r); on false buf is
// returned with its original length (trailing capacity may be dirty).
func (r *request) AppendJSON(buf []byte) ([]byte, bool) {
	if !llenc.JSONSafe(r.Method) {
		return buf, false
	}
	b := append(buf, `{"id":`...)
	b = llenc.AppendUint(b, r.ID)
	b = append(b, `,"m":"`...)
	b = append(b, r.Method...)
	b = append(b, '"')
	if len(r.Args) > 0 {
		b = append(b, `,"a":[`...)
		for i, a := range r.Args {
			if i > 0 {
				b = append(b, ',')
			}
			var ok bool
			if b, ok = appendArg(b, a); !ok {
				return buf, false
			}
		}
		b = append(b, ']')
	}
	return append(b, '}'), true
}

// AppendJSON implements llenc.FastMarshaler for the response envelope.
// Result bytes come from json.Marshal on the server, so they are
// canonical already; the verbatim scan only rejects what a raw handler
// payload could smuggle in.
func (r *response) AppendJSON(buf []byte) ([]byte, bool) {
	if !llenc.JSONSafe(r.Err) {
		return buf, false
	}
	b := append(buf, `{"id":`...)
	b = llenc.AppendUint(b, r.ID)
	if r.Err != "" {
		b = append(b, `,"e":"`...)
		b = append(b, r.Err...)
		b = append(b, '"')
	}
	if len(r.Result) > 0 {
		b = append(b, `,"r":`...)
		if llenc.JSONVerbatim(r.Result) {
			b = append(b, r.Result...)
		} else {
			enc, err := json.Marshal(r.Result)
			if err != nil {
				return buf, false
			}
			b = append(b, enc...)
		}
	}
	return append(b, '}'), true
}

// wireRequest is the server-side fast parse of a request frame.
// RawMethod and RawArgs alias the connection's read buffer and are only
// valid until the next frame is read; the serve loop looks the method up
// without converting (the map[string(b)] non-allocating pattern) and
// copies the args into a pooled Args before handing off.
type wireRequest struct {
	ID        uint64
	RawMethod []byte
	RawArgs   []byte // the "a" array, nil when absent
}

// parseRequest is the decline-don't-guess parser for request frames. On
// false the caller falls back to encoding/json. Acceptance is strictly
// narrower than encoding/json's: unknown keys, escaped method names and
// anything json.Valid rejects inside the args array all decline.
func parseRequest(data []byte) (wireRequest, bool) {
	var out wireRequest
	l := llenc.Lexer{Data: data}
	l.SkipWS()
	if !l.Consume('{') {
		return out, false
	}
	l.SkipWS()
	if l.Consume('}') {
		return out, l.End()
	}
	for {
		l.SkipWS()
		key, ok := l.RawString()
		if !ok {
			return out, false
		}
		l.SkipWS()
		if !l.Consume(':') {
			return out, false
		}
		l.SkipWS()
		switch string(key) {
		case "id":
			out.ID, ok = l.Uint()
		case "m":
			out.RawMethod, ok = l.RawString()
		case "a":
			var span []byte
			span, ok = l.Value() // strict: the lazy split must never
			// surface errors the eager path reported at envelope time
			if ok && (len(span) == 0 || span[0] != '[') {
				return out, false
			}
			out.RawArgs = span
		default:
			return out, false
		}
		if !ok {
			return out, false
		}
		l.SkipWS()
		if l.Consume(',') {
			continue
		}
		return out, l.Consume('}') && l.End()
	}
}

// parseJSON is the client-side fast parse of a response frame into r.
// The result span is copied into a fresh allocation because it outlives
// the read buffer (it is handed to the application as Result). On false
// r may be partially written; the caller resets it before falling back.
func (r *response) parseJSON(data []byte) bool {
	l := llenc.Lexer{Data: data}
	l.SkipWS()
	if !l.Consume('{') {
		return false
	}
	l.SkipWS()
	if l.Consume('}') {
		return l.End()
	}
	for {
		l.SkipWS()
		key, ok := l.RawString()
		if !ok {
			return false
		}
		l.SkipWS()
		if !l.Consume(':') {
			return false
		}
		l.SkipWS()
		switch string(key) {
		case "id":
			r.ID, ok = l.Uint()
		case "e":
			r.Err, ok = l.String()
		case "r":
			var span []byte
			span, ok = l.Value()
			r.Result = append(json.RawMessage(nil), span...)
		default:
			return false
		}
		if !ok {
			return false
		}
		l.SkipWS()
		if l.Consume(',') {
			continue
		}
		return l.Consume('}') && l.End()
	}
}

// argList is the pooled backing store of Args: the raw argument array
// (server-owned copy of the wire bytes) and its lazily split elements.
type argList struct {
	raw   []byte            // the JSON array; nil when built from pre-split elements
	elems []json.RawMessage // split elements, aliasing raw (or eager fallback copies)
	split bool
}

var argPool = sync.Pool{New: func() any { return new(argList) }}

// newArgsRaw copies the wire bytes of the argument array into a pooled
// buffer and defers all element work until a handler asks.
func newArgsRaw(raw []byte) Args {
	if len(raw) == 0 {
		return Args{}
	}
	l := argPool.Get().(*argList)
	l.raw = append(l.raw[:0], raw...)
	l.elems = l.elems[:0]
	l.split = false
	return Args{l: l}
}

// newArgsSplit wraps already-split elements (the encoding/json fallback
// path) in the same pooled shape.
func newArgsSplit(elems []json.RawMessage) Args {
	l := argPool.Get().(*argList)
	l.raw = l.raw[:0]
	l.elems = elems
	l.split = true
	return Args{l: l}
}

// release recycles the backing store. The serve loop calls it after the
// handler has returned and its result has been marshaled; the Args (and
// any raw element bytes obtained from it) are invalid afterwards.
func (a Args) release() {
	if a.l == nil {
		return
	}
	for i := range a.l.elems {
		a.l.elems[i] = nil
	}
	argPool.Put(a.l)
}

// ensureSplit materializes the element spans. The raw bytes were
// validated with json.Valid at parse time, so the structural scan
// cannot fail; the encoding/json fallback covers the impossible case
// anyway rather than guessing.
func (l *argList) ensureSplit() {
	if l.split {
		return
	}
	l.split = true
	lex := llenc.Lexer{Data: l.raw}
	if !lex.Consume('[') {
		l.fallbackSplit()
		return
	}
	lex.SkipWS()
	if lex.Consume(']') {
		if !lex.End() {
			l.fallbackSplit()
		}
		return
	}
	for {
		span, ok := lex.SkipValue()
		if !ok {
			l.fallbackSplit()
			return
		}
		l.elems = append(l.elems, json.RawMessage(span))
		lex.SkipWS()
		if lex.Consume(',') {
			continue
		}
		if lex.Consume(']') && lex.End() {
			return
		}
		l.fallbackSplit()
		return
	}
}

func (l *argList) fallbackSplit() {
	l.elems = l.elems[:0]
	var elems []json.RawMessage
	if err := json.Unmarshal(l.raw, &elems); err == nil {
		l.elems = elems
	}
}
