// Package transport defines the network abstraction shared by all SPLAY
// runtimes. Protocol code is written once against these interfaces; the
// simulated network (internal/simnet) implements them on top of the
// discrete-event kernel, and the live network (internal/livenet) implements
// them on top of the standard net package.
//
// The surface deliberately mirrors a small subset of net: stream
// connections with deadlines, listeners, and unreliable datagrams. SPLAY's
// sandboxed socket library (internal/sandbox) wraps these interfaces to
// enforce the restrictions the paper describes (socket counts, bandwidth
// caps, blacklists, forced losses).
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"
)

// Addr identifies a network endpoint: a host name plus a port. In the
// simulated network hosts are named "n0", "n1", …; in the live network the
// host is an IP address or DNS name.
type Addr struct {
	Host string `json:"host"`
	Port int    `json:"port"`
}

// String renders the address as host:port, bracketing IPv6 hosts
// ("[::1]:5555") so the result round-trips through ParseAddr and the
// standard dialers.
func (a Addr) String() string { return net.JoinHostPort(a.Host, strconv.Itoa(a.Port)) }

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.Host == "" && a.Port == 0 }

// ParseAddr parses "host:port" with net.SplitHostPort's bracket
// semantics: IPv6 hosts must be bracketed ("[::1]:5555" parses to host
// "::1"); an unbracketed "::1:5555" is rejected rather than mis-split at
// the last colon.
func ParseAddr(s string) (Addr, error) {
	host, portStr, err := net.SplitHostPort(s)
	if err != nil {
		return Addr{}, fmt.Errorf("transport: address %q: %w", s, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 || port > 65535 {
		return Addr{}, fmt.Errorf("transport: address %q has invalid port", s)
	}
	return Addr{Host: host, Port: port}, nil
}

// Common transport errors. They satisfy errors.Is against themselves and
// carry net.Error-style Timeout information where relevant.
var (
	// ErrClosed is returned by operations on closed sockets or listeners.
	ErrClosed = errors.New("transport: use of closed connection")
	// ErrRefused is returned by Dial when nothing listens on the target.
	ErrRefused = errors.New("transport: connection refused")
	// ErrTimeout is returned when a deadline or dial timeout expires.
	ErrTimeout = timeoutError{}
	// ErrBlacklisted is returned by sandboxed sockets for forbidden peers.
	ErrBlacklisted = errors.New("transport: address blacklisted")
	// ErrLimit is returned when a sandbox resource limit is exceeded.
	ErrLimit = errors.New("transport: resource limit exceeded")
)

type timeoutError struct{}

func (timeoutError) Error() string { return "transport: i/o timeout" }

// Timeout marks the error as a timeout, matching the net.Error convention.
func (timeoutError) Timeout() bool { return true }

// Temporary marks the error as retryable, matching the net.Error convention.
func (timeoutError) Temporary() bool { return true }

// Conn is a reliable, ordered byte stream between two endpoints.
type Conn interface {
	io.ReadWriteCloser
	// LocalAddr returns the local endpoint of the connection.
	LocalAddr() Addr
	// RemoteAddr returns the remote endpoint of the connection.
	RemoteAddr() Addr
	// SetReadDeadline sets the absolute deadline for future Read calls.
	// A zero time clears the deadline.
	SetReadDeadline(t time.Time) error
}

// EventConn is an optional Conn extension for event-driven readers.
// Instead of parking a task inside Read, a reader drains buffered data
// with TryRead and arms a one-shot OnReadable callback when it runs dry;
// the transport invokes the callback (on its scheduler) when data, EOF,
// or an error next arrives. The simulated network implements it so that
// an idle connection costs no parked goroutine; the wake-up consumes
// exactly one scheduler event either way, which keeps event-driven and
// task-based readers schedule-identical in simulation.
//
// TryRead never blocks: it returns (0, nil) when nothing is buffered.
// OnReadable must only be armed while no Read is outstanding, and the
// callback must not block (it may hand off to a task).
type EventConn interface {
	Conn
	TryRead(p []byte) (int, error)
	OnReadable(cb func())
}

// EventListener is the accept-side analogue of EventConn: TryAccept
// returns (nil, nil) when no connection is queued, and OnAcceptable arms
// a one-shot callback for the next arrival (or listener close).
type EventListener interface {
	Listener
	TryAccept() (Conn, error)
	OnAcceptable(cb func())
}

// Listener accepts incoming stream connections.
type Listener interface {
	// Accept blocks until a connection arrives or the listener is closed.
	Accept() (Conn, error)
	// Close releases the port. Blocked Accept calls return ErrClosed.
	Close() error
	// Addr returns the bound address.
	Addr() Addr
}

// PacketConn sends and receives unreliable datagrams.
type PacketConn interface {
	// ReadFrom blocks for the next datagram and reports its sender.
	ReadFrom(p []byte) (int, Addr, error)
	// WriteTo sends one datagram. Delivery is not guaranteed.
	WriteTo(p []byte, to Addr) (int, error)
	// Close releases the port.
	Close() error
	// SetReadDeadline sets the absolute deadline for future ReadFrom calls.
	SetReadDeadline(t time.Time) error
	// Addr returns the bound address.
	Addr() Addr
}

// Node is one host's view of the network: the factory for its sockets.
type Node interface {
	// Host returns the node's host name (the Host part of its addresses).
	Host() string
	// Listen binds a stream listener on the given port. Port 0 picks a free
	// port.
	Listen(port int) (Listener, error)
	// Dial opens a stream connection to the remote address, failing after
	// timeout (0 means a runtime-specific default).
	Dial(to Addr, timeout time.Duration) (Conn, error)
	// ListenPacket binds a datagram socket on the given port. Port 0 picks
	// a free port.
	ListenPacket(port int) (PacketConn, error)
}
