package transport

import "testing"

func TestAddrStringBracketsIPv6(t *testing.T) {
	cases := []struct {
		addr Addr
		want string
	}{
		{Addr{Host: "n3", Port: 5555}, "n3:5555"},
		{Addr{Host: "10.0.0.1", Port: 80}, "10.0.0.1:80"},
		{Addr{Host: "::1", Port: 5555}, "[::1]:5555"},
		{Addr{Host: "2001:db8::42", Port: 8080}, "[2001:db8::42]:8080"},
		{Addr{Host: "", Port: 5555}, ":5555"},
	}
	for _, c := range cases {
		if got := c.addr.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.addr, got, c.want)
		}
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	for _, a := range []Addr{
		{Host: "n3", Port: 5555},
		{Host: "10.0.0.1", Port: 80},
		{Host: "::1", Port: 5555},
		{Host: "2001:db8::42", Port: 65535},
		{Host: "fe80::1", Port: 1},
	} {
		back, err := ParseAddr(a.String())
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", a.String(), err)
			continue
		}
		if back != a {
			t.Errorf("round trip %q: got %+v, want %+v", a.String(), back, a)
		}
	}
}

func TestParseAddrRejects(t *testing.T) {
	for _, s := range []string{
		"",            // empty
		"host",        // no port
		"host:",       // empty port
		"host:x",      // non-numeric port
		"host:70000",  // out of range
		"host:-1",     // negative
		"::1:5555",    // unbracketed IPv6 must not be mis-split
		"[::1]:x",     // bracketed, bad port
		"a:b:c:5555",  // ambiguous colons
		"[::1]",       // brackets, no port
		"[::1]:70000", // bracketed, out of range
	} {
		if a, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) = %+v, want error", s, a)
		}
	}
}
