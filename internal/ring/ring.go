// Package ring provides identifier-space arithmetic for ring-structured
// overlays: the paper's misc.between_c and friends, used by Chord and
// Pastry. Identifiers live in [0, 2^m) for a configurable m ≤ 64.
package ring

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Space is an identifier space of size 2^Bits.
type Space struct {
	Bits uint
}

// NewSpace returns a space with m-bit identifiers. The paper's Chord uses
// m = 24 (§4, Listing 3); Pastry-style overlays use larger spaces.
func NewSpace(bits uint) Space {
	if bits == 0 || bits > 64 {
		panic(fmt.Sprintf("ring: invalid bits %d", bits))
	}
	return Space{Bits: bits}
}

// Size returns 2^m as a modulus mask helper; for m=64 it wraps to 0 and
// Mask must be used instead.
func (s Space) Mask() uint64 {
	if s.Bits == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << s.Bits) - 1
}

// Fold reduces x into the identifier space.
func (s Space) Fold(x uint64) uint64 { return x & s.Mask() }

// Add returns (a + d) mod 2^m.
func (s Space) Add(a, d uint64) uint64 { return (a + d) & s.Mask() }

// Sub returns (a - b) mod 2^m: the counter-clockwise distance from b to a.
func (s Space) Sub(a, b uint64) uint64 { return (a - b) & s.Mask() }

// Dist returns the clockwise distance from a to b.
func (s Space) Dist(a, b uint64) uint64 { return s.Sub(b, a) }

// Between reports whether x lies in the circular interval from a to b,
// with configurable bound inclusion — the paper's between(x, a, b, inclA,
// inclB). With a == b the interval is the whole ring (exclusive of the
// bounds unless included).
func (s Space) Between(x, a, b uint64, inclA, inclB bool) bool {
	x, a, b = s.Fold(x), s.Fold(a), s.Fold(b)
	if x == a {
		return inclA
	}
	if x == b {
		return inclB
	}
	if a == b {
		return true // full circle, x differs from both bounds
	}
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// HashString maps a string (typically "ip:port") into the space, the way
// Chord derives node identifiers.
func (s Space) HashString(v string) uint64 {
	sum := sha1.Sum([]byte(v))
	return s.Fold(binary.BigEndian.Uint64(sum[:8]))
}

// FingerStart returns n + 2^(i-1) mod 2^m, the start of finger i (1-based,
// matching the paper's fix_fingers).
func (s Space) FingerStart(n uint64, i uint) uint64 {
	return s.Add(n, uint64(1)<<(i-1))
}
