package ring

import (
	"testing"
	"testing/quick"
)

func TestBetweenBasics(t *testing.T) {
	s := NewSpace(8) // ids 0..255
	cases := []struct {
		x, a, b      uint64
		inclA, inclB bool
		want         bool
	}{
		{5, 0, 10, false, false, true},
		{0, 0, 10, false, false, false},
		{0, 0, 10, true, false, true},
		{10, 0, 10, false, true, true},
		{10, 0, 10, false, false, false},
		{250, 200, 10, false, false, true}, // wraps
		{5, 200, 10, false, false, true},   // wraps
		{100, 200, 10, false, false, false},
		{42, 42, 42, false, false, false}, // degenerate, x == bounds
		{43, 42, 42, false, false, true},  // full circle
	}
	for _, c := range cases {
		if got := s.Between(c.x, c.a, c.b, c.inclA, c.inclB); got != c.want {
			t.Errorf("Between(%d, %d, %d, %v, %v) = %v, want %v",
				c.x, c.a, c.b, c.inclA, c.inclB, got, c.want)
		}
	}
}

func TestAddSubDist(t *testing.T) {
	s := NewSpace(8)
	if s.Add(250, 10) != 4 {
		t.Errorf("Add wrap: %d", s.Add(250, 10))
	}
	if s.Sub(4, 250) != 10 {
		t.Errorf("Sub wrap: %d", s.Sub(4, 250))
	}
	if s.Dist(250, 4) != 10 {
		t.Errorf("Dist wrap: %d", s.Dist(250, 4))
	}
	if s.Dist(4, 250) != 246 {
		t.Errorf("Dist: %d", s.Dist(4, 250))
	}
}

func TestFingerStart(t *testing.T) {
	s := NewSpace(24)
	if s.FingerStart(0, 1) != 1 {
		t.Errorf("finger 1 start = %d", s.FingerStart(0, 1))
	}
	if s.FingerStart(0, 24) != 1<<23 {
		t.Errorf("finger 24 start = %d", s.FingerStart(0, 24))
	}
	if s.FingerStart(s.Mask(), 1) != 0 {
		t.Errorf("finger wrap = %d", s.FingerStart(s.Mask(), 1))
	}
}

func TestHashStringInSpace(t *testing.T) {
	s := NewSpace(24)
	for _, v := range []string{"n0:8000", "n1:8000", "x"} {
		if h := s.HashString(v); h > s.Mask() {
			t.Errorf("hash %d out of space", h)
		}
	}
	if s.HashString("a") == s.HashString("b") {
		t.Error("suspicious hash collision")
	}
}

// Property: exactly one of "x in (a,b)" and "x in (b,a)" holds for
// distinct x, a, b (circular trichotomy).
func TestQuickBetweenPartition(t *testing.T) {
	s := NewSpace(16)
	f := func(x, a, b uint16) bool {
		X, A, B := uint64(x), uint64(a), uint64(b)
		if X == A || X == B || A == B {
			return true
		}
		in1 := s.Between(X, A, B, false, false)
		in2 := s.Between(X, B, A, false, false)
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dist(a,b) + Dist(b,a) == 2^m for a != b, and Between respects
// distance ordering.
func TestQuickDistance(t *testing.T) {
	s := NewSpace(16)
	f := func(a, b uint16) bool {
		A, B := uint64(a), uint64(b)
		if A == B {
			return s.Dist(A, B) == 0
		}
		return s.Dist(A, B)+s.Dist(B, A) == uint64(1)<<16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Between(x,a,b) implies Dist(a,x) < Dist(a,b) for exclusive
// bounds.
func TestQuickBetweenDistanceConsistency(t *testing.T) {
	s := NewSpace(16)
	f := func(x, a, b uint16) bool {
		X, A, B := uint64(x), uint64(a), uint64(b)
		if X == A || X == B || A == B {
			return true
		}
		if s.Between(X, A, B, false, false) {
			return s.Dist(A, X) < s.Dist(A, B)
		}
		return s.Dist(A, X) > s.Dist(A, B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
