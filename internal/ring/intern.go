// Node-reference interning for the memory plane. A routing table holds
// the same few thousand peer references thousands of times over: every
// finger table, successor list and predecessor slot repeats values drawn
// from one membership. Storing each occurrence as a full reference
// (identifier plus address) costs tens of bytes; storing a dense uint32
// handle into a shared table costs four. At a million instances that
// difference is the gap between fitting in RAM and swapping — the fig8
// wall the paper measures.
//
// Interning is split in two levels so partitioned simulations can share
// safely without locks:
//
//   - Base is an immutable first-seen table built once, before the run,
//     from the known population. It is read-only and therefore shared by
//     every partition.
//   - Interner is the per-partition view: lookups hit the shared Base
//     first and fall back to a small private overlay for values first
//     seen at runtime (churn joins, references from outside the base).
//
// Handles are deterministic: a value's handle is its first-seen position
// (base order for preloaded values, overlay arrival order otherwise), so
// identical seeds produce identical handles — a property the golden
// suite leans on and intern_test pins.
package ring

import "unsafe"

// Handle names an interned value. The zero Handle always resolves to the
// zero value of T, mirroring "unset" routing entries.
type Handle uint32

// Base is an immutable intern table shared read-only across partitions.
// Build it once from the known membership before the run starts.
type Base[T comparable] struct {
	byVal map[T]Handle
	vals  []T // vals[0] is the zero value, matching Handle 0
}

// NewBase interns vals in order, skipping duplicates and zero values.
func NewBase[T comparable](vals []T) *Base[T] {
	var zero T
	b := &Base[T]{
		byVal: make(map[T]Handle, len(vals)),
		vals:  make([]T, 1, len(vals)+1),
	}
	for _, v := range vals {
		if v == zero {
			continue
		}
		if _, ok := b.byVal[v]; ok {
			continue
		}
		b.vals = append(b.vals, v)
		b.byVal[v] = Handle(len(b.vals) - 1)
	}
	return b
}

// Len returns the number of interned values (the zero value excluded).
func (b *Base[T]) Len() int {
	if b == nil {
		return 0
	}
	return len(b.vals) - 1
}

// Bytes approximates the table's heap footprint for memory accounting.
func (b *Base[T]) Bytes() uint64 {
	if b == nil {
		return 0
	}
	return tableBytes[T](len(b.vals), cap(b.vals))
}

// Interner resolves values to dense handles: reads hit the shared
// immutable base, values outside it land in a private overlay. One
// Interner belongs to one partition and must not be shared across
// concurrently-running partitions.
type Interner[T comparable] struct {
	base  *Base[T]
	byVal map[T]Handle // overlay; allocated on first miss
	vals  []T          // overlay values; vals[i] has handle baseLen+1+i
}

// NewInterner returns an interner over base (which may be nil).
func NewInterner[T comparable](base *Base[T]) *Interner[T] {
	return &Interner[T]{base: base}
}

// Put interns v and returns its handle, assigning a new one on first
// sight. The zero value always maps to Handle 0.
func (in *Interner[T]) Put(v T) Handle {
	var zero T
	if v == zero {
		return 0
	}
	if in.base != nil {
		if h, ok := in.base.byVal[v]; ok {
			return h
		}
	}
	if h, ok := in.byVal[v]; ok {
		return h
	}
	if in.byVal == nil {
		in.byVal = make(map[T]Handle)
	}
	in.vals = append(in.vals, v)
	h := Handle(in.base.Len() + len(in.vals))
	in.byVal[v] = h
	return h
}

// Get resolves a handle back to its value. Handle 0 is the zero value.
func (in *Interner[T]) Get(h Handle) T {
	if h == 0 {
		var zero T
		return zero
	}
	if base := in.base.Len(); int(h) <= base {
		return in.base.vals[h]
	} else {
		return in.vals[int(h)-base-1]
	}
}

// Len returns the number of distinct values reachable through the
// interner (base plus overlay, the zero value excluded).
func (in *Interner[T]) Len() int { return in.base.Len() + len(in.vals) }

// Bytes approximates the overlay's heap footprint (the shared base is
// accounted once by its owner, not per partition).
func (in *Interner[T]) Bytes() uint64 {
	if in == nil {
		return 0
	}
	return tableBytes[T](len(in.byVal), cap(in.vals))
}

// tableBytes estimates a map[T]Handle of n entries plus a []T of the
// given capacity: map buckets average ~2x the entry payload once
// per-bucket overhead and load factor are folded in.
func tableBytes[T comparable](n, valCap int) uint64 {
	var zero T
	sz := uint64(unsafe.Sizeof(zero))
	return uint64(n)*(2*(sz+4)+16) + uint64(valCap)*sz
}
