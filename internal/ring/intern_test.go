package ring

import (
	"math/rand"
	"testing"
)

// TestInternHandlesDeterministic pins the property the golden suite
// leans on: a value's handle is its first-seen position, so identical
// seeds produce identical handles — across independent interners and
// regardless of which partition's overlay a runtime value lands in.
func TestInternHandlesDeterministic(t *testing.T) {
	draw := func(seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]uint64, 4096)
		for i := range vals {
			vals[i] = rng.Uint64()%512 + 1 // dense: plenty of repeats
		}
		return vals
	}
	intern := func(seed int64) []Handle {
		vals := draw(seed)
		base := NewBase(vals[:1024])
		in := NewInterner(base)
		out := make([]Handle, len(vals))
		for i, v := range vals {
			out[i] = in.Put(v)
		}
		return out
	}
	a, b := intern(7), intern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("handle %d drifted between identically-seeded interners: %d vs %d", i, a[i], b[i])
		}
	}
	c := intern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical handle sequences (test is vacuous)")
	}
}

// TestInternBaseOverlay covers the two-level resolution contract: base
// values keep their build-time handles, runtime values get overlay
// handles past the base, zero always maps to Handle 0, and every handle
// round-trips through Get.
func TestInternBaseOverlay(t *testing.T) {
	base := NewBase([]uint64{10, 20, 0, 10, 30}) // zero and dup skipped
	if base.Len() != 3 {
		t.Fatalf("base Len = %d, want 3", base.Len())
	}
	in := NewInterner(base)
	if h := in.Put(0); h != 0 {
		t.Errorf("zero value interned to handle %d, want 0", h)
	}
	if h := in.Put(20); h != 2 {
		t.Errorf("base value 20 resolved to handle %d, want its build position 2", h)
	}
	h40 := in.Put(40)
	if int(h40) != base.Len()+1 {
		t.Errorf("first overlay handle = %d, want %d", h40, base.Len()+1)
	}
	if h := in.Put(40); h != h40 {
		t.Errorf("re-interning overlay value changed its handle: %d vs %d", h, h40)
	}
	for _, v := range []uint64{10, 20, 30, 40} {
		if got := in.Get(in.Put(v)); got != v {
			t.Errorf("Get(Put(%d)) = %d", v, got)
		}
	}
	if got := in.Get(0); got != 0 {
		t.Errorf("Get(0) = %d, want the zero value", got)
	}
	if in.Len() != 4 {
		t.Errorf("Len = %d, want 4", in.Len())
	}
}
