// Package chord implements the Chord DHT exactly as developed in §4 of the
// paper: the base protocol (Listings 1–3), the fault-tolerant extension
// (rpc.a_call with suspicion, successor/predecessor lists — Listing 4 and
// the surrounding discussion), and the latency-aware finger selection used
// as the "MIT Chord" comparison baseline in §5.2.
//
// The implementation deliberately follows the paper's structure: join,
// stabilize, notify, fix_fingers and check_predecessor map one-to-one onto
// the published pseudo-code, scheduled with the runtime's periodic events.
package chord

import (
	"errors"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/ring"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// Instruments is the protocol's optional metric set for the
// observability plane: live counterparts of Stats plus route-length
// and latency distributions. The zero value disables everything;
// increments are pure memory operations, so attaching instruments
// never perturbs simulation schedules (the fig6/lookup10k goldens run
// uninstrumented and stay bit-identical).
type Instruments struct {
	Lookups       *metrics.Counter
	FailedLookups *metrics.Counter
	Forwarded     *metrics.Counter
	Retries       *metrics.Counter   // fault-tolerant re-routes after a failed hop
	Hops          *metrics.Histogram // route length, linear buckets
	Latency       *metrics.Histogram // lookup wall time, pow2 ns buckets
}

// NewInstruments registers the protocol's canonical series on reg
// ("chord." prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		Lookups:       reg.Counter("chord.lookups"),
		FailedLookups: reg.Counter("chord.failed_lookups"),
		Forwarded:     reg.Counter("chord.forwarded"),
		Retries:       reg.Counter("chord.retries"),
		Hops:          reg.Histogram("chord.hops", metrics.KindHistLinear),
		Latency:       reg.Histogram("chord.lookup_latency_ns", metrics.KindHistPow2),
	}
}

// Config parameterizes a Chord node.
type Config struct {
	// Bits is m: identifiers live in [0, 2^m). The paper uses m = 24.
	// Values above 52 are rejected (identifiers travel as JSON numbers).
	Bits uint
	// ID fixes the node identifier; when nil the identifier is the hash
	// of the node's address (hashing IP and port, as in the paper).
	ID *uint64
	// StabilizeEvery is the period of stabilize/fix_fingers/
	// check_predecessor (the paper's timeout = 5s).
	StabilizeEvery time.Duration
	// RPCTimeout bounds every remote call. The fault-tolerant PlanetLab
	// deployment shortens it to one minute (Listing 4).
	RPCTimeout time.Duration
	// FaultTolerant enables the §4 extensions: suspicion on failed RPCs
	// and successor lists (the leafset-like structure).
	FaultTolerant bool
	// SuccListLen is the successor-list length (4 in the paper).
	SuccListLen int
	// LatencyAware enables MIT-Chord-style proximity finger selection:
	// among the candidates owning a finger interval, pick the one with
	// the lowest measured RTT.
	LatencyAware bool
	// Candidates bounds how many candidates latency-aware selection
	// probes per finger.
	Candidates int
	// Shared, when set, is the per-partition memory plane this node
	// stores its routing state in (see Shared). All nodes sharing one
	// must live on the same partition. Nil gets a private instance.
	Shared *Shared
}

// DefaultConfig mirrors §4: m=24, 5 s stabilization, 2 min RPC timeout.
func DefaultConfig() Config {
	return Config{
		Bits:           24,
		StabilizeEvery: 5 * time.Second,
		RPCTimeout:     rpc.DefaultTimeout,
		SuccListLen:    4,
		Candidates:     4,
	}
}

// FaultTolerantConfig is the PlanetLab variant: shorter RPC timeout,
// successor lists, suspicion.
func FaultTolerantConfig() Config {
	c := DefaultConfig()
	c.FaultTolerant = true
	c.RPCTimeout = time.Minute
	c.StabilizeEvery = 5 * time.Second
	return c
}

// NodeRef names a Chord node: its ring identifier and address.
type NodeRef struct {
	ID   uint64         `json:"id"`
	Addr transport.Addr `json:"addr"`
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.Addr.IsZero() }

func (r NodeRef) String() string { return fmt.Sprintf("%d@%s", r.ID, r.Addr) }

// ErrLookupFailed is returned when a lookup cannot make progress (all
// routes toward the key failed).
var ErrLookupFailed = errors.New("chord: lookup failed")

// LookupResult reports a resolved key.
type LookupResult struct {
	Node NodeRef       // the key's successor
	Hops int           // route length (nodes traversed after the source)
	RTT  time.Duration // wall-clock lookup latency
}

// Stats counts per-node protocol activity.
type Stats struct {
	Lookups       uint64
	FailedLookups uint64
	Forwarded     uint64 // find_successor requests forwarded
	Suspected     uint64 // peers pruned after failed RPCs
	StabilizeRuns uint64
	FingersFixed  uint64
}

// Node is one Chord instance.
type Node struct {
	ctx   *core.AppContext
	cfg   *Config // normalized and interned in shared: one copy per deployment
	space ring.Space

	self  NodeRef
	hself ring.Handle // n.self interned, the handle hot paths compare
	pred  NodeRef     // zero when unknown

	// Routing state is stored as intern handles into shared.refs, not
	// references: 4 bytes per entry instead of ~32, with the finger
	// array carved from the partition's slab. See DESIGN.md ("The
	// memory plane").
	shared *Shared
	finger []ring.Handle // 1-based: finger[1] is the successor
	succs  []ring.Handle // successor list (fault-tolerant mode)

	server *rpc.Server
	client *rpc.Client

	selfArg any // n.self pre-encoded once for notify/join calls

	refresh uint // next finger to refresh (paper's refresh variable)
	stats   Stats
	ins     Instruments
	rpcIns  *rpc.Instruments // nil when uninstrumented (the common case at scale)
	stops   []func()
}

// New creates a node bound to ctx. The node's address is ctx.Job.Me.
func New(ctx *core.AppContext, cfg Config) (*Node, error) {
	if cfg.Bits == 0 || cfg.Bits > 52 {
		return nil, fmt.Errorf("chord: bits must be in [1,52], got %d", cfg.Bits)
	}
	if cfg.StabilizeEvery <= 0 {
		cfg.StabilizeEvery = 5 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = rpc.DefaultTimeout
	}
	if cfg.SuccListLen <= 0 {
		cfg.SuccListLen = 4
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 4
	}
	space := ring.NewSpace(cfg.Bits)
	id := space.HashString(ctx.Job.Me.String())
	if cfg.ID != nil {
		id = space.Fold(*cfg.ID)
	}
	shared := cfg.Shared
	if shared == nil {
		shared = NewShared(nil)
	}
	n := &Node{
		ctx:    ctx,
		cfg:    shared.internConfig(cfg),
		space:  space,
		self:   NodeRef{ID: id, Addr: ctx.Job.Me},
		shared: shared,
		finger: shared.fingers(int(cfg.Bits) + 1),
	}
	// The node's own reference travels in every notify and join; encode
	// it once and hand the canonical bytes to each call.
	n.selfArg = rpc.PreEncode(n.self)
	n.hself = shared.refs.Put(n.self)
	n.finger[1] = n.hself // a fresh node is its own successor
	n.client = rpc.NewClient(ctx)
	n.client.Timeout = cfg.RPCTimeout
	return n, nil
}

// intern resolves a reference to its handle in the node's shared table.
func (n *Node) intern(r NodeRef) ring.Handle { return n.shared.refs.Put(r) }

// ref resolves a handle back to the reference it names.
func (n *Node) ref(h ring.Handle) NodeRef { return n.shared.refs.Get(h) }

// Self returns the node's reference.
func (n *Node) Self() NodeRef { return n.self }

// Successor returns the current successor.
func (n *Node) Successor() NodeRef { return n.ref(n.finger[1]) }

// Predecessor returns the current predecessor (zero when unknown).
func (n *Node) Predecessor() NodeRef { return n.pred }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// SetInstruments attaches instruments to the node.
func (n *Node) SetInstruments(ins Instruments) { n.ins = ins }

// SetRPCInstruments attaches instruments to the node's message plane:
// the RPC client immediately and the server when Start runs.
func (n *Node) SetRPCInstruments(ins rpc.Instruments) {
	n.rpcIns = &ins
	n.client.SetInstruments(ins)
	if n.server != nil {
		n.server.SetInstruments(ins)
	}
}

// Start registers the RPC handlers and serves on the node's port
// (Listing 3: rpc.server(n.port)).
func (n *Node) Start() error {
	s := rpc.NewServer(n.ctx)
	if n.rpcIns != nil {
		s.SetInstruments(*n.rpcIns)
	}
	s.Register("find_successor", n.handleFindSuccessor)
	s.Register("predecessor", n.handlePredecessor)
	s.Register("notify", n.handleNotify)
	s.Register("successors", n.handleSuccessors)
	if err := s.Start(n.ctx.Job.Me.Port); err != nil {
		return err
	}
	n.server = s
	return nil
}

// StartMaintenance launches the periodic stabilization tasks (Listing 3).
func (n *Node) StartMaintenance() {
	n.stops = append(n.stops,
		n.ctx.Periodic(n.cfg.StabilizeEvery, n.Stabilize),
		n.ctx.Periodic(n.cfg.StabilizeEvery, n.CheckPredecessor),
		n.ctx.Periodic(n.cfg.StabilizeEvery, n.FixFingers),
	)
}

// Stop halts maintenance and the RPC server.
func (n *Node) Stop() {
	for _, stop := range n.stops {
		stop()
	}
	n.stops = nil
	if n.server != nil {
		n.server.Close()
	}
}

// Join joins the ring known to seed (Listing 1, join): only the successor
// is set; predecessors converge through stabilization.
func (n *Node) Join(seed transport.Addr) error {
	n.pred = NodeRef{}
	res, err := n.client.Call(seed, "find_successor", n.self.ID, 0)
	if err != nil {
		return fmt.Errorf("chord: join via %s: %w", seed, err)
	}
	var fr findResult
	if err := res.Decode(&fr); err != nil {
		return fmt.Errorf("chord: join: %w", err)
	}
	n.setSuccessor(fr.Node)
	n.client.Call(n.Successor().Addr, "notify", n.selfArg) //nolint:errcheck // stabilization repairs
	return nil
}

func (n *Node) setSuccessor(s NodeRef) {
	h := n.intern(s)
	n.finger[1] = h
	if n.cfg.FaultTolerant {
		// Keep the list's head coherent with the successor. Handle
		// equality is reference equality: the interner is bijective.
		if len(n.succs) == 0 || n.succs[0] != h {
			n.succs = append([]ring.Handle{h}, n.succs...)
			if len(n.succs) > n.cfg.SuccListLen {
				n.succs = n.succs[:n.cfg.SuccListLen]
			}
		}
	}
}

// Stabilize is the paper's stabilize(): verify our successor's
// predecessor and notify the successor.
func (n *Node) Stabilize() {
	n.stats.StabilizeRuns++
	succ := n.ref(n.finger[1])
	if succ.Addr == n.self.Addr {
		return
	}
	res, err := n.client.Call(succ.Addr, "predecessor")
	if err != nil {
		n.suspect(succ)
		return
	}
	var x NodeRef
	if derr := res.Decode(&x); derr == nil && !x.IsZero() &&
		n.space.Between(x.ID, n.self.ID, succ.ID, false, false) {
		n.setSuccessor(x) // new successor
	}
	n.client.Call(n.Successor().Addr, "notify", n.selfArg) //nolint:errcheck
	if n.cfg.FaultTolerant {
		n.refreshSuccList()
	}
}

// refreshSuccList pulls the successor's successor list, the §4 leafset
// extension.
func (n *Node) refreshSuccList() {
	succ := n.ref(n.finger[1])
	res, err := n.client.Call(succ.Addr, "successors")
	if err != nil {
		n.suspect(succ)
		return
	}
	var list []NodeRef
	if err := res.Decode(&list); err != nil {
		return
	}
	merged := n.succs[:0]
	merged = append(merged, n.finger[1])
	for _, r := range list {
		if r.Addr != n.self.Addr && len(merged) < n.cfg.SuccListLen {
			merged = append(merged, n.intern(r))
		}
	}
	n.succs = merged
}

// CheckPredecessor is the paper's check_predecessor(): ping and clear on
// failure (Listing 1, lines 25–29).
func (n *Node) CheckPredecessor() {
	pred := n.pred
	if pred.IsZero() {
		return
	}
	if _, err := n.client.Ping(pred.Addr, n.cfg.RPCTimeout); err != nil {
		// Re-check: notify may have installed a fresh predecessor while
		// we were blocked in ping — the §4 race discussion.
		if n.pred == pred {
			n.pred = NodeRef{}
		}
	}
}

// FixFingers refreshes one finger per run (Listing 1, fix_fingers).
func (n *Node) FixFingers() {
	n.refresh = (n.refresh % n.cfg.Bits) + 1
	start := n.space.FingerStart(n.self.ID, n.refresh)
	res, err := n.findSuccessor(start, 0)
	if err != nil {
		return
	}
	target := res.Node
	if n.cfg.LatencyAware && n.refresh > 1 {
		target = n.pickNearFinger(n.refresh, target)
	}
	n.stats.FingersFixed++
	if n.refresh == 1 {
		n.setSuccessor(target)
	} else {
		n.finger[n.refresh] = n.intern(target)
	}
}

// pickNearFinger implements proximity finger selection: any node whose
// identifier falls inside finger i's interval is a valid entry, so probe a
// few candidates (the found node and its successors within the interval)
// and keep the lowest-RTT one. This is the optimization the paper credits
// for MIT Chord's lower lookup delays.
func (n *Node) pickNearFinger(i uint, found NodeRef) NodeRef {
	lo := n.space.FingerStart(n.self.ID, i)
	var hi uint64
	if i == n.cfg.Bits {
		hi = n.self.ID
	} else {
		hi = n.space.FingerStart(n.self.ID, i+1)
	}
	candidates := []NodeRef{found}
	res, err := n.client.Call(found.Addr, "successors")
	if err == nil {
		var list []NodeRef
		if res.Decode(&list) == nil {
			for _, r := range list {
				if n.space.Between(r.ID, lo, hi, true, false) {
					candidates = append(candidates, r)
				}
			}
		}
	}
	if len(candidates) > n.cfg.Candidates {
		candidates = candidates[:n.cfg.Candidates]
	}
	best, bestRTT := found, time.Duration(1<<62)
	for _, c := range candidates {
		rtt, err := n.client.Ping(c.Addr, n.cfg.RPCTimeout)
		if err != nil {
			continue
		}
		if rtt < bestRTT {
			best, bestRTT = c, rtt
		}
	}
	return best
}

// suspect prunes a peer from the routing state after a failed call — the
// paper's suspect() (Listing 4). In the base protocol failures only clear
// matching fingers lazily.
func (n *Node) suspect(peer NodeRef) {
	if !n.cfg.FaultTolerant {
		return
	}
	n.stats.Suspected++
	for i := 1; i <= int(n.cfg.Bits); i++ {
		if n.ref(n.finger[i]).Addr == peer.Addr {
			n.finger[i] = 0
		}
	}
	kept := n.succs[:0]
	for _, s := range n.succs {
		if n.ref(s).Addr != peer.Addr {
			kept = append(kept, s)
		}
	}
	n.succs = kept
	if n.finger[1] == 0 {
		if len(n.succs) > 0 {
			n.finger[1] = n.succs[0]
		} else {
			n.finger[1] = n.hself // alone until re-joined
		}
	}
	if n.pred.Addr == peer.Addr {
		n.pred = NodeRef{}
	}
}

// findResult travels on the wire for find_successor.
type findResult struct {
	Node NodeRef `json:"node"`
	Hops int     `json:"hops"`
}

func (n *Node) handleFindSuccessor(args rpc.Args) (any, error) {
	var id uint64
	if err := args.Decode(0, &id); err != nil {
		return nil, err
	}
	hops := args.Int(1)
	res, err := n.findSuccessor(id, hops)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (n *Node) handlePredecessor(rpc.Args) (any, error) {
	if n.pred.IsZero() {
		return nil, nil
	}
	return n.pred, nil
}

// handleNotify is the paper's notify(): n0 thinks it might be our
// predecessor.
func (n *Node) handleNotify(args rpc.Args) (any, error) {
	var n0 NodeRef
	if err := args.Decode(0, &n0); err != nil {
		return nil, err
	}
	if n.pred.IsZero() || n.space.Between(n0.ID, n.pred.ID, n.self.ID, false, false) {
		n.pred = n0
	}
	// A lone node adopts its first contact as successor too.
	if n.ref(n.finger[1]).Addr == n.self.Addr && n0.Addr != n.self.Addr {
		n.setSuccessor(n0)
	}
	return nil, nil
}

func (n *Node) handleSuccessors(rpc.Args) (any, error) {
	if n.cfg.FaultTolerant {
		// Materialize references for the wire; handles are meaningless
		// outside this partition's intern table.
		list := make([]NodeRef, len(n.succs))
		for i, h := range n.succs {
			list[i] = n.ref(h)
		}
		return list, nil
	}
	return []NodeRef{n.ref(n.finger[1])}, nil
}

// findSuccessor resolves id recursively (Listing 2): answer locally when
// id ∈ (n, successor], otherwise forward to the closest preceding finger.
// In fault-tolerant mode failed next hops are suspected and alternates
// tried.
func (n *Node) findSuccessor(id uint64, hops int) (findResult, error) {
	succ := n.ref(n.finger[1])
	if succ.Addr == n.self.Addr || n.space.Between(id, n.self.ID, succ.ID, false, true) {
		return findResult{Node: succ, Hops: hops}, nil
	}
	tries := 1
	if n.cfg.FaultTolerant {
		tries = 3
	}
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		n0 := n.closestPreceding(id)
		if n0.Addr == n.self.Addr {
			// No finger precedes id: delegate to the successor.
			n0 = succ
		}
		n.stats.Forwarded++
		n.ins.Forwarded.Inc()
		if attempt > 0 {
			n.ins.Retries.Inc()
		}
		res, err := n.client.Call(n0.Addr, "find_successor", id, hops+1)
		if err != nil {
			lastErr = err
			n.suspect(n0)
			if n0.Addr == succ.Addr && len(n.succs) == 0 {
				break
			}
			succ = n.ref(n.finger[1])
			continue
		}
		var fr findResult
		if err := res.Decode(&fr); err != nil {
			return findResult{}, err
		}
		return fr, nil
	}
	n.stats.FailedLookups++
	if lastErr == nil {
		lastErr = ErrLookupFailed
	}
	return findResult{}, fmt.Errorf("%w: %v", ErrLookupFailed, lastErr)
}

// closestPreceding scans the finger table top-down for the closest finger
// preceding id (Listing 2).
func (n *Node) closestPreceding(id uint64) NodeRef {
	for i := int(n.cfg.Bits); i >= 1; i-- {
		h := n.finger[i]
		if h == 0 {
			continue
		}
		f := n.ref(h)
		if f.Addr != n.self.Addr &&
			n.space.Between(f.ID, n.self.ID, id, false, false) {
			return f
		}
	}
	return n.self
}

// Lookup resolves the successor of key, reporting route length and
// latency — the measurement §5.2 performs 50 times per node.
func (n *Node) Lookup(key uint64) (LookupResult, error) {
	n.stats.Lookups++
	n.ins.Lookups.Inc()
	start := n.ctx.Now()
	res, err := n.findSuccessor(n.space.Fold(key), 0)
	if err != nil {
		n.ins.FailedLookups.Inc()
		return LookupResult{}, err
	}
	rtt := n.ctx.Now().Sub(start)
	n.ins.Hops.Observe(int64(res.Hops))
	n.ins.Latency.Observe(int64(rtt))
	return LookupResult{Node: res.Node, Hops: res.Hops, RTT: rtt}, nil
}
