package chord

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// testRing builds n started Chord nodes over a symmetric network.
type testRing struct {
	k     *sim.Kernel
	nw    *simnet.Network
	rt    *core.SimRuntime
	nodes []*Node
	ctxs  []*core.AppContext
}

func newTestRing(t *testing.T, n int, cfg Config, seed int64) *testRing {
	t.Helper()
	k := sim.NewKernel()
	tr := &testRing{
		k:  k,
		nw: simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, n, seed),
		rt: core.NewSimRuntime(k, seed),
	}
	rng := rand.New(rand.NewSource(seed))
	ids := rng.Perm(1 << 20) // unique ids in a 2^24 space
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 8000}
		ctx := core.NewAppContext(tr.rt, tr.nw.Node(i), core.JobInfo{Me: addr, Position: i + 1}, nil)
		c := cfg
		id := uint64(ids[i])
		c.ID = &id
		node, err := New(ctx, c)
		if err != nil {
			t.Fatalf("new node %d: %v", i, err)
		}
		tr.nodes = append(tr.nodes, node)
		tr.ctxs = append(tr.ctxs, ctx)
	}
	return tr
}

func (tr *testRing) startAll(t *testing.T) {
	t.Helper()
	tr.k.Go(func() {
		for _, n := range tr.nodes {
			if err := n.Start(); err != nil {
				t.Errorf("start %s: %v", n.Self(), err)
			}
		}
	})
	tr.k.Run()
}

func TestProtocolJoinAndStabilize(t *testing.T) {
	tr := newTestRing(t, 8, DefaultConfig(), 1)
	tr.startAll(t)
	// Staggered joins through the protocol (1s apart, as in §5.2's
	// deployment descriptor), then let stabilization converge.
	seed := tr.nodes[0].Self().Addr
	for i := 1; i < len(tr.nodes); i++ {
		i := i
		tr.k.GoAfter(time.Duration(i)*time.Second, func() {
			if err := tr.nodes[i].Join(seed); err != nil {
				t.Errorf("join %d: %v", i, err)
			}
		})
	}
	tr.k.Go(func() {
		for _, n := range tr.nodes {
			n.StartMaintenance()
		}
	})
	tr.k.RunFor(3 * time.Minute)

	if err := CheckRing(tr.nodes); err != nil {
		t.Fatalf("ring not converged: %v", err)
	}
	// Lookups from every node resolve to the true owner. Maintenance
	// periodics keep the event queue alive, so drive the clock by a
	// bounded amount rather than draining it.
	done := false
	tr.k.Go(func() {
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 40; i++ {
			key := uint64(rng.Intn(1 << 24))
			src := tr.nodes[rng.Intn(len(tr.nodes))]
			res, err := src.Lookup(key)
			if err != nil {
				t.Errorf("lookup %d: %v", key, err)
				continue
			}
			if want := OwnerOf(tr.nodes, key); res.Node.Addr != want.Addr {
				t.Errorf("lookup %d = %s, want %s", key, res.Node, want)
			}
		}
		done = true
	})
	tr.k.RunFor(10 * time.Minute)
	if !done {
		t.Fatal("lookups did not finish in simulated time")
	}
}

func TestStaticBuildLookups(t *testing.T) {
	tr := newTestRing(t, 64, DefaultConfig(), 2)
	tr.startAll(t)
	if err := BuildRing(tr.nodes, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := CheckRing(tr.nodes); err != nil {
		t.Fatal(err)
	}
	totalHops := 0
	lookups := 0
	tr.k.Go(func() {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			key := uint64(rng.Intn(1 << 24))
			src := tr.nodes[rng.Intn(len(tr.nodes))]
			res, err := src.Lookup(key)
			if err != nil {
				t.Errorf("lookup: %v", err)
				continue
			}
			if want := OwnerOf(tr.nodes, key); res.Node.Addr != want.Addr {
				t.Errorf("lookup %d = %s, want %s", key, res.Node, want)
			}
			totalHops += res.Hops
			lookups++
		}
	})
	tr.k.Run()
	// Average route length should be ≈ ½·log2(64) = 3, certainly < 6.
	mean := float64(totalHops) / float64(lookups)
	if mean > 6 || mean < 1 {
		t.Fatalf("mean hops = %.2f, want ≈3", mean)
	}
}

func TestFaultToleranceSurvivesFailures(t *testing.T) {
	cfg := FaultTolerantConfig()
	cfg.RPCTimeout = 5 * time.Second
	tr := newTestRing(t, 24, cfg, 4)
	tr.startAll(t)
	if err := BuildRing(tr.nodes, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	tr.k.Go(func() {
		for _, n := range tr.nodes {
			n.StartMaintenance()
		}
	})
	// Kill a quarter of the nodes.
	dead := map[int]bool{3: true, 7: true, 11: true, 19: true, 20: true, 21: true}
	tr.k.GoAfter(30*time.Second, func() {
		for i := range dead {
			tr.nw.Host(i).SetDown(true)
			tr.ctxs[i].Kill()
		}
	})
	tr.k.RunFor(5 * time.Minute)

	var live []*Node
	for i, n := range tr.nodes {
		if !dead[i] {
			live = append(live, n)
		}
	}
	ok, fail := 0, 0
	tr.k.Go(func() {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 60; i++ {
			src := live[rng.Intn(len(live))]
			key := uint64(rng.Intn(1 << 24))
			res, err := src.Lookup(key)
			if err != nil {
				fail++
				continue
			}
			if want := OwnerOf(live, key); res.Node.Addr == want.Addr {
				ok++
			} else {
				fail++
			}
		}
	})
	tr.k.RunFor(10 * time.Minute)
	if ok < 55 {
		t.Fatalf("post-failure lookups: %d ok, %d failed; ring did not repair", ok, fail)
	}
}

func TestBaseLookupFailsWhenRouteDead(t *testing.T) {
	// Without fault tolerance, a dead next hop fails the lookup.
	cfg := DefaultConfig()
	cfg.RPCTimeout = 2 * time.Second
	tr := newTestRing(t, 8, cfg, 6)
	tr.startAll(t)
	if err := BuildRing(tr.nodes, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	var failed error
	tr.k.Go(func() {
		// Kill node 0's successor, then look up a key the route must
		// traverse it for (just past its identifier).
		succ := tr.nodes[0].Successor()
		for i, n := range tr.nodes {
			if n.Self().Addr == succ.Addr {
				tr.nw.Host(i).SetDown(true)
			}
		}
		_, failed = tr.nodes[0].Lookup(succ.ID + 1)
	})
	tr.k.Run()
	if !errors.Is(failed, ErrLookupFailed) {
		t.Fatalf("err = %v, want ErrLookupFailed", failed)
	}
}

func TestLatencyAwareBuildImprovesDelay(t *testing.T) {
	// Two identical rings; one with proximity fingers. Under a link model
	// with very asymmetric host distances, latency-aware fingers must cut
	// mean lookup delay.
	run := func(oracle RTTOracle) time.Duration {
		k := sim.NewKernel()
		model := clusteredModel{}
		nw := simnet.New(k, model, 64, 7)
		rt := core.NewSimRuntime(k, 7)
		rng := rand.New(rand.NewSource(7))
		ids := rng.Perm(1 << 20)
		var nodes []*Node
		for i := 0; i < 64; i++ {
			addr := transport.Addr{Host: simnet.HostName(i), Port: 8000}
			ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
			cfg := DefaultConfig()
			id := uint64(ids[i])
			cfg.ID = &id
			n, _ := New(ctx, cfg)
			nodes = append(nodes, n)
		}
		k.Go(func() {
			for _, n := range nodes {
				n.Start()
			}
		})
		k.Run()
		if err := BuildRing(nodes, BuildOptions{Oracle: oracle}); err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		count := 0
		k.Go(func() {
			lrng := rand.New(rand.NewSource(8))
			for i := 0; i < 150; i++ {
				src := nodes[lrng.Intn(len(nodes))]
				res, err := src.Lookup(uint64(lrng.Intn(1 << 24)))
				if err != nil {
					continue
				}
				total += res.RTT
				count++
			}
		})
		k.Run()
		return total / time.Duration(count)
	}

	plain := run(nil)
	aware := run(func(a, b transport.Addr) time.Duration {
		ia, _ := simnet.HostID(a.Host)
		ib, _ := simnet.HostID(b.Host)
		return 2 * clusteredModel{}.Delay(ia, ib)
	})
	if aware >= plain {
		t.Fatalf("latency-aware mean %s not better than plain %s", aware, plain)
	}
}

// clusteredModel puts hosts in two sites: 5ms RTT inside a site, 200ms
// across, a setting where proximity routing matters.
type clusteredModel struct{}

func (clusteredModel) Delay(a, b int) time.Duration {
	if a%2 == b%2 {
		return 2500 * time.Microsecond
	}
	return 100 * time.Millisecond
}
func (clusteredModel) Loss(a, b int) float64      { return 0 }
func (clusteredModel) UplinkBps(host int) float64 { return 0 }
func (clusteredModel) DownlinkBps(h int) float64  { return 0 }

func TestDynamicFixFingersConverges(t *testing.T) {
	tr := newTestRing(t, 12, DefaultConfig(), 9)
	tr.startAll(t)
	seed := tr.nodes[0].Self().Addr
	for i := 1; i < len(tr.nodes); i++ {
		i := i
		tr.k.GoAfter(time.Duration(i)*time.Second, func() {
			tr.nodes[i].Join(seed)
		})
	}
	tr.k.Go(func() {
		for _, n := range tr.nodes {
			n.StartMaintenance()
		}
	})
	// Enough rounds for fix_fingers to sweep all 24 fingers.
	tr.k.RunFor(5 * time.Minute)
	// Every node's fingers must point at the true successor of their
	// start (converged finger tables).
	for _, n := range tr.nodes {
		for f := uint(2); f <= n.cfg.Bits; f += 7 {
			start := n.space.FingerStart(n.Self().ID, f)
			want := OwnerOf(tr.nodes, start)
			if got := n.ref(n.finger[f]); !got.IsZero() && got.Addr != want.Addr {
				t.Fatalf("node %s finger %d = %s, want %s", n.Self(), f, got, want)
			}
		}
	}
}
