package chord

import (
	"github.com/splaykit/splay/internal/arena"
	"github.com/splaykit/splay/internal/ring"
	"github.com/splaykit/splay/internal/transport"
)

// Shared is the per-partition memory plane for co-located Chord nodes:
// the NodeRef intern table their routing entries index into, and the
// slab backing their fixed-capacity finger arrays. Sharing is what makes
// a node's routing state cost handles instead of references — a finger
// table shrinks from ~32 bytes per entry to 4 — while keeping every
// mutable structure owned by exactly one partition.
//
// A Shared must only be given to nodes created on the same partition
// (the same sub-kernel): its interner and slab are single-threaded by
// design. Nodes created without one get a private Shared, which is
// correct but buys no sharing.
type Shared struct {
	refs *ring.Interner[NodeRef]
	slab *arena.Slab[ring.Handle] // created on first finger allocation
	cfgs []*Config                // interned normalized configs (see internConfig)
}

// NewShared returns per-partition storage over base, which holds the
// population known before the run (nil when membership is discovered
// only at runtime — all references then intern into the overlay).
func NewShared(base *ring.Base[NodeRef]) *Shared {
	return &Shared{refs: ring.NewInterner(base)}
}

// Population precomputes the ring membership for a known address set
// using cfg's identifier space — the same hash New applies — so the
// intern base can be built once and shared read-only across every
// partition's Shared. ids, when non-nil, overrides the hashed
// identifier per address (the harness's pre-drawn random IDs).
func Population(cfg Config, addrs []transport.Addr, ids []uint64) *ring.Base[NodeRef] {
	space := ring.NewSpace(cfg.Bits)
	refs := make([]NodeRef, len(addrs))
	for i, a := range addrs {
		id := space.HashString(a.String())
		if ids != nil {
			id = space.Fold(ids[i])
		}
		refs[i] = NodeRef{ID: id, Addr: a}
	}
	return ring.NewBase(refs)
}

// internConfig returns the partition's canonical copy of a normalized
// config, content-matched with per-node fields (ID, Shared) blanked: a
// deployment uses one or two distinct configs, so every node storing a
// pointer into this table drops the 72-byte struct from its own state.
func (s *Shared) internConfig(cfg Config) *Config {
	cfg.ID, cfg.Shared = nil, nil
	for _, p := range s.cfgs {
		if *p == cfg {
			return p
		}
	}
	p := &cfg
	s.cfgs = append(s.cfgs, p)
	return p
}

// fingers hands out one node's finger array. Arrays of the partition's
// common length come from the slab (and return to it on Stop); an
// off-size request — mixed Bits configs on one partition — falls back to
// a plain allocation.
func (s *Shared) fingers(n int) []ring.Handle {
	if s.slab == nil {
		s.slab = arena.NewSlab[ring.Handle](n, 256)
	}
	if s.slab.BlockLen() != n {
		return make([]ring.Handle, n)
	}
	return s.slab.Get()
}

// release returns a finger array to the slab.
func (s *Shared) release(b []ring.Handle) {
	if s.slab != nil {
		s.slab.Put(b)
	}
}

// Bytes reports the Shared's heap footprint (overlay and slab; a shared
// base is accounted once by whoever built it).
func (s *Shared) Bytes() uint64 {
	var b uint64
	if s.refs != nil {
		b += s.refs.Bytes()
	}
	if s.slab != nil {
		b += s.slab.Bytes()
	}
	return b
}
