package chord

import (
	"fmt"
	"sort"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// RTTOracle reports the round-trip time between two node addresses. Large
// experiments use the testbed's link model as the oracle when building
// converged latency-aware rings.
type RTTOracle func(a, b transport.Addr) time.Duration

// BuildOptions tunes BuildRing.
type BuildOptions struct {
	// Oracle enables proximity finger selection during the static build:
	// each finger entry is the lowest-RTT node inside the finger's
	// interval, the converged state of MIT Chord's latency-aware tables.
	Oracle RTTOracle
}

// BuildRing statically installs the converged routing state (successors,
// predecessors, successor lists and finger tables) into a set of started
// nodes. It replaces running the join/stabilization protocol for
// large-scale measurements of converged rings, which is how §5.2 measures
// lookups ("we let the Chord overlay stabilize before starting the
// measurements"). The protocol path (Join/Stabilize/FixFingers) is
// exercised by tests and smaller experiments.
func BuildRing(nodes []*Node, opts BuildOptions) error {
	if len(nodes) == 0 {
		return nil
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].self.ID < sorted[j].self.ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].self.ID == sorted[i-1].self.ID {
			return fmt.Errorf("chord: duplicate identifier %d", sorted[i].self.ID)
		}
	}
	refs := make([]NodeRef, len(sorted))
	for i, n := range sorted {
		refs[i] = n.self
	}
	// successorOf returns the first node with ID ≥ id (circular).
	successorOf := func(id uint64) int {
		idx := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= id })
		if idx == len(refs) {
			idx = 0
		}
		return idx
	}

	for i, n := range sorted {
		prev := sorted[(i+len(sorted)-1)%len(sorted)]
		n.pred = prev.self

		succIdx := (i + 1) % len(sorted)
		n.setSuccessor(refs[succIdx])
		if n.cfg.FaultTolerant {
			n.succs = n.succs[:0]
			for j := 0; j < n.cfg.SuccListLen && j < len(refs)-1; j++ {
				n.succs = append(n.succs, n.intern(refs[(i+1+j)%len(refs)]))
			}
		}

		for f := uint(2); f <= n.cfg.Bits; f++ {
			start := n.space.FingerStart(n.self.ID, f)
			idx := successorOf(start)
			if opts.Oracle == nil {
				n.finger[f] = n.intern(refs[idx])
				continue
			}
			// Latency-aware: the entry may be any node in the finger's
			// interval [start, start of next finger); pick the closest.
			var hi uint64
			if f == n.cfg.Bits {
				hi = n.self.ID
			} else {
				hi = n.space.FingerStart(n.self.ID, f+1)
			}
			best := refs[idx]
			bestRTT := opts.Oracle(n.self.Addr, best.Addr)
			for j := idx; ; j = (j + 1) % len(refs) {
				r := refs[j]
				if !n.space.Between(r.ID, start, hi, true, false) {
					break
				}
				if rtt := opts.Oracle(n.self.Addr, r.Addr); rtt < bestRTT {
					best, bestRTT = r, rtt
				}
				if (j+1)%len(refs) == idx {
					break
				}
			}
			n.finger[f] = n.intern(best)
		}
	}
	return nil
}

// CheckRing verifies global ring consistency over a set of nodes: the
// successor pointers must form a single cycle visiting every node in
// identifier order, and predecessors must mirror successors. It is used by
// tests and by experiments to assert convergence.
func CheckRing(nodes []*Node) error {
	if len(nodes) == 0 {
		return nil
	}
	byAddr := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		byAddr[n.self.Addr.String()] = n
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].self.ID < sorted[j].self.ID })
	for i, n := range sorted {
		want := sorted[(i+1)%len(sorted)].self
		if got := n.Successor(); got.Addr != want.Addr {
			return fmt.Errorf("chord: node %s successor = %s, want %s", n.self, got, want)
		}
		wantPred := sorted[(i+len(sorted)-1)%len(sorted)].self
		if got := n.Predecessor(); got.Addr != wantPred.Addr {
			return fmt.Errorf("chord: node %s predecessor = %s, want %s", n.self, got, wantPred)
		}
	}
	// Walk the cycle to make sure it is a single loop.
	start := sorted[0]
	cur := start
	for i := 0; i < len(nodes); i++ {
		next, ok := byAddr[cur.Successor().Addr.String()]
		if !ok {
			return fmt.Errorf("chord: successor %s is not a member", cur.Successor())
		}
		cur = next
	}
	if cur != start {
		return fmt.Errorf("chord: successor pointers do not close a single cycle")
	}
	return nil
}

// OwnerOf computes the correct successor of key given the full membership,
// the ground truth for lookup correctness checks.
func OwnerOf(nodes []*Node, key uint64) NodeRef {
	if len(nodes) == 0 {
		return NodeRef{}
	}
	space := nodes[0].space
	key = space.Fold(key)
	best := nodes[0].self
	bestDist := space.Dist(key, best.ID)
	for _, n := range nodes[1:] {
		if d := space.Dist(key, n.self.ID); d < bestDist {
			best, bestDist = n.self, d
		}
	}
	return best
}
