// Package epidemic implements probabilistic epidemic broadcast on
// Erdős–Rényi random graphs (§5.1's "Epidemic" example): a node that
// learns a rumor forwards it once to a fanout of randomly chosen peers.
// With fanout ≈ ln(N) + c the rumor reaches all nodes with probability
// e^(-e^(-c)), the classic sharp-threshold result.
package epidemic

import (
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// Config parameterizes a node.
type Config struct {
	// Fanout is the number of random peers each infected node contacts.
	Fanout int
	// RPCTimeout bounds each push.
	RPCTimeout time.Duration
}

// DefaultConfig uses fanout 8 (≈ ln(1000) + 1).
func DefaultConfig() Config {
	return Config{Fanout: 8, RPCTimeout: 10 * time.Second}
}

// Node is one epidemic participant.
type Node struct {
	ctx    *core.AppContext
	cfg    Config
	self   transport.Addr
	peers  []transport.Addr // known membership (static, as in the paper's class-room usage)
	seen   map[string]bool
	client *rpc.Client
	server *rpc.Server

	// Delivered records (rumor id → delivery time) for measurements.
	Delivered map[string]time.Time
	// OnDeliver, if set, runs on first delivery of each rumor.
	OnDeliver func(id string, payload []byte)
}

// New creates a node; peers is the full membership.
func New(ctx *core.AppContext, cfg Config, peers []transport.Addr) *Node {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 8
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	var others []transport.Addr
	for _, p := range peers {
		if p != ctx.Job.Me {
			others = append(others, p)
		}
	}
	n := &Node{
		ctx: ctx, cfg: cfg, self: ctx.Job.Me, peers: others,
		seen:      make(map[string]bool),
		Delivered: make(map[string]time.Time),
	}
	n.client = rpc.NewClient(ctx)
	n.client.Timeout = cfg.RPCTimeout
	return n
}

// Start serves pushes.
func (n *Node) Start() error {
	s := rpc.NewServer(n.ctx)
	s.Register("rumor", n.handleRumor)
	n.server = s
	return s.Start(n.self.Port)
}

// Stop closes the server.
func (n *Node) Stop() {
	if n.server != nil {
		n.server.Close()
	}
}

// Broadcast originates a rumor from this node.
func (n *Node) Broadcast(id string, payload []byte) {
	n.deliver(id, payload)
}

func (n *Node) handleRumor(args rpc.Args) (any, error) {
	id := args.String(0)
	var payload []byte
	args.Decode(1, &payload) //nolint:errcheck // empty payloads are fine
	n.deliver(id, payload)
	return nil, nil
}

// deliver marks the rumor seen and forwards it to Fanout random peers.
func (n *Node) deliver(id string, payload []byte) {
	if n.seen[id] {
		return
	}
	n.seen[id] = true
	n.Delivered[id] = n.ctx.Now()
	if n.OnDeliver != nil {
		n.OnDeliver(id, payload)
	}
	rng := n.ctx.Rand()
	perm := rng.Perm(len(n.peers))
	count := n.cfg.Fanout
	if count > len(perm) {
		count = len(perm)
	}
	for _, i := range perm[:count] {
		peer := n.peers[i]
		n.ctx.Go(func() {
			n.client.Call(peer, "rumor", id, payload) //nolint:errcheck // best effort
		})
	}
}
