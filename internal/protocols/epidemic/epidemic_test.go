package epidemic

import (
	"fmt"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func buildNet(t *testing.T, n, fanout int) (*sim.Kernel, []*Node) {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, n, 1)
	rt := core.NewSimRuntime(k, 1)
	var peers []transport.Addr
	for i := 0; i < n; i++ {
		peers = append(peers, transport.Addr{Host: simnet.HostName(i), Port: 8200})
	}
	var nodes []*Node
	cfg := DefaultConfig()
	cfg.Fanout = fanout
	for i := 0; i < n; i++ {
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: peers[i]}, nil)
		nodes = append(nodes, New(ctx, cfg, peers))
	}
	k.Go(func() {
		for i, node := range nodes {
			if err := node.Start(); err != nil {
				t.Errorf("start %d: %v", i, err)
			}
		}
	})
	return k, nodes
}

func TestBroadcastReachesAll(t *testing.T) {
	const n = 128
	k, nodes := buildNet(t, n, 8) // fanout ≈ ln(128)+3
	k.GoAfter(time.Second, func() {
		nodes[0].Broadcast("r1", []byte("hello"))
	})
	k.RunFor(2 * time.Minute)
	reached := 0
	for _, node := range nodes {
		if _, ok := node.Delivered["r1"]; ok {
			reached++
		}
	}
	if reached < n*97/100 {
		t.Fatalf("rumor reached %d/%d nodes", reached, n)
	}
}

func TestLowFanoutMissesNodes(t *testing.T) {
	// With fanout 1 the epidemic dies out quickly: the sharp-threshold
	// contrast to the test above.
	const n = 128
	k, nodes := buildNet(t, n, 1)
	k.GoAfter(time.Second, func() {
		nodes[0].Broadcast("r1", nil)
	})
	k.RunFor(2 * time.Minute)
	reached := 0
	for _, node := range nodes {
		if _, ok := node.Delivered["r1"]; ok {
			reached++
		}
	}
	if reached > n*3/4 {
		t.Fatalf("fanout-1 epidemic reached %d/%d nodes; threshold effect missing", reached, n)
	}
}

func TestDuplicatesDeliveredOnce(t *testing.T) {
	k, nodes := buildNet(t, 32, 6)
	deliveries := map[int]int{}
	for i, node := range nodes {
		i := i
		node.OnDeliver = func(id string, payload []byte) { deliveries[i]++ }
	}
	k.GoAfter(time.Second, func() {
		nodes[0].Broadcast("x", nil)
		nodes[0].Broadcast("x", nil) // duplicate origination is a no-op
	})
	k.RunFor(time.Minute)
	for i, c := range deliveries {
		if c != 1 {
			t.Fatalf("node %d delivered %d times", i, c)
		}
	}
}

func TestMultipleRumors(t *testing.T) {
	k, nodes := buildNet(t, 64, 7)
	k.GoAfter(time.Second, func() {
		for r := 0; r < 5; r++ {
			nodes[r].Broadcast(fmt.Sprintf("r%d", r), nil)
		}
	})
	k.RunFor(2 * time.Minute)
	for r := 0; r < 5; r++ {
		id := fmt.Sprintf("r%d", r)
		reached := 0
		for _, node := range nodes {
			if _, ok := node.Delivered[id]; ok {
				reached++
			}
		}
		if reached < 60 {
			t.Fatalf("rumor %s reached only %d/64", id, reached)
		}
	}
}
