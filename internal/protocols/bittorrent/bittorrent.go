// Package bittorrent implements the BitTorrent content-distribution
// protocol (§5.1): a tracker, piece exchange with rarest-first selection,
// and tit-for-tat choking with an optimistic unchoke slot. The paper
// notes its implementation was the largest (420 LOC) because the protocol
// is "complex and underspecified"; this implementation keeps the same
// functional pieces without wire compatibility (as the paper also waives
// for its tree experiments).
package bittorrent

import (
	"fmt"
	"sort"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// Instruments is the protocol's optional metric set for the
// observability plane. The zero value disables everything; increments
// are pure memory operations, so attaching instruments never perturbs
// simulation schedules.
type Instruments struct {
	Pieces      *metrics.Counter   // pieces received
	PieceBytes  *metrics.Counter   // payload bytes received
	Completions *metrics.Counter   // peers that finished the file
	PieceSize   *metrics.Histogram // received piece sizes, pow2 buckets
}

// NewInstruments registers the protocol's canonical series on reg
// ("bt." prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		Pieces:      reg.Counter("bt.pieces"),
		PieceBytes:  reg.Counter("bt.piece_bytes"),
		Completions: reg.Counter("bt.completions"),
		PieceSize:   reg.Histogram("bt.piece_size", metrics.KindHistPow2),
	}
}

// Torrent describes the content being swarmed.
type Torrent struct {
	Name      string `json:"name"`
	Size      int    `json:"size"`
	PieceSize int    `json:"piece_size"`
}

// NumPieces returns the piece count.
func (t Torrent) NumPieces() int { return (t.Size + t.PieceSize - 1) / t.PieceSize }

// Tracker maintains the swarm membership.
type Tracker struct {
	ctx    *core.AppContext
	server *rpc.Server
	swarm  map[string]transport.Addr
}

// NewTracker creates a tracker bound to ctx (it listens on ctx.Job.Me's
// port).
func NewTracker(ctx *core.AppContext) *Tracker {
	return &Tracker{ctx: ctx, swarm: make(map[string]transport.Addr)}
}

// Start serves announce requests.
func (t *Tracker) Start() error {
	s := rpc.NewServer(t.ctx)
	s.Register("announce", t.handleAnnounce)
	t.server = s
	return s.Start(t.ctx.Job.Me.Port)
}

// Swarm returns the current swarm size.
func (t *Tracker) Swarm() int { return len(t.swarm) }

func (t *Tracker) handleAnnounce(args rpc.Args) (any, error) {
	var who transport.Addr
	if err := args.Decode(0, &who); err != nil {
		return nil, err
	}
	// Reply with a random subset of other peers, then register the
	// announcer.
	var others []transport.Addr
	for _, a := range t.swarm {
		if a != who {
			others = append(others, a)
		}
	}
	rng := t.ctx.Rand()
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	if len(others) > 30 {
		others = others[:30]
	}
	t.swarm[who.String()] = who
	return others, nil
}

// Config parameterizes a peer.
type Config struct {
	MaxPeers      int           // connections kept
	MaxInflight   int           // outstanding piece requests
	UnchokeSlots  int           // reciprocated upload slots
	RechokeEvery  time.Duration // choking algorithm period
	ScheduleEvery time.Duration // request scheduler period
	RPCTimeout    time.Duration
}

// DefaultConfig mirrors mainline defaults scaled to simulation.
func DefaultConfig() Config {
	return Config{
		MaxPeers:      16,
		MaxInflight:   4,
		UnchokeSlots:  3, // plus one optimistic slot
		RechokeEvery:  10 * time.Second,
		ScheduleEvery: time.Second,
		RPCTimeout:    30 * time.Second,
	}
}

// remotePeer is this node's view of a neighbor.
type remotePeer struct {
	addr       transport.Addr
	have       []bool
	downloaded int  // bytes they sent us (for tit-for-tat)
	uploaded   int  // bytes we sent them
	unchoked   bool // whether WE unchoke THEM
}

// Peer is one swarm participant.
type Peer struct {
	ctx     *core.AppContext
	cfg     Config
	torrent Torrent
	tracker transport.Addr
	self    transport.Addr
	selfArg any // self pre-encoded once for announce/handshake calls

	have     []bool
	pieces   int
	peers    map[string]*remotePeer
	inflight map[int]bool

	client *rpc.Client
	server *rpc.Server
	ins    Instruments
	stops  []func()

	// CompletedAt is non-zero once the peer holds every piece.
	CompletedAt time.Time
	// Uploaded/Downloaded count payload bytes.
	Uploaded, Downloaded int
}

// NewPeer creates a peer. If seed is true it starts with the whole file.
func NewPeer(ctx *core.AppContext, torrent Torrent, tracker transport.Addr, seed bool, cfg Config) *Peer {
	p := &Peer{
		ctx: ctx, cfg: cfg, torrent: torrent, tracker: tracker,
		self:     ctx.Job.Me,
		selfArg:  rpc.PreEncode(ctx.Job.Me),
		have:     make([]bool, torrent.NumPieces()),
		peers:    make(map[string]*remotePeer),
		inflight: make(map[int]bool),
	}
	if seed {
		for i := range p.have {
			p.have[i] = true
		}
		p.pieces = len(p.have)
		p.CompletedAt = ctx.Now()
	}
	p.client = rpc.NewClient(ctx)
	p.client.Timeout = cfg.RPCTimeout
	return p
}

// SetInstruments attaches instruments to the peer.
func (p *Peer) SetInstruments(ins Instruments) { p.ins = ins }

// Complete reports whether the peer holds all pieces.
func (p *Peer) Complete() bool { return p.pieces == p.torrent.NumPieces() }

// Pieces returns how many pieces the peer holds.
func (p *Peer) Pieces() int { return p.pieces }

// Start serves the peer protocol, announces to the tracker and begins
// the scheduler and choker loops.
func (p *Peer) Start() error {
	s := rpc.NewServer(p.ctx)
	s.Register("bt_handshake", p.handleHandshake)
	s.Register("bt_have", p.handleHave)
	s.Register("bt_request", p.handleRequest)
	if err := s.Start(p.self.Port); err != nil {
		return err
	}
	p.server = s
	p.ctx.Go(p.announce)
	p.stops = append(p.stops,
		p.ctx.Periodic(p.cfg.ScheduleEvery, p.schedule),
		p.ctx.Periodic(p.cfg.RechokeEvery, p.rechoke),
		p.ctx.Periodic(30*time.Second, p.announce),
	)
	return nil
}

// Stop halts the peer.
func (p *Peer) Stop() {
	for _, stop := range p.stops {
		stop()
	}
	if p.server != nil {
		p.server.Close()
	}
}

// announce refreshes the peer set from the tracker and handshakes new
// neighbors.
func (p *Peer) announce() {
	res, err := p.client.Call(p.tracker, "announce", p.selfArg)
	if err != nil {
		return
	}
	var others []transport.Addr
	if err := res.Decode(&others); err != nil {
		return
	}
	for _, a := range others {
		if len(p.peers) >= p.cfg.MaxPeers {
			break
		}
		if _, ok := p.peers[a.String()]; ok || a == p.self {
			continue
		}
		p.handshake(a)
	}
}

func (p *Peer) handshake(a transport.Addr) {
	res, err := p.client.Call(a, "bt_handshake", p.selfArg, p.have)
	if err != nil {
		return
	}
	var theirHave []bool
	if err := res.Decode(&theirHave); err != nil || len(theirHave) != len(p.have) {
		return
	}
	p.peers[a.String()] = &remotePeer{addr: a, have: theirHave}
}

func (p *Peer) handleHandshake(args rpc.Args) (any, error) {
	var who transport.Addr
	if err := args.Decode(0, &who); err != nil {
		return nil, err
	}
	var theirHave []bool
	if err := args.Decode(1, &theirHave); err != nil || len(theirHave) != len(p.have) {
		return nil, fmt.Errorf("bittorrent: bad bitfield")
	}
	if _, ok := p.peers[who.String()]; !ok && len(p.peers) < p.cfg.MaxPeers {
		p.peers[who.String()] = &remotePeer{addr: who, have: theirHave}
	} else if rp, ok := p.peers[who.String()]; ok {
		rp.have = theirHave
	}
	return p.have, nil
}

func (p *Peer) handleHave(args rpc.Args) (any, error) {
	var who transport.Addr
	if err := args.Decode(0, &who); err != nil {
		return nil, err
	}
	idx := args.Int(1)
	if rp, ok := p.peers[who.String()]; ok && idx >= 0 && idx < len(rp.have) {
		rp.have[idx] = true
	}
	return nil, nil
}

// errChoked is returned to choked requesters.
var errChoked = fmt.Errorf("bittorrent: choked")

func (p *Peer) handleRequest(args rpc.Args) (any, error) {
	var who transport.Addr
	if err := args.Decode(0, &who); err != nil {
		return nil, err
	}
	idx := args.Int(1)
	rp, ok := p.peers[who.String()]
	if !ok {
		return nil, fmt.Errorf("bittorrent: unknown peer")
	}
	if !rp.unchoked {
		return nil, errChoked
	}
	if idx < 0 || idx >= len(p.have) || !p.have[idx] {
		return nil, fmt.Errorf("bittorrent: piece %d unavailable", idx)
	}
	size := p.pieceSize(idx)
	rp.uploaded += size
	p.Uploaded += size
	return make([]byte, size), nil
}

func (p *Peer) pieceSize(idx int) int {
	size := p.torrent.PieceSize
	if rem := p.torrent.Size - idx*p.torrent.PieceSize; rem < size {
		size = rem
	}
	return size
}

// rarestMissing returns missing piece indices ordered rarest-first among
// the current neighborhood.
func (p *Peer) rarestMissing() []int {
	counts := make([]int, len(p.have))
	for _, rp := range p.peers {
		for i, h := range rp.have {
			if h {
				counts[i]++
			}
		}
	}
	var missing []int
	for i, h := range p.have {
		if !h && !p.inflight[i] && counts[i] > 0 {
			missing = append(missing, i)
		}
	}
	sort.Slice(missing, func(a, b int) bool {
		if counts[missing[a]] != counts[missing[b]] {
			return counts[missing[a]] < counts[missing[b]]
		}
		return missing[a] < missing[b]
	})
	return missing
}

// schedule issues piece requests, rarest first, bounded by MaxInflight.
func (p *Peer) schedule() {
	if p.Complete() {
		return
	}
	for _, idx := range p.rarestMissing() {
		if len(p.inflight) >= p.cfg.MaxInflight {
			return
		}
		// Any neighbor holding the piece may serve it; try in random
		// order so load spreads.
		var holders []*remotePeer
		for _, rp := range p.peers {
			if rp.have[idx] {
				holders = append(holders, rp)
			}
		}
		if len(holders) == 0 {
			continue
		}
		rng := p.ctx.Rand()
		rp := holders[rng.Intn(len(holders))]
		idx := idx
		p.inflight[idx] = true
		p.ctx.Go(func() {
			defer delete(p.inflight, idx)
			res, err := p.client.Call(rp.addr, "bt_request", p.selfArg, idx)
			if err != nil {
				return // choked or dead; the scheduler will retry
			}
			var data []byte
			if err := res.Decode(&data); err != nil {
				return
			}
			p.onPiece(idx, len(data), rp)
		})
	}
}

func (p *Peer) onPiece(idx, size int, from *remotePeer) {
	if p.have[idx] {
		return
	}
	p.have[idx] = true
	p.pieces++
	from.downloaded += size
	p.Downloaded += size
	p.ins.Pieces.Inc()
	p.ins.PieceBytes.Add(uint64(size))
	p.ins.PieceSize.Observe(int64(size))
	if p.Complete() && p.CompletedAt.IsZero() {
		p.CompletedAt = p.ctx.Now()
		p.ins.Completions.Inc()
	}
	// Advertise availability.
	for _, rp := range p.peers {
		rp := rp
		p.ctx.Go(func() {
			p.client.Call(rp.addr, "bt_have", p.selfArg, idx) //nolint:errcheck
		})
	}
}

// rechoke runs the choking algorithm: unchoke the UnchokeSlots best
// uploaders to us (tit-for-tat; seeds rank by what they serve), plus one
// random optimistic slot.
func (p *Peer) rechoke() {
	var ranked []*remotePeer
	for _, rp := range p.peers {
		ranked = append(ranked, rp)
	}
	sort.Slice(ranked, func(a, b int) bool {
		if p.Complete() {
			return ranked[a].uploaded > ranked[b].uploaded
		}
		return ranked[a].downloaded > ranked[b].downloaded
	})
	for i, rp := range ranked {
		rp.unchoked = i < p.cfg.UnchokeSlots
	}
	if len(ranked) > p.cfg.UnchokeSlots {
		rest := ranked[p.cfg.UnchokeSlots:]
		rest[p.ctx.Rand().Intn(len(rest))].unchoked = true // optimistic
	}
}

// Unchoked counts currently unchoked neighbors (for tests).
func (p *Peer) Unchoked() int {
	n := 0
	for _, rp := range p.peers {
		if rp.unchoked {
			n++
		}
	}
	return n
}
