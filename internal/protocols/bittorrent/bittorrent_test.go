package bittorrent

import (
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

type swarm struct {
	k       *sim.Kernel
	tracker *Tracker
	peers   []*Peer
}

func buildSwarm(t *testing.T, leechers int, torrent Torrent, bps float64) *swarm {
	t.Helper()
	k := sim.NewKernel()
	n := leechers + 2 // tracker + seed + leechers
	nw := simnet.New(k, simnet.Symmetric{RTT: 30 * time.Millisecond, Bps: bps}, n, 1)
	rt := core.NewSimRuntime(k, 1)
	mk := func(i int) *core.AppContext {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 6881}
		return core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
	}
	sw := &swarm{k: k}
	trackerAddr := transport.Addr{Host: simnet.HostName(0), Port: 6881}
	sw.tracker = NewTracker(mk(0))
	seed := NewPeer(mk(1), torrent, trackerAddr, true, DefaultConfig())
	sw.peers = append(sw.peers, seed)
	for i := 0; i < leechers; i++ {
		sw.peers = append(sw.peers, NewPeer(mk(i+2), torrent, trackerAddr, false, DefaultConfig()))
	}
	k.Go(func() {
		if err := sw.tracker.Start(); err != nil {
			t.Errorf("tracker: %v", err)
		}
		for i, p := range sw.peers {
			if err := p.Start(); err != nil {
				t.Errorf("peer %d: %v", i, err)
			}
		}
	})
	return sw
}

func TestSwarmCompletes(t *testing.T) {
	torrent := Torrent{Name: "ubuntu.iso", Size: 2 << 20, PieceSize: 64 << 10}
	sw := buildSwarm(t, 11, torrent, 1<<20)
	sw.k.RunFor(20 * time.Minute)
	for i, p := range sw.peers {
		if !p.Complete() {
			t.Fatalf("peer %d incomplete: %d/%d pieces", i, p.Pieces(), torrent.NumPieces())
		}
	}
	if sw.tracker.Swarm() != len(sw.peers) {
		t.Fatalf("tracker knows %d peers, want %d", sw.tracker.Swarm(), len(sw.peers))
	}
}

func TestLeechersUploadToEachOther(t *testing.T) {
	// Cooperative distribution: the seed must not serve everyone alone.
	torrent := Torrent{Name: "f", Size: 4 << 20, PieceSize: 64 << 10}
	sw := buildSwarm(t, 11, torrent, 1<<20)
	sw.k.RunFor(30 * time.Minute)
	leecherUploads := 0
	for _, p := range sw.peers[1:] {
		leecherUploads += p.Uploaded
	}
	if leecherUploads == 0 {
		t.Fatal("no leecher uploaded anything: swarm degenerated to client-server")
	}
	seedUp := sw.peers[0].Uploaded
	total := seedUp + leecherUploads
	if float64(seedUp)/float64(total) > 0.8 {
		t.Fatalf("seed served %d of %d bytes: insufficient cooperation", seedUp, total)
	}
}

func TestChokingLimitsUnchokedPeers(t *testing.T) {
	torrent := Torrent{Name: "f", Size: 1 << 20, PieceSize: 64 << 10}
	sw := buildSwarm(t, 11, torrent, 1<<20)
	sw.k.RunFor(2 * time.Minute)
	cfg := DefaultConfig()
	for i, p := range sw.peers {
		if u := p.Unchoked(); u > cfg.UnchokeSlots+1 {
			t.Fatalf("peer %d unchokes %d peers, cap is %d", i, u, cfg.UnchokeSlots+1)
		}
	}
}

func TestCompletionTimeBoundedByBandwidth(t *testing.T) {
	torrent := Torrent{Name: "f", Size: 2 << 20, PieceSize: 64 << 10}
	sw := buildSwarm(t, 7, torrent, 1<<20)
	sw.k.RunFor(30 * time.Minute)
	var last time.Time
	for i, p := range sw.peers {
		if p.CompletedAt.IsZero() {
			t.Fatalf("peer %d never completed", i)
		}
		if p.CompletedAt.After(last) {
			last = p.CompletedAt
		}
	}
	elapsed := last.Sub(sim.Epoch)
	// 2 MB at 1 MB/s: the seed alone needs 2 s per full copy; swarming
	// must finish well under serving 7 copies serially (14 s) plus
	// protocol overhead, and cannot beat the line rate.
	if elapsed < 2*time.Second {
		t.Fatalf("finished in %s: faster than line rate", elapsed)
	}
	if elapsed > 10*time.Minute {
		t.Fatalf("swarm took %s", elapsed)
	}
}
