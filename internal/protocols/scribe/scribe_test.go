package scribe

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

type scribeNet struct {
	k      *sim.Kernel
	pnodes []*pastry.Node
	nodes  []*Node
}

func buildScribe(t *testing.T, n int) *scribeNet {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, n, 1)
	rt := core.NewSimRuntime(k, 1)
	sn := &scribeNet{k: k}
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
		p := pastry.New(ctx, pastry.DefaultConfig())
		sn.pnodes = append(sn.pnodes, p)
		sn.nodes = append(sn.nodes, New(ctx, p, DefaultConfig()))
	}
	k.Go(func() {
		for i := range sn.pnodes {
			if err := sn.pnodes[i].Start(); err != nil {
				t.Errorf("pastry start: %v", err)
			}
			if err := sn.nodes[i].Start(); err != nil {
				t.Errorf("scribe start: %v", err)
			}
		}
	})
	// Scribe's periodic repair keeps the event queue non-empty: drive the
	// clock by a bounded amount instead of draining.
	k.RunFor(time.Second)
	if err := pastry.BuildNetwork(sn.pnodes, pastry.BuildOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return sn
}

func TestPublishReachesAllSubscribers(t *testing.T) {
	sn := buildScribe(t, 48)
	g := GroupOf("news")
	received := map[int]int{}
	for i, node := range sn.nodes {
		i := i
		node.OnDeliver = func(GroupID, json.RawMessage) { received[i]++ }
	}
	sn.k.Go(func() {
		for _, node := range sn.nodes {
			node.Subscribe(g)
		}
	})
	sn.k.RunFor(time.Minute)
	sn.k.Go(func() {
		if err := sn.nodes[7].Publish(g, map[string]string{"headline": "splay"}); err != nil {
			t.Errorf("publish: %v", err)
		}
	})
	sn.k.RunFor(5 * time.Minute)

	for i := range sn.nodes {
		if received[i] != 1 {
			t.Fatalf("node %d received %d copies", i, received[i])
		}
	}
}

func TestNonSubscribersDoNotDeliver(t *testing.T) {
	sn := buildScribe(t, 24)
	g := GroupOf("private")
	sn.k.Go(func() {
		for _, node := range sn.nodes[:8] {
			node.Subscribe(g)
		}
	})
	sn.k.RunFor(time.Minute)
	sn.k.Go(func() {
		sn.nodes[0].Publish(g, "msg") //nolint:errcheck
	})
	sn.k.RunFor(2 * time.Minute)
	for i, node := range sn.nodes {
		want := uint64(0)
		if i < 8 {
			want = 1
		}
		if node.Delivered != want {
			t.Fatalf("node %d delivered %d, want %d", i, node.Delivered, want)
		}
	}
}

func TestTreeUsesForwarders(t *testing.T) {
	sn := buildScribe(t, 48)
	g := GroupOf("wide")
	sn.k.Go(func() {
		for _, node := range sn.nodes {
			node.Subscribe(g)
		}
	})
	sn.k.RunFor(time.Minute)
	// The dissemination structure must be a tree: total children across
	// nodes ≈ member count, not a star at the root.
	totalChildren, maxChildren := 0, 0
	for _, node := range sn.nodes {
		c := node.Children(g)
		totalChildren += c
		if c > maxChildren {
			maxChildren = c
		}
	}
	if totalChildren < len(sn.nodes)-1 {
		t.Fatalf("tree has %d edges for %d members", totalChildren, len(sn.nodes))
	}
	if maxChildren >= len(sn.nodes)-1 {
		t.Fatalf("root fans out to everyone (%d children): no tree structure", maxChildren)
	}
}

func TestGroupOfDeterministic(t *testing.T) {
	if GroupOf("a") != GroupOf("a") || GroupOf("a") == GroupOf("b") {
		t.Fatal("GroupOf not a stable hash")
	}
}
