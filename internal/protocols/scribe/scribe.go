// Package scribe implements the Scribe publish-subscribe system on top of
// Pastry (§5.1): each group's identifier maps to a rendez-vous node (the
// Pastry root), and the reverse paths of subscription walks form a
// per-group multicast tree. Publishers route messages to the root, which
// pushes them down the tree.
package scribe

import (
	"encoding/json"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// GroupID identifies a multicast group in the Pastry identifier space.
type GroupID = pastry.ID

// GroupOf hashes a topic name to its group identifier.
func GroupOf(topic string) GroupID {
	h := pastry.ID(0)
	for _, c := range []byte(topic) {
		h = h*1099511628211 + pastry.ID(c)
	}
	return h
}

// Config parameterizes a Scribe node.
type Config struct {
	// Port is the Scribe RPC port (distinct from Pastry's).
	Port int
	// RepairEvery re-walks subscriptions to heal trees under churn.
	RepairEvery time.Duration
	// RPCTimeout bounds tree maintenance and dissemination calls.
	RPCTimeout time.Duration
}

// DefaultConfig returns sane defaults.
func DefaultConfig() Config {
	return Config{Port: 9200, RepairEvery: 30 * time.Second, RPCTimeout: 15 * time.Second}
}

// groupState is this node's role in one group's tree.
type groupState struct {
	subscriber bool
	children   map[string]transport.Addr
}

// Node is one Scribe instance layered over a started Pastry node.
type Node struct {
	ctx    *core.AppContext
	cfg    Config
	pastry *pastry.Node
	groups map[GroupID]*groupState
	client *rpc.Client
	server *rpc.Server
	stop   func()

	// OnDeliver runs on every delivered publication.
	OnDeliver func(g GroupID, payload json.RawMessage)

	// Delivered counts deliveries to the local subscriber.
	Delivered uint64
}

// New creates a Scribe node over p.
func New(ctx *core.AppContext, p *pastry.Node, cfg Config) *Node {
	if cfg.Port == 0 {
		cfg.Port = 9200
	}
	if cfg.RepairEvery <= 0 {
		cfg.RepairEvery = 30 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 15 * time.Second
	}
	n := &Node{
		ctx: ctx, cfg: cfg, pastry: p,
		groups: make(map[GroupID]*groupState),
	}
	n.client = rpc.NewClient(ctx)
	n.client.Timeout = cfg.RPCTimeout
	return n
}

// Start serves the Scribe RPC interface and begins periodic tree repair.
func (n *Node) Start() error {
	s := rpc.NewServer(n.ctx)
	s.Register("scribe_join", n.handleJoin)
	s.Register("scribe_pub", n.handlePub)
	s.Register("scribe_msg", n.handleMsg)
	if err := s.Start(n.cfg.Port); err != nil {
		return err
	}
	n.server = s
	n.stop = n.ctx.Periodic(n.cfg.RepairEvery, n.repair)
	return nil
}

// Stop halts repair and the server.
func (n *Node) Stop() {
	if n.stop != nil {
		n.stop()
	}
	if n.server != nil {
		n.server.Close()
	}
}

// scribeAddr maps a Pastry reference to the peer's Scribe endpoint.
func (n *Node) scribeAddr(ref pastry.NodeRef) transport.Addr {
	return transport.Addr{Host: ref.Addr.Host, Port: n.cfg.Port}
}

func (n *Node) state(g GroupID) *groupState {
	st, ok := n.groups[g]
	if !ok {
		st = &groupState{children: make(map[string]transport.Addr)}
		n.groups[g] = st
	}
	return st
}

// Subscribe joins the group's multicast tree.
func (n *Node) Subscribe(g GroupID) {
	n.state(g).subscriber = true
	n.joinToward(g)
}

// Children returns the node's child count for a group (tree fan-out).
func (n *Node) Children(g GroupID) int {
	if st, ok := n.groups[g]; ok {
		return len(st.children)
	}
	return 0
}

// IsForwarder reports whether the node has tree state for the group.
func (n *Node) IsForwarder(g GroupID) bool {
	st, ok := n.groups[g]
	return ok && (st.subscriber || len(st.children) > 0)
}

// joinToward grafts this node onto the group tree: send a join to the
// next Pastry hop toward the group identifier; the receiver adds us as a
// child and recursively joins until an existing tree node or the root is
// reached.
func (n *Node) joinToward(g GroupID) {
	next, root := n.pastry.NextHop(g)
	if root {
		return // we are the rendez-vous node
	}
	self := transport.Addr{Host: n.ctx.Job.Me.Host, Port: n.cfg.Port}
	n.client.Call(n.scribeAddr(next), "scribe_join", g, self) //nolint:errcheck // repair retries
}

func (n *Node) handleJoin(args rpc.Args) (any, error) {
	var g GroupID
	if err := args.Decode(0, &g); err != nil {
		return nil, err
	}
	var child transport.Addr
	if err := args.Decode(1, &child); err != nil {
		return nil, err
	}
	st := n.state(g)
	hadState := st.subscriber || len(st.children) > 0
	st.children[child.String()] = child
	if !hadState {
		// Newly created forwarder: graft ourselves toward the root.
		n.joinToward(g)
	}
	return nil, nil
}

// repair re-walks every group membership, healing broken parents.
func (n *Node) repair() {
	for g, st := range n.groups {
		if st.subscriber || len(st.children) > 0 {
			n.joinToward(g)
		}
	}
}

// Publish routes a payload to the group's rendez-vous node, which
// disseminates it down the tree.
func (n *Node) Publish(g GroupID, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	next, root := n.pastry.NextHop(g)
	if root {
		n.disseminate(g, raw)
		return nil
	}
	_, err = n.client.Call(n.scribeAddr(next), "scribe_pub", g, json.RawMessage(raw))
	return err
}

func (n *Node) handlePub(args rpc.Args) (any, error) {
	var g GroupID
	if err := args.Decode(0, &g); err != nil {
		return nil, err
	}
	var payload json.RawMessage
	if err := args.Decode(1, &payload); err != nil {
		return nil, err
	}
	next, root := n.pastry.NextHop(g)
	if root {
		n.disseminate(g, payload)
		return nil, nil
	}
	_, err := n.client.Call(n.scribeAddr(next), "scribe_pub", g, payload)
	return nil, err
}

func (n *Node) handleMsg(args rpc.Args) (any, error) {
	var g GroupID
	if err := args.Decode(0, &g); err != nil {
		return nil, err
	}
	var payload json.RawMessage
	if err := args.Decode(1, &payload); err != nil {
		return nil, err
	}
	n.disseminate(g, payload)
	return nil, nil
}

// disseminate delivers locally (if subscribed) and pushes to children.
func (n *Node) disseminate(g GroupID, payload json.RawMessage) {
	st := n.state(g)
	if st.subscriber {
		n.Delivered++
		if n.OnDeliver != nil {
			n.OnDeliver(g, payload)
		}
	}
	for key, child := range st.children {
		child := child
		key := key
		n.ctx.Go(func() {
			if _, err := n.client.Call(child, "scribe_msg", g, payload); err != nil {
				delete(st.children, key) // dead child
			}
		})
	}
}
