package pastry

import (
	"fmt"

	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// joinInfo is the state a joining node collects along the join route: one
// routing-table row donation per hop plus the root's leaf set.
type joinInfo struct {
	Path    []NodeRef   `json:"path"`
	Rows    [][]NodeRef `json:"rows"` // Rows[i] donated by Path[i]
	Leafset []NodeRef   `json:"leafset"`
}

// handleJoinRoute routes a join request toward the joiner's root. Each
// node on the path donates the routing-table row matching its shared
// prefix with the joiner (Pastry's join protocol); the root additionally
// donates its leaf set.
func (n *Node) handleJoinRoute(args rpc.Args) (any, error) {
	var joiner NodeRef
	if err := args.Decode(0, &joiner); err != nil {
		return nil, err
	}
	row := CommonPrefix(n.self.ID, joiner.ID)
	var donation []NodeRef
	if row < Digits {
		for _, e := range n.table[row] {
			if !e.IsZero() {
				donation = append(donation, e)
			}
		}
	}
	donation = append(donation, n.self)

	for attempt := 0; attempt < 4; attempt++ {
		next, root := n.NextHop(joiner.ID)
		if root {
			return joinInfo{
				Path:    []NodeRef{n.self},
				Rows:    [][]NodeRef{donation},
				Leafset: append(n.Leaves(), n.self),
			}, nil
		}
		res, err := n.client.Call(next.Addr, "join_route", joiner)
		if err != nil {
			n.suspect(next.Addr)
			continue
		}
		var info joinInfo
		if err := res.Decode(&info); err != nil {
			return nil, err
		}
		info.Path = append([]NodeRef{n.self}, info.Path...)
		info.Rows = append([][]NodeRef{donation}, info.Rows...)
		return info, nil
	}
	return nil, ErrRouteFailed
}

// Join brings this node into the overlay known to seed: route a join
// message to our own identifier's root, absorb the donated state, then
// announce ourselves to everyone we learned about.
func (n *Node) Join(seed transport.Addr) error {
	res, err := n.client.Call(seed, "join_route", n.selfArg)
	if err != nil {
		return fmt.Errorf("pastry: join via %s: %w", seed, err)
	}
	var info joinInfo
	if err := res.Decode(&info); err != nil {
		return fmt.Errorf("pastry: join: %w", err)
	}
	for _, row := range info.Rows {
		for _, r := range row {
			n.addRef(r)
		}
	}
	for _, r := range info.Leafset {
		n.addRef(r)
	}
	// Announce to every known node so their tables and leaf sets learn
	// about us. Failures are tolerable; maintenance converges the rest.
	seen := map[string]bool{n.self.Addr.String(): true}
	var targets []NodeRef
	n.known(func(r NodeRef) bool {
		if !seen[r.Addr.String()] {
			seen[r.Addr.String()] = true
			targets = append(targets, r)
		}
		return true
	})
	for _, r := range targets {
		n.client.Call(r.Addr, "announce", n.selfArg) //nolint:errcheck
	}
	return nil
}

// Maintain is one round of stabilization: probe the leaf set, drop dead
// members, pull fresh leaf sets from the surviving extremes, and repair
// one routing-table entry. It is cheap enough to run every few seconds on
// thousands of nodes yet recovers the Fig. 10 massive failure within
// minutes.
func (n *Node) Maintain() {
	n.stats.Maintenance++
	// Probe leaves; suspects disappear from both structures.
	for _, l := range n.Leaves() {
		if _, err := n.client.Ping(l.Addr, n.cfg.RPCTimeout); err != nil {
			n.suspect(l.Addr)
		}
	}
	// Pull leaf sets from the farthest survivor on each side, absorbing
	// replacements for the dead.
	pull := func(side []NodeRef) {
		if len(side) == 0 {
			return
		}
		far := side[len(side)-1]
		res, err := n.client.Call(far.Addr, "leafset")
		if err != nil {
			n.suspect(far.Addr)
			return
		}
		var refs []NodeRef
		if res.Decode(&refs) == nil {
			for _, r := range refs {
				n.addRef(r)
			}
		}
	}
	pull(n.left)
	pull(n.right)

	// Repair one routing-table slot: verify a random filled entry and try
	// to fill a random empty one by asking a random leaf for its entry.
	rng := n.ctx.Rand()
	row, col := rng.Intn(Digits), rng.Intn(Radix)
	if e := n.table[row][col]; !e.IsZero() {
		if _, err := n.client.Ping(e.Addr, n.cfg.RPCTimeout); err != nil {
			n.suspect(e.Addr)
		}
		return
	}
	leaves := n.Leaves()
	if len(leaves) == 0 {
		return
	}
	donor := leaves[rng.Intn(len(leaves))]
	res, err := n.client.Call(donor.Addr, "table_entry", row, col)
	if err != nil {
		n.suspect(donor.Addr)
		return
	}
	var r NodeRef
	if res.Decode(&r) == nil && !r.IsZero() {
		n.stats.TableRepairs++
		n.addRef(r)
	}
}
