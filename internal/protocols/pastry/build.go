package pastry

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// RTTOracle reports round-trip time between two addresses; static builds
// use the testbed's link model to produce converged locality-aware tables.
type RTTOracle func(a, b transport.Addr) time.Duration

// BuildOptions tunes BuildNetwork.
type BuildOptions struct {
	// Oracle enables locality-aware table construction: each slot gets
	// the lowest-RTT node among candidates sharing the required prefix.
	Oracle RTTOracle
	// CandidateSample bounds how many candidates per slot are compared
	// (default 8).
	CandidateSample int
	// Seed drives deterministic slot choices when no oracle is given.
	Seed int64
}

// BuildNetwork statically installs converged leaf sets and routing tables
// into a set of started nodes, standing in for running the join protocol
// when §5.3 measures "a converged Pastry ring" at thousands of nodes. The
// join/maintenance path is exercised by tests and churn experiments.
func BuildNetwork(nodes []*Node, opts BuildOptions) error {
	if len(nodes) == 0 {
		return nil
	}
	if opts.CandidateSample <= 0 {
		opts.CandidateSample = 8
	}
	rng := rand.New(rand.NewSource(opts.Seed + 42))

	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].self.ID < sorted[j].self.ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].self.ID == sorted[i-1].self.ID {
			return fmt.Errorf("pastry: duplicate identifier %s", sorted[i].self.ID)
		}
	}
	refs := make([]NodeRef, len(sorted))
	ids := make([]uint64, len(sorted))
	for i, n := range sorted {
		refs[i] = n.self
		ids[i] = uint64(n.self.ID)
	}
	// searchGE returns the index of the first id ≥ v (len when none).
	searchGE := func(v uint64) int {
		return sort.Search(len(ids), func(i int) bool { return ids[i] >= v })
	}

	for i, n := range sorted {
		// Leaf set: nearest neighbors on each side in identifier order.
		n.left, n.right = nil, nil
		half := n.halfCap()
		for j := 1; j <= half && j < len(sorted); j++ {
			n.right = append(n.right, refs[(i+j)%len(refs)])
			n.left = append(n.left, refs[(i-j+len(refs))%len(refs)])
		}

		// Routing table: for every row and column, the candidate range is
		// the contiguous identifier interval sharing our first `row`
		// digits with column digit `col`.
		for row := 0; row < Digits; row++ {
			shift := uint(64 - DigitBits*(row+1))
			prefix := uint64(n.self.ID) >> (shift + DigitBits) << DigitBits
			myDigit := n.self.ID.Digit(row)
			for col := 0; col < Radix; col++ {
				if col == myDigit {
					continue
				}
				lo := (prefix | uint64(col)) << shift
				var hi uint64
				if shift == 64-DigitBits && col == Radix-1 && prefix == 0 {
					hi = ^uint64(0)
				} else {
					hi = lo + (uint64(1) << shift) - 1
				}
				first := searchGE(lo)
				if first == len(ids) || ids[first] > hi {
					n.table[row][col] = NodeRef{}
					continue
				}
				last := searchGE(hi)
				if last == len(ids) || ids[last] > hi {
					last--
				}
				count := last - first + 1
				if opts.Oracle == nil {
					n.table[row][col] = refs[first+rng.Intn(count)]
					continue
				}
				best := NodeRef{}
				var bestRTT time.Duration
				stride := count/opts.CandidateSample + 1
				for j := first; j <= last; j += stride {
					cand := refs[j]
					rtt := opts.Oracle(n.self.Addr, cand.Addr)
					if best.IsZero() || rtt < bestRTT {
						best, bestRTT = cand, rtt
					}
				}
				n.table[row][col] = best
			}
			// Stop once the prefix is unique to this node: deeper rows
			// have no candidates.
			if row < Digits-1 {
				rowShift := uint(64 - DigitBits*(row+1))
				rowPrefix := uint64(n.self.ID) >> rowShift
				loAll := rowPrefix << rowShift
				firstAll := searchGE(loAll)
				lastAll := firstAll
				hiAll := loAll + (uint64(1) << rowShift) - 1
				for lastAll < len(ids) && ids[lastAll] <= hiAll {
					lastAll++
				}
				if lastAll-firstAll <= 1 {
					break
				}
			}
		}
	}
	return nil
}

// OwnerOf returns the true root of key among the given nodes: the
// ground truth for routing correctness.
func OwnerOf(nodes []*Node, key ID) NodeRef {
	best := nodes[0].self
	for _, n := range nodes[1:] {
		if Closer(key, n.self.ID, best.ID) {
			best = n.self
		}
	}
	return best
}

// CheckLeafsets verifies that every node's leaf set holds exactly its
// nearest identifier-space neighbors, the structural invariant routing
// correctness rests on.
func CheckLeafsets(nodes []*Node) error {
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].self.ID < sorted[j].self.ID })
	for i, n := range sorted {
		half := n.halfCap()
		for j := 1; j <= half && j < len(sorted); j++ {
			wantR := sorted[(i+j)%len(sorted)].self
			if j-1 >= len(n.right) || n.right[j-1].Addr != wantR.Addr {
				return fmt.Errorf("pastry: node %s right[%d] wrong: want %s", n.self, j-1, wantR)
			}
			wantL := sorted[(i-j+len(sorted))%len(sorted)].self
			if j-1 >= len(n.left) || n.left[j-1].Addr != wantL.Addr {
				return fmt.Errorf("pastry: node %s left[%d] wrong: want %s", n.self, j-1, wantL)
			}
		}
	}
	return nil
}
