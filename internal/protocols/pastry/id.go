// Package pastry implements the Pastry structured overlay used throughout
// §5 of the paper: prefix routing with a 2^b-ary routing table, a leaf
// set, locality-aware table construction, and the repair mechanisms the
// churn experiments exercise (Figs. 7, 9, 10, 11). The SPLAY
// implementation is compared against FreePastry by running the same
// protocol under the JVM host model (internal/hostmodel).
package pastry

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strconv"
)

// Identifier geometry: b = 4 (hexadecimal digits), 64-bit identifiers,
// hence 16 rows of 16 columns, matching FreePastry's defaults scaled to a
// 64-bit space.
const (
	DigitBits = 4
	Digits    = 64 / DigitBits // rows in the routing table
	Radix     = 1 << DigitBits // columns per row
)

// ID is a Pastry identifier. It serializes as a 16-hex-digit string so it
// survives JSON untouched (64-bit integers do not fit JSON numbers).
type ID uint64

// String renders the identifier in hex.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON implements json.Marshaler.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (id *ID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("pastry: bad id %q: %w", s, err)
	}
	*id = ID(v)
	return nil
}

// Digit returns the identifier's row-th digit (0 is the most significant).
func (id ID) Digit(row int) int {
	shift := 64 - DigitBits*(row+1)
	return int(uint64(id)>>shift) & (Radix - 1)
}

// CommonPrefix returns the number of leading digits a and b share.
func CommonPrefix(a, b ID) int {
	if a == b {
		return Digits
	}
	return bits.LeadingZeros64(uint64(a)^uint64(b)) / DigitBits
}

// Dist is the circular distance between identifiers: the metric used to
// pick a key's root and the numerically closest leaf.
func Dist(a, b ID) uint64 {
	d := uint64(a) - uint64(b)
	if rd := uint64(b) - uint64(a); rd < d {
		return rd
	}
	return d
}

// CWDist is the clockwise distance from a to b, used to order the leaf
// set's two half-rings.
func CWDist(a, b ID) uint64 { return uint64(b) - uint64(a) }

// Closer reports whether x is strictly closer to key than y, breaking
// ties toward the lower identifier so every node agrees on roots.
func Closer(key, x, y ID) bool {
	dx, dy := Dist(x, key), Dist(y, key)
	if dx != dy {
		return dx < dy
	}
	return x < y
}
