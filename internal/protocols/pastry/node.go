package pastry

import (
	"errors"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// Instruments is the protocol's optional metric set for the
// observability plane. The zero value disables everything; increments
// are pure memory operations, so attaching instruments never perturbs
// simulation schedules.
type Instruments struct {
	Routes     *metrics.Counter
	RouteFails *metrics.Counter
	Forwards   *metrics.Counter
	Hops       *metrics.Histogram // route length, linear buckets
	Latency    *metrics.Histogram // route wall time, pow2 ns buckets
}

// NewInstruments registers the protocol's canonical series on reg
// ("pastry." prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		Routes:     reg.Counter("pastry.routes"),
		RouteFails: reg.Counter("pastry.route_fails"),
		Forwards:   reg.Counter("pastry.forwards"),
		Hops:       reg.Histogram("pastry.hops", metrics.KindHistLinear),
		Latency:    reg.Histogram("pastry.route_latency_ns", metrics.KindHistPow2),
	}
}

// NodeRef names a Pastry node.
type NodeRef struct {
	ID   ID             `json:"id"`
	Addr transport.Addr `json:"addr"`
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.Addr.IsZero() }

func (r NodeRef) String() string { return fmt.Sprintf("%s@%s", r.ID, r.Addr) }

// Config parameterizes a node.
type Config struct {
	// ID fixes the identifier; nil hashes the address.
	ID *ID
	// LeafSize is the total leaf-set size (split between the two sides);
	// FreePastry's default is 16 and our implementation is functionally
	// identical (§5.3).
	LeafSize int
	// MaintainEvery is the leaf-set/table maintenance period.
	MaintainEvery time.Duration
	// RPCTimeout bounds every remote call.
	RPCTimeout time.Duration
	// LatencyAware keeps the lower-RTT candidate when a routing-table
	// slot is contested: the paper's "locality-aware routing table
	// construction".
	LatencyAware bool
}

// DefaultConfig mirrors the FreePastry-comparable setup of §5.3.
func DefaultConfig() Config {
	return Config{
		LeafSize:      16,
		MaintainEvery: 10 * time.Second,
		RPCTimeout:    30 * time.Second,
		LatencyAware:  true,
	}
}

// RouteResult reports one resolved key.
type RouteResult struct {
	Root NodeRef
	Hops int
	RTT  time.Duration
}

// Stats counts protocol activity.
type Stats struct {
	Routes       uint64 // Route invocations at this node
	RouteFails   uint64
	Forwards     uint64 // route messages forwarded
	Suspected    uint64
	Maintenance  uint64
	TableRepairs uint64
}

// ErrRouteFailed is returned when a message cannot make progress.
var ErrRouteFailed = errors.New("pastry: route failed")

// Node is one Pastry instance.
type Node struct {
	ctx  *core.AppContext
	cfg  Config
	self NodeRef

	left  []NodeRef // counter-clockwise leaves, nearest first
	right []NodeRef // clockwise leaves, nearest first
	table [Digits][Radix]NodeRef

	client  *rpc.Client
	server  *rpc.Server
	selfArg any // self pre-encoded once for join/announce calls
	stats   Stats
	ins     Instruments
	stops   []func()
}

// SetInstruments attaches instruments to the node.
func (n *Node) SetInstruments(ins Instruments) { n.ins = ins }

// New creates a node bound to ctx; its address is ctx.Job.Me.
func New(ctx *core.AppContext, cfg Config) *Node {
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = 16
	}
	if cfg.MaintainEvery <= 0 {
		cfg.MaintainEvery = 10 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 30 * time.Second
	}
	id := hashAddr(ctx.Job.Me)
	if cfg.ID != nil {
		id = *cfg.ID
	}
	n := &Node{
		ctx:  ctx,
		cfg:  cfg,
		self: NodeRef{ID: id, Addr: ctx.Job.Me},
	}
	n.client = rpc.NewClient(ctx)
	n.client.Timeout = cfg.RPCTimeout
	n.selfArg = rpc.PreEncode(n.self)
	return n
}

func hashAddr(a transport.Addr) ID {
	// FNV-1a over the address string: deterministic, well spread.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range []byte(a.String()) {
		h ^= uint64(c)
		h *= prime
	}
	return ID(h)
}

// Self returns the node's reference.
func (n *Node) Self() NodeRef { return n.self }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Leaves returns the current leaf set (both sides, nearest first).
func (n *Node) Leaves() []NodeRef {
	out := make([]NodeRef, 0, len(n.left)+len(n.right))
	out = append(out, n.left...)
	out = append(out, n.right...)
	return out
}

// Start registers RPC handlers and serves on the node's port.
func (n *Node) Start() error {
	s := rpc.NewServer(n.ctx)
	s.Register("route", n.handleRoute)
	s.Register("join_route", n.handleJoinRoute)
	s.Register("leafset", n.handleLeafset)
	s.Register("announce", n.handleAnnounce)
	s.Register("table_entry", n.handleTableEntry)
	if err := s.Start(n.ctx.Job.Me.Port); err != nil {
		return err
	}
	n.server = s
	return nil
}

// StartMaintenance launches periodic leaf-set and routing-table repair,
// the stabilization mechanisms §5.3 notes are functionally identical to
// FreePastry's.
func (n *Node) StartMaintenance() {
	n.stops = append(n.stops, n.ctx.Periodic(n.cfg.MaintainEvery, n.Maintain))
}

// Stop halts maintenance and the RPC server.
func (n *Node) Stop() {
	for _, stop := range n.stops {
		stop()
	}
	n.stops = nil
	if n.server != nil {
		n.server.Close()
	}
}

// ---- Leaf-set bookkeeping ----

// halfCap is the per-side leaf capacity.
func (n *Node) halfCap() int { return n.cfg.LeafSize / 2 }

// addRef folds a discovered node into the leaf set and routing table.
func (n *Node) addRef(r NodeRef) {
	if r.IsZero() || r.Addr == n.self.Addr {
		return
	}
	n.leafInsert(r)
	n.tableInsert(r)
}

func (n *Node) leafInsert(r NodeRef) {
	insert := func(side []NodeRef, dist func(ID) uint64) []NodeRef {
		d := dist(r.ID)
		for i, x := range side {
			if x.Addr == r.Addr {
				return side
			}
			if d < dist(x.ID) {
				side = append(side[:i], append([]NodeRef{r}, side[i:]...)...)
				if len(side) > n.halfCap() {
					side = side[:n.halfCap()]
				}
				return side
			}
		}
		if len(side) < n.halfCap() {
			side = append(side, r)
		}
		return side
	}
	n.right = insert(n.right, func(id ID) uint64 { return CWDist(n.self.ID, id) })
	n.left = insert(n.left, func(id ID) uint64 { return CWDist(id, n.self.ID) })
}

func (n *Node) tableInsert(r NodeRef) {
	row := CommonPrefix(n.self.ID, r.ID)
	if row >= Digits {
		return
	}
	col := r.ID.Digit(row)
	cur := n.table[row][col]
	if cur.IsZero() {
		n.table[row][col] = r
		return
	}
	if cur.Addr == r.Addr || !n.cfg.LatencyAware {
		return
	}
	// Locality-aware: keep the lower-RTT candidate. Only probe when the
	// entry is contested, which keeps maintenance cheap.
	n.ctx.Go(func() {
		curRTT, errCur := n.client.Ping(cur.Addr, n.cfg.RPCTimeout)
		newRTT, errNew := n.client.Ping(r.Addr, n.cfg.RPCTimeout)
		if errCur != nil && errNew == nil {
			n.table[row][col] = r
			return
		}
		if errCur == nil && errNew == nil && newRTT < curRTT && n.table[row][col].Addr == cur.Addr {
			n.table[row][col] = r
		}
	})
}

// suspect removes a peer everywhere after a failed interaction.
func (n *Node) suspect(addr transport.Addr) {
	n.stats.Suspected++
	drop := func(side []NodeRef) []NodeRef {
		kept := side[:0]
		for _, x := range side {
			if x.Addr != addr {
				kept = append(kept, x)
			}
		}
		return kept
	}
	n.left = drop(n.left)
	n.right = drop(n.right)
	for r := range n.table {
		for c := range n.table[r] {
			if n.table[r][c].Addr == addr {
				n.table[r][c] = NodeRef{}
			}
		}
	}
}

// known enumerates every reference this node holds.
func (n *Node) known(yield func(NodeRef) bool) {
	for _, l := range n.left {
		if !yield(l) {
			return
		}
	}
	for _, l := range n.right {
		if !yield(l) {
			return
		}
	}
	for r := range n.table {
		for c := range n.table[r] {
			if e := n.table[r][c]; !e.IsZero() {
				if !yield(e) {
					return
				}
			}
		}
	}
}

// ---- Routing ----

// inLeafRange reports whether key falls inside the arc covered by the
// leaf set (leftmost … self … rightmost).
func (n *Node) inLeafRange(key ID) bool {
	if len(n.left) == 0 || len(n.right) == 0 {
		return false
	}
	lo := n.left[len(n.left)-1].ID
	hi := n.right[len(n.right)-1].ID
	return CWDist(lo, key) <= CWDist(lo, hi)
}

// NextHop makes Pastry's local routing decision for key: the next node to
// forward to, or root == true when this node is the key's root. It is
// exported so protocols built on Pastry (Scribe, SplitStream, the web
// cache) can walk routes hop by hop.
func (n *Node) NextHop(key ID) (next NodeRef, root bool) {
	if key == n.self.ID {
		return n.self, true
	}
	if n.inLeafRange(key) {
		best := n.self
		for _, l := range n.Leaves() {
			if Closer(key, l.ID, best.ID) {
				best = l
			}
		}
		if best.Addr == n.self.Addr {
			return n.self, true
		}
		return best, false
	}
	r := CommonPrefix(key, n.self.ID)
	if r < Digits {
		if e := n.table[r][key.Digit(r)]; !e.IsZero() {
			return e, false
		}
	}
	// Rare case: any known node at least as prefix-close and strictly
	// numerically closer.
	best := n.self
	n.known(func(c NodeRef) bool {
		if CommonPrefix(c.ID, key) >= r && Closer(key, c.ID, best.ID) {
			best = c
		}
		return true
	})
	if best.Addr == n.self.Addr {
		return n.self, true
	}
	return best, false
}

// routeResult travels on the wire.
type routeResult struct {
	Root NodeRef `json:"root"`
	Hops int     `json:"hops"`
}

func (n *Node) handleRoute(args rpc.Args) (any, error) {
	var key ID
	if err := args.Decode(0, &key); err != nil {
		return nil, err
	}
	return n.route(key, args.Int(1))
}

// route resolves key recursively with per-hop failure recovery: a dead
// next hop is suspected and an alternative chosen, FreePastry's
// "choice of alternate routes upon failure" counterpart.
func (n *Node) route(key ID, hops int) (routeResult, error) {
	for attempt := 0; attempt < 4; attempt++ {
		next, root := n.NextHop(key)
		if root {
			return routeResult{Root: n.self, Hops: hops}, nil
		}
		n.stats.Forwards++
		n.ins.Forwards.Inc()
		res, err := n.client.Call(next.Addr, "route", key, hops+1)
		if err != nil {
			n.suspect(next.Addr)
			continue
		}
		var rr routeResult
		if err := res.Decode(&rr); err != nil {
			return routeResult{}, err
		}
		return rr, nil
	}
	return routeResult{}, ErrRouteFailed
}

// Route resolves the root of key from this node, reporting route length
// and latency — the measurement behind Figs. 7, 9, 10 and 11.
func (n *Node) Route(key ID) (RouteResult, error) {
	n.stats.Routes++
	n.ins.Routes.Inc()
	start := n.ctx.Now()
	rr, err := n.route(key, 0)
	if err != nil {
		n.stats.RouteFails++
		n.ins.RouteFails.Inc()
		return RouteResult{}, err
	}
	rtt := n.ctx.Now().Sub(start)
	n.ins.Hops.Observe(int64(rr.Hops))
	n.ins.Latency.Observe(int64(rtt))
	return RouteResult{Root: rr.Root, Hops: rr.Hops, RTT: rtt}, nil
}

func (n *Node) handleLeafset(rpc.Args) (any, error) {
	return append(n.Leaves(), n.self), nil
}

func (n *Node) handleAnnounce(args rpc.Args) (any, error) {
	var r NodeRef
	if err := args.Decode(0, &r); err != nil {
		return nil, err
	}
	n.addRef(r)
	return nil, nil
}

func (n *Node) handleTableEntry(args rpc.Args) (any, error) {
	row, col := args.Int(0), args.Int(1)
	if row < 0 || row >= Digits || col < 0 || col >= Radix {
		return nil, fmt.Errorf("pastry: bad table coordinates %d/%d", row, col)
	}
	e := n.table[row][col]
	if e.IsZero() {
		return nil, nil
	}
	return e, nil
}
