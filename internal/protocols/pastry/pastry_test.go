package pastry

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func TestIDJSONRoundTrip(t *testing.T) {
	for _, id := range []ID{0, 1, 0xdeadbeefcafe1234, ^ID(0)} {
		data, err := json.Marshal(id)
		if err != nil {
			t.Fatal(err)
		}
		var out ID
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out != id {
			t.Fatalf("round trip %s -> %s", id, out)
		}
	}
	var bad ID
	if err := json.Unmarshal([]byte(`"zz"`), &bad); err == nil {
		t.Fatal("parsed invalid id")
	}
}

func TestDigitsAndPrefix(t *testing.T) {
	id := ID(0x123456789abcdef0)
	if id.Digit(0) != 1 || id.Digit(1) != 2 || id.Digit(15) != 0 {
		t.Fatalf("digits wrong: %d %d %d", id.Digit(0), id.Digit(1), id.Digit(15))
	}
	if CommonPrefix(0x1234000000000000, 0x1235000000000000) != 3 {
		t.Fatal("prefix wrong")
	}
	if CommonPrefix(5, 5) != Digits {
		t.Fatal("self prefix wrong")
	}
}

func TestQuickPrefixDigitConsistency(t *testing.T) {
	f := func(a, b uint64) bool {
		p := CommonPrefix(ID(a), ID(b))
		for i := 0; i < p; i++ {
			if ID(a).Digit(i) != ID(b).Digit(i) {
				return false
			}
		}
		if p < Digits && ID(a).Digit(p) == ID(b).Digit(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistSymmetry(t *testing.T) {
	f := func(a, b uint64) bool {
		if Dist(ID(a), ID(b)) != Dist(ID(b), ID(a)) {
			return false
		}
		return Dist(ID(a), ID(a)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// testNet builds n started Pastry nodes over a symmetric network.
type testNet struct {
	k     *sim.Kernel
	nw    *simnet.Network
	rt    *core.SimRuntime
	nodes []*Node
	ctxs  []*core.AppContext
}

func newTestNet(t *testing.T, n int, cfg Config, seed int64) *testNet {
	t.Helper()
	k := sim.NewKernel()
	tn := &testNet{
		k:  k,
		nw: simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, n, seed),
		rt: core.NewSimRuntime(k, seed),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(tn.rt, tn.nw.Node(i), core.JobInfo{Me: addr, Position: i + 1}, nil)
		c := cfg
		id := ID(rng.Uint64())
		c.ID = &id
		tn.nodes = append(tn.nodes, New(ctx, c))
		tn.ctxs = append(tn.ctxs, ctx)
	}
	tn.k.Go(func() {
		for _, node := range tn.nodes {
			if err := node.Start(); err != nil {
				t.Errorf("start: %v", err)
			}
		}
	})
	tn.k.Run()
	return tn
}

func TestStaticBuildRouting(t *testing.T) {
	tn := newTestNet(t, 256, DefaultConfig(), 1)
	if err := BuildNetwork(tn.nodes, BuildOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := CheckLeafsets(tn.nodes); err != nil {
		t.Fatal(err)
	}
	hops, routes := 0, 0
	tn.k.Go(func() {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 300; i++ {
			src := tn.nodes[rng.Intn(len(tn.nodes))]
			key := ID(rng.Uint64())
			res, err := src.Route(key)
			if err != nil {
				t.Errorf("route: %v", err)
				continue
			}
			if want := OwnerOf(tn.nodes, key); res.Root.Addr != want.Addr {
				t.Errorf("route(%s) = %s, want %s", key, res.Root, want)
			}
			hops += res.Hops
			routes++
		}
	})
	tn.k.Run()
	mean := float64(hops) / float64(routes)
	// log16(256) = 2; with leafset shortcuts the mean sits near 2.
	if mean > 3.5 {
		t.Fatalf("mean hops %.2f too high for 256 nodes", mean)
	}
}

func TestJoinProtocol(t *testing.T) {
	tn := newTestNet(t, 24, DefaultConfig(), 3)
	seed := tn.nodes[0].Self().Addr
	for i := 1; i < len(tn.nodes); i++ {
		i := i
		tn.k.GoAfter(time.Duration(i)*time.Second, func() {
			if err := tn.nodes[i].Join(seed); err != nil {
				t.Errorf("join %d: %v", i, err)
			}
		})
	}
	tn.k.Go(func() {
		for _, n := range tn.nodes {
			n.StartMaintenance()
		}
	})
	tn.k.RunFor(4 * time.Minute)

	ok := 0
	tn.k.Go(func() {
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 100; i++ {
			src := tn.nodes[rng.Intn(len(tn.nodes))]
			key := ID(rng.Uint64())
			res, err := src.Route(key)
			if err != nil {
				continue
			}
			if want := OwnerOf(tn.nodes, key); res.Root.Addr == want.Addr {
				ok++
			}
		}
	})
	tn.k.RunFor(5 * time.Minute)
	if ok < 97 {
		t.Fatalf("only %d/100 routes correct after joins", ok)
	}
}

func TestRepairAfterFailures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RPCTimeout = 5 * time.Second
	cfg.MaintainEvery = 5 * time.Second
	tn := newTestNet(t, 64, cfg, 5)
	if err := BuildNetwork(tn.nodes, BuildOptions{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	tn.k.Go(func() {
		for _, n := range tn.nodes {
			n.StartMaintenance()
		}
	})
	// Kill 25% of nodes at t = 20s.
	rng := rand.New(rand.NewSource(6))
	dead := map[int]bool{}
	for len(dead) < 16 {
		dead[rng.Intn(64)] = true
	}
	tn.k.GoAfter(20*time.Second, func() {
		for i := range dead {
			tn.nw.Host(i).SetDown(true)
			tn.ctxs[i].Kill()
		}
	})
	tn.k.RunFor(5 * time.Minute)

	var live []*Node
	for i, n := range tn.nodes {
		if !dead[i] {
			live = append(live, n)
		}
	}
	ok, fails := 0, 0
	tn.k.Go(func() {
		for i := 0; i < 100; i++ {
			src := live[rng.Intn(len(live))]
			key := ID(rng.Uint64())
			res, err := src.Route(key)
			if err != nil {
				fails++
				continue
			}
			if want := OwnerOf(live, key); res.Root.Addr == want.Addr {
				ok++
			} else {
				fails++
			}
		}
	})
	tn.k.RunFor(10 * time.Minute)
	if ok < 95 {
		t.Fatalf("after repair: %d ok, %d failed", ok, fails)
	}
}

func TestRouteFailsWithoutAlternates(t *testing.T) {
	// A two-node net where the peer dies: routing to its id range fails
	// after suspicion exhausts alternates (an honest route failure).
	tn := newTestNet(t, 2, DefaultConfig(), 7)
	if err := BuildNetwork(tn.nodes, BuildOptions{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	var rerr error
	tn.k.Go(func() {
		tn.nw.Host(1).SetDown(true)
		_, rerr = tn.nodes[0].Route(tn.nodes[1].Self().ID)
	})
	tn.k.Run()
	if rerr != nil {
		// Acceptable: route failed cleanly.
		return
	}
	// Also acceptable: node 0 becomes root itself after suspecting the
	// peer — then the route result must be node 0.
}

func TestLeafInsertOrderingProperty(t *testing.T) {
	k := sim.NewKernel()
	rt := core.NewSimRuntime(k, 1)
	nw := simnet.New(k, simnet.Symmetric{}, 1, 1)
	ctx := core.NewAppContext(rt, nw.Node(0), core.JobInfo{Me: transport.Addr{Host: "n0", Port: 9000}}, nil)
	cfg := DefaultConfig()
	id := ID(1 << 63)
	cfg.ID = &id
	n := New(ctx, cfg)

	f := func(raw []uint64) bool {
		n.left, n.right = nil, nil
		for i, v := range raw {
			n.leafInsert(NodeRef{ID: ID(v), Addr: transport.Addr{Host: "x", Port: i + 1}})
		}
		// Right side must be sorted by clockwise distance, left by
		// counter-clockwise; capacity respected.
		if len(n.right) > n.halfCap() || len(n.left) > n.halfCap() {
			return false
		}
		for i := 1; i < len(n.right); i++ {
			if CWDist(n.self.ID, n.right[i-1].ID) > CWDist(n.self.ID, n.right[i].ID) {
				return false
			}
		}
		for i := 1; i < len(n.left); i++ {
			if CWDist(n.left[i-1].ID, n.self.ID) > CWDist(n.left[i].ID, n.self.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNextHopConvergesToOwner(t *testing.T) {
	// Pure local-decision walk (no RPC) must reach the true owner in a
	// bounded number of steps on a converged network.
	tn := newTestNet(t, 128, DefaultConfig(), 8)
	if err := BuildNetwork(tn.nodes, BuildOptions{Seed: 8}); err != nil {
		t.Fatal(err)
	}
	byAddr := map[string]*Node{}
	for _, n := range tn.nodes {
		byAddr[n.Self().Addr.String()] = n
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		key := ID(rng.Uint64())
		cur := tn.nodes[rng.Intn(len(tn.nodes))]
		steps := 0
		for {
			next, root := cur.NextHop(key)
			if root {
				break
			}
			cur = byAddr[next.Addr.String()]
			steps++
			if steps > 10 {
				t.Fatalf("walk for %s did not converge", key)
			}
		}
		if want := OwnerOf(tn.nodes, key); cur.Self().Addr != want.Addr {
			t.Fatalf("walk(%s) ended at %s, want %s", key, cur.Self(), want)
		}
	}
}
