package trees

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func TestBuildTreesStructure(t *testing.T) {
	const nodes, fanout, k = 64, 2, 2
	ch := BuildTrees(nodes, fanout, k)
	if len(ch) != k {
		t.Fatalf("trees = %d", len(ch))
	}
	for tr := 0; tr < k; tr++ {
		// Every non-source node appears exactly once as a child.
		seen := map[int]int{}
		for p := 0; p < nodes; p++ {
			for _, c := range ch[tr][p] {
				seen[c]++
			}
		}
		for i := 1; i < nodes; i++ {
			if seen[i] != 1 {
				t.Fatalf("tree %d: node %d appears %d times", tr, i, seen[i])
			}
		}
		// Fanout respected (the source feeds one root).
		if len(ch[tr][0]) != 1 {
			t.Fatalf("tree %d: source has %d children", tr, len(ch[tr][0]))
		}
		for p := 1; p < nodes; p++ {
			if len(ch[tr][p]) > fanout {
				t.Fatalf("tree %d: node %d has %d children", tr, p, len(ch[tr][p]))
			}
		}
	}
	// SplitStream property: a node with children in tree t must be a
	// designated inner node for t (i mod k == t).
	for tr := 0; tr < k; tr++ {
		for p := 1; p < nodes; p++ {
			if len(ch[tr][p]) > 0 && p%k != tr {
				t.Fatalf("node %d is inner in tree %d but assigned to tree %d", p, tr, p%k)
			}
		}
	}
}

func TestQuickBuildTreesCoverAllNodes(t *testing.T) {
	f := func(n, fanout, k uint8) bool {
		nodes := int(n)%60 + 3
		fo := int(fanout)%3 + 1
		trees := int(k)%3 + 1
		ch := BuildTrees(nodes, fo, trees)
		for tr := 0; tr < trees; tr++ {
			seen := map[int]bool{}
			var walk func(p int)
			walk = func(p int) {
				for _, c := range ch[tr][p] {
					if seen[c] {
						return
					}
					seen[c] = true
					walk(c)
				}
			}
			walk(0)
			if len(seen) != nodes-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func runSession(t *testing.T, cfg Config, bps float64) (*Session, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond, Bps: bps}, cfg.Nodes, 1)
	rt := core.NewSimRuntime(k, 1)
	var ctxs []*core.AppContext
	for i := 0; i < cfg.Nodes; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: cfg.Port}
		ctxs = append(ctxs, core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr, Position: i + 1}, nil))
	}
	var sess *Session
	k.Go(func() {
		var err error
		sess, err = NewSession(cfg, ctxs)
		if err != nil {
			t.Errorf("session: %v", err)
			return
		}
		if err := sess.Start(); err != nil {
			t.Errorf("start: %v", err)
		}
	})
	k.RunFor(30 * time.Minute)
	return sess, k
}

func TestDisseminationCompletes(t *testing.T) {
	cfg := Config{Nodes: 16, Fanout: 2, Trees: 2, FileSize: 1 << 20, BlockSize: 64 << 10, Port: 7000}
	sess, _ := runSession(t, cfg, 1<<20)
	if sess.Completed() != cfg.Nodes-1 {
		t.Fatalf("completed = %d, want %d", sess.Completed(), cfg.Nodes-1)
	}
	for i := 1; i < cfg.Nodes; i++ {
		if sess.Completions[i].IsZero() {
			t.Fatalf("node %d never completed", i)
		}
	}
}

func TestSequentialCompletes(t *testing.T) {
	cfg := Config{Nodes: 16, Fanout: 2, Trees: 2, FileSize: 1 << 20, BlockSize: 64 << 10, Port: 7000, Sequential: true}
	sess, _ := runSession(t, cfg, 1<<20)
	if sess.Completed() != cfg.Nodes-1 {
		t.Fatalf("completed = %d, want %d", sess.Completed(), cfg.Nodes-1)
	}
}

func TestThroughputBoundedByBandwidth(t *testing.T) {
	// 1 MB through trees on 1 MB/s links: the file cannot arrive faster
	// than size/bw plus propagation, and should not take more than a few
	// multiples of it.
	cfg := Config{Nodes: 8, Fanout: 2, Trees: 2, FileSize: 1 << 20, BlockSize: 128 << 10, Port: 7000}
	sess, k := runSession(t, cfg, 1<<20)
	if sess.Completed() != cfg.Nodes-1 {
		t.Fatalf("incomplete: %d", sess.Completed())
	}
	var last time.Time
	for i := 1; i < cfg.Nodes; i++ {
		if sess.Completions[i].After(last) {
			last = sess.Completions[i]
		}
	}
	elapsed := last.Sub(sim.Epoch)
	if elapsed < time.Second {
		t.Fatalf("finished in %s, faster than line rate", elapsed)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("finished in %s, far beyond line rate", elapsed)
	}
	_ = k
}

func TestParallelBeatsSequentialIntermediate(t *testing.T) {
	// With saturated links the last completion is similar, but sequential
	// sending (CRCP) delays the second child of each node: intermediate
	// completions arrive later on average. This is the Fig. 13 shape.
	base := Config{Nodes: 32, Fanout: 2, Trees: 2, FileSize: 4 << 20, BlockSize: 256 << 10, Port: 7000}
	par, _ := runSession(t, base, 1<<20)
	seq := base
	seq.Sequential = true
	ser, _ := runSession(t, seq, 1<<20)

	if par.Completed() != 31 || ser.Completed() != 31 {
		t.Fatalf("incomplete runs: %d / %d", par.Completed(), ser.Completed())
	}
	mean := func(s *Session) time.Duration {
		var sum time.Duration
		for i := 1; i < base.Nodes; i++ {
			sum += s.Completions[i].Sub(sim.Epoch)
		}
		return sum / time.Duration(base.Nodes-1)
	}
	mp, ms := mean(par), mean(ser)
	// The two policies must be in the same ballpark (paper: "similar
	// results") with sequential no faster on average.
	if mp > ms*3/2 {
		t.Fatalf("parallel mean %s much worse than sequential %s", mp, ms)
	}
	if ms < mp*9/10 {
		t.Fatalf("sequential mean %s implausibly beats parallel %s", ms, mp)
	}
}
