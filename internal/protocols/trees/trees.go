// Package trees implements cooperative content dissemination over
// parallel n-ary distribution trees, the protocol of §5.7 / Fig. 13. The
// content is split into blocks; block b is pushed down tree (b mod k),
// SplitStream-style: every node is an inner member of one tree and a leaf
// in the others, so each node's uplink is used by exactly one tree.
//
// Two forwarding policies are provided, matching the paper's comparison:
// SPLAY nodes forward a block to their children in parallel, while the
// CRCP baseline (a native C implementation) sends to children
// sequentially. Under saturated symmetric links this changes the shape of
// the completion curve but not the completion time of the last peer.
package trees

import (
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// Config parameterizes a dissemination session. Node 0 is the source; it
// feeds the root of every tree.
type Config struct {
	Nodes      int  // participants, including the source
	Fanout     int  // n-ary trees
	Trees      int  // number of parallel trees (k)
	FileSize   int  // bytes
	BlockSize  int  // bytes
	Sequential bool // CRCP mode: send to children one after another
	Port       int
}

// Validate fills defaults and checks consistency.
func (c *Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("trees: need at least two nodes")
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.Trees <= 0 {
		c.Trees = 2
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 128 << 10
	}
	if c.FileSize <= 0 {
		return fmt.Errorf("trees: empty file")
	}
	if c.Port == 0 {
		c.Port = 7000
	}
	return nil
}

// NumBlocks returns the block count for the configuration.
func (c *Config) NumBlocks() int {
	return (c.FileSize + c.BlockSize - 1) / c.BlockSize
}

// BuildTrees computes, for every tree, each member's children. Member 0
// (the source) is the root of every tree; the remaining members are
// arranged so that node i is an inner node only in tree i mod k
// (SplitStream's "inner member in one tree, leaf in the others").
func BuildTrees(nodes, fanout, trees int) [][][]int {
	children := make([][][]int, trees)
	for t := 0; t < trees; t++ {
		// Order the non-source members: those designated inner for this
		// tree first (they occupy the top positions), the rest below.
		var order []int
		for i := 1; i < nodes; i++ {
			if i%trees == t {
				order = append(order, i)
			}
		}
		for i := 1; i < nodes; i++ {
			if i%trees != t {
				order = append(order, i)
			}
		}
		ch := make([][]int, nodes)
		if len(order) > 0 {
			ch[0] = []int{order[0]}
		}
		for p := range order {
			for c := 1; c <= fanout; c++ {
				childPos := p*fanout + c
				if childPos < len(order) {
					ch[order[p]] = append(ch[order[p]], order[childPos])
				}
			}
		}
		children[t] = ch
	}
	return children
}

// block is one framed content unit.
type block struct {
	Tree  int    `json:"t"`
	Index int    `json:"i"`
	Data  []byte `json:"d"`
}

// Session is one running dissemination: per-node state plus global
// completion results (written in virtual time by node tasks).
type Session struct {
	cfg      Config
	children [][][]int
	ctxs     []*core.AppContext

	// Completions[i] is the time node i finished (zero while pending).
	Completions []time.Time
	start       time.Time
	completed   int
}

// NewSession prepares a dissemination over the given per-node contexts
// (ctxs[0] is the source).
func NewSession(cfg Config, ctxs []*core.AppContext) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ctxs) != cfg.Nodes {
		return nil, fmt.Errorf("trees: %d contexts for %d nodes", len(ctxs), cfg.Nodes)
	}
	return &Session{
		cfg:         cfg,
		children:    BuildTrees(cfg.Nodes, cfg.Fanout, cfg.Trees),
		ctxs:        ctxs,
		Completions: make([]time.Time, cfg.Nodes),
	}, nil
}

// Completed reports how many nodes have the whole file.
func (s *Session) Completed() int { return s.completed }

// Start launches every participant and then the source. Completion times
// accumulate in s.Completions as the simulation runs.
func (s *Session) Start() error {
	s.start = s.ctxs[0].Now()
	for i := 1; i < s.cfg.Nodes; i++ {
		n := newNode(s, i)
		if err := n.listen(); err != nil {
			return err
		}
	}
	src := newNode(s, 0)
	src.got = s.cfg.NumBlocks() // the source has everything
	s.ctxs[0].Go(src.pushSource)
	return nil
}

// node is one participant's dissemination state.
type node struct {
	s    *Session
	idx  int
	ctx  *core.AppContext
	got  int
	have []bool

	// outbox per (tree, child): a dedicated writer task drains it so
	// parallel forwarding interleaves naturally on the uplink.
	writers map[string]*childWriter
}

func newNode(s *Session, idx int) *node {
	return &node{
		s:       s,
		idx:     idx,
		ctx:     s.ctxs[idx],
		have:    make([]bool, s.cfg.NumBlocks()),
		writers: make(map[string]*childWriter),
	}
}

func (n *node) addr(i int) transport.Addr {
	return transport.Addr{Host: n.s.ctxs[i].Job.Me.Host, Port: n.s.cfg.Port}
}

func (n *node) listen() error {
	l, err := n.ctx.Node().Listen(n.s.cfg.Port)
	if err != nil {
		return err
	}
	n.ctx.Track(l)
	n.ctx.Go(func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			n.ctx.Track(conn)
			n.ctx.Go(func() { n.receive(conn) })
		}
	})
	return nil
}

func (n *node) receive(conn transport.Conn) {
	dec := llenc.NewReader(conn)
	for {
		var b block
		if err := dec.Decode(&b); err != nil {
			return
		}
		n.onBlock(b)
	}
}

func (n *node) onBlock(b block) {
	if b.Index < 0 || b.Index >= len(n.have) || n.have[b.Index] {
		return
	}
	n.have[b.Index] = true
	n.got++
	if n.got == n.s.cfg.NumBlocks() && n.s.Completions[n.idx].IsZero() {
		n.s.Completions[n.idx] = n.ctx.Now()
		n.s.completed++
	}
	n.forward(b)
}

// forward pushes a block to this node's children in the block's tree.
func (n *node) forward(b block) {
	kids := n.s.children[b.Tree][n.idx]
	if len(kids) == 0 {
		return
	}
	if n.s.cfg.Sequential {
		// CRCP: one writer per tree sends to each child in turn.
		w := n.writer(fmt.Sprintf("t%d", b.Tree), kids)
		w.enqueue(b)
		return
	}
	// SPLAY: an independent writer per child; sends proceed in parallel.
	for _, kid := range kids {
		w := n.writer(fmt.Sprintf("t%d-c%d", b.Tree, kid), []int{kid})
		w.enqueue(b)
	}
}

// pushSource streams the file: block b down tree b mod k, round-robin.
func (n *node) pushSource() {
	total := n.s.cfg.NumBlocks()
	for i := 0; i < total; i++ {
		size := n.s.cfg.BlockSize
		if rem := n.s.cfg.FileSize - i*n.s.cfg.BlockSize; rem < size {
			size = rem
		}
		b := block{Tree: i % n.s.cfg.Trees, Index: i, Data: make([]byte, size)}
		n.forward(b)
	}
}

// childWriter owns the connections to a set of children and drains a FIFO
// of blocks toward them.
type childWriter struct {
	n     *node
	kids  []int
	queue []block
	wake  core.Waiter
	conns map[int]*llenc.Writer
}

func (n *node) writer(key string, kids []int) *childWriter {
	if w, ok := n.writers[key]; ok {
		return w
	}
	w := &childWriter{n: n, kids: kids, conns: make(map[int]*llenc.Writer)}
	n.writers[key] = w
	n.ctx.Go(w.run)
	return w
}

func (w *childWriter) enqueue(b block) {
	w.queue = append(w.queue, b)
	if w.wake != nil {
		w.wake.Wake(nil)
		w.wake = nil
	}
}

func (w *childWriter) conn(kid int) (*llenc.Writer, error) {
	if c, ok := w.conns[kid]; ok {
		return c, nil
	}
	conn, err := w.n.ctx.Node().Dial(w.n.addr(kid), time.Minute)
	if err != nil {
		return nil, err
	}
	w.n.ctx.Track(conn)
	enc := llenc.NewWriter(conn)
	w.conns[kid] = enc
	return enc, nil
}

func (w *childWriter) run() {
	for !w.n.ctx.Killed() {
		if len(w.queue) == 0 {
			w.wake = w.n.ctx.NewWaiter()
			w.wake.Wait()
			continue
		}
		b := w.queue[0]
		w.queue = w.queue[1:]
		for _, kid := range w.kids {
			enc, err := w.conn(kid)
			if err != nil {
				continue
			}
			enc.Encode(b) //nolint:errcheck // dead children just miss blocks
		}
	}
}
