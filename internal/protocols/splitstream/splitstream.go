// Package splitstream implements SplitStream-style high-bandwidth
// multicast over Pastry and Scribe (§5.1): content is striped across k
// Scribe groups whose identifiers start with k distinct digits, so the
// per-stripe trees have (largely) disjoint interior nodes and the
// forwarding load spreads across the membership.
package splitstream

import (
	"encoding/json"
	"fmt"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/protocols/scribe"
)

// Block is one striped content unit.
type Block struct {
	Seq  int    `json:"seq"`
	Data []byte `json:"data"`
}

// Config parameterizes a SplitStream session.
type Config struct {
	// Stripes is k, the number of per-digit stripes (≤ pastry.Radix).
	Stripes int
	// StreamID names the stream; stripe groups derive from it.
	StreamID string
}

// DefaultConfig uses 16 stripes, one per identifier digit.
func DefaultConfig(stream string) Config {
	return Config{Stripes: pastry.Radix, StreamID: stream}
}

// StripeGroups derives the k stripe group identifiers: the stream hash
// with the leading digit forced to each possible value, which is what
// makes the trees' interiors disjoint in SplitStream.
func StripeGroups(cfg Config) []scribe.GroupID {
	base := scribe.GroupOf(cfg.StreamID)
	groups := make([]scribe.GroupID, cfg.Stripes)
	for i := 0; i < cfg.Stripes; i++ {
		groups[i] = (base & (^pastry.ID(0) >> pastry.DigitBits)) |
			(pastry.ID(i) << (64 - pastry.DigitBits))
	}
	return groups
}

// Node is one SplitStream participant.
type Node struct {
	ctx     *core.AppContext
	cfg     Config
	scribe  *scribe.Node
	stripes []scribe.GroupID

	// OnBlock runs for every received block (stripe, block).
	OnBlock func(stripe int, b Block)
	// Received counts blocks delivered locally.
	Received uint64
}

// New layers a SplitStream node over a started Scribe node.
func New(ctx *core.AppContext, sc *scribe.Node, cfg Config) (*Node, error) {
	if cfg.Stripes <= 0 || cfg.Stripes > pastry.Radix {
		return nil, fmt.Errorf("splitstream: stripes must be in [1,%d]", pastry.Radix)
	}
	n := &Node{ctx: ctx, cfg: cfg, scribe: sc, stripes: StripeGroups(cfg)}
	sc.OnDeliver = n.onDeliver
	return n, nil
}

// Join subscribes to every stripe.
func (n *Node) Join() {
	for _, g := range n.stripes {
		n.scribe.Subscribe(g)
	}
}

// Publish stripes a block across the groups round-robin by sequence
// number, the policy §5.7's tree experiment also uses.
func (n *Node) Publish(b Block) error {
	g := n.stripes[b.Seq%n.cfg.Stripes]
	return n.scribe.Publish(g, b)
}

func (n *Node) onDeliver(g scribe.GroupID, payload json.RawMessage) {
	stripe := -1
	for i, sg := range n.stripes {
		if sg == g {
			stripe = i
			break
		}
	}
	if stripe < 0 {
		return // not one of ours
	}
	var b Block
	if err := json.Unmarshal(payload, &b); err != nil {
		return
	}
	n.Received++
	if n.OnBlock != nil {
		n.OnBlock(stripe, b)
	}
}

// InteriorLoad reports how many stripe trees this node forwards for (its
// interior membership count), the quantity SplitStream balances.
func (n *Node) InteriorLoad() int {
	load := 0
	for _, g := range n.stripes {
		if n.scribe.Children(g) > 0 {
			load++
		}
	}
	return load
}
