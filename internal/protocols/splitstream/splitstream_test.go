package splitstream

import (
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/protocols/scribe"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func buildSplitStream(t *testing.T, n, stripes int) (*sim.Kernel, []*Node) {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, n, 1)
	rt := core.NewSimRuntime(k, 1)
	var pnodes []*pastry.Node
	var nodes []*Node
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
		p := pastry.New(ctx, pastry.DefaultConfig())
		sc := scribe.New(ctx, p, scribe.DefaultConfig())
		cfg := DefaultConfig("stream-1")
		cfg.Stripes = stripes
		ss, err := New(ctx, sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pnodes = append(pnodes, p)
		nodes = append(nodes, ss)
		scNode := sc
		k.Go(func() {
			if err := p.Start(); err != nil {
				t.Errorf("pastry start: %v", err)
			}
			if err := scNode.Start(); err != nil {
				t.Errorf("scribe start: %v", err)
			}
		})
	}
	// Scribe's periodic repair keeps the queue alive: bounded run.
	k.RunFor(time.Second)
	if err := pastry.BuildNetwork(pnodes, pastry.BuildOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return k, nodes
}

func TestStripeGroupsHaveDistinctFirstDigits(t *testing.T) {
	groups := StripeGroups(DefaultConfig("s"))
	seen := map[int]bool{}
	for _, g := range groups {
		d := g.Digit(0)
		if seen[d] {
			t.Fatalf("duplicate leading digit %d", d)
		}
		seen[d] = true
	}
	if len(seen) != pastry.Radix {
		t.Fatalf("%d distinct digits, want %d", len(seen), pastry.Radix)
	}
}

func TestAllBlocksReachAllMembers(t *testing.T) {
	const n, stripes, blocks = 32, 4, 16
	k, nodes := buildSplitStream(t, n, stripes)
	got := make([]map[int]bool, n)
	for i, node := range nodes {
		i := i
		got[i] = map[int]bool{}
		node.OnBlock = func(stripe int, b Block) { got[i][b.Seq] = true }
	}
	k.Go(func() {
		for _, node := range nodes {
			node.Join()
		}
	})
	k.RunFor(time.Minute)
	k.Go(func() {
		for s := 0; s < blocks; s++ {
			if err := nodes[0].Publish(Block{Seq: s, Data: []byte{byte(s)}}); err != nil {
				t.Errorf("publish %d: %v", s, err)
			}
		}
	})
	k.RunFor(5 * time.Minute)

	for i := range nodes {
		if len(got[i]) != blocks {
			t.Fatalf("node %d received %d/%d blocks", i, len(got[i]), blocks)
		}
	}
}

func TestInteriorLoadIsSpread(t *testing.T) {
	const n, stripes = 48, 8
	k, nodes := buildSplitStream(t, n, stripes)
	k.Go(func() {
		for _, node := range nodes {
			node.Join()
		}
	})
	k.RunFor(2 * time.Minute)
	// SplitStream's point: forwarding load spreads over many nodes
	// rather than concentrating on a few interior nodes.
	loaded := 0
	for _, node := range nodes {
		if node.InteriorLoad() > 0 {
			loaded++
		}
	}
	if loaded < n/3 {
		t.Fatalf("only %d/%d nodes carry interior load", loaded, n)
	}
	for i, node := range nodes {
		if node.InteriorLoad() == stripes {
			t.Logf("node %d interior in all stripes (acceptable but rare)", i)
		}
	}
}
