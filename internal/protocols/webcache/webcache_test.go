package webcache

import (
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
	"github.com/splaykit/splay/internal/workload"
)

func TestLRUBasics(t *testing.T) {
	now := time.Unix(0, 0)
	c := newLRUCache(2, time.Minute)
	c.put("a", 1, now)
	c.put("b", 1, now)
	if !c.get("a", now) || !c.get("b", now) {
		t.Fatal("fresh entries missing")
	}
	c.put("c", 1, now) // evicts LRU = "a" (b and a both touched; a touched first)
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	if c.get("a", now) {
		t.Fatal("a should have been evicted (LRU)")
	}
	if !c.get("b", now) || !c.get("c", now) {
		t.Fatal("b/c should remain")
	}
}

func TestLRUTTL(t *testing.T) {
	now := time.Unix(0, 0)
	c := newLRUCache(10, time.Minute)
	c.put("a", 1, now)
	if !c.get("a", now.Add(59*time.Second)) {
		t.Fatal("entry expired early")
	}
	if c.get("a", now.Add(61*time.Second)) {
		t.Fatal("stale entry served")
	}
	if c.len() != 0 {
		t.Fatal("stale entry not removed")
	}
}

func TestLRURefreshOnPut(t *testing.T) {
	now := time.Unix(0, 0)
	c := newLRUCache(10, time.Minute)
	c.put("a", 1, now)
	c.put("a", 2, now.Add(50*time.Second))
	if !c.get("a", now.Add(100*time.Second)) {
		t.Fatal("re-put did not refresh TTL")
	}
	if c.len() != 1 {
		t.Fatalf("duplicate entries: %d", c.len())
	}
}

type cacheNet struct {
	k      *sim.Kernel
	caches []*Cache
}

func newCacheNet(t *testing.T, n int) *cacheNet {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, n, 1)
	rt := core.NewSimRuntime(k, 1)
	var pnodes []*pastry.Node
	var caches []*Cache
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
		p := pastry.New(ctx, pastry.DefaultConfig())
		pnodes = append(pnodes, p)
		caches = append(caches, New(ctx, p, DefaultConfig()))
	}
	k.Go(func() {
		for i := range pnodes {
			if err := pnodes[i].Start(); err != nil {
				t.Errorf("pastry start: %v", err)
			}
			if err := caches[i].Start(); err != nil {
				t.Errorf("cache start: %v", err)
			}
		}
	})
	k.Run()
	if err := pastry.BuildNetwork(pnodes, pastry.BuildOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return &cacheNet{k: k, caches: caches}
}

func TestMissThenHit(t *testing.T) {
	cn := newCacheNet(t, 16)
	var first, second GetResult
	cn.k.Go(func() {
		var err error
		first, err = cn.caches[3].Get("http://origin.example/a")
		if err != nil {
			t.Errorf("get 1: %v", err)
		}
		second, err = cn.caches[7].Get("http://origin.example/a")
		if err != nil {
			t.Errorf("get 2: %v", err)
		}
	})
	cn.k.Run()
	if first.Hit {
		t.Fatal("first access was a hit")
	}
	if !second.Hit {
		t.Fatal("second access (other client) missed: home-store not shared")
	}
	if first.Delay < time.Second {
		t.Fatalf("miss delay %s below origin delay", first.Delay)
	}
	if second.Delay >= first.Delay {
		t.Fatalf("hit delay %s not faster than miss %s", second.Delay, first.Delay)
	}
}

func TestTTLForcesRefetch(t *testing.T) {
	cn := newCacheNet(t, 8)
	var again GetResult
	cn.k.Go(func() {
		cn.caches[0].Get("http://origin.example/x") //nolint:errcheck
		cn.k.Sleep(3 * time.Minute)                 // beyond the 120s TTL
		var err error
		again, err = cn.caches[1].Get("http://origin.example/x")
		if err != nil {
			t.Errorf("get: %v", err)
		}
	})
	cn.k.Run()
	if again.Hit {
		t.Fatal("stale object served after TTL")
	}
}

func TestSteadyStateHitRatio(t *testing.T) {
	cn := newCacheNet(t, 16)
	gen, err := workload.NewWebRequests(workload.WebConfig{
		URLs: 2000, ZipfS: 1.22, RatePerSec: 50, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	cn.k.Go(func() {
		prev := time.Duration(0)
		for i := 0; i < 3000; i++ {
			at, url := gen.Next()
			cn.k.Sleep(at - prev)
			prev = at
			res, err := cn.caches[i%len(cn.caches)].Get(url)
			if err != nil {
				continue
			}
			total++
			if res.Hit {
				hits++
			}
		}
	})
	cn.k.Run()
	ratio := float64(hits) / float64(total)
	// 16 nodes × 100 entries vs 2000 Zipf URLs: a healthy but imperfect
	// hit ratio, the §5.7 regime.
	if ratio < 0.4 || ratio > 0.98 {
		t.Fatalf("hit ratio = %.3f, outside plausible band", ratio)
	}
	if total < 2900 {
		t.Fatalf("only %d/3000 requests succeeded", total)
	}
}
