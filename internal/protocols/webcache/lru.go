// Package webcache implements the cooperative web cache of §5.7: a
// Squirrel-style home-store cache built on the Pastry DHT. Each URL hashes
// to a home node; requests route to the home, which serves the object from
// its local LRU store or fetches it from the origin. Entries are evicted
// by LRU or when older than a TTL (100 entries and 120 s in the paper).
package webcache

import (
	"container/list"
	"time"
)

// lruEntry is one cached object.
type lruEntry struct {
	url     string
	fetched time.Time
	size    int
}

// lruCache is a fixed-capacity LRU with TTL expiry. It is cooperative-
// concurrency safe (no internal locking needed under the SPLAY execution
// model: no yields inside its methods).
type lruCache struct {
	capacity int
	ttl      time.Duration
	order    *list.List // front = most recent
	byURL    map[string]*list.Element
}

func newLRUCache(capacity int, ttl time.Duration) *lruCache {
	return &lruCache{
		capacity: capacity,
		ttl:      ttl,
		order:    list.New(),
		byURL:    make(map[string]*list.Element),
	}
}

// get reports whether url is cached and fresh at time now, updating
// recency on hits and evicting the entry if stale.
func (c *lruCache) get(url string, now time.Time) bool {
	el, ok := c.byURL[url]
	if !ok {
		return false
	}
	e := el.Value.(*lruEntry)
	if c.ttl > 0 && now.Sub(e.fetched) > c.ttl {
		c.remove(el)
		return false
	}
	c.order.MoveToFront(el)
	return true
}

// put stores url (fetched at time now), evicting the LRU entry when full.
func (c *lruCache) put(url string, size int, now time.Time) {
	if el, ok := c.byURL[url]; ok {
		e := el.Value.(*lruEntry)
		e.fetched = now
		e.size = size
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		c.remove(c.order.Back())
	}
	el := c.order.PushFront(&lruEntry{url: url, fetched: now, size: size})
	c.byURL[url] = el
}

func (c *lruCache) remove(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	delete(c.byURL, e.url)
	c.order.Remove(el)
}

// len returns the number of cached entries (fresh or not).
func (c *lruCache) len() int { return c.order.Len() }
