package webcache

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// Config parameterizes a cache node; defaults match §5.7.
type Config struct {
	// MaxEntries bounds the local store (paper: 100).
	MaxEntries int
	// TTL expires entries (paper: 120 s).
	TTL time.Duration
	// OriginDelay simulates a non-cached fetch from the origin server;
	// the paper measures 1–2 s on average. nil uses a 1.5 s constant.
	OriginDelay func(url string) time.Duration
	// Port is the cache RPC port (distinct from Pastry's).
	Port int
	// RPCTimeout bounds cache calls.
	RPCTimeout time.Duration
}

// DefaultConfig matches the paper's experiment.
func DefaultConfig() Config {
	return Config{
		MaxEntries: 100,
		TTL:        120 * time.Second,
		Port:       9100,
		RPCTimeout: 30 * time.Second,
	}
}

// Stats counts cache activity at one node.
type Stats struct {
	Requests uint64 // client requests issued from this node
	Hits     uint64 // answered from some home node's store
	Misses   uint64 // required an origin fetch
	Stored   uint64 // objects stored at this node (as home)
}

// GetResult describes one proxied request.
type GetResult struct {
	Hit   bool
	Delay time.Duration
}

// Cache is one cooperative-cache node layered over a Pastry node.
type Cache struct {
	ctx    *core.AppContext
	cfg    Config
	pastry *pastry.Node
	store  *lruCache
	client *rpc.Client
	server *rpc.Server
	stats  Stats
}

// New creates a cache node over an already started Pastry node.
func New(ctx *core.AppContext, p *pastry.Node, cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 100
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 120 * time.Second
	}
	if cfg.Port == 0 {
		cfg.Port = 9100
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 30 * time.Second
	}
	c := &Cache{
		ctx:    ctx,
		cfg:    cfg,
		pastry: p,
		store:  newLRUCache(cfg.MaxEntries, cfg.TTL),
	}
	c.client = rpc.NewClient(ctx)
	c.client.Timeout = cfg.RPCTimeout
	return c
}

// Stats returns a copy of the node's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Start serves the cache RPC interface.
func (c *Cache) Start() error {
	s := rpc.NewServer(c.ctx)
	s.Register("cache_get", c.handleCacheGet)
	if err := s.Start(c.cfg.Port); err != nil {
		return err
	}
	c.server = s
	return nil
}

// Stop closes the RPC server.
func (c *Cache) Stop() {
	if c.server != nil {
		c.server.Close()
	}
}

// URLKey hashes a URL into the Pastry identifier space (the home node).
func URLKey(url string) pastry.ID {
	sum := sha1.Sum([]byte(url))
	return pastry.ID(binary.BigEndian.Uint64(sum[:8]))
}

// cacheReply travels on the wire for cache_get.
type cacheReply struct {
	Hit  bool `json:"hit"`
	Size int  `json:"size"`
}

// handleCacheGet runs at the home node: serve locally or fetch from the
// origin and store.
func (c *Cache) handleCacheGet(args rpc.Args) (any, error) {
	url := args.String(0)
	if url == "" {
		return nil, fmt.Errorf("webcache: empty url")
	}
	now := c.ctx.Now()
	if c.store.get(url, now) {
		return cacheReply{Hit: true, Size: 0}, nil
	}
	// Origin fetch (simulated).
	delay := 1500 * time.Millisecond
	if c.cfg.OriginDelay != nil {
		delay = c.cfg.OriginDelay(url)
	}
	c.ctx.Sleep(delay)
	c.store.put(url, 8<<10, c.ctx.Now())
	c.stats.Stored++
	return cacheReply{Hit: false, Size: 8 << 10}, nil
}

// cacheAddr maps a Pastry peer to its cache RPC endpoint (same host,
// cache port).
func (c *Cache) cacheAddr(ref pastry.NodeRef) transport.Addr {
	return transport.Addr{Host: ref.Addr.Host, Port: c.cfg.Port}
}

// Get proxies one client request through the cooperative cache: route to
// the URL's home node, then ask it for the object. The returned delay is
// what a browser pointed at this proxy would observe (Fig. 14's metric).
func (c *Cache) Get(url string) (GetResult, error) {
	c.stats.Requests++
	start := c.ctx.Now()
	key := URLKey(url)

	var home pastry.NodeRef
	if next, root := c.pastry.NextHop(key); root {
		home = next
	} else {
		res, err := c.pastry.Route(key)
		if err != nil {
			return GetResult{}, fmt.Errorf("webcache: route: %w", err)
		}
		home = res.Root
	}

	var reply cacheReply
	if home.Addr == c.pastry.Self().Addr {
		r, err := c.handleCacheGet(rpc.NewArgs(mustJSON(url)))
		if err != nil {
			return GetResult{}, err
		}
		reply = r.(cacheReply)
	} else {
		res, err := c.client.Call(c.cacheAddr(home), "cache_get", url)
		if err != nil {
			return GetResult{}, fmt.Errorf("webcache: home %s: %w", home, err)
		}
		if err := res.Decode(&reply); err != nil {
			return GetResult{}, err
		}
	}
	if reply.Hit {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return GetResult{Hit: reply.Hit, Delay: c.ctx.Now().Sub(start)}, nil
}

func mustJSON(v any) []byte {
	data, err := rpc.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}
