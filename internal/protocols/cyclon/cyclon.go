// Package cyclon implements the Cyclon gossip-based membership protocol
// (Voulgaris et al.), one of the paper's §5.1 example applications. Each
// node keeps a small partial view; periodically it shuffles a subset of
// its view (plus a fresh self-entry) with the oldest peer, yielding an
// in-degree distribution close to uniform — inexpensive membership for
// unstructured overlays.
package cyclon

import (
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/transport"
)

// Instruments is the protocol's optional metric set for the
// observability plane. The zero value disables everything; updates are
// pure memory operations, so attaching instruments never perturbs
// simulation schedules.
type Instruments struct {
	Shuffles *metrics.Counter // completed shuffle initiations
	View     *metrics.Gauge   // current partial-view size
}

// NewInstruments registers the protocol's canonical series on reg
// ("cyclon." prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		Shuffles: reg.Counter("cyclon.shuffles"),
		View:     reg.Gauge("cyclon.view"),
	}
}

// Entry is one view element: a peer plus its gossip age.
type Entry struct {
	Addr transport.Addr `json:"addr"`
	Age  int            `json:"age"`
}

// Config parameterizes a node.
type Config struct {
	ViewSize     int           // c: partial view size (paper-typical: 20)
	ShuffleLen   int           // l: entries exchanged per shuffle
	ShuffleEvery time.Duration // gossip period
	RPCTimeout   time.Duration
}

// DefaultConfig uses the values common in the Cyclon literature.
func DefaultConfig() Config {
	return Config{ViewSize: 20, ShuffleLen: 8, ShuffleEvery: 5 * time.Second, RPCTimeout: 10 * time.Second}
}

// Node is one Cyclon instance.
type Node struct {
	ctx    *core.AppContext
	cfg    Config
	self   transport.Addr
	view   []Entry
	client *rpc.Client
	server *rpc.Server
	stop   func()
	ins    Instruments

	// Shuffles counts completed shuffle initiations.
	Shuffles uint64
}

// SetInstruments attaches instruments to the node.
func (n *Node) SetInstruments(ins Instruments) { n.ins = ins }

// New creates a node; its address is ctx.Job.Me.
func New(ctx *core.AppContext, cfg Config) *Node {
	if cfg.ViewSize <= 0 {
		cfg.ViewSize = 20
	}
	if cfg.ShuffleLen <= 0 || cfg.ShuffleLen > cfg.ViewSize {
		cfg.ShuffleLen = cfg.ViewSize / 2
	}
	if cfg.ShuffleEvery <= 0 {
		cfg.ShuffleEvery = 5 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	n := &Node{ctx: ctx, cfg: cfg, self: ctx.Job.Me}
	n.client = rpc.NewClient(ctx)
	n.client.Timeout = cfg.RPCTimeout
	return n
}

// View returns a copy of the current partial view.
func (n *Node) View() []Entry { return append([]Entry(nil), n.view...) }

// Start serves shuffles and begins gossiping from the bootstrap peers
// (typically ctx.Job.Nodes).
func (n *Node) Start(bootstrap []transport.Addr) error {
	for _, a := range bootstrap {
		if a != n.self {
			n.insert(Entry{Addr: a})
		}
	}
	s := rpc.NewServer(n.ctx)
	s.Register("shuffle", n.handleShuffle)
	if err := s.Start(n.self.Port); err != nil {
		return err
	}
	n.server = s
	n.stop = n.ctx.Periodic(n.cfg.ShuffleEvery, n.shuffle)
	return nil
}

// Stop halts gossip and the RPC server.
func (n *Node) Stop() {
	if n.stop != nil {
		n.stop()
	}
	if n.server != nil {
		n.server.Close()
	}
}

func (n *Node) insert(e Entry) {
	for i := range n.view {
		if n.view[i].Addr == e.Addr {
			if e.Age < n.view[i].Age {
				n.view[i].Age = e.Age
			}
			return
		}
	}
	n.view = append(n.view, e)
}

// removeAddr drops a peer from the view.
func (n *Node) removeAddr(a transport.Addr) {
	kept := n.view[:0]
	for _, e := range n.view {
		if e.Addr != a {
			kept = append(kept, e)
		}
	}
	n.view = kept
}

// sample copies up to l entries (excluding the peer at skip). Entries
// stay in the view: Cyclon only discards a sent entry when the received
// ones need its slot, so view sizes are conserved even when replies are
// short or lost.
func (n *Node) sample(l int, skip transport.Addr) []Entry {
	rng := n.ctx.Rand()
	idx := rng.Perm(len(n.view))
	var out []Entry
	for _, i := range idx {
		if len(out) >= l {
			break
		}
		if n.view[i].Addr == skip {
			continue
		}
		out = append(out, n.view[i])
	}
	return out
}

// merge folds received entries into the view. When the view is full, the
// entries we sent in the same exchange (sacrificable) are replaced first;
// further incoming entries are dropped.
func (n *Node) merge(in, sacrificable []Entry) {
	for _, e := range in {
		if e.Addr == n.self {
			continue
		}
		if n.contains(e.Addr) {
			n.insert(e) // refresh age only
			continue
		}
		if len(n.view) >= n.cfg.ViewSize {
			if !n.evictOneOf(sacrificable) {
				continue // nothing sacrificable left: drop the entry
			}
		}
		n.insert(e)
	}
}

func (n *Node) contains(a transport.Addr) bool {
	for i := range n.view {
		if n.view[i].Addr == a {
			return true
		}
	}
	return false
}

// evictOneOf removes the first view entry that appears in the candidates
// and reports whether one was removed.
func (n *Node) evictOneOf(candidates []Entry) bool {
	for _, c := range candidates {
		for i := range n.view {
			if n.view[i].Addr == c.Addr {
				n.view = append(n.view[:i], n.view[i+1:]...)
				return true
			}
		}
	}
	return false
}

// shuffle is one gossip round: age the view, contact the oldest peer with
// a sample plus a fresh self-entry, and merge its reply.
func (n *Node) shuffle() {
	if len(n.view) == 0 {
		return
	}
	for i := range n.view {
		n.view[i].Age++
	}
	oldest := 0
	for i := range n.view {
		if n.view[i].Age > n.view[oldest].Age {
			oldest = i
		}
	}
	peer := n.view[oldest].Addr
	n.removeAddr(peer) // replaced by our fresh entry at the peer's side

	send := n.sample(n.cfg.ShuffleLen-1, peer)
	payload := append(append([]Entry(nil), send...), Entry{Addr: n.self, Age: 0})
	res, err := n.client.Call(peer, "shuffle", payload)
	if err != nil {
		return // dead peer already dropped from the view
	}
	var reply []Entry
	if err := res.Decode(&reply); err != nil {
		return
	}
	n.merge(reply, send)
	n.Shuffles++
	n.ins.Shuffles.Inc()
	n.ins.View.Set(int64(len(n.view)))
}

// handleShuffle answers a shuffle: return our own sample and merge
// theirs.
func (n *Node) handleShuffle(args rpc.Args) (any, error) {
	var in []Entry
	if err := args.Decode(0, &in); err != nil {
		return nil, err
	}
	reply := n.sample(n.cfg.ShuffleLen, transport.Addr{})
	n.merge(in, reply)
	n.ins.View.Set(int64(len(n.view)))
	if reply == nil {
		reply = []Entry{}
	}
	return reply, nil
}
