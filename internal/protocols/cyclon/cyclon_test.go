package cyclon

import (
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func buildCyclon(t *testing.T, n int) (*sim.Kernel, []*Node) {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, n, 1)
	rt := core.NewSimRuntime(k, 1)
	var nodes []*Node
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 8100}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
		nodes = append(nodes, New(ctx, DefaultConfig()))
	}
	k.Go(func() {
		for i, node := range nodes {
			// Bootstrap as a thick ring: each node knows its next ten
			// successors (Cyclon conserves the total number of view
			// entries, so bootstrap views determine view sizes).
			var seeds []transport.Addr
			for j := 1; j <= 10; j++ {
				seeds = append(seeds, transport.Addr{Host: simnet.HostName((i + j) % n), Port: 8100})
			}
			if err := node.Start(seeds); err != nil {
				t.Errorf("start %d: %v", i, err)
			}
		}
	})
	return k, nodes
}

func TestShufflesMixTheRing(t *testing.T) {
	const n = 64
	k, nodes := buildCyclon(t, n)
	k.RunFor(5 * time.Minute)

	// Views fill up toward the configured size.
	for i, node := range nodes {
		if len(node.View()) < 10 {
			t.Fatalf("node %d view only %d entries", i, len(node.View()))
		}
		if node.Shuffles == 0 {
			t.Fatalf("node %d never shuffled", i)
		}
	}
	// In-degree spread: after mixing, no node should be missing from all
	// views and none should dominate.
	indeg := map[string]int{}
	for _, node := range nodes {
		for _, e := range node.View() {
			indeg[e.Addr.String()]++
		}
	}
	if len(indeg) < n*9/10 {
		t.Fatalf("only %d/%d nodes referenced by any view", len(indeg), n)
	}
	min, max := 1<<30, 0
	for _, d := range indeg {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max > 20*min+20 {
		t.Fatalf("in-degree skew too high: min=%d max=%d", min, max)
	}
}

func TestViewsNeverContainSelfOrDuplicates(t *testing.T) {
	k, nodes := buildCyclon(t, 16)
	k.RunFor(2 * time.Minute)
	for i, node := range nodes {
		seen := map[string]bool{}
		for _, e := range node.View() {
			if e.Addr == node.self {
				t.Fatalf("node %d has self in view", i)
			}
			if seen[e.Addr.String()] {
				t.Fatalf("node %d has duplicate %s", i, e.Addr)
			}
			seen[e.Addr.String()] = true
		}
		if len(node.View()) > node.cfg.ViewSize {
			t.Fatalf("node %d view exceeds capacity", i)
		}
	}
}

func TestDeadPeersEventuallyDropped(t *testing.T) {
	k, nodes := buildCyclon(t, 16)
	k.RunFor(time.Minute)
	// Kill node 3; within a few shuffle periods its entry must vanish
	// from every view (failed shuffles drop it; entries sent away age out).
	k.Go(func() {
		nodes[3].Stop()
		nodes[3].ctx.Kill()
	})
	k.RunFor(5 * time.Minute)
	dead := nodes[3].self.String()
	holders := 0
	for i, node := range nodes {
		if i == 3 {
			continue
		}
		for _, e := range node.View() {
			if e.Addr.String() == dead {
				holders++
			}
		}
	}
	if holders > 4 {
		t.Fatalf("dead peer still in %d views", holders)
	}
}
