package metrics

import (
	"testing"
)

// BenchmarkMetricsHotPath is the instrument hot path CI pins at zero
// allocations: one counter increment plus one histogram observation,
// the cost every instrumented RPC or delivery pays when monitoring is
// on. The BENCH_metrics.json job gates allocs/op == 0.
func BenchmarkMetricsHotPath(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench.calls")
	h := reg.Histogram("bench.latency", KindHistPow2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}

// BenchmarkMetricsHotPathDisabled measures the same call sites with
// instrumentation off (nil instruments) — the cost uninstrumented
// deployments pay for the hooks.
func BenchmarkMetricsHotPathDisabled(b *testing.B) {
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}

// BenchmarkMetricsHotPathParallel exercises the sharding under
// contention: every P hammers the same counter and histogram.
func BenchmarkMetricsHotPathParallel(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench.calls")
	h := reg.Histogram("bench.latency", KindHistPow2)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			c.Inc()
			h.Observe(i)
			i++
		}
	})
}

// BenchmarkMetricsDelta measures building one delta report frame for a
// registry with a typical instrument population (steady state: slices
// and scratch are reused, so the build itself stays allocation-free).
func BenchmarkMetricsDelta(b *testing.B) {
	reg := NewRegistry()
	counters := make([]*Counter, 8)
	for i := range counters {
		counters[i] = reg.Counter("c" + string(rune('a'+i)))
	}
	h := reg.Histogram("lat", KindHistPow2)
	var st deltaState
	var rep Report
	if appendDelta(reg, &st, &rep) { // ship defs once
		commitDelta(&st, &rep)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counters[i%len(counters)].Inc()
		h.Observe(int64(i))
		if appendDelta(reg, &st, &rep) {
			commitDelta(&st, &rep)
		}
	}
}

// BenchmarkReportEncode measures the fast codec against a steady-state
// frame.
func BenchmarkReportEncode(b *testing.B) {
	rep := &Report{Key: "obs", Node: "n1234", Seq: 42,
		C: []Delta{{ID: 0, D: 12}, {ID: 3, D: 1}},
		H: []HistDelta{{ID: 5, B: []uint64{21, 3, 22, 1}, S: 12345678}},
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ok bool
		buf, ok = rep.AppendJSON(buf[:0])
		if !ok {
			b.Fatal("encoder declined")
		}
	}
}
