package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// ReporterConfig names the stream a Reporter opens.
type ReporterConfig struct {
	// Key authenticates the stream to the aggregator (daemon-issued,
	// like the log collector's identification keys).
	Key string
	// Node names this node in aggregated views.
	Node string
	// DialTimeout bounds the connection attempt (0 = one minute).
	DialTimeout time.Duration
}

// Reporter streams a registry's delta reports to an aggregator. It is
// owned by one task: the caller schedules Flush on whatever period the
// deployment can afford (ctx.Periodic in applications, a timer loop in
// splayd) and Flush/Close must not be called concurrently — exactly
// the llenc.Writer contract underneath. Sent is safe from any task.
//
// Reporting is the only part of the metrics plane that touches the
// network; everything the reporter sends is built from pooled state
// (the delta report and its slices are reused across flushes), so a
// quiet node costs one small frame per period and an idle one costs
// nothing (empty deltas are skipped).
type Reporter struct {
	reg  *Registry
	node transport.Node
	addr transport.Addr
	cfg  ReporterConfig
	conn transport.Conn
	enc  *llenc.Writer

	st  deltaState
	rep Report
	seq uint64

	frames atomic.Uint64
	bytes  atomic.Uint64
}

// countingWriter counts the bytes a stream puts on the wire, framing
// included — the monitoring-overhead measure obsplane reports.
type countingWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(uint64(n))
	return n, err
}

// DialReporter connects a registry to the aggregator at addr.
func DialReporter(node transport.Node, addr transport.Addr, reg *Registry, cfg ReporterConfig) (*Reporter, error) {
	if reg == nil {
		return nil, fmt.Errorf("metrics: nil registry")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Minute
	}
	conn, err := node.Dial(addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("metrics: dial aggregator: %w", err)
	}
	r := &Reporter{reg: reg, node: node, addr: addr, cfg: cfg, conn: conn}
	r.rep.Key = cfg.Key
	r.rep.Node = cfg.Node
	r.enc = llenc.NewWriter(countingWriter{w: conn, n: &r.bytes})
	return r, nil
}

// Flush sends one delta report covering everything that changed since
// the last *successful* flush. Nothing changed means nothing sent; a
// failed send keeps the deltas, so they ride the next flush instead of
// vanishing (at-least-once across a Reconnect — the frame is a single
// write, so duplicates require it to have landed just as the stream
// died).
func (r *Reporter) Flush() error {
	if !appendDelta(r.reg, &r.st, &r.rep) {
		return nil
	}
	r.rep.Seq = r.seq + 1
	if err := r.enc.Encode(&r.rep); err != nil {
		return fmt.Errorf("metrics: report: %w", err)
	}
	r.seq++
	commitDelta(&r.st, &r.rep)
	r.frames.Add(1)
	return nil
}

// Reconnect replaces a dead stream with a fresh connection while
// keeping the delta state, so a long-lived process resumes reporting
// increments instead of re-shipping (and double-counting) lifetime
// totals. The instrument dictionary is resent on the new stream —
// the aggregator's view of it is per-connection.
func (r *Reporter) Reconnect() error {
	r.conn.Close()
	conn, err := r.node.Dial(r.addr, r.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("metrics: redial aggregator: %w", err)
	}
	r.conn = conn
	r.enc = llenc.NewWriter(countingWriter{w: conn, n: &r.bytes})
	r.st.defsSent = 0
	return nil
}

// Sent reports the stream's cost so far: frames written and bytes on
// the wire (llenc headers included).
func (r *Reporter) Sent() (frames, bytes uint64) {
	return r.frames.Load(), r.bytes.Load()
}

// Close closes the stream.
func (r *Reporter) Close() error { return r.conn.Close() }
