package metrics

import (
	"math"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/transport"
)

// Aggregator is the controller-side half of the observability plane:
// it accepts reporter streams, authenticates them by key exactly like
// the paper's log collector, and merges each node's delta reports into
// live population views — merged counter totals, per-node gauge
// values, and summed histogram buckets that rank statistics read
// through stats.Sorted. Everything a query surface needs (splayctl's
// /metrics endpoint, the obsplane experiment's in-flight rows) comes
// from one snapshot under one mutex, with deterministic iteration
// order so simulated runs stay bit-stable.
type Aggregator struct {
	ln    transport.Listener
	spawn func(fn func())

	mu          sync.Mutex
	keys        map[string]bool
	nodes       map[string]string // canonical node-name table
	nodeOrder   []string
	series      map[string]*series
	seriesOrder []string
	frames      uint64
	bytes       uint64
}

// stream is the aggregator's per-connection state: the reporter's
// id→series dictionary and its last sequence number. The dictionary
// belongs to the connection, not the node name — several instances on
// one daemon host each open their own stream under the shared host
// name, and each ships its own Defs exactly once. Keying the dictionary
// by node name would let the newest stream's Defs capture every
// sibling's subsequent delta frames.
type stream struct {
	defs []*series
	seq  uint64
}

// series is one merged instrument across the population.
type series struct {
	name    string
	kind    Kind
	total   uint64           // counters: sum of all deltas
	perNode map[string]int64 // counter running totals / gauge values by node
	buckets [NumBuckets]uint64
	sum     int64
	count   uint64
}

// NewAggregator listens on the node's port; spawn runs connection
// handlers as tasks (core.Runtime.Go, kernel.Go or `go`).
func NewAggregator(node transport.Node, port int, spawn func(fn func())) (*Aggregator, error) {
	ln, err := node.Listen(port)
	if err != nil {
		return nil, err
	}
	a := &Aggregator{
		ln:     ln,
		spawn:  spawn,
		keys:   make(map[string]bool),
		nodes:  make(map[string]string),
		series: make(map[string]*series),
	}
	spawn(a.acceptLoop)
	return a, nil
}

// Addr returns the aggregator's address.
func (a *Aggregator) Addr() transport.Addr { return a.ln.Addr() }

// Authorize registers a reporting key.
func (a *Aggregator) Authorize(key string) {
	a.mu.Lock()
	a.keys[key] = true
	a.mu.Unlock()
}

// Close stops accepting streams.
func (a *Aggregator) Close() error { return a.ln.Close() }

func (a *Aggregator) acceptLoop() {
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.spawn(func() { a.serve(conn) })
	}
}

func (a *Aggregator) serve(conn transport.Conn) {
	defer conn.Close()
	var rx byteMeter
	var st stream
	dec := llenc.NewReader(countingReader{r: conn, n: &rx})
	for {
		var rep Report
		if err := dec.Decode(&rep); err != nil {
			return
		}
		if !a.absorb(&rep, rx.drain(), &st) {
			return // unauthenticated or malformed: drop the stream
		}
	}
}

// absorb merges one report; it reports false when the stream must be
// dropped: unknown key — checked on every frame, so a stream that
// stops presenting its key dies mid-stream like the log collector's —
// or a frame referencing ids and kinds inconsistently. Validation runs
// before any mutation, so a refused frame leaves the views untouched.
func (a *Aggregator) absorb(rep *Report, rxBytes uint64, st *stream) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.keys[rep.Key] {
		return false
	}

	node := rep.Node
	known := func(id int) *series {
		for _, d := range rep.Defs {
			if d.ID == id {
				if s, ok := a.series[d.Name]; ok {
					return s
				}
				return &series{name: d.Name, kind: d.Kind}
			}
		}
		if id >= 0 && id < len(st.defs) {
			return st.defs[id]
		}
		return nil
	}
	for i, d := range rep.Defs {
		if d.ID < 0 {
			return false
		}
		for _, e := range rep.Defs[:i] {
			if e.ID == d.ID {
				return false // duplicate id in one frame: validation and
				// apply would disagree about which def wins
			}
		}
		if s, ok := a.series[d.Name]; ok && s.kind != d.Kind {
			return false // same name, conflicting kind across nodes
		}
	}
	for _, c := range rep.C {
		if s := known(c.ID); s == nil || s.kind != KindCounter {
			return false
		}
	}
	for _, g := range rep.G {
		if s := known(g.ID); s == nil || s.kind != KindGauge {
			return false
		}
	}
	for _, h := range rep.H {
		s := known(h.ID)
		if s == nil || (s.kind != KindHistLinear && s.kind != KindHistPow2) || len(h.B)%2 != 0 {
			return false
		}
		for i := 0; i < len(h.B); i += 2 {
			if h.B[i] >= NumBuckets {
				return false
			}
		}
	}

	// Validated: apply.
	a.frames++
	a.bytes += rxBytes
	if canon, ok := a.nodes[node]; ok {
		node = canon // shared name table: drop this frame's copy
	} else {
		a.nodes[node] = node
		a.nodeOrder = append(a.nodeOrder, node)
	}
	st.seq = rep.Seq
	for _, d := range rep.Defs {
		s, ok := a.series[d.Name]
		if !ok {
			s = &series{name: d.Name, kind: d.Kind, perNode: make(map[string]int64)}
			a.series[d.Name] = s
			a.seriesOrder = append(a.seriesOrder, d.Name)
		}
		for len(st.defs) <= d.ID {
			st.defs = append(st.defs, nil)
		}
		st.defs[d.ID] = s
	}
	for _, c := range rep.C {
		s := st.defs[c.ID]
		s.total += c.D
		s.perNode[node] += int64(c.D)
	}
	for _, g := range rep.G {
		s := st.defs[g.ID]
		s.perNode[node] = g.V
	}
	for _, h := range rep.H {
		s := st.defs[h.ID]
		for i := 0; i < len(h.B); i += 2 {
			s.buckets[h.B[i]] += h.B[i+1]
			s.count += h.B[i+1]
		}
		s.sum += h.S
	}
	return true
}

// Nodes returns the number of streams seen so far.
func (a *Aggregator) Nodes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.nodes)
}

// Received reports monitoring traffic absorbed so far: accepted frames
// and their bytes on the wire (llenc headers included) — the overhead
// figure obsplane reports per node per second.
func (a *Aggregator) Received() (frames, bytes uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.frames, a.bytes
}

// CounterTotal returns the merged total of a counter series.
func (a *Aggregator) CounterTotal(name string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.series[name]; ok && s.kind == KindCounter {
		return s.total
	}
	return 0
}

// GaugeSum returns the sum of a gauge series' per-node values.
func (a *Aggregator) GaugeSum(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.series[name]
	if !ok || s.kind != KindGauge {
		return 0
	}
	var sum int64
	for _, n := range a.nodeOrder {
		sum += s.perNode[n]
	}
	return sum
}

// HistStats returns a histogram series' merged count and sum.
func (a *Aggregator) HistStats(name string) (count uint64, sum int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.series[name]
	if !ok || (s.kind != KindHistLinear && s.kind != KindHistPow2) {
		return 0, 0
	}
	return s.count, s.sum
}

// maxExpand caps how many samples HistSorted materializes; merged
// populations past the cap are downsampled proportionally, except that
// every non-empty bucket keeps at least one sample so tails survive.
const maxExpand = 1 << 20

// HistSorted expands a merged histogram into the pessimistic sample it
// bounds — each observation counted at its bucket's upper edge — as a
// stats.Sorted view, so population percentiles read through the same
// rank statistics the experiment harness uses everywhere else.
func (a *Aggregator) HistSorted(name string) stats.Sorted {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.series[name]
	if !ok {
		return nil
	}
	return histSortedLocked(s)
}

func histSortedLocked(s *series) stats.Sorted {
	if (s.kind != KindHistLinear && s.kind != KindHistPow2) || s.count == 0 {
		return nil
	}
	scale := uint64(1)
	if s.count > maxExpand {
		scale = (s.count + maxExpand - 1) / maxExpand
	}
	out := make(stats.Sorted, 0, s.count/scale+NumBuckets)
	for i := range s.buckets {
		if s.buckets[i] == 0 {
			continue
		}
		upper := time.Duration(BucketUpper(s.kind, i))
		// Ceiling division: every non-empty bucket keeps at least one
		// sample, so downsampling cannot erase the distribution's tail.
		for n := (s.buckets[i] + scale - 1) / scale; n > 0; n-- {
			out = append(out, upper)
		}
	}
	return out // buckets ascend, so the expansion is already sorted
}

// histQuantileLocked is the allocation-free percentile for snapshot
// polling: a nearest-rank walk over the 64 cumulative bucket counts,
// returning the same bucket upper edge HistSorted's expansion would —
// without materializing up to maxExpand samples under the mutex on
// every /metrics poll.
func histQuantileLocked(s *series, p float64) int64 {
	if s.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range s.buckets {
		cum += s.buckets[i]
		if cum >= rank {
			return BucketUpper(s.kind, i)
		}
	}
	return BucketUpper(s.kind, NumBuckets-1)
}

// HistQuantile returns a histogram series' p-th percentile as a
// nearest-rank bucket upper edge — the allocation-free surface the fault
// plane's trigger rules poll on every evaluation tick (0 when the series
// is absent or empty).
func (a *Aggregator) HistQuantile(name string, p float64) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.series[name]
	if !ok || (s.kind != KindHistLinear && s.kind != KindHistPow2) {
		return 0
	}
	return histQuantileLocked(s, p)
}

// PerNodeSorted returns a counter or gauge series' per-node values as
// a stats.Sorted view — the cross-population percentile surface (e.g.
// lookups per node, queue depth per node).
func (a *Aggregator) PerNodeSorted(name string) stats.Sorted {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.series[name]
	if !ok || (s.kind != KindCounter && s.kind != KindGauge) {
		return nil
	}
	vals := make(stats.Durations, 0, len(s.perNode))
	for _, n := range a.nodeOrder {
		if v, ok := s.perNode[n]; ok {
			vals = append(vals, time.Duration(v))
		}
	}
	return vals.Sorted()
}

// SeriesSnapshot is one merged series in a queryable snapshot.
type SeriesSnapshot struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Nodes int     `json:"nodes"`
	Total uint64  `json:"total"`           // counters: merged total
	Sum   int64   `json:"sum,omitempty"`   // gauges: summed values; hists: sample sum
	Count uint64  `json:"count,omitempty"` // hists: observations
	Mean  float64 `json:"mean,omitempty"`
	P50   int64   `json:"p50,omitempty"`
	P90   int64   `json:"p90,omitempty"`
	P99   int64   `json:"p99,omitempty"`
}

// Snapshot returns every series' merged view in first-seen order —
// the payload behind splayctl's /metrics endpoint and watch loop.
func (a *Aggregator) Snapshot() []SeriesSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(a.seriesOrder))
	for _, name := range a.seriesOrder {
		s := a.series[name]
		snap := SeriesSnapshot{Name: s.name, Kind: s.kind.String()}
		switch s.kind {
		case KindCounter:
			snap.Nodes = len(s.perNode)
			snap.Total = s.total
		case KindGauge:
			snap.Nodes = len(s.perNode)
			for _, n := range a.nodeOrder {
				snap.Sum += s.perNode[n]
			}
		default:
			snap.Nodes = len(a.nodes)
			snap.Count, snap.Sum = s.count, s.sum
			if s.count > 0 {
				snap.Mean = float64(s.sum) / float64(s.count)
				snap.P50 = histQuantileLocked(s, 50)
				snap.P90 = histQuantileLocked(s, 90)
				snap.P99 = histQuantileLocked(s, 99)
			}
		}
		out = append(out, snap)
	}
	return out
}

// byteMeter tallies a connection's inbound bytes between frames.
type byteMeter struct{ v uint64 }

func (m *byteMeter) drain() uint64 {
	v := m.v
	m.v = 0
	return v
}

// countingReader counts bytes as frames are read, headers included.
type countingReader struct {
	r transport.Conn
	n *byteMeter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.v += uint64(n)
	return n, err
}
