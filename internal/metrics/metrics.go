// Package metrics implements the observability plane's node-side
// instrument library: the in-band monitoring facility the paper's log
// collector (§3.1, §3.4) stops short of. Where logging ships raw
// records, metrics ships *aggregates*: applications and runtime layers
// increment counters, set gauges and observe histogram samples on a hot
// path built like the kernel and RPC fast paths (zero allocations,
// cache-line-sharded atomics), and a Reporter periodically encodes the
// *deltas* since the last report into one batched frame for the
// controller-side Aggregator — the ACME-style in-band aggregation plane
// rather than raw log shipping.
//
// Instruments are nil-safe: every method on a nil *Counter, *Gauge,
// *Histogram or *Registry is a no-op, so packages thread optional
// instrumentation through a struct of instrument pointers and pay a
// single predictable branch when monitoring is off. Incrementing an
// instrument touches only memory — no tasks, no I/O, no randomness from
// any seeded source — so instrumented code keeps bit-identical
// simulation schedules whether or not a registry is attached; only
// *reporting* (which puts frames on the network) is opt-in per
// deployment. See DESIGN.md ("The observability plane").
package metrics

import (
	"math/bits"
	randv2 "math/rand/v2"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument types on the wire.
type Kind uint8

// Instrument kinds. The values are part of the report wire format.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistLinear
	KindHistPow2
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistLinear:
		return "hist-linear"
	case KindHistPow2:
		return "hist-pow2"
	default:
		return "unknown"
	}
}

// numShards stripes counter increments across cache lines so concurrent
// writers under LiveRuntime do not serialize on one word. Must be a
// power of two.
const numShards = 8

// shardHint picks a stripe. runtime-backed rand/v2 is a few ns, never
// allocates, and draws from the per-M cheaprand — not from any seeded
// source the simulation depends on, so instrumented code stays
// schedule-deterministic (shard choice only moves which stripe a delta
// lands in; totals are exact sums).
func shardHint() uint64 { return randv2.Uint64() & (numShards - 1) }

// pad keeps neighbouring shards on distinct cache lines.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// shardBlock is a counter's stripe storage, allocated on first touch: a
// registered-but-idle counter (error and timeout series on a healthy
// node, most of a wide instrument set) costs one pointer, not 512 bytes
// of padded cache lines. See DESIGN.md ("The memory plane").
type shardBlock [numShards]shard

// Counter is a monotonically increasing count, sharded across cache
// lines. The zero value is ready to use; a nil *Counter discards.
type Counter struct {
	shards atomic.Pointer[shardBlock]
}

// block returns the stripe storage, allocating it on the first call. A
// racing allocation loses the CAS and adopts the winner's block, so
// every writer stripes over the same storage.
func (c *Counter) block() *shardBlock {
	b := c.shards.Load()
	if b == nil {
		b = new(shardBlock)
		if !c.shards.CompareAndSwap(nil, b) {
			b = c.shards.Load()
		}
	}
	return b
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.block()[shardHint()].v.Add(n)
}

// Total returns the exact sum across shards.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	b := c.shards.Load()
	if b == nil {
		return 0
	}
	var sum uint64
	for i := range b {
		sum += b[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous signed value (queue depths, population
// sizes). A nil *Gauge discards.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the fixed bucket count of every histogram. Fixed size
// keeps Observe branch-free, snapshots pooled, and merged views
// directly addable.
const NumBuckets = 64

// Histogram is a fixed-bucket distribution. Two layouts cover the
// plane's needs:
//
//   - KindHistLinear: bucket i holds exactly the observations of value
//     i (the last bucket absorbs everything ≥ NumBuckets-1) — exact for
//     small integers like route lengths.
//   - KindHistPow2: bucket i holds observations v with bits.Len64(v)==i,
//     i.e. v in [2^(i-1), 2^i) — exponential resolution for nanosecond
//     latencies up to ~292 years.
//
// A nil *Histogram discards. Bucket storage is allocated on the first
// observation, so a registered-but-quiet histogram costs a header, not
// 512 bytes of bucket words.
type Histogram struct {
	kind    Kind
	sum     atomic.Int64
	buckets atomic.Pointer[bucketBlock]
}

// bucketBlock is a histogram's bucket storage, allocated on first touch.
type bucketBlock [NumBuckets]atomic.Uint64

// block returns the bucket storage, allocating it on the first call
// (same CAS discipline as Counter.block).
func (h *Histogram) block() *bucketBlock {
	b := h.buckets.Load()
	if b == nil {
		b = new(bucketBlock)
		if !h.buckets.CompareAndSwap(nil, b) {
			b = h.buckets.Load()
		}
	}
	return b
}

// bucketOf maps a value to its bucket. Negative values clamp to 0.
func bucketOf(kind Kind, v int64) int {
	if v <= 0 {
		return 0
	}
	if kind == KindHistLinear {
		if v >= NumBuckets {
			return NumBuckets - 1
		}
		return int(v)
	}
	return bits.Len64(uint64(v)) // v > 0 ⇒ in [1, 63]
}

// BucketUpper returns the largest value bucket i can hold under kind —
// the pessimistic representative aggregation uses for percentiles.
func BucketUpper(kind Kind, i int) int64 {
	if kind == KindHistLinear || i <= 0 {
		return int64(i)
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.block()[bucketOf(h.kind, v)].Add(1)
	h.sum.Add(v)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	b := h.buckets.Load()
	if b == nil {
		return 0
	}
	var n uint64
	for i := range b {
		n += b[i].Load()
	}
	return n
}

// instrument is one registered series.
type instrument struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a node's set of named instruments. Registration assigns
// dense ids in registration order — the dictionary the wire protocol
// ships once per stream — and is idempotent per name. A nil *Registry
// hands out nil instruments, the disabled configuration.
//
// The instrument list is the only index: a node registers a dozen or so
// series, looked up once each at startup, so the name map a registry
// used to carry was pure per-node overhead at population scale.
type Registry struct {
	mu     sync.Mutex
	instrs []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// lookup returns the named instrument, creating it with mk when absent.
// Existing instruments of a different kind return nil rather than
// mixing series.
func (r *Registry) lookup(name string, kind Kind, mk func() *instrument) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, in := range r.instrs {
		if in.name == name {
			if in.kind != kind {
				return nil
			}
			return in
		}
	}
	in := mk()
	r.instrs = append(r.instrs, in)
	return in
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	in := r.lookup(name, KindCounter, func() *instrument {
		return &instrument{name: name, kind: KindCounter, c: &Counter{}}
	})
	if in == nil {
		return nil
	}
	return in.c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	in := r.lookup(name, KindGauge, func() *instrument {
		return &instrument{name: name, kind: KindGauge, g: &Gauge{}}
	})
	if in == nil {
		return nil
	}
	return in.g
}

// Histogram returns the named histogram, creating it with the given
// layout if needed. kind must be KindHistLinear or KindHistPow2.
func (r *Registry) Histogram(name string, kind Kind) *Histogram {
	if r == nil {
		return nil
	}
	if kind != KindHistLinear && kind != KindHistPow2 {
		return nil
	}
	in := r.lookup(name, kind, func() *instrument {
		return &instrument{name: name, kind: kind, h: &Histogram{kind: kind}}
	})
	if in == nil {
		return nil
	}
	return in.h
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.instrs)
}

// snapshot returns the id-ordered instrument list. The slice only ever
// grows, so holding the returned prefix is safe without the lock.
func (r *Registry) snapshot() []*instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.instrs
}
