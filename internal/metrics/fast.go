package metrics

import (
	"github.com/splaykit/splay/internal/llenc"
)

// Fast-path JSON codec for Report, the metrics plane's only frame
// type, carrying the same contract as the rpc/ctlproto codecs: the
// encoding is byte-for-byte identical to encoding/json's output for
// this struct (field order, omitempty rules, HTML escaping), and the
// parser either reproduces encoding/json's result exactly or declines
// — leaving the receiver untouched — so the caller falls back and the
// wire format can never diverge. TestReportCodecMatchesEncodingJSON
// and the fuzz targets check both directions differentially. A
// steady-state report is almost entirely small integers, so the fast
// path removes reflection from the one frame every instrumented node
// emits continuously.

// AppendJSON implements llenc.FastMarshaler. On success the appended
// bytes equal json.Marshal(r); on false buf is returned with its
// original length.
func (r *Report) AppendJSON(buf []byte) ([]byte, bool) {
	if !llenc.JSONSafe(r.Key) || !llenc.JSONSafe(r.Node) {
		return buf, false
	}
	for i := range r.Defs {
		if !llenc.JSONSafe(r.Defs[i].Name) {
			return buf, false
		}
	}
	b := append(buf, `{"key":`...)
	b = llenc.AppendJSONString(b, r.Key)
	if r.Node != "" {
		b = append(b, `,"node":`...)
		b = llenc.AppendJSONString(b, r.Node)
	}
	b = append(b, `,"seq":`...)
	b = llenc.AppendUint(b, r.Seq)
	if len(r.Defs) > 0 {
		b = append(b, `,"defs":[`...)
		for i, d := range r.Defs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"i":`...)
			b = llenc.AppendInt(b, int64(d.ID))
			b = append(b, `,"n":`...)
			b = llenc.AppendJSONString(b, d.Name)
			b = append(b, `,"k":`...)
			b = llenc.AppendUint(b, uint64(d.Kind))
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if len(r.C) > 0 {
		b = append(b, `,"c":[`...)
		for i, d := range r.C {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"i":`...)
			b = llenc.AppendInt(b, int64(d.ID))
			b = append(b, `,"d":`...)
			b = llenc.AppendUint(b, d.D)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if len(r.G) > 0 {
		b = append(b, `,"g":[`...)
		for i, g := range r.G {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"i":`...)
			b = llenc.AppendInt(b, int64(g.ID))
			b = append(b, `,"v":`...)
			b = llenc.AppendInt(b, g.V)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if len(r.H) > 0 {
		b = append(b, `,"h":[`...)
		for i := range r.H {
			h := &r.H[i]
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"i":`...)
			b = llenc.AppendInt(b, int64(h.ID))
			b = append(b, `,"b":`...)
			if h.B == nil {
				b = append(b, "null"...)
			} else {
				b = append(b, '[')
				for j, v := range h.B {
					if j > 0 {
						b = append(b, ',')
					}
					b = llenc.AppendUint(b, v)
				}
				b = append(b, ']')
			}
			if h.S != 0 {
				b = append(b, `,"s":`...)
				b = llenc.AppendInt(b, h.S)
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}'), true
}

// ParseJSON implements llenc.FastUnmarshaler: a decline-don't-guess
// parser for the exact shape the fast encoder (and encoding/json on
// this struct) produces. Escape sequences, unknown keys, floats and
// out-of-range integers all report false with r untouched, and the
// caller retries with encoding/json.
func (r *Report) ParseJSON(data []byte) bool {
	p := reportParser{Lexer: llenc.Lexer{Data: data}}
	var out Report
	if !p.parseReport(&out) || !p.End() {
		return false
	}
	*r = out
	return true
}

type reportParser struct {
	llenc.Lexer
}

func (p *reportParser) parseReport(out *Report) bool {
	p.SkipWS()
	if !p.Consume('{') {
		return false
	}
	p.SkipWS()
	if p.Consume('}') {
		return true
	}
	for {
		p.SkipWS()
		key, ok := p.RawString()
		if !ok {
			return false
		}
		p.SkipWS()
		if !p.Consume(':') {
			return false
		}
		p.SkipWS()
		switch string(key) {
		case "key":
			out.Key, ok = p.String()
		case "node":
			out.Node, ok = p.String()
		case "seq":
			out.Seq, ok = p.Uint()
		case "defs":
			out.Defs, ok = p.parseDefs()
		case "c":
			out.C, ok = p.parseDeltas()
		case "g":
			out.G, ok = p.parseGauges()
		case "h":
			out.H, ok = p.parseHists()
		default:
			return false
		}
		if !ok {
			return false
		}
		p.SkipWS()
		if p.Consume(',') {
			continue
		}
		return p.Consume('}')
	}
}

// openArray consumes '[' and reports emptiness; done is true when the
// array closed immediately.
func (p *reportParser) openArray() (done, ok bool) {
	if !p.Consume('[') {
		return false, false
	}
	p.SkipWS()
	if p.Consume(']') {
		return true, true
	}
	return false, true
}

// closeElem consumes the separator after an array element; done is
// true at ']'.
func (p *reportParser) closeElem() (done, ok bool) {
	p.SkipWS()
	if p.Consume(',') {
		return false, true
	}
	return true, p.Consume(']')
}

func (p *reportParser) parseDefs() ([]Def, bool) {
	done, ok := p.openArray()
	if !ok {
		return nil, false
	}
	out := []Def{}
	for !done {
		p.SkipWS()
		var d Def
		if !p.parseObj(func(key []byte) bool {
			switch string(key) {
			case "i":
				d.ID, ok = p.Int()
			case "n":
				d.Name, ok = p.String()
			case "k":
				var k uint64
				k, ok = p.Uint()
				if k > 255 {
					return false // uint8 overflow: encoding/json rejects
				}
				d.Kind = Kind(k)
			default:
				return false
			}
			return ok
		}) {
			return nil, false
		}
		out = append(out, d)
		if done, ok = p.closeElem(); !ok {
			return nil, false
		}
	}
	return out, true
}

func (p *reportParser) parseDeltas() ([]Delta, bool) {
	done, ok := p.openArray()
	if !ok {
		return nil, false
	}
	out := []Delta{}
	for !done {
		p.SkipWS()
		var d Delta
		if !p.parseObj(func(key []byte) bool {
			switch string(key) {
			case "i":
				d.ID, ok = p.Int()
			case "d":
				d.D, ok = p.Uint()
			default:
				return false
			}
			return ok
		}) {
			return nil, false
		}
		out = append(out, d)
		if done, ok = p.closeElem(); !ok {
			return nil, false
		}
	}
	return out, true
}

func (p *reportParser) parseGauges() ([]GaugeVal, bool) {
	done, ok := p.openArray()
	if !ok {
		return nil, false
	}
	out := []GaugeVal{}
	for !done {
		p.SkipWS()
		var g GaugeVal
		if !p.parseObj(func(key []byte) bool {
			switch string(key) {
			case "i":
				g.ID, ok = p.Int()
			case "v":
				var v int
				v, ok = p.Int()
				g.V = int64(v)
			default:
				return false
			}
			return ok
		}) {
			return nil, false
		}
		out = append(out, g)
		if done, ok = p.closeElem(); !ok {
			return nil, false
		}
	}
	return out, true
}

func (p *reportParser) parseHists() ([]HistDelta, bool) {
	done, ok := p.openArray()
	if !ok {
		return nil, false
	}
	out := []HistDelta{}
	for !done {
		p.SkipWS()
		var h HistDelta
		if !p.parseObj(func(key []byte) bool {
			switch string(key) {
			case "i":
				h.ID, ok = p.Int()
			case "b":
				h.B, ok = p.parseUints()
			case "s":
				var v int
				v, ok = p.Int()
				h.S = int64(v)
			default:
				return false
			}
			return ok
		}) {
			return nil, false
		}
		out = append(out, h)
		if done, ok = p.closeElem(); !ok {
			return nil, false
		}
	}
	return out, true
}

// parseUints parses a []uint64, accepting null as the nil slice the
// way encoding/json does.
func (p *reportParser) parseUints() ([]uint64, bool) {
	if p.Pos+4 <= len(p.Data) && string(p.Data[p.Pos:p.Pos+4]) == "null" {
		p.Pos += 4
		return nil, true
	}
	done, ok := p.openArray()
	if !ok {
		return nil, false
	}
	out := []uint64{}
	for !done {
		p.SkipWS()
		v, ok := p.Uint()
		if !ok {
			return nil, false
		}
		out = append(out, v)
		if done, ok = p.closeElem(); !ok {
			return nil, false
		}
	}
	return out, true
}

// parseObj parses one {"k":v,...} object, dispatching each key to
// field. A false from field declines the whole parse.
func (p *reportParser) parseObj(field func(key []byte) bool) bool {
	if !p.Consume('{') {
		return false
	}
	p.SkipWS()
	if p.Consume('}') {
		return true
	}
	for {
		p.SkipWS()
		key, ok := p.RawString()
		if !ok {
			return false
		}
		p.SkipWS()
		if !p.Consume(':') {
			return false
		}
		p.SkipWS()
		if !field(key) {
			return false
		}
		p.SkipWS()
		if p.Consume(',') {
			continue
		}
		return p.Consume('}')
	}
}
