package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// checkReportParse is the differential oracle shared by the table tests
// and the fuzzer: whatever the fast parser accepts must match
// encoding/json's decode of the same bytes exactly; whatever it
// declines must leave the receiver untouched.
func checkReportParse(t *testing.T, data []byte) {
	t.Helper()
	sentinel := Report{Key: "sentinel", Seq: 999}
	fast := sentinel
	ok := fast.ParseJSON(data)
	var want Report
	jerr := json.Unmarshal(data, &want)
	if !ok {
		if !reflect.DeepEqual(fast, sentinel) {
			t.Fatalf("declined parse mutated receiver: %+v", fast)
		}
		return
	}
	if jerr != nil {
		t.Fatalf("fast parser accepted %q, encoding/json rejects: %v", data, jerr)
	}
	if !reflect.DeepEqual(fast, want) {
		t.Fatalf("parse diverges for %q:\n fast %+v\n json %+v", data, fast, want)
	}
}

// checkReportEncode verifies the fast encoding equals json.Marshal.
func checkReportEncode(t *testing.T, rep *Report) {
	t.Helper()
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rep.AppendJSON(nil)
	if !ok {
		return // declined: the fallback handles it
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fast encode diverges:\n got  %s\n want %s", got, want)
	}
	checkReportParse(t, want)
}

func TestReportCodecMatchesEncodingJSON(t *testing.T) {
	t.Parallel()
	cases := []*Report{
		{Key: "obs", Seq: 1},
		{Key: "obs", Node: "n42", Seq: 7,
			Defs: []Def{{ID: 0, Name: "rpc.calls", Kind: KindCounter}, {ID: 1, Name: "lat", Kind: KindHistPow2}},
			C:    []Delta{{ID: 0, D: 12}},
			H:    []HistDelta{{ID: 1, B: []uint64{21, 3, 40, 1}, S: 123456789}}},
		{Key: "", Seq: 0},
		{Key: "k", Seq: 18446744073709551615,
			G: []GaugeVal{{ID: 3, V: -42}, {ID: 4, V: 1 << 40}}},
		{Key: "k", Seq: 2, H: []HistDelta{{ID: 0, B: []uint64{}}, {ID: 1, B: nil, S: -5}}},
		{Key: "k", Seq: 3, Defs: []Def{{ID: 0, Name: "üñsafe", Kind: KindGauge}}}, // encoder declines
		{Key: "html<&>", Seq: 4}, // encoder declines (HTML escaping)
	}
	for i, rep := range cases {
		rep := rep
		t.Run("", func(t *testing.T) {
			checkReportEncode(t, rep)
			_ = i
		})
	}
}

func TestReportEncoderDeclinesUnsafeStrings(t *testing.T) {
	t.Parallel()
	for _, rep := range []*Report{
		{Key: "tab\there"},
		{Key: "k", Node: "ü"},
		{Key: "k", Defs: []Def{{Name: "quote\""}}},
	} {
		if got, ok := rep.AppendJSON(nil); ok {
			t.Fatalf("encoder accepted unsafe strings: %s", got)
		}
	}
}

func TestReportParserDeclines(t *testing.T) {
	t.Parallel()
	// All must decline (fall back), none may diverge.
	for _, s := range []string{
		`{"key":"k","seq":1,"extra":2}`,                              // unknown key
		`{"key":"k","seq":-1}`,                                       // negative uint
		`{"key":"k","seq":1.5}`,                                      // float
		`{"key":"k\u0041","seq":1}`,                                  // escape in string
		`{"key":"k","seq":1,"c":[{"i":0,"d":18446744073709551616}]}`, // overflow
		`{"key":"k","seq":1,"defs":[{"i":0,"n":"x","k":256}]}`,       // kind > 255
		`{"key":"k","seq":1,"h":[{"i":0,"b":[1,2,]}]}`,               // trailing comma
		`not json at all`,
		`{"key":"k","seq":1}trailing`,
	} {
		checkReportParse(t, []byte(s))
	}
}

func TestReportRoundTripRandomized(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	kinds := []Kind{KindCounter, KindGauge, KindHistLinear, KindHistPow2}
	names := []string{"rpc.calls", "simnet.drops", "chord.hops", "deploy.latency", "x"}
	for i := 0; i < 500; i++ {
		rep := &Report{Key: "obs", Node: "", Seq: rng.Uint64()}
		if rng.Intn(2) == 0 {
			rep.Node = names[rng.Intn(len(names))]
		}
		for j := rng.Intn(3); j > 0; j-- {
			rep.Defs = append(rep.Defs, Def{
				ID: rng.Intn(10), Name: names[rng.Intn(len(names))], Kind: kinds[rng.Intn(len(kinds))]})
		}
		for j := rng.Intn(3); j > 0; j-- {
			rep.C = append(rep.C, Delta{ID: rng.Intn(10), D: rng.Uint64()})
		}
		for j := rng.Intn(3); j > 0; j-- {
			rep.G = append(rep.G, GaugeVal{ID: rng.Intn(10), V: rng.Int63() - rng.Int63()})
		}
		for j := rng.Intn(2); j > 0; j-- {
			hd := HistDelta{ID: rng.Intn(10), S: rng.Int63() - rng.Int63()}
			for b := rng.Intn(4); b > 0; b-- {
				hd.B = append(hd.B, uint64(rng.Intn(NumBuckets)), uint64(rng.Intn(1000)+1))
			}
			rep.H = append(rep.H, hd)
		}
		checkReportEncode(t, rep)
	}
}

// FuzzMetricsReportParse feeds arbitrary bytes to the report parser;
// any accepted frame must decode identically via encoding/json, any
// declined frame must leave the receiver untouched.
func FuzzMetricsReportParse(f *testing.F) {
	f.Add([]byte(`{"key":"obs","seq":1}`))
	f.Add([]byte(`{"key":"obs","node":"n3","seq":2,"defs":[{"i":0,"n":"rpc.calls","k":0}],"c":[{"i":0,"d":9}]}`))
	f.Add([]byte(`{"key":"obs","seq":3,"g":[{"i":1,"v":-7}]}`))
	f.Add([]byte(`{"key":"obs","seq":4,"h":[{"i":2,"b":[21,3,40,1],"s":123456}]}`))
	f.Add([]byte(`{"key":"obs","seq":5,"h":[{"i":2,"b":null}]}`))
	f.Add([]byte(`{ "key" : "ws" , "seq" : 6 }`))
	f.Add([]byte(`{"key":"k","seq":18446744073709551615}`))
	f.Add([]byte(`{"key":"k","seq":18446744073709551616}`))
	f.Add([]byte(`{"key":"k","seq":1,"defs":[{"i":-1,"n":"x","k":1}]}`))
	f.Add([]byte(`{"key":"\u006b","seq":1}`))
	f.Add([]byte(`{"h":[{"b":[,]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		checkReportParse(t, data)
	})
}

// FuzzMetricsReportEncode fuzzes the encoder differentially over the
// scalar field space.
func FuzzMetricsReportEncode(f *testing.F) {
	f.Add("obs", "n1", uint64(1), "rpc.calls", uint8(0), int(3), uint64(17), int64(-4))
	f.Add("html<&>", "ü", uint64(1<<63), `we"ird`, uint8(9), int(-1), uint64(0), int64(1<<62))
	f.Add("", "", uint64(0), "", uint8(3), int(0), uint64(1), int64(0))
	f.Fuzz(func(t *testing.T, key, node string, seq uint64, name string, kind uint8, id int, d uint64, s int64) {
		rep := &Report{Key: key, Node: node, Seq: seq,
			Defs: []Def{{ID: id, Name: name, Kind: Kind(kind)}},
			C:    []Delta{{ID: id, D: d}},
			G:    []GaugeVal{{ID: id, V: s}},
			H:    []HistDelta{{ID: id, B: []uint64{d % NumBuckets, 1}, S: s}},
		}
		checkReportEncode(t, rep)
	})
}
