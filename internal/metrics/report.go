package metrics

// Report is one frame of the metrics wire protocol: everything that
// changed on a node since its previous report, llenc-framed and
// delta-encoded. Counters ship the increment since the last report,
// gauges ship their absolute value when it moved, histograms ship
// sparse (bucket, increment) pairs plus the sum delta. Instrument
// names travel once per stream as a dictionary (Defs) the first time a
// report mentions them; every later reference is the dense id, so a
// steady-state frame is a handful of small integers.
//
// The aggregator authenticates streams exactly like the paper's log
// collector: the first report must present a key the controller
// authorized, and a stream that stops presenting it is dropped.
type Report struct {
	Key  string      `json:"key"`
	Node string      `json:"node,omitempty"`
	Seq  uint64      `json:"seq"`
	Defs []Def       `json:"defs,omitempty"`
	C    []Delta     `json:"c,omitempty"`
	G    []GaugeVal  `json:"g,omitempty"`
	H    []HistDelta `json:"h,omitempty"`
}

// Def introduces instrument id i with its name and kind.
type Def struct {
	ID   int    `json:"i"`
	Name string `json:"n"`
	Kind Kind   `json:"k"`
}

// Delta is a counter increment since the previous report.
type Delta struct {
	ID int    `json:"i"`
	D  uint64 `json:"d"`
}

// GaugeVal is a gauge's absolute value at report time.
type GaugeVal struct {
	ID int   `json:"i"`
	V  int64 `json:"v"`
}

// HistDelta is a histogram's sparse bucket increments: B holds
// flattened (bucket index, count increment) pairs, S the sum increment.
type HistDelta struct {
	ID int      `json:"i"`
	B  []uint64 `json:"b"`
	S  int64    `json:"s,omitempty"`
}

// histState remembers a histogram's last-reported totals.
type histState struct {
	buckets [NumBuckets]uint64
	sum     int64
	pairs   []uint64 // reused backing for HistDelta.B
}

// instrState remembers one instrument's last-reported value.
type instrState struct {
	c uint64
	g int64
	h *histState
}

// deltaState tracks what a stream has already shipped: which
// dictionary entries went out and every instrument's last-reported
// totals. One deltaState belongs to exactly one stream (reports carry
// increments, so streams cannot share it).
type deltaState struct {
	defsSent int
	last     []instrState
}

// appendDelta fills rep with everything that changed in reg since st's
// last committed report and reports whether the frame carries
// anything. It does NOT advance st — the caller commits with
// commitDelta only once the frame is safely on the wire, so a failed
// encode keeps the deltas for the next flush instead of silently
// dropping that period. The report's slices are reused across calls;
// HistDelta.B aliases st-owned scratch, so rep must be encoded (and
// committed or abandoned) before the next call.
func appendDelta(reg *Registry, st *deltaState, rep *Report) bool {
	instrs := reg.snapshot()
	rep.Defs, rep.C, rep.G, rep.H = rep.Defs[:0], rep.C[:0], rep.G[:0], rep.H[:0]
	for len(st.last) < len(instrs) {
		st.last = append(st.last, instrState{})
	}
	for id, in := range instrs {
		if id >= st.defsSent {
			rep.Defs = append(rep.Defs, Def{ID: id, Name: in.name, Kind: in.kind})
		}
		s := &st.last[id]
		switch in.kind {
		case KindCounter:
			if d := in.c.Total() - s.c; d != 0 {
				rep.C = append(rep.C, Delta{ID: id, D: d})
			}
		case KindGauge:
			if v := in.g.Value(); v != s.g {
				rep.G = append(rep.G, GaugeVal{ID: id, V: v})
			}
		default: // histograms
			if s.h == nil {
				s.h = &histState{}
			}
			hs := s.h
			pairs := hs.pairs[:0]
			if bb := in.h.buckets.Load(); bb != nil { // untouched: nothing to delta
				for b := range bb {
					if d := bb[b].Load() - hs.buckets[b]; d != 0 {
						pairs = append(pairs, uint64(b), d)
					}
				}
			}
			hs.pairs = pairs
			if len(pairs) > 0 {
				rep.H = append(rep.H, HistDelta{ID: id, B: pairs, S: in.h.Sum() - hs.sum})
			}
		}
	}
	return len(rep.C)+len(rep.G)+len(rep.H) > 0 || len(rep.Defs) > 0
}

// commitDelta applies an encoded report back onto st: the reported
// deltas — not re-read instrument totals, which other tasks may have
// advanced meanwhile — become the new last-reported values.
func commitDelta(st *deltaState, rep *Report) {
	for _, c := range rep.C {
		st.last[c.ID].c += c.D
	}
	for _, g := range rep.G {
		st.last[g.ID].g = g.V
	}
	for _, h := range rep.H {
		hs := st.last[h.ID].h
		for i := 0; i+1 < len(h.B); i += 2 {
			hs.buckets[h.B[i]] += h.B[i+1]
		}
		hs.sum += h.S
	}
	for _, d := range rep.Defs {
		if d.ID >= st.defsSent {
			st.defsSent = d.ID + 1
		}
	}
}
