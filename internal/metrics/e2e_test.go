package metrics_test

import (
	"testing"
	"time"

	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
)

// newSimPair builds an aggregator on host 0 and returns a dialer for
// reporters on other hosts, all on one kernel.
func newSimPair(t *testing.T, k *sim.Kernel, nhosts int) (*simnet.Network, *metrics.Aggregator) {
	t.Helper()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, nhosts, 1)
	var agg *metrics.Aggregator
	k.Go(func() {
		var err error
		agg, err = metrics.NewAggregator(nw.Node(0), 7999, k.Go)
		if err != nil {
			t.Errorf("aggregator: %v", err)
			return
		}
		agg.Authorize("obs")
	})
	k.Run()
	return nw, agg
}

func TestReporterAggregatorEndToEnd(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw, agg := newSimPair(t, k, 3)

	for i := 1; i <= 2; i++ {
		host := i
		k.Go(func() {
			reg := metrics.NewRegistry()
			c := reg.Counter("lookups")
			h := reg.Histogram("hops", metrics.KindHistLinear)
			rep, err := metrics.DialReporter(nw.Node(host), agg.Addr(), reg,
				metrics.ReporterConfig{Key: "obs", Node: simnet.HostName(host)})
			if err != nil {
				t.Errorf("reporter %d: %v", host, err)
				return
			}
			for j := 0; j < 5; j++ {
				c.Inc()
				h.Observe(int64(host)) // host 1 observes 1s, host 2 observes 2s
				if err := rep.Flush(); err != nil {
					t.Errorf("flush: %v", err)
				}
				k.Sleep(time.Second)
			}
			frames, bytes := rep.Sent()
			if frames != 5 || bytes == 0 {
				t.Errorf("reporter %d sent %d frames %d bytes", host, frames, bytes)
			}
		})
	}
	k.Run()

	if agg.Nodes() != 2 {
		t.Fatalf("aggregator saw %d nodes, want 2", agg.Nodes())
	}
	if got := agg.CounterTotal("lookups"); got != 10 {
		t.Fatalf("merged lookups %d, want 10", got)
	}
	count, sum := agg.HistStats("hops")
	if count != 10 || sum != 15 {
		t.Fatalf("merged hops count=%d sum=%d, want 10/15", count, sum)
	}
	sorted := agg.HistSorted("hops")
	if p50 := sorted.Percentile(50); p50 != 1 {
		t.Fatalf("hops p50 = %d, want 1", p50)
	}
	if p99 := sorted.Percentile(99); p99 != 2 {
		t.Fatalf("hops p99 = %d, want 2", p99)
	}
	perNode := agg.PerNodeSorted("lookups")
	if len(perNode) != 2 || perNode.Percentile(100) != 5 {
		t.Fatalf("per-node lookups %v", perNode)
	}
	frames, bytes := agg.Received()
	if frames != 10 || bytes == 0 {
		t.Fatalf("aggregator received %d frames %d bytes", frames, bytes)
	}

	snaps := agg.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "lookups" || snaps[1].Name != "hops" {
		t.Fatalf("snapshot %+v", snaps)
	}
	if snaps[0].Total != 10 || snaps[1].Count != 10 || snaps[1].P50 != 1 {
		t.Fatalf("snapshot values %+v", snaps)
	}
}

func TestAggregatorRejectsUnknownKey(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw, agg := newSimPair(t, k, 2)
	k.Go(func() {
		reg := metrics.NewRegistry()
		reg.Counter("x").Inc()
		rep, err := metrics.DialReporter(nw.Node(1), agg.Addr(), reg,
			metrics.ReporterConfig{Key: "forged", Node: "n1"})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		rep.Flush() //nolint:errcheck
		reg.Counter("x").Inc()
		rep.Flush() //nolint:errcheck
	})
	k.Run()
	if agg.Nodes() != 0 {
		t.Fatal("unauthenticated stream absorbed")
	}
	if f, _ := agg.Received(); f != 0 {
		t.Fatalf("frames accepted: %d", f)
	}
}

func TestAggregatorRejectsKindConflict(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw, agg := newSimPair(t, k, 3)
	k.Go(func() {
		reg := metrics.NewRegistry()
		reg.Counter("m").Inc()
		rep, err := metrics.DialReporter(nw.Node(1), agg.Addr(), reg, metrics.ReporterConfig{Key: "obs", Node: "n1"})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		rep.Flush() //nolint:errcheck
	})
	k.Run()
	k.Go(func() {
		reg := metrics.NewRegistry()
		reg.Gauge("m").Set(3) // same name, different kind
		rep, err := metrics.DialReporter(nw.Node(2), agg.Addr(), reg, metrics.ReporterConfig{Key: "obs", Node: "n2"})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		rep.Flush() //nolint:errcheck
	})
	k.Run()
	if got := agg.CounterTotal("m"); got != 1 {
		t.Fatalf("counter total %d, want 1", got)
	}
	if agg.GaugeSum("m") != 0 {
		t.Fatal("conflicting gauge merged")
	}
}

func TestAggregatorSurvivesReporterRestart(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw, agg := newSimPair(t, k, 2)
	run := func() {
		reg := metrics.NewRegistry() // fresh instruments: a restarted node
		reg.Counter("restarts").Add(3)
		rep, err := metrics.DialReporter(nw.Node(1), agg.Addr(), reg, metrics.ReporterConfig{Key: "obs", Node: "n1"})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		rep.Flush() //nolint:errcheck
		rep.Close()
	}
	k.Go(run)
	k.Run()
	k.Go(run)
	k.Run()
	// Counter deltas accumulate across the restart; the node count does not.
	if got := agg.CounterTotal("restarts"); got != 6 {
		t.Fatalf("total %d, want 6", got)
	}
	if agg.Nodes() != 1 {
		t.Fatalf("nodes %d, want 1", agg.Nodes())
	}
}

func TestReporterSkipsIdleFlushes(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw, agg := newSimPair(t, k, 2)
	k.Go(func() {
		reg := metrics.NewRegistry()
		c := reg.Counter("x")
		rep, err := metrics.DialReporter(nw.Node(1), agg.Addr(), reg, metrics.ReporterConfig{Key: "obs", Node: "n1"})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Inc()
		rep.Flush() //nolint:errcheck
		for i := 0; i < 10; i++ {
			rep.Flush() //nolint:errcheck — idle: nothing changed
		}
		if frames, _ := rep.Sent(); frames != 1 {
			t.Errorf("idle flushes sent %d frames, want 1", frames)
		}
	})
	k.Run()
	if f, _ := agg.Received(); f != 1 {
		t.Fatalf("aggregator received %d frames, want 1", f)
	}
}

// TestReporterReconnectResumes bounces the reporter's host mid-stream:
// after Reconnect the stream resumes with increments (deltas built
// during the outage included), never re-shipping lifetime totals —
// the aggregator's view stays exact.
func TestReporterReconnectResumes(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw, agg := newSimPair(t, k, 2)
	k.Go(func() {
		reg := metrics.NewRegistry()
		c := reg.Counter("x")
		rep, err := metrics.DialReporter(nw.Node(1), agg.Addr(), reg,
			metrics.ReporterConfig{Key: "obs", Node: "n1"})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Add(3)
		if err := rep.Flush(); err != nil {
			t.Errorf("first flush: %v", err)
		}
		// Let the frame land before the crash: data still in flight when
		// a host dies is lost with it, like any real crash.
		k.Sleep(time.Second)
		// Crash the reporter's host: its stream resets while the
		// instruments keep counting.
		nw.Host(1).SetDown(true)
		c.Add(2)
		if err := rep.Flush(); err == nil {
			t.Error("flush on a dead host did not fail")
		}
		nw.Host(1).SetDown(false)
		if err := rep.Reconnect(); err != nil {
			t.Errorf("reconnect: %v", err)
			return
		}
		c.Add(1)
		if err := rep.Flush(); err != nil {
			t.Errorf("post-reconnect flush: %v", err)
		}
	})
	k.Run()
	// 3 before the crash + (2 + 1) after: no loss, no double count.
	if got := agg.CounterTotal("x"); got != 6 {
		t.Fatalf("merged total %d, want 6", got)
	}
	if agg.Nodes() != 1 {
		t.Fatalf("nodes %d, want 1", agg.Nodes())
	}
}

// TestAggregatorRejectsDuplicateDefIDs sends a hand-built hostile frame
// whose defs reuse one id with conflicting kinds; the aggregator must
// refuse the whole frame rather than merge into the wrong series.
func TestAggregatorRejectsDuplicateDefIDs(t *testing.T) {
	t.Parallel()
	k := sim.NewKernel()
	nw, agg := newSimPair(t, k, 2)
	k.Go(func() {
		conn, err := nw.Node(1).Dial(agg.Addr(), time.Minute)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		enc := llenc.NewWriter(conn)
		err = enc.Encode(&metrics.Report{
			Key: "obs", Node: "n1", Seq: 1,
			Defs: []metrics.Def{
				{ID: 0, Name: "a", Kind: metrics.KindCounter},
				{ID: 0, Name: "b", Kind: metrics.KindGauge},
			},
			C: []metrics.Delta{{ID: 0, D: 5}},
		})
		if err != nil {
			t.Errorf("encode: %v", err)
		}
	})
	k.Run()
	if f, _ := agg.Received(); f != 0 {
		t.Fatalf("hostile frame accepted (%d frames)", f)
	}
	if agg.CounterTotal("a") != 0 || agg.GaugeSum("b") != 0 {
		t.Fatal("hostile deltas merged")
	}
}
