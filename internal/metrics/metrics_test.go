package metrics

import (
	"sync"
	"testing"
)

func TestCounterShardedTotal(t *testing.T) {
	t.Parallel()
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Total(); got != 8*10005 {
		t.Fatalf("total %d, want %d", got, 8*10005)
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	t.Parallel()
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-2)
	h.Observe(9)
	if c.Total() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", KindHistPow2) != nil || r.Len() != 0 {
		t.Fatal("nil registry handed out live instruments")
	}
}

func TestRegistryIdempotentAndKindSafe(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("same name produced distinct counters")
	}
	if r.Gauge("a") != nil {
		t.Fatal("kind mismatch produced a live gauge")
	}
	if r.Histogram("h", KindCounter) != nil {
		t.Fatal("non-histogram kind accepted")
	}
	if r.Len() != 1 {
		t.Fatalf("len %d, want 1", r.Len())
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	cases := []struct {
		kind Kind
		v    int64
		want int
	}{
		{KindHistLinear, -3, 0}, {KindHistLinear, 0, 0}, {KindHistLinear, 5, 5},
		{KindHistLinear, 63, 63}, {KindHistLinear, 1000, 63},
		{KindHistPow2, 0, 0}, {KindHistPow2, 1, 1}, {KindHistPow2, 2, 2},
		{KindHistPow2, 3, 2}, {KindHistPow2, 4, 3}, {KindHistPow2, 1 << 40, 41},
		{KindHistPow2, 1<<63 - 1, 63},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.kind, tc.v); got != tc.want {
			t.Errorf("bucketOf(%v, %d) = %d, want %d", tc.kind, tc.v, got, tc.want)
		}
	}
	// Upper bounds bracket their bucket.
	for i := 1; i < 63; i++ {
		up := BucketUpper(KindHistPow2, i)
		if bucketOf(KindHistPow2, up) != i || bucketOf(KindHistPow2, up+1) != i+1 {
			t.Fatalf("pow2 bucket %d upper bound %d misbrackets", i, up)
		}
	}
}

func TestDeltaReports(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	c := reg.Counter("calls")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat", KindHistPow2)

	var st deltaState
	var rep Report
	// flush mirrors Reporter.Flush: build, then commit as if the frame
	// reached the wire.
	flush := func() bool {
		if !appendDelta(reg, &st, &rep) {
			return false
		}
		commitDelta(&st, &rep)
		return true
	}
	c.Add(10)
	g.Set(4)
	h.Observe(100)
	if !flush() {
		t.Fatal("first delta empty")
	}
	if len(rep.Defs) != 3 || len(rep.C) != 1 || len(rep.G) != 1 || len(rep.H) != 1 {
		t.Fatalf("first report %+v", rep)
	}
	if rep.C[0].D != 10 || rep.G[0].V != 4 || rep.H[0].S != 100 {
		t.Fatalf("first deltas %+v", rep)
	}

	// Nothing changed: no frame.
	if flush() {
		t.Fatalf("idle delta not empty: %+v", rep)
	}

	// Increments only ship the difference, and defs are not resent.
	c.Add(5)
	h.Observe(100)
	h.Observe(3)
	if !flush() {
		t.Fatal("second delta empty")
	}
	if len(rep.Defs) != 0 {
		t.Fatalf("defs resent: %+v", rep.Defs)
	}
	if rep.C[0].D != 5 {
		t.Fatalf("counter delta %d, want 5", rep.C[0].D)
	}
	if len(rep.H) != 1 || rep.H[0].S != 103 || len(rep.H[0].B) != 4 {
		t.Fatalf("hist delta %+v", rep.H)
	}

	// Instruments registered later ship their def on the next delta.
	reg.Counter("late").Inc()
	if !flush() {
		t.Fatal("late delta empty")
	}
	if len(rep.Defs) != 1 || rep.Defs[0].Name != "late" || rep.Defs[0].ID != 3 {
		t.Fatalf("late defs %+v", rep.Defs)
	}

	// An uncommitted build (a failed send) keeps its deltas: the next
	// build re-reports them.
	c.Add(7)
	if !appendDelta(reg, &st, &rep) || rep.C[0].D != 7 {
		t.Fatalf("pre-failure delta %+v", rep.C)
	}
	c.Add(1) // more activity while the frame was failing
	if !appendDelta(reg, &st, &rep) {
		t.Fatal("post-failure delta empty")
	}
	if rep.C[0].D != 8 {
		t.Fatalf("deltas lost across a failed send: %+v", rep.C)
	}
	commitDelta(&st, &rep)
	if appendDelta(reg, &st, &rep) {
		t.Fatalf("committed deltas resent: %+v", rep)
	}
}
