package workload

import (
	"testing"
	"time"
)

func TestOvernetTracePopulation(t *testing.T) {
	cfg := DefaultOvernet()
	tr := OvernetTrace(cfg)
	pop, _, _ := tr.Population(time.Minute)
	// Population stays near the target for the whole window.
	for m := 2; m < int(cfg.Duration/time.Minute)-1; m++ {
		if pop[m] < cfg.Nodes*80/100 || pop[m] > cfg.Nodes*110/100 {
			t.Fatalf("population at minute %d = %d, want ≈%d", m, pop[m], cfg.Nodes)
		}
	}
}

func TestOvernetChurnRateAt10x(t *testing.T) {
	cfg := DefaultOvernet()
	tr := OvernetTrace(cfg).SpeedUp(10)
	pop, joins, leaves := tr.Population(time.Minute)
	// §5.5: at 10× as much as ≈14% of the nodes change state within a
	// single minute. Check the mid-trace average is in that regime.
	minutes := int(cfg.Duration / 10 / time.Minute)
	changes, total := 0, 0
	for m := 1; m < minutes-1; m++ {
		changes += joins[m] + leaves[m]
		total += pop[m]
	}
	avgRate := float64(changes) / float64(total)
	if avgRate < 0.10 || avgRate > 0.19 {
		t.Fatalf("10x churn rate = %.1f%%/min, want ≈14%%", avgRate*100)
	}
}

func TestOvernetDeterministic(t *testing.T) {
	a := OvernetTrace(DefaultOvernet())
	b := OvernetTrace(DefaultOvernet())
	if len(a) != len(b) {
		t.Fatalf("non-deterministic trace")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestWebRequestsRateAndSkew(t *testing.T) {
	g, err := NewWebRequests(DefaultWeb())
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	counts := map[string]int{}
	var last time.Duration
	for i := 0; i < n; i++ {
		at, url := g.Next()
		if at < last {
			t.Fatal("time went backwards")
		}
		last = at
		counts[url]++
	}
	// Rate ≈ 100/s.
	rate := float64(n) / last.Seconds()
	if rate < 90 || rate > 110 {
		t.Fatalf("rate = %.1f req/s, want ≈100", rate)
	}
	// Zipf skew: the most popular URL should take a few percent of all
	// requests; the distinct-URL count must be far below n.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/100 {
		t.Fatalf("top URL only %d requests; not skewed", max)
	}
	if len(counts) > 42000 {
		t.Fatalf("distinct URLs %d exceed population", len(counts))
	}
}

func TestTheoreticalHitRatioNearPaper(t *testing.T) {
	cfg := DefaultWeb()
	// Aggregate cache capacity in §5.7: 100 nodes × 100 entries.
	hr := cfg.TheoreticalHitRatio(100 * 100)
	// The paper observes 77.6% under LRU + a 120 s TTL; the popularity
	// skew must leave headroom above that (the theoretical optimum
	// ignores TTL expirations and per-node capacity fragmentation).
	if hr < 0.78 || hr > 0.99 {
		t.Fatalf("theoretical hit ratio %.3f cannot produce the paper's 77.6%%", hr)
	}
}

func TestWebConfigValidation(t *testing.T) {
	bad := []WebConfig{
		{URLs: 0, ZipfS: 1.2, RatePerSec: 10},
		{URLs: 10, ZipfS: 0.9, RatePerSec: 10},
		{URLs: 10, ZipfS: 1.2, RatePerSec: 0},
	}
	for _, cfg := range bad {
		if _, err := NewWebRequests(cfg); err == nil {
			t.Errorf("accepted invalid config %+v", cfg)
		}
	}
}

func TestProbeSamples(t *testing.T) {
	got := ProbeSamples(10, 3, func(host int) time.Duration {
		return time.Duration(host) * time.Second
	})
	if len(got) != 10 {
		t.Fatalf("samples = %d", len(got))
	}
	if got[0] != 0 || got[1] != time.Second || got[3] != 0 {
		t.Fatalf("host cycling wrong: %v", got[:4])
	}
}
