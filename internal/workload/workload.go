// Package workload synthesizes the external inputs the paper's
// experiments consume: the Overnet availability trace driving Fig. 11's
// churn, the IRCache-style HTTP request stream driving Fig. 14's
// cooperative web cache, and block workloads for dissemination runs. Each
// generator documents how it preserves the statistical properties the
// original data contributes (see DESIGN.md, substitutions).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/churn"
)

// OvernetConfig parameterizes the synthetic Overnet availability trace.
// The paper replays the trace of Bhagwan et al.'s Overnet study [12]:
// ≈600–650 concurrent nodes with heavy, session-based churn; sped up 10×
// it reaches ≈14% of nodes changing state per minute (§5.5).
type OvernetConfig struct {
	Nodes       int           // target concurrent population
	Duration    time.Duration // trace length (paper window: ≈50 minutes at 1×… scaled)
	MeanSession time.Duration // mean node uptime
	MeanAway    time.Duration // mean downtime before rejoining
	Seed        int64
}

// DefaultOvernet matches the Fig. 11 setup at 1× speed: with a
// 143-minute mean session and one-hour mean downtime, the per-minute
// state-change rate is ≈1.4% of the live population at 1×, hence ≈14% at
// the paper's 10× speed-up.
func DefaultOvernet() OvernetConfig {
	return OvernetConfig{
		Nodes:       620,
		Duration:    50 * time.Minute,
		MeanSession: 143 * time.Minute,
		MeanAway:    60 * time.Minute,
		Seed:        12,
	}
}

// OvernetTrace generates an availability trace with exponential on/off
// sessions. The node pool is sized so the steady-state live population is
// cfg.Nodes; each rejoin uses a fresh slot, since a returning peer is a
// new overlay instance.
func OvernetTrace(cfg OvernetConfig) churn.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	up := float64(cfg.MeanSession) / float64(cfg.MeanSession+cfg.MeanAway)
	pool := int(float64(cfg.Nodes)/up + 0.5)
	var tr churn.Trace
	slot := 0
	session := func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(cfg.MeanSession))
	}
	away := func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(cfg.MeanAway))
	}
	for i := 0; i < pool; i++ {
		at := time.Duration(0)
		// Random initial phase: up with the steady-state probability
		// (sessions are memoryless, so the residual is Exp again).
		if rng.Float64() < up {
			cur := slot
			slot++
			tr = append(tr, churn.Event{At: 0, Action: churn.Join, Node: cur})
			at = session()
			if at >= cfg.Duration {
				continue
			}
			tr = append(tr, churn.Event{At: at, Action: churn.Leave, Node: cur})
			at += away()
		} else {
			at = away()
		}
		for at < cfg.Duration {
			cur := slot
			slot++
			tr = append(tr, churn.Event{At: at, Action: churn.Join, Node: cur})
			at += session()
			if at >= cfg.Duration {
				break
			}
			tr = append(tr, churn.Event{At: at, Action: churn.Leave, Node: cur})
			at += away()
		}
	}
	tr.Sort()
	return tr
}

// WebConfig parameterizes the HTTP request stream. The paper injects 100
// requests per second drawn from IRCache proxy traces: 1.7 million hits
// to 42,000 distinct URLs over the measured window, a popularity skew
// that yields a 77.6% hit ratio under the §5.7 cache policy.
type WebConfig struct {
	URLs       int     // distinct URL population
	ZipfS      float64 // Zipf exponent (s > 1)
	RatePerSec float64 // request rate
	Seed       int64
}

// DefaultWeb matches Fig. 14's workload.
func DefaultWeb() WebConfig {
	return WebConfig{URLs: 42000, ZipfS: 1.22, RatePerSec: 100, Seed: 14}
}

// WebRequests produces a deterministic request stream: URL indices with
// Zipf popularity plus exponential inter-arrivals. Call Next repeatedly.
type WebRequests struct {
	cfg  WebConfig
	zipf *rand.Zipf
	rng  *rand.Rand
	now  time.Duration
}

// NewWebRequests builds the generator.
func NewWebRequests(cfg WebConfig) (*WebRequests, error) {
	if cfg.URLs <= 0 || cfg.ZipfS <= 1 || cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("workload: invalid web config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.URLs-1))
	if z == nil {
		return nil, fmt.Errorf("workload: zipf rejected s=%f", cfg.ZipfS)
	}
	return &WebRequests{cfg: cfg, zipf: z, rng: rng}, nil
}

// Next returns the next request: its offset from stream start and URL.
func (w *WebRequests) Next() (at time.Duration, url string) {
	w.now += time.Duration(w.rng.ExpFloat64() / w.cfg.RatePerSec * float64(time.Second))
	return w.now, fmt.Sprintf("http://origin.example/%d", w.zipf.Uint64())
}

// TheoreticalHitRatio estimates the best-case hit ratio of an aggregate
// cache holding `capacity` distinct URLs under this Zipf popularity: the
// probability mass of the `capacity` most popular URLs. It guides
// calibration against the paper's 77.6%.
func (c WebConfig) TheoreticalHitRatio(capacity int) float64 {
	if capacity >= c.URLs {
		return 1
	}
	// Zipf pmf ∝ 1/(1+k)^s for rand.NewZipf with v=1.
	total, top := 0.0, 0.0
	for k := 0; k < c.URLs; k++ {
		p := 1 / math.Pow(1+float64(k), c.ZipfS)
		total += p
		if k < capacity {
			top += p
		}
	}
	return top / total
}

// ProbeSamples drives Fig. 3: n probe delays drawn from the PlanetLab
// model's per-host distribution via the provided sampler.
func ProbeSamples(n int, hosts int, sample func(host int) time.Duration) []time.Duration {
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sample(i%hosts))
	}
	return out
}
