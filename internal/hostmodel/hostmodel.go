// Package hostmodel models physical testbed machines hosting many
// application instances: memory footprints, garbage-collection pressure,
// CPU queueing and swap. It reproduces the runtime-scalability comparisons
// of §5.3 (Figs. 7 and 8), where the quantity under test is not protocol
// logic but how a hosting runtime (SPLAY's daemons versus FreePastry's
// JVMs) degrades as instances pile onto a machine.
//
// The model plugs into the simulated network as a receiver-side processing
// delay (simnet.Network.SetProcDelay): each delivered message pays a
// service time on its physical host's CPU queue. Service time grows with
// memory pressure (GC) and explodes when the host starts swapping, which
// yields the published inflection points.
package hostmodel

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind selects the hosting runtime being modeled.
type Kind int

const (
	// Splay models instances hosted by a splayd: the paper measures a
	// memory footprint under 1.5 MB per instance (Fig. 8).
	Splay Kind = iota
	// JVM models FreePastry under the authors' recommended setup: three
	// JVMs per host, nodes sharing each JVM's footprint (§5.3).
	JVM
)

func (k Kind) String() string {
	if k == Splay {
		return "splay"
	}
	return "jvm"
}

// Config sets the physical characteristics. DefaultConfig matches the
// paper's cluster: 11 machines, 2 GB RAM, dual cores.
type Config struct {
	Hosts    int
	MemBytes int64 // physical memory per host

	// SPLAY footprints: the daemon plus per-instance state.
	SplayDaemonBase  int64
	SplayPerInstance int64
	// JVM footprints: per-JVM base plus per-node heap.
	JVMBase        int64
	JVMsPerHost    int
	JVMPerInstance int64

	// Per-message CPU service time on an idle host.
	SplayMsgCost time.Duration
	JVMMsgCost   time.Duration

	// SwapPenalty multiplies service time once resident memory exceeds
	// physical memory.
	SwapPenalty float64

	// GCPauseProb is the per-message probability that a JVM-hosted
	// receiver is interrupted by a collector pause; GCPauseMean is the
	// pause's mean duration on an unpressured heap (it scales with the
	// GC factor). SPLAY-hosted instances have no such pauses.
	GCPauseProb float64
	GCPauseMean time.Duration

	// Seed drives the deterministic pause sampling.
	Seed int64
}

// DefaultConfig reproduces §5.3's cluster and the published breakpoints:
// FreePastry swaps at 1,980 nodes over 11 hosts (180/host) and SPLAY at
// 1,263 instances on one host.
func DefaultConfig(hosts int) Config {
	return Config{
		Hosts:    hosts,
		MemBytes: 2 << 30, // 2 GB
		// Daemon + libraries + OS share ≈154 MB; 1.5 MB per instance
		// (Fig. 8) puts the swap onset at exactly 1,263 instances.
		SplayDaemonBase:  154 << 20,
		SplayPerInstance: 1536 << 10,
		// Three 150 MB JVMs plus ≈8.9 MB per node swap at 180
		// nodes/host: 11 hosts × 180 = the paper's 1,980-node wall.
		JVMBase:        150 << 20,
		JVMsPerHost:    3,
		JVMPerInstance: 9100 << 10,
		SplayMsgCost:   100 * time.Microsecond,
		JVMMsgCost:     400 * time.Microsecond,
		SwapPenalty:    60,
		GCPauseProb:    0.25,
		GCPauseMean:    60 * time.Millisecond,
		Seed:           7,
	}
}

// hostState is one physical machine.
type hostState struct {
	kind      Kind
	instances int

	cpuFree time.Time

	// Load accounting over a sliding one-minute window, approximating
	// the "average number of runnable processes" reported by Fig. 8.
	winStart time.Time
	winBusy  time.Duration
	load     float64
}

// Cluster is a set of modeled machines plus the mapping from emulated
// overlay nodes (simnet hosts) to the physical machines running them.
type Cluster struct {
	cfg   Config
	hosts []*hostState
	owner []int // overlay node -> physical host
	rng   *rand.Rand
}

// NewCluster returns an empty cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.Hosts <= 0 {
		panic("hostmodel: no hosts")
	}
	c := &Cluster{
		cfg:   cfg,
		hosts: make([]*hostState, cfg.Hosts),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range c.hosts {
		c.hosts[i] = &hostState{}
	}
	return c
}

// AssignInstances places n overlay nodes round-robin across the physical
// hosts using the given runtime kind, replacing any previous placement.
func (c *Cluster) AssignInstances(n int, kind Kind) {
	c.owner = make([]int, n)
	for _, h := range c.hosts {
		h.kind = kind
		h.instances = 0
	}
	for i := 0; i < n; i++ {
		phys := i % c.cfg.Hosts
		c.owner[i] = phys
		c.hosts[phys].instances++
	}
}

// MemUsed returns the resident bytes on physical host i.
func (c *Cluster) MemUsed(i int) int64 {
	h := c.hosts[i]
	switch h.kind {
	case JVM:
		jvms := c.cfg.JVMsPerHost
		if h.instances < jvms {
			jvms = h.instances
		}
		return int64(jvms)*c.cfg.JVMBase + int64(h.instances)*c.cfg.JVMPerInstance
	default:
		return c.cfg.SplayDaemonBase + int64(h.instances)*c.cfg.SplayPerInstance
	}
}

// Swapping reports whether host i has exceeded physical memory.
func (c *Cluster) Swapping(i int) bool { return c.MemUsed(i) > c.cfg.MemBytes }

// MemPerInstance returns the apparent per-instance footprint on host i,
// the quantity Fig. 8 plots.
func (c *Cluster) MemPerInstance(i int) int64 {
	h := c.hosts[i]
	if h.instances == 0 {
		return 0
	}
	return c.MemUsed(i) / int64(h.instances)
}

// Load returns host i's most recent one-minute load figure.
func (c *Cluster) Load(i int) float64 { return c.hosts[i].load }

// gcFactor models collector pressure: service time inflates as resident
// memory approaches physical memory, and is additionally multiplied by
// SwapPenalty beyond it. This produces FreePastry's exponential delay
// growth past ~145 nodes/host and the hard wall at the swap point.
func (c *Cluster) gcFactor(i int) float64 {
	used := float64(c.MemUsed(i))
	capacity := float64(c.cfg.MemBytes)
	ratio := used / capacity
	if ratio <= 0.6 {
		return 1
	}
	if ratio >= 1 {
		over := ratio - 1
		return c.cfg.SwapPenalty * (1 + 10*over)
	}
	// 0.6 → 1×, 0.95 → ~8×, approaching the swap wall smoothly.
	return 1 / (1 - (ratio-0.6)/0.42)
}

// ProcDelay charges one delivered message of the given size against the
// overlay node's physical host and returns the induced latency (service
// plus CPU queueing). It is shaped to plug into
// simnet.Network.SetProcDelay; now must be the kernel's current time, so
// bind it via Hook.
func (c *Cluster) ProcDelay(now time.Time, node int, size int) time.Duration {
	if node < 0 || node >= len(c.owner) {
		return 0
	}
	h := c.hosts[c.owner[node]]
	base := c.cfg.SplayMsgCost
	if h.kind == JVM {
		base = c.cfg.JVMMsgCost
	}
	// Larger payloads cost proportionally more to deserialize.
	service := base + time.Duration(size)*time.Nanosecond/2
	factor := c.gcFactor(c.owner[node])
	service = time.Duration(float64(service) * factor)
	// JVM collector pauses: occasional stop-the-world interruptions whose
	// length grows with heap pressure. This, not steady per-message cost,
	// is what separates the Fig. 7(a) delay distributions.
	if h.kind == JVM && c.cfg.GCPauseProb > 0 && c.rng.Float64() < c.cfg.GCPauseProb {
		service += time.Duration(c.rng.ExpFloat64() * float64(c.cfg.GCPauseMean) * factor)
	}

	start := now
	if start.Before(h.cpuFree) {
		start = h.cpuFree
	}
	h.cpuFree = start.Add(service)

	// Sliding-window load accounting.
	if h.winStart.IsZero() {
		h.winStart = now
	}
	h.winBusy += service
	if w := now.Sub(h.winStart); w >= time.Minute {
		h.load = float64(h.winBusy) / float64(w)
		h.winStart, h.winBusy = now, 0
	}
	return h.cpuFree.Sub(now)
}

// Hook adapts the cluster to simnet's processing-delay signature using
// the supplied clock.
func (c *Cluster) Hook(now func() time.Time) func(node, size int) time.Duration {
	return func(node, size int) time.Duration {
		return c.ProcDelay(now(), node, size)
	}
}

// SwapOnset returns the smallest instance count at which a host of the
// given kind starts swapping, the analytical version of the published
// breakpoints (1,263 SPLAY instances; 180 FreePastry nodes per host).
func (c *Cluster) SwapOnset(kind Kind) int {
	switch kind {
	case JVM:
		avail := c.cfg.MemBytes - int64(c.cfg.JVMsPerHost)*c.cfg.JVMBase
		return int(avail/c.cfg.JVMPerInstance) + 1
	default:
		avail := c.cfg.MemBytes - c.cfg.SplayDaemonBase
		return int(avail/c.cfg.SplayPerInstance) + 1
	}
}

// String summarizes the placement for experiment logs.
func (c *Cluster) String() string {
	total := 0
	for _, h := range c.hosts {
		total += h.instances
	}
	return fmt.Sprintf("hostmodel.Cluster{hosts=%d instances=%d}", len(c.hosts), total)
}
