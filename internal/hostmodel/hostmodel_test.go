package hostmodel

import (
	"testing"
	"time"
)

func TestSwapOnsetMatchesPaper(t *testing.T) {
	c := NewCluster(DefaultConfig(1))
	if got := c.SwapOnset(Splay); got != 1263 {
		t.Errorf("SPLAY swap onset = %d instances, want 1263 (Fig. 8)", got)
	}
	jvmOnset := c.SwapOnset(JVM)
	if jvmOnset < 175 || jvmOnset > 185 {
		t.Errorf("JVM swap onset = %d nodes/host, want ≈180 (1,980 over 11 hosts)", jvmOnset)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := NewCluster(DefaultConfig(11))
	c.AssignInstances(1100, Splay)
	// 1100 instances over 11 hosts = 100 each.
	for i := 0; i < 11; i++ {
		if c.hosts[i].instances != 100 {
			t.Fatalf("host %d has %d instances", i, c.hosts[i].instances)
		}
		if c.Swapping(i) {
			t.Fatalf("host %d swapping at 100 SPLAY instances", i)
		}
	}
	c.AssignInstances(11*200, JVM)
	if !c.Swapping(0) {
		t.Fatal("host not swapping at 200 JVM nodes (onset ≈180)")
	}
}

func TestGCFactorMonotone(t *testing.T) {
	c := NewCluster(DefaultConfig(1))
	prev := 0.0
	for n := 10; n <= 220; n += 10 {
		c.AssignInstances(n, JVM)
		f := c.gcFactor(0)
		if f < prev {
			t.Fatalf("gc factor decreased at %d instances: %f < %f", n, f, prev)
		}
		prev = f
	}
	c.AssignInstances(100, JVM)
	light := c.gcFactor(0)
	c.AssignInstances(179, JVM)
	heavy := c.gcFactor(0)
	c.AssignInstances(200, JVM)
	swap := c.gcFactor(0)
	if light > 1.6 {
		t.Errorf("gc factor at 100 nodes = %f, want ≈1", light)
	}
	if heavy < 3 {
		t.Errorf("gc factor at 179 nodes = %f, want high pressure", heavy)
	}
	if swap < 50 {
		t.Errorf("gc factor while swapping = %f, want ≥ SwapPenalty", swap)
	}
}

func TestProcDelayQueues(t *testing.T) {
	c := NewCluster(DefaultConfig(1))
	c.AssignInstances(10, Splay)
	now := time.Unix(0, 0)
	d1 := c.ProcDelay(now, 0, 100)
	d2 := c.ProcDelay(now, 1, 100) // same instant: queues behind d1
	if d2 <= d1 {
		t.Fatalf("no CPU queueing: d1=%s d2=%s", d1, d2)
	}
	// After the queue drains, delay returns to the base service time.
	later := now.Add(time.Second)
	d3 := c.ProcDelay(later, 2, 100)
	if d3 != d1 {
		t.Fatalf("post-drain delay %s != base %s", d3, d1)
	}
}

func TestJVMDelaysExplodeNearSwap(t *testing.T) {
	cfg := DefaultConfig(11)
	light := NewCluster(cfg)
	light.AssignInstances(11*100, JVM)
	heavy := NewCluster(cfg)
	heavy.AssignInstances(11*179, JVM)
	swapping := NewCluster(cfg)
	swapping.AssignInstances(11*185, JVM)

	now := time.Unix(0, 0)
	dl := light.ProcDelay(now, 0, 1024)
	dh := heavy.ProcDelay(now, 0, 1024)
	ds := swapping.ProcDelay(now, 0, 1024)
	if !(dl < dh && dh < ds) {
		t.Fatalf("delay ordering broken: light=%s heavy=%s swap=%s", dl, dh, ds)
	}
	if ds < 10*dl {
		t.Fatalf("swap delay %s not dramatically above light %s", ds, dl)
	}
}

func TestSplayScalesFlat(t *testing.T) {
	// 500 SPLAY instances/host (the paper's 5,500 over 11 hosts) must not
	// inflate service times: that is Fig. 7(c)'s flatness.
	cfg := DefaultConfig(11)
	few := NewCluster(cfg)
	few.AssignInstances(11*10, Splay)
	many := NewCluster(cfg)
	many.AssignInstances(11*500, Splay)
	now := time.Unix(0, 0)
	df := few.ProcDelay(now, 0, 1024)
	dm := many.ProcDelay(now, 0, 1024)
	if dm > 2*df {
		t.Fatalf("SPLAY delay grew with instance count: %s vs %s", dm, df)
	}
}

func TestMemPerInstance(t *testing.T) {
	c := NewCluster(DefaultConfig(1))
	c.AssignInstances(1000, Splay)
	per := c.MemPerInstance(0)
	// Apparent footprint = instances' share plus amortized daemon.
	if per < 1<<20 || per > 2<<20 {
		t.Fatalf("per-instance memory = %d bytes, want ≈1.5–1.7 MB", per)
	}
}

func TestLoadWindow(t *testing.T) {
	c := NewCluster(DefaultConfig(1))
	c.AssignInstances(100, Splay)
	now := time.Unix(0, 0)
	for i := 0; i < 10000; i++ {
		now = now.Add(10 * time.Millisecond)
		c.ProcDelay(now, i%100, 512)
	}
	if c.Load(0) <= 0 {
		t.Fatal("load never computed")
	}
	if c.Load(0) > 3 {
		t.Fatalf("load = %f, want modest (<3, Fig. 8)", c.Load(0))
	}
}
