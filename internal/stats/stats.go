// Package stats provides the small numerical helpers the experiment
// harness uses to turn raw samples into the paper's figures: percentiles,
// CDFs, PDFs and time-bucketed series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Durations is a mutable sample of durations.
type Durations []time.Duration

// Sorted is an ascending sample: the sort-once view every rank
// statistic reads from. Converting once and querying many times avoids
// the repeated O(n log n) the old per-call sorting paid — the experiment
// harness asks for several percentiles, a CDF and a few thresholds from
// the same sample.
type Sorted []time.Duration

// Sorted returns an ascending copy of the sample.
func (d Durations) Sorted() Sorted {
	out := make(Sorted, len(d))
	copy(out, d)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank. It returns 0 for empty samples.
func (s Sorted) Percentile(p float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Quantile returns the q-th quantile (q in [0,1]) using the
// floor-index convention idx = ⌊q·n⌋ — the harness's historical rule
// for its five-number summaries (see experiments.pctiles). It differs
// from nearest-rank by at most one rank; both live here so the two
// conventions cannot drift apart in copies.
func (s Sorted) Quantile(q float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// CDFAt returns the fraction of samples ≤ limit by binary search.
func (s Sorted) CDFAt(limit time.Duration) float64 {
	if len(s) == 0 {
		return 0
	}
	n := sort.Search(len(s), func(i int) bool { return s[i] > limit })
	return float64(n) / float64(len(s))
}

// CDF returns the sample's CDF evaluated at n evenly spaced points up to
// the maximum sample.
func (s Sorted) CDF(points int) []CDFPoint {
	if len(s) == 0 || points <= 0 {
		return nil
	}
	max := s[len(s)-1]
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		x := time.Duration(int64(max) * int64(i) / int64(points))
		idx := sort.Search(len(s), func(j int) bool { return s[j] > x })
		out = append(out, CDFPoint{X: x, Cum: float64(idx) / float64(len(s))})
	}
	return out
}

// Percentile is the one-shot convenience: sort once, query once.
// Callers needing several statistics should hold the Sorted view.
func (d Durations) Percentile(p float64) time.Duration {
	return d.Sorted().Percentile(p)
}

// Mean returns the arithmetic mean.
func (d Durations) Mean() time.Duration {
	if len(d) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d {
		sum += v
	}
	return sum / time.Duration(len(d))
}

// CDFAt returns the fraction of samples ≤ limit with a linear scan (no
// sorted copy); hold a Sorted view to evaluate many thresholds.
func (d Durations) CDFAt(limit time.Duration) float64 {
	if len(d) == 0 {
		return 0
	}
	n := 0
	for _, v := range d {
		if v <= limit {
			n++
		}
	}
	return float64(n) / float64(len(d))
}

// CDFPoint is one (x, fraction ≤ x) pair.
type CDFPoint struct {
	X   time.Duration
	Cum float64 // in [0,1]
}

// CDF is the one-shot convenience for Sorted.CDF.
func (d Durations) CDF(points int) []CDFPoint {
	return d.Sorted().CDF(points)
}

// IntHistogram counts occurrences of small non-negative integers (e.g.
// route lengths) and reports a PDF.
type IntHistogram struct {
	counts []int
	total  int
}

// Add records one observation.
func (h *IntHistogram) Add(v int) {
	if v < 0 {
		return
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Merge folds o's observations into h. Merging is commutative, so
// per-partition histograms collected by a sharded simulation combine into
// the same aggregate in any order.
func (h *IntHistogram) Merge(o *IntHistogram) {
	for v, c := range o.counts {
		if c == 0 {
			continue
		}
		for len(h.counts) <= v {
			h.counts = append(h.counts, 0)
		}
		h.counts[v] += c
		h.total += c
	}
}

// PDF returns P(X = i) for each i up to the largest observation.
func (h *IntHistogram) PDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Mean returns the sample mean.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for i, c := range h.counts {
		sum += i * c
	}
	return float64(sum) / float64(h.total)
}

// TimeSeries buckets timestamped values into fixed windows, producing the
// paper's "per-minute" plots.
type TimeSeries struct {
	Start  time.Time
	Bucket time.Duration
	sums   []float64
	counts []int
}

// NewTimeSeries returns a series bucketed by the given window.
func NewTimeSeries(start time.Time, bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("stats: non-positive bucket")
	}
	return &TimeSeries{Start: start, Bucket: bucket}
}

// Add records value v at time t. Samples before Start are ignored.
func (ts *TimeSeries) Add(t time.Time, v float64) {
	if t.Before(ts.Start) {
		return
	}
	i := int(t.Sub(ts.Start) / ts.Bucket)
	for len(ts.sums) <= i {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.sums[i] += v
	ts.counts[i]++
}

// Buckets returns the number of buckets with data capacity.
func (ts *TimeSeries) Buckets() int { return len(ts.sums) }

// Sum returns the sum of values in bucket i.
func (ts *TimeSeries) Sum(i int) float64 {
	if i < 0 || i >= len(ts.sums) {
		return 0
	}
	return ts.sums[i]
}

// Count returns the number of samples in bucket i.
func (ts *TimeSeries) Count(i int) int {
	if i < 0 || i >= len(ts.counts) {
		return 0
	}
	return ts.counts[i]
}

// Mean returns the mean value in bucket i (0 when empty).
func (ts *TimeSeries) Mean(i int) float64 {
	if i < 0 || i >= len(ts.sums) || ts.counts[i] == 0 {
		return 0
	}
	return ts.sums[i] / float64(ts.counts[i])
}

// FormatRow renders aligned experiment-output rows: a label column then
// the values.
func FormatRow(label string, values ...any) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", label)
	for _, v := range values {
		switch x := v.(type) {
		case time.Duration:
			fmt.Fprintf(&b, " %10s", x.Round(time.Millisecond))
		case float64:
			fmt.Fprintf(&b, " %10.3f", x)
		default:
			fmt.Fprintf(&b, " %10v", x)
		}
	}
	return b.String()
}
