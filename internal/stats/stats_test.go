package stats

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentile(t *testing.T) {
	var d Durations
	for i := 1; i <= 100; i++ {
		d = append(d, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{50, 50 * time.Millisecond},
		{90, 90 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %s, want %s", c.p, got, c.want)
		}
	}
	if (Durations{}).Percentile(50) != 0 {
		t.Error("empty percentile not zero")
	}
}

func TestMeanAndCDFAt(t *testing.T) {
	d := Durations{time.Second, 3 * time.Second}
	if d.Mean() != 2*time.Second {
		t.Errorf("mean = %s", d.Mean())
	}
	if d.CDFAt(time.Second) != 0.5 {
		t.Errorf("CDFAt(1s) = %f", d.CDFAt(time.Second))
	}
	if d.CDFAt(5*time.Second) != 1 {
		t.Errorf("CDFAt(5s) = %f", d.CDFAt(5*time.Second))
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var d Durations
		for _, v := range raw {
			d = append(d, time.Duration(v)*time.Millisecond)
		}
		pts := d.CDF(10)
		for i := 1; i < len(pts); i++ {
			if pts[i].Cum < pts[i-1].Cum || pts[i].X < pts[i-1].X {
				return false
			}
		}
		return len(pts) == 0 || pts[len(pts)-1].Cum == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntHistogram(t *testing.T) {
	h := &IntHistogram{}
	for _, v := range []int{1, 2, 2, 3, -5} {
		h.Add(v)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d (negatives must be ignored)", h.Total())
	}
	pdf := h.PDF()
	if pdf[2] != 0.5 || pdf[1] != 0.25 {
		t.Fatalf("pdf = %v", pdf)
	}
	if h.Mean() != 2 {
		t.Fatalf("mean = %f", h.Mean())
	}
}

func TestQuickHistogramPDFSumsToOne(t *testing.T) {
	f := func(raw []uint8) bool {
		h := &IntHistogram{}
		for _, v := range raw {
			h.Add(int(v) % 16)
		}
		if h.Total() == 0 {
			return true
		}
		sum := 0.0
		for _, p := range h.PDF() {
			sum += p
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	start := time.Unix(0, 0)
	ts := NewTimeSeries(start, time.Minute)
	ts.Add(start.Add(10*time.Second), 1)
	ts.Add(start.Add(30*time.Second), 3)
	ts.Add(start.Add(90*time.Second), 10)
	ts.Add(start.Add(-time.Second), 99) // before start: ignored
	if ts.Buckets() != 2 {
		t.Fatalf("buckets = %d", ts.Buckets())
	}
	if ts.Sum(0) != 4 || ts.Count(0) != 2 || ts.Mean(0) != 2 {
		t.Fatalf("bucket 0: sum=%f count=%d mean=%f", ts.Sum(0), ts.Count(0), ts.Mean(0))
	}
	if ts.Mean(1) != 10 {
		t.Fatalf("bucket 1 mean = %f", ts.Mean(1))
	}
	if ts.Mean(7) != 0 || ts.Sum(-1) != 0 {
		t.Fatal("out-of-range buckets must be zero")
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	d := Durations{3, 1, 2}
	s := d.Sorted()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Fatal("not sorted")
	}
	if d[0] != 3 {
		t.Fatal("original mutated")
	}
}

// TestSortedViewMatchesOneShot pins the contract that powered the
// sort-once refactor: every rank statistic on a Sorted view equals its
// one-shot Durations counterpart, for random samples with ties.
func TestSortedViewMatchesOneShot(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		var d Durations
		for _, v := range raw {
			d = append(d, time.Duration(v%97)*time.Millisecond) // force ties
		}
		s := d.Sorted()
		p := float64(pRaw % 101)
		if d.Percentile(p) != s.Percentile(p) {
			return false
		}
		limit := time.Duration(pRaw) * time.Millisecond
		if d.CDFAt(limit) != s.CDFAt(limit) {
			return false
		}
		dp, sp := d.CDF(7), s.CDF(7)
		if len(dp) != len(sp) {
			return false
		}
		for i := range dp {
			if dp[i] != sp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileFloorConvention pins the floor-index rule the experiment
// harness's five-number summaries use (idx = ⌊q·n⌋).
func TestQuantileFloorConvention(t *testing.T) {
	var d Durations
	for i := 1; i <= 100; i++ {
		d = append(d, time.Duration(i)*time.Millisecond)
	}
	s := d.Sorted()
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{0.05, 6 * time.Millisecond},  // ⌊0.05·100⌋ = 5 → 6th element
		{0.50, 51 * time.Millisecond}, // differs from nearest-rank P50 by one rank
		{0.90, 91 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %s, want %s", c.q, got, c.want)
		}
	}
	if (Sorted{}).Quantile(0.5) != 0 || (Sorted{}).Percentile(50) != 0 {
		t.Error("empty sorted views must be zero")
	}
}

func TestFormatRow(t *testing.T) {
	row := FormatRow("label", time.Second, 3.14159, 42)
	if len(row) < 28 {
		t.Fatalf("row too short: %q", row)
	}
}
