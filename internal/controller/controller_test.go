package controller

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// pingApp is a tiny deployable application: it answers RPC pings and, as
// position 1, counts greetings from the other instances.
func pingRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.MustRegister("pingapp", func(params json.RawMessage) (core.App, error) {
		return core.AppFunc(func(ctx *core.AppContext) error {
			srv := rpc.NewServer(ctx)
			greeted := 0
			srv.Register("greet", func(rpc.Args) (any, error) {
				greeted++
				return greeted, nil
			})
			if err := srv.Start(ctx.Job.Me.Port); err != nil {
				return err
			}
			if ctx.Job.Position > 1 && len(ctx.Job.Nodes) > 0 {
				cl := rpc.NewClient(ctx)
				cl.CallTimeout(ctx.Job.Nodes[0], 30*time.Second, "greet") //nolint:errcheck
			}
			for !ctx.Killed() {
				ctx.Sleep(time.Second)
			}
			return nil
		}), nil
	})
	return reg
}

type testbed struct {
	k       *sim.Kernel
	nw      *simnet.Network
	rt      *core.SimRuntime
	ctl     *Controller
	daemons []*daemon.Daemon
}

// newTestbed wires a controller on host 0 and n daemons on hosts 1..n.
func newTestbed(t *testing.T, n int) *testbed {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 30 * time.Millisecond}, n+1, 1)
	rt := core.NewSimRuntime(k, 1)
	tb := &testbed{k: k, nw: nw, rt: rt}
	reg := pingRegistry()
	tb.ctl = New(rt, nw.Node(0), DefaultConfig())
	k.Go(func() {
		if err := tb.ctl.Start(); err != nil {
			t.Errorf("controller: %v", err)
		}
	})
	ctlAddr := transport.Addr{Host: "n0", Port: DefaultConfig().Port}
	for i := 1; i <= n; i++ {
		d := daemon.New(rt, nw.Node(i), reg, daemon.DefaultConfig(simnet.HostName(i)), nil)
		tb.daemons = append(tb.daemons, d)
		k.GoAfter(time.Duration(i)*100*time.Millisecond, func() {
			if err := d.Connect(ctlAddr); err != nil {
				t.Errorf("daemon connect: %v", err)
			}
		})
	}
	k.RunFor(30 * time.Second)
	return tb
}

func TestDaemonsRegister(t *testing.T) {
	tb := newTestbed(t, 5)
	if tb.ctl.Daemons() != 5 {
		t.Fatalf("controller sees %d daemons, want 5", tb.ctl.Daemons())
	}
	for i, d := range tb.daemons {
		if !d.Connected() {
			t.Fatalf("daemon %d not connected", i)
		}
	}
}

func TestSubmitDeploysAndRuns(t *testing.T) {
	tb := newTestbed(t, 8)
	var job *JobStatus
	var err error
	tb.k.Go(func() {
		job, err = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 5})
	})
	tb.k.RunFor(2 * time.Minute)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.State != JobRunning {
		t.Fatalf("job state = %s", job.State)
	}
	if len(job.Deployed) != 5 {
		t.Fatalf("deployed on %d nodes", len(job.Deployed))
	}
	running := 0
	for _, d := range tb.daemons {
		running += d.Running()
	}
	if running != 5 {
		t.Fatalf("%d instances running, want 5 (supernumeraries freed)", running)
	}
	// Stop the job; instances die.
	tb.k.Go(func() {
		if err := tb.ctl.StopJob(job.ID); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	tb.k.RunFor(time.Minute)
	running = 0
	for _, d := range tb.daemons {
		running += d.Running()
	}
	if running != 0 {
		t.Fatalf("%d instances survive StopJob", running)
	}
}

func TestSubmitUnknownAppFails(t *testing.T) {
	tb := newTestbed(t, 4)
	var err error
	tb.k.Go(func() {
		_, err = tb.ctl.Submit(JobSpec{App: "no-such-app", Nodes: 2})
	})
	tb.k.RunFor(2 * time.Minute)
	if err == nil {
		t.Fatal("unknown app deployed")
	}
}

func TestSubmitTooFewDaemons(t *testing.T) {
	tb := newTestbed(t, 2)
	var err error
	tb.k.Go(func() {
		_, err = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 5})
	})
	tb.k.RunFor(time.Minute)
	if err == nil || !strings.Contains(err.Error(), "need 5 daemons") {
		t.Fatalf("err = %v", err)
	}
}

func TestSupersetSkipsDeadDaemons(t *testing.T) {
	tb := newTestbed(t, 8)
	// Kill three daemon hosts; with superset 2.0 the job still finds 4
	// responsive daemons.
	tb.k.Go(func() {
		for i := 1; i <= 3; i++ {
			tb.nw.Host(i).SetDown(true)
		}
	})
	var job *JobStatus
	var err error
	tb.k.GoAfter(time.Second, func() {
		job, err = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 4, Superset: 2.0})
	})
	tb.k.RunFor(5 * time.Minute)
	if err != nil {
		t.Fatalf("submit with failures: %v", err)
	}
	if job.State != JobRunning || len(job.Deployed) != 4 {
		t.Fatalf("job %s on %d nodes", job.State, len(job.Deployed))
	}
	for _, addr := range job.Deployed {
		id, _ := simnet.HostID(addr.Host)
		if id >= 1 && id <= 3 {
			t.Fatalf("deployed on dead daemon %s", addr.Host)
		}
	}
}

func TestBootstrapListReachesApps(t *testing.T) {
	// Position 2..n greet the rendez-vous node: the job's LIST machinery
	// must deliver job.nodes and job.position correctly.
	tb := newTestbed(t, 6)
	var job *JobStatus
	tb.k.Go(func() {
		job, _ = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 4})
	})
	tb.k.RunFor(3 * time.Minute)
	if job == nil || job.State != JobRunning {
		t.Fatal("job not running")
	}
	// The rendez-vous instance must have been greeted by the others;
	// verify via a direct RPC to it.
	greetTotal := -1
	tb.k.Go(func() {
		ctx := core.NewAppContext(tb.rt, tb.nw.Node(0), core.JobInfo{}, nil)
		cl := rpc.NewClient(ctx)
		res, err := cl.CallTimeout(job.Deployed[0], 30*time.Second, "greet")
		if err != nil {
			t.Errorf("probe greet: %v", err)
			return
		}
		res.Decode(&greetTotal) //nolint:errcheck
	})
	tb.k.RunFor(time.Minute)
	// 3 greetings from peers + our probe = 4.
	if greetTotal != 4 {
		t.Fatalf("rendez-vous greeted %d times, want 4", greetTotal)
	}
}

func TestBlacklistPropagation(t *testing.T) {
	tb := newTestbed(t, 3)
	tb.k.Go(func() {
		tb.ctl.SetBlacklist([]string{"evil-host"})
	})
	tb.k.RunFor(time.Minute)
	// Deploy; the instance's sandbox must refuse dialing the blacklisted
	// host and the controller itself.
	var job *JobStatus
	tb.k.Go(func() {
		job, _ = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 2})
	})
	tb.k.RunFor(2 * time.Minute)
	if job == nil || job.State != JobRunning {
		t.Fatal("job not running")
	}
}

// TestReregisterClearsBlacklist pins the revival contract: a daemon
// whose name was blacklisted (a fault-drill partition) and whose
// session died becomes immediately placeable when it re-registers —
// its stale blacklist entry is cleared and the shrunk list pushed to
// the fleet, without waiting for an operator heal.
func TestReregisterClearsBlacklist(t *testing.T) {
	tb := newTestbed(t, 3)
	tb.k.Go(func() {
		tb.ctl.SetBlacklist([]string{simnet.HostName(2)})
	})
	tb.k.RunFor(time.Minute)
	blacklisted := func() bool {
		tb.ctl.mu.Lock()
		defer tb.ctl.mu.Unlock()
		for _, pat := range tb.ctl.blacklist {
			if pat == simnet.HostName(2) {
				return true
			}
		}
		return false
	}
	if !blacklisted() {
		t.Fatal("partition did not blacklist the daemon")
	}
	// The partitioned daemon's session dies…
	if !tb.ctl.DropDaemon(simnet.HostName(2)) {
		t.Fatal("drop failed")
	}
	tb.k.RunFor(time.Minute)
	if got := tb.ctl.Daemons(); got != 2 {
		t.Fatalf("population = %d after drop, want 2", got)
	}
	// …and the host revives under its old name.
	d := daemon.New(tb.rt, tb.nw.Node(2), pingRegistry(),
		daemon.DefaultConfig(simnet.HostName(2)), nil)
	tb.k.Go(func() {
		if err := d.Connect(transport.Addr{Host: "n0", Port: DefaultConfig().Port}); err != nil {
			t.Errorf("revive: %v", err)
		}
	})
	tb.k.RunFor(time.Minute)
	if got := tb.ctl.Daemons(); got != 3 {
		t.Fatalf("population = %d after revival, want 3", got)
	}
	if blacklisted() {
		t.Fatal("revived daemon still blacklisted")
	}
	// The revived daemon is placeable right now: a full-population job
	// lands an instance on every daemon, including the revived one.
	var job *JobStatus
	tb.k.Go(func() {
		job, _ = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 3})
	})
	tb.k.RunFor(2 * time.Minute)
	if job == nil || job.State != JobRunning || len(job.Deployed) != 3 {
		t.Fatalf("job = %+v, want 3 instances running", job)
	}
}
