package controller

import "sync"

// The daemon registry is sharded by a hash of the daemon name so that
// sessions (connect/disconnect), monitoring and selection no longer
// serialize on a single controller-wide mutex: with thousands of daemons
// the registry is touched on every frame, and one lock was the scaling
// bottleneck the paper's §5.2/§5.3 controller-load evaluation exposes.
//
// Each shard keeps both a map (lookup by name) and an insertion-ordered
// slice. Snapshots concatenate the shards in index order, so iteration
// order is a deterministic function of connection order — a requirement
// for bit-for-bit reproducible simulations (see DESIGN.md).
const (
	numShards = 16 // power of two; shard = hash & (numShards-1)

	// pingSlices staggers session monitoring: each monitor tick serves
	// one slice, so a full PingEvery period spreads the ping fan-out over
	// pingSlices time-slices instead of bursting the whole population. A
	// slice is a contiguous group of shards (shardsPerSlice each), so a
	// tick touches only its own shards' locks and lists — O(n/pingSlices)
	// per tick, not a full-population scan.
	pingSlices     = 8
	shardsPerSlice = numShards / pingSlices
)

// nameHash is FNV-1a over the daemon name.
func nameHash(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}

type regShard struct {
	mu      sync.Mutex
	daemons map[string]*daemonSession
	order   []*daemonSession // insertion order of the live sessions
}

type registry struct {
	shards [numShards]regShard
}

func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].daemons = make(map[string]*daemonSession)
	}
	return r
}

func (r *registry) shardFor(hash uint32) *regShard {
	return &r.shards[hash&(numShards-1)]
}

// put installs d under its name and returns the session it displaced, if
// any. The displaced session is already removed from the registry.
func (r *registry) put(d *daemonSession) (old *daemonSession) {
	s := r.shardFor(d.hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	old = s.daemons[d.name]
	if old != nil {
		s.dropLocked(old)
	}
	s.daemons[d.name] = d
	s.order = append(s.order, d)
	return old
}

// get looks a session up by name.
func (r *registry) get(name string) (*daemonSession, bool) {
	s := r.shardFor(nameHash(name))
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.daemons[name]
	return d, ok
}

// removeIf drops the session registered under name only if it is still d
// (a reconnect may have replaced it).
func (r *registry) removeIf(d *daemonSession) bool {
	s := r.shardFor(d.hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.daemons[d.name] != d {
		return false
	}
	s.dropLocked(d)
	return true
}

func (s *regShard) dropLocked(d *daemonSession) {
	delete(s.daemons, d.name)
	for i, o := range s.order {
		if o == d {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// count returns the live session count.
func (r *registry) count() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.daemons)
		s.mu.Unlock()
	}
	return n
}

// snapshot returns every live session, shards in index order and insertion
// order within a shard: deterministic for a deterministic connect order.
func (r *registry) snapshot() []*daemonSession {
	out := make([]*daemonSession, 0, r.count())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out = append(out, s.order...)
		s.mu.Unlock()
	}
	return out
}

// slice returns the sessions assigned to monitor time-slice n: the
// sessions of shards [n·shardsPerSlice, (n+1)·shardsPerSlice).
func (r *registry) slice(n int) []*daemonSession {
	var out []*daemonSession
	for i := n * shardsPerSlice; i < (n+1)*shardsPerSlice; i++ {
		s := &r.shards[i]
		s.mu.Lock()
		out = append(out, s.order...)
		s.mu.Unlock()
	}
	return out
}
