package controller

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// noopRegistry registers a minimal application whose instances exit
// immediately: the benchmark measures the control plane, not the app.
func noopRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.MustRegister("noop", func(params json.RawMessage) (core.App, error) {
		return core.AppFunc(func(ctx *core.AppContext) error { return nil }), nil
	})
	return reg
}

// benchTestbed wires a controller and n daemons on a simulated network and
// runs until every daemon is connected and has a measured RTT.
func benchTestbed(b *testing.B, n int) (*sim.Kernel, *Controller) {
	b.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 30 * time.Millisecond}, n+1, 1)
	rt := core.NewSimRuntime(k, 1)
	reg := noopRegistry()
	ctl := New(rt, nw.Node(0), DefaultConfig())
	k.Go(func() {
		if err := ctl.Start(); err != nil {
			b.Errorf("controller: %v", err)
		}
	})
	ctlAddr := transport.Addr{Host: "n0", Port: DefaultConfig().Port}
	for i := 1; i <= n; i++ {
		d := daemon.New(rt, nw.Node(i), reg, daemon.DefaultConfig(simnet.HostName(i)), nil)
		k.GoAfter(time.Duration(i)*time.Millisecond, func() {
			if err := d.Connect(ctlAddr); err != nil {
				b.Errorf("daemon connect: %v", err)
			}
		})
	}
	// One full ping period so monitoring has measured responsiveness.
	k.RunFor(65 * time.Second)
	if got := ctl.Daemons(); got != n {
		b.Fatalf("connected %d daemons, want %d", got, n)
	}
	return k, ctl
}

// BenchmarkControlPlane measures submit throughput against 1000 simulated
// daemons: one iteration is a full deployment round (REGISTER superset,
// LIST, START) of a 200-instance job followed by its teardown. The
// simulation network is deterministic, so the benchmark isolates the
// controller's own costs: selection, fan-out scheduling, and frame
// writes.
func BenchmarkControlPlane(b *testing.B) {
	k, ctl := benchTestbed(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var job *JobStatus
		var err error
		k.Go(func() {
			job, err = ctl.Submit(JobSpec{App: "noop", Nodes: 200})
		})
		k.RunFor(30 * time.Second)
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		if job.State != JobRunning {
			b.Fatalf("job state = %s", job.State)
		}
		k.Go(func() {
			if err := ctl.StopJob(job.ID); err != nil {
				b.Errorf("stop: %v", err)
			}
		})
		k.RunFor(30 * time.Second)
	}
}
