package controller

import (
	"errors"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/simnet"
)

// TestReplacementAfterStartLoss kills a selected daemon's host between
// selection and START; the deployment re-places the lost slot onto a
// fresh daemon and still reaches JobRunning with the full count.
func TestReplacementAfterStartLoss(t *testing.T) {
	tb := newTestbed(t, 10)
	// Superset 1.0: exactly 5 daemons probed, no spares — any loss after
	// selection forces a re-placement round.
	var job *JobStatus
	var err error
	tb.k.Go(func() {
		job, err = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 5, Superset: 1.001})
	})
	// The REGISTER round completes within one RTT batch; kill one of the
	// fastest (= lowest-index connect) daemons right after it is selected
	// but before its START can be served. Half an RTT after submission the
	// REGISTER frames are still in flight, so killing at 5ms lands between
	// REGISTER delivery and the LIST/START rounds for some schedules, and
	// before REGISTER for others — both exercise re-placement.
	tb.k.GoAfter(40*time.Millisecond, func() {
		tb.nw.Host(1).SetDown(true)
	})
	tb.k.RunFor(5 * time.Minute)
	if err != nil {
		t.Fatalf("submit with mid-deploy loss: %v", err)
	}
	if job.State != JobRunning || len(job.Deployed) != 5 {
		t.Fatalf("job %s on %d nodes, want running on 5", job.State, len(job.Deployed))
	}
	for _, addr := range job.Deployed {
		if addr.Host == simnet.HostName(1) {
			t.Fatalf("dead daemon %s still in the deployment", addr.Host)
		}
	}
	// Count running instances on live hosts only: the dead daemon object
	// still remembers its registered job, but its host is gone.
	running := 0
	for i, d := range tb.daemons {
		if tb.nw.Host(i + 1).Down() {
			continue
		}
		running += d.Running()
	}
	if running != 5 {
		t.Fatalf("%d instances running on live daemons, want 5", running)
	}
}

// TestDeployErrorEnumeratesFailures exhausts the population so
// re-placement cannot succeed, and checks the typed error reports the
// unfilled slots rather than one latched first error.
func TestDeployErrorEnumeratesFailures(t *testing.T) {
	tb := newTestbed(t, 5)
	var err error
	tb.k.Go(func() {
		_, err = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 4, Superset: 1.001})
	})
	// Kill two selected daemons mid-deployment; only one spare daemon
	// exists, so at least one slot stays unfilled.
	tb.k.GoAfter(40*time.Millisecond, func() {
		tb.nw.Host(1).SetDown(true)
		tb.nw.Host(2).SetDown(true)
	})
	tb.k.RunFor(10 * time.Minute)
	if err == nil {
		t.Fatal("deployment succeeded with an exhausted population")
	}
	var derr *DeployError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %T (%v), want *DeployError", err, err)
	}
	if derr.Missing < 1 {
		t.Fatalf("DeployError.Missing = %d, want ≥ 1", derr.Missing)
	}
	if len(derr.Failures) == 0 {
		t.Fatal("DeployError carries no per-daemon failures")
	}
}

// TestStopJobOnKillsSubset stops a job on two named daemons only.
func TestStopJobOnKillsSubset(t *testing.T) {
	tb := newTestbed(t, 6)
	var job *JobStatus
	var err error
	tb.k.Go(func() {
		job, err = tb.ctl.Submit(JobSpec{App: "pingapp", Nodes: 5})
	})
	tb.k.RunFor(2 * time.Minute)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	victims := []string{job.Deployed[1].Host, job.Deployed[3].Host}
	tb.k.Go(func() {
		if err := tb.ctl.StopJobOn(job.ID, victims); err != nil {
			t.Errorf("StopJobOn: %v", err)
		}
	})
	tb.k.RunFor(time.Minute)
	running := 0
	for _, d := range tb.daemons {
		running += d.Running()
	}
	if running != 3 {
		t.Fatalf("%d instances running after killing 2 of 5, want 3", running)
	}
	if st, _ := tb.ctl.Job(job.ID); st.State != JobRunning {
		t.Fatalf("job state = %s after partial stop, want running", st.State)
	}
}

// TestDropDaemonTriggersReconnect drops a reconnect-enabled daemon's
// session controller-side and checks it comes back with backoff.
func TestDropDaemonTriggersReconnect(t *testing.T) {
	tb := newTestbed(t, 3)
	// newTestbed daemons have Reconnect off; check the drop alone first.
	name := simnet.HostName(1)
	tb.k.Go(func() {
		if !tb.ctl.DropDaemon(name) {
			t.Errorf("DropDaemon(%s) found no session", name)
		}
		if tb.ctl.DropDaemon("n99") {
			t.Error("DropDaemon invented a session")
		}
	})
	tb.k.RunFor(time.Minute)
	if tb.ctl.Daemons() != 2 {
		t.Fatalf("%d daemons connected after drop, want 2", tb.ctl.Daemons())
	}
	if got := len(tb.ctl.DaemonNames()); got != 2 {
		t.Fatalf("DaemonNames reports %d, want 2", got)
	}
}
