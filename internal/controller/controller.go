// Package controller implements splayctl, the trusted entity that
// controls deployment and execution of SPLAY applications (§3.1): it
// tracks daemons through sessions, selects deployment targets by
// responsiveness with superset probing, drives the job state machine
// (idle → selected → running), manages the blacklist, and hosts the log
// collector.
//
// The control plane is built to scale to thousands of daemons (the
// paper's §5.2–5.3 evaluation): the daemon registry is sharded
// (registry.go), session monitoring staggers its ping fan-out over
// time-slices instead of bursting the whole population, and Submit
// pipelines its REGISTER/LIST/START rounds with batched frame writes and
// reply callbacks rather than one task per command. The wire protocol
// (internal/ctlproto) and the superset semantics — first-Nodes-acks win,
// stragglers are FREEd — are unchanged from the single-mutex design.
package controller

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/ctlproto"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/transport"
)

// Instruments is the controller's optional metric set for the
// observability plane. The zero value disables everything; increments
// are pure memory operations, so attaching instruments never perturbs
// schedules.
type Instruments struct {
	Frames        *metrics.Counter // command frames written (FramesSent live)
	Deploys       *metrics.Counter // successful Submits
	DeployFails   *metrics.Counter
	DeployLatency *metrics.Histogram // Submit→running, pow2 ns buckets
	Daemons       *metrics.Gauge     // connected population
}

// NewInstruments registers the controller's canonical series on reg
// ("ctl." prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		Frames:        reg.Counter("ctl.frames"),
		Deploys:       reg.Counter("ctl.deploys"),
		DeployFails:   reg.Counter("ctl.deploy_fails"),
		DeployLatency: reg.Histogram("ctl.deploy_latency_ns", metrics.KindHistPow2),
		Daemons:       reg.Gauge("ctl.daemons"),
	}
}

// PortEphemeral asks Start to bind an OS/simnet-assigned port instead of
// a fixed one; Addr reports the port actually bound. The zero Port still
// means "the default 5555" (zero-value Config compatibility).
const PortEphemeral = -1

// Config tunes the controller.
type Config struct {
	// Port accepts daemon connections. PortEphemeral binds an
	// ephemeral port (read it back with Addr).
	Port int
	// DefaultSuperset is the fraction of extra daemons probed per job
	// (the paper settles on 1.25 as the default, §5.6).
	DefaultSuperset float64
	// RegisterTimeout bounds how long selection waits for slow daemons.
	RegisterTimeout time.Duration
	// UnseenAfter expires daemons that stop showing activity (the
	// paper's long-term disconnection threshold, typically one hour).
	UnseenAfter time.Duration
	// PingEvery is the session keep-alive/monitoring period. Each daemon
	// is pinged once per period; the fan-out is staggered over
	// pingSlices time-slices so the load on the controller and the
	// network is spread instead of bursting every period.
	PingEvery time.Duration
	// Blacklist is the initial set of forbidden address patterns; the
	// controller's own host is always appended so applications cannot
	// actively connect to it.
	Blacklist []string
	// DeployRetries is how many re-placement rounds Submit runs when
	// daemons fail or vanish mid-deployment: each round registers fresh
	// candidates for the lost slots and replays LIST/START for them. 0
	// means the default (2); negative disables re-placement entirely.
	DeployRetries int
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		Port:            5555,
		DefaultSuperset: 1.25,
		RegisterTimeout: 30 * time.Second,
		UnseenAfter:     time.Hour,
		PingEvery:       30 * time.Second,
		DeployRetries:   2,
	}
}

// JobState is the §3.1 state machine.
type JobState int

// Job states.
const (
	JobIdle JobState = iota
	JobSelected
	JobRunning
	JobDone
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobIdle:
		return "idle"
	case JobSelected:
		return "selected"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	default:
		return "failed"
	}
}

// JobSpec is a submission: deploy N instances of a registered app.
type JobSpec struct {
	App      string
	Params   []byte
	Nodes    int
	Superset float64 // 0 uses the controller default
	// FullList ships the whole deployment list as job.nodes instead of a
	// single rendez-vous node (the controller chooses "a single
	// rendez-vous node or a random subset, depending on the
	// application", §3.1).
	FullList bool
}

// JobStatus reports a job's progress.
type JobStatus struct {
	ID        string
	State     JobState
	Deployed  []transport.Addr
	Err       string
	StartedAt time.Time
}

// replyFn receives a daemon's answer to one command frame. It is invoked
// exactly once — with the answer, or with an error if the daemon was
// gone, the write failed, the connection dropped, or the reply deadline
// expired — and runs on a controller task, so it must not block; spawn
// via the runtime for I/O.
type replyFn func(ans ctlproto.Msg, err error)

// pendingReply is one in-flight command awaiting its answer.
type pendingReply struct {
	fn       replyFn
	deadline time.Time
}

// daemonSession is the controller's view of one connected daemon.
type daemonSession struct {
	name  string
	hash  uint32 // nameHash(name): shard (and thereby ping-slice) assignment
	conn  transport.Conn
	enc   *llenc.Writer
	wlock *core.Lock

	mu       sync.Mutex // guards the fields below under LiveRuntime
	lastSeen time.Time
	rtt      time.Duration // last measured responsiveness
	nextSeq  uint64
	pending  map[uint64]pendingReply
	gone     bool
}

// drop removes a pending reply without invoking its callback (the caller
// already has its answer, e.g. from its own timeout).
func (d *daemonSession) drop(seq uint64) {
	d.mu.Lock()
	delete(d.pending, seq)
	d.mu.Unlock()
}

// Controller is a running splayctl instance.
type Controller struct {
	rt   core.Runtime
	node transport.Node
	cfg  Config

	reg       *registry    // sharded daemon sessions
	framesOut atomic.Int64 // command/answer frames written, for load reporting
	ins       Instruments

	mu        sync.Mutex // guards jobs/blacklist/stops under LiveRuntime
	ln        transport.Listener
	jobs      map[string]*JobStatus
	blacklist []string
	jobSeq    int
	stops     []func()

	monMu    sync.Mutex
	monSlice int
}

// New creates a controller on the given runtime and network stack.
func New(rt core.Runtime, node transport.Node, cfg Config) *Controller {
	if cfg.Port == 0 {
		cfg.Port = 5555
	}
	if cfg.DefaultSuperset <= 1 {
		cfg.DefaultSuperset = 1.25
	}
	if cfg.RegisterTimeout <= 0 {
		cfg.RegisterTimeout = 30 * time.Second
	}
	if cfg.UnseenAfter <= 0 {
		cfg.UnseenAfter = time.Hour
	}
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = 30 * time.Second
	}
	if cfg.DeployRetries == 0 {
		cfg.DeployRetries = 2
	}
	// Clone before appending: sharing the caller's backing array would
	// let the append clobber elements the caller still owns.
	cfg.Blacklist = append(append([]string(nil), cfg.Blacklist...), node.Host())
	return &Controller{
		rt: rt, node: node, cfg: cfg,
		reg:  newRegistry(),
		jobs: make(map[string]*JobStatus),
	}
}

// Start listens for daemons and begins session monitoring.
func (c *Controller) Start() error {
	port := c.cfg.Port
	if port == PortEphemeral {
		port = 0
	}
	ln, err := c.node.Listen(port)
	if err != nil {
		return fmt.Errorf("controller: listen: %w", err)
	}
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	c.rt.Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.rt.Go(func() { c.serveDaemon(conn) })
		}
	})
	// The unseen process: expire daemons after long-term disconnection;
	// the monitor ping doubles as the session activity signal. Each tick
	// serves one time-slice of the population, so every daemon is pinged
	// once per PingEvery without a population-wide burst.
	every := c.cfg.PingEvery / pingSlices
	if every <= 0 {
		every = time.Millisecond
	}
	stopMon := c.periodic(every, c.monitorTick)
	c.mu.Lock()
	c.stops = append(c.stops, stopMon)
	c.mu.Unlock()
	return nil
}

// periodic is a minimal runtime-periodic helper for controller loops. It
// is safe under LiveRuntime: the stop flag and the re-armed timer are
// guarded, so a stop() racing a tick can neither be missed by the next
// re-arm nor leave a live timer behind.
func (c *Controller) periodic(every time.Duration, fn func()) (stop func()) {
	var mu sync.Mutex
	stopped := false
	var cancel func()
	var tick func()
	tick = func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		cancel = c.rt.After(every, func() {
			mu.Lock()
			if stopped {
				mu.Unlock()
				return
			}
			mu.Unlock()
			c.rt.Go(fn)
			tick()
		})
	}
	tick()
	return func() {
		mu.Lock()
		stopped = true
		cc := cancel
		mu.Unlock()
		if cc != nil {
			cc()
		}
	}
}

// Stop closes the controller.
func (c *Controller) Stop() {
	c.mu.Lock()
	stops := c.stops
	c.stops = nil
	ln := c.ln
	c.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
	if ln != nil {
		ln.Close()
	}
	for _, d := range c.reg.snapshot() {
		d.conn.Close()
	}
}

// SetInstruments attaches instruments. Call it before Start.
func (c *Controller) SetInstruments(ins Instruments) { c.ins = ins }

// Addr returns the address daemons connect to. Only valid after Start;
// the port is the one actually bound, which matters under PortEphemeral.
func (c *Controller) Addr() transport.Addr {
	c.mu.Lock()
	ln := c.ln
	c.mu.Unlock()
	if ln == nil {
		return transport.Addr{Host: c.node.Host(), Port: c.cfg.Port}
	}
	a := ln.Addr()
	a.Host = c.node.Host()
	return a
}

// Daemons returns the connected daemon count.
func (c *Controller) Daemons() int { return c.reg.count() }

// FramesSent reports the total command frames the controller has written,
// a direct measure of control-plane load (§5.3).
func (c *Controller) FramesSent() int64 { return c.framesOut.Load() }

// SetBlacklist replaces the blacklist and pushes the update to every
// connected daemon (piggybacked in its own message here).
func (c *Controller) SetBlacklist(patterns []string) {
	c.mu.Lock()
	c.blacklist = append(append([]string(nil), patterns...), c.node.Host())
	blk := append([]string(nil), c.blacklist...)
	c.mu.Unlock()
	c.fanout(c.reg.snapshot(), c.cfg.RegisterTimeout,
		func(int) *ctlproto.Msg { return &ctlproto.Msg{Type: ctlproto.TBlacklist, Hosts: blk} },
		func(int, *daemonSession, ctlproto.Msg, error) {})
}

// serveDaemon handles one daemon connection for its lifetime.
func (c *Controller) serveDaemon(conn transport.Conn) {
	defer conn.Close()
	dec := llenc.NewReader(conn)
	var hello ctlproto.Msg
	if err := dec.Decode(&hello); err != nil || hello.Type != ctlproto.THello || hello.Name == "" {
		return
	}
	d := &daemonSession{
		name:     hello.Name,
		hash:     nameHash(hello.Name),
		conn:     conn,
		enc:      llenc.NewWriter(conn),
		wlock:    core.NewLock(c.rt),
		lastSeen: c.rt.Now(),
		pending:  make(map[uint64]pendingReply),
	}
	// Gauge tracking rides atomic deltas, not Set-after-read: a Set from
	// a racing connect/disconnect could latch a stale population.
	if old := c.reg.put(d); old != nil {
		old.mu.Lock()
		old.gone = true
		old.mu.Unlock()
		old.conn.Close()
	} else {
		c.ins.Daemons.Add(1)
	}
	c.mu.Lock()
	// A registering daemon clears its own stale blacklist entry: a host
	// partitioned by a fault drill that reconnects is placeable again
	// immediately, without waiting for an operator heal.
	cleared := false
	kept := c.blacklist[:0]
	for _, pat := range c.blacklist {
		if pat == d.name {
			cleared = true
			continue
		}
		kept = append(kept, pat)
	}
	c.blacklist = kept
	blk := append(append([]string(nil), c.cfg.Blacklist...), c.blacklist...)
	c.mu.Unlock()
	c.send(d, &ctlproto.Msg{Type: ctlproto.TWelcome, Hosts: blk}) //nolint:errcheck
	if cleared {
		// The fleet learned the old blacklist; push the shrunk one.
		c.fanout(c.reg.snapshot(), c.cfg.RegisterTimeout,
			func(int) *ctlproto.Msg { return &ctlproto.Msg{Type: ctlproto.TBlacklist, Hosts: blk} },
			func(int, *daemonSession, ctlproto.Msg, error) {})
	}

	for {
		var m ctlproto.Msg
		if err := dec.Decode(&m); err != nil {
			break
		}
		d.mu.Lock()
		d.lastSeen = c.rt.Now()
		p, ok := d.pending[m.Seq]
		if ok {
			delete(d.pending, m.Seq)
		}
		d.mu.Unlock()
		if ok {
			var err error
			if m.Type == ctlproto.TErr {
				err = fmt.Errorf("controller: daemon %s: %s", d.name, m.Err)
			}
			p.fn(m, err)
		}
	}
	d.mu.Lock()
	d.gone = true
	orphans := popPending(d, nil)
	d.mu.Unlock()
	if c.reg.removeIf(d) {
		c.ins.Daemons.Add(-1)
	}
	err := fmt.Errorf("controller: daemon %s disconnected", d.name)
	for _, p := range orphans {
		p.fn(ctlproto.Msg{}, err)
	}
}

// popPending removes and returns pending replies under d.mu, in seq order
// so failure delivery stays deterministic in simulation. A nil filter
// takes everything; otherwise only entries the filter accepts.
func popPending(d *daemonSession, filter func(pendingReply) bool) []pendingReply {
	if len(d.pending) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(d.pending))
	for seq, p := range d.pending {
		if filter == nil || filter(p) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]pendingReply, 0, len(seqs))
	for _, seq := range seqs {
		out = append(out, d.pending[seq])
		delete(d.pending, seq)
	}
	return out
}

func (c *Controller) send(d *daemonSession, m *ctlproto.Msg) error {
	d.wlock.Lock()
	defer d.wlock.Unlock()
	c.framesOut.Add(1)
	c.ins.Frames.Inc()
	return d.enc.Encode(m)
}

// enqueue assigns m a sequence number, installs fn as its reply callback
// and writes the frame. On error fn is never invoked.
func (c *Controller) enqueue(d *daemonSession, m *ctlproto.Msg, timeout time.Duration, fn replyFn) error {
	d.mu.Lock()
	if d.gone {
		d.mu.Unlock()
		return fmt.Errorf("controller: daemon %s gone", d.name)
	}
	d.nextSeq++
	m.Seq = d.nextSeq
	d.pending[m.Seq] = pendingReply{fn: fn, deadline: c.rt.Now().Add(timeout)}
	d.mu.Unlock()
	if err := c.send(d, m); err != nil {
		d.drop(m.Seq)
		return err
	}
	return nil
}

// call sends a command and waits for the daemon's answer.
func (c *Controller) call(d *daemonSession, m *ctlproto.Msg, timeout time.Duration) (ctlproto.Msg, error) {
	type callResult struct {
		ans ctlproto.Msg
		err error
	}
	w := c.rt.NewWaiter()
	d.mu.Lock()
	if d.gone {
		d.mu.Unlock()
		return ctlproto.Msg{}, fmt.Errorf("controller: daemon %s gone", d.name)
	}
	d.nextSeq++
	m.Seq = d.nextSeq
	w.WakeAfter(timeout, error(transport.ErrTimeout))
	d.pending[m.Seq] = pendingReply{
		fn:       func(ans ctlproto.Msg, err error) { w.Wake(callResult{ans, err}) },
		deadline: c.rt.Now().Add(timeout),
	}
	d.mu.Unlock()
	if err := c.send(d, m); err != nil {
		d.drop(m.Seq)
		return ctlproto.Msg{}, err
	}
	switch v := w.Wait().(type) {
	case callResult:
		return v.ans, v.err
	case error:
		// Timeout: remove the entry ourselves so the callback can never
		// wake a recycled waiter.
		d.drop(m.Seq)
		return ctlproto.Msg{}, v
	}
	return ctlproto.Msg{}, fmt.Errorf("controller: internal wake type")
}

// writeBatch is how many command frames one writer task ships: the batch
// pipeline's fan-out granularity.
const writeBatch = 128

// fanout ships one command frame to every session in ds. Frames are
// written in batches of writeBatch per writer task — not one task per
// command — and fn is installed as each frame's reply callback; it is
// invoked exactly once per session (answer, or error). makeMsg runs in
// the writer task immediately before its frame is written.
func (c *Controller) fanout(ds []*daemonSession, timeout time.Duration,
	makeMsg func(i int) *ctlproto.Msg,
	fn func(i int, d *daemonSession, ans ctlproto.Msg, err error)) {
	for lo := 0; lo < len(ds); lo += writeBatch {
		hi := lo + writeBatch
		if hi > len(ds) {
			hi = len(ds)
		}
		batch := ds[lo:hi]
		base := lo
		c.rt.Go(func() {
			for j, d := range batch {
				i := base + j
				d := d
				if err := c.enqueue(d, makeMsg(i), timeout, func(ans ctlproto.Msg, err error) {
					fn(i, d, ans, err)
				}); err != nil {
					fn(i, d, ctlproto.Msg{}, err)
				}
			}
		})
	}
}

// monitorTick serves one time-slice of the population: it expires unseen
// daemons, sweeps timed-out pending replies, and pings the slice's live
// daemons in a batch (recording responsiveness when answers arrive).
func (c *Controller) monitorTick() {
	c.monMu.Lock()
	slice := c.monSlice
	c.monSlice = (c.monSlice + 1) % pingSlices
	c.monMu.Unlock()

	now := c.rt.Now()
	due := c.reg.slice(slice)
	live := due[:0]
	for _, d := range due {
		d.mu.Lock()
		stale := now.Sub(d.lastSeen) > c.cfg.UnseenAfter
		if stale {
			d.gone = true
		}
		expired := popPending(d, func(p pendingReply) bool { return now.After(p.deadline) })
		d.mu.Unlock()
		for _, p := range expired {
			p.fn(ctlproto.Msg{}, transport.ErrTimeout)
		}
		if stale {
			// Long-term disconnection: reset the daemon's state.
			d.conn.Close()
			if c.reg.removeIf(d) {
				c.ins.Daemons.Add(-1)
			}
			continue
		}
		live = append(live, d)
	}

	sent := make([]time.Time, len(live))
	c.fanout(live, c.cfg.PingEvery,
		func(i int) *ctlproto.Msg {
			sent[i] = c.rt.Now()
			return &ctlproto.Msg{Type: ctlproto.TPing}
		},
		func(i int, d *daemonSession, _ ctlproto.Msg, err error) {
			if err != nil {
				return
			}
			rtt := c.rt.Now().Sub(sent[i])
			d.mu.Lock()
			d.rtt = rtt
			d.mu.Unlock()
		})
}

// Submit deploys a job: probe a superset of daemons with REGISTER, keep
// the fastest responders, ship the bootstrap LIST and START execution,
// and FREE the supernumeraries (§3.1). It blocks until the job runs or
// fails and returns its status.
//
// The three rounds are pipelined: each round's frames are batch-written
// to the whole target set and the answers converge on a collector, so a
// round costs one round-trip to the slowest relevant daemon instead of
// one task (REGISTER) or one serialized call (LIST/START) per daemon.
func (c *Controller) Submit(spec JobSpec) (*JobStatus, error) {
	start := c.rt.Now()
	job, err := c.submit(spec)
	if err != nil {
		c.ins.DeployFails.Inc()
		return job, err
	}
	c.ins.Deploys.Inc()
	c.ins.DeployLatency.Observe(int64(c.rt.Now().Sub(start)))
	return job, nil
}

// regResult is one daemon's successful REGISTER: the session and the
// port it granted.
type regResult struct {
	d    *daemonSession
	port int
}

// deploySlot is one instance position of a deployment in progress. A nil
// session means the slot lost its daemon and needs re-placement.
type deploySlot struct {
	d       *daemonSession
	port    int
	listed  bool // LIST acked with the current rendez-vous
	started bool // START acked; the instance is running
}

// registerRound REGISTERs desc with the candidate set and returns up to
// want winners in ack order; stragglers and spares are FREEd. The acks
// accumulate under a plain mutex (no yields inside) and a waiter
// unblocks the submitter as soon as enough daemons answered, or at the
// timeout.
func (c *Controller) registerRound(candidates []*daemonSession, desc *ctlproto.Job, want int) []regResult {
	probeN := len(candidates)
	var mu sync.Mutex
	var acks []regResult
	answered := 0
	closed := false
	done := c.rt.NewWaiter()
	done.WakeAfter(c.cfg.RegisterTimeout, nil)
	c.fanout(candidates, c.cfg.RegisterTimeout,
		func(int) *ctlproto.Msg { return &ctlproto.Msg{Type: ctlproto.TRegister, Job: desc} },
		func(_ int, d *daemonSession, ans ctlproto.Msg, err error) {
			mu.Lock()
			answered++
			late := closed
			if err == nil && !late {
				acks = append(acks, regResult{d: d, port: ans.Port})
			}
			enough := len(acks) >= want || answered == probeN
			mu.Unlock()
			if late && err == nil {
				// Selection already happened: release the straggler.
				c.rt.Go(func() {
					c.call(d, &ctlproto.Msg{Type: ctlproto.TFree, Job: desc}, c.cfg.RegisterTimeout) //nolint:errcheck
				})
				return
			}
			// Never wake after selection closed: the (pooled) waiter may
			// already be recycled for an unrelated rendezvous.
			if enough && !late {
				done.Wake(nil)
			}
		})
	done.Wait()
	mu.Lock()
	closed = true
	var selected, spare []regResult
	for _, r := range acks {
		if len(selected) < want {
			selected = append(selected, r)
		} else {
			spare = append(spare, r)
		}
	}
	mu.Unlock()
	// Supernumerary daemons are released immediately.
	spareDs := make([]*daemonSession, len(spare))
	for i, r := range spare {
		spareDs[i] = r.d
	}
	c.freeAll(spareDs, desc)
	return selected
}

// submit is Submit's body behind the instrument hooks. Deployment is
// slot-driven: REGISTER fills spec.Nodes slots from a superset probe,
// LIST/START drive each slot to running, and any slot whose daemon
// fails a phase is cleared, FREEd, and re-placed onto a fresh daemon in
// the next round (up to DeployRetries rounds). A deployment that cannot
// fill its slots returns a *DeployError naming every failure instead of
// whichever error arrived first.
//
// On the all-acks path — every probed daemon healthy — round 0 writes
// exactly the frame sequence of the pre-fault-plane controller, in the
// same order, which is what keeps ctlplane/obsplane goldens
// byte-identical.
func (c *Controller) submit(spec JobSpec) (*JobStatus, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("controller: job needs nodes")
	}
	superset := spec.Superset
	if superset <= 1 {
		superset = c.cfg.DefaultSuperset
	}
	c.mu.Lock()
	c.jobSeq++
	job := &JobStatus{ID: fmt.Sprintf("job-%d", c.jobSeq), State: JobIdle}
	c.jobs[job.ID] = job
	c.mu.Unlock()

	// Candidate pool: every live daemon, capped at superset × request.
	candidates := c.reg.snapshot()
	if len(candidates) < spec.Nodes {
		derr := &DeployError{
			Job:     job.ID,
			Missing: spec.Nodes - len(candidates),
			Reason:  fmt.Sprintf("need %d daemons, have %d", spec.Nodes, len(candidates)),
		}
		job.State = JobFailed
		job.Err = derr.Error()
		return job, derr
	}
	// Prefer the most responsive daemons from monitoring, then cap.
	sortByRTT(candidates)
	probeN := int(float64(spec.Nodes) * superset)
	if probeN > len(candidates) {
		probeN = len(candidates)
	}
	candidates = candidates[:probeN]

	desc := &ctlproto.Job{ID: job.ID, App: spec.App, Params: spec.Params}
	// Daemons already probed for this job never get re-probed: a daemon
	// that failed once is not a re-placement target.
	tried := make(map[string]bool, len(candidates))
	for _, d := range candidates {
		tried[d.name] = true
	}
	// REGISTER with the whole superset; the first Nodes acks win.
	winners := c.registerRound(candidates, desc, spec.Nodes)
	slots := make([]deploySlot, spec.Nodes)
	for i := 0; i < len(winners); i++ {
		slots[i] = deploySlot{d: winners[i].d, port: winners[i].port}
	}
	job.State = JobSelected

	var fails []DeployFailure
	retries := c.cfg.DeployRetries
	if retries < 0 {
		retries = 0
	}
	giveUp := func(missing int) (*JobStatus, error) {
		var live []*daemonSession
		for _, s := range slots {
			if s.d != nil {
				live = append(live, s.d)
			}
		}
		c.freeAll(live, desc)
		derr := &DeployError{Job: job.ID, Missing: missing, Failures: fails}
		job.State = JobFailed
		job.Err = derr.Error()
		return job, derr
	}

	for round := 0; ; round++ {
		// Re-place lost slots onto fresh daemons (round 0 starts full
		// unless registration came up short).
		missing := 0
		for _, s := range slots {
			if s.d == nil {
				missing++
			}
		}
		if missing > 0 {
			var avail []*daemonSession
			for _, d := range c.reg.snapshot() {
				if !tried[d.name] {
					avail = append(avail, d)
				}
			}
			if len(avail) >= missing {
				sortByRTT(avail)
				probe := int(float64(missing) * superset)
				if probe < missing {
					probe = missing
				}
				if probe > len(avail) {
					probe = len(avail)
				}
				avail = avail[:probe]
				for _, d := range avail {
					tried[d.name] = true
				}
				repl := c.registerRound(avail, desc, missing)
				ri := 0
				for i := range slots {
					if slots[i].d == nil && ri < len(repl) {
						slots[i] = deploySlot{d: repl[ri].d, port: repl[ri].port}
						ri++
						if i == 0 {
							// The rendez-vous node moved: every slot's
							// bootstrap list is stale, so all re-LIST.
							for j := range slots {
								slots[j].listed = false
							}
						}
					}
				}
			}
			missing = 0
			for _, s := range slots {
				if s.d == nil {
					missing++
				}
			}
			if missing > 0 {
				return giveUp(missing)
			}
		}

		// Bootstrap list: the first slot is the rendez-vous.
		addrs := make([]transport.Addr, len(slots))
		for i, s := range slots {
			addrs[i] = transport.Addr{Host: s.d.name, Port: s.port}
		}
		bootstrap := addrs[:1]
		if spec.FullList {
			bootstrap = addrs
		}

		// LIST every slot that needs (re-)listing.
		var listIdx []int
		for i, s := range slots {
			if !s.listed {
				listIdx = append(listIdx, i)
			}
		}
		listDs := make([]*daemonSession, len(listIdx))
		for j, i := range listIdx {
			listDs[j] = slots[i].d
		}
		var freed []*daemonSession
		for j, err := range c.phaseAll(listDs, func(j int) *ctlproto.Msg {
			listJob := *desc
			listJob.Position = listIdx[j] + 1
			listJob.Nodes = bootstrap
			return &ctlproto.Msg{Type: ctlproto.TList, Job: &listJob}
		}) {
			i := listIdx[j]
			if err != nil {
				fails = append(fails, DeployFailure{Daemon: slots[i].d.name, Phase: "list", Err: err.Error()})
				freed = append(freed, slots[i].d)
				slots[i] = deploySlot{}
			} else {
				slots[i].listed = true
			}
		}

		// START every listed slot not yet running.
		var startIdx []int
		for i, s := range slots {
			if s.d != nil && s.listed && !s.started {
				startIdx = append(startIdx, i)
			}
		}
		startDs := make([]*daemonSession, len(startIdx))
		for j, i := range startIdx {
			startDs[j] = slots[i].d
		}
		for j, err := range c.phaseAll(startDs, func(int) *ctlproto.Msg {
			return &ctlproto.Msg{Type: ctlproto.TStart, Job: desc}
		}) {
			i := startIdx[j]
			if err != nil {
				fails = append(fails, DeployFailure{Daemon: slots[i].d.name, Phase: "start", Err: err.Error()})
				freed = append(freed, slots[i].d)
				slots[i] = deploySlot{}
			} else {
				slots[i].started = true
			}
		}
		c.freeAll(freed, desc)

		done := true
		for _, s := range slots {
			if s.d == nil || !s.started {
				done = false
				break
			}
		}
		if done {
			job.State = JobRunning
			job.Deployed = addrs
			job.StartedAt = c.rt.Now()
			return job, nil
		}
		if round >= retries {
			missing := 0
			for _, s := range slots {
				if s.d == nil || !s.started {
					missing++
				}
			}
			return giveUp(missing)
		}
	}
}

// phaseAll ships one command to every session and waits for every
// answer (or the RegisterTimeout), returning one verdict per session:
// nil for an ack, the daemon's error otherwise; unanswered sessions
// report ErrTimeout. Unlike a first-error latch, one failed daemon does
// not hide the others' verdicts — submit's re-placement rounds need each
// one.
func (c *Controller) phaseAll(ds []*daemonSession, makeMsg func(i int) *ctlproto.Msg) []error {
	if len(ds) == 0 {
		return nil
	}
	errs := make([]error, len(ds))
	answered := make([]bool, len(ds))
	var mu sync.Mutex
	remaining := len(ds)
	closed := false
	w := c.rt.NewWaiter()
	w.WakeAfter(c.cfg.RegisterTimeout, error(transport.ErrTimeout))
	c.fanout(ds, c.cfg.RegisterTimeout, makeMsg,
		func(i int, _ *daemonSession, _ ctlproto.Msg, err error) {
			mu.Lock()
			if closed || answered[i] {
				mu.Unlock()
				return
			}
			answered[i] = true
			errs[i] = err
			remaining--
			finished := remaining == 0
			if finished {
				closed = true
			}
			mu.Unlock()
			// closed is set before the wake, so no later callback can
			// touch the (pooled) waiter once Wait has returned.
			if finished {
				w.Wake(nil)
			}
		})
	w.Wait()
	mu.Lock()
	closed = true
	for i := range errs {
		if !answered[i] {
			errs[i] = transport.ErrTimeout
		}
	}
	mu.Unlock()
	return errs
}

// phase ships one command to every session and reports the first
// failure, for callers that need no per-daemon verdicts.
func (c *Controller) phase(ds []*daemonSession, makeMsg func(i int) *ctlproto.Msg) error {
	for _, err := range c.phaseAll(ds, makeMsg) {
		if err != nil {
			return err
		}
	}
	return nil
}

// freeAll releases reservations fire-and-forget: answers are discarded
// and unanswered FREEs are swept by the monitor.
func (c *Controller) freeAll(ds []*daemonSession, desc *ctlproto.Job) {
	if len(ds) == 0 {
		return
	}
	c.fanout(ds, c.cfg.RegisterTimeout,
		func(int) *ctlproto.Msg { return &ctlproto.Msg{Type: ctlproto.TFree, Job: desc} },
		func(int, *daemonSession, ctlproto.Msg, error) {})
}

// StopJob terminates a running job everywhere.
func (c *Controller) StopJob(id string) error {
	c.mu.Lock()
	job, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("controller: unknown job %s", id)
	}
	desc := &ctlproto.Job{ID: id}
	var ds []*daemonSession
	for _, addr := range job.Deployed {
		if d, ok := c.reg.get(addr.Host); ok {
			ds = append(ds, d)
		}
	}
	// Best-effort: every daemon gets the STOP frame regardless of
	// individual failures, mirroring the sequential design's semantics.
	c.phase(ds, func(int) *ctlproto.Msg { //nolint:errcheck
		return &ctlproto.Msg{Type: ctlproto.TStop, Job: desc}
	})
	job.State = JobDone
	return nil
}

// StopJobOn sends a job's STOP to a subset of its daemons by name — the
// fault plane's kill actuator. Unlike StopJob the job stays running on
// the untouched daemons.
func (c *Controller) StopJobOn(id string, daemons []string) error {
	c.mu.Lock()
	_, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("controller: unknown job %s", id)
	}
	desc := &ctlproto.Job{ID: id}
	var ds []*daemonSession
	for _, name := range daemons {
		if d, ok := c.reg.get(name); ok {
			ds = append(ds, d)
		}
	}
	return c.phase(ds, func(int) *ctlproto.Msg {
		return &ctlproto.Msg{Type: ctlproto.TStop, Job: desc}
	})
}

// DaemonNames returns the names of every connected daemon, in the
// registry's deterministic snapshot order.
func (c *Controller) DaemonNames() []string {
	ds := c.reg.snapshot()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.name
	}
	return names
}

// DropDaemon forcibly closes a daemon's controller session (a fault
// drill: the daemon observes a lost controller and, if configured,
// reconnects with backoff). Reports whether the daemon was connected.
func (c *Controller) DropDaemon(name string) bool {
	d, ok := c.reg.get(name)
	if !ok {
		return false
	}
	d.conn.Close()
	return true
}

// Job returns a job's status.
func (c *Controller) Job(id string) (*JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// sortByRTT orders sessions by measured responsiveness, fastest first;
// unmeasured daemons (rtt 0) sort last. The sort is stable, so ties keep
// the registry's deterministic snapshot order. RTTs are read once up
// front: a comparison-time read would take two locks per comparison,
// which dominated selection at thousands of daemons.
func sortByRTT(ds []*daemonSession) {
	type byRTT struct {
		d   *daemonSession
		rtt time.Duration
	}
	tmp := make([]byRTT, len(ds))
	for i, d := range ds {
		d.mu.Lock()
		tmp[i] = byRTT{d: d, rtt: d.rtt}
		d.mu.Unlock()
	}
	sort.SliceStable(tmp, func(i, j int) bool {
		ra, rb := tmp[i].rtt, tmp[j].rtt
		if (ra == 0) != (rb == 0) {
			return rb == 0
		}
		return ra < rb
	})
	for i := range tmp {
		ds[i] = tmp[i].d
	}
}
