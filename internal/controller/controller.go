// Package controller implements splayctl, the trusted entity that
// controls deployment and execution of SPLAY applications (§3.1): it
// tracks daemons through sessions, selects deployment targets by
// responsiveness with superset probing, drives the job state machine
// (idle → selected → running), manages the blacklist, and hosts the log
// collector.
package controller

import (
	"fmt"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/ctlproto"
	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// Config tunes the controller.
type Config struct {
	// Port accepts daemon connections.
	Port int
	// DefaultSuperset is the fraction of extra daemons probed per job
	// (the paper settles on 1.25 as the default, §5.6).
	DefaultSuperset float64
	// RegisterTimeout bounds how long selection waits for slow daemons.
	RegisterTimeout time.Duration
	// UnseenAfter expires daemons that stop showing activity (the
	// paper's long-term disconnection threshold, typically one hour).
	UnseenAfter time.Duration
	// PingEvery is the session keep-alive/monitoring period.
	PingEvery time.Duration
	// Blacklist is the initial set of forbidden address patterns; the
	// controller's own host is always appended so applications cannot
	// actively connect to it.
	Blacklist []string
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		Port:            5555,
		DefaultSuperset: 1.25,
		RegisterTimeout: 30 * time.Second,
		UnseenAfter:     time.Hour,
		PingEvery:       30 * time.Second,
	}
}

// JobState is the §3.1 state machine.
type JobState int

// Job states.
const (
	JobIdle JobState = iota
	JobSelected
	JobRunning
	JobDone
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobIdle:
		return "idle"
	case JobSelected:
		return "selected"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	default:
		return "failed"
	}
}

// JobSpec is a submission: deploy N instances of a registered app.
type JobSpec struct {
	App      string
	Params   []byte
	Nodes    int
	Superset float64 // 0 uses the controller default
	// FullList ships the whole deployment list as job.nodes instead of a
	// single rendez-vous node (the controller chooses "a single
	// rendez-vous node or a random subset, depending on the
	// application", §3.1).
	FullList bool
}

// JobStatus reports a job's progress.
type JobStatus struct {
	ID        string
	State     JobState
	Deployed  []transport.Addr
	Err       string
	StartedAt time.Time
}

// daemonSession is the controller's view of one connected daemon.
type daemonSession struct {
	name  string
	conn  transport.Conn
	enc   *llenc.Writer
	wlock *core.Lock

	mu       sync.Mutex // guards the fields below under LiveRuntime
	lastSeen time.Time
	rtt      time.Duration // last measured responsiveness
	nextSeq  uint64
	pending  map[uint64]core.Waiter
	gone     bool
}

// Controller is a running splayctl instance.
type Controller struct {
	rt   core.Runtime
	node transport.Node
	cfg  Config

	mu        sync.Mutex // guards daemons/jobs/blacklist under LiveRuntime
	ln        transport.Listener
	daemons   map[string]*daemonSession
	jobs      map[string]*JobStatus
	blacklist []string
	jobSeq    int
	stops     []func()
}

// New creates a controller on the given runtime and network stack.
func New(rt core.Runtime, node transport.Node, cfg Config) *Controller {
	if cfg.Port == 0 {
		cfg.Port = 5555
	}
	if cfg.DefaultSuperset <= 1 {
		cfg.DefaultSuperset = 1.25
	}
	if cfg.RegisterTimeout <= 0 {
		cfg.RegisterTimeout = 30 * time.Second
	}
	if cfg.UnseenAfter <= 0 {
		cfg.UnseenAfter = time.Hour
	}
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = 30 * time.Second
	}
	cfg.Blacklist = append(cfg.Blacklist, node.Host())
	return &Controller{
		rt: rt, node: node, cfg: cfg,
		daemons: make(map[string]*daemonSession),
		jobs:    make(map[string]*JobStatus),
	}
}

// Start listens for daemons and begins session monitoring.
func (c *Controller) Start() error {
	ln, err := c.node.Listen(c.cfg.Port)
	if err != nil {
		return fmt.Errorf("controller: listen: %w", err)
	}
	c.ln = ln
	c.rt.Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.rt.Go(func() { c.serveDaemon(conn) })
		}
	})
	// The unseen process: expire daemons after long-term disconnection;
	// the monitor ping doubles as the session activity signal.
	stopMon := c.periodic(c.cfg.PingEvery, c.monitor)
	c.stops = append(c.stops, stopMon)
	return nil
}

// periodic is a minimal runtime-periodic helper for controller loops.
func (c *Controller) periodic(every time.Duration, fn func()) (stop func()) {
	stopped := false
	var tick func()
	var cancel func()
	tick = func() {
		cancel = c.rt.After(every, func() {
			if stopped {
				return
			}
			c.rt.Go(fn)
			tick()
		})
	}
	tick()
	return func() {
		stopped = true
		if cancel != nil {
			cancel()
		}
	}
}

// Stop closes the controller.
func (c *Controller) Stop() {
	for _, stop := range c.stops {
		stop()
	}
	if c.ln != nil {
		c.ln.Close()
	}
	for _, d := range c.daemons {
		d.conn.Close()
	}
}

// Daemons returns the connected daemon count.
func (c *Controller) Daemons() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.daemons)
}

// snapshot copies the live daemon sessions.
func (c *Controller) snapshot() []*daemonSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*daemonSession, 0, len(c.daemons))
	for _, d := range c.daemons {
		out = append(out, d)
	}
	return out
}

// SetBlacklist replaces the blacklist and pushes the update to every
// connected daemon (piggybacked in its own message here).
func (c *Controller) SetBlacklist(patterns []string) {
	c.mu.Lock()
	c.blacklist = append(patterns, c.node.Host())
	blk := append([]string(nil), c.blacklist...)
	c.mu.Unlock()
	for _, d := range c.snapshot() {
		d := d
		c.rt.Go(func() { c.send(d, &ctlproto.Msg{Type: ctlproto.TBlacklist, Hosts: blk}) }) //nolint:errcheck
	}
}

// serveDaemon handles one daemon connection for its lifetime.
func (c *Controller) serveDaemon(conn transport.Conn) {
	defer conn.Close()
	dec := llenc.NewReader(conn)
	var hello ctlproto.Msg
	if err := dec.Decode(&hello); err != nil || hello.Type != ctlproto.THello || hello.Name == "" {
		return
	}
	d := &daemonSession{
		name:     hello.Name,
		conn:     conn,
		enc:      llenc.NewWriter(conn),
		wlock:    core.NewLock(c.rt),
		lastSeen: c.rt.Now(),
		pending:  make(map[uint64]core.Waiter),
	}
	c.mu.Lock()
	if old, ok := c.daemons[hello.Name]; ok {
		old.mu.Lock()
		old.gone = true
		old.mu.Unlock()
		old.conn.Close()
	}
	c.daemons[hello.Name] = d
	blk := append(append([]string(nil), c.cfg.Blacklist...), c.blacklist...)
	c.mu.Unlock()
	c.send(d, &ctlproto.Msg{Type: ctlproto.TWelcome, Hosts: blk}) //nolint:errcheck

	for {
		var m ctlproto.Msg
		if err := dec.Decode(&m); err != nil {
			break
		}
		d.mu.Lock()
		d.lastSeen = c.rt.Now()
		w, ok := d.pending[m.Seq]
		if ok {
			delete(d.pending, m.Seq)
		}
		d.mu.Unlock()
		if ok {
			w.Wake(m)
		}
	}
	d.mu.Lock()
	d.gone = true
	orphans := make([]core.Waiter, 0, len(d.pending))
	for seq, w := range d.pending {
		delete(d.pending, seq)
		orphans = append(orphans, w)
	}
	d.mu.Unlock()
	c.mu.Lock()
	if c.daemons[hello.Name] == d {
		delete(c.daemons, hello.Name)
	}
	c.mu.Unlock()
	for _, w := range orphans {
		w.Wake(fmt.Errorf("controller: daemon %s disconnected", d.name))
	}
}

func (c *Controller) send(d *daemonSession, m *ctlproto.Msg) error {
	d.wlock.Lock()
	defer d.wlock.Unlock()
	return d.enc.Encode(m)
}

// call sends a command and waits for the daemon's answer.
func (c *Controller) call(d *daemonSession, m *ctlproto.Msg, timeout time.Duration) (ctlproto.Msg, error) {
	d.mu.Lock()
	if d.gone {
		d.mu.Unlock()
		return ctlproto.Msg{}, fmt.Errorf("controller: daemon %s gone", d.name)
	}
	d.nextSeq++
	m.Seq = d.nextSeq
	w := c.rt.NewWaiter()
	w.WakeAfter(timeout, error(transport.ErrTimeout))
	d.pending[m.Seq] = w
	d.mu.Unlock()
	if err := c.send(d, m); err != nil {
		d.mu.Lock()
		delete(d.pending, m.Seq)
		d.mu.Unlock()
		return ctlproto.Msg{}, err
	}
	switch v := w.Wait().(type) {
	case ctlproto.Msg:
		if v.Type == ctlproto.TErr {
			return v, fmt.Errorf("controller: daemon %s: %s", d.name, v.Err)
		}
		return v, nil
	case error:
		d.mu.Lock()
		delete(d.pending, m.Seq)
		d.mu.Unlock()
		return ctlproto.Msg{}, v
	}
	return ctlproto.Msg{}, fmt.Errorf("controller: internal wake type")
}

// monitor pings every daemon (recording responsiveness) and expires the
// unseen.
func (c *Controller) monitor() {
	now := c.rt.Now()
	for _, d := range c.snapshot() {
		d.mu.Lock()
		stale := now.Sub(d.lastSeen) > c.cfg.UnseenAfter
		if stale {
			d.gone = true
		}
		d.mu.Unlock()
		if stale {
			// Long-term disconnection: reset the daemon's state.
			d.conn.Close()
			c.mu.Lock()
			if c.daemons[d.name] == d {
				delete(c.daemons, d.name)
			}
			c.mu.Unlock()
			continue
		}
		d := d
		c.rt.Go(func() {
			start := c.rt.Now()
			if _, err := c.call(d, &ctlproto.Msg{Type: ctlproto.TPing}, c.cfg.PingEvery); err == nil {
				d.mu.Lock()
				d.rtt = c.rt.Now().Sub(start)
				d.mu.Unlock()
			}
		})
	}
}

// Submit deploys a job: probe a superset of daemons with REGISTER, keep
// the fastest responders, ship the bootstrap LIST and START execution,
// and FREE the supernumeraries (§3.1). It blocks until the job runs or
// fails and returns its status.
func (c *Controller) Submit(spec JobSpec) (*JobStatus, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("controller: job needs nodes")
	}
	superset := spec.Superset
	if superset <= 1 {
		superset = c.cfg.DefaultSuperset
	}
	c.mu.Lock()
	c.jobSeq++
	job := &JobStatus{ID: fmt.Sprintf("job-%d", c.jobSeq), State: JobIdle}
	c.jobs[job.ID] = job
	c.mu.Unlock()

	// Candidate pool: every live daemon, capped at superset × request.
	candidates := c.snapshot()
	if len(candidates) < spec.Nodes {
		job.State = JobFailed
		job.Err = fmt.Sprintf("need %d daemons, have %d", spec.Nodes, len(candidates))
		return job, fmt.Errorf("controller: %s", job.Err)
	}
	// Prefer the most responsive daemons from monitoring, then cap.
	sortByRTT(candidates)
	probeN := int(float64(spec.Nodes) * superset)
	if probeN > len(candidates) {
		probeN = len(candidates)
	}
	candidates = candidates[:probeN]

	// REGISTER with the whole superset; the first Nodes acks win. The
	// acks accumulate under a plain mutex (no yields inside) and a
	// waiter unblocks the submitter as soon as enough daemons answered,
	// or at the timeout.
	type regResult struct {
		d    *daemonSession
		port int
	}
	var mu sync.Mutex
	var acks []regResult
	answered := 0
	closed := false
	done := c.rt.NewWaiter()
	done.WakeAfter(c.cfg.RegisterTimeout, nil)
	desc := &ctlproto.Job{ID: job.ID, App: spec.App, Params: spec.Params}
	for _, d := range candidates {
		d := d
		c.rt.Go(func() {
			ans, err := c.call(d, &ctlproto.Msg{Type: ctlproto.TRegister, Job: desc}, c.cfg.RegisterTimeout)
			mu.Lock()
			answered++
			late := closed
			if err == nil && !late {
				acks = append(acks, regResult{d: d, port: ans.Port})
			}
			enough := len(acks) >= spec.Nodes || answered == probeN
			mu.Unlock()
			if late && err == nil {
				// Selection already happened: release the straggler.
				c.call(d, &ctlproto.Msg{Type: ctlproto.TFree, Job: desc}, c.cfg.RegisterTimeout) //nolint:errcheck
				return
			}
			// Never wake after selection closed: the (pooled) waiter may
			// already be recycled for an unrelated rendezvous.
			if enough && !late {
				done.Wake(nil)
			}
		})
	}
	done.Wait()
	mu.Lock()
	closed = true
	var selected, spare []regResult
	for _, r := range acks {
		if len(selected) < spec.Nodes {
			selected = append(selected, r)
		} else {
			spare = append(spare, r)
		}
	}
	mu.Unlock()
	// Supernumerary daemons are released immediately.
	for _, r := range spare {
		r := r
		c.rt.Go(func() {
			c.call(r.d, &ctlproto.Msg{Type: ctlproto.TFree, Job: desc}, c.cfg.RegisterTimeout) //nolint:errcheck
		})
	}
	if len(selected) < spec.Nodes {
		for _, r := range selected {
			r := r
			c.rt.Go(func() {
				c.call(r.d, &ctlproto.Msg{Type: ctlproto.TFree, Job: desc}, c.cfg.RegisterTimeout) //nolint:errcheck
			})
		}
		job.State = JobFailed
		job.Err = fmt.Sprintf("only %d/%d daemons accepted", len(selected), spec.Nodes)
		return job, fmt.Errorf("controller: %s", job.Err)
	}
	job.State = JobSelected

	// Bootstrap list: the first selected node is the rendez-vous.
	var addrs []transport.Addr
	for _, r := range selected {
		addrs = append(addrs, transport.Addr{Host: r.d.name, Port: r.port})
	}
	bootstrap := addrs[:1]
	if spec.FullList {
		bootstrap = addrs
	}
	for i, r := range selected {
		listJob := *desc
		listJob.Position = i + 1
		listJob.Nodes = bootstrap
		if _, err := c.call(r.d, &ctlproto.Msg{Type: ctlproto.TList, Job: &listJob}, c.cfg.RegisterTimeout); err != nil {
			job.State = JobFailed
			job.Err = err.Error()
			return job, err
		}
	}
	for _, r := range selected {
		if _, err := c.call(r.d, &ctlproto.Msg{Type: ctlproto.TStart, Job: desc}, c.cfg.RegisterTimeout); err != nil {
			job.State = JobFailed
			job.Err = err.Error()
			return job, err
		}
	}
	job.State = JobRunning
	job.Deployed = addrs
	job.StartedAt = c.rt.Now()
	return job, nil
}

// StopJob terminates a running job everywhere.
func (c *Controller) StopJob(id string) error {
	c.mu.Lock()
	job, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("controller: unknown job %s", id)
	}
	desc := &ctlproto.Job{ID: id}
	for _, addr := range job.Deployed {
		c.mu.Lock()
		d, ok := c.daemons[addr.Host]
		c.mu.Unlock()
		if ok {
			c.call(d, &ctlproto.Msg{Type: ctlproto.TStop, Job: desc}, c.cfg.RegisterTimeout) //nolint:errcheck
		}
	}
	job.State = JobDone
	return nil
}

// Job returns a job's status.
func (c *Controller) Job(id string) (*JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

func sortByRTT(ds []*daemonSession) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(a, b *daemonSession) bool {
	a.mu.Lock()
	ra := a.rtt
	a.mu.Unlock()
	b.mu.Lock()
	rb := b.rtt
	b.mu.Unlock()
	// Unmeasured daemons (rtt 0) sort last.
	if (ra == 0) != (rb == 0) {
		return rb == 0
	}
	return ra < rb
}
