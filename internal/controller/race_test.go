package controller

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/core"
)

// TestPeriodicStopUnderLiveRuntime exercises the periodic helper exactly
// where the old implementation raced: stopped/cancel were touched from
// timer goroutines without synchronization, and a stop() landing just
// after a tick could miss the re-armed timer. Run with -race.
func TestPeriodicStopUnderLiveRuntime(t *testing.T) {
	t.Parallel()
	c := &Controller{rt: core.NewLiveRuntime(1)}
	var fires atomic.Int64
	stop := c.periodic(time.Millisecond, func() { fires.Add(1) })
	time.Sleep(20 * time.Millisecond)

	// Stop concurrently from several goroutines while ticks are firing.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop()
		}()
	}
	wg.Wait()
	if fires.Load() == 0 {
		t.Fatal("periodic never fired")
	}
	// After stop has returned, at most one in-flight fire may still land;
	// the count must then stay frozen — a missed cancel keeps ticking.
	time.Sleep(5 * time.Millisecond)
	frozen := fires.Load()
	time.Sleep(20 * time.Millisecond)
	if got := fires.Load(); got != frozen {
		t.Fatalf("periodic kept firing after stop: %d -> %d", frozen, got)
	}
}

// TestPeriodicStopStress churns many short-lived periodic loops with
// concurrent stops; the race detector is the assertion.
func TestPeriodicStopStress(t *testing.T) {
	t.Parallel()
	c := &Controller{rt: core.NewLiveRuntime(2)}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop := c.periodic(100*time.Microsecond, func() {})
			time.Sleep(time.Millisecond)
			stop()
			stop() // stop must be idempotent
		}()
	}
	wg.Wait()
}

// seedSortByRTT is the pre-sharding controller's selection order: an
// insertion sort reading each session's rtt (under its lock) per
// comparison, unmeasured daemons last.
func seedSortByRTT(ds []*daemonSession) {
	less := func(a, b *daemonSession) bool {
		a.mu.Lock()
		ra := a.rtt
		a.mu.Unlock()
		b.mu.Lock()
		rb := b.rtt
		b.mu.Unlock()
		if (ra == 0) != (rb == 0) {
			return rb == 0
		}
		return ra < rb
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// TestShardedSelectionMatchesSeedOrder is the selection-order golden
// check: for daemons with distinct measured RTTs, the sharded registry's
// snapshot sorted by sortByRTT must order candidates exactly as the seed
// controller's per-comparison insertion sort did, with unmeasured
// daemons last in both.
func TestShardedSelectionMatchesSeedOrder(t *testing.T) {
	t.Parallel()
	reg := newRegistry()
	var connectOrder []*daemonSession
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("n%d", i+1)
		d := &daemonSession{name: name, hash: nameHash(name)}
		// Distinct RTTs in a scrambled pattern; every 7th daemon is
		// unmeasured (rtt 0) and must sort last.
		if i%7 != 0 {
			d.rtt = time.Duration((i*37)%199+1) * time.Millisecond
		}
		reg.put(d)
		connectOrder = append(connectOrder, d)
	}

	snapshot := reg.snapshot()
	if len(snapshot) != len(connectOrder) {
		t.Fatalf("snapshot has %d sessions, want %d", len(snapshot), len(connectOrder))
	}

	// Same candidate enumeration: the new sort must order it exactly as
	// the seed's insertion sort would have (both are stable by rtt).
	sharded := append([]*daemonSession(nil), snapshot...)
	sortByRTT(sharded)
	seed := append([]*daemonSession(nil), snapshot...)
	seedSortByRTT(seed)
	for i := range seed {
		if sharded[i] != seed[i] {
			t.Fatalf("selection order diverges at %d: sharded %s (rtt %v), seed %s (rtt %v)",
				i, sharded[i].name, sharded[i].rtt, seed[i].name, seed[i].rtt)
		}
	}

	// Across different enumerations (the seed iterated a Go map), only
	// ties may move: every distinct measured RTT must land on the same
	// rank, and the unmeasured tail must hold the same members.
	other := append([]*daemonSession(nil), connectOrder...)
	seedSortByRTT(other)
	measured := 0
	for i := range other {
		if other[i].rtt != 0 {
			measured++
			if sharded[i] != other[i] {
				t.Fatalf("measured rank %d diverges: sharded %s (rtt %v), seed %s (rtt %v)",
					i, sharded[i].name, sharded[i].rtt, other[i].name, other[i].rtt)
			}
		}
	}
	tail := map[*daemonSession]bool{}
	for _, d := range sharded[measured:] {
		tail[d] = true
	}
	for _, d := range other[measured:] {
		if !tail[d] {
			t.Fatalf("unmeasured daemon %s missing from sharded tail", d.name)
		}
	}
}

// TestRegistrySnapshotDeterministic pins that snapshot order is a pure
// function of connect order — the property bit-for-bit simulations rely
// on — and that replacement and removal keep it consistent.
func TestRegistrySnapshotDeterministic(t *testing.T) {
	t.Parallel()
	build := func() *registry {
		reg := newRegistry()
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("n%d", i)
			reg.put(&daemonSession{name: name, hash: nameHash(name)})
		}
		return reg
	}
	a, b := build(), build()
	sa, sb := a.snapshot(), b.snapshot()
	for i := range sa {
		if sa[i].name != sb[i].name {
			t.Fatalf("snapshot order not deterministic at %d: %s vs %s", i, sa[i].name, sb[i].name)
		}
	}
	// Reconnecting n5 moves it to the back of its shard; count is stable.
	re := &daemonSession{name: "n5", hash: nameHash("n5")}
	if old := a.put(re); old == nil {
		t.Fatal("put did not report the displaced session")
	}
	if a.count() != 100 {
		t.Fatalf("count after reconnect = %d, want 100", a.count())
	}
	if d, ok := a.get("n5"); !ok || d != re {
		t.Fatal("get did not return the reconnected session")
	}
	if !a.removeIf(re) {
		t.Fatal("removeIf failed for live session")
	}
	if a.removeIf(re) {
		t.Fatal("removeIf succeeded twice")
	}
	if a.count() != 99 {
		t.Fatalf("count after remove = %d, want 99", a.count())
	}
	// Every session sits in exactly one ping slice.
	total := 0
	for s := 0; s < pingSlices; s++ {
		total += len(a.slice(s))
	}
	if total != 99 {
		t.Fatalf("slices cover %d sessions, want 99", total)
	}
}
