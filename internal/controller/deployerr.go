package controller

import (
	"fmt"
	"strings"
)

// DeployFailure is one daemon's failure during one deployment phase.
type DeployFailure struct {
	Daemon string // daemon name
	Phase  string // "register", "list" or "start"
	Err    string
}

func (f DeployFailure) String() string {
	return fmt.Sprintf("%s (%s): %s", f.Daemon, f.Phase, f.Err)
}

// DeployError is a failed deployment's full account: every daemon that
// failed a phase, and how many instance slots were still unfilled when
// Submit gave up. It replaces the old first-error latch — a deployment
// that loses three daemons reports three failures, not whichever error
// happened to arrive first.
type DeployError struct {
	Job      string
	Missing  int // unfilled instance slots when the deployment gave up
	Failures []DeployFailure
	Reason   string // pre-placement reason (e.g. the population is too small)
}

func (e *DeployError) Error() string {
	msg := fmt.Sprintf("controller: deploy %s failed: %d instance(s) unplaced", e.Job, e.Missing)
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	if len(e.Failures) == 0 {
		return msg
	}
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = f.String()
	}
	return msg + "; " + strings.Join(parts, "; ")
}
