// Package ctlproto defines the controller↔daemon wire protocol: a simple
// request/answer exchange over a daemon-initiated connection, framed by
// llenc. The first message is the daemon's HELLO; every subsequent
// exchange is a controller command (REGISTER, LIST, START, FREE, STOP,
// PING) answered by the daemon, matching §3.1's minimal command set and
// the job state machine idle → selected → running.
package ctlproto

import (
	"encoding/json"

	"github.com/splaykit/splay/internal/transport"
)

// Command and answer types.
const (
	THello     = "hello"     // daemon → controller: introduce + capabilities
	TWelcome   = "welcome"   // controller → daemon: session + blacklist
	TRegister  = "register"  // controller → daemon: reserve resources for a job
	TList      = "list"      // controller → daemon: bootstrap node list
	TStart     = "start"     // controller → daemon: begin execution
	TStop      = "stop"      // controller → daemon: terminate a running job
	TFree      = "free"      // controller → daemon: release a reservation
	TPing      = "ping"      // controller → daemon: liveness/responsiveness probe
	TAck       = "ack"       // daemon → controller: positive answer
	TErr       = "err"       // daemon → controller: negative answer
	TBlacklist = "blacklist" // controller → daemon: blacklist update (no answer)
)

// Job describes a deployment unit shipped to daemons: a registered
// application name plus its parameters (standing in for Lua source, see
// DESIGN.md).
type Job struct {
	ID     string          `json:"id"`
	App    string          `json:"app"`
	Params json.RawMessage `json:"params,omitempty"`
	// Position is the daemon's 1-based rank in the deployment sequence.
	Position int `json:"position,omitempty"`
	// Nodes is the bootstrap list delivered with LIST.
	Nodes []transport.Addr `json:"nodes,omitempty"`
}

// Msg is one frame in either direction.
type Msg struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`

	// HELLO fields.
	Name     string `json:"name,omitempty"`
	Key      string `json:"key,omitempty"`
	PortLow  int    `json:"port_low,omitempty"`
	PortHigh int    `json:"port_high,omitempty"`

	// Command payloads.
	Job   *Job     `json:"job,omitempty"`
	Hosts []string `json:"hosts,omitempty"` // blacklist patterns

	// Answers.
	Port int    `json:"port,omitempty"` // port granted at REGISTER
	Err  string `json:"err,omitempty"`
}
